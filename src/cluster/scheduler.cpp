#include "cluster/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/events.hpp"
#include "telemetry/registry.hpp"

namespace lobster::cluster {

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kFinished:
      return "finished";
    case JobState::kRejected:
      return "rejected";
  }
  return "unknown";
}

const char* scheduler_policy_name(SchedulerPolicy policy) noexcept {
  switch (policy) {
    case SchedulerPolicy::kFifo:
      return "fifo";
    case SchedulerPolicy::kFairShare:
      return "fair_share";
  }
  return "unknown";
}

JobManager::JobManager(std::uint16_t total_nodes, SchedulerPolicy policy)
    : total_nodes_(total_nodes), policy_(policy), node_busy_(total_nodes, false) {
  if (total_nodes == 0) throw std::invalid_argument("JobManager: cluster has zero nodes");
}

JobId JobManager::submit(JobSpec spec, std::uint64_t round) {
  const JobId id = static_cast<JobId>(jobs_.size());
  JobRecord record;
  record.id = id;
  record.spec = std::move(spec);
  record.submit_round = round;
  const bool impossible =
      record.spec.nodes == 0 || record.spec.nodes > total_nodes_;
  record.state = impossible ? JobState::kRejected : JobState::kQueued;
  jobs_.push_back(std::move(record));
  if (impossible) {
    LOBSTER_METRIC_COUNT("cluster.jobs_rejected", 1);
  } else {
    LOBSTER_METRIC_COUNT("cluster.jobs_submitted", 1);
  }
  return id;
}

std::optional<NodeBlock> JobManager::find_block(std::uint16_t count) const {
  // First-fit over the contiguous free runs. Cluster sizes here are small
  // (<= a few hundred simulated nodes), so the linear scan is fine.
  std::uint16_t run = 0;
  for (std::uint16_t node = 0; node < total_nodes_; ++node) {
    run = node_busy_[node] ? 0 : run + 1;
    if (run == count) {
      return NodeBlock{static_cast<NodeId>(node + 1 - count), count};
    }
  }
  return std::nullopt;
}

void JobManager::occupy(NodeBlock block, bool value) {
  for (std::uint16_t i = 0; i < block.count; ++i) node_busy_[block.first + i] = value;
}

bool JobManager::try_admit(JobRecord& job, std::uint64_t round, const BudgetGate& gate) {
  const auto block = find_block(job.spec.nodes);
  if (!block.has_value()) return false;
  if (gate && !gate(job.spec)) return false;
  job.state = JobState::kRunning;
  job.block = *block;
  job.admit_round = round;
  occupy(*block, true);
  LOBSTER_METRIC_COUNT("cluster.jobs_admitted", 1);
  telemetry::EventLog::instance().emit(telemetry::EventKind::kJobAdmitted,
                                       job.block.first, job.spec.nodes,
                                       round - job.submit_round, job.spec.name);
  return true;
}

std::vector<JobId> JobManager::admit(std::uint64_t round, const BudgetGate& gate) {
  std::vector<JobRecord*> waiting;
  for (JobRecord& job : jobs_) {
    if (job.state == JobState::kQueued && job.submit_round <= round) waiting.push_back(&job);
  }
  // jobs_ is in submission order, so `waiting` already is FIFO. Fair-share
  // re-ranks by accumulated deficit (wait x weight), oldest-heaviest first;
  // ties fall back to arrival order for determinism.
  if (policy_ == SchedulerPolicy::kFairShare) {
    std::stable_sort(waiting.begin(), waiting.end(),
                     [round](const JobRecord* a, const JobRecord* b) {
                       const double da = static_cast<double>(round - a->submit_round) * a->spec.weight;
                       const double db = static_cast<double>(round - b->submit_round) * b->spec.weight;
                       return da > db;
                     });
  }
  std::vector<JobId> admitted;
  for (JobRecord* job : waiting) {
    if (try_admit(*job, round, gate)) {
      admitted.push_back(job->id);
    } else if (policy_ == SchedulerPolicy::kFifo) {
      break;  // strict head-of-line: nothing younger may jump the queue
    }
    // kFairShare: keep scanning — backfill smaller jobs into leftover nodes.
  }
  return admitted;
}

void JobManager::finish(JobId id, std::uint64_t round) {
  JobRecord& job = record_mutable(id);
  if (job.state != JobState::kRunning) {
    throw std::logic_error(std::string("JobManager::finish: job is ") +
                           job_state_name(job.state) + ", not running");
  }
  job.state = JobState::kFinished;
  job.finish_round = round;
  occupy(job.block, false);
  LOBSTER_METRIC_COUNT("cluster.jobs_finished", 1);
  telemetry::EventLog::instance().emit(telemetry::EventKind::kJobFinished,
                                       job.block.first, round - job.admit_round, 0,
                                       job.spec.name);
}

const JobRecord& JobManager::record(JobId id) const {
  if (id >= jobs_.size()) throw std::out_of_range("JobManager::record: unknown job id");
  return jobs_[id];
}

JobRecord& JobManager::record_mutable(JobId id) {
  if (id >= jobs_.size()) throw std::out_of_range("JobManager::record: unknown job id");
  return jobs_[id];
}

std::vector<JobId> JobManager::running() const {
  std::vector<JobId> out;
  for (const JobRecord& job : jobs_) {
    if (job.state == JobState::kRunning) out.push_back(job.id);
  }
  return out;
}

std::vector<JobId> JobManager::queued() const {
  std::vector<JobId> out;
  for (const JobRecord& job : jobs_) {
    if (job.state == JobState::kQueued) out.push_back(job.id);
  }
  return out;
}

std::uint16_t JobManager::free_nodes() const {
  return static_cast<std::uint16_t>(
      std::count(node_busy_.begin(), node_busy_.end(), false));
}

std::uint64_t JobManager::oldest_queued_wait(std::uint64_t round) const {
  std::uint64_t worst = 0;
  for (const JobRecord& job : jobs_) {
    if (job.state == JobState::kQueued && job.submit_round <= round) {
      worst = std::max(worst, round - job.submit_round);
    }
  }
  return worst;
}

}  // namespace lobster::cluster
