// Live pipeline monitor: a background reporter thread that samples the
// metric registry on a fixed interval and emits heartbeats while a run is
// in flight — the "is this experiment healthy?" channel, complementing the
// post-hoc trace analysis in telemetry/analysis.
//
// Each heartbeat goes to two sinks: a human-readable line through the
// logger, and a machine-readable JSONL record (schema
// "lobster.heartbeat.v1") appended to a file. Samples carry anomaly flags:
//  * straggler_gap     — pipeline.gap_frac above the configured threshold
//                        (Eq. 2-3 imbalance visible live);
//  * prefetch_outrun   — prefetched bytes grew faster than consumed bytes
//                        over the interval (§4.4: prefetcher outrunning
//                        training wastes cache);
//  * queue_starved     — consumers popped during the interval but the
//                        push/pop balance is zero (pipeline waits on I/O);
//  * trace_ring_overflow — the tracer dropped events, so any exported
//                        trace is truncated;
//  * peer_down         — the runtime declared at least one peer dead since
//                        the last sample (comm.peer_down grew): remote
//                        fetches are detouring around a node (DESIGN.md §9);
//  * retry_storm       — remote-fetch retries during the interval exceeded
//                        retry_storm_threshold: the fabric is degraded
//                        enough that the retry budget is burning hot;
//  * iteration_stalled — the iteration watchdog flagged at least one
//                        iteration since the last sample
//                        (executor.iteration_stalls grew): the run is
//                        slow-but-not-dead (DESIGN.md §9);
//  * corruption_detected — at least one remote reply failed end-to-end
//                        verification since the last sample
//                        (comm.corrupt_replies grew): payloads are being
//                        quarantined and re-routed.
//  * job_starved       — the cluster fairness tracker declared at least one
//                        job starved since the last sample
//                        (cluster.job_starvations grew): a queued job has
//                        waited past the starvation threshold (DESIGN.md
//                        §10) and the scheduler policy deserves a look.
//  * slow_node_detected — the feedback balancer classified at least one
//                        node as slow since the last sample
//                        (balancer.slow_node_detected grew): quotas are
//                        draining away from a straggler (DESIGN.md §12).
//  * job_preempt_storm — checkpoint-based preemptions during the interval
//                        exceeded preempt_storm_threshold
//                        (cluster.job_preemptions delta, DESIGN.md §13):
//                        the fair-share policy is thrashing jobs on and
//                        off the cluster instead of letting them run.
//
// sample_once() is public and synchronous so tests (and one-shot CLI use)
// can exercise the exact code path the thread runs, without timing games.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

namespace lobster::telemetry {

class FlightRecorder;

struct MonitorConfig {
  /// Sampling period for the background thread.
  std::chrono::milliseconds interval{1000};
  /// Heartbeat JSONL sink; empty disables the file sink.
  std::string jsonl_path;
  /// Emit the human-readable line through log::info.
  bool log_text = true;
  /// gap_frac above this raises straggler_gap (paper's 10% threshold).
  double straggler_gap_threshold = 0.10;
  /// Remote-fetch retries per interval above this raise retry_storm.
  std::uint64_t retry_storm_threshold = 32;
  /// Job preemptions per interval above this raise job_preempt_storm —
  /// a few evictions are the policy working; a burst is thrash.
  std::uint64_t preempt_storm_threshold = 8;
  /// Flight-recorder wiring (DESIGN.md §11): every heartbeat line is fed
  /// into the recorder's ring, and any sample with an anomaly flag triggers
  /// an incident dump (named after the first raised flag). The recorder
  /// must outlive the monitor. nullptr = no recording.
  FlightRecorder* recorder = nullptr;
};

/// One registry sample with interval deltas and derived anomaly flags.
struct MonitorSample {
  std::uint64_t seq = 0;
  double uptime_s = 0.0;

  // Absolute values at sample time.
  std::uint64_t iterations = 0;
  std::uint64_t imbalanced_iterations = 0;
  double gap_frac = 0.0;
  std::uint64_t bytes_consumed = 0;
  std::uint64_t prefetch_bytes = 0;
  std::uint64_t queue_pushes = 0;
  std::uint64_t queue_pops = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t trace_emitted = 0;
  std::uint64_t trace_dropped = 0;
  std::uint64_t peer_down_events = 0;  ///< comm.peer_down counter
  std::uint64_t retries = 0;           ///< comm.retries counter
  std::uint64_t iteration_stalls = 0;  ///< executor.iteration_stalls counter
  std::uint64_t corrupt_replies = 0;   ///< comm.corrupt_replies counter
  std::uint64_t job_starvations = 0;   ///< cluster.job_starvations counter
  std::uint64_t job_preemptions = 0;   ///< cluster.job_preemptions counter
  std::uint64_t slow_node_events = 0;  ///< balancer.slow_node_detected counter
  double jobs_running = 0.0;           ///< cluster.jobs_running gauge
  double jobs_queued = 0.0;            ///< cluster.jobs_queued gauge

  // Deltas since the previous sample (== absolutes on the first one).
  std::uint64_t d_iterations = 0;
  std::uint64_t d_bytes_consumed = 0;
  std::uint64_t d_prefetch_bytes = 0;
  std::uint64_t d_queue_pops = 0;
  std::uint64_t d_peer_down_events = 0;
  std::uint64_t d_retries = 0;
  std::uint64_t d_iteration_stalls = 0;
  std::uint64_t d_corrupt_replies = 0;
  std::uint64_t d_job_starvations = 0;
  std::uint64_t d_job_preemptions = 0;
  std::uint64_t d_slow_node_events = 0;

  bool straggler_gap = false;
  bool prefetch_outrun = false;
  bool queue_starved = false;
  bool trace_ring_overflow = false;
  bool peer_down = false;
  bool retry_storm = false;
  bool iteration_stalled = false;
  bool corruption_detected = false;
  bool job_starved = false;
  bool slow_node_detected = false;
  bool job_preempt_storm = false;

  bool any_flag() const noexcept {
    return straggler_gap || prefetch_outrun || queue_starved || trace_ring_overflow ||
           peer_down || retry_storm || iteration_stalled || corruption_detected ||
           job_starved || slow_node_detected || job_preempt_storm;
  }
  double cache_hit_ratio() const noexcept {
    const auto total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) / static_cast<double>(total) : 0.0;
  }
};

class Monitor {
 public:
  explicit Monitor(MonitorConfig config = {});
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Launches the reporter thread; no-op when already running.
  void start();
  /// Stops and joins the thread, emitting one final sample; no-op when idle.
  void stop();
  bool running() const noexcept { return running_; }

  /// Takes one sample, updates delta state, emits to the configured sinks,
  /// and returns it. Thread-safe; this is exactly what the thread does.
  MonitorSample sample_once();

  /// Heartbeats emitted so far (thread + manual sample_once calls).
  std::uint64_t samples_emitted() const noexcept { return seq_; }

 private:
  void emit(const MonitorSample& sample);

  MonitorConfig config_;
  std::mutex mutex_;  ///< guards prev_/out_ against thread + manual races
  MonitorSample prev_;
  bool has_prev_ = false;
  std::ofstream out_;
  bool out_open_ = false;
  std::chrono::steady_clock::time_point started_at_;
  std::uint64_t seq_ = 0;
  bool running_ = false;
  std::condition_variable_any cv_;
  std::jthread thread_;
};

}  // namespace lobster::telemetry
