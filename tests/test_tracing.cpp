// Causal tracing & incident capture (DESIGN.md §11): span nesting and
// TLS-context propagation, message-envelope stamping across the bus,
// the structured event log, the response-tag window that keeps 64-bit
// request ids collision-free, the flight recorder's bundle round-trip,
// and — under TSan — concurrent degraded fetches each stitching into a
// single well-formed span tree with no cross-linked parents.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/bus.hpp"
#include "comm/fault.hpp"
#include "common/status.hpp"
#include "runtime/distribution_manager.hpp"
#include "telemetry/analysis/json.hpp"
#include "telemetry/analysis/span_analysis.hpp"
#include "telemetry/events.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/trace_context.hpp"

namespace lobster {
namespace {

namespace fs = std::filesystem;
using telemetry::EventKind;
using telemetry::EventLog;
using telemetry::Span;
using telemetry::SpanKind;
using telemetry::SpanLog;
using telemetry::TraceContext;

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SpanLog::instance().clear();
    EventLog::instance().clear();
    SpanLog::instance().set_enabled(true);
    EventLog::instance().set_enabled(true);
  }
  void TearDown() override {
    SpanLog::instance().set_enabled(false);
    EventLog::instance().set_enabled(false);
    SpanLog::instance().set_capacity(32768);
    EventLog::instance().close_stream();
    SpanLog::instance().clear();
    EventLog::instance().clear();
  }
};

// ---- span ids and TLS context.

TEST_F(TracingTest, IdsAreNonZeroAndUnique) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto id = SpanLog::instance().next_id();
    ASSERT_NE(id, 0U);
    ASSERT_TRUE(seen.insert(id).second) << "duplicate id after " << i << " draws";
  }
}

TEST_F(TracingTest, NestedSpansShareTheTraceAndChainParents) {
  EXPECT_FALSE(telemetry::current_trace_context().valid());
  std::uint64_t trace = 0, root = 0, child = 0;
  {
    Span fetch(SpanKind::kFetch, 0, 42);
    const auto root_ctx = fetch.context();
    ASSERT_TRUE(root_ctx.valid());
    EXPECT_EQ(root_ctx.parent_span_id, 0U);  // fresh trace roots itself
    trace = root_ctx.trace_id;
    root = root_ctx.span_id;
    {
      Span attempt(SpanKind::kAttempt, 0, 42);
      const auto child_ctx = attempt.context();
      EXPECT_EQ(child_ctx.trace_id, trace);
      EXPECT_EQ(child_ctx.parent_span_id, root);
      child = child_ctx.span_id;
      attempt.set_status(StatusCode::kTimeout);
    }
    // Inner span closed: the thread-current context is the root again.
    EXPECT_EQ(telemetry::current_trace_context().span_id, root);
    Span::instant(SpanKind::kDetour, 0, 42, 3);
  }
  EXPECT_FALSE(telemetry::current_trace_context().valid());

  const auto spans = SpanLog::instance().snapshot();
  ASSERT_EQ(spans.size(), 3U);  // attempt, detour, fetch (close order)
  EXPECT_EQ(spans[0].kind, SpanKind::kAttempt);
  EXPECT_EQ(spans[0].span_id, child);
  EXPECT_EQ(spans[0].status, StatusCode::kTimeout);
  EXPECT_EQ(spans[1].kind, SpanKind::kDetour);
  EXPECT_EQ(spans[1].parent_span_id, root);
  EXPECT_EQ(spans[1].begin_us, spans[1].end_us);  // instant
  EXPECT_EQ(spans[2].kind, SpanKind::kFetch);
  for (const auto& span : spans) EXPECT_EQ(span.trace_id, trace);
}

TEST_F(TracingTest, RemoteParentContinuesTheSendersTrace) {
  TraceContext remote;
  {
    Span attempt(SpanKind::kAttempt, 0, 7);
    remote = attempt.context();
  }
  {
    Span serve(SpanKind::kServe, 3, remote, 7);
    const auto ctx = serve.context();
    EXPECT_EQ(ctx.trace_id, remote.trace_id);
    EXPECT_EQ(ctx.parent_span_id, remote.span_id);
  }
  // An invalid propagated context (untraced sender) makes the span inert.
  Span inert(SpanKind::kServe, 3, TraceContext{}, 7);
  EXPECT_FALSE(inert.active());

  const auto spans = SpanLog::instance().snapshot();
  ASSERT_EQ(spans.size(), 2U);
  EXPECT_EQ(spans[1].rank, 3);
  EXPECT_EQ(spans[1].parent_span_id, spans[0].span_id);
}

TEST_F(TracingTest, DisabledLogMakesSpansFree) {
  SpanLog::instance().set_enabled(false);
  Span fetch(SpanKind::kFetch, 0, 1);
  EXPECT_FALSE(fetch.active());
  EXPECT_FALSE(telemetry::current_trace_context().valid());
  EXPECT_FALSE(fetch.context().valid());
}

TEST_F(TracingTest, RingDropsOldestBeyondCapacity) {
  SpanLog::instance().set_capacity(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Span span(SpanKind::kFetch, 0, i);
  }
  const auto spans = SpanLog::instance().snapshot();
  ASSERT_EQ(spans.size(), 4U);
  EXPECT_EQ(SpanLog::instance().dropped(), 6U);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(spans[i].arg, 6 + i);  // oldest first
}

// ---- bus propagation: the envelope carries the sender's context.

TEST_F(TracingTest, MessagesCarryTheSendersSpanContext) {
  comm::MessageBus bus(2);
  std::uint64_t trace = 0, span_id = 0;
  {
    Span attempt(SpanKind::kAttempt, 0, 5);
    trace = attempt.context().trace_id;
    span_id = attempt.context().span_id;
    ASSERT_TRUE(bus.endpoint(0).send_value<int>(1, 9, 5).ok());
  }
  ASSERT_TRUE(bus.endpoint(0).send_value<int>(1, 9, 6).ok());  // outside any span

  const auto traced = bus.endpoint(1).recv_for(9, 1.0);
  ASSERT_TRUE(traced.ok());
#if defined(LOBSTER_TELEMETRY_DISABLED)
  // Kill-switch build: the envelope stamp is compiled out entirely.
  (void)trace;
  (void)span_id;
  EXPECT_EQ(traced->trace_id, 0U);
  EXPECT_EQ(traced->span_id, 0U);
#else
  EXPECT_EQ(traced->trace_id, trace);
  EXPECT_EQ(traced->span_id, span_id);
#endif
  const auto untraced = bus.endpoint(1).recv_for(9, 1.0);
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced->trace_id, 0U);
}

// ---- structured event log.

TEST_F(TracingTest, EventsCaptureTheCurrentTraceAndStreamJsonl) {
  const fs::path sink = fs::path(::testing::TempDir()) / "tracing_events.jsonl";
  fs::remove(sink);
  ASSERT_TRUE(EventLog::instance().open_stream(sink.string()));

  std::uint64_t trace = 0;
  {
    Span fetch(SpanKind::kFetch, 0, 11);
    trace = fetch.context().trace_id;
    EventLog::instance().emit(EventKind::kBreakerOpen, 2, 3, 1, "holder 2");
  }
  EventLog::instance().emit(EventKind::kNodeRejoin, 2, 100);
  EventLog::instance().close_stream();

  const auto events = EventLog::instance().snapshot();
  ASSERT_EQ(events.size(), 2U);
  EXPECT_EQ(events[0].kind, EventKind::kBreakerOpen);
  EXPECT_EQ(events[0].trace_id, trace);  // emitted inside the fetch span
  EXPECT_EQ(events[0].seq, 1U);
  EXPECT_EQ(events[0].detail, "holder 2");
  EXPECT_EQ(events[1].trace_id, 0U);  // emitted outside any span
  EXPECT_EQ(events[1].seq, 2U);

  std::ifstream in(sink);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const auto value = telemetry::analysis::parse_json(line);
    EXPECT_EQ(value.get_string("schema"), "lobster.events.v1");
    EXPECT_FALSE(value.get_string("kind").empty());
  }
  EXPECT_EQ(lines, 2U);
  fs::remove(sink);
}

TEST_F(TracingTest, EventKindNamesMatchTheSchema) {
  using telemetry::event_kind_name;
  EXPECT_STREQ(event_kind_name(EventKind::kJobAdmitted), "job_admitted");
  EXPECT_STREQ(event_kind_name(EventKind::kWatchdogStall), "watchdog_stall");
  EXPECT_STREQ(event_kind_name(EventKind::kServeSendFailure), "serve_send_failure");
  EXPECT_STREQ(event_kind_name(EventKind::kIncident), "incident");
}

// ---- response-tag window (64-bit request ids, wraparound hardening).

TEST(ResponseTag, WindowIsDisjointAndWrapsWithoutCollision) {
  using DM = runtime::DistributionManager;
  // The window never touches the request tag or the reserved any-tag.
  EXPECT_GT(DM::kResponseTagBase, comm::Tag{0x0F00});
  EXPECT_EQ(DM::response_tag(0), DM::kResponseTagBase);
  EXPECT_NE(DM::response_tag(0), comm::kAnyTag);
  EXPECT_NE(DM::response_tag(DM::kResponseTagMask), comm::kAnyTag);

  // Sequential ids map to distinct tags across the whole 2^30 window...
  EXPECT_NE(DM::response_tag(1), DM::response_tag(2));
  EXPECT_EQ(DM::response_tag(DM::kResponseTagMask),
            DM::kResponseTagBase + static_cast<comm::Tag>(DM::kResponseTagMask));
  // ...and wrap back to the base instead of overflowing into foreign tags.
  EXPECT_EQ(DM::response_tag(DM::kResponseTagMask + 1), DM::kResponseTagBase);
  // 64-bit ids far beyond the old 32-bit counter still land in the window.
  const std::uint64_t huge = (1ULL << 40) + 123;
  EXPECT_EQ(DM::response_tag(huge), DM::response_tag(huge & DM::kResponseTagMask));
  // In-flight requests can't collide unless 2^30 ids are open at once.
  EXPECT_NE(DM::response_tag(7), DM::response_tag(7 + DM::kResponseTagMask));
  EXPECT_EQ(DM::response_tag(7), DM::response_tag(7 + DM::kResponseTagMask + 1));
}

// ---- concurrency: many degraded fetches, one well-formed tree each.

TEST_F(TracingTest, ConcurrentDegradedFetchesBuildIsolatedSpanTrees) {
#if defined(LOBSTER_TELEMETRY_DISABLED)
  GTEST_SKIP() << "cross-node propagation needs the envelope stamp, which the "
                  "telemetry kill switch compiles out";
#endif
  constexpr std::uint16_t kThreads = 8;
  constexpr std::uint32_t kFetchesPerThread = 4;

  comm::MessageBus bus(3);
  comm::FaultPlan fault(3);
  bus.set_fault_plan(&fault);
  fault.kill(2);  // first-choice holder is dead: every fetch detours

  runtime::FetchPolicy policy;
  policy.timeout = 0.01;
  policy.max_retries = 1;  // one retry against the dead rank -> backoff span
  policy.backoff_base = 0.001;
  policy.backoff_cap = 0.002;
  policy.breaker_threshold = 1000;  // keep every attempt live (no fast-fail)
  runtime::DistributionManager server(bus.endpoint(1), [](SampleId) { return true; },
                                      [](SampleId) { return Bytes{128}; });
  server.start();
  runtime::DistributionManager client(bus.endpoint(0), nullptr, nullptr, policy);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::uint16_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&client, t] {
      for (std::uint32_t i = 0; i < kFetchesPerThread; ++i) {
        const SampleId sample = t * 100 + i;
        Span fetch(SpanKind::kFetch, 0, sample);
        fetch.set_arg2(i);
        const auto dead = client.fetch_remote(sample, 2);
        ASSERT_FALSE(dead.ok());
        Span::instant(SpanKind::kDetour, 0, sample, 1);
        const auto good = client.fetch_remote(sample, 1);
        ASSERT_TRUE(good.ok()) << good.status().to_string();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  server.stop();

  const auto records = SpanLog::instance().snapshot();
  EXPECT_EQ(SpanLog::instance().dropped(), 0U);
  const auto loaded = telemetry::analysis::spans_from_records(records);
  const auto analysis = telemetry::analysis::analyze_spans(loaded);

  EXPECT_EQ(analysis.fetch_traces, std::size_t{kThreads} * kFetchesPerThread);
  EXPECT_EQ(analysis.degraded_fetches, analysis.fetch_traces);  // all detoured
  EXPECT_EQ(analysis.cross_rank_fetches, analysis.fetch_traces);  // serve@1
  EXPECT_EQ(analysis.malformed_traces, 0U);
  for (const auto& trace : analysis.traces) {
    EXPECT_TRUE(trace.well_formed) << "trace " << trace.trace_id;
  }

  // No cross-linked parents: every child's parent lives in the SAME trace.
  std::map<std::string, std::string> trace_of;  // span id -> trace id
  for (const auto& span : loaded) trace_of[span.span] = span.trace;
  for (const auto& span : loaded) {
    if (span.parent == "0") continue;
    const auto it = trace_of.find(span.parent);
    ASSERT_NE(it, trace_of.end()) << "dangling parent " << span.parent;
    EXPECT_EQ(it->second, span.trace) << "span " << span.span
                                      << " parented across traces";
  }
}

// ---- flight recorder: trigger/dump round trip.

TEST_F(TracingTest, FlightRecorderDumpsAValidBundle) {
  const fs::path out_dir = fs::path(::testing::TempDir()) / "lobster_fr_bundle";
  fs::remove_all(out_dir);

  telemetry::FlightRecorderConfig config;
  config.out_dir = out_dir.string();
  config.cooldown_s = 60.0;  // second trigger below must be suppressed
  config.config_echo_json = "{\"nodes\":3}";
  telemetry::FlightRecorder recorder(config);

  {
    Span fetch(SpanKind::kFetch, 0, 1);
    EventLog::instance().emit(EventKind::kQuarantine, 1, 1, 0, "corrupt_reply");
  }
  recorder.record_heartbeat("{\"schema\":\"lobster.heartbeat.v1\",\"seq\":1}");
  recorder.record_heartbeat("{\"schema\":\"lobster.heartbeat.v1\",\"seq\":2}");

  const auto result = recorder.trigger("retry_storm");
  ASSERT_TRUE(result.dumped);
  EXPECT_EQ(result.seq, 1U);
  EXPECT_EQ(recorder.bundles_written(), 1U);
  for (const char* name :
       {"manifest.json", "spans.jsonl", "events.jsonl", "heartbeats.jsonl", "metrics.csv"}) {
    EXPECT_TRUE(fs::exists(fs::path(result.dir) / name)) << name;
  }

  std::ifstream in(fs::path(result.dir) / "manifest.json");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto manifest = telemetry::analysis::parse_json(buffer.str());
  EXPECT_EQ(manifest.get_string("schema"), "lobster.incident.v1");
  EXPECT_EQ(manifest.get_string("reason"), "retry_storm");
  EXPECT_EQ(manifest.get_number("spans"), 1.0);
  EXPECT_EQ(manifest.get_number("events"), 1.0);
  EXPECT_EQ(manifest.get_number("heartbeats"), 2.0);
  EXPECT_EQ(manifest.at("config").get_number("nodes"), 3.0);

  // The dump itself is a structured event, linked to the bundle seq.
  const auto events = EventLog::instance().snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, EventKind::kIncident);
  EXPECT_EQ(events.back().a, 1U);

  // Within the cooldown: counted, not dumped.
  EXPECT_FALSE(recorder.trigger("retry_storm").dumped);
  EXPECT_EQ(recorder.triggers_suppressed(), 1U);
  EXPECT_EQ(recorder.bundles_written(), 1U);
  fs::remove_all(out_dir);
}

TEST_F(TracingTest, FlightRecorderWithoutOutDirSuppressesEverything) {
  telemetry::FlightRecorder recorder(telemetry::FlightRecorderConfig{});
  EXPECT_FALSE(recorder.trigger("anything").dumped);
  EXPECT_EQ(recorder.bundles_written(), 0U);
  EXPECT_EQ(recorder.triggers_suppressed(), 1U);
}

TEST_F(TracingTest, MonitorFeedsHeartbeatsIntoTheRecorder) {
  const fs::path out_dir = fs::path(::testing::TempDir()) / "lobster_fr_monitor";
  fs::remove_all(out_dir);
  telemetry::FlightRecorderConfig recorder_config;
  recorder_config.out_dir = out_dir.string();
  recorder_config.cooldown_s = 0.0;
  telemetry::FlightRecorder recorder(recorder_config);

  telemetry::MonitorConfig monitor_config;
  monitor_config.log_text = false;
  monitor_config.recorder = &recorder;
  telemetry::Monitor monitor(monitor_config);
  monitor.sample_once();
  monitor.sample_once();

  const auto result = recorder.trigger("manual");
  ASSERT_TRUE(result.dumped);
  std::ifstream in(fs::path(result.dir) / "heartbeats.jsonl");
  std::string line;
  std::size_t heartbeats = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++heartbeats;
    const auto beat = telemetry::analysis::parse_json(line);
    EXPECT_EQ(beat.get_string("schema"), "lobster.heartbeat.v1");
    EXPECT_TRUE(beat.has("flags"));
  }
  EXPECT_EQ(heartbeats, 2U);
  fs::remove_all(out_dir);
}

}  // namespace
}  // namespace lobster
