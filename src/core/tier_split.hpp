// Per-tier loading-thread split optimization (extension).
//
// Eq. 1 allows distinct thread counts per tier (α for local, β for remote,
// γ for the PFS); Algorithm 1 simplifies to a single per-GPU count applied
// uniformly. This extension solves the inner problem exactly: given a GPU's
// per-tier bytes and its total thread grant, enumerate the integer splits
// and keep the one minimizing the Eq. 1 load time. Cheap (O(T²) for three
// tiers with the SSD folded into α's bus) and usable as a drop-in refinement
// after Algorithm 1 has fixed the per-GPU totals — see
// bench/abl_design_choices ("uniform vs optimized split").
#pragma once

#include <cstdint>

#include "storage/hierarchy.hpp"

namespace lobster::core {

struct TierSplitResult {
  storage::ThreadAlloc alloc;
  Seconds load_time = 0.0;      ///< Eq. 1 time under `alloc`
  Seconds uniform_time = 0.0;   ///< Eq. 1 time under the even feasible split
  std::uint32_t evaluations = 0;

  double improvement() const noexcept {
    return uniform_time > 0.0 ? uniform_time / std::max(load_time, 1e-12) : 1.0;
  }
};

/// Finds the best integer split of `total_threads` across the tiers that
/// actually have bytes to move (tiers without demand get no threads).
/// `total_threads` >= 1; at least one thread goes to every demanded tier.
TierSplitResult optimize_tier_split(const storage::StorageModel& model,
                                    const storage::TierBytes& bytes,
                                    std::uint32_t total_threads,
                                    const storage::Contention& contention = {});

}  // namespace lobster::core
