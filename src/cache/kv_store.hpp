// In-memory key-value sample store.
//
// §2 notes Lobster's design also applies when the distributed cache is
// replaced by "alternatives ... like for example KV-stores": a cluster
// service keyed by sample id instead of per-node caches with a directory.
// This is that substrate — a sharded, thread-safe KV store the online
// runtime can use as its remote tier (PlanExecutor::set_kv_store): demand
// misses check the store before falling back to the PFS, and fetched
// samples are published for the other nodes.
//
// Payloads are held as shared_ptr<const vector<byte>>: get() hands out a
// reference to the immutable payload instead of copying it, so a remote hit
// costs one shard-lock plus a refcount bump no matter how large the sample
// is. Overwrites and erases drop the store's reference; readers holding the
// old payload keep it alive until they're done.
//
// Typed API: get() returns Result<PayloadPtr> (kNotFound on miss, never a
// null pointer on success) and put() returns Status (kOverflow once an
// optional capacity is exhausted) — the causes the runtime's degraded
// routing branches on, instead of a bare nullptr/void.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace lobster::cache {

class KvStore {
 public:
  /// Immutable, shareable payload handle; non-null whenever get() is ok.
  using PayloadPtr = std::shared_ptr<const std::vector<std::byte>>;

  /// `shards` must be a power of two (lock striping).
  explicit KvStore(std::size_t shards = 16);

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Optional capacity ceiling; 0 (default) = unbounded. A put that would
  /// push the store past the ceiling is rejected with StatusCode::kOverflow
  /// (overwrites that shrink or keep the footprint always succeed).
  void set_capacity(Bytes capacity);
  Bytes capacity() const noexcept;

  /// Inserts or overwrites a sample's payload.
  Status put(SampleId sample, std::vector<std::byte> payload);

  /// Zero-copy insert of an already-shared payload (must be non-null).
  Status put(SampleId sample, PayloadPtr payload);

  /// Shared reference to the payload; StatusCode::kNotFound on miss.
  Result<PayloadPtr> get(SampleId sample) const;

  bool contains(SampleId sample) const;
  bool erase(SampleId sample);

  std::size_t size() const;
  Bytes bytes() const;

  /// Multi-tenant accounting (DESIGN.md §10): bytes held under one dataset
  /// namespace (keys whose high bits match, see cache/namespace.hpp).
  /// Aggregates over shards — not a hot-path call.
  Bytes bytes_in_namespace(std::uint32_t ns) const;

  /// Drops every entry of a namespace (a dataset's last job released it).
  /// Returns the number of entries erased.
  std::size_t erase_namespace(std::uint32_t ns);

  /// Sorted keys currently held under one namespace — the store-truth side
  /// of a checkpoint residency manifest (DESIGN.md §13): restore replays
  /// only entries the store still holds, and the sort keeps manifests
  /// deterministic. Aggregates over shards — not a hot-path call.
  std::vector<SampleId> keys_in_namespace(std::uint32_t ns) const;

  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t get_hits = 0;
    std::uint64_t get_misses = 0;
    std::uint64_t erases = 0;
    std::uint64_t rejected_puts = 0;  ///< puts refused by the capacity ceiling
  };
  Stats stats() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<SampleId, PayloadPtr> entries;
    Bytes bytes = 0;
    Stats stats;
  };

  Shard& shard_for(SampleId sample) const;

  mutable std::vector<Shard> shards_;
  std::size_t mask_;
  std::atomic<Bytes> capacity_{0};
  // Store-wide footprint, maintained alongside the per-shard byte counts so
  // the capacity check stays a single relaxed load on the put fast path.
  mutable std::atomic<Bytes> total_bytes_{0};
};

}  // namespace lobster::cache
