#include "comm/bus.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace lobster::comm {

std::uint16_t Endpoint::world_size() const noexcept { return bus_->world_size(); }

bool Endpoint::send(Rank to, Tag tag, std::vector<std::byte> payload) {
  return bus_->do_send(to, Message{rank_, tag, std::move(payload)});
}

std::optional<Message> Endpoint::recv(Tag tag) { return bus_->do_recv(rank_, tag, true); }

std::optional<Message> Endpoint::try_recv(Tag tag) { return bus_->do_recv(rank_, tag, false); }

void Endpoint::barrier() { bus_->do_barrier(); }

std::vector<double> Endpoint::allreduce_sum(std::vector<double> values) {
  return bus_->do_allreduce(rank_, std::move(values));
}

MessageBus::MessageBus(std::uint16_t world_size)
    : world_size_(world_size), mailboxes_(world_size) {
  if (world_size == 0) throw std::invalid_argument("MessageBus: world_size must be >= 1");
  endpoints_.reserve(world_size);
  for (Rank r = 0; r < world_size; ++r) endpoints_.push_back(Endpoint(*this, r));
}

MessageBus::~MessageBus() { shutdown(); }

Endpoint& MessageBus::endpoint(Rank rank) {
  if (rank >= world_size_) throw std::out_of_range("MessageBus: rank out of range");
  return endpoints_[rank];
}

void MessageBus::shutdown() {
  {
    const std::scoped_lock lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool MessageBus::is_shutdown() const {
  const std::scoped_lock lock(mutex_);
  return shutdown_;
}

bool MessageBus::do_send(Rank to, Message message) {
  if (to >= world_size_) throw std::out_of_range("MessageBus: destination rank out of range");
  {
    const std::scoped_lock lock(mutex_);
    if (shutdown_) return false;
    mailboxes_[to].push_back(std::move(message));
  }
  cv_.notify_all();
  return true;
}

std::optional<Message> MessageBus::do_recv(Rank me, Tag tag, bool blocking) {
  std::unique_lock lock(mutex_);
  auto find_match = [&]() -> std::optional<Message> {
    auto& box = mailboxes_[me];
    const auto it = std::find_if(box.begin(), box.end(), [&](const Message& m) {
      return tag == kAnyTag || m.tag == tag;
    });
    if (it == box.end()) return std::nullopt;
    Message found = std::move(*it);
    box.erase(it);
    return found;
  };

  if (!blocking) return find_match();
  for (;;) {
    if (auto found = find_match()) return found;
    if (shutdown_) return std::nullopt;
    cv_.wait(lock);
  }
}

void MessageBus::do_barrier() {
  std::unique_lock lock(mutex_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_waiting_ == world_size_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    lock.unlock();
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return barrier_generation_ != my_generation || shutdown_; });
}

std::vector<double> MessageBus::do_allreduce(Rank me, std::vector<double> values) {
  (void)me;
  std::unique_lock lock(mutex_);
  const std::uint64_t my_generation = reduce_generation_;
  if (reduce_waiting_ == 0) {
    reduce_accum_ = values;
  } else {
    if (reduce_accum_.size() != values.size()) {
      throw std::invalid_argument("allreduce_sum: mismatched vector sizes across ranks");
    }
    for (std::size_t i = 0; i < values.size(); ++i) reduce_accum_[i] += values[i];
  }
  if (++reduce_waiting_ == world_size_) {
    reduce_result_ = reduce_accum_;
    reduce_waiting_ = 0;
    ++reduce_generation_;
    lock.unlock();
    cv_.notify_all();
    return reduce_result_;
  }
  cv_.wait(lock, [&] { return reduce_generation_ != my_generation || shutdown_; });
  return reduce_result_;
}

}  // namespace lobster::comm
