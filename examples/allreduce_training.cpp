// Data-parallel training over the comm bus, with real threads:
// R replica threads each train an MLP shard-by-shard through the same
// deterministic EpochSampler the loaders use, and synchronize gradients
// every iteration with comm::Endpoint::allreduce_sum — the actual
// all-reduce barrier whose stragglers the paper's load balancing targets.
//
// Because the all-reduce makes every replica apply identical averaged
// gradients, all replicas' weights stay bit-identical; the example verifies
// this at the end (a drift would indicate a broken collective).
//
//   $ ./allreduce_training [replicas=4] [epochs=6] [samples=2048]
#include <cstdio>
#include <thread>
#include <vector>

#include "comm/bus.hpp"
#include "common/config.hpp"
#include "data/sampler.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "nn/synthetic.hpp"

using namespace lobster;

namespace {

/// Flattens a layer's accumulated gradients into `out` (appended).
void append_gradients(nn::Dense& layer, std::vector<double>& out) {
  for (std::size_t i = 0; i < layer.weight_grad().size(); ++i) {
    out.push_back(layer.weight_grad().data()[i]);
  }
  for (std::size_t i = 0; i < layer.bias_grad().size(); ++i) {
    out.push_back(layer.bias_grad().data()[i]);
  }
}

/// Writes averaged gradients back into the layer (consumed from `in` at
/// `offset`, advancing it).
void load_gradients(nn::Dense& layer, const std::vector<double>& in, std::size_t& offset,
                    double scale) {
  for (std::size_t i = 0; i < layer.weight_grad().size(); ++i) {
    layer.weight_grad().data()[i] = static_cast<float>(in[offset++] * scale);
  }
  for (std::size_t i = 0; i < layer.bias_grad().size(); ++i) {
    layer.bias_grad().data()[i] = static_cast<float>(in[offset++] * scale);
  }
}

std::uint64_t weights_checksum(const nn::Mlp& model_const) {
  auto& model = const_cast<nn::Mlp&>(model_const);
  std::uint64_t hash = 1469598103934665603ULL;
  auto fold = [&hash](const nn::Matrix& m) {
    for (std::size_t i = 0; i < m.size(); ++i) {
      std::uint32_t bits;
      std::memcpy(&bits, &m.data()[i], sizeof(bits));
      hash = (hash ^ bits) * 1099511628211ULL;
    }
  };
  fold(model.layer1().weights());
  fold(model.layer1().bias());
  fold(model.layer2().weights());
  fold(model.layer2().bias());
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = Config::from_args(argc, argv);
  const auto replicas = static_cast<std::uint16_t>(config.get_int("replicas", 4));
  const auto epochs = static_cast<std::uint32_t>(config.get_int("epochs", 6));
  const auto samples = static_cast<std::uint32_t>(config.get_int("samples", 2048));
  const auto batch = static_cast<std::uint32_t>(config.get_int("batch", 16));

  const nn::SyntheticTask task(8, 16, 0.25, 7);
  data::SamplerConfig sampler_config;
  sampler_config.num_samples = samples;
  sampler_config.nodes = 1;
  sampler_config.gpus_per_node = replicas;
  sampler_config.batch_size = batch;
  sampler_config.seed = 42;
  const data::EpochSampler sampler(sampler_config);
  const std::uint32_t I = sampler.iterations_per_epoch();

  comm::MessageBus bus(replicas);
  std::vector<std::unique_ptr<nn::Mlp>> models;
  for (std::uint16_t r = 0; r < replicas; ++r) {
    // Identical init seed: replicas start (and must stay) in lockstep.
    models.push_back(std::make_unique<nn::Mlp>(task.features(), 32, task.classes(), /*seed=*/1));
  }

  std::printf("data-parallel MLP: %u replicas x batch %u, %u iterations/epoch, %u epochs\n",
              replicas, batch, I, epochs);

  std::vector<double> final_loss(replicas, 0.0);
  {
    std::vector<std::jthread> threads;
    for (std::uint16_t r = 0; r < replicas; ++r) {
      threads.emplace_back([&, r] {
        auto& model = *models[r];
        auto& endpoint = bus.endpoint(r);
        for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
          double loss_sum = 0.0;
          for (std::uint32_t h = 0; h < I; ++h) {
            const auto ids = sampler.minibatch(epoch, h, 0, static_cast<GpuId>(r));
            loss_sum += model.train_batch(task.batch_features(ids), task.batch_labels(ids));

            // All-reduce the gradients, average, and step in lockstep.
            std::vector<double> gradients;
            append_gradients(model.layer1(), gradients);
            append_gradients(model.layer2(), gradients);
            const auto summed = endpoint.allreduce_sum(std::move(gradients));
            std::size_t offset = 0;
            const double inv = 1.0 / static_cast<double>(replicas);
            load_gradients(model.layer1(), summed, offset, inv);
            load_gradients(model.layer2(), summed, offset, inv);
            model.apply_gradients(0.05F, 0.9F, batch);
          }
          if (r == 0) {
            std::printf("  epoch %u: replica-0 mean loss %.4f\n", epoch,
                        loss_sum / static_cast<double>(I));
          }
          final_loss[r] = loss_sum / static_cast<double>(I);
        }
      });
    }
  }

  // Replicas applied identical averaged gradients -> identical weights.
  const auto reference = weights_checksum(*models[0]);
  bool consistent = true;
  for (std::uint16_t r = 1; r < replicas; ++r) {
    if (weights_checksum(*models[r]) != reference) consistent = false;
  }
  std::printf("replica weight checksums identical: %s\n", consistent ? "yes" : "NO (bug!)");

  // Evaluate the shared model.
  std::vector<SampleId> eval_ids(512);
  for (std::size_t i = 0; i < eval_ids.size(); ++i) {
    eval_ids[i] = static_cast<SampleId>(samples + 100 + i);
  }
  const double accuracy = nn::SoftmaxCrossEntropy::accuracy(
      models[0]->predict(task.batch_features(eval_ids)), task.batch_labels(eval_ids));
  std::printf("held-out accuracy after %u epochs: %.3f\n", epochs, accuracy);
  return consistent ? 0 : 1;
}
