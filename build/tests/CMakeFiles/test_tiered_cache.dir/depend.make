# Empty dependencies file for test_tiered_cache.
# This may be replaced when dependencies are built.
