#include "cluster/namespace_registry.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "cluster/job.hpp"

namespace lobster::cluster {

std::uint64_t dataset_fingerprint(const JobSpec& spec) noexcept {
  // Order-sensitive splitmix chain over the fields that define catalog
  // contents (data::SampleCatalog is deterministic in (spec, seed)).
  std::uint64_t h = 0x10b57e7aULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    std::uint64_t state = h;
    h = splitmix64(state);
  };
  for (const char c : spec.dataset.name) mix(static_cast<std::uint64_t>(c));
  mix(spec.dataset.num_samples);
  mix(static_cast<std::uint64_t>(spec.dataset.lognormal_mu * 1e9));
  mix(static_cast<std::uint64_t>(spec.dataset.lognormal_sigma * 1e9));
  mix(spec.dataset.min_bytes);
  mix(spec.dataset.max_bytes);
  mix(spec.dataset_seed);
  return h;
}

cache::NamespaceId NamespaceRegistry::acquire(std::uint64_t fingerprint) {
  const std::scoped_lock lock(mutex_);
  if (const auto it = by_fingerprint_.find(fingerprint); it != by_fingerprint_.end()) {
    ++live_.at(it->second).refs;
    return it->second;
  }
  cache::NamespaceId ns;
  if (!free_ids_.empty()) {
    ns = free_ids_.back();
    free_ids_.pop_back();
  } else if (next_fresh_ <= cache::kMaxNamespace) {
    ns = next_fresh_++;
  } else {
    throw std::runtime_error("NamespaceRegistry: all namespace ids live");
  }
  by_fingerprint_.emplace(fingerprint, ns);
  live_.emplace(ns, Entry{fingerprint, 1});
  return ns;
}

bool NamespaceRegistry::release(cache::NamespaceId ns) {
  const std::scoped_lock lock(mutex_);
  const auto it = live_.find(ns);
  if (it == live_.end()) throw std::invalid_argument("NamespaceRegistry: release of dead namespace");
  if (--it->second.refs > 0) return false;
  by_fingerprint_.erase(it->second.fingerprint);
  live_.erase(it);
  free_ids_.push_back(ns);
  return true;
}

bool NamespaceRegistry::shared(cache::NamespaceId ns) const {
  const std::scoped_lock lock(mutex_);
  const auto it = live_.find(ns);
  return it != live_.end() && it->second.refs > 1;
}

std::uint32_t NamespaceRegistry::refcount(cache::NamespaceId ns) const {
  const std::scoped_lock lock(mutex_);
  const auto it = live_.find(ns);
  return it == live_.end() ? 0 : it->second.refs;
}

std::size_t NamespaceRegistry::live_namespaces() const {
  const std::scoped_lock lock(mutex_);
  return live_.size();
}

}  // namespace lobster::cluster
