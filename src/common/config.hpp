// Tiny key=value configuration parser for benches and examples.
//
// Accepts "--key=value" / "key=value" tokens (argv style) and newline- or
// space-separated strings. Typed getters with defaults; unknown keys are
// retained so callers can validate with `unconsumed()`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace lobster {

class Config {
 public:
  Config() = default;

  /// Parses argv-style tokens. Throws std::invalid_argument on a token
  /// without '='.
  static Config from_args(int argc, const char* const* argv);
  static Config from_tokens(const std::vector<std::string>& tokens);

  void set(const std::string& key, std::string value);
  bool contains(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys present in the config but never read by any getter.
  std::vector<std::string> unconsumed() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
};

}  // namespace lobster
