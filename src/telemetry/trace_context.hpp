// Cross-node causal tracing (DESIGN.md §11).
//
// The per-stage tracer (telemetry.hpp) answers "where does time go on this
// rank"; it cannot answer "what happened to THIS fetch". A degraded fetch
// that timed out twice, tripped a breaker, detoured to a second holder and
// fell back to the PFS shows up there as four unrelated counter bumps. The
// causal layer ties them together:
//
//  * TraceContext — a (trace_id, span_id, parent_span_id) triple. Every
//    remote fetch roots a fresh trace; every attempt, retry backoff,
//    breaker fast-fail, holder detour and PFS fallback opens a child span
//    of the thread's current context.
//  * Propagation — the thread-current context is carried in a TLS slot
//    (Span installs itself on construction, restores on destruction) and
//    stamped into every comm::Message the thread sends, so the serving
//    rank's handler span links back to the REQUESTER's attempt span:
//    span trees genuinely cross ranks.
//  * SpanLog — a process-wide bounded ring of completed SpanRecords with
//    drop-oldest semantics (the flight recorder's source of truth), plus a
//    JSONL exporter (`lobster.spans.v1`) for tools/trace_report --spans.
//
// Cost model: everything is gated on one relaxed atomic load. When the log
// is disabled (the default) a Span constructor is a branch; the executor's
// warm local fast path contains no span code at all. Span ids are process-
// unique (splitmix64 over an atomic counter) and never zero; 64-bit ids are
// serialized as hex STRINGS because the analysis JSON parser holds numbers
// as doubles (53-bit mantissa).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "telemetry/clock.hpp"

namespace lobster::telemetry {

/// Causal coordinates of one span. trace_id == 0 means "no active trace".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  bool valid() const noexcept { return trace_id != 0; }
};

/// The calling thread's innermost open span (invalid outside any span).
/// MessageBus::do_send stamps this into every outgoing message.
TraceContext current_trace_context() noexcept;

/// Span vocabulary. Fixed (not interned strings): the cross-node analyzer
/// attributes time by kind, so the set is part of the lobster.spans.v1
/// schema (tools/validate_metrics.py mirrors it).
enum class SpanKind : std::uint8_t {
  kFetch = 0,        ///< root: one end-to-end remote-tier fetch (executor)
  kAttempt,          ///< one request/reply round-trip against one holder
  kBackoff,          ///< retry backoff sleep between attempts
  kServe,            ///< remote rank's handler (parent = requester's attempt)
  kDetour,           ///< instant: routing moved to the next holder
  kPfsFallback,      ///< payload re-materialized from the PFS
  kBreakerFastFail,  ///< instant: open circuit breaker rejected the fetch
  kInventoryProbe,   ///< recovery half-open probe round-trip (its own trace)
  kMultiGet,         ///< root: one batched multi-get round against one holder
  kKindCount,
};

const char* span_kind_name(SpanKind kind) noexcept;

/// One completed span. `begin_us`/`end_us` are wall microseconds in the
/// Tracer's epoch, so spans, trace events, and structured events share one
/// timeline. `arg`/`arg2` carry kind-specific payload (sample id, holder
/// rank, iteration, attempt index).
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint64_t begin_us = 0;
  std::uint64_t end_us = 0;
  std::uint64_t arg = 0;
  std::uint64_t arg2 = 0;
  SpanKind kind = SpanKind::kFetch;
  StatusCode status = StatusCode::kOk;
  std::uint16_t rank = 0;
};

/// Process-wide bounded span sink. All ranks of the in-process cluster
/// share it, which is exactly what cross-rank stitching wants: the log IS
/// the cluster-wide view. Mutex-guarded — span volume is per remote fetch,
/// not per sample, and the warm path never reaches it.
class SpanLog {
 public:
  static SpanLog& instance();

  SpanLog(const SpanLog&) = delete;
  SpanLog& operator=(const SpanLog&) = delete;

  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }

  /// Ring capacity in records (default 32768); takes effect immediately,
  /// dropping the oldest surplus. Call with producers quiescent.
  void set_capacity(std::size_t spans);

  void record(const SpanRecord& span);

  /// Surviving records, oldest first.
  std::vector<SpanRecord> snapshot() const;

  std::uint64_t recorded() const noexcept { return recorded_.load(std::memory_order_relaxed); }
  /// Records lost to ring overwrite.
  std::uint64_t dropped() const;

  /// Drops records and the drop count; ids keep advancing (uniqueness).
  void clear();

  /// Process-unique non-zero span/trace id.
  std::uint64_t next_id() noexcept;

  /// One `lobster.spans.v1` line per record (no trailing newline).
  static void append_json(std::string& out, const SpanRecord& span);
  void write_jsonl(std::ostream& out) const;
  bool write_jsonl_file(const std::string& path) const;

 private:
  SpanLog() = default;

  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t capacity_ = 32768;
  std::uint64_t head_ = 0;  ///< records ever accepted; ring slot = head % cap
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> id_state_{0x5EED'CAFE'F00D'D1CEULL};
};

/// RAII span. Construction opens a child of the thread-current context (or
/// roots a new trace when there is none / when `remote_parent` is given)
/// and installs itself as the thread-current context; destruction restores
/// the previous context and records the span. Inert (no TLS write, no
/// clock read) when the SpanLog is disabled at construction.
class Span {
 public:
  /// Child of the thread-current context; roots a new trace when none.
  Span(SpanKind kind, std::uint16_t rank, std::uint64_t arg = 0) noexcept;
  /// Continues a propagated (cross-rank) context: same trace_id, parented
  /// under the sender's span. Invalid `remote_parent` => inert span.
  Span(SpanKind kind, std::uint16_t rank, const TraceContext& remote_parent,
       std::uint64_t arg = 0) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const noexcept { return active_; }
  void set_status(StatusCode code) noexcept { record_.status = code; }
  void set_arg(std::uint64_t v) noexcept { record_.arg = v; }
  void set_arg2(std::uint64_t v) noexcept { record_.arg2 = v; }

  /// This span's context (invalid when inert) — what a message send inside
  /// the span propagates.
  TraceContext context() const noexcept;

  /// Zero-duration child of the thread-current context (detours, breaker
  /// fast-fails). No-op when the log is disabled or no context is open.
  static void instant(SpanKind kind, std::uint16_t rank, std::uint64_t arg = 0,
                      std::uint64_t arg2 = 0) noexcept;

 private:
  void open(SpanKind kind, std::uint16_t rank, std::uint64_t trace_id,
            std::uint64_t parent_span_id, std::uint64_t arg) noexcept;

  SpanRecord record_{};
  TraceContext saved_{};
  bool active_ = false;
};

}  // namespace lobster::telemetry
