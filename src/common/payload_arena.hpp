// Layered payload arena: thread-local slab -> shared pool -> heap.
//
// The hot fetch/materialize paths allocate one byte buffer per sample; at
// millions of samples per second the global heap (and its lock) becomes a
// contention point, and freshly-mapped pages pay a zero-fill on first
// touch. The arena recycles buffers through power-of-two size classes
// (256 B .. 1 MiB):
//
//   1. thread-local slab — a small per-thread freelist per class; hits are
//      completely synchronization-free;
//   2. shared pool — a mutex-guarded overflow pool each slab spills into
//      (and refills from), bounding per-thread hoarding;
//   3. heap — a fresh allocation when both layers are empty, and the only
//      path for oversize (> 1 MiB) buffers.
//
// acquire(n) returns a shared_ptr whose deleter recycles the buffer into
// the releasing thread's slab, so buffers migrate naturally toward the
// threads that free them. A recycled buffer keeps its previous size, so a
// workload with uniform payload sizes (the executor's case) makes
// resize(n) a no-op — no memset, no page faults after warm-up.
//
// The returned pointer converts implicitly to the zero-copy payload type
// (shared_ptr<const vector<byte>>) used by cache::KvStore and comm::Message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace lobster {

class PayloadArena {
 public:
  using Buffer = std::vector<std::byte>;
  using BufferPtr = std::shared_ptr<Buffer>;

  /// A buffer of exactly `n` bytes. Contents are unspecified (recycled
  /// buffers keep stale bytes) — callers overwrite the whole buffer.
  static BufferPtr acquire(std::size_t n);

  struct Stats {
    std::uint64_t tls_hits = 0;       // served from the thread-local slab
    std::uint64_t pool_hits = 0;      // refilled from the shared pool
    std::uint64_t fresh_allocs = 0;   // both layers empty -> heap
    std::uint64_t oversize_allocs = 0;  // > 1 MiB, never pooled
  };
  static Stats stats();

  static constexpr std::size_t kMinClassBytes = 256;
  static constexpr std::size_t kMaxClassBytes = 1U << 20;
  static constexpr std::size_t kNumClasses = 13;  // 256 B, 512 B, ..., 1 MiB
  /// Per-class caps; overflow past the pool cap falls through to delete.
  static constexpr std::size_t kSlabCapPerClass = 8;
  static constexpr std::size_t kPoolCapPerClass = 64;

  static constexpr std::size_t class_bytes(std::size_t index) {
    return kMinClassBytes << index;
  }

 private:
  static void release(Buffer* buffer) noexcept;
};

}  // namespace lobster
