#include "cache/node_cache.hpp"

#include <stdexcept>

#include "common/logging.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace lobster::cache {

NodeCache::NodeCache(NodeId node, Bytes capacity, std::unique_ptr<EvictionPolicy> policy,
                     const data::SampleCatalog& catalog, CacheDirectory* directory,
                     const data::AccessOracle* oracle, std::uint32_t iterations_per_epoch)
    : node_(node),
      capacity_(capacity),
      policy_(std::move(policy)),
      catalog_(catalog),
      directory_(directory),
      oracle_(oracle),
      iterations_per_epoch_(iterations_per_epoch) {
  if (!policy_) throw std::invalid_argument("NodeCache: null policy");
  if (capacity_ == 0) throw std::invalid_argument("NodeCache: zero capacity");
}

NodeCache::~NodeCache() = default;

EvictionContext NodeCache::make_context(IterId now, IterId incoming_reuse) const {
  EvictionContext context;
  context.node = node_;
  context.now = now;
  context.iterations_per_epoch = iterations_per_epoch_;
  context.oracle = oracle_;
  context.directory = directory_;
  context.can_evict = [this](SampleId s) { return !pinned_.contains(s); };
  context.incoming_reuse_distance = incoming_reuse;
  return context;
}

bool NodeCache::access(SampleId sample, IterId now) {
  if (resident_.contains(sample)) {
    ++stats_.hits;
    LOBSTER_METRIC_COUNT("cache.hits", 1);
    policy_->on_access(sample, now);
    return true;
  }
  ++stats_.misses;
  LOBSTER_METRIC_COUNT("cache.misses", 1);
  return false;
}

NodeCache::InsertResult NodeCache::insert(SampleId sample, IterId now, IterId reuse_distance) {
  InsertResult result;
  if (resident_.contains(sample)) {
    result.inserted = true;  // already resident; nothing to do
    return result;
  }
  const Bytes size = catalog_.sample_bytes(sample);
  if (size > capacity_) {
    ++stats_.rejected_insertions;
    return result;
  }
  const auto context = make_context(now, reuse_distance);
  while (used_ + size > capacity_) {
    const SampleId victim = policy_->pick_victim(context);
    if (victim == kInvalidSample) {
      ++stats_.rejected_insertions;
      return result;
    }
    if (!resident_.contains(victim)) {
      log::error("NodeCache: policy chose non-resident victim %u", victim);
      ++stats_.rejected_insertions;
      return result;
    }
    evict(victim);
    result.evicted.push_back(victim);
  }
  resident_.insert(sample);
  used_ += size;
  ++stats_.insertions;
  LOBSTER_TRACE_INSTANT(kCache, "insert", sample);
  LOBSTER_METRIC_COUNT("cache.insertions", 1);
  LOBSTER_METRIC_COUNT("cache.bytes_inserted", size);
  policy_->on_insert(sample, now);
  if (directory_ != nullptr) directory_->add(sample, node_);
  result.inserted = true;
  return result;
}

bool NodeCache::evict(SampleId sample) {
  if (resident_.erase(sample) == 0) return false;
  used_ -= catalog_.sample_bytes(sample);
  ++stats_.evictions;
  LOBSTER_TRACE_INSTANT(kCache, "evict", sample);
  LOBSTER_METRIC_COUNT("cache.evictions", 1);
  policy_->on_evict(sample);
  if (directory_ != nullptr) directory_->remove(sample, node_);
  return true;
}

void NodeCache::on_epoch(IterId now) {
  policy_->on_epoch(make_context(now, kNeverIter));
}

}  // namespace lobster::cache
