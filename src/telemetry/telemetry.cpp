#include "telemetry/telemetry.hpp"

namespace lobster::telemetry {

thread_local TraceBuffer* Tracer::tls_buffer_ = nullptr;
thread_local std::uint32_t Tracer::tls_track_ = 0;
thread_local Tracer::VirtualContext Tracer::tls_virtual_{};

namespace {
/// Default per-thread ring: 16Ki records x 48B = 768KiB. Benches can raise
/// it (bench_common's trace_buffer=<n>) for long timelines.
constexpr std::size_t kDefaultBufferCapacity = std::size_t{1} << 14;
}  // namespace

Tracer::Tracer() : buffer_capacity_(kDefaultBufferCapacity), epoch_(WallClock::now()) {
  // Name id 0 / track id 0 are reserved so "unset" never aliases a real name.
  names_.emplace_back("<none>");
  name_ids_.emplace("<none>", 0);
  tracks_.emplace_back("<none>");
}

Tracer& Tracer::instance() {
  static Tracer tracer;  // leaked-on-exit singleton semantics via static storage
  return tracer;
}

std::uint32_t Tracer::intern(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

std::uint32_t Tracer::new_track(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto id = static_cast<std::uint32_t>(tracks_.size());
  tracks_.emplace_back(name);
  return id;
}

void Tracer::set_buffer_capacity(std::size_t events) noexcept {
  buffer_capacity_.store(events < 8 ? 8 : events, std::memory_order_relaxed);
}

std::uint64_t Tracer::wall_now_us() const noexcept {
  const auto elapsed = WallClock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

TraceBuffer& Tracer::thread_buffer() {
  TraceBuffer* buffer = tls_buffer_;
  if (buffer != nullptr) return *buffer;
  // First event from this thread: allocate its ring and a named track.
  // Buffers are owned by the tracer and never freed, so events emitted by
  // pool workers survive the workers themselves.
  std::uint32_t track = 0;
  {
    const std::scoped_lock lock(mutex_);
    track = static_cast<std::uint32_t>(tracks_.size());
    tracks_.push_back("thread-" + std::to_string(buffers_.size()));
    buffers_.push_back(
        std::make_unique<TraceBuffer>(buffer_capacity_.load(std::memory_order_relaxed)));
    buffer = buffers_.back().get();
  }
  tls_buffer_ = buffer;
  tls_track_ = track;
  return *buffer;
}

void Tracer::instant_wall(Category category, std::uint32_t name, std::uint64_t arg) noexcept {
  TraceEvent event;
  event.ts_us = wall_now_us();
  event.arg = arg;
  event.name_id = name;
  event.category = category;
  event.phase = Phase::kInstant;
  event.domain = Domain::kWall;
  thread_buffer();  // ensure registration so tls_track_ is set
  event.track = tls_track_;
  emit(event);
}

void Tracer::complete_wall(Category category, std::uint32_t name, std::uint64_t begin_us,
                           std::uint64_t end_us, std::uint64_t arg) noexcept {
  TraceEvent event;
  event.ts_us = begin_us;
  event.dur_us = end_us > begin_us ? end_us - begin_us : 0;
  event.arg = arg;
  event.name_id = name;
  event.category = category;
  event.phase = Phase::kComplete;
  event.domain = Domain::kWall;
  thread_buffer();
  event.track = tls_track_;
  emit(event);
}

void Tracer::counter_wall(Category category, std::uint32_t name, double value) noexcept {
  TraceEvent event;
  event.ts_us = wall_now_us();
  event.value = value;
  event.name_id = name;
  event.category = category;
  event.phase = Phase::kCounter;
  event.domain = Domain::kWall;
  thread_buffer();
  event.track = tls_track_;
  emit(event);
}

void Tracer::instant_at(Category category, std::uint32_t name, std::uint32_t track, Seconds at,
                        std::uint64_t arg) noexcept {
  TraceEvent event;
  event.ts_us = to_micros(at);
  event.arg = arg;
  event.name_id = name;
  event.track = track;
  event.category = category;
  event.phase = Phase::kInstant;
  event.domain = Domain::kVirtual;
  emit(event);
}

void Tracer::complete_at(Category category, std::uint32_t name, std::uint32_t track,
                         Seconds begin, Seconds end, std::uint64_t arg) noexcept {
  TraceEvent event;
  event.ts_us = to_micros(begin);
  const std::uint64_t end_us = to_micros(end);
  event.dur_us = end_us > event.ts_us ? end_us - event.ts_us : 0;
  event.arg = arg;
  event.name_id = name;
  event.track = track;
  event.category = category;
  event.phase = Phase::kComplete;
  event.domain = Domain::kVirtual;
  emit(event);
}

void Tracer::counter_at(Category category, std::uint32_t name, std::uint32_t track, Seconds at,
                        double value) noexcept {
  TraceEvent event;
  event.ts_us = to_micros(at);
  event.value = value;
  event.name_id = name;
  event.track = track;
  event.category = category;
  event.phase = Phase::kCounter;
  event.domain = Domain::kVirtual;
  emit(event);
}

void Tracer::instant_auto(Category category, std::uint32_t name, std::uint64_t arg) noexcept {
  const VirtualContext& ctx = tls_virtual_;
  if (ctx.active) {
    TraceEvent event;
    event.ts_us = ctx.ts_us;
    event.arg = arg;
    event.name_id = name;
    event.track = ctx.track;
    event.category = category;
    event.phase = Phase::kInstant;
    event.domain = Domain::kVirtual;
    emit(event);
  } else {
    instant_wall(category, name, arg);
  }
}

void Tracer::counter_auto(Category category, std::uint32_t name, double value) noexcept {
  const VirtualContext& ctx = tls_virtual_;
  if (ctx.active) {
    TraceEvent event;
    event.ts_us = ctx.ts_us;
    event.value = value;
    event.name_id = name;
    event.track = ctx.track;
    event.category = category;
    event.phase = Phase::kCounter;
    event.domain = Domain::kVirtual;
    emit(event);
  } else {
    counter_wall(category, name, value);
  }
}

TraceSnapshot Tracer::snapshot() const {
  TraceSnapshot snap;
  const std::scoped_lock lock(mutex_);
  for (const auto& buffer : buffers_) {
    buffer->snapshot(snap.events);
    snap.dropped += buffer->dropped();
    snap.emitted += buffer->emitted();
  }
  snap.names = names_;
  snap.tracks = tracks_;
  snap.buffers = static_cast<std::uint32_t>(buffers_.size());
  return snap;
}

std::uint64_t Tracer::dropped_events() const noexcept {
  const std::scoped_lock lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers_) dropped += buffer->dropped();
  return dropped;
}

std::uint64_t Tracer::emitted_events() const noexcept {
  const std::scoped_lock lock(mutex_);
  std::uint64_t emitted = 0;
  for (const auto& buffer : buffers_) emitted += buffer->emitted();
  return emitted;
}

void Tracer::reset() noexcept {
  const std::scoped_lock lock(mutex_);
  for (const auto& buffer : buffers_) buffer->clear();
}

}  // namespace lobster::telemetry
