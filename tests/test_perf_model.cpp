// Holistic performance model (Eq. 1–3): composition, signs, monotonicity.
#include <gtest/gtest.h>

#include "core/perf_model.hpp"
#include "core/preproc_model.hpp"
#include "storage/hierarchy.hpp"

namespace lobster::core {
namespace {

struct PerfModelFixture : public ::testing::Test {
  PerfModelFixture()
      : storage(make_storage()),
        portfolio(PreprocGroundTruth(), {100'000}, 16, 3, 1),
        model(storage, portfolio, /*t_train=*/13e-3) {}

  static storage::StorageModel make_storage() {
    storage::StorageModel::Params params;
    params.remote_latency = 0.0;
    params.pfs_latency = 0.0;
    return storage::StorageModel(params);
  }

  static GpuDemand demand_of(Bytes local, Bytes remote, Bytes pfs, std::uint32_t samples = 32) {
    GpuDemand demand;
    demand.bytes.local = local;
    demand.bytes.remote = remote;
    demand.bytes.pfs = pfs;
    demand.samples = samples;
    demand.pending_requests = remote + pfs;
    return demand;
  }

  storage::StorageModel storage;
  PreprocModelPortfolio portfolio;
  PerfModel model;
};

TEST_F(PerfModelFixture, RejectsNonPositiveTrainTime) {
  EXPECT_THROW(PerfModel(storage, portfolio, 0.0), std::invalid_argument);
}

TEST_F(PerfModelFixture, LoadTimeMatchesStorageModel) {
  const auto demand = demand_of(1'000'000, 500'000, 100'000);
  const Seconds direct =
      storage.load_time(demand.bytes, storage::ThreadAlloc::uniform(4.0));
  EXPECT_DOUBLE_EQ(model.load_time(demand, 4.0), direct);
}

TEST_F(PerfModelFixture, PreprocTimeZeroForEmptyBatch) {
  GpuDemand empty;
  EXPECT_EQ(model.preproc_time(empty, 6.0), 0.0);
}

TEST_F(PerfModelFixture, TDifIsLoadPlusPreprocMinusTrain) {
  const auto demand = demand_of(3'000'000, 0, 0);
  const Seconds t_dif = model.t_dif(demand, 4.0, 6.0);
  const Seconds expected =
      model.load_time(demand, 4.0) + model.preproc_time(demand, 6.0) - 13e-3;
  EXPECT_DOUBLE_EQ(t_dif, expected);
}

TEST_F(PerfModelFixture, MoreLoadThreadsShrinkTDifUpToKnee) {
  const auto demand = demand_of(0, 0, 3'000'000);
  const std::uint32_t knee = storage.params().pfs.knee_threads();
  Seconds prev = 1e9;
  for (std::uint32_t threads = 1; threads <= knee; ++threads) {
    const Seconds dif = model.t_dif(demand, threads, 6.0);
    EXPECT_LE(dif, prev + 1e-12);
    prev = dif;
  }
  // Past the knee the curve declines, so T_dif may *rise* slightly — the
  // very effect that makes blindly adding threads counterproductive.
  const Seconds at_knee = model.t_dif(demand, knee, 6.0);
  const Seconds way_past = model.t_dif(demand, knee * 4, 6.0);
  EXPECT_GE(way_past, at_knee - 1e-9);
}

TEST_F(PerfModelFixture, GpuIterationTimeIsPipelinedMax) {
  // Tiny batch: pipeline hides under training.
  const auto small = demand_of(10'000, 0, 0, 1);
  EXPECT_DOUBLE_EQ(model.gpu_iteration_time(small, 8.0, 6.0), 13e-3);
  // Huge PFS batch: pipeline dominates.
  const auto big = demand_of(0, 0, 50'000'000, 32);
  EXPECT_GT(model.gpu_iteration_time(big, 1.0, 6.0), 13e-3);
}

TEST_F(PerfModelFixture, NodeImbalanceIsMaxMinusMin) {
  const std::vector<GpuDemand> demands = {demand_of(100'000, 0, 0),
                                          demand_of(0, 0, 10'000'000)};
  const std::vector<double> threads = {2.0, 2.0};
  const Seconds gap = model.node_imbalance(demands, threads, 6.0);
  const Seconds fast = model.gpu_iteration_time(demands[0], 2.0, 6.0);
  const Seconds slow = model.gpu_iteration_time(demands[1], 2.0, 6.0);
  EXPECT_DOUBLE_EQ(gap, slow - fast);
  EXPECT_GT(gap, 0.0);
}

TEST_F(PerfModelFixture, NodeImbalanceValidatesArguments) {
  const std::vector<GpuDemand> demands = {demand_of(1, 0, 0)};
  EXPECT_THROW(model.node_imbalance(demands, {}, 6.0), std::invalid_argument);
  EXPECT_THROW(model.node_imbalance({}, {}, 6.0), std::invalid_argument);
}

TEST_F(PerfModelFixture, ContentionRaisesLoadTime) {
  const auto demand = demand_of(0, 0, 1'000'000);
  storage::Contention light;
  storage::Contention heavy;
  heavy.pfs_readers_node = 8;
  heavy.pfs_readers_cluster = 64;
  EXPECT_GT(model.load_time(demand, 2.0, heavy), model.load_time(demand, 2.0, light));
}

}  // namespace
}  // namespace lobster::core
