// Chaos soak: a multi-epoch 4-node run under composed faults — node death
// followed by rejoin, delivery-delay jitter, and a low rate of payload
// corruption — with the full self-healing stack engaged (DESIGN.md §9
// "Recovery model"): corruption quarantine, circuit breakers, degraded
// routing, the RecoveryManager's inventory-probe rejoin and background
// re-replication, and the iteration watchdog.
//
// The same cluster runs twice, fault-free and under chaos, and the harness
// exits non-zero unless:
//   * delivery stays exactly-once (no lost, duplicated, or failed payloads),
//   * zero corrupt payloads are *delivered* (every one quarantined),
//   * the dead node rejoins and the post-rejoin remote-hit ratio recovers
//     to >= 80% of the pre-fault ratio,
//   * modeled slowdown stays within 2x of the fault-free run.
//
// Results are emitted as a `lobster.bench_metrics.v1` JSON so CI can
// schema-check and archive them (`BENCH_chaos.json`); see EXPERIMENTS.md
// "Chaos soak".
//
// Every run records causal spans (DESIGN.md §11): the chaos pass is
// re-analysed in-process with analyze_spans, gating that each degraded
// fetch stitches into one well-formed cross-rank span tree and that the
// span-level attribution (timeout / detour / PFS buckets, union-merged per
// iteration) explains the measured degraded-iteration wall overhead. With
// `incident_dir=<dir>` the monitor's flight recorder (plus a watchdog-stall
// hook) dumps incident bundles, and the harness requires at least one.
//
//   $ ./chaos_soak [nodes=4] [gpus=2] [epochs=3] [iters=8] [batch=16]
//       [bytes=2048] [victim=2] [kill_at=6] [revive_at=12]
//       [spans=chaos_spans.jsonl] [events=chaos_events.jsonl]
//       [incident_dir=incidents] [incident_force=1]
//       --metrics-json BENCH_chaos.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cache/directory.hpp"
#include "cache/kv_store.hpp"
#include "comm/bus.hpp"
#include "comm/fault.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "data/dataset.hpp"
#include "data/sampler.hpp"
#include "runtime/distribution_manager.hpp"
#include "runtime/executor.hpp"
#include "runtime/recovery.hpp"
#include "runtime/watchdog.hpp"
#include "telemetry/analysis/span_analysis.hpp"

using namespace lobster;

namespace {

using Clock = std::chrono::steady_clock;

struct ChaosShape {
  std::uint16_t nodes = 4;
  std::uint16_t gpus = 2;
  std::uint32_t epochs = 3;
  std::uint32_t iters = 8;  // per epoch
  std::uint32_t batch = 16;
  Bytes bytes = 2048;
  comm::Rank victim = 2;
  IterId kill_at = 6;
  IterId revive_at = 12;

  std::uint32_t total_iters() const { return epochs * iters; }
};

/// Rank 0 runs the plan; ranks 1..nodes-1 serve. Ownership maps every
/// sample to a serving rank (never rank 0), so the whole demand stream is
/// remote traffic and the remote-hit ratio is a clean recovery signal.
comm::Rank owner_of(SampleId s, const ChaosShape& shape) {
  return static_cast<comm::Rank>(1 + (s % (shape.nodes - 1U)));
}

/// Only the victim's even samples have a replica (on the highest rank).
/// The odd ones are sole-holder samples: while the victim is dead they
/// detour to the PFS until background re-replication re-homes them — which
/// is exactly the gap the soak measures.
bool replicated(SampleId s, const ChaosShape& shape) {
  return owner_of(s, shape) == shape.victim && (s % 2 == 0);
}

runtime::Plan make_plan(const ChaosShape& shape, const data::EpochSampler& sampler) {
  runtime::Plan plan;
  plan.cluster_nodes = shape.nodes;
  plan.gpus_per_node = shape.gpus;
  plan.epochs = shape.epochs;
  plan.iterations_per_epoch = shape.iters;
  plan.batch_size = shape.batch;
  plan.seed = 7;
  for (IterId i = 0; i < shape.total_iters(); ++i) {
    runtime::IterationPlan iteration;
    iteration.iter = i;
    iteration.nodes.resize(shape.nodes);
    for (auto& node : iteration.nodes) {
      node.preproc_threads = 1;
      node.load_threads.assign(shape.gpus, 2);
    }
    // Evict this iteration's minibatch right after delivery: every epoch
    // re-fetches remotely instead of going resident after epoch 0, so the
    // remote tier stays under load for the whole soak.
    const auto epoch = static_cast<std::uint32_t>(i / shape.iters);
    const auto h = static_cast<std::uint32_t>(i % shape.iters);
    auto& node0 = iteration.nodes[0];
    for (GpuId g = 0; g < shape.gpus; ++g) {
      for (const SampleId s : sampler.minibatch(epoch, h, 0, g)) {
        node0.evictions.push_back(s);
      }
    }
    plan.iterations.push_back(std::move(iteration));
  }
  return plan;
}

struct SoakOutcome {
  runtime::ExecutionReport report;
  double wall_s = 0.0;
  std::uint64_t corrupt_replies = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t corrupted_messages = 0;
  std::uint64_t dropped_messages = 0;
  std::uint64_t watchdog_stalls = 0;
  runtime::RecoveryStats recovery;
  std::vector<telemetry::analysis::LoadedSpan> loaded_spans;
  telemetry::analysis::SpanAnalysis spans;
};

/// Wall overhead the degraded iterations actually cost: their measured
/// iteration wall time minus the median wall time of the healthy ones.
/// This is what the span-level attribution must explain.
double measured_degraded_overhead_s(const runtime::ExecutionReport& report,
                                    const std::map<std::uint64_t, double>& degraded_iters) {
  std::vector<double> healthy;
  for (const auto& iteration : report.iterations) {
    if (degraded_iters.find(iteration.iter) == degraded_iters.end()) {
      healthy.push_back(iteration.wall_s);
    }
  }
  if (healthy.empty() || degraded_iters.empty()) return 0.0;
  const auto mid = healthy.begin() + static_cast<std::ptrdiff_t>(healthy.size() / 2);
  std::nth_element(healthy.begin(), mid, healthy.end());
  const double median = *mid;
  double overhead = 0.0;
  for (const auto& iteration : report.iterations) {
    if (degraded_iters.find(iteration.iter) != degraded_iters.end()) {
      overhead += std::max(0.0, iteration.wall_s - median);
    }
  }
  return overhead;
}

double remote_ratio(const runtime::ExecutionReport& report, IterId first, IterId last) {
  std::uint64_t remote = 0;
  std::uint64_t pfs = 0;
  for (const auto& iteration : report.iterations) {
    if (iteration.iter < first || iteration.iter > last) continue;
    remote += iteration.remote_fetches;
    pfs += iteration.pfs_fetches;
  }
  const auto total = remote + pfs;
  return total > 0 ? static_cast<double>(remote) / static_cast<double>(total) : 0.0;
}

SoakOutcome run_soak(const ChaosShape& shape, bool chaos,
                     telemetry::FlightRecorder* recorder) {
  // Each pass gets a fresh span/event window so the chaos analysis is not
  // polluted by the fault-free warm-up's traces.
  telemetry::SpanLog::instance().clear();
  telemetry::EventLog::instance().clear();
  const std::uint32_t num_samples = shape.nodes * shape.iters * shape.gpus * shape.batch;
  const data::SampleCatalog catalog(data::DatasetSpec::uniform(num_samples, shape.bytes), 7);
  data::SamplerConfig sampler_config;
  sampler_config.num_samples = num_samples;
  sampler_config.nodes = shape.nodes;
  sampler_config.gpus_per_node = shape.gpus;
  sampler_config.batch_size = shape.batch;
  sampler_config.seed = 7;
  const data::EpochSampler sampler(sampler_config);
  const runtime::Plan plan = make_plan(shape, sampler);
  const auto backup = static_cast<std::uint16_t>(shape.nodes - 1);

  cache::CacheDirectory directory(shape.nodes);
  for (SampleId s = 0; s < catalog.size(); ++s) {
    directory.add(s, owner_of(s, shape));
    if (replicated(s, shape)) directory.add(s, backup);
  }

  comm::MessageBus bus(shape.nodes);
  comm::FaultPlan fault(shape.nodes);
  bus.set_fault_plan(&fault);
  if (chaos) {
    // Composed faults: the victim dies and later rejoins; rank 1's fabric
    // jitters (well under the fetch timeout); 2% of the backup's replies
    // arrive corrupted.
    fault.spec(shape.victim).kill_at_iter = shape.kill_at;
    fault.spec(shape.victim).revive_at_iter = shape.revive_at;
    fault.spec(1).delay_s = 0.0005;
    fault.spec(1).delay_jitter_s = 0.001;
    fault.spec(backup).corrupt_fraction = 0.02;
  }

  const auto sizes = [&catalog](SampleId s) { return catalog.sample_bytes(s); };
  runtime::FetchPolicy policy;
  policy.timeout = 0.05;
  policy.max_retries = 1;
  policy.backoff_base = 0.005;
  policy.backoff_cap = 0.02;
  policy.breaker_threshold = 1;    // first timeout declares the peer dead
  policy.breaker_cooldown = 600.0; // rejoin goes through the inventory probe
  std::vector<std::unique_ptr<runtime::DistributionManager>> peers;
  for (std::uint16_t r = 1; r < shape.nodes; ++r) {
    auto has = [r, &shape, backup](SampleId s) {
      if (owner_of(s, shape) == r) return true;
      return r == backup && replicated(s, shape);
    };
    peers.push_back(std::make_unique<runtime::DistributionManager>(bus.endpoint(r), has,
                                                                   sizes, policy));
    // Every peer serves its inventory so a rejoin can replay residency.
    peers.back()->set_inventory_source([r, &shape, backup, num_samples] {
      std::vector<SampleId> samples;
      for (SampleId s = 0; s < num_samples; ++s) {
        if (owner_of(s, shape) == r || (r == backup && replicated(s, shape))) {
          samples.push_back(s);
        }
      }
      return samples;
    });
    peers.back()->start();
  }
  runtime::DistributionManager client(bus.endpoint(0), nullptr, nullptr, policy);

  cache::KvStore kv(16);
  ThreadPool replication_pool(1);
  runtime::RecoveryPolicy recovery_policy;
  recovery_policy.poll_interval = 0.01;
  runtime::RecoveryManager recovery(directory, client, sizes, recovery_policy);
  recovery.set_kv_store(&kv);
  recovery.set_replication_pool(&replication_pool);
  client.set_on_breaker_close([&recovery](comm::Rank rank) { recovery.notify_peer(rank); });

  runtime::WatchdogConfig watchdog_config;
  watchdog_config.multiplier = 2.0;
  watchdog_config.min_deadline = 0.04;
  runtime::IterationWatchdog watchdog(watchdog_config);
  if (recorder != nullptr) {
    // A stall dumps the flight recorder immediately, while the rings still
    // hold the spans of the iteration that blew its deadline.
    watchdog.set_on_stall(
        [recorder](IterId, Seconds) { recorder->trigger("watchdog_stall"); });
  }

  runtime::ExecutorConfig config;
  config.node = 0;
  config.balance.max_pool_threads = 4;
  config.verify_payloads = true;
  config.iteration_hook = [&fault](IterId iter, const core::IterationFeedback&,
                                   core::RebalancePlan&) {
    fault.on_iteration(iter);
    // Pace the soak so the recovery thread's probes and the re-replication
    // batches genuinely overlap the run instead of racing a sprint.
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  };
  runtime::PlanExecutor executor(config, catalog, sampler, plan);
  executor.set_manager(&client);
  executor.set_directory(&directory);
  executor.set_kv_store(&kv);
  executor.set_watchdog(&watchdog);

  watchdog.start();
  recovery.start();
  SoakOutcome outcome;
  const auto start = Clock::now();
  outcome.report = executor.run();
  outcome.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  recovery.stop();
  watchdog.stop();
  for (auto& peer : peers) peer->stop();

  outcome.corrupt_replies = client.corrupt_replies();
  outcome.breaker_opens = client.breaker_opens();
  outcome.corrupted_messages = fault.corrupted_messages();
  outcome.dropped_messages = fault.dropped_messages();
  outcome.watchdog_stalls = watchdog.stalls();
  outcome.recovery = recovery.stats();
  outcome.loaded_spans = telemetry::analysis::spans_from_records(
      telemetry::SpanLog::instance().snapshot());
  outcome.spans = telemetry::analysis::analyze_spans(outcome.loaded_spans);
  return outcome;
}

bench::MetricsRecord record_for(const std::string& workload, const char* strategy,
                                const SoakOutcome& outcome) {
  bench::MetricsRecord record;
  record.panel = "chaos_soak";
  record.workload = workload;
  record.strategy = strategy;
  record.warm_epoch_time_s = outcome.report.virtual_total;
  record.samples_per_s =
      outcome.wall_s > 0.0
          ? static_cast<double>(outcome.report.samples_delivered) / outcome.wall_s
          : 0.0;
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_args(argc, argv);
  bench::TraceSession trace_session(config);
  bench::MetricsJson metrics(config, "chaos_soak");
  ChaosShape shape;
  shape.nodes = static_cast<std::uint16_t>(config.get_int("nodes", 4));
  shape.gpus = static_cast<std::uint16_t>(config.get_int("gpus", 2));
  shape.epochs = static_cast<std::uint32_t>(config.get_int("epochs", 3));
  shape.iters = static_cast<std::uint32_t>(config.get_int("iters", 8));
  shape.batch = static_cast<std::uint32_t>(config.get_int("batch", 16));
  shape.bytes = static_cast<Bytes>(config.get_int("bytes", 2048));
  shape.victim = static_cast<comm::Rank>(config.get_int("victim", 2));
  shape.kill_at = static_cast<IterId>(config.get_int("kill_at", 6));
  shape.revive_at = static_cast<IterId>(config.get_int("revive_at", 12));
  bench::warn_unconsumed(config);

  if (shape.nodes < 3 || shape.victim == 0 || shape.victim >= shape.nodes ||
      shape.victim == shape.nodes - 1U) {
    std::fprintf(stderr,
                 "error: need nodes>=3 and 0 < victim < nodes-1 (rank 0 runs the "
                 "plan, the highest rank holds the replicas)\n");
    return 2;
  }
  if (!(shape.kill_at < shape.revive_at &&
        shape.revive_at + 6 <= shape.total_iters())) {
    std::fprintf(stderr,
                 "error: need kill_at < revive_at and >=6 iterations after the "
                 "revive to measure the post-rejoin window\n");
    return 2;
  }

  bench::print_header(
      "chaos_soak: kill->rejoin + jitter + corruption under the self-healing runtime",
      "DESIGN.md §9 — quarantine, rejoin, re-replication and the watchdog, end to end");
  std::printf("cluster: %u nodes x %u gpus, %u epochs x %u iters, batch %u, %llu B "
              "samples; kill node %u at iter %llu, revive at iter %llu\n\n",
              shape.nodes, shape.gpus, shape.epochs, shape.iters, shape.batch,
              static_cast<unsigned long long>(shape.bytes), shape.victim,
              static_cast<unsigned long long>(shape.kill_at),
              static_cast<unsigned long long>(shape.revive_at));

  // The soak always records causal spans + events: the invariants below
  // gate on the stitched span trees, not only on counters. TraceSession may
  // already have armed these (spans=/events=/incident_dir= options); arming
  // twice is harmless.
  telemetry::SpanLog::instance().set_enabled(true);
  telemetry::EventLog::instance().set_enabled(true);
  telemetry::FlightRecorder* recorder = trace_session.flight_recorder();

  const auto baseline = run_soak(shape, /*chaos=*/false, recorder);
  const auto chaotic = run_soak(shape, /*chaos=*/true, recorder);

  const IterId last = shape.total_iters() - 1;
  const double pre_ratio = remote_ratio(chaotic.report, 0, shape.kill_at - 1);
  const double fault_ratio = remote_ratio(chaotic.report, shape.kill_at, shape.revive_at - 1);
  const double post_ratio = remote_ratio(chaotic.report, last - 5, last);
  const double recovery_frac = pre_ratio > 0.0 ? post_ratio / pre_ratio : 0.0;
  const double slowdown = baseline.report.virtual_total > 0.0
                              ? chaotic.report.virtual_total / baseline.report.virtual_total
                              : 0.0;

  const std::string workload =
      strf("nodes=%u gpus=%u epochs=%u iters=%u batch=%u bytes=%llu victim=%u "
           "kill_at=%llu revive_at=%llu",
           shape.nodes, shape.gpus, shape.epochs, shape.iters, shape.batch,
           static_cast<unsigned long long>(shape.bytes), shape.victim,
           static_cast<unsigned long long>(shape.kill_at),
           static_cast<unsigned long long>(shape.revive_at));

  Table table({"run", "delivered", "quarantined", "degraded", "rejoins", "replicated",
               "stalls", "virtual_s", "clean"});
  const auto add_row = [&table](const char* name, const SoakOutcome& outcome) {
    const auto& report = outcome.report;
    table.add_row({name, std::to_string(report.samples_delivered),
                   std::to_string(report.quarantined_payloads),
                   std::to_string(report.degraded_fetches),
                   std::to_string(outcome.recovery.rejoins),
                   std::to_string(outcome.recovery.replicated_samples),
                   std::to_string(outcome.watchdog_stalls),
                   Table::num(report.virtual_total, 4), report.clean() ? "yes" : "NO"});
  };
  add_row("fault-free", baseline);
  add_row("chaos", chaotic);
  bench::emit(config, "chaos_soak", table);

  std::printf("remote-hit ratio: pre-fault %.3f, fault window %.3f, post-rejoin %.3f "
              "(recovered %.0f%% of pre-fault)\n",
              pre_ratio, fault_ratio, post_ratio, recovery_frac * 100.0);
  std::printf("chaos injected: %llu corrupted, %llu dropped message(s); detected "
              "%llu corrupt replies, %llu breaker open(s), %llu watchdog stall(s)\n\n",
              static_cast<unsigned long long>(chaotic.corrupted_messages),
              static_cast<unsigned long long>(chaotic.dropped_messages),
              static_cast<unsigned long long>(chaotic.corrupt_replies),
              static_cast<unsigned long long>(chaotic.breaker_opens),
              static_cast<unsigned long long>(chaotic.watchdog_stalls));

  // ---- causal span analysis of the chaos pass (DESIGN.md §11).
  const auto& spans = chaotic.spans;
  const double union_s = spans.union_overhead_us / 1e6;
  const double measured_s =
      measured_degraded_overhead_s(chaotic.report, spans.iteration_overhead_us);
  const double attribution_ratio = measured_s > 0.0 ? union_s / measured_s : 0.0;
  std::size_t degraded_well_formed = 0;
  std::size_t degraded_cross_rank = 0;
  for (const auto& trace : spans.traces) {
    if (!trace.degraded || trace.root_kind != "fetch") continue;
    if (trace.well_formed) ++degraded_well_formed;
    if (trace.ranks >= 2) ++degraded_cross_rank;
  }
  bench::emit(config, "chaos_fetch_latency", telemetry::analysis::fetch_latency_table(spans));
  bench::emit(config, "chaos_attribution", telemetry::analysis::span_attribution_table(spans));
  bench::emit(config, "chaos_slowest_traces",
              telemetry::analysis::slowest_traces_table(spans, chaotic.loaded_spans, 5));
  std::printf("span trees: %zu fetches (%zu degraded, %zu cross-rank, %zu malformed); "
              "attribution union %.1f ms vs measured degraded overhead %.1f ms "
              "(ratio %.2f)\n",
              spans.fetch_traces, spans.degraded_fetches, spans.cross_rank_fetches,
              spans.malformed_traces, union_s * 1e3, measured_s * 1e3, attribution_ratio);
  if (recorder != nullptr) {
    std::printf("flight recorder: %llu bundle(s) written, %llu trigger(s) suppressed\n",
                static_cast<unsigned long long>(recorder->bundles_written()),
                static_cast<unsigned long long>(recorder->triggers_suppressed()));
  }
  std::printf("\n");

  metrics.add(record_for(workload, "fault_free", baseline));
  metrics.add(record_for(workload, "chaos", chaotic));
  metrics.set_scalar("slowdown_vs_fault_free", slowdown);
  metrics.set_scalar("pre_fault_remote_hit_ratio", pre_ratio);
  metrics.set_scalar("fault_window_remote_hit_ratio", fault_ratio);
  metrics.set_scalar("post_rejoin_remote_hit_ratio", post_ratio);
  metrics.set_scalar("remote_hit_recovery_frac", recovery_frac);
  metrics.set_scalar("corrupted_messages", static_cast<double>(chaotic.corrupted_messages));
  metrics.set_scalar("corrupt_replies", static_cast<double>(chaotic.corrupt_replies));
  metrics.set_scalar("quarantined_payloads",
                     static_cast<double>(chaotic.report.quarantined_payloads));
  metrics.set_scalar("payload_failures", static_cast<double>(chaotic.report.payload_failures));
  metrics.set_scalar("lost_deliveries", static_cast<double>(chaotic.report.lost_deliveries));
  metrics.set_scalar("duplicate_deliveries",
                     static_cast<double>(chaotic.report.duplicate_deliveries));
  metrics.set_scalar("degraded_fetches", static_cast<double>(chaotic.report.degraded_fetches));
  metrics.set_scalar("rejoins", static_cast<double>(chaotic.recovery.rejoins));
  metrics.set_scalar("inventory_samples_restored",
                     static_cast<double>(chaotic.recovery.inventory_samples_restored));
  metrics.set_scalar("replicated_samples",
                     static_cast<double>(chaotic.recovery.replicated_samples));
  metrics.set_scalar("watchdog_stalls", static_cast<double>(chaotic.watchdog_stalls));
  metrics.set_scalar("span_total", static_cast<double>(spans.total_spans));
  metrics.set_scalar("span_fetch_traces", static_cast<double>(spans.fetch_traces));
  metrics.set_scalar("span_degraded_fetches", static_cast<double>(spans.degraded_fetches));
  metrics.set_scalar("span_cross_rank_fetches",
                     static_cast<double>(spans.cross_rank_fetches));
  metrics.set_scalar("span_malformed_traces", static_cast<double>(spans.malformed_traces));
  metrics.set_scalar("attribution_timeout_s", spans.timeout_us / 1e6);
  metrics.set_scalar("attribution_detour_s", spans.detour_us / 1e6);
  metrics.set_scalar("attribution_pfs_s", spans.pfs_us / 1e6);
  metrics.set_scalar("attribution_union_s", union_s);
  metrics.set_scalar("measured_degraded_overhead_s", measured_s);
  metrics.set_scalar("attribution_ratio", attribution_ratio);
  metrics.set_scalar("incident_bundles",
                     recorder != nullptr
                         ? static_cast<double>(recorder->bundles_written())
                         : 0.0);

  // ---- invariants (the CI gate).
  bool ok = true;
  const auto require = [&ok](bool condition, const char* what) {
    if (!condition) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    }
  };
  require(baseline.report.clean(), "fault-free run must be clean");
  require(baseline.report.quarantined_payloads == 0,
          "fault-free run must not quarantine anything");
  require(chaotic.report.payload_failures == 0,
          "zero corrupt payloads may be delivered (exactly-once, verified)");
  require(chaotic.report.lost_deliveries == 0, "no delivery may be lost");
  require(chaotic.report.duplicate_deliveries == 0, "no delivery may duplicate");
  require(chaotic.report.samples_delivered == baseline.report.samples_delivered,
          "every planned sample must still be delivered");
  require(chaotic.corrupted_messages > 0, "chaos must actually corrupt messages");
  require(chaotic.report.quarantined_payloads > 0,
          "corruption must be detected and quarantined, not absorbed");
  require(chaotic.recovery.rejoins >= 1, "the revived node must rejoin the cluster");
  require(chaotic.recovery.replicated_samples > 0,
          "sole-holder samples must be re-replicated while the node is down");
  require(recovery_frac >= 0.8,
          "post-rejoin remote-hit ratio must recover to >=80% of pre-fault");
  require(chaotic.report.virtual_total <= 2.0 * baseline.report.virtual_total,
          "modeled slowdown must stay within 2x of the fault-free run");

  // ---- causal-tracing invariants (DESIGN.md §11).
  require(baseline.spans.degraded_fetches == 0,
          "fault-free run must not record degraded fetch traces");
  require(spans.fetch_traces > 0, "chaos run must record fetch span trees");
  require(spans.malformed_traces == 0,
          "every span tree must be well-formed (one root, parents resolve)");
  require(spans.degraded_fetches > 0, "chaos must produce degraded fetch traces");
  require(degraded_well_formed == spans.degraded_fetches,
          "every degraded fetch must resolve to one well-formed span tree");
  require(degraded_cross_rank > 0,
          "detoured fetches must stitch serve spans across ranks");
  require(union_s > 0.0, "degraded traces must carry attributable wasted time");
  if (measured_s >= 0.05) {
    // Only meaningful when the degraded iterations cost real wall time;
    // below that, scheduler noise dominates the measurement.
    require(attribution_ratio >= 0.5 && attribution_ratio <= 1.6,
            "span attribution must explain the measured degraded-iteration overhead");
  }
  if (recorder != nullptr) {
    require(recorder->bundles_written() >= 1,
            "an incident_dir run must dump at least one flight-recorder bundle");
  }
  if (ok) std::printf("all chaos-soak invariants hold\n");
  return ok ? 0 : 1;
}
