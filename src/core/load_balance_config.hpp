// The unified load-balance knob block.
//
// Thread-count, batch-quota and pool-cap knobs used to be re-declared in
// three places — core::AllocatorConfig (Algorithm 1), runtime::ExecutorConfig
// (pool caps / queue bounds) and pipeline::SimulationConfig (steal budget) —
// and the per-iteration feedback balancer would have needed to reach into
// all of them. They now live here once; the three structs embed a
// LoadBalanceConfig instead of re-declaring fields, and the balancer drives
// exactly this block.
//
// validate() is the single gate for every consumer: the ThreadAllocator,
// the PlanExecutor and the FeedbackBalancer all reject a config that could
// produce a zero-thread split, a quota set that does not partition the
// global batch, or a pool cap smaller than the world it must serve.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace lobster::core {

struct LoadBalanceConfig {
  // --- Loading-thread knobs (Algorithm 1, §4.2/§4.4) ---
  std::uint32_t total_load_threads = 16;  ///< T_L: per-node loading budget
  std::uint32_t min_threads_per_gpu = 1;  ///< ℓ_min floor per queue
  Seconds tau = 2e-3;                     ///< τ: |T_dif| considered "balanced"
  std::uint32_t balance_passes = 32;      ///< cap on Eq. 3 greedy moves
  /// Max §4.1-step-2 preprocessing→loading thread steals per iteration.
  std::uint32_t max_preproc_steals = 4;

  // --- Executor pool/queue caps ---
  /// Ceiling on concurrent loader/preproc OS threads; 0 = hardware
  /// concurrency. The plan's per-queue thread assignment is still enforced
  /// as drain-task shares and in the virtual-time model; the cap only stops
  /// oversubscribing physical cores.
  std::uint32_t max_pool_threads = 0;
  std::size_t queue_capacity = 4096;  ///< per-GPU request queue bound

  // --- Batch quotas (feedback balancer) ---
  /// Per-device (flat GPU rank, node-major) samples per iteration. Empty =
  /// the static strided split. When set, must have world_size entries and
  /// sum to batch_size.
  std::vector<std::uint32_t> batch_quotas;
  /// Global samples per iteration (sum of all quotas). 0 = unspecified;
  /// required when batch_quotas is set.
  std::uint32_t batch_size = 0;
  /// Flat GPU count N·M the quotas/caps must cover. 0 = unspecified (the
  /// world-dependent checks are skipped).
  std::uint32_t world_size = 0;

  /// Rejects zero-thread splits, quota sets that do not sum to the batch
  /// size, and pool/queue caps below the world size. Cheap; call it at
  /// every construction boundary.
  [[nodiscard]] Status validate() const;
};

}  // namespace lobster::core
