// Run metrics: everything the paper's evaluation section reports.
//
// The simulator feeds one IterationRecord per iteration; RunMetrics
// aggregates into the quantities behind each figure:
//   Fig. 3  — per-GPU stage breakdowns (detailed records, windowed)
//   Fig. 7  — end-to-end time / speedups
//   Fig. 8  — imbalanced-iteration counts per epoch, batch-time distribution
//   Fig. 10 — GPU utilisation
//   §5.5    — cache hit ratios (merged from the NodeCache stats)
#pragma once

#include <cstdint>
#include <vector>

#include "cache/node_cache.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "storage/hierarchy.hpp"

namespace lobster::pipeline {

/// One GPU's accounting for one iteration.
struct GpuIterRecord {
  Seconds load = 0.0;     ///< data loading (critical-path) time
  Seconds preproc = 0.0;  ///< preprocessing time
  Seconds train = 0.0;    ///< forward+backward
  Seconds idle = 0.0;     ///< barrier wait (straggler-induced)
  storage::TierBytes bytes;
  std::uint32_t local_hits = 0;
  std::uint32_t ssd_hits = 0;
  std::uint32_t remote_hits = 0;
  std::uint32_t pfs_misses = 0;
  double load_threads = 0.0;
  double preproc_threads = 0.0;
};

/// One training iteration across the whole cluster.
struct IterationRecord {
  IterId iter = 0;
  std::uint32_t epoch = 0;
  Seconds duration = 0.0;  ///< barrier-synchronized iteration time
  Seconds t_max = 0.0;     ///< slowest GPU's pipeline time
  Seconds t_min = 0.0;     ///< fastest GPU's pipeline time
  bool imbalanced = false;
  bool loading_bottleneck = false;  ///< some GPU had load+preproc > train
  std::vector<GpuIterRecord> gpus;  ///< flat [node * M + gpu]
};

class RunMetrics {
 public:
  /// Empty metrics (no iterations recorded); useful as a placeholder.
  RunMetrics() = default;

  /// `detail_lo/hi`: epoch range [lo, hi) for which full per-GPU records are
  /// retained (Fig. 3); outside it only aggregates are kept.
  RunMetrics(std::uint32_t epochs, std::uint32_t iterations_per_epoch, std::uint32_t total_gpus,
             std::uint32_t detail_epoch_lo = 0, std::uint32_t detail_epoch_hi = 0);

  void add(IterationRecord record);

  /// Merges the per-node cache stats (call once, after the run).
  void set_cache_stats(const std::vector<cache::CacheStats>& per_node);

  // ---- aggregates
  std::uint64_t iterations() const noexcept { return iterations_; }
  Seconds total_time() const noexcept { return total_time_; }
  /// Wall time excluding the given warm-up epochs.
  Seconds time_after_epoch(std::uint32_t first_epoch) const;

  double imbalanced_fraction() const noexcept;
  const std::vector<std::uint32_t>& imbalanced_per_epoch() const noexcept {
    return imbalanced_per_epoch_;
  }
  std::uint64_t loading_bottleneck_iterations() const noexcept { return loading_bottleneck_; }

  /// Batch (iteration) durations, for the Fig. 8(c) distribution.
  const Series& batch_times() const noexcept { return batch_times_; }

  /// Mean GPU utilisation: training time / wall time, averaged over GPUs.
  double gpu_utilization() const noexcept;

  /// Aggregated cache behaviour across nodes (local-memory hit ratio, §5.5).
  const cache::CacheStats& cache_stats() const noexcept { return cache_stats_; }
  double hit_ratio() const noexcept { return cache_stats_.hit_ratio(); }

  /// Retained detailed records (empty outside the detail window).
  const std::vector<IterationRecord>& details() const noexcept { return details_; }

  std::uint32_t epochs() const noexcept { return epochs_; }
  std::uint32_t iterations_per_epoch() const noexcept { return iterations_per_epoch_; }

 private:
  std::uint32_t epochs_ = 0;
  std::uint32_t iterations_per_epoch_ = 0;
  std::uint32_t total_gpus_ = 0;
  std::uint32_t detail_lo_ = 0;
  std::uint32_t detail_hi_ = 0;

  std::uint64_t iterations_ = 0;
  Seconds total_time_ = 0.0;
  std::vector<Seconds> time_per_epoch_;
  std::vector<std::uint32_t> imbalanced_per_epoch_;
  std::uint64_t loading_bottleneck_ = 0;
  Series batch_times_;
  double train_time_sum_ = 0.0;  ///< across GPUs
  std::vector<IterationRecord> details_;
  cache::CacheStats cache_stats_;
};

}  // namespace lobster::pipeline
