# Empty dependencies file for example_experiment_runner.
# This may be replaced when dependencies are built.
