// Fig. 7 — end-to-end training speedups of Lobster vs PyTorch DataLoader,
// DALI and NoPFS:
//   (a) single node, ImageNet-1K, six models  — paper: Lobster 1.6x vs
//       PyTorch, 1.7x vs DALI, 1.2x vs NoPFS;
//   (b) single node, ImageNet-22K             — paper: 1.8x vs PyTorch;
//   (c) 8 nodes, ImageNet-22K                 — paper: 2.0x / 1.4x / 1.2x;
//   (d) scalability over node counts          — paper: avg 1.53x (up to
//       1.9x) vs PyTorch for ImageNet-22K.
// Epoch 0 (cache warm-up) is excluded from timings, as in the paper.
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "baselines/strategies.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "metrics/report.hpp"
#include "pipeline/simulator.hpp"
#include "pipeline/trainer_model.hpp"

using namespace lobster;
using baselines::LoaderStrategy;

namespace {

const char* kStrategies[] = {"pytorch", "dali", "nopfs", "lobster"};

void run_panel(const Config& config, bench::MetricsJson& metrics_json, const char* csv_name,
               const char* title, const char* claim,
               const std::vector<std::pair<std::string, pipeline::ExperimentPreset>>& rows) {
  bench::print_header(title, claim);
  Table table({"workload", "pytorch_s", "dali_s", "nopfs_s", "lobster_s", "vs_pytorch",
               "vs_dali", "vs_nopfs"});
  for (const auto& [label, preset] : rows) {
    std::map<std::string, pipeline::SimulationResult> results;
    for (const char* strategy : kStrategies) {
      results.emplace(strategy, pipeline::simulate(preset, LoaderStrategy::by_name(strategy)));
    }
    const double lobster = results.at("lobster").metrics.time_after_epoch(1);
    auto time_of = [&](const char* s) { return results.at(s).metrics.time_after_epoch(1); };
    table.add_row({label, Table::num(time_of("pytorch"), 3), Table::num(time_of("dali"), 3),
                   Table::num(time_of("nopfs"), 3), Table::num(lobster, 3),
                   Table::num(time_of("pytorch") / lobster, 2),
                   Table::num(time_of("dali") / lobster, 2),
                   Table::num(time_of("nopfs") / lobster, 2)});
    for (const char* strategy : kStrategies) {
      metrics_json.add(bench::make_record(csv_name, label, strategy, results.at(strategy),
                                          time_of("pytorch")));
    }
  }
  bench::emit(config, csv_name, table);
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_args(argc, argv);
  const bench::TraceSession trace_session(config);
  bench::MetricsJson metrics_json(config, "fig07_speedup");
  const double scale1k = config.get_double("scale1k", 256.0);
  const double scale22k = config.get_double("scale22k", 1024.0);
  const double scale22k_multi = config.get_double("scale22k_multi", 256.0);
  const auto epochs = static_cast<std::uint32_t>(config.get_int("epochs", 4));
  const bool all_models = config.get_bool("all_models", true);
  bench::warn_unconsumed(config);

  const auto& models = pipeline::TrainerModel::benchmark_names();
  const std::vector<std::string> used_models =
      all_models ? models : std::vector<std::string>{"resnet50"};

  // ---- (a) single node, ImageNet-1K
  {
    std::vector<std::pair<std::string, pipeline::ExperimentPreset>> rows;
    for (const auto& model : used_models) {
      auto preset = pipeline::preset_imagenet1k_single_node(scale1k, model);
      preset.epochs = epochs;
      rows.emplace_back(model, std::move(preset));
    }
    run_panel(config, metrics_json, "fig07a", "Fig. 7(a): single node (8 GPUs), ImageNet-1K",
              "Lobster 1.6x vs PyTorch, 1.7x vs DALI, 1.2x vs NoPFS", rows);
  }

  // ---- (b) single node, ImageNet-22K
  {
    std::vector<std::pair<std::string, pipeline::ExperimentPreset>> rows;
    for (const auto& model : used_models) {
      auto preset = pipeline::preset_imagenet22k_single_node(scale22k, model);
      preset.epochs = epochs;
      rows.emplace_back(model, std::move(preset));
    }
    run_panel(config, metrics_json, "fig07b", "Fig. 7(b): single node (8 GPUs), ImageNet-22K",
              "Lobster 1.8x vs PyTorch (larger dataset amplifies the gain)", rows);
  }

  // ---- (c) 8 nodes, ImageNet-22K
  {
    std::vector<std::pair<std::string, pipeline::ExperimentPreset>> rows;
    auto preset = pipeline::preset_imagenet22k_multi_node(scale22k_multi, 8);
    preset.epochs = epochs;
    rows.emplace_back("resnet50/8nodes", std::move(preset));
    run_panel(config, metrics_json, "fig07c", "Fig. 7(c): 8 nodes x 8 GPUs, ImageNet-22K",
              "Lobster 2.0x vs PyTorch, 1.4x vs DALI, 1.2x vs NoPFS", rows);
  }

  // ---- (d) scalability: lobster vs pytorch across node counts
  {
    bench::print_header("Fig. 7(d): scalability vs node count (ImageNet-22K)",
                        "Lobster vs PyTorch speedup 1.2x-2.0x, avg ~1.53x");
    Table table({"nodes", "pytorch_s", "lobster_s", "speedup"});
    double speedup_sum = 0.0;
    int speedup_count = 0;
    for (const std::uint16_t nodes : {1, 2, 4, 8}) {
      auto preset = pipeline::preset_imagenet22k_multi_node(scale22k_multi, nodes);
      preset.epochs = epochs;
      const auto pytorch = pipeline::simulate(preset, LoaderStrategy::pytorch());
      const auto lobster = pipeline::simulate(preset, LoaderStrategy::lobster());
      const double speedup = metrics::warm_speedup(pytorch, lobster);
      speedup_sum += speedup;
      ++speedup_count;
      table.add_row({std::to_string(nodes), Table::num(pytorch.metrics.time_after_epoch(1), 3),
                     Table::num(lobster.metrics.time_after_epoch(1), 3),
                     Table::num(speedup, 2)});
      const std::string workload = strf("imagenet22k/%unodes", nodes);
      const double base_warm = pytorch.metrics.time_after_epoch(1);
      metrics_json.add(bench::make_record("fig07d", workload, "pytorch", pytorch, base_warm));
      metrics_json.add(bench::make_record("fig07d", workload, "lobster", lobster, base_warm));
    }
    bench::emit(config, "fig07d", table);
    std::printf("average speedup vs PyTorch: %.2fx  [paper: 1.53x average, up to 1.9x]\n",
                speedup_sum / speedup_count);
    metrics_json.set_scalar("fig07d_avg_speedup", speedup_sum / speedup_count);
  }
  return 0;
}
