// Minimal dense matrix for the Fig. 9 accuracy-equivalence experiment.
//
// Row-major float32, with just the operations an MLP needs: matmul,
// transpose-matmul variants, elementwise ops, row reductions. Deliberately
// simple and deterministic — no BLAS, no threads — so training runs are
// bit-reproducible across machines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lobster::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0F);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  /// C = A * B. Dimension-checked.
  static Matrix matmul(const Matrix& a, const Matrix& b);
  /// C = A^T * B.
  static Matrix matmul_at_b(const Matrix& a, const Matrix& b);
  /// C = A * B^T.
  static Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

  /// this += other * scale.
  void add_scaled(const Matrix& other, float scale);
  /// Adds `bias` (1 x cols) to every row.
  void add_row_vector(const Matrix& bias);
  /// Column sums -> 1 x cols.
  Matrix column_sums() const;

  void fill(float value);

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace lobster::nn
