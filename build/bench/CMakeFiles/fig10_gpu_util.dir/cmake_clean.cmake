file(REMOVE_RECURSE
  "CMakeFiles/fig10_gpu_util.dir/fig10_gpu_util.cpp.o"
  "CMakeFiles/fig10_gpu_util.dir/fig10_gpu_util.cpp.o.d"
  "fig10_gpu_util"
  "fig10_gpu_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
