// Mini NN: matrix ops vs naive reference, finite-difference gradient
// checks, synthetic task learnability, and curve determinism (Fig. 9).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "nn/synthetic.hpp"
#include "nn/tensor.hpp"

namespace lobster::nn {
namespace {

TEST(Matrix, MatmulAgainstHandComputed) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  float v = 1.0F;
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = v++;
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = v++;
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  const Matrix c = Matrix::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0F);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0F);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0F);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0F);
}

TEST(Matrix, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(1);
  Matrix a(4, 3);
  Matrix b(4, 5);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = static_cast<float>(rng.normal());

  Matrix at(3, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  }
  const Matrix expected = Matrix::matmul(at, b);
  const Matrix actual = Matrix::matmul_at_b(a, b);
  ASSERT_TRUE(actual.same_shape(expected));
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual.data()[i], expected.data()[i], 1e-5);
  }

  Matrix bt(5, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 5; ++c) bt.at(c, r) = b.at(r, c);
  }
  Matrix a2(2, 4);
  for (std::size_t i = 0; i < a2.size(); ++i) a2.data()[i] = static_cast<float>(rng.normal());
  const Matrix expected2 = Matrix::matmul(a2, b /* 4x5 */);
  const Matrix actual2 = Matrix::matmul_a_bt(a2, bt);
  ASSERT_TRUE(actual2.same_shape(expected2));
  for (std::size_t i = 0; i < expected2.size(); ++i) {
    EXPECT_NEAR(actual2.data()[i], expected2.data()[i], 1e-5);
  }
}

TEST(Matrix, ShapeChecksThrow) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(Matrix::matmul(a, b), std::invalid_argument);
  Matrix c(1, 2);
  EXPECT_THROW(a.add_scaled(c, 1.0F), std::invalid_argument);
  EXPECT_THROW(a.add_row_vector(c), std::invalid_argument);
}

TEST(Matrix, RowVectorAndColumnSums) {
  Matrix m(2, 3, 1.0F);
  Matrix bias(1, 3);
  bias.at(0, 0) = 1.0F;
  bias.at(0, 1) = 2.0F;
  bias.at(0, 2) = 3.0F;
  m.add_row_vector(bias);
  EXPECT_FLOAT_EQ(m.at(1, 2), 4.0F);
  const Matrix sums = m.column_sums();
  EXPECT_FLOAT_EQ(sums.at(0, 0), 4.0F);
  EXPECT_FLOAT_EQ(sums.at(0, 2), 8.0F);
}

TEST(Relu, ForwardBackwardMasks) {
  Relu relu;
  Matrix input(1, 4);
  input.at(0, 0) = -1.0F;
  input.at(0, 1) = 2.0F;
  input.at(0, 2) = 0.0F;
  input.at(0, 3) = 5.0F;
  const Matrix out = relu.forward(input);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(out.at(0, 1), 2.0F);
  EXPECT_FLOAT_EQ(out.at(0, 3), 5.0F);
  Matrix grad(1, 4, 1.0F);
  const Matrix gin = relu.backward(grad);
  EXPECT_FLOAT_EQ(gin.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(gin.at(0, 1), 1.0F);
  EXPECT_FLOAT_EQ(gin.at(0, 2), 0.0F);
}

TEST(SoftmaxCrossEntropy, UniformLogitsLoseLogC) {
  Matrix logits(2, 4);  // all zero -> uniform distribution
  const std::vector<std::uint32_t> labels = {0, 3};
  Matrix grad;
  const float loss = SoftmaxCrossEntropy::loss_and_grad(logits, labels, grad);
  EXPECT_NEAR(loss, std::log(4.0F), 1e-5);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifferences) {
  Rng rng(4);
  Matrix logits(3, 5);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = static_cast<float>(rng.normal());
  }
  const std::vector<std::uint32_t> labels = {1, 4, 0};
  Matrix grad;
  SoftmaxCrossEntropy::loss_and_grad(logits, labels, grad);

  const float eps = 1e-3F;
  for (std::size_t i = 0; i < logits.size(); i += 3) {
    Matrix plus = logits;
    Matrix minus = logits;
    plus.data()[i] += eps;
    minus.data()[i] -= eps;
    Matrix dummy;
    const float lp = SoftmaxCrossEntropy::loss_and_grad(plus, labels, dummy);
    const float lm = SoftmaxCrossEntropy::loss_and_grad(minus, labels, dummy);
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad.data()[i], numeric, 5e-3F) << "index " << i;
  }
}

TEST(Dense, GradientMatchesFiniteDifferences) {
  Rng rng(6);
  Dense dense(4, 3, rng);
  Matrix input(2, 4);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.data()[i] = static_cast<float>(rng.normal());
  }
  const std::vector<std::uint32_t> labels = {2, 0};

  auto loss_of = [&](Dense& layer) {
    Matrix logits = layer.forward(input);
    Matrix grad;
    return SoftmaxCrossEntropy::loss_and_grad(logits, labels, grad);
  };

  // Analytic gradient.
  Matrix logits = dense.forward(input);
  Matrix grad_logits;
  SoftmaxCrossEntropy::loss_and_grad(logits, labels, grad_logits);
  dense.backward(grad_logits);
  const Matrix analytic = dense.weight_grad();

  // Numeric gradient on a few weights: nudge via const_cast-free rebuild.
  const float eps = 1e-2F;
  for (std::size_t idx = 0; idx < analytic.size(); idx += 5) {
    Rng rng_copy(6);
    Dense plus(4, 3, rng_copy);
    rng_copy.reseed(6);
    Dense minus(4, 3, rng_copy);
    const_cast<Matrix&>(plus.weights()).data()[idx] += eps;
    const_cast<Matrix&>(minus.weights()).data()[idx] -= eps;
    const float numeric = (loss_of(plus) - loss_of(minus)) / (2 * eps);
    EXPECT_NEAR(analytic.data()[idx], numeric, 2e-2F) << "weight " << idx;
  }
}

TEST(SyntheticTask, DeterministicAndLabeledConsistently) {
  const SyntheticTask task(10, 16, 0.3, 99);
  EXPECT_EQ(task.label_of(5), task.label_of(5));
  std::vector<float> a(16);
  std::vector<float> b(16);
  task.features_of(5, a.data());
  task.features_of(5, b.data());
  EXPECT_EQ(a, b);
  task.features_of(6, b.data());
  EXPECT_NE(a, b);
}

TEST(SyntheticTask, BatchAssembly) {
  const SyntheticTask task(4, 8, 0.1, 1);
  const std::vector<SampleId> ids = {1, 2, 3};
  const Matrix batch = task.batch_features(ids);
  EXPECT_EQ(batch.rows(), 3U);
  EXPECT_EQ(batch.cols(), 8U);
  const auto labels = task.batch_labels(ids);
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(labels[i], task.label_of(ids[i]));
}

TEST(TrainDataParallel, LearnsSeparableTask) {
  const SyntheticTask task(8, 16, 0.25, 7);
  DataParallelConfig config;
  config.replicas = 2;
  config.batch_size = 16;
  config.epochs = 8;
  const auto curve = train_data_parallel(task, 1024, config);
  ASSERT_EQ(curve.eval_accuracy.size(), 8U);
  EXPECT_GT(curve.eval_accuracy.back(), 0.9);
  EXPECT_LT(curve.loss.back(), curve.loss.front());
}

TEST(TrainDataParallel, SameSeedsSameCurve) {
  const SyntheticTask task(6, 12, 0.3, 7);
  DataParallelConfig config;
  config.replicas = 2;
  config.batch_size = 16;
  config.epochs = 3;
  const auto a = train_data_parallel(task, 512, config);
  const auto b = train_data_parallel(task, 512, config);
  EXPECT_EQ(a.eval_accuracy, b.eval_accuracy);
  EXPECT_EQ(a.loss, b.loss);
}

TEST(TrainDataParallel, ModelSeedChangesOnlySlightly) {
  // The Fig. 9 claim: with the data order fixed, different network seeds
  // converge to the same accuracy region.
  const SyntheticTask task(8, 16, 0.25, 7);
  DataParallelConfig config;
  config.replicas = 2;
  config.batch_size = 16;
  config.epochs = 8;
  config.model_seed = 1;
  const auto a = train_data_parallel(task, 1024, config);
  config.model_seed = 2;
  const auto b = train_data_parallel(task, 1024, config);
  EXPECT_NE(a.eval_accuracy, b.eval_accuracy);  // different trajectories...
  EXPECT_NEAR(a.eval_accuracy.back(), b.eval_accuracy.back(), 0.05);  // ...same endpoint
}

}  // namespace
}  // namespace lobster::nn
