# Empty dependencies file for fig08_imbalance.
# This may be replaced when dependencies are built.
