# Empty dependencies file for lobster.
# This may be replaced when dependencies are built.
