// The holistic performance model of §4.3 (Table 1, Equations 1–3).
//
// Composes the storage hierarchy (Eq. 1: per-tier load time under a thread
// allocation) with the preprocessing portfolio (§4.1) and a constant
// training-stage duration, and exposes the two objectives:
//
//   Eq. 2  t_dif(G)  = T_L + T_P − T_train            (per-GPU bottleneck gap)
//   Eq. 3  imbalance = max_j T^{h,i,j} − min_j T^{h,i,j}   (node-level gap)
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/preproc_model.hpp"
#include "storage/hierarchy.hpp"

namespace lobster::core {

/// One GPU's demand for an iteration: bytes by serving tier plus batch shape.
struct GpuDemand {
  storage::TierBytes bytes;
  std::uint32_t samples = 0;        ///< |B|
  std::uint64_t pending_requests = 0;  ///< queue depth, for proportional split
};

class PerfModel {
 public:
  PerfModel(const storage::StorageModel& storage_model, const PreprocModelPortfolio& preproc,
            Seconds t_train);

  /// Eq. 1 — load time of one GPU's batch with `threads` loading threads
  /// (applied uniformly per tier, as Algorithm 1 searches a single per-GPU
  /// count) under the given tier contention.
  Seconds load_time(const GpuDemand& demand, double threads,
                    const storage::Contention& contention = {}) const;

  /// Preprocessing time of the batch with `preproc_threads` workers.
  Seconds preproc_time(const GpuDemand& demand, double preproc_threads) const;

  /// Eq. 2 inner expression: (T_L + T_P) − T_train. Positive values mean
  /// the pipeline stalls the GPU.
  Seconds t_dif(const GpuDemand& demand, double load_threads,
                double preproc_threads, const storage::Contention& contention = {}) const;

  /// Effective iteration time of one GPU: training fully overlaps loading +
  /// preprocessing of the next batch, so the GPU is bound by the slower of
  /// the two.
  Seconds gpu_iteration_time(const GpuDemand& demand, double load_threads,
                             double preproc_threads,
                             const storage::Contention& contention = {}) const;

  /// Eq. 3 — max-min gap of per-GPU iteration times under an allocation.
  Seconds node_imbalance(const std::vector<GpuDemand>& demands,
                         const std::vector<double>& load_threads,
                         double preproc_threads,
                         const storage::Contention& contention = {}) const;

  Seconds t_train() const noexcept { return t_train_; }
  const storage::StorageModel& storage_model() const noexcept { return storage_; }
  const PreprocModelPortfolio& preproc_portfolio() const noexcept { return preproc_; }

 private:
  const storage::StorageModel& storage_;
  const PreprocModelPortfolio& preproc_;
  Seconds t_train_;
};

}  // namespace lobster::core
