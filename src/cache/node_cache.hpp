// Node-local sample cache with pluggable eviction.
//
// Tracks residency by sample id and bytes used against a capacity, keeps
// the distributed directory in sync, counts hits/misses, and supports
// pinning (samples being consumed by the current iteration, or in flight,
// must not be evicted underneath the loader).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "cache/directory.hpp"
#include "cache/policy.hpp"
#include "common/types.hpp"
#include "data/dataset.hpp"
#include "data/oracle.hpp"

namespace lobster::cache {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected_insertions = 0;  ///< policy refused to make room
  std::uint64_t bytes_inserted = 0;

  double hit_ratio() const noexcept {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class NodeCache {
 public:
  /// `directory` and `oracle` may be null (single-node / oblivious setups).
  NodeCache(NodeId node, Bytes capacity, std::unique_ptr<EvictionPolicy> policy,
            const data::SampleCatalog& catalog, CacheDirectory* directory,
            const data::AccessOracle* oracle, std::uint32_t iterations_per_epoch);
  ~NodeCache();

  NodeCache(const NodeCache&) = delete;
  NodeCache& operator=(const NodeCache&) = delete;

  bool contains(SampleId sample) const { return resident_.contains(sample); }

  /// Records a read by a GPU of this node; returns true on hit (and bumps
  /// recency), false on miss.
  bool access(SampleId sample, IterId now);

  /// Checks residency without affecting stats or recency.
  bool peek(SampleId sample) const { return resident_.contains(sample); }

  /// Inserts a sample, evicting via the policy as needed. `reuse_distance`
  /// is the newcomer's next-use distance on this node (kNeverIter if
  /// unknown) — clairvoyant policies may refuse to evict sooner-needed
  /// residents for it. Returns the evicted samples; `inserted` is false if
  /// the policy refused to make room (or the sample exceeds capacity).
  struct InsertResult {
    bool inserted = false;
    std::vector<SampleId> evicted;
  };
  InsertResult insert(SampleId sample, IterId now, IterId reuse_distance = kNeverIter);

  /// Explicitly removes a resident sample (e.g. reuse-count expiry outside
  /// an insertion). No-op if absent.
  bool evict(SampleId sample);

  /// Pinned samples are never chosen as victims.
  void pin(SampleId sample) { pinned_.insert(sample); }
  void unpin(SampleId sample) { pinned_.erase(sample); }
  void unpin_all() { pinned_.clear(); }

  /// Epoch boundary: lets the clairvoyant policy refresh oracle-keyed state.
  void on_epoch(IterId now);

  /// Pushes the stats delta since the last call into the metric registry
  /// (cache.hits, cache.misses, ...). Batched so the per-access hot path
  /// stays free of atomics; callers invoke this once per iteration.
  void publish_metrics();

  Bytes capacity() const noexcept { return capacity_; }
  Bytes used() const noexcept { return used_; }
  Bytes free_bytes() const noexcept { return capacity_ - used_; }
  std::size_t resident_count() const noexcept { return resident_.size(); }
  NodeId node() const noexcept { return node_; }
  const CacheStats& stats() const noexcept { return stats_; }
  const CacheStats& published_stats() const noexcept { return published_; }
  EvictionPolicy& policy() noexcept { return *policy_; }
  const std::unordered_set<SampleId>& residents() const noexcept { return resident_; }

 private:
  EvictionContext make_context(IterId now, IterId incoming_reuse) const;

  NodeId node_;
  Bytes capacity_;
  Bytes used_ = 0;
  std::unique_ptr<EvictionPolicy> policy_;
  const data::SampleCatalog& catalog_;
  CacheDirectory* directory_;
  const data::AccessOracle* oracle_;
  std::uint32_t iterations_per_epoch_;

  std::unordered_set<SampleId> resident_;
  std::unordered_set<SampleId> pinned_;
  CacheStats stats_;
  CacheStats published_;  ///< registry state as of the last publish_metrics()
};

}  // namespace lobster::cache
