// Piecewise linear regression.
//
// Lobster predicts preprocessing throughput with "a piece-wise linear
// regression model that takes the number of threads as input and predicts
// the execution time of processing one training sample" (§4.1). This module
// provides the generic fitter: segmented least squares with an optimal
// dynamic-programming breakpoint search (Bellman's formulation), plus
// evaluation and goodness-of-fit.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lobster {

/// One fitted line segment y = slope * x + intercept valid on [x_lo, x_hi].
struct LinearSegment {
  double x_lo = 0.0;
  double x_hi = 0.0;
  double slope = 0.0;
  double intercept = 0.0;

  double eval(double x) const noexcept { return slope * x + intercept; }
};

/// A fitted piecewise linear model: contiguous segments ordered by x.
class PiecewiseLinearModel {
 public:
  PiecewiseLinearModel() = default;
  explicit PiecewiseLinearModel(std::vector<LinearSegment> segments);

  /// Evaluates at x; extrapolates with the first/last segment outside the
  /// fitted domain.
  double eval(double x) const noexcept;

  const std::vector<LinearSegment>& segments() const noexcept { return segments_; }
  bool empty() const noexcept { return segments_.empty(); }

  /// x of the global minimum of the model over its domain (checked at
  /// segment endpoints — each segment is linear, so extrema are endpoints).
  double argmin() const noexcept;
  /// Likewise for the maximum.
  double argmax() const noexcept;

 private:
  std::vector<LinearSegment> segments_;
};

/// Fits a piecewise linear model to (x, y) points.
///
/// `max_segments` bounds the number of pieces; `segment_penalty` is the
/// per-segment cost added to the SSE in the DP objective (larger => fewer
/// segments). Points need not be sorted. Requires at least two points.
/// Complexity O(n^2 * max_segments).
PiecewiseLinearModel fit_piecewise_linear(std::span<const double> xs,
                                          std::span<const double> ys,
                                          std::size_t max_segments = 4,
                                          double segment_penalty = 0.0);

/// Ordinary least squares on the full range (single segment helper).
LinearSegment fit_line(std::span<const double> xs, std::span<const double> ys);

/// Coefficient of determination of `model` on the given points.
double r_squared(const PiecewiseLinearModel& model, std::span<const double> xs,
                 std::span<const double> ys);

}  // namespace lobster
