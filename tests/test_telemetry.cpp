// Telemetry subsystem: ring-buffer wraparound and drop accounting, wall vs
// virtual time domains, the Chrome trace exporter (parsed back by a minimal
// JSON reader), the metric registry, and the runtime kill switch.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace lobster::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to verify the exporter's output is real
// JSON with the structure Chrome/Perfetto expect.
// ---------------------------------------------------------------------------
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json& at(const std::string& key) const { return object.at(key); }
  bool has(const std::string& key) const { return object.contains(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    const Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing garbage");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected ") + c);
    ++pos_;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json value;
    value.type = Json::Type::kObject;
    if (peek() == '}') { ++pos_; return value; }
    for (;;) {
      Json key = parse_string();
      expect(':');
      value.object.emplace(std::move(key.string), parse_value());
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return value;
    }
  }

  Json parse_array() {
    expect('[');
    Json value;
    value.type = Json::Type::kArray;
    if (peek() == ']') { ++pos_; return value; }
    for (;;) {
      value.array.push_back(parse_value());
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return value;
    }
  }

  Json parse_string() {
    expect('"');
    Json value;
    value.type = Json::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            pos_ += 4;  // keep the replacement char; tests don't need codepoints
            c = '?';
            break;
          default: c = esc; break;
        }
      }
      value.string.push_back(c);
    }
    expect('"');
    return value;
  }

  Json parse_bool() {
    Json value;
    value.type = Json::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) { value.boolean = true; pos_ += 4; return value; }
    if (text_.compare(pos_, 5, "false") == 0) { pos_ += 5; return value; }
    throw std::runtime_error("bad literal");
  }

  Json parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) throw std::runtime_error("bad literal");
    pos_ += 4;
    return {};
  }

  Json parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    Json value;
    value.type = Json::Type::kNumber;
    value.number = std::stod(text_.substr(start, pos_ - start));
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Fresh tracer state per test: no recorded events, runtime switch on.
void reset_and_enable() {
  Tracer::instance().reset();
  MetricRegistry::instance().reset();
  Tracer::instance().set_enabled(true);
}

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------
TEST(TraceBuffer, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(TraceBuffer(5).capacity(), 8U);
  EXPECT_EQ(TraceBuffer(0).capacity(), 8U);
  EXPECT_EQ(TraceBuffer(16).capacity(), 16U);
  EXPECT_EQ(TraceBuffer(17).capacity(), 32U);
}

TEST(TraceBuffer, SnapshotBeforeWrapReturnsAllInOrder) {
  TraceBuffer buffer(8);
  for (std::uint64_t i = 0; i < 3; ++i) {
    TraceEvent event;
    event.ts_us = i;
    buffer.emit(event);
  }
  std::vector<TraceEvent> out;
  buffer.snapshot(out);
  ASSERT_EQ(out.size(), 3U);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(out[i].ts_us, i);
  EXPECT_EQ(buffer.dropped(), 0U);
  EXPECT_EQ(buffer.emitted(), 3U);
}

TEST(TraceBuffer, WraparoundKeepsNewestAndCountsDrops) {
  TraceBuffer buffer(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    TraceEvent event;
    event.ts_us = i;
    buffer.emit(event);
  }
  std::vector<TraceEvent> out;
  buffer.snapshot(out);
  ASSERT_EQ(out.size(), 8U);
  // Oldest-first among the survivors: 12, 13, ..., 19.
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].ts_us, 12 + i);
  EXPECT_EQ(buffer.dropped(), 12U);
  EXPECT_EQ(buffer.emitted(), 20U);
}

TEST(TraceBuffer, ClearRestartsAccounting) {
  TraceBuffer buffer(8);
  for (int i = 0; i < 20; ++i) buffer.emit(TraceEvent{});
  buffer.clear();
  EXPECT_EQ(buffer.dropped(), 0U);
  EXPECT_EQ(buffer.emitted(), 0U);
  std::vector<TraceEvent> out;
  buffer.snapshot(out);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// Tracer domains
// ---------------------------------------------------------------------------
#if !defined(LOBSTER_TELEMETRY_DISABLED)
// The macro layer and the instrumentation compiled into sim/runtime only
// exist when telemetry is compiled in.
TEST(Tracer, RuntimeDisabledMacrosRecordNothing) {
  Tracer::instance().reset();
  Tracer::instance().set_enabled(false);
  LOBSTER_TRACE_INSTANT(kTest, "disabled_instant", 1);
  LOBSTER_TRACE_COUNTER(kTest, "disabled_counter", 2.0);
  { LOBSTER_TRACE_SPAN(kTest, "disabled_span"); }
  EXPECT_TRUE(Tracer::instance().snapshot().events.empty());
}
#endif  // LOBSTER_TELEMETRY_DISABLED

TEST(Tracer, WallAndVirtualEventsCarryTheirDomains) {
  reset_and_enable();
  auto& tracer = Tracer::instance();

  const auto wall_name = tracer.intern("wall_event");
  tracer.instant_wall(Category::kTest, wall_name, 7);

  const auto track = tracer.new_track("test/virtual-track");
  const auto virtual_name = tracer.intern("virtual_event");
  tracer.instant_at(Category::kTest, virtual_name, track, 1.5, 9);
  tracer.complete_at(Category::kTest, virtual_name, track, 2.0, 3.25);

  const auto snapshot = tracer.snapshot();
  ASSERT_EQ(snapshot.events.size(), 3U);

  int wall_seen = 0;
  int virtual_seen = 0;
  for (const auto& event : snapshot.events) {
    if (event.domain == Domain::kWall) {
      ++wall_seen;
      EXPECT_EQ(event.name_id, wall_name);
      EXPECT_EQ(event.arg, 7U);
    } else {
      ++virtual_seen;
      EXPECT_EQ(event.track, track);
      if (event.phase == Phase::kInstant) {
        EXPECT_EQ(event.ts_us, 1'500'000U);  // 1.5 simulated seconds
      } else {
        EXPECT_EQ(event.phase, Phase::kComplete);
        EXPECT_EQ(event.ts_us, 2'000'000U);
        EXPECT_EQ(event.dur_us, 1'250'000U);
      }
    }
  }
  EXPECT_EQ(wall_seen, 1);
  EXPECT_EQ(virtual_seen, 2);
  EXPECT_EQ(snapshot.tracks.at(track), "test/virtual-track");
}

TEST(Tracer, ScopedSpanRecordsWallComplete) {
  reset_and_enable();
  {
    const ScopedSpan span(Category::kTest, Tracer::instance().intern("span_under_test"), 42);
  }
  const auto snapshot = Tracer::instance().snapshot();
  ASSERT_EQ(snapshot.events.size(), 1U);
  const auto& event = snapshot.events.front();
  EXPECT_EQ(event.phase, Phase::kComplete);
  EXPECT_EQ(event.domain, Domain::kWall);
  EXPECT_EQ(event.arg, 42U);
  EXPECT_EQ(snapshot.names.at(event.name_id), "span_under_test");
}

TEST(Tracer, VirtualTimeScopePinsAutoDomainEvents) {
  reset_and_enable();
  auto& tracer = Tracer::instance();
  const auto track = tracer.new_track("test/scope-track");

  tracer.instant_auto(Category::kTest, tracer.intern("outside_scope"));
  {
    VirtualTimeScope scope(track, 4.0);
    tracer.instant_auto(Category::kTest, tracer.intern("inside_scope"));
    scope.set_now(5.0);
    tracer.instant_auto(Category::kTest, tracer.intern("after_set_now"));
  }
  tracer.instant_auto(Category::kTest, tracer.intern("outside_again"));

  const auto snapshot = tracer.snapshot();
  ASSERT_EQ(snapshot.events.size(), 4U);
  std::map<std::string, const TraceEvent*> by_name;
  for (const auto& event : snapshot.events) {
    by_name[snapshot.names.at(event.name_id)] = &event;
  }
  EXPECT_EQ(by_name.at("outside_scope")->domain, Domain::kWall);
  EXPECT_EQ(by_name.at("outside_again")->domain, Domain::kWall);
  EXPECT_EQ(by_name.at("inside_scope")->domain, Domain::kVirtual);
  EXPECT_EQ(by_name.at("inside_scope")->track, track);
  EXPECT_EQ(by_name.at("inside_scope")->ts_us, 4'000'000U);
  EXPECT_EQ(by_name.at("after_set_now")->ts_us, 5'000'000U);
}

TEST(Tracer, MultithreadedEmitMergesAllThreads) {
  reset_and_enable();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([] {
        auto& tracer = Tracer::instance();
        const auto name = tracer.intern("mt_emit");
        for (int i = 0; i < kPerThread; ++i) {
          tracer.instant_wall(Category::kTest, name, static_cast<std::uint64_t>(i));
        }
      });
    }
  }
  const auto snapshot = Tracer::instance().snapshot();
  EXPECT_EQ(snapshot.events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(snapshot.dropped, 0U);
}

// ---------------------------------------------------------------------------
// Sim integration: engine dispatch lands on a virtual track, and the
// engine stays usable through a const reference (idle() is const noexcept).
// ---------------------------------------------------------------------------
TEST(SimIntegration, EngineIdleIsConstNoexcept) {
  sim::Engine engine;
  const sim::Engine& const_engine = engine;
  static_assert(noexcept(const_engine.idle()));
  EXPECT_TRUE(const_engine.idle());
  engine.schedule_at(1.0, [] {});
  EXPECT_FALSE(const_engine.idle());
  engine.run();
  EXPECT_TRUE(const_engine.idle());
}

#if !defined(LOBSTER_TELEMETRY_DISABLED)
TEST(SimIntegration, EngineDispatchEmitsVirtualInstants) {
  reset_and_enable();
  sim::Engine engine;

  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(2.5, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(engine.idle());

  const auto snapshot = Tracer::instance().snapshot();
  std::vector<std::uint64_t> dispatch_ts;
  for (const auto& event : snapshot.events) {
    if (event.category == Category::kSim && snapshot.names.at(event.name_id) == "dispatch") {
      EXPECT_EQ(event.domain, Domain::kVirtual);
      dispatch_ts.push_back(event.ts_us);
    }
  }
  ASSERT_EQ(dispatch_ts.size(), 2U);
  EXPECT_EQ(dispatch_ts[0], 1'000'000U);
  EXPECT_EQ(dispatch_ts[1], 2'500'000U);
}
#endif  // LOBSTER_TELEMETRY_DISABLED

// ---------------------------------------------------------------------------
// Chrome trace exporter
// ---------------------------------------------------------------------------
TEST(ChromeTrace, ExportIsValidJsonWithBothDomains) {
  reset_and_enable();
  auto& tracer = Tracer::instance();

  {
    const ScopedSpan span(Category::kTest, tracer.intern("wall \"quoted\"\nspan"), 3);
  }
  tracer.counter_wall(Category::kTest, tracer.intern("wall_counter"), 12.5);
  const auto track = tracer.new_track("test/export-track");
  tracer.instant_at(Category::kSim, tracer.intern("virtual_instant"), track, 0.25);

  const auto json_text = chrome_trace_json(tracer.snapshot());
  Json root;
  ASSERT_NO_THROW(root = JsonParser(json_text).parse()) << json_text;

  ASSERT_EQ(root.type, Json::Type::kObject);
  EXPECT_EQ(root.at("displayTimeUnit").string, "ms");
  ASSERT_TRUE(root.has("traceEvents"));
  const auto& events = root.at("traceEvents").array;

  bool wall_span = false;
  bool wall_counter = false;
  bool virtual_instant = false;
  bool wall_process_meta = false;
  bool virtual_process_meta = false;
  for (const auto& event : events) {
    const auto& ph = event.at("ph").string;
    if (ph == "M") {
      if (event.at("name").string == "process_name") {
        const auto pid = static_cast<int>(event.at("pid").number);
        wall_process_meta = wall_process_meta || pid == kWallPid;
        virtual_process_meta = virtual_process_meta || pid == kVirtualPid;
      }
      continue;
    }
    ASSERT_TRUE(event.has("ts"));
    ASSERT_TRUE(event.has("pid"));
    if (ph == "X" && event.at("name").string == "wall \"quoted\"\nspan") {
      wall_span = true;
      EXPECT_EQ(static_cast<int>(event.at("pid").number), kWallPid);
      EXPECT_EQ(event.at("cat").string, "test");
      EXPECT_TRUE(event.has("dur"));
    }
    if (ph == "C" && event.at("name").string == "wall_counter") {
      wall_counter = true;
      EXPECT_EQ(event.at("args").at("value").number, 12.5);
    }
    if (ph == "i" && event.at("name").string == "virtual_instant") {
      virtual_instant = true;
      EXPECT_EQ(static_cast<int>(event.at("pid").number), kVirtualPid);
      EXPECT_EQ(event.at("ts").number, 250'000.0);
      EXPECT_EQ(event.at("cat").string, "sim");
    }
  }
  EXPECT_TRUE(wall_span);
  EXPECT_TRUE(wall_counter);
  EXPECT_TRUE(virtual_instant);
  EXPECT_TRUE(wall_process_meta);
  EXPECT_TRUE(virtual_process_meta);
}

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------
TEST(MetricRegistry, CountersGaugesHistogramsRoundTrip) {
  reset_and_enable();
  auto& registry = MetricRegistry::instance();

  registry.counter("test.reg.counter").add(3);
  registry.counter("test.reg.counter").add(2);
  registry.gauge("test.reg.gauge").set(7.5);
  auto& histogram = registry.histogram("test.reg.histogram", 0.0, 10.0, 5);
  histogram.observe(1.0);
  histogram.observe(9.0);

  EXPECT_EQ(registry.counter("test.reg.counter").value(), 5U);
  EXPECT_EQ(registry.gauge("test.reg.gauge").value(), 7.5);
  EXPECT_EQ(histogram.running().count(), 2U);
  EXPECT_EQ(histogram.running().mean(), 5.0);

  const auto csv = registry.render_csv();
  EXPECT_NE(csv.find("counter,test.reg.counter,5"), std::string::npos) << csv;
  EXPECT_NE(csv.find("gauge,test.reg.gauge"), std::string::npos) << csv;
  EXPECT_NE(csv.find("histogram,test.reg.histogram"), std::string::npos) << csv;

  // reset() zeroes values but keeps entries — cached references stay valid.
  registry.reset();
  EXPECT_EQ(registry.counter("test.reg.counter").value(), 0U);
  EXPECT_EQ(histogram.running().count(), 0U);
  registry.counter("test.reg.counter").add(1);
  EXPECT_EQ(registry.counter("test.reg.counter").value(), 1U);
}

#if !defined(LOBSTER_TELEMETRY_DISABLED)
TEST(MetricRegistry, MacrosRespectRuntimeSwitch) {
  Tracer::instance().reset();
  MetricRegistry::instance().reset();
  Tracer::instance().set_enabled(false);
  LOBSTER_METRIC_COUNT("test.reg.switched", 5);
  EXPECT_EQ(MetricRegistry::instance().render_csv().find("test.reg.switched"),
            std::string::npos);

  Tracer::instance().set_enabled(true);
  LOBSTER_METRIC_COUNT("test.reg.switched", 5);
  EXPECT_EQ(MetricRegistry::instance().counter("test.reg.switched").value(), 5U);
}

TEST(MetricRegistry, MetricsOnlyModeAggregatesWithoutRecordingEvents) {
  auto& tracer = Tracer::instance();
  tracer.reset();
  MetricRegistry::instance().reset();
  tracer.set_enabled(false);
  tracer.set_metrics_enabled(true);
  EXPECT_FALSE(active());
  EXPECT_TRUE(metrics_active());

  const std::uint64_t emitted_before = tracer.emitted_events();
  LOBSTER_METRIC_COUNT("test.reg.metrics_only", 3);
  LOBSTER_TRACE_INSTANT(kTest, "metrics_only_instant", 0);
  EXPECT_EQ(MetricRegistry::instance().counter("test.reg.metrics_only").value(), 3U);
  EXPECT_EQ(tracer.emitted_events(), emitted_before);  // no event recorded

  tracer.set_metrics_enabled(false);
  EXPECT_FALSE(metrics_active());
  LOBSTER_METRIC_COUNT("test.reg.metrics_only", 3);
  EXPECT_EQ(MetricRegistry::instance().counter("test.reg.metrics_only").value(), 3U);
}
#endif  // LOBSTER_TELEMETRY_DISABLED

}  // namespace
}  // namespace lobster::telemetry
