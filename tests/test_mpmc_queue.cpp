// Bounded MPMC queue: FIFO order, capacity blocking, close semantics,
// concurrent producers/consumers conservation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/mpmc_queue.hpp"

namespace lobster {
namespace {

TEST(MpmcQueue, RejectsZeroCapacity) {
  EXPECT_THROW(MpmcQueue<int>(0), std::invalid_argument);
}

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto v = queue.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(MpmcQueue, TryPushFailsWhenFull) {
  MpmcQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  EXPECT_EQ(queue.size(), 2U);
}

TEST(MpmcQueue, TryPopEmptyReturnsNullopt) {
  MpmcQueue<int> queue(2);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(MpmcQueue, CloseDrainsThenSignalsEnd) {
  MpmcQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_TRUE(queue.closed());
}

TEST(MpmcQueue, CloseUnblocksWaitingConsumer) {
  MpmcQueue<int> queue(2);
  std::atomic<bool> got_nullopt{false};
  std::thread consumer([&] {
    const auto v = queue.pop();
    got_nullopt.store(!v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  consumer.join();
  EXPECT_TRUE(got_nullopt.load());
}

TEST(MpmcQueue, BlockingPushWaitsForSpace) {
  MpmcQueue<int> queue(1);
  queue.push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    queue.push(2);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop(), 2);
}

TEST(MpmcQueue, ConcurrentProducersConsumersConserveItems) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  MpmcQueue<int> queue(16);
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = queue.pop()) {
        consumed_sum.fetch_add(*v);
        consumed_count.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  queue.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed_count.load(), total);
  EXPECT_EQ(consumed_sum.load(), static_cast<long long>(total) * (total - 1) / 2);
}

TEST(MpmcQueue, MoveOnlyPayloads) {
  MpmcQueue<std::unique_ptr<int>> queue(2);
  queue.push(std::make_unique<int>(7));
  auto v = queue.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

TEST(MpmcQueue, TryPushBatchAcceptsUpToFreeCapacity) {
  MpmcQueue<int> queue(4);
  std::vector<int> items{1, 2, 3, 4, 5, 6};
  // Only 4 slots: the leading 4 items are moved in, the caller keeps 5, 6.
  EXPECT_EQ(queue.try_push_batch(items.data(), items.size()), 4U);
  EXPECT_EQ(queue.size(), 4U);
  EXPECT_EQ(queue.try_push_batch(items.data() + 4, 2), 0U);
  for (int i = 1; i <= 4; ++i) EXPECT_EQ(queue.pop(), i);  // FIFO preserved
}

TEST(MpmcQueue, TryPushBatchFailsWhenClosed) {
  MpmcQueue<int> queue(4);
  queue.close();
  std::vector<int> items{1, 2};
  EXPECT_EQ(queue.try_push_batch(items.data(), items.size()), 0U);
}

TEST(MpmcQueue, TryPopBatchTakesUpToMaxAndAppends) {
  MpmcQueue<int> queue(8);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(queue.push(i));
  std::vector<int> out{-1};  // pre-existing content must survive the append
  EXPECT_EQ(queue.try_pop_batch(out, 4), 4U);
  ASSERT_EQ(out.size(), 5U);
  EXPECT_EQ(out[0], -1);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i) + 1], i);
  // Fewer left than max_count: takes what is there; empty pops take nothing.
  out.clear();
  EXPECT_EQ(queue.try_pop_batch(out, 10), 2U);
  EXPECT_EQ(out, (std::vector<int>{4, 5}));
  EXPECT_EQ(queue.try_pop_batch(out, 10), 0U);
}

TEST(MpmcQueue, TryPopBatchUnblocksWaitingProducer) {
  MpmcQueue<int> queue(2);
  queue.push(1);
  queue.push(2);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    queue.push(3);  // blocks until the batch pop frees space
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  std::vector<int> out;
  EXPECT_EQ(queue.try_pop_batch(out, 2), 2U);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop(), 3);
}

TEST(MpmcQueue, BatchOpsUnderMultiProducerContentionConserveItems) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 400;
  constexpr std::size_t kChunk = 16;
  MpmcQueue<int> queue(32);
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      std::vector<int> chunk;
      for (int base = 0; base < kPerProducer; base += static_cast<int>(kChunk)) {
        chunk.clear();
        for (std::size_t i = 0; i < kChunk; ++i) {
          chunk.push_back(p * kPerProducer + base + static_cast<int>(i));
        }
        std::size_t offset = 0;
        while (offset < chunk.size()) {
          offset += queue.try_push_batch(chunk.data() + offset, chunk.size() - offset);
          std::this_thread::yield();
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::vector<int> batch;
      while (true) {
        batch.clear();
        if (queue.try_pop_batch(batch, kChunk) == 0) {
          if (done.load()) break;
          std::this_thread::yield();
          continue;
        }
        for (const int v : batch) consumed_sum.fetch_add(v);
        consumed_count.fetch_add(static_cast<int>(batch.size()));
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  // Producers are done; let consumers drain the residue before stopping.
  while (queue.size() > 0) std::this_thread::yield();
  done.store(true);
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed_count.load(), total);
  EXPECT_EQ(consumed_sum.load(), static_cast<long long>(total) * (total - 1) / 2);
}

}  // namespace
}  // namespace lobster
