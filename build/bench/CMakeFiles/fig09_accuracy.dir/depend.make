# Empty dependencies file for fig09_accuracy.
# This may be replaced when dependencies are built.
