// FeedbackBalancer: EWMA convergence on a step slowdown, hysteresis under
// noise, exactly-once quota partitioning through node kills, knob
// validation, and a concurrent RebalanceBarrier hammer (TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "core/feedback_balancer.hpp"
#include "core/load_balance_config.hpp"

namespace lobster::core {
namespace {

constexpr std::uint32_t kWorld = 4;
constexpr std::uint32_t kBatch = 64;

LoadBalanceConfig knobs_for(std::uint32_t world = kWorld, std::uint32_t batch = kBatch) {
  LoadBalanceConfig knobs;
  knobs.world_size = world;
  knobs.batch_size = batch;
  return knobs;
}

/// Feeds one iteration where every device delivers its current quota and
/// device d takes quota / rate_of(d) seconds — a synthetic cluster whose
/// per-device speed is exactly `rates`.
IterationFeedback feedback_at(IterId iter, const std::vector<std::uint32_t>& quotas,
                              const std::vector<double>& rates) {
  IterationFeedback feedback;
  feedback.iter = iter;
  for (std::uint32_t d = 0; d < quotas.size(); ++d) {
    DeviceFeedback device;
    device.device = d;
    device.delivered = quotas[d];
    device.busy_s = rates[d] > 0.0 ? quotas[d] / rates[d] : 1.0;
    feedback.devices.push_back(device);
  }
  return feedback;
}

std::uint32_t quota_sum(const std::vector<std::uint32_t>& quotas) {
  return std::accumulate(quotas.begin(), quotas.end(), 0u);
}

TEST(LoadBalanceConfigTest, ValidatesKnobs) {
  EXPECT_TRUE(LoadBalanceConfig{}.validate().ok());

  LoadBalanceConfig zero_threads;
  zero_threads.total_load_threads = 0;
  EXPECT_EQ(zero_threads.validate().code(), StatusCode::kInvalid);

  LoadBalanceConfig zero_floor;
  zero_floor.min_threads_per_gpu = 0;
  EXPECT_EQ(zero_floor.validate().code(), StatusCode::kInvalid);

  LoadBalanceConfig bad_tau;
  bad_tau.tau = 0.0;
  EXPECT_EQ(bad_tau.validate().code(), StatusCode::kInvalid);

  LoadBalanceConfig small_pool = knobs_for();
  small_pool.max_pool_threads = 2;  // below world_size = 4
  EXPECT_EQ(small_pool.validate().code(), StatusCode::kInvalid);

  LoadBalanceConfig small_queue = knobs_for();
  small_queue.queue_capacity = 2;  // below world_size = 4
  EXPECT_EQ(small_queue.validate().code(), StatusCode::kInvalid);

  // Quotas must cover every device and sum to the batch size.
  LoadBalanceConfig short_quotas = knobs_for();
  short_quotas.batch_quotas = {kBatch};
  EXPECT_EQ(short_quotas.validate().code(), StatusCode::kInvalid);

  LoadBalanceConfig bad_sum = knobs_for();
  bad_sum.batch_quotas = {16, 16, 16, 17};
  EXPECT_EQ(bad_sum.validate().code(), StatusCode::kInvalid);

  LoadBalanceConfig good = knobs_for();
  good.batch_quotas = {16, 16, 16, 16};
  EXPECT_TRUE(good.validate().ok());
}

TEST(FeedbackBalancerTest, RejectsBadConstruction) {
  // world/batch unknown: the balancer cannot split anything.
  EXPECT_THROW(FeedbackBalancer(LoadBalanceConfig{}, BalancerOptions{}),
               std::invalid_argument);

  BalancerOptions uneven;
  uneven.gpus_per_node = 3;  // does not divide world = 4
  EXPECT_THROW(FeedbackBalancer(knobs_for(), uneven), std::invalid_argument);

  BalancerOptions no_step;
  no_step.max_quota_step = 0;
  EXPECT_THROW(FeedbackBalancer(knobs_for(), no_step), std::invalid_argument);

  BalancerOptions fat_floor;
  fat_floor.min_quota = kBatch;  // 4 * 64 floors > 64 batch
  EXPECT_THROW(FeedbackBalancer(knobs_for(), fat_floor), std::invalid_argument);

  LoadBalanceConfig bad = knobs_for();
  bad.tau = -1.0;
  EXPECT_THROW(FeedbackBalancer(bad, BalancerOptions{}), std::invalid_argument);
}

TEST(FeedbackBalancerTest, InactiveDuringWarmup) {
  BalancerOptions options;
  options.warmup_iters = 3;
  FeedbackBalancer balancer(knobs_for(), options);

  const std::vector<double> rates{100.0, 100.0, 100.0, 25.0};
  std::vector<std::uint32_t> quotas = balancer.current_quotas();
  for (IterId iter = 0; iter < 2; ++iter) {
    balancer.observe(feedback_at(iter, quotas, rates));
    const RebalancePlan plan = balancer.plan(iter + 1);
    EXPECT_FALSE(plan.active) << "iteration " << iter;
    EXPECT_EQ(plan.batch_quotas, quotas) << "warmup must keep the static split";
  }
}

TEST(FeedbackBalancerTest, ConvergesOnStepSlowdown) {
  BalancerOptions options;
  options.gpus_per_node = 2;  // 2 nodes x 2 GPUs so the thread split is visible
  options.warmup_iters = 2;
  options.max_quota_step = 4;
  FeedbackBalancer balancer(knobs_for(), options);

  // Device 3 runs at quarter speed from iteration 0 (a thermal step).
  const std::vector<double> rates{100.0, 100.0, 100.0, 25.0};
  std::vector<std::uint32_t> quotas = balancer.current_quotas();
  ASSERT_EQ(quota_sum(quotas), kBatch);

  constexpr IterId kWindow = 24;
  for (IterId iter = 0; iter < kWindow; ++iter) {
    balancer.observe(feedback_at(iter, quotas, rates));
    const RebalancePlan plan = balancer.plan(iter + 1);
    ASSERT_EQ(quota_sum(plan.batch_quotas), kBatch) << "partition must hold";
    quotas = plan.batch_quotas;
  }

  // Ideal split is proportional to rates: 100/325 * 64 ≈ 19.7 each for the
  // fast devices, 25/325 * 64 ≈ 4.9 for the slow one. EWMA + damping must
  // land within ±2 samples inside the window.
  EXPECT_LE(quotas[3], 7u) << "slow device still overloaded";
  for (std::uint32_t d = 0; d < 3; ++d) {
    EXPECT_GE(quotas[d], 18u) << "fast device " << d << " under-fed";
  }

  // Load threads follow the same split within each node and respect the
  // per-GPU floors: on node 1 the slow GPU (device 3) must cede loading
  // threads to its fast neighbour (device 2).
  const RebalancePlan plan = balancer.plan(kWindow + 1);
  ASSERT_EQ(plan.load_threads.size(), kWorld);
  const LoadBalanceConfig knobs = knobs_for();
  for (std::uint32_t d = 0; d < kWorld; ++d) {
    EXPECT_GE(plan.load_threads[d], knobs.min_threads_per_gpu);
  }
  EXPECT_LT(plan.load_threads[3], plan.load_threads[2]);
}

TEST(FeedbackBalancerTest, FlagsSlowNode) {
  BalancerOptions options;
  options.gpus_per_node = 2;  // 2 nodes x 2 GPUs
  options.warmup_iters = 2;
  FeedbackBalancer balancer(knobs_for(), options);

  const std::vector<double> rates{100.0, 100.0, 20.0, 20.0};  // node 1 slow
  std::vector<std::uint32_t> quotas = balancer.current_quotas();
  for (IterId iter = 0; iter < 8; ++iter) {
    balancer.observe(feedback_at(iter, quotas, rates));
    quotas = balancer.plan(iter + 1).batch_quotas;
  }
  const auto slow = balancer.slow_nodes();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0], 1u);
  EXPECT_GE(balancer.slow_node_events(), 1u);
}

TEST(FeedbackBalancerTest, HysteresisHoldsQuotasOnNoisyBalancedLoad) {
  BalancerOptions options;
  options.warmup_iters = 2;
  options.hysteresis = 0.05;
  FeedbackBalancer balancer(knobs_for(), options);

  std::mt19937 rng(42);
  std::uniform_real_distribution<double> noise(0.99, 1.01);  // ±1% jitter

  std::vector<std::uint32_t> quotas = balancer.current_quotas();
  constexpr IterId kIters = 64;
  for (IterId iter = 0; iter < kIters; ++iter) {
    std::vector<double> rates(kWorld);
    for (double& r : rates) r = 100.0 * noise(rng);
    balancer.observe(feedback_at(iter, quotas, rates));
    const RebalancePlan plan = balancer.plan(iter + 1);
    ASSERT_EQ(quota_sum(plan.batch_quotas), kBatch);
    quotas = plan.batch_quotas;
  }

  // Noise within the deadband must not churn quotas: bound total moved
  // samples well below one sample per iteration.
  EXPECT_LE(balancer.quota_moves(), kIters / 4)
      << "balancer oscillates on a balanced workload";
}

TEST(FeedbackBalancerTest, NodeKillDropsQuotaImmediately) {
  BalancerOptions options;
  options.gpus_per_node = 2;
  options.warmup_iters = 2;
  FeedbackBalancer balancer(knobs_for(), options);

  const std::vector<double> rates{100.0, 100.0, 100.0, 100.0};
  std::vector<std::uint32_t> quotas = balancer.current_quotas();
  for (IterId iter = 0; iter < 4; ++iter) {
    balancer.observe(feedback_at(iter, quotas, rates));
    quotas = balancer.plan(iter + 1).batch_quotas;
  }

  balancer.set_node_down(1, true);
  const RebalancePlan plan = balancer.plan(5);
  ASSERT_EQ(quota_sum(plan.batch_quotas), kBatch)
      << "survivors must still partition the whole batch";
  EXPECT_EQ(plan.batch_quotas[2], 0u) << "dead device keeps quota";
  EXPECT_EQ(plan.batch_quotas[3], 0u) << "dead device keeps quota";
  EXPECT_GT(plan.batch_quotas[0], 0u);
  EXPECT_GT(plan.batch_quotas[1], 0u);

  // Revive: the node earns quota back (bounded per step by damping).
  balancer.set_node_down(1, false);
  std::vector<std::uint32_t> prev = plan.batch_quotas;
  for (IterId iter = 6; iter < 30; ++iter) {
    balancer.observe(feedback_at(iter, prev, rates));
    const RebalancePlan next = balancer.plan(iter);
    ASSERT_EQ(quota_sum(next.batch_quotas), kBatch);
    for (std::uint32_t d = 0; d < kWorld; ++d) {
      const std::uint32_t delta = next.batch_quotas[d] > prev[d]
                                      ? next.batch_quotas[d] - prev[d]
                                      : prev[d] - next.batch_quotas[d];
      EXPECT_LE(delta, options.max_quota_step) << "damping violated on device " << d;
    }
    prev = next.batch_quotas;
  }
  EXPECT_GT(prev[2] + prev[3], 0u) << "revived node never re-earns quota";
}

TEST(FeedbackBalancerTest, QuotaTraceRecordsEveryPlan) {
  BalancerOptions options;
  options.warmup_iters = 1;
  FeedbackBalancer balancer(knobs_for(), options);

  const std::vector<double> rates{100.0, 100.0, 100.0, 10.0};
  std::vector<std::uint32_t> quotas = balancer.current_quotas();
  for (IterId iter = 0; iter < 6; ++iter) {
    balancer.observe(feedback_at(iter, quotas, rates));
    quotas = balancer.plan(iter + 1).batch_quotas;
  }
  const auto trace = balancer.quota_trace();
  ASSERT_EQ(trace.size(), 6u);
  std::uint64_t moves = 0;
  for (const auto& entry : trace) {
    EXPECT_EQ(quota_sum(entry.quotas), kBatch);
    moves += entry.quota_moves;
  }
  EXPECT_EQ(moves, balancer.quota_moves());
  EXPECT_GE(balancer.rebalances(), 1u);
}

TEST(RebalanceBarrierTest, AllNodesSeeTheSamePlan) {
  BalancerOptions options;
  options.gpus_per_node = 2;
  options.warmup_iters = 1;
  FeedbackBalancer balancer(knobs_for(), options);
  RebalanceBarrier barrier(balancer, 2);

  const std::vector<double> rates{100.0, 100.0, 25.0, 25.0};
  std::vector<std::uint32_t> quotas = balancer.current_quotas();

  for (IterId iter = 0; iter < 8; ++iter) {
    RebalancePlan plans[2];
    std::thread node1([&] {
      IterationFeedback fb = feedback_at(iter, quotas, rates);
      fb.devices.erase(fb.devices.begin(), fb.devices.begin() + 2);  // node 1's half
      plans[1] = barrier.exchange(iter, 1, fb);
    });
    IterationFeedback fb = feedback_at(iter, quotas, rates);
    fb.devices.resize(2);  // node 0's half
    plans[0] = barrier.exchange(iter, 0, fb);
    node1.join();
    EXPECT_EQ(plans[0].batch_quotas, plans[1].batch_quotas) << "iteration " << iter;
    ASSERT_EQ(quota_sum(plans[0].batch_quotas), kBatch);
    quotas = plans[0].batch_quotas;
  }
  EXPECT_LT(quotas[2] + quotas[3], quotas[0] + quotas[1]);
}

TEST(RebalanceBarrierTest, NodeKillUnblocksWaiters) {
  BalancerOptions options;
  options.gpus_per_node = 2;
  options.warmup_iters = 1;
  FeedbackBalancer balancer(knobs_for(), options);
  RebalanceBarrier barrier(balancer, 2);

  const std::vector<double> rates{100.0, 100.0, 100.0, 100.0};
  const std::vector<std::uint32_t> quotas = balancer.current_quotas();

  RebalancePlan survivor_plan;
  std::thread survivor([&] {
    IterationFeedback fb = feedback_at(0, quotas, rates);
    fb.devices.resize(2);
    survivor_plan = barrier.exchange(0, 0, fb);  // node 1 never shows up
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  barrier.set_node_down(1);
  survivor.join();
  EXPECT_EQ(quota_sum(survivor_plan.batch_quotas), kBatch);

  // A dead node calling in gets a passive snapshot, never blocks.
  const RebalancePlan dead = barrier.exchange(1, 1, feedback_at(1, quotas, rates));
  EXPECT_FALSE(dead.active);
}

// Concurrency hammer: N node threads exchange per-iteration feedback for a
// straggling cluster while a chaos thread kills and revives a node. Run
// under TSan in CI (sanitize-concurrency job); asserts the partition
// invariant on every plan.
TEST(RebalanceBarrierTest, ConcurrentExchangeHammer) {
  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint32_t kGpus = 2;
  constexpr IterId kIters = 60;

  BalancerOptions options;
  options.gpus_per_node = kGpus;
  options.warmup_iters = 2;
  FeedbackBalancer balancer(knobs_for(kNodes * kGpus, 128), options);
  RebalanceBarrier barrier(balancer, kNodes);

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kNodes);
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    threads.emplace_back([&, node] {
      std::mt19937 rng(1234 + node);
      std::uniform_real_distribution<double> jitter(0.9, 1.1);
      std::vector<std::uint32_t> local(kGpus, 128 / (kNodes * kGpus));
      for (IterId iter = 0; iter < kIters; ++iter) {
        IterationFeedback fb;
        fb.iter = iter;
        for (std::uint32_t g = 0; g < kGpus; ++g) {
          DeviceFeedback device;
          device.device = node * kGpus + g;
          device.delivered = local[g];
          const double rate = (node == kNodes - 1 ? 25.0 : 100.0) * jitter(rng);
          device.busy_s = local[g] / rate;
          fb.devices.push_back(device);
        }
        const RebalancePlan plan = barrier.exchange(iter, node, fb);
        if (!plan.batch_quotas.empty()) {
          if (quota_sum(plan.batch_quotas) != 128) failed = true;
          for (std::uint32_t g = 0; g < kGpus; ++g) {
            local[g] = std::max(plan.batch_quotas[node * kGpus + g], 1u);
          }
        }
      }
    });
  }
  std::thread chaos([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    barrier.set_node_down(1);
    // Readers of the trace race the planners on purpose.
    for (int i = 0; i < 50; ++i) {
      (void)balancer.quota_trace();
      (void)balancer.weights();
      (void)balancer.slow_nodes();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (auto& thread : threads) thread.join();
  chaos.join();
  EXPECT_FALSE(failed.load()) << "a plan broke the batch partition";
  EXPECT_EQ(quota_sum(balancer.current_quotas()), 128u);
}

}  // namespace
}  // namespace lobster::core
