#include "cluster/fairness.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/registry.hpp"

namespace lobster::cluster {

std::string job_metric_prefix(const std::string& job_name) {
  return "cluster.job/" + job_name + "/";
}

FairnessTracker::FairnessTracker(std::uint64_t starvation_rounds)
    : starvation_rounds_(starvation_rounds) {}

FairnessTracker::JobFairness& FairnessTracker::slot(JobId id, const std::string& name) {
  JobFairness& entry = jobs_[id];
  if (entry.name.empty()) entry.name = name;
  return entry;
}

void FairnessTracker::set_isolated_baseline(JobId id, const std::string& name,
                                            double isolated_s) {
  slot(id, name).isolated_s = isolated_s;
}

void FairnessTracker::observe_round(const JobManager& manager, std::uint64_t round) {
  auto& registry = telemetry::MetricRegistry::instance();
  const auto flag_starved = [&](JobId id, const JobRecord& record) {
    JobFairness& entry = slot(id, record.spec.name);
    // Flag once per job, over its whole lifetime: a job that starved while
    // queued and is later preempted must not be counted again (and the
    // flag never re-arms on resume), so preempt/resume cycles can neither
    // double-count a job nor launder an earlier starvation away.
    if (entry.starved) return;
    entry.starved = true;
    ++starvation_events_;
    LOBSTER_METRIC_COUNT("cluster.job_starvations", 1);
    registry.counter(job_metric_prefix(record.spec.name) + "starved").add(1);
  };
  std::size_t waiting = 0;
  for (const JobId id : manager.queued()) {
    const JobRecord& record = manager.record(id);
    if (record.submit_round > round) continue;  // arrival still in the future
    ++waiting;
    if (round - record.submit_round < starvation_rounds_) continue;
    flag_starved(id, record);
  }
  // Preempted jobs are waiting too: a job evicted and never resumed within
  // the threshold is starved exactly like a never-admitted one (DESIGN.md
  // §13 — eviction must not become silent starvation).
  std::size_t preempted = 0;
  for (const JobId id : manager.preempted()) {
    const JobRecord& record = manager.record(id);
    ++preempted;
    if (round - record.preempt_round < starvation_rounds_) continue;
    flag_starved(id, record);
  }
  LOBSTER_METRIC_GAUGE("cluster.jobs_running", manager.running().size());
  LOBSTER_METRIC_GAUGE("cluster.jobs_queued", waiting);
  LOBSTER_METRIC_GAUGE("cluster.jobs_preempted", preempted);
  LOBSTER_METRIC_GAUGE("cluster.nodes_busy", manager.total_nodes() - manager.free_nodes());
}

void FairnessTracker::observe_delivery(JobId id, const std::string& name,
                                       std::uint64_t samples, double elapsed_s) {
  slot(id, name);
  auto [it, inserted] = throughput_.try_emplace(id);
  it->second.record(samples, elapsed_s);
  telemetry::MetricRegistry::instance()
      .gauge(job_metric_prefix(name) + "throughput")
      .set(it->second.windowed_rate());
}

double FairnessTracker::job_throughput(JobId id) const {
  const auto it = throughput_.find(id);
  return it != throughput_.end() ? it->second.windowed_rate() : 0.0;
}

void FairnessTracker::on_finish(const JobRecord& job, double submit_clock_s,
                                double admit_clock_s, double finish_clock_s) {
  JobFairness& entry = slot(job.id, job.spec.name);
  entry.queue_wait_s = admit_clock_s - submit_clock_s;
  entry.queue_wait_rounds = job.queue_wait_rounds();
  entry.total_wait_rounds = job.total_wait_rounds;
  entry.preemptions = job.preempt_count;
  entry.resizes = job.resize_count;
  // Turnaround runs submit -> finish with no reset on resume: every
  // preempted stretch is inside it, so slowdown prices preemption honestly.
  entry.turnaround_s = finish_clock_s - submit_clock_s;
  entry.slowdown = entry.isolated_s > 0.0 ? entry.turnaround_s / entry.isolated_s : 0.0;
  entry.finished = true;

  // Per-tenant slice: dynamic names go through the registry directly (the
  // LOBSTER_METRIC_* macros cache per-literal and can't take these).
  auto& registry = telemetry::MetricRegistry::instance();
  const std::string prefix = job_metric_prefix(job.spec.name);
  registry.counter(prefix + "iterations").add(job.iterations_done);
  registry.counter(prefix + "queue_wait_rounds").add(entry.queue_wait_rounds);
  registry.counter(prefix + "preemptions").add(entry.preemptions);
  registry.counter(prefix + "resizes").add(entry.resizes);
  registry.gauge(prefix + "turnaround_s").set(entry.turnaround_s);
  registry.gauge(prefix + "slowdown").set(entry.slowdown);
}

const FairnessTracker::JobFairness& FairnessTracker::job(JobId id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("FairnessTracker: unknown job id");
  return it->second;
}

double FairnessTracker::max_slowdown() const {
  double worst = 0.0;
  for (const auto& [id, entry] : jobs_) {
    if (entry.finished) worst = std::max(worst, entry.slowdown);
  }
  return worst;
}

std::vector<FairnessTracker::JobFairness> FairnessTracker::all() const {
  std::vector<JobFairness> out;
  out.reserve(jobs_.size());
  for (const auto& [id, entry] : jobs_) out.push_back(entry);
  std::sort(out.begin(), out.end(),
            [](const JobFairness& a, const JobFairness& b) { return a.name < b.name; });
  return out;
}

}  // namespace lobster::cluster
