// GPU training-stage model.
//
// The paper's performance model assumes the training stage duration T_train
// is constant per model (§4.3); load imbalance enters through the all-reduce
// barrier, which the simulator applies across all N×M GPUs. This module
// carries per-DNN iteration times (batch 32 on an A100-class GPU) for the
// six benchmark models of §5.1, plus a small jitter model (kernel launch /
// clock variation) so training is not perfectly metronomic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lobster::pipeline {

struct TrainerModel {
  std::string name;
  Seconds t_train = 0.0;   ///< per-iteration forward+backward, batch 32
  double jitter_sigma = 0.01;  ///< relative lognormal-ish jitter

  /// Six models of §5.1. Throws std::invalid_argument on unknown names.
  static TrainerModel by_name(const std::string& name);

  /// All benchmark model names in the paper's order.
  static const std::vector<std::string>& benchmark_names();

  /// Training time for a specific (iter, node, gpu) with deterministic
  /// jitter derived from `seed`.
  Seconds iteration_time(std::uint64_t seed, IterId iter, NodeId node, GpuId gpu) const;
};

}  // namespace lobster::pipeline
