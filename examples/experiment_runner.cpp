// General experiment runner: every knob of the simulated testbed on the
// command line, so new experiments don't need new binaries.
//
//   $ ./experiment_runner dataset=imagenet1k nodes=1 scale=256
//         strategies=pytorch,dali,nopfs,lobster epochs=4 model=resnet50
//         cache_fraction=0.296 seed=42 plan_out=/tmp/plan.bin
//
// Options (all optional):
//   dataset=imagenet1k|imagenet22k   scale=<divide sample count>
//   nodes=N gpus=M batch=B cpu_threads=T epochs=E model=<name> seed=S
//   cache_fraction=<of dataset bytes>   strategies=<comma list>
//   gpu_preproc=0|1 des_loading=0|1   io_sigma= burst_prob= burst_mult=
//   pfs_cluster_gbps=    imbalance_threshold=
//   plan_out=<path>      (saves the *last* strategy's decision plan)
//   csv=<path>           (writes the comparison table as CSV)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "baselines/strategies.hpp"
#include "common/config.hpp"
#include "metrics/report.hpp"
#include "pipeline/simulator.hpp"
#include "runtime/plan_io.hpp"

using namespace lobster;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = Config::from_args(argc, argv);

  const std::string dataset_name = config.get_string("dataset", "imagenet1k");
  const double scale = config.get_double("scale", 256.0);
  const auto nodes = static_cast<std::uint16_t>(config.get_int("nodes", 1));

  pipeline::ExperimentPreset preset =
      dataset_name == "imagenet22k"
          ? pipeline::preset_imagenet22k_multi_node(scale, nodes,
                                                    config.get_string("model", "resnet50"))
          : pipeline::preset_imagenet1k_multi_node(scale, nodes,
                                                   config.get_string("model", "resnet50"));

  preset.epochs = static_cast<std::uint32_t>(config.get_int("epochs", 4));
  preset.batch_size = static_cast<std::uint32_t>(config.get_int("batch", 32));
  preset.seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  preset.cluster.gpus_per_node = static_cast<std::uint16_t>(config.get_int("gpus", 8));
  preset.cluster.cpu_threads =
      static_cast<std::uint32_t>(config.get_int("cpu_threads", 128));
  if (config.contains("cache_fraction")) {
    preset.cluster.cache_bytes = pipeline::scaled_cache_bytes(
        preset.dataset, preset.seed, config.get_double("cache_fraction", 0.296));
  }
  preset.noise.io_sigma = config.get_double("io_sigma", preset.noise.io_sigma);
  preset.noise.burst_probability =
      config.get_double("burst_prob", preset.noise.burst_probability);
  preset.noise.burst_multiplier =
      config.get_double("burst_mult", preset.noise.burst_multiplier);
  preset.imbalance_threshold =
      config.get_double("imbalance_threshold", preset.imbalance_threshold);
  if (config.contains("pfs_cluster_gbps")) {
    preset.storage.pfs_cluster_bps = config.get_double("pfs_cluster_gbps", 6.0) * 1e9;
  }

  const auto strategy_names =
      split_list(config.get_string("strategies", "pytorch,dali,nopfs,lobster"));
  const bool gpu_preproc = config.get_bool("gpu_preproc", false);
  const bool des_loading = config.get_bool("des_loading", false);
  const std::string plan_out = config.get_string("plan_out", "");
  const std::string csv_path = config.get_string("csv", "");

  for (const auto& key : config.unconsumed()) {
    std::fprintf(stderr, "warning: unknown option '%s'\n", key.c_str());
  }

  std::printf("experiment: %s scale=%g nodes=%u gpus=%u batch=%u epochs=%u model=%s seed=%llu\n\n",
              preset.dataset.name.c_str(), scale, preset.cluster.nodes,
              preset.cluster.gpus_per_node, preset.batch_size, preset.epochs,
              preset.model.c_str(), static_cast<unsigned long long>(preset.seed));

  std::vector<metrics::StrategyResult> results;
  runtime::Plan last_plan;
  for (const auto& name : strategy_names) {
    auto strategy = baselines::LoaderStrategy::by_name(name);
    strategy.gpu_preprocessing = gpu_preproc;
    pipeline::SimulationConfig sim_config;
    sim_config.preset = preset;
    sim_config.strategy = strategy;
    sim_config.des_loading = des_loading;
    if (!plan_out.empty() && name == strategy_names.back()) {
      sim_config.record_plan = &last_plan;
    }
    pipeline::TrainingSimulator simulator(std::move(sim_config));
    results.push_back({name, simulator.run()});
  }

  const auto table = metrics::comparison_table(results);
  std::printf("%s\n", table.render_text().c_str());

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    out << table.render_csv();
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  if (!plan_out.empty() && !last_plan.empty()) {
    runtime::save_plan(last_plan, plan_out);
    std::printf("decision plan for '%s' written to %s (%zu iterations, %llu prefetches)\n",
                strategy_names.back().c_str(), plan_out.c_str(), last_plan.total_iterations(),
                static_cast<unsigned long long>(last_plan.total_prefetches()));
  }
  return 0;
}
