// Shared-dataset multi-job training (§2 generality claim).
//
// "our proposal works in general for other DNN training scenarios as well
// (e.g., different DNN models sharing the same training data)" — the
// Cerebro / DIESEL model-selection scenario: several jobs train different
// models over one dataset on the same nodes, time-sharing the GPUs
// round-robin at iteration granularity. What the jobs genuinely share is
// the node *cache state*: a sample staged for job A is a hit for job B, and
// Lobster's clairvoyant eviction consults the MERGED future-access view of
// every job (data::MergedAccessOracle) so a sample useless to one job but
// imminent for another is retained.
//
// Each scheduling slot runs exactly one job's iteration, so the per-slot
// accounting mirrors the single-job simulator; prefetching plans against
// the owning job's sampler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/strategies.hpp"
#include "pipeline/calibration.hpp"
#include "pipeline/metrics.hpp"

namespace lobster::pipeline {

struct JobSpec {
  std::string model = "resnet50";
  /// Stream id mixed into the preset seed, so each job shuffles the shared
  /// dataset independently.
  std::uint64_t sampler_stream = 0;
};

struct MultiJobConfig {
  ExperimentPreset preset;
  baselines::LoaderStrategy strategy;
  std::vector<JobSpec> jobs;
  /// Oracle lookahead per job, in that job's epochs.
  std::uint32_t oracle_window_epochs = 3;
  double prefetch_bandwidth_fraction = 0.8;
};

struct MultiJobResult {
  std::vector<RunMetrics> per_job;
  /// DRAM-tier cache behaviour over all jobs' accesses combined.
  cache::CacheStats combined_cache;
  Seconds total_time = 0.0;
  std::uint32_t iterations_per_epoch = 0;  ///< per job
};

/// Runs `preset.epochs` epochs of every job, interleaved round-robin.
MultiJobResult simulate_multi_job(const MultiJobConfig& config);

}  // namespace lobster::pipeline
