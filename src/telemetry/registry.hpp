// Process-wide registry of named counters, gauges and histograms.
//
// Complements the event tracer with cheap aggregates: cache hits/misses/
// evictions, queue depths, pool resizes, bytes moved per tier. Histograms
// and running statistics reuse common/stats (Welford + fixed-bin bins), so
// the CSV dump lines up with the rest of the repo's reporting.
//
// References returned by counter()/gauge()/histogram() are stable for the
// process lifetime — hot call sites cache them in function-local statics
// (see the LOBSTER_METRIC_* macros). reset() zeroes values but never
// removes entries, so cached references stay valid across test cases.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "common/stats.hpp"

namespace lobster::telemetry {

/// Monotonic event count (atomic add).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins sampled value (queue depth, pool size, bytes resident).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Mutex-guarded distribution: fixed-bin histogram + running moments.
class MetricHistogram {
 public:
  MetricHistogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins), histogram_(lo, hi, bins) {}

  void observe(double x) noexcept {
    const std::scoped_lock lock(mutex_);
    histogram_.add(x);
    running_.add(x);
  }

  RunningStats running() const {
    const std::scoped_lock lock(mutex_);
    return running_;
  }
  Histogram snapshot() const {
    const std::scoped_lock lock(mutex_);
    return histogram_;
  }
  void reset() noexcept;

 private:
  double lo_;
  double hi_;
  std::size_t bins_;
  mutable std::mutex mutex_;
  Histogram histogram_;
  RunningStats running_;
};

class MetricRegistry {
 public:
  static MetricRegistry& instance();

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First registration fixes the bin layout; later calls return it as-is.
  MetricHistogram& histogram(std::string_view name, double lo, double hi, std::size_t bins);

  /// Point-in-time copy of every counter whose name starts with `prefix`
  /// (empty prefix = all), keyed by full name. Enumeration complement to
  /// the reference-returning accessors: per-tenant tooling slices the
  /// registry by the "cluster.job/<name>/" convention (DESIGN.md §10)
  /// without knowing job names up front.
  std::map<std::string, std::uint64_t> counters_with_prefix(std::string_view prefix = {}) const;
  /// Gauge counterpart of counters_with_prefix().
  std::map<std::string, double> gauges_with_prefix(std::string_view prefix = {}) const;

  /// `kind,name,count,value,mean,min,max` rows; counters report count=value.
  std::string render_csv() const;
  void write_csv(std::ostream& out) const;
  bool write_csv_file(const std::string& path) const;

  /// Zeroes all values; entries (and references to them) survive.
  void reset() noexcept;

 private:
  MetricRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>, std::less<>> histograms_;
};

}  // namespace lobster::telemetry

// Metric macros share the tracer's kill switches: compiled out with
// LOBSTER_TELEMETRY_DISABLED, branch-on-disabled at run time, and a cached
// registry lookup per call site.
#if !defined(LOBSTER_TELEMETRY_DISABLED)

#include "telemetry/telemetry.hpp"

#define LOBSTER_METRIC_COUNT(literal, n)                                                  \
  do {                                                                                    \
    if (::lobster::telemetry::metrics_active()) {                                                 \
      static auto& lobster_metric_ =                                                      \
          ::lobster::telemetry::MetricRegistry::instance().counter(literal);              \
      lobster_metric_.add(static_cast<std::uint64_t>(n));                                 \
    }                                                                                     \
  } while (0)

#define LOBSTER_METRIC_GAUGE(literal, v)                                                  \
  do {                                                                                    \
    if (::lobster::telemetry::metrics_active()) {                                                 \
      static auto& lobster_metric_ =                                                      \
          ::lobster::telemetry::MetricRegistry::instance().gauge(literal);                \
      lobster_metric_.set(static_cast<double>(v));                                        \
    }                                                                                     \
  } while (0)

#define LOBSTER_METRIC_OBSERVE(literal, lo, hi, bins, v)                                  \
  do {                                                                                    \
    if (::lobster::telemetry::metrics_active()) {                                                 \
      static auto& lobster_metric_ =                                                      \
          ::lobster::telemetry::MetricRegistry::instance().histogram(literal, lo, hi,     \
                                                                     bins);               \
      lobster_metric_.observe(static_cast<double>(v));                                    \
    }                                                                                     \
  } while (0)

#else  // LOBSTER_TELEMETRY_DISABLED

#define LOBSTER_METRIC_COUNT(literal, n) do {} while (0)
#define LOBSTER_METRIC_GAUGE(literal, v) do {} while (0)
#define LOBSTER_METRIC_OBSERVE(literal, lo, hi, bins, v) do {} while (0)

#endif  // LOBSTER_TELEMETRY_DISABLED
