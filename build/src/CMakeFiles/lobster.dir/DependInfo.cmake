
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/strategies.cpp" "src/CMakeFiles/lobster.dir/baselines/strategies.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/baselines/strategies.cpp.o.d"
  "/root/repo/src/cache/directory.cpp" "src/CMakeFiles/lobster.dir/cache/directory.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/cache/directory.cpp.o.d"
  "/root/repo/src/cache/kv_store.cpp" "src/CMakeFiles/lobster.dir/cache/kv_store.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/cache/kv_store.cpp.o.d"
  "/root/repo/src/cache/node_cache.cpp" "src/CMakeFiles/lobster.dir/cache/node_cache.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/cache/node_cache.cpp.o.d"
  "/root/repo/src/cache/policies.cpp" "src/CMakeFiles/lobster.dir/cache/policies.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/cache/policies.cpp.o.d"
  "/root/repo/src/cache/prefetcher.cpp" "src/CMakeFiles/lobster.dir/cache/prefetcher.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/cache/prefetcher.cpp.o.d"
  "/root/repo/src/cache/tiered_cache.cpp" "src/CMakeFiles/lobster.dir/cache/tiered_cache.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/cache/tiered_cache.cpp.o.d"
  "/root/repo/src/comm/bus.cpp" "src/CMakeFiles/lobster.dir/comm/bus.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/comm/bus.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/lobster.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/common/config.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/lobster.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/piecewise_linear.cpp" "src/CMakeFiles/lobster.dir/common/piecewise_linear.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/common/piecewise_linear.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/lobster.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/lobster.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/lobster.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/lobster.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/CMakeFiles/lobster.dir/common/units.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/common/units.cpp.o.d"
  "/root/repo/src/core/perf_model.cpp" "src/CMakeFiles/lobster.dir/core/perf_model.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/core/perf_model.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/CMakeFiles/lobster.dir/core/planner.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/core/planner.cpp.o.d"
  "/root/repo/src/core/preproc_model.cpp" "src/CMakeFiles/lobster.dir/core/preproc_model.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/core/preproc_model.cpp.o.d"
  "/root/repo/src/core/thread_allocator.cpp" "src/CMakeFiles/lobster.dir/core/thread_allocator.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/core/thread_allocator.cpp.o.d"
  "/root/repo/src/core/tier_split.cpp" "src/CMakeFiles/lobster.dir/core/tier_split.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/core/tier_split.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/lobster.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/oracle.cpp" "src/CMakeFiles/lobster.dir/data/oracle.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/data/oracle.cpp.o.d"
  "/root/repo/src/data/reuse.cpp" "src/CMakeFiles/lobster.dir/data/reuse.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/data/reuse.cpp.o.d"
  "/root/repo/src/data/sampler.cpp" "src/CMakeFiles/lobster.dir/data/sampler.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/data/sampler.cpp.o.d"
  "/root/repo/src/data/trace.cpp" "src/CMakeFiles/lobster.dir/data/trace.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/data/trace.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/lobster.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/metrics/report.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/lobster.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/CMakeFiles/lobster.dir/nn/model.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/nn/model.cpp.o.d"
  "/root/repo/src/nn/synthetic.cpp" "src/CMakeFiles/lobster.dir/nn/synthetic.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/nn/synthetic.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/CMakeFiles/lobster.dir/nn/tensor.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/nn/tensor.cpp.o.d"
  "/root/repo/src/pipeline/calibration.cpp" "src/CMakeFiles/lobster.dir/pipeline/calibration.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/pipeline/calibration.cpp.o.d"
  "/root/repo/src/pipeline/metrics.cpp" "src/CMakeFiles/lobster.dir/pipeline/metrics.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/pipeline/metrics.cpp.o.d"
  "/root/repo/src/pipeline/multi_job.cpp" "src/CMakeFiles/lobster.dir/pipeline/multi_job.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/pipeline/multi_job.cpp.o.d"
  "/root/repo/src/pipeline/simulator.cpp" "src/CMakeFiles/lobster.dir/pipeline/simulator.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/pipeline/simulator.cpp.o.d"
  "/root/repo/src/pipeline/trainer_model.cpp" "src/CMakeFiles/lobster.dir/pipeline/trainer_model.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/pipeline/trainer_model.cpp.o.d"
  "/root/repo/src/runtime/distribution_manager.cpp" "src/CMakeFiles/lobster.dir/runtime/distribution_manager.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/runtime/distribution_manager.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/CMakeFiles/lobster.dir/runtime/executor.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/runtime/executor.cpp.o.d"
  "/root/repo/src/runtime/plan_io.cpp" "src/CMakeFiles/lobster.dir/runtime/plan_io.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/runtime/plan_io.cpp.o.d"
  "/root/repo/src/runtime/request_queue.cpp" "src/CMakeFiles/lobster.dir/runtime/request_queue.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/runtime/request_queue.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/lobster.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/lobster.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/fetch_replay.cpp" "src/CMakeFiles/lobster.dir/sim/fetch_replay.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/sim/fetch_replay.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/lobster.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/sim/resource.cpp.o.d"
  "/root/repo/src/storage/curves.cpp" "src/CMakeFiles/lobster.dir/storage/curves.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/storage/curves.cpp.o.d"
  "/root/repo/src/storage/hierarchy.cpp" "src/CMakeFiles/lobster.dir/storage/hierarchy.cpp.o" "gcc" "src/CMakeFiles/lobster.dir/storage/hierarchy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
