// Two-level node cache: DRAM + optional SSD staging tier.
//
// The paper's storage hierarchy (Fig. 2) — and the NoPFS system it builds
// on — spans GPU/DRAM/SSD tiers inside a node. TieredNodeCache composes two
// NodeCaches: samples evicted from the DRAM tier are *demoted* to the SSD
// tier (instead of being dropped), and an SSD hit *promotes* the sample
// back into DRAM. Each tier runs its own eviction policy.
//
// Directory ownership: a sample held in either tier is on-node (a peer can
// fetch it), so this class owns the cluster-directory updates; the inner
// caches are constructed directory-less to avoid double bookkeeping (the
// naive wiring would clear the node's directory bit when a promotion evicts
// the SSD copy even though DRAM still holds the sample).
#pragma once

#include <cstdint>
#include <memory>

#include "cache/directory.hpp"
#include "cache/node_cache.hpp"
#include "cache/policies.hpp"
#include "common/types.hpp"
#include "data/dataset.hpp"
#include "data/oracle.hpp"

namespace lobster::cache {

enum class TierHit : std::uint8_t { kMemory, kSsd, kMiss };

class TieredNodeCache {
 public:
  /// `ssd_capacity == 0` disables the SSD tier (pure DRAM behaviour).
  /// Policies are created by name (see make_policy); the clairvoyant ones
  /// are bound to the oracle automatically.
  TieredNodeCache(NodeId node, Bytes memory_capacity, Bytes ssd_capacity,
                  const std::string& memory_policy, const std::string& ssd_policy,
                  const data::SampleCatalog& catalog, CacheDirectory* directory,
                  const data::AccessOracle* oracle, std::uint32_t iterations_per_epoch);

  TieredNodeCache(const TieredNodeCache&) = delete;
  TieredNodeCache& operator=(const TieredNodeCache&) = delete;

  bool has_ssd() const noexcept { return ssd_ != nullptr; }
  NodeId node() const noexcept { return memory_->node(); }

  /// Records a read by a GPU of this node. SSD hits are promoted to DRAM.
  TierHit access(SampleId sample, IterId now);

  /// Residency in either tier, without touching stats/recency.
  bool peek(SampleId sample) const;
  bool peek_memory(SampleId sample) const { return memory_->peek(sample); }
  bool peek_ssd(SampleId sample) const { return ssd_ != nullptr && ssd_->peek(sample); }

  /// Inserts into DRAM (evictees demote to the SSD tier).
  /// Returns false when neither tier could take the sample.
  bool insert(SampleId sample, IterId now, IterId reuse_distance = kNeverIter);

  /// Drops a sample from both tiers.
  void evict(SampleId sample);

  void pin(SampleId sample);
  void unpin_all();
  void on_epoch(IterId now);

  /// Batched registry update (see NodeCache::publish_metrics). Publishes
  /// the DRAM tier only — `cache.*` mirrors RunMetrics::hit_ratio, which is
  /// defined over memory-tier accesses.
  void publish_metrics() { memory_->publish_metrics(); }

  const CacheStats& memory_stats() const noexcept { return memory_->stats(); }
  const CacheStats& ssd_stats() const;
  NodeCache& memory() noexcept { return *memory_; }
  const NodeCache& memory() const noexcept { return *memory_; }

  /// Combined hit ratio counting either tier as a hit.
  double combined_hit_ratio() const noexcept;

 private:
  std::unique_ptr<EvictionPolicy> bound_policy(const std::string& name) const;
  void sync_directory(SampleId sample);

  const data::SampleCatalog& catalog_;
  CacheDirectory* directory_;
  const data::AccessOracle* oracle_;
  NodeId node_id_;
  std::unique_ptr<NodeCache> memory_;
  std::unique_ptr<NodeCache> ssd_;  // null when the tier is disabled
  std::uint64_t ssd_hits_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t promotions_ = 0;

 public:
  std::uint64_t ssd_hits() const noexcept { return ssd_hits_; }
  std::uint64_t demotions() const noexcept { return demotions_; }
  std::uint64_t promotions() const noexcept { return promotions_; }
};

}  // namespace lobster::cache
