// §5.5 (text) — memory cache hit ratio over a whole training run
// (1 node, 8 GPUs, ImageNet-1K). Paper: Lobster 63.2% vs PyTorch 24.5%,
// DALI 32.6%, NoPFS 48.9%.
#include <cstdio>

#include "baselines/strategies.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "pipeline/simulator.hpp"

using namespace lobster;
using baselines::LoaderStrategy;

int main(int argc, char** argv) {
  const auto config = bench::parse_args(argc, argv);
  const bench::TraceSession trace_session(config);
  bench::MetricsJson metrics_json(config, "tab_cache_hit_ratio");
  const double scale = config.get_double("scale", 256.0);
  const auto epochs = static_cast<std::uint32_t>(config.get_int("epochs", 6));
  bench::warn_unconsumed(config);

  bench::print_header("Table (§5.5): node-local cache hit ratio (1 node, ImageNet-1K)",
                      "PyTorch 24.5%, DALI 32.6%, NoPFS 48.9%, Lobster 63.2%");

  auto preset = pipeline::preset_imagenet1k_single_node(scale);
  preset.epochs = epochs;

  struct PaperRow {
    const char* strategy;
    double paper_percent;
  };
  const PaperRow rows[] = {
      {"pytorch", 24.5}, {"dali", 32.6}, {"nopfs", 48.9}, {"lobster", 63.2}};

  Table table({"strategy", "hit_ratio_%", "paper_%", "evictions", "insertions", "rejected"});
  double pytorch_warm = 0.0;
  for (const auto& row : rows) {
    const auto result = pipeline::simulate(preset, LoaderStrategy::by_name(row.strategy));
    const auto& stats = result.metrics.cache_stats();
    table.add_row({row.strategy, Table::num(100.0 * stats.hit_ratio(), 1),
                   Table::num(row.paper_percent, 1), std::to_string(stats.evictions),
                   std::to_string(stats.insertions), std::to_string(stats.rejected_insertions)});
    if (pytorch_warm == 0.0) pytorch_warm = result.metrics.time_after_epoch(1);
    metrics_json.add(bench::make_record("tab_cache_hit_ratio", "imagenet1k/1node",
                                        row.strategy, result, pytorch_warm));
  }
  bench::emit(config, "tab_cache_hit_ratio", table);
  return 0;
}
