// Eviction policies: LRU/FIFO victim orders, and the Lobster reuse policy's
// furthest-first choice, prefetch coordination refusal, sole-copy guard,
// and epoch rekeying.
#include <gtest/gtest.h>

#include <memory>

#include "cache/directory.hpp"
#include "cache/node_cache.hpp"
#include "cache/policies.hpp"
#include "data/dataset.hpp"
#include "data/oracle.hpp"
#include "data/sampler.hpp"

namespace lobster::cache {
namespace {

EvictionContext plain_context(IterId now = 0) {
  EvictionContext context;
  context.now = now;
  context.iterations_per_epoch = 8;
  return context;
}

TEST(LruPolicy, EvictsLeastRecentlyUsed) {
  LruPolicy policy;
  policy.on_insert(1, 0);
  policy.on_insert(2, 1);
  policy.on_insert(3, 2);
  policy.on_access(1, 3);
  EXPECT_EQ(policy.pick_victim(plain_context()), 2U);
}

TEST(LruPolicy, RespectsCanEvict) {
  LruPolicy policy;
  policy.on_insert(1, 0);
  policy.on_insert(2, 1);
  auto context = plain_context();
  context.can_evict = [](SampleId s) { return s != 1; };
  EXPECT_EQ(policy.pick_victim(context), 2U);
  context.can_evict = [](SampleId) { return false; };
  EXPECT_EQ(policy.pick_victim(context), kInvalidSample);
}

TEST(LruPolicy, EvictNotifiedRemovesTracking) {
  LruPolicy policy;
  policy.on_insert(1, 0);
  policy.on_insert(2, 1);
  policy.on_evict(1);
  EXPECT_EQ(policy.pick_victim(plain_context()), 2U);
  policy.on_evict(2);
  EXPECT_EQ(policy.pick_victim(plain_context()), kInvalidSample);
}

TEST(FifoPolicy, EvictsOldestInsertionRegardlessOfAccess) {
  FifoPolicy policy;
  policy.on_insert(1, 0);
  policy.on_insert(2, 1);
  policy.on_access(1, 5);  // FIFO ignores recency
  EXPECT_EQ(policy.pick_victim(plain_context()), 1U);
}

TEST(MakePolicy, KnownNamesAndErrors) {
  EXPECT_NE(make_policy("lru"), nullptr);
  EXPECT_NE(make_policy("fifo"), nullptr);
  EXPECT_NE(make_policy("lobster"), nullptr);
  EXPECT_THROW(make_policy("clock-pro"), std::invalid_argument);
}

// ---- LobsterReusePolicy against a real sampler-backed oracle.

struct LobsterFixture : public ::testing::Test {
  LobsterFixture()
      : sampler(make_sampler_config()), oracle(sampler, 2) {}

  static data::SamplerConfig make_sampler_config() {
    data::SamplerConfig config;
    config.num_samples = 256;
    config.nodes = 2;
    config.gpus_per_node = 2;
    config.batch_size = 8;
    config.seed = 21;
    return config;
  }

  EvictionContext context(IterId now, CacheDirectory* directory = nullptr) const {
    EvictionContext ctx;
    ctx.node = 0;
    ctx.now = now;
    ctx.iterations_per_epoch = sampler.iterations_per_epoch();
    ctx.oracle = &oracle;
    ctx.directory = directory;
    return ctx;
  }

  data::EpochSampler sampler;
  data::FutureAccessOracle oracle;
};

TEST_F(LobsterFixture, PicksFurthestNextUse) {
  LobsterReusePolicy policy;
  policy.bind(&oracle, 0);

  // Insert three samples whose next use on node 0 we know.
  const auto batch0 = sampler.minibatch(0, 2, 0, 0);
  const auto batch1 = sampler.minibatch(0, 5, 0, 0);
  const SampleId soon = batch0[0];   // used at iteration 2
  const SampleId later = batch1[0];  // used at iteration 5
  policy.on_insert(soon, 0);
  policy.on_insert(later, 0);

  const SampleId victim = policy.pick_victim(context(0));
  // Victim must be whichever is used later on node 0 (or never in-window).
  const IterId soon_dist = oracle.reuse_distance_on_node(soon, 0, 0);
  const IterId later_dist = oracle.reuse_distance_on_node(later, 0, 0);
  if (soon_dist < later_dist) {
    EXPECT_EQ(victim, later);
  } else {
    EXPECT_EQ(victim, soon);
  }
}

TEST_F(LobsterFixture, NeverBucketPreferred) {
  LobsterReusePolicy policy;
  policy.bind(&oracle, 0);
  // A sample only ever used by node 1 has no in-window use on node 0.
  SampleId other_node_sample = kInvalidSample;
  SampleId our_sample = kInvalidSample;
  for (SampleId s = 0; s < 256; ++s) {
    const bool ours = oracle.next_access_on_node(s, 0, 0).has_value();
    const bool theirs = oracle.next_access_on_node(s, 1, 0).has_value();
    if (!ours && theirs && other_node_sample == kInvalidSample) other_node_sample = s;
    if (ours && our_sample == kInvalidSample) our_sample = s;
  }
  ASSERT_NE(other_node_sample, kInvalidSample);
  ASSERT_NE(our_sample, kInvalidSample);

  policy.on_insert(our_sample, 0);
  policy.on_insert(other_node_sample, 0);
  EXPECT_EQ(policy.pick_victim(context(0)), other_node_sample);
}

TEST_F(LobsterFixture, CoordinationRefusesEvictingSoonerNeeded) {
  LobsterReusePolicy policy;
  policy.bind(&oracle, 0);
  // Resident used soon; incoming sample needed much later -> refuse.
  SampleId soon = kInvalidSample;
  for (SampleId s = 0; s < 256; ++s) {
    const auto d = oracle.reuse_distance_on_node(s, 0, 0);
    if (d != kNeverIter && d <= 3) {
      soon = s;
      break;
    }
  }
  ASSERT_NE(soon, kInvalidSample);
  policy.on_insert(soon, 0);

  auto ctx = context(0);
  ctx.incoming_reuse_distance = 1000;  // newcomer needed far in the future
  EXPECT_EQ(policy.pick_victim(ctx), kInvalidSample);

  // Incoming needed sooner than the resident -> eviction proceeds.
  ctx.incoming_reuse_distance = 0;
  EXPECT_EQ(policy.pick_victim(ctx), soon);
}

TEST_F(LobsterFixture, SoleCopyGuardPrefersOtherVictims) {
  LobsterReusePolicy policy;
  policy.bind(&oracle, 0);
  CacheDirectory directory(2);

  // Find a sample needed by node 1 in-window, and one needed by nobody else.
  SampleId guarded = kInvalidSample;
  for (SampleId s = 0; s < 256 && guarded == kInvalidSample; ++s) {
    if (!oracle.next_access_on_node(s, 0, 0).has_value() &&
        oracle.needed_by_other_node(s, 0, 0)) {
      guarded = s;
    }
  }
  ASSERT_NE(guarded, kInvalidSample);

  // Both samples keyed "never" on node 0 and needed by node 1; the guarded
  // one is node 0's sole copy, the other is replicated on node 1 (so
  // evicting it costs the group nothing).
  SampleId unguarded = kInvalidSample;
  for (SampleId s = 0; s < 256 && unguarded == kInvalidSample; ++s) {
    if (s != guarded && !oracle.next_access_on_node(s, 0, 0).has_value() &&
        oracle.needed_by_other_node(s, 0, 0)) {
      unguarded = s;
    }
  }
  ASSERT_NE(unguarded, kInvalidSample);

  directory.add(guarded, 0);    // sole holder
  directory.add(unguarded, 0);
  directory.add(unguarded, 1);  // replicated

  policy.on_insert(guarded, 0);
  policy.on_insert(unguarded, 0);
  EXPECT_EQ(policy.pick_victim(context(0, &directory)), unguarded);
}

TEST_F(LobsterFixture, GuardFallsBackWhenEveryCandidateGuarded) {
  LobsterReusePolicy policy;
  policy.bind(&oracle, 0);
  CacheDirectory directory(2);
  // One resident, guarded: sole copy + needed by node 1. Eviction must still
  // succeed (second pass) rather than deadlock the cache.
  SampleId guarded = kInvalidSample;
  for (SampleId s = 0; s < 256; ++s) {
    if (oracle.needed_by_other_node(s, 0, 0)) {
      guarded = s;
      break;
    }
  }
  ASSERT_NE(guarded, kInvalidSample);
  directory.add(guarded, 0);
  policy.on_insert(guarded, 0);
  EXPECT_EQ(policy.pick_victim(context(0, &directory)), guarded);
}

TEST_F(LobsterFixture, OnEpochRekeysNeverBucket) {
  LobsterReusePolicy policy;
  policy.bind(&oracle, 0);
  const std::uint32_t I = sampler.iterations_per_epoch();

  // Sample whose next node-0 use is in epoch 2 (outside window [0,2)).
  SampleId future_sample = kInvalidSample;
  data::FutureAccessOracle wide(sampler, 3);
  for (SampleId s = 0; s < 256; ++s) {
    const auto next = wide.next_access_on_node(s, 0, 2ULL * I - 1);
    if (next && !oracle.next_access_on_node(s, 0, 0).has_value()) {
      future_sample = s;
      break;
    }
  }
  if (future_sample == kInvalidSample) GTEST_SKIP() << "no suitable sample in this seed";

  policy.on_insert(future_sample, 0);
  // Initially keyed "never" -> is the preferred victim.
  EXPECT_EQ(policy.pick_victim(context(0)), future_sample);

  // Slide the oracle window so the future use becomes visible, rekey.
  oracle.rebase(1);
  auto ctx = context(static_cast<IterId>(I));
  policy.on_epoch(ctx);
  // Now the sample has a known next use; with incoming_reuse_distance very
  // large the coordination rule should refuse to evict it... unless its use
  // is still beyond the window. Just assert the key is no longer "never":
  ctx.incoming_reuse_distance = kNeverIter - 1;  // effectively infinite
  // A "never" bucket would still evict; a keyed bucket refuses because the
  // resident is needed sooner than the (infinitely later) newcomer.
  EXPECT_EQ(policy.pick_victim(ctx), kInvalidSample);
}

}  // namespace
}  // namespace lobster::cache

// ---- RandomPolicy and the extended factory names (appended coverage).

namespace lobster::cache {
namespace {

TEST(RandomPolicy, TracksResidentsAndRespectsPins) {
  RandomPolicy policy(7);
  for (SampleId s = 0; s < 10; ++s) policy.on_insert(s, 0);
  EvictionContext context;
  context.can_evict = [](SampleId s) { return s == 4; };
  EXPECT_EQ(policy.pick_victim(context), 4U);  // only candidate allowed
  context.can_evict = [](SampleId) { return false; };
  EXPECT_EQ(policy.pick_victim(context), kInvalidSample);
}

TEST(RandomPolicy, EvictedSamplesNeverChosenAgain) {
  RandomPolicy policy(9);
  policy.on_insert(1, 0);
  policy.on_insert(2, 0);
  policy.on_evict(1);
  EvictionContext context;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(policy.pick_victim(context), 2U);
  policy.on_evict(2);
  EXPECT_EQ(policy.pick_victim(context), kInvalidSample);
}

TEST(RandomPolicy, DeterministicInSeed) {
  RandomPolicy a(3);
  RandomPolicy b(3);
  for (SampleId s = 0; s < 100; ++s) {
    a.on_insert(s, 0);
    b.on_insert(s, 0);
  }
  EvictionContext context;
  for (int i = 0; i < 10; ++i) {
    const SampleId va = a.pick_victim(context);
    EXPECT_EQ(va, b.pick_victim(context));
    a.on_evict(va);
    b.on_evict(va);
  }
}

TEST(MakePolicy, ExtendedNames) {
  EXPECT_NE(make_policy("random"), nullptr);
  EXPECT_NE(make_policy("belady"), nullptr);
  EXPECT_NE(make_policy("lobster-nocoord"), nullptr);
}

TEST_F(LobsterFixture, BeladyIgnoresCoordination) {
  // "belady" = LobsterReusePolicy with coordination off: it always evicts
  // the furthest-next-use resident even for a later-needed newcomer.
  auto policy = make_policy("belady");
  auto* reuse = dynamic_cast<LobsterReusePolicy*>(policy.get());
  ASSERT_NE(reuse, nullptr);
  reuse->bind(&oracle, 0);

  SampleId soon = kInvalidSample;
  for (SampleId s = 0; s < 256; ++s) {
    const auto d = oracle.reuse_distance_on_node(s, 0, 0);
    if (d != kNeverIter && d <= 3) {
      soon = s;
      break;
    }
  }
  ASSERT_NE(soon, kInvalidSample);
  policy->on_insert(soon, 0);
  auto ctx = context(0);
  ctx.incoming_reuse_distance = 1000;
  EXPECT_EQ(policy->pick_victim(ctx), soon);  // full Lobster would refuse
}

TEST_F(LobsterFixture, NocoordKeepsGuardButEvictsForLaterNewcomers) {
  auto policy = make_policy("lobster-nocoord");
  auto* reuse = dynamic_cast<LobsterReusePolicy*>(policy.get());
  ASSERT_NE(reuse, nullptr);
  reuse->bind(&oracle, 0);
  SampleId any = kInvalidSample;
  for (SampleId s = 0; s < 256; ++s) {
    if (oracle.reuse_distance_on_node(s, 0, 0) != kNeverIter) {
      any = s;
      break;
    }
  }
  ASSERT_NE(any, kInvalidSample);
  policy->on_insert(any, 0);
  auto ctx = context(0);
  ctx.incoming_reuse_distance = kNeverIter - 1;
  EXPECT_EQ(policy->pick_victim(ctx), any);
}

}  // namespace
}  // namespace lobster::cache
