#include "telemetry/analysis/span_analysis.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "telemetry/analysis/json.hpp"

namespace lobster::telemetry::analysis {
namespace {

std::string hex_id(std::uint64_t id) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const auto nibble = (id >> shift) & 0xF;
    if (nibble != 0) started = true;
    if (started || shift == 0) out.push_back(kDigits[nibble]);
  }
  return out;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Merges [begin,end) intervals and returns the union length.
double union_length_us(std::vector<std::pair<std::uint64_t, std::uint64_t>>& intervals) {
  if (intervals.empty()) return 0.0;
  std::sort(intervals.begin(), intervals.end());
  double total = 0.0;
  auto [cur_b, cur_e] = intervals.front();
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    const auto [b, e] = intervals[i];
    if (b <= cur_e) {
      cur_e = std::max(cur_e, e);
    } else {
      total += static_cast<double>(cur_e - cur_b);
      cur_b = b;
      cur_e = e;
    }
  }
  total += static_cast<double>(cur_e - cur_b);
  return total;
}

}  // namespace

std::vector<LoadedSpan> load_spans(const std::string& jsonl_text) {
  std::vector<LoadedSpan> spans;
  std::istringstream in(jsonl_text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JsonValue value;
    try {
      value = parse_json(line);
    } catch (const std::exception& e) {
      throw std::runtime_error("spans line " + std::to_string(line_no) + ": " + e.what());
    }
    if (value.get_string("schema") != "lobster.spans.v1") {
      throw std::runtime_error("spans line " + std::to_string(line_no) +
                               ": schema != lobster.spans.v1");
    }
    LoadedSpan span;
    span.trace = value.get_string("trace", "0");
    span.span = value.get_string("span", "0");
    span.parent = value.get_string("parent", "0");
    span.kind = value.get_string("kind");
    span.status = value.get_string("status", "ok");
    span.rank = static_cast<std::uint16_t>(value.get_number("rank"));
    span.begin_us = static_cast<std::uint64_t>(value.get_number("begin_us"));
    span.end_us = static_cast<std::uint64_t>(value.get_number("end_us"));
    span.arg = static_cast<std::uint64_t>(value.get_number("arg"));
    span.arg2 = static_cast<std::uint64_t>(value.get_number("arg2"));
    spans.push_back(std::move(span));
  }
  return spans;
}

std::vector<LoadedSpan> load_spans_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open spans file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_spans(buffer.str());
}

std::vector<LoadedSpan> spans_from_records(const std::vector<SpanRecord>& records) {
  std::vector<LoadedSpan> spans;
  spans.reserve(records.size());
  for (const auto& record : records) {
    LoadedSpan span;
    span.trace = hex_id(record.trace_id);
    span.span = hex_id(record.span_id);
    span.parent = hex_id(record.parent_span_id);
    span.kind = span_kind_name(record.kind);
    span.status = status_code_name(record.status);
    span.rank = record.rank;
    span.begin_us = record.begin_us;
    span.end_us = record.end_us;
    span.arg = record.arg;
    span.arg2 = record.arg2;
    spans.push_back(std::move(span));
  }
  return spans;
}

SpanAnalysis analyze_spans(const std::vector<LoadedSpan>& spans) {
  SpanAnalysis analysis;
  analysis.total_spans = spans.size();

  std::unordered_map<std::string, std::vector<const LoadedSpan*>> by_trace;
  for (const auto& span : spans) by_trace[span.trace].push_back(&span);

  // iter -> wasted wall intervals across ALL degraded fetch traces; merged
  // as a union so overlapping worker timeouts count once.
  std::map<std::uint64_t, std::vector<std::pair<std::uint64_t, std::uint64_t>>> iter_intervals;

  for (auto& [trace_id, members] : by_trace) {
    std::sort(members.begin(), members.end(),
              [](const LoadedSpan* a, const LoadedSpan* b) {
                return a->begin_us < b->begin_us;
              });
    TraceSummary summary;
    summary.trace_id = trace_id;
    summary.spans = members.size();

    std::unordered_set<std::string> ids;
    std::set<std::uint16_t> ranks;
    const LoadedSpan* root = nullptr;
    std::size_t roots = 0;
    for (const auto* span : members) {
      ids.insert(span->span);
      ranks.insert(span->rank);
      if (span->parent == "0") {
        ++roots;
        if (root == nullptr) root = span;
      }
    }
    summary.ranks = ranks.size();
    bool parents_resolve = true;
    for (const auto* span : members) {
      if (span->parent != "0" && !ids.contains(span->parent)) parents_resolve = false;
    }
    summary.well_formed = roots == 1 && parents_resolve;
    if (root != nullptr) {
      summary.root_kind = root->kind;
      summary.root_rank = root->rank;
      summary.sample = root->arg;
      summary.iter = root->arg2;
      summary.duration_us = root->duration_us();
    }

    // Wasted-time buckets. A trace's first detour splits its attempts:
    // failed attempts and backoffs are the "timeout" bucket; OK attempts
    // issued after a detour are the "detour" bucket (the extra round-trip
    // a healthy fetch would not have made).
    std::uint64_t first_detour_us = ~0ULL;
    for (const auto* span : members) {
      if (span->kind == "detour") first_detour_us = std::min(first_detour_us, span->begin_us);
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> wasted;
    for (const auto* span : members) {
      const bool failed = span->status != "ok";
      if (span->kind == "attempt") {
        ++summary.attempts;
        if (failed) {
          summary.degraded = true;
          summary.timeout_us += span->duration_us();
          wasted.emplace_back(span->begin_us, span->end_us);
        } else if (span->begin_us >= first_detour_us) {
          summary.detour_us += span->duration_us();
          wasted.emplace_back(span->begin_us, span->end_us);
        }
      } else if (span->kind == "backoff") {
        summary.degraded = true;
        summary.timeout_us += span->duration_us();
        wasted.emplace_back(span->begin_us, span->end_us);
      } else if (span->kind == "detour") {
        summary.degraded = true;
        ++summary.detours;
      } else if (span->kind == "pfs_fallback") {
        // NOT a degradation marker by itself: planned PFS-tier fetches (and
        // remote requests with no recorded holder) take this span on the
        // happy path. It only becomes wasted time when the trace also shows
        // a failure (failed attempt / detour / fast-fail).
        summary.pfs_us += span->duration_us();
        wasted.emplace_back(span->begin_us, span->end_us);
      } else if (span->kind == "breaker_fast_fail") {
        summary.degraded = true;
        ++summary.fast_fails;
      }
    }

    if (summary.root_kind == "fetch") {
      ++analysis.fetch_traces;
      if (summary.degraded) {
        ++analysis.degraded_fetches;
        analysis.timeout_us += summary.timeout_us;
        analysis.detour_us += summary.detour_us;
        analysis.pfs_us += summary.pfs_us;
        auto& slot = iter_intervals[summary.iter];
        slot.insert(slot.end(), wasted.begin(), wasted.end());
      }
      if (summary.ranks >= 2) ++analysis.cross_rank_fetches;
    } else if (summary.root_kind == "multi_get" && summary.degraded) {
      // Batched multi-get rounds (root arg = holder, arg2 = iter): their
      // failed attempts and backoffs are real wall-clock waste inside the
      // iteration, so they feed the attribution union — but they are not
      // fetch traces. Per-sample fallbacks the executor issues afterwards
      // root their own kFetch trees and are counted above.
      analysis.timeout_us += summary.timeout_us;
      auto& slot = iter_intervals[summary.iter];
      slot.insert(slot.end(), wasted.begin(), wasted.end());
    }
    if (!summary.well_formed) ++analysis.malformed_traces;
    analysis.traces.push_back(std::move(summary));
  }

  std::sort(analysis.traces.begin(), analysis.traces.end(),
            [](const TraceSummary& a, const TraceSummary& b) {
              return a.trace_id < b.trace_id;
            });

  for (auto& [iter, intervals] : iter_intervals) {
    const double unioned = union_length_us(intervals);
    analysis.iteration_overhead_us[iter] = unioned;
    analysis.union_overhead_us += unioned;
  }
  return analysis;
}

Table fetch_latency_table(const SpanAnalysis& analysis) {
  Table table({"fetches", "count", "mean_ms", "p50_ms", "p95_ms", "max_ms"});
  const auto add_row = [&table](const char* label, std::vector<double>& lat_us) {
    std::sort(lat_us.begin(), lat_us.end());
    double sum = 0.0;
    for (const double v : lat_us) sum += v;
    const double mean = lat_us.empty() ? 0.0 : sum / static_cast<double>(lat_us.size());
    table.add_row({label, std::to_string(lat_us.size()), Table::num(mean / 1e3),
                   Table::num(percentile(lat_us, 0.50) / 1e3),
                   Table::num(percentile(lat_us, 0.95) / 1e3),
                   Table::num(lat_us.empty() ? 0.0 : lat_us.back() / 1e3)});
  };
  std::vector<double> all, healthy, degraded;
  for (const auto& trace : analysis.traces) {
    if (trace.root_kind != "fetch") continue;
    all.push_back(trace.duration_us);
    (trace.degraded ? degraded : healthy).push_back(trace.duration_us);
  }
  add_row("all", all);
  add_row("healthy", healthy);
  add_row("degraded", degraded);
  return table;
}

Table span_attribution_table(const SpanAnalysis& analysis) {
  Table table({"bucket", "total_ms", "share"});
  const double total = analysis.timeout_us + analysis.detour_us + analysis.pfs_us;
  const auto share = [total](double v) {
    return total > 0.0 ? Table::num(v / total) : Table::num(0.0);
  };
  table.add_row({"timeout+backoff", Table::num(analysis.timeout_us / 1e3),
                 share(analysis.timeout_us)});
  table.add_row({"detour", Table::num(analysis.detour_us / 1e3), share(analysis.detour_us)});
  table.add_row({"pfs_fallback", Table::num(analysis.pfs_us / 1e3), share(analysis.pfs_us)});
  table.add_row({"union_overhead", Table::num(analysis.union_overhead_us / 1e3), "-"});
  table.add_row({"degraded_iterations",
                 std::to_string(analysis.iteration_overhead_us.size()), "-"});
  return table;
}

Table slowest_traces_table(const SpanAnalysis& analysis,
                           const std::vector<LoadedSpan>& spans, std::size_t top_n) {
  std::vector<const TraceSummary*> fetches;
  for (const auto& trace : analysis.traces) {
    if (trace.root_kind == "fetch") fetches.push_back(&trace);
  }
  std::sort(fetches.begin(), fetches.end(),
            [](const TraceSummary* a, const TraceSummary* b) {
              return a->duration_us > b->duration_us;
            });
  if (fetches.size() > top_n) fetches.resize(top_n);

  std::unordered_map<std::string, std::vector<const LoadedSpan*>> by_trace;
  for (const auto& span : spans) by_trace[span.trace].push_back(&span);

  Table table({"trace", "sample", "iter", "rank", "ms", "degraded", "path"});
  for (const auto* trace : fetches) {
    auto members = by_trace[trace->trace_id];
    std::sort(members.begin(), members.end(),
              [](const LoadedSpan* a, const LoadedSpan* b) {
                return a->begin_us < b->begin_us;
              });
    // The begin-ordered child chain reads as the fetch's critical path:
    // attempts block their parent and backoffs/fallbacks are sequential.
    std::string path;
    for (const auto* span : members) {
      if (span->parent == "0") continue;
      if (!path.empty()) path += " > ";
      path += span->kind;
      if (span->kind == "attempt" || span->kind == "serve") {
        path += "@" + std::to_string(span->rank);
      }
      if (span->status != "ok") path += "(" + span->status + ")";
    }
    table.add_row({trace->trace_id, std::to_string(trace->sample),
                   std::to_string(trace->iter), std::to_string(trace->root_rank),
                   Table::num(trace->duration_us / 1e3),
                   trace->degraded ? "yes" : "no", path});
  }
  return table;
}

}  // namespace lobster::telemetry::analysis
