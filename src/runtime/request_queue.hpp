// Per-GPU data-loading request queues (§4.2).
//
// "Lobster proposes to maintain a separate request queue for each GPU, each
// of which can be assigned a different number of threads such as to achieve
// load balancing." This is the online-runtime realization: one bounded MPMC
// queue per co-located GPU, plus helpers the thread assignment consults
// (per-queue depth, total pending bytes).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mpmc_queue.hpp"
#include "common/types.hpp"

namespace lobster::runtime {

enum class FetchTier : std::uint8_t { kLocal, kRemote, kPfs };

struct LoadRequest {
  SampleId sample = kInvalidSample;
  Bytes bytes = 0;
  FetchTier tier = FetchTier::kLocal;
  IterId iter = 0;
  GpuId gpu = 0;
  /// Prefetch requests are background work; demand requests gate the
  /// iteration barrier.
  bool prefetch = false;
};

class GpuRequestQueues {
 public:
  GpuRequestQueues(std::uint16_t gpus, std::size_t capacity_per_queue);

  std::uint16_t gpus() const noexcept { return static_cast<std::uint16_t>(queues_.size()); }

  /// Blocking push to a GPU's queue; false once closed.
  bool push(GpuId gpu, LoadRequest request);

  /// Non-blocking push; false when the queue is full or closed. Callers must
  /// handle the overflow (the executor spills and counts it) — a dropped
  /// return value here loses samples silently.
  [[nodiscard]] bool try_push(GpuId gpu, LoadRequest request);

  /// Non-blocking bulk push under one queue lock; returns how many leading
  /// requests were accepted (the rest stay with the caller).
  [[nodiscard]] std::size_t try_push_batch(GpuId gpu, std::vector<LoadRequest>& requests);

  /// Blocking pop from a GPU's queue; nullopt once closed and drained.
  std::optional<LoadRequest> pop(GpuId gpu);
  std::optional<LoadRequest> try_pop(GpuId gpu);

  /// Non-blocking bulk pop under one queue lock; appends up to `max_count`
  /// requests to `out` and returns how many were taken.
  std::size_t try_pop_batch(GpuId gpu, std::vector<LoadRequest>& out, std::size_t max_count);

  /// Pending request count of one queue (the §4.2 proportional signal).
  std::size_t depth(GpuId gpu) const;
  std::vector<std::size_t> depths() const;

  void close_all();

 private:
  MpmcQueue<LoadRequest>& queue(GpuId gpu);
  const MpmcQueue<LoadRequest>& queue(GpuId gpu) const;

  std::vector<std::unique_ptr<MpmcQueue<LoadRequest>>> queues_;
};

}  // namespace lobster::runtime
