#include "telemetry/trace_buffer.hpp"

namespace lobster::telemetry {

const char* category_name(Category category) noexcept {
  switch (category) {
    case Category::kCommon: return "common";
    case Category::kSim: return "sim";
    case Category::kStorage: return "storage";
    case Category::kCache: return "cache";
    case Category::kPrefetch: return "prefetch";
    case Category::kPipeline: return "pipeline";
    case Category::kQueue: return "queue";
    case Category::kPool: return "pool";
    case Category::kExecutor: return "executor";
    case Category::kRuntime: return "runtime";
    case Category::kBench: return "bench";
    case Category::kTest: return "test";
    case Category::kCategoryCount: break;
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

void TraceBuffer::snapshot(std::vector<TraceEvent>& out) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t n = head < cap ? head : cap;
  out.reserve(out.size() + static_cast<std::size_t>(n));
  for (std::uint64_t i = head - n; i < head; ++i) {
    out.push_back(slots_[static_cast<std::size_t>(i & mask_)]);
  }
}

}  // namespace lobster::telemetry
