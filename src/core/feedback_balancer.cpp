#include "core/feedback_balancer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "telemetry/registry.hpp"

namespace lobster::core {

namespace {

/// Largest-remainder apportionment of `total` over `weights`. Floors are
/// guarantees, not head starts: the whole total is split proportionally and
/// devices below their floor are then topped up from the most over-floor
/// device, so a floor never skews the proportional shares of everyone else.
/// Assumes sum(floors) <= total.
std::vector<std::uint32_t> apportion_with_floors(const std::vector<double>& weights,
                                                 std::uint32_t total,
                                                 const std::vector<std::uint32_t>& floors) {
  const std::size_t n = weights.size();
  double weight_sum = 0.0;
  for (const double w : weights) weight_sum += w;

  std::vector<std::uint32_t> assigned(n, 0);
  std::vector<double> fractional(n, 0.0);
  std::uint32_t handed = 0;
  for (std::size_t d = 0; d < n; ++d) {
    const double share = weight_sum > 0.0 ? weights[d] / weight_sum
                                          : 1.0 / static_cast<double>(n);
    const double ideal = share * total;
    const auto base = static_cast<std::uint32_t>(ideal);
    assigned[d] = base;
    handed += base;
    fractional[d] = ideal - base;
  }
  std::vector<std::size_t> order(n);
  for (std::size_t d = 0; d < n; ++d) order[d] = d;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return fractional[a] > fractional[b]; });
  for (std::size_t k = 0; handed < total; ++k) {
    ++assigned[order[k % n]];
    ++handed;
  }

  // Raise any device still below its guarantee, taking from whoever sits
  // furthest above their own floor.
  for (std::size_t d = 0; d < n; ++d) {
    while (assigned[d] < floors[d]) {
      std::size_t donor = n;
      std::int64_t surplus = 0;
      for (std::size_t k = 0; k < n; ++k) {
        const std::int64_t over =
            static_cast<std::int64_t>(assigned[k]) - static_cast<std::int64_t>(floors[k]);
        if (over > surplus) {
          surplus = over;
          donor = k;
        }
      }
      if (donor == n) break;  // sum(floors) > total; leave as is
      --assigned[donor];
      ++assigned[d];
    }
  }
  return assigned;
}

}  // namespace

FeedbackBalancer::FeedbackBalancer(LoadBalanceConfig knobs, BalancerOptions options)
    : knobs_(std::move(knobs)), options_(options) {
  if (const Status status = knobs_.validate(); !status.ok()) {
    throw std::invalid_argument("FeedbackBalancer: " + status.to_string());
  }
  if (knobs_.world_size == 0 || knobs_.batch_size == 0) {
    throw std::invalid_argument("FeedbackBalancer: world_size and batch_size are required");
  }
  if (options_.gpus_per_node == 0 || knobs_.world_size % options_.gpus_per_node != 0) {
    throw std::invalid_argument("FeedbackBalancer: world_size must be a multiple of gpus_per_node");
  }
  if (options_.max_quota_step == 0) {
    throw std::invalid_argument("FeedbackBalancer: max_quota_step must be >= 1");
  }
  if (static_cast<std::uint64_t>(options_.min_quota) * knobs_.world_size > knobs_.batch_size) {
    throw std::invalid_argument("FeedbackBalancer: min_quota floors exceed batch_size");
  }
  const std::size_t world = knobs_.world_size;
  rates_.assign(world, metrics::ThroughputWindow(options_.ewma_alpha, options_.rate_window));
  down_.assign(world, false);
  if (knobs_.batch_quotas.empty()) {
    quotas_ = apportion_with_floors(std::vector<double>(world, 1.0), knobs_.batch_size,
                                    std::vector<std::uint32_t>(world, options_.min_quota));
  } else {
    quotas_ = knobs_.batch_quotas;
  }
  node_slow_.assign(world / options_.gpus_per_node, false);
}

void FeedbackBalancer::observe(const IterationFeedback& feedback) {
  const std::scoped_lock lock(mutex_);
  for (const DeviceFeedback& device : feedback.devices) {
    if (device.device >= rates_.size()) continue;
    rates_[device.device].record(device.delivered, device.busy_s);
  }
  if (!feedback.devices.empty()) ++observed_iters_;
}

std::vector<double> FeedbackBalancer::weights_locked() const {
  const std::size_t world = rates_.size();
  // A live device with no history yet inherits the mean observed rate so it
  // is neither starved nor favoured before its first measurement.
  double sum = 0.0;
  std::size_t seen = 0;
  for (std::size_t d = 0; d < world; ++d) {
    if (!down_[d] && rates_[d].observations() > 0) {
      sum += rates_[d].ewma_rate();
      ++seen;
    }
  }
  const double fallback = seen > 0 ? sum / static_cast<double>(seen) : 1.0;
  std::vector<double> raw(world, 0.0);
  double total = 0.0;
  for (std::size_t d = 0; d < world; ++d) {
    if (down_[d]) continue;
    raw[d] = rates_[d].observations() > 0 ? rates_[d].ewma_rate() : fallback;
    total += raw[d];
  }
  if (total > 0.0) {
    for (double& w : raw) w /= total;
  }
  return raw;
}

void FeedbackBalancer::update_slow_nodes_locked(const std::vector<double>& weights) {
  const std::uint32_t gpus = options_.gpus_per_node;
  const std::size_t nodes = node_slow_.size();
  const double fair_share = 1.0 / static_cast<double>(nodes);
  std::size_t slow_count = 0;
  for (std::size_t node = 0; node < nodes; ++node) {
    double share = 0.0;
    bool any_up = false;
    for (std::uint32_t g = 0; g < gpus; ++g) {
      share += weights[node * gpus + g];
      any_up = any_up || !down_[node * gpus + g];
    }
    const bool slow = any_up && share < options_.slow_node_factor * fair_share;
    if (slow && !node_slow_[node]) {
      ++slow_node_events_;
      telemetry::MetricRegistry::instance().counter("balancer.slow_node_detected").add(1);
    }
    node_slow_[node] = slow;
    if (slow) ++slow_count;
  }
  telemetry::MetricRegistry::instance().gauge("balancer.slow_nodes").set(
      static_cast<double>(slow_count));
}

std::vector<std::uint32_t> FeedbackBalancer::thread_split_locked(
    const std::vector<std::uint32_t>& quotas) const {
  const std::uint32_t gpus = options_.gpus_per_node;
  std::vector<std::uint32_t> threads(quotas.size(), 0);
  for (std::size_t node = 0; node < node_slow_.size(); ++node) {
    std::vector<double> node_weights(gpus, 0.0);
    for (std::uint32_t g = 0; g < gpus; ++g) {
      node_weights[g] = static_cast<double>(quotas[node * gpus + g]);
    }
    const auto split = apportion_with_floors(
        node_weights, knobs_.total_load_threads,
        std::vector<std::uint32_t>(gpus, knobs_.min_threads_per_gpu));
    for (std::uint32_t g = 0; g < gpus; ++g) threads[node * gpus + g] = split[g];
  }
  return threads;
}

void FeedbackBalancer::publish_locked() const {
  auto& registry = telemetry::MetricRegistry::instance();
  for (std::size_t d = 0; d < quotas_.size(); ++d) {
    registry.gauge("balancer.device/" + std::to_string(d) + "/quota")
        .set(static_cast<double>(quotas_[d]));
  }
}

RebalancePlan FeedbackBalancer::plan(IterId iter) {
  const std::scoped_lock lock(mutex_);
  const std::size_t world = quotas_.size();
  RebalancePlan result;
  result.iter = iter;
  result.weights = weights_locked();

  QuotaTraceEntry entry;
  entry.iter = iter;

  const bool warm = observed_iters_ >= options_.warmup_iters;
  bool down_holds_quota = false;
  for (std::size_t d = 0; d < world; ++d) {
    down_holds_quota = down_holds_quota || (down_[d] && quotas_[d] > 0);
  }

  if (!warm && !down_holds_quota) {
    entry.quotas = quotas_;
    trace_.push_back(entry);
    result.active = false;
    result.batch_quotas = quotas_;
    result.load_threads = thread_split_locked(quotas_);
    return result;
  }

  update_slow_nodes_locked(result.weights);

  // Hysteresis: stand pat while every live device's weight is within the
  // deadband of the weights behind the current split, the split has fully
  // reached the apportionment those weights implied (a damped step must keep
  // walking toward its target on later iterations, not freeze mid-step), and
  // no dead device still holds quota.
  bool within_band = !applied_weights_.empty() && quotas_ == applied_targets_ &&
                     !down_holds_quota;
  if (within_band) {
    for (std::size_t d = 0; d < world && within_band; ++d) {
      if (down_[d]) continue;
      const double ref = std::max(applied_weights_[d], 1e-9);
      within_band = std::abs(result.weights[d] - applied_weights_[d]) / ref < options_.hysteresis;
    }
  }
  if (within_band) {
    entry.quotas = quotas_;
    trace_.push_back(entry);
    result.active = true;
    result.batch_quotas = quotas_;
    result.load_threads = thread_split_locked(quotas_);
    return result;
  }

  std::vector<std::uint32_t> floors(world, options_.min_quota);
  for (std::size_t d = 0; d < world; ++d) {
    if (down_[d]) floors[d] = 0;
  }
  const auto targets = apportion_with_floors(result.weights, knobs_.batch_size, floors);

  // Damping: step each quota toward its target by at most max_quota_step —
  // except dead devices, which drop to zero immediately.
  std::vector<std::uint32_t> next(world, 0);
  for (std::size_t d = 0; d < world; ++d) {
    if (down_[d]) {
      next[d] = 0;
      continue;
    }
    const auto target = static_cast<std::int64_t>(targets[d]);
    const auto current = static_cast<std::int64_t>(quotas_[d]);
    const auto step = static_cast<std::int64_t>(options_.max_quota_step);
    next[d] = static_cast<std::uint32_t>(
        current + std::clamp(target - current, -step, step));
  }

  // Repair: the clamp (and dead-device zeroing) can leave the sum off the
  // batch size; hand the residual to the live devices furthest from target.
  std::int64_t diff = static_cast<std::int64_t>(knobs_.batch_size);
  for (const std::uint32_t q : next) diff -= q;
  while (diff != 0) {
    std::size_t pick = world;
    std::int64_t best_gap = std::numeric_limits<std::int64_t>::min();
    for (std::size_t d = 0; d < world; ++d) {
      if (down_[d]) continue;
      const std::int64_t gap = static_cast<std::int64_t>(targets[d]) - next[d];
      if (diff > 0) {
        if (gap > best_gap) { best_gap = gap; pick = d; }
      } else {
        if (next[d] <= floors[d]) continue;
        if (-gap > best_gap) { best_gap = -gap; pick = d; }
      }
    }
    if (pick == world) break;  // every live device at its floor
    next[pick] += diff > 0 ? 1 : -1;
    diff += diff > 0 ? -1 : 1;
  }

  std::uint64_t moved = 0;
  for (std::size_t d = 0; d < world; ++d) {
    moved += next[d] > quotas_[d] ? next[d] - quotas_[d] : quotas_[d] - next[d];
  }
  moved /= 2;  // each moved sample leaves one device and lands on another

  if (moved > 0) {
    ++rebalances_;
    quota_moves_ += moved;
    auto& registry = telemetry::MetricRegistry::instance();
    registry.counter("balancer.rebalances").add(1);
    registry.counter("balancer.quota_moves").add(moved);
    quotas_ = next;
  }
  applied_weights_ = result.weights;
  applied_targets_ = targets;
  publish_locked();

  entry.rebalanced = moved > 0;
  entry.quota_moves = static_cast<std::uint32_t>(moved);
  entry.quotas = quotas_;
  trace_.push_back(entry);

  result.active = true;
  result.batch_quotas = quotas_;
  result.load_threads = thread_split_locked(quotas_);
  return result;
}

void FeedbackBalancer::set_device_down(std::uint32_t device, bool down) {
  const std::scoped_lock lock(mutex_);
  if (device >= down_.size()) return;
  down_[device] = down;
  if (down) rates_[device].reset();
}

void FeedbackBalancer::set_node_down(std::uint32_t node, bool down) {
  const std::scoped_lock lock(mutex_);
  const std::uint32_t gpus = options_.gpus_per_node;
  for (std::uint32_t g = 0; g < gpus; ++g) {
    const std::size_t d = static_cast<std::size_t>(node) * gpus + g;
    if (d >= down_.size()) return;
    down_[d] = down;
    if (down) rates_[d].reset();
  }
}

std::vector<double> FeedbackBalancer::weights() const {
  const std::scoped_lock lock(mutex_);
  return weights_locked();
}

std::vector<std::uint32_t> FeedbackBalancer::current_quotas() const {
  const std::scoped_lock lock(mutex_);
  return quotas_;
}

std::vector<std::uint32_t> FeedbackBalancer::slow_nodes() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::uint32_t> nodes;
  for (std::size_t node = 0; node < node_slow_.size(); ++node) {
    if (node_slow_[node]) nodes.push_back(static_cast<std::uint32_t>(node));
  }
  return nodes;
}

std::vector<FeedbackBalancer::QuotaTraceEntry> FeedbackBalancer::quota_trace() const {
  const std::scoped_lock lock(mutex_);
  return trace_;
}

std::uint64_t FeedbackBalancer::rebalances() const {
  const std::scoped_lock lock(mutex_);
  return rebalances_;
}

std::uint64_t FeedbackBalancer::quota_moves() const {
  const std::scoped_lock lock(mutex_);
  return quota_moves_;
}

std::uint64_t FeedbackBalancer::slow_node_events() const {
  const std::scoped_lock lock(mutex_);
  return slow_node_events_;
}

FeedbackBalancer::State FeedbackBalancer::export_state() const {
  const std::scoped_lock lock(mutex_);
  State state;
  state.devices.reserve(rates_.size());
  for (std::size_t d = 0; d < rates_.size(); ++d) {
    state.devices.push_back(
        {rates_[d].ewma_rate(), rates_[d].observations(), static_cast<bool>(down_[d])});
  }
  state.quotas = quotas_;
  state.applied_weights = applied_weights_;
  state.applied_targets = applied_targets_;
  state.observed_iters = observed_iters_;
  return state;
}

void FeedbackBalancer::restore_state(const State& state) {
  const std::scoped_lock lock(mutex_);
  if (state.devices.size() != rates_.size()) {
    throw std::invalid_argument(
        "FeedbackBalancer::restore_state: device count mismatch (resize the "
        "checkpoint through export/restore at the new shape instead)");
  }
  for (std::size_t d = 0; d < rates_.size(); ++d) {
    rates_[d].restore_rate(state.devices[d].ewma,
                           static_cast<std::size_t>(state.devices[d].observations));
    down_[d] = state.devices[d].down;
  }
  if (state.quotas.size() == quotas_.size()) quotas_ = state.quotas;
  applied_weights_ = state.applied_weights;
  applied_targets_ = state.applied_targets;
  observed_iters_ = state.observed_iters;
}

// --- RebalanceBarrier ---

RebalanceBarrier::RebalanceBarrier(FeedbackBalancer& balancer, std::uint32_t nodes)
    : balancer_(balancer), nodes_(nodes), down_(nodes, false) {
  if (nodes == 0) throw std::invalid_argument("RebalanceBarrier: nodes must be >= 1");
}

bool RebalanceBarrier::round_complete_locked(const Round& round) const {
  for (std::uint32_t node = 0; node < nodes_; ++node) {
    if (!down_[node] && !round.arrived[node]) return false;
  }
  return true;
}

void RebalanceBarrier::finish_round_locked(IterId iter, Round& round) {
  if (!round.merged.devices.empty()) balancer_.observe(round.merged);
  round.plan = balancer_.plan(iter);
  round.done = true;
  round.pending_pickups = 0;
  for (std::uint32_t node = 0; node < nodes_; ++node) {
    if (round.arrived[node]) ++round.pending_pickups;
  }
}

RebalancePlan RebalanceBarrier::exchange(IterId iter, std::uint32_t node,
                                         const IterationFeedback& feedback) {
  std::unique_lock lock(mutex_);
  if (node >= nodes_ || down_[node]) {
    // A dead node must not extend the round; give it a passive snapshot.
    RebalancePlan plan;
    plan.iter = iter;
    plan.batch_quotas = balancer_.current_quotas();
    return plan;
  }
  Round& round = rounds_[iter];
  if (round.arrived.empty()) round.arrived.assign(nodes_, false);
  if (!round.arrived[node]) {
    round.arrived[node] = true;
    round.merged.iter = feedback.iter;
    round.merged.devices.insert(round.merged.devices.end(), feedback.devices.begin(),
                                feedback.devices.end());
  }
  if (!round.done && round_complete_locked(round)) {
    finish_round_locked(iter, round);
    cv_.notify_all();
  }
  cv_.wait(lock, [&] {
    const auto it = rounds_.find(iter);
    return it == rounds_.end() || it->second.done;
  });
  const auto it = rounds_.find(iter);
  if (it == rounds_.end()) {
    // Round already reaped (we were marked down while waiting).
    RebalancePlan plan;
    plan.iter = iter;
    plan.batch_quotas = balancer_.current_quotas();
    return plan;
  }
  RebalancePlan plan = it->second.plan;
  if (it->second.pending_pickups > 0 && --it->second.pending_pickups == 0) {
    rounds_.erase(it);
  }
  return plan;
}

void RebalanceBarrier::set_node_down(std::uint32_t node) {
  const std::scoped_lock lock(mutex_);
  if (node >= nodes_ || down_[node]) return;
  down_[node] = true;
  balancer_.set_node_down(node, true);
  for (auto& [iter, round] : rounds_) {
    if (!round.done && round_complete_locked(round)) finish_round_locked(iter, round);
  }
  cv_.notify_all();
}

}  // namespace lobster::core
