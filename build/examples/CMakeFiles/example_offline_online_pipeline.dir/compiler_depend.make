# Empty compiler generated dependencies file for example_offline_online_pipeline.
# This may be replaced when dependencies are built.
