// Shared helpers for the figure-reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "common/strfmt.hpp"
#include "common/table.hpp"
#include "pipeline/simulator.hpp"
#include "telemetry/analysis/json.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/events.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

namespace lobster::bench {

/// Schema identifiers for every machine-readable artifact the benches
/// write. CI and tools/validate_metrics.py match on these exact strings,
/// so they are defined once here instead of scattered as literals.
inline constexpr const char* kBenchMetricsSchema = "lobster.bench_metrics.v1";
inline constexpr const char* kClusterMetricsSchema = "lobster.cluster_metrics.v1";

/// Parses key=value CLI arguments. Every bench accepts `csv_dir=<path>` to
/// additionally dump each printed table as CSV, `--trace <out.json>`
/// (or `trace=out.json`) to record a Chrome trace of the run (see
/// TraceSession), `--metrics-json <out.json>` (or `metrics_json=...`) for a
/// structured result record (see MetricsJson), and `heartbeat=<ms>` /
/// `heartbeat_jsonl=<path>` for the live monitor.
inline Config parse_args(int argc, char** argv) {
  // `--trace out.json` / `--metrics-json out.json` are the space-separated
  // flags benches accept; fold them into key=value form before the strict
  // '='-only parser sees them.
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value =
        i + 1 < argc && std::string_view(argv[i + 1]).find('=') == std::string_view::npos;
    if (arg == "--trace" && has_value) {
      tokens.push_back(std::string("trace=") + argv[++i]);
      continue;
    }
    if (arg == "--metrics-json" && has_value) {
      tokens.push_back(std::string("metrics_json=") + argv[++i]);
      continue;
    }
    tokens.emplace_back(arg);
  }
  return Config::from_tokens(tokens);
}

/// Turns tracing on for the bench's lifetime when `--trace <out.json>`
/// and/or a heartbeat was requested; on destruction stops the monitor and
/// exports the Chrome trace plus a `<out.json>.counters.csv` metric dump.
///
/// Options: `trace_buffer=<records>` sizes the per-thread ring buffers
/// (default 1<<14); `heartbeat=<ms>` starts the live monitor on that
/// interval; `heartbeat_jsonl=<path>` adds its JSONL sink;
/// `heartbeat_gap_threshold=<frac>` tunes the straggler flag (default 0.1).
///
/// Causal-tracing options (DESIGN.md §11): `spans=<path>` arms the span log
/// and writes the cross-node span trees as `lobster.spans.v1` JSONL on
/// destruction; `events=<path>` arms the structured event log streaming
/// `lobster.events.v1` JSONL; `incident_dir=<dir>` creates a FlightRecorder
/// fed by the monitor's heartbeats (anomaly flags trigger bundle dumps into
/// `<dir>/incident-NNN/`); `incident_force=1` force-triggers one bundle at
/// shutdown when the run raised no anomaly, so CI always has an artifact to
/// validate.
class TraceSession {
 public:
  explicit TraceSession(const Config& config) : path_(config.get_string("trace", "")) {
    const auto capacity = config.get_int("trace_buffer", 0);
    const auto heartbeat_ms = config.get_int("heartbeat", 0);
    const std::string heartbeat_jsonl = config.get_string("heartbeat_jsonl", "");
    const double gap_threshold = config.get_double("heartbeat_gap_threshold", 0.10);
    spans_path_ = config.get_string("spans", "");
    events_path_ = config.get_string("events", "");
    const std::string incident_dir = config.get_string("incident_dir", "");
    incident_force_ = config.get_int("incident_force", 0) != 0;
    const bool causal_wanted =
        !spans_path_.empty() || !events_path_.empty() || !incident_dir.empty();
    // An incident bundle needs heartbeats to be useful, so an incident_dir
    // implies the monitor even without an explicit heartbeat= option.
    const bool monitor_wanted =
        heartbeat_ms > 0 || !heartbeat_jsonl.empty() || !incident_dir.empty();
    if (path_.empty() && !monitor_wanted && !causal_wanted) return;

    // A trace request arms full event recording; a heartbeat-only request
    // arms just the LOBSTER_METRIC_* aggregates (metrics-only mode), which
    // keeps the monitor's overhead to atomic counter updates.
    auto& tracer = telemetry::Tracer::instance();
    if (capacity > 0) tracer.set_buffer_capacity(static_cast<std::size_t>(capacity));
    if (!path_.empty()) {
      tracer.set_enabled(true);
    } else {
      tracer.set_metrics_enabled(true);
    }
    enabled_ = true;
#if defined(LOBSTER_TELEMETRY_DISABLED)
    std::fprintf(stderr,
                 "warning: --trace/heartbeat given but built with LOBSTER_TELEMETRY=OFF; "
                 "only directly-instrumented events will be recorded\n");
#endif
    if (causal_wanted) {
      // Spans and events always arm together: events carry the trace id of
      // the span active when they fired, and an incident bundle snapshots
      // both rings.
      telemetry::SpanLog::instance().set_enabled(true);
      auto& events = telemetry::EventLog::instance();
      events.set_enabled(true);
      if (!events_path_.empty() && !events.open_stream(events_path_)) {
        std::fprintf(stderr, "warning: cannot open event sink %s\n", events_path_.c_str());
        events_path_.clear();
      }
      events_open_ = !events_path_.empty();
    }
    if (!incident_dir.empty()) {
      telemetry::FlightRecorderConfig recorder_config;
      recorder_config.out_dir = incident_dir;
      recorder_ = std::make_unique<telemetry::FlightRecorder>(recorder_config);
    }
    if (monitor_wanted) {
      telemetry::MonitorConfig monitor_config;
      monitor_config.interval =
          std::chrono::milliseconds(heartbeat_ms > 0 ? heartbeat_ms : 1000);
      monitor_config.jsonl_path = heartbeat_jsonl;
      monitor_config.straggler_gap_threshold = gap_threshold;
      monitor_config.recorder = recorder_.get();
      monitor_ = std::make_unique<telemetry::Monitor>(monitor_config);
      monitor_->start();
    }
  }

  /// The recorder wired into the monitor, or nullptr. Benches hook extra
  /// triggers (watchdog stalls) into it.
  telemetry::FlightRecorder* flight_recorder() noexcept { return recorder_.get(); }

  ~TraceSession() {
    if (!enabled_) return;
    if (monitor_ != nullptr) monitor_->stop();  // final heartbeat while live
    if (recorder_ != nullptr && incident_force_ && recorder_->bundles_written() == 0) {
      recorder_->trigger("forced_at_shutdown");
    }
    auto& tracer = telemetry::Tracer::instance();
    tracer.set_enabled(false);
    tracer.set_metrics_enabled(false);
    if (!spans_path_.empty()) {
      if (telemetry::SpanLog::instance().write_jsonl_file(spans_path_)) {
        std::printf("(spans written to %s)\n", spans_path_.c_str());
      } else {
        std::fprintf(stderr, "warning: cannot write spans %s\n", spans_path_.c_str());
      }
    }
    telemetry::SpanLog::instance().set_enabled(false);
    if (events_open_) {
      telemetry::EventLog::instance().close_stream();
      std::printf("(events written to %s)\n", events_path_.c_str());
    }
    telemetry::EventLog::instance().set_enabled(false);
    if (path_.empty()) return;
    if (telemetry::write_chrome_trace_file(path_)) {
      std::printf("(trace written to %s — load in chrome://tracing or ui.perfetto.dev)\n",
                  path_.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write trace %s\n", path_.c_str());
    }
    const std::string counters_path = path_ + ".counters.csv";
    if (telemetry::MetricRegistry::instance().write_csv_file(counters_path)) {
      std::printf("(counters written to %s)\n", counters_path.c_str());
    }
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string path_;
  std::string spans_path_;
  std::string events_path_;
  bool events_open_ = false;
  bool incident_force_ = false;
  bool enabled_ = false;
  std::unique_ptr<telemetry::FlightRecorder> recorder_;
  std::unique_ptr<telemetry::Monitor> monitor_;
};

/// One comparison row for the structured metrics artifact.
struct MetricsRecord {
  std::string panel;     ///< e.g. "fig07a"
  std::string workload;  ///< e.g. "imagenet1k scale=64"
  std::string strategy;  ///< e.g. "lobster"
  double warm_epoch_time_s = 0.0;
  double speedup_vs_baseline = 1.0;
  double hit_ratio = 0.0;
  double imbalanced_fraction = 0.0;
  double gpu_utilization = 0.0;
  double samples_per_s = 0.0;
};

/// Fills a MetricsRecord from a simulation result, using the same
/// aggregates as metrics::comparison_table (warm-epoch timing, hit ratio,
/// imbalanced fraction, GPU utilisation, samples/s).
inline MetricsRecord make_record(std::string panel, std::string workload, std::string strategy,
                                 const pipeline::SimulationResult& result,
                                 double baseline_warm_time_s,
                                 std::uint32_t warmup_epochs = 1) {
  MetricsRecord record;
  record.panel = std::move(panel);
  record.workload = std::move(workload);
  record.strategy = std::move(strategy);
  record.warm_epoch_time_s = result.metrics.time_after_epoch(warmup_epochs);
  record.speedup_vs_baseline =
      record.warm_epoch_time_s > 0.0 ? baseline_warm_time_s / record.warm_epoch_time_s : 0.0;
  record.hit_ratio = result.metrics.hit_ratio();
  record.imbalanced_fraction = result.metrics.imbalanced_fraction();
  record.gpu_utilization = result.metrics.gpu_utilization();
  record.samples_per_s = result.samples_per_second;
  return record;
}

/// Collects bench results and writes one schema-versioned JSON document
/// (kBenchMetricsSchema unless overridden) on destruction when
/// `--metrics-json <path>` was given; inert otherwise. CI jobs diff these
/// instead of scraping stdout tables.
class MetricsJson {
 public:
  MetricsJson(const Config& config, std::string bench_name,
              std::string schema = kBenchMetricsSchema)
      : path_(config.get_string("metrics_json", "")),
        bench_(std::move(bench_name)),
        schema_(std::move(schema)) {}

  bool enabled() const noexcept { return !path_.empty(); }

  void add(const MetricsRecord& record) {
    if (enabled()) records_.push_back(record);
  }
  /// Free-form top-level scalar (wall time, monitor overhead, ...).
  void set_scalar(const std::string& key, double value) {
    if (enabled()) scalars_.emplace_back(key, value);
  }

  ~MetricsJson() {
    if (!enabled()) return;
    namespace aj = telemetry::analysis;
    std::string out;
    out.reserve(1024);
    out += "{\n  ";
    aj::append_json_quoted(out, "schema");
    out += ": ";
    aj::append_json_quoted(out, schema_);
    out += ",\n  ";
    aj::append_json_quoted(out, "bench");
    out += ": ";
    aj::append_json_quoted(out, bench_);
    for (const auto& [key, value] : scalars_) {
      out += ",\n  ";
      aj::append_json_quoted(out, key);
      out += strf(": %.9g", value);
    }
    out += ",\n  ";
    aj::append_json_quoted(out, "records");
    out += ": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const MetricsRecord& r = records_[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {";
      auto field = [&out](const char* key, bool first = false) {
        if (!first) out += ", ";
        aj::append_json_quoted(out, key);
        out += ": ";
      };
      field("panel", true);
      aj::append_json_quoted(out, r.panel);
      field("workload");
      aj::append_json_quoted(out, r.workload);
      field("strategy");
      aj::append_json_quoted(out, r.strategy);
      field("warm_epoch_time_s");
      out += strf("%.9g", r.warm_epoch_time_s);
      field("speedup_vs_baseline");
      out += strf("%.9g", r.speedup_vs_baseline);
      field("hit_ratio");
      out += strf("%.9g", r.hit_ratio);
      field("imbalanced_fraction");
      out += strf("%.9g", r.imbalanced_fraction);
      field("gpu_utilization");
      out += strf("%.9g", r.gpu_utilization);
      field("samples_per_s");
      out += strf("%.9g", r.samples_per_s);
      out += '}';
    }
    out += records_.empty() ? "]\n}\n" : "\n  ]\n}\n";
    std::ofstream file(path_);
    if (!file) {
      std::fprintf(stderr, "warning: cannot write metrics json %s\n", path_.c_str());
      return;
    }
    file << out;
    std::printf("(metrics json written to %s)\n", path_.c_str());
  }

  MetricsJson(const MetricsJson&) = delete;
  MetricsJson& operator=(const MetricsJson&) = delete;

 private:
  std::string path_;
  std::string bench_;
  std::string schema_;
  std::vector<MetricsRecord> records_;
  std::vector<std::pair<std::string, double>> scalars_;
};

inline void print_header(const std::string& title, const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

/// Prints the table and, when `csv_dir` is configured, also writes
/// `<csv_dir>/<name>.csv`.
inline void emit(const Config& config, const std::string& name, const Table& table) {
  std::printf("%s\n", table.render_text().c_str());
  const std::string csv_dir = config.get_string("csv_dir", "");
  if (csv_dir.empty()) return;
  std::filesystem::create_directories(csv_dir);
  const std::string path = csv_dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << table.render_csv();
  std::printf("(csv written to %s)\n\n", path.c_str());
}

inline void warn_unconsumed(const Config& config) {
  (void)config.get_string("csv_dir", "");  // always legal
  for (const auto& key : config.unconsumed()) {
    std::fprintf(stderr, "warning: unknown option '%s'\n", key.c_str());
  }
}

}  // namespace lobster::bench
