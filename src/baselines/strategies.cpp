#include "baselines/strategies.hpp"

#include <stdexcept>

namespace lobster::baselines {

LoaderStrategy LoaderStrategy::pytorch() {
  LoaderStrategy s;
  s.name = "pytorch";
  s.thread_policy = ThreadPolicy::kFixed;
  // "a constant number of threads for data loading and another constant
  // number of threads for preprocessing": 2 loader workers per GPU is the
  // common DataLoader deployment on 8-GPU nodes.
  s.fixed_load_threads = 16;
  s.fixed_preproc_threads = 0;  // remainder
  s.per_gpu_queues = false;
  s.eviction_policy = "lru";  // OS page cache behaviour
  s.distributed_cache = false;
  // DataLoader workers prefetch prefetch_factor (default 2) batches ahead,
  // but only within their own shard and with shallow depth.
  s.prefetching = true;
  s.prefetch_lookahead = 1;
  s.staging_efficiency = 0.50;
  return s;
}

LoaderStrategy LoaderStrategy::dali() {
  LoaderStrategy s;
  s.name = "dali";
  s.thread_policy = ThreadPolicy::kFixed;
  // "DALI uses three threads for data loading by default and leaves other
  // threads for preprocessing."
  s.fixed_load_threads = 3;
  s.fixed_preproc_threads = 0;
  s.per_gpu_queues = false;
  s.eviction_policy = "lru";
  s.distributed_cache = false;
  // DALI pipelines a few batches ahead (queue_depth), giving it a deeper
  // read-ahead than the stock DataLoader.
  s.prefetching = true;
  s.prefetch_lookahead = 3;
  s.staging_efficiency = 0.65;
  return s;
}

LoaderStrategy LoaderStrategy::nopfs() {
  LoaderStrategy s;
  s.name = "nopfs";
  // "The thread management for NoPFS is the same as that with PyTorch I/O."
  s.thread_policy = ThreadPolicy::kFixed;
  s.fixed_load_threads = 16;
  s.fixed_preproc_threads = 0;
  s.per_gpu_queues = false;
  // Clairvoyant prefetching over the full storage hierarchy with a
  // distributed cache, but displacement-style eviction: prefetched-later
  // samples may push out sooner-needed residents.
  s.eviction_policy = "lru";
  s.distributed_cache = true;
  s.prefetching = true;
  s.prefetch_lookahead = 8;
  s.staging_efficiency = 1.0;
  return s;
}

LoaderStrategy LoaderStrategy::lobster() {
  LoaderStrategy s;
  s.name = "lobster";
  s.thread_policy = ThreadPolicy::kLobster;
  s.per_gpu_queues = true;
  s.eviction_policy = "lobster";
  s.distributed_cache = true;
  s.prefetching = true;
  s.prefetch_lookahead = 8;
  s.reuse_sweep = true;
  s.numa_aware = true;
  return s;
}

LoaderStrategy LoaderStrategy::lobster_th() {
  LoaderStrategy s = lobster();
  s.name = "lobster_th";
  s.eviction_policy = "lru";
  s.reuse_sweep = false;
  return s;
}

LoaderStrategy LoaderStrategy::lobster_evict() {
  LoaderStrategy s = lobster();
  s.name = "lobster_evict";
  s.thread_policy = ThreadPolicy::kFixed;
  s.fixed_load_threads = 3;  // DALI-style split
  s.fixed_preproc_threads = 0;
  s.per_gpu_queues = false;
  // The staging machinery is DALI's; only the eviction policy changes.
  s.staging_efficiency = dali().staging_efficiency;
  return s;
}

LoaderStrategy LoaderStrategy::lobster_prop() {
  LoaderStrategy s = lobster();
  s.name = "lobster_prop";
  s.thread_policy = ThreadPolicy::kProportional;
  return s;
}

LoaderStrategy LoaderStrategy::by_name(const std::string& name) {
  if (name == "pytorch") return pytorch();
  if (name == "dali") return dali();
  if (name == "nopfs") return nopfs();
  if (name == "lobster") return lobster();
  if (name == "lobster_th") return lobster_th();
  if (name == "lobster_evict") return lobster_evict();
  if (name == "lobster_prop") return lobster_prop();
  throw std::invalid_argument("LoaderStrategy: unknown strategy '" + name + "'");
}

}  // namespace lobster::baselines
