// Table renderings of RunAnalysis results — the presentation half of the
// analysis library, shared by tools/trace_report and the tests.
//
// Every section is a lobster::Table so one switch renders it as aligned
// text, CSV, or Markdown; the CLI composes sections, this header only
// builds them.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "telemetry/analysis/analyzer.hpp"

namespace lobster::telemetry::analysis {

enum class Format { kText, kCsv, kMarkdown };

/// Parses "table"/"text", "csv", "md"/"markdown"; returns false on others.
bool parse_format(const std::string& name, Format& out);

/// Renders `table` in the requested format.
std::string render_table(const Table& table, Format format);

/// One row per run: iterations, warm time, imbalanced fraction, gap
/// statistics, straggler and DRAM hit ratio — the comparison_table view
/// recovered from a trace.
Table summary_table(const std::vector<RunAnalysis>& runs);

/// Per-node warm-epoch stage breakdown (Fig. 3): mean per-iteration load /
/// preproc / train / idle seconds plus the fetch-tier decomposition of the
/// slowest GPU's load time. Ends with a cluster-total row.
Table breakdown_table(const RunAnalysis& run);

/// Per-epoch gap statistics (Eq. 2-3): mean/max max-min gap, mean gap
/// fraction and imbalanced share for each epoch of the run.
Table gap_table(const RunAnalysis& run);

/// Critical-stage attribution over warm iterations: how often each stage
/// bounded the cluster barrier.
Table attribution_table(const RunAnalysis& run);

/// Windowed tier hit counts and DRAM hit ratio across the run.
Table tier_table(const RunAnalysis& run);

}  // namespace lobster::telemetry::analysis
