#include "core/perf_model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lobster::core {

PerfModel::PerfModel(const storage::StorageModel& storage_model,
                     const PreprocModelPortfolio& preproc, Seconds t_train)
    : storage_(storage_model), preproc_(preproc), t_train_(t_train) {
  if (t_train <= 0.0) throw std::invalid_argument("PerfModel: t_train must be positive");
}

Seconds PerfModel::load_time(const GpuDemand& demand, double threads,
                             const storage::Contention& contention) const {
  return storage_.load_time(demand.bytes, storage::ThreadAlloc::uniform(threads), contention);
}

Seconds PerfModel::preproc_time(const GpuDemand& demand, double preproc_threads) const {
  if (demand.samples == 0) return 0.0;
  return preproc_.predict_batch_time(preproc_threads, demand.bytes.total(), demand.samples);
}

Seconds PerfModel::t_dif(const GpuDemand& demand, double load_threads,
                         double preproc_threads, const storage::Contention& contention) const {
  return load_time(demand, load_threads, contention) +
         preproc_time(demand, preproc_threads) - t_train_;
}

Seconds PerfModel::gpu_iteration_time(const GpuDemand& demand, double load_threads,
                                      double preproc_threads,
                                      const storage::Contention& contention) const {
  const Seconds pipeline = load_time(demand, load_threads, contention) +
                           preproc_time(demand, preproc_threads);
  return std::max(pipeline, t_train_);
}

Seconds PerfModel::node_imbalance(const std::vector<GpuDemand>& demands,
                                  const std::vector<double>& load_threads,
                                  double preproc_threads,
                                  const storage::Contention& contention) const {
  if (demands.size() != load_threads.size() || demands.empty()) {
    throw std::invalid_argument("node_imbalance: mismatched sizes");
  }
  Seconds lo = std::numeric_limits<Seconds>::infinity();
  Seconds hi = 0.0;
  for (std::size_t j = 0; j < demands.size(); ++j) {
    const Seconds t =
        gpu_iteration_time(demands[j], load_threads[j], preproc_threads, contention);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  return hi - lo;
}

}  // namespace lobster::core
