file(REMOVE_RECURSE
  "CMakeFiles/fig06_preproc_threads.dir/fig06_preproc_threads.cpp.o"
  "CMakeFiles/fig06_preproc_threads.dir/fig06_preproc_threads.cpp.o.d"
  "fig06_preproc_threads"
  "fig06_preproc_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_preproc_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
