// Minimal JSON value parser for round-tripping telemetry artifacts.
//
// Just enough of RFC 8259 to read back what this repo writes: the Chrome
// trace exporter's output, the bench `--metrics-json` records and the live
// monitor's heartbeat JSONL lines. Not a general-purpose parser — no
// surrogate-pair decoding (escapes outside the BMP degrade to '?'), and
// numbers are doubles throughout, which is lossless for every quantity the
// exporters emit.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace lobster::telemetry::analysis {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const noexcept { return type == Type::kObject; }
  bool is_array() const noexcept { return type == Type::kArray; }
  bool has(const std::string& key) const { return is_object() && object.contains(key); }
  /// Object member access; throws std::out_of_range when absent.
  const JsonValue& at(const std::string& key) const { return object.at(key); }

  /// Typed getters with fallbacks (for optional fields).
  double number_or(double fallback) const noexcept {
    return type == Type::kNumber ? number : fallback;
  }
  const std::string& string_or(const std::string& fallback) const noexcept {
    return type == Type::kString ? string : fallback;
  }
  double get_number(const std::string& key, double fallback = 0.0) const {
    const auto it = object.find(key);
    return it == object.end() ? fallback : it->second.number_or(fallback);
  }
  std::string get_string(const std::string& key, const std::string& fallback = "") const {
    const auto it = object.find(key);
    return it == object.end() ? fallback : it->second.string_or(fallback);
  }
  bool get_bool(const std::string& key, bool fallback = false) const {
    const auto it = object.find(key);
    return it == object.end() || it->second.type != Type::kBool ? fallback
                                                                : it->second.boolean;
  }
};

/// Parses one JSON document; throws std::runtime_error (with a byte offset)
/// on malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
void append_json_quoted(std::string& out, std::string_view s);

}  // namespace lobster::telemetry::analysis
