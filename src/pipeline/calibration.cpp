#include "pipeline/calibration.hpp"

#include <algorithm>

namespace lobster::pipeline {

namespace {

// The paper dedicates 40 GB of each node's DDR4 to the sample cache
// (§5.1); as a fraction of each dataset that is:
constexpr double kCacheFraction1K = 40.0 / 135.0;    // ~29.6 % of ImageNet-1K
constexpr double kCacheFraction22K = 40.0 / 1300.0;  // ~3.1 % of ImageNet-22K

ExperimentPreset base_preset(std::string id, data::DatasetSpec dataset, double cache_fraction,
                             std::uint16_t nodes, const std::string& model) {
  ExperimentPreset preset;
  preset.id = std::move(id);
  preset.dataset = std::move(dataset);
  preset.model = model;
  preset.cluster.nodes = nodes;
  preset.cluster.gpus_per_node = 8;
  preset.cluster.cpu_threads = 128;
  preset.cluster.cache_bytes = scaled_cache_bytes(preset.dataset, preset.seed, cache_fraction);
  return preset;
}

}  // namespace

Bytes scaled_cache_bytes(const data::DatasetSpec& dataset, std::uint64_t seed, double fraction) {
  const data::SampleCatalog catalog(dataset, seed);
  const auto bytes = static_cast<Bytes>(static_cast<double>(catalog.total_bytes()) * fraction);
  // Never below ~4 mean samples, or the cache cannot even stage one batch.
  const auto floor_bytes = static_cast<Bytes>(catalog.mean_bytes() * 4.0);
  return std::max(bytes, floor_bytes);
}

ExperimentPreset preset_imagenet1k_single_node(double scale, const std::string& model) {
  return base_preset("imagenet1k-1node", data::DatasetSpec::imagenet1k(scale), kCacheFraction1K,
                     /*nodes=*/1, model);
}

ExperimentPreset preset_imagenet22k_single_node(double scale, const std::string& model) {
  return base_preset("imagenet22k-1node", data::DatasetSpec::imagenet22k(scale),
                     kCacheFraction22K, /*nodes=*/1, model);
}

ExperimentPreset preset_imagenet22k_multi_node(double scale, std::uint16_t nodes,
                                               const std::string& model) {
  auto preset = base_preset("imagenet22k-multinode", data::DatasetSpec::imagenet22k(scale),
                            kCacheFraction22K, nodes, model);
  preset.id += "-" + std::to_string(nodes);
  return preset;
}

ExperimentPreset preset_imagenet1k_multi_node(double scale, std::uint16_t nodes,
                                              const std::string& model) {
  auto preset = base_preset("imagenet1k-multinode", data::DatasetSpec::imagenet1k(scale),
                            kCacheFraction1K, nodes, model);
  preset.id += "-" + std::to_string(nodes);
  return preset;
}

}  // namespace lobster::pipeline
