#include "cache/kv_store.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "cache/namespace.hpp"
#include "common/rng.hpp"
#include "telemetry/registry.hpp"

namespace lobster::cache {

KvStore::KvStore(std::size_t shards) : shards_(shards), mask_(shards - 1) {
  if (shards == 0 || !std::has_single_bit(shards)) {
    throw std::invalid_argument("KvStore: shard count must be a power of two");
  }
}

KvStore::Shard& KvStore::shard_for(SampleId sample) const {
  // Mix the id so sequential samples spread across shards.
  std::uint64_t state = sample;
  return shards_[splitmix64(state) & mask_];
}

void KvStore::set_capacity(Bytes capacity) {
  capacity_.store(capacity, std::memory_order_relaxed);
}

Bytes KvStore::capacity() const noexcept {
  return capacity_.load(std::memory_order_relaxed);
}

Status KvStore::put(SampleId sample, std::vector<std::byte> payload) {
  return put(sample, std::make_shared<const std::vector<std::byte>>(std::move(payload)));
}

Status KvStore::put(SampleId sample, PayloadPtr payload) {
  if (payload == nullptr) throw std::invalid_argument("KvStore::put: null payload");
  Shard& shard = shard_for(sample);
  const std::scoped_lock lock(shard.mutex);
  const auto existing = shard.entries.find(sample);
  const Bytes old_size = existing == shard.entries.end() ? 0 : existing->second->size();
  const Bytes new_size = payload->size();
  const Bytes cap = capacity_.load(std::memory_order_relaxed);
  if (cap != 0 && new_size > old_size) {
    const Bytes growth = new_size - old_size;
    if (total_bytes_.load(std::memory_order_relaxed) + growth > cap) {
      ++shard.stats.rejected_puts;
      LOBSTER_METRIC_COUNT("kv.rejected_puts", 1);
      return Status::overflow("kv store at capacity");
    }
  }
  shard.bytes += new_size - old_size;
  total_bytes_.fetch_add(new_size, std::memory_order_relaxed);
  total_bytes_.fetch_sub(old_size, std::memory_order_relaxed);
  LOBSTER_METRIC_COUNT("kv.put_bytes", new_size);
  if (existing == shard.entries.end()) {
    shard.entries.emplace(sample, std::move(payload));
  } else {
    existing->second = std::move(payload);
  }
  ++shard.stats.puts;
  LOBSTER_METRIC_COUNT("kv.puts", 1);
  return Status{};
}

Result<KvStore::PayloadPtr> KvStore::get(SampleId sample) const {
  Shard& shard = shard_for(sample);
  const std::scoped_lock lock(shard.mutex);
  const auto it = shard.entries.find(sample);
  if (it == shard.entries.end()) {
    ++shard.stats.get_misses;
    LOBSTER_METRIC_COUNT("kv.get_misses", 1);
    return Status::not_found();  // hot path: no detail string allocation
  }
  ++shard.stats.get_hits;
  LOBSTER_METRIC_COUNT("kv.get_hits", 1);
  return it->second;
}

bool KvStore::contains(SampleId sample) const {
  Shard& shard = shard_for(sample);
  const std::scoped_lock lock(shard.mutex);
  return shard.entries.contains(sample);
}

bool KvStore::erase(SampleId sample) {
  Shard& shard = shard_for(sample);
  const std::scoped_lock lock(shard.mutex);
  const auto it = shard.entries.find(sample);
  if (it == shard.entries.end()) return false;
  shard.bytes -= it->second->size();
  total_bytes_.fetch_sub(it->second->size(), std::memory_order_relaxed);
  shard.entries.erase(it);
  ++shard.stats.erases;
  return true;
}

std::size_t KvStore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

Bytes KvStore::bytes() const {
  Bytes total = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard.mutex);
    total += shard.bytes;
  }
  return total;
}

Bytes KvStore::bytes_in_namespace(std::uint32_t ns) const {
  Bytes total = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard.mutex);
    for (const auto& [key, payload] : shard.entries) {
      if (namespace_of(key) == ns) total += payload->size();
    }
  }
  return total;
}

std::vector<SampleId> KvStore::keys_in_namespace(std::uint32_t ns) const {
  std::vector<SampleId> keys;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard.mutex);
    for (const auto& [key, payload] : shard.entries) {
      if (namespace_of(key) == ns) keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::size_t KvStore::erase_namespace(std::uint32_t ns) {
  std::size_t erased = 0;
  for (auto& shard : shards_) {
    const std::scoped_lock lock(shard.mutex);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (namespace_of(it->first) != ns) {
        ++it;
        continue;
      }
      shard.bytes -= it->second->size();
      total_bytes_.fetch_sub(it->second->size(), std::memory_order_relaxed);
      it = shard.entries.erase(it);
      ++shard.stats.erases;
      ++erased;
    }
  }
  return erased;
}

KvStore::Stats KvStore::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard.mutex);
    total.puts += shard.stats.puts;
    total.get_hits += shard.stats.get_hits;
    total.get_misses += shard.stats.get_misses;
    total.erases += shard.stats.erases;
    total.rejected_puts += shard.stats.rejected_puts;
  }
  return total;
}

}  // namespace lobster::cache
