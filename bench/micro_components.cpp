// Component microbenchmarks (google-benchmark): costs of the pieces that
// run on Lobster's hot paths — the PRNG and shuffles, the piecewise fitter,
// cache operations per eviction policy, oracle queries, Algorithm 1 solves,
// prefetch planning, the DES resource, and one simulated training iteration.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/strategies.hpp"
#include "cache/node_cache.hpp"
#include "cache/policies.hpp"
#include "cache/prefetcher.hpp"
#include "common/piecewise_linear.hpp"
#include "common/rng.hpp"
#include "core/perf_model.hpp"
#include "core/preproc_model.hpp"
#include "core/thread_allocator.hpp"
#include "data/oracle.hpp"
#include "pipeline/simulator.hpp"
#include "sim/resource.hpp"

namespace {

using namespace lobster;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_RngNext);

void BM_RngBounded(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.bounded(1'000'000));
}
BENCHMARK(BM_RngBounded);

void BM_Permutation(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(random_permutation(n, rng));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Permutation)->Arg(1024)->Arg(65536);

void BM_PiecewiseFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<double>(i);
    ys[i] = (i < n / 2 ? 100.0 - static_cast<double>(i) : static_cast<double>(i)) +
            rng.normal(0.0, 0.5);
  }
  for (auto _ : state) benchmark::DoNotOptimize(fit_piecewise_linear(xs, ys, 4));
}
BENCHMARK(BM_PiecewiseFit)->Arg(32)->Arg(128);

struct CacheBench {
  CacheBench(const std::string& policy)
      : catalog(data::DatasetSpec::uniform(100'000, 100'000), 1),
        cache(0, 1'000'000'000ULL, cache::make_policy(policy), catalog, nullptr, nullptr, 100) {}
  data::SampleCatalog catalog;
  cache::NodeCache cache;
};

void BM_CacheInsertEvict(benchmark::State& state, const std::string& policy) {
  CacheBench bench(policy);
  Rng rng(7);
  IterId now = 0;
  for (auto _ : state) {
    const auto s = static_cast<SampleId>(rng.bounded(100'000));
    if (!bench.cache.access(s, now)) bench.cache.insert(s, now);
    ++now;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_CacheInsertEvict, lru, std::string("lru"));
BENCHMARK_CAPTURE(BM_CacheInsertEvict, fifo, std::string("fifo"));

void BM_OracleQueries(benchmark::State& state) {
  data::SamplerConfig config;
  config.num_samples = 50'000;
  config.nodes = 8;
  config.gpus_per_node = 8;
  config.batch_size = 32;
  const data::EpochSampler sampler(config);
  const data::FutureAccessOracle oracle(sampler, 3);
  Rng rng(5);
  for (auto _ : state) {
    const auto s = static_cast<SampleId>(rng.bounded(50'000));
    benchmark::DoNotOptimize(oracle.reuse_distance_on_node(s, 3, 10));
  }
}
BENCHMARK(BM_OracleQueries);

void BM_Algorithm1Solve(benchmark::State& state) {
  const storage::StorageModel storage;
  const core::PreprocGroundTruth truth;
  const core::PreprocModelPortfolio portfolio(truth, {100'000}, 16, 3, 1);
  const core::PerfModel model(storage, portfolio, 13e-3);
  core::AllocatorConfig config;
  config.balance.total_load_threads = 80;
  const core::ThreadAllocator allocator(model, config);
  std::vector<core::GpuDemand> demands(8);
  Rng rng(2);
  for (auto& d : demands) {
    d.bytes.local = rng.bounded(2'000'000);
    d.bytes.pfs = rng.bounded(2'000'000);
    d.samples = 32;
    d.pending_requests = d.bytes.pfs;
  }
  for (auto _ : state) benchmark::DoNotOptimize(allocator.allocate(demands, 6.0));
}
BENCHMARK(BM_Algorithm1Solve);

void BM_PrefetchPlan(benchmark::State& state) {
  data::SamplerConfig config;
  config.num_samples = 50'000;
  config.nodes = 1;
  config.gpus_per_node = 8;
  config.batch_size = 32;
  const data::EpochSampler sampler(config);
  const data::SampleCatalog catalog(data::DatasetSpec::uniform(50'000, 100'000), 1);
  cache::NodeCache node_cache(0, 4'000'000'000ULL, cache::make_policy("lru"), catalog, nullptr,
                              nullptr, sampler.iterations_per_epoch());
  const cache::Prefetcher prefetcher(sampler, catalog, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prefetcher.plan(0, 0, 0, node_cache, nullptr, 0, 20'000'000, 10));
  }
}
BENCHMARK(BM_PrefetchPlan);

void BM_DesResource(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Resource resource(engine, "pfs", 1e9, 1e8);
    for (int i = 0; i < 64; ++i) resource.submit(100'000, [](sim::JobId, Seconds) {});
    engine.run();
    benchmark::DoNotOptimize(resource.bytes_completed());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DesResource);

void BM_SimulatorIteration(benchmark::State& state, const char* strategy) {
  auto preset = pipeline::preset_imagenet1k_single_node(512.0);
  preset.epochs = 1;
  for (auto _ : state) {
    const auto result =
        pipeline::simulate(preset, baselines::LoaderStrategy::by_name(strategy));
    benchmark::DoNotOptimize(result.metrics.total_time());
  }
  state.SetLabel("one scaled epoch per iteration");
}
BENCHMARK_CAPTURE(BM_SimulatorIteration, dali, "dali")->Iterations(3);
BENCHMARK_CAPTURE(BM_SimulatorIteration, lobster, "lobster")->Iterations(3);

}  // namespace
