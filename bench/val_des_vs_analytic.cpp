// Cross-validation: the analytic Eq. 1 loading model vs an emergent
// discrete-event replay of the same fetches.
//
// The pipeline simulator prices loading with Eq. 1 plus contention caps;
// the DES replay lets contention *emerge* from overlapping transfers on
// shared processor-sharing resources. If the analytic model is a faithful
// stand-in, per-GPU load times should agree within tens of percent across
// a range of demand mixes — this bench sweeps mixes and reports the ratio
// distribution.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/perf_model.hpp"
#include "core/preproc_model.hpp"
#include "sim/fetch_replay.hpp"

using namespace lobster;

int main(int argc, char** argv) {
  const auto config = bench::parse_args(argc, argv);
  const bench::TraceSession trace_session(config);
  const auto trials = static_cast<std::uint32_t>(config.get_int("trials", 200));
  const auto gpus = static_cast<std::uint32_t>(config.get_int("gpus", 8));
  bench::warn_unconsumed(config);

  bench::print_header("Validation: analytic Eq. 1 vs discrete-event replay",
                      "(not a paper figure) the closed-form model should track the emergent times");

  const storage::StorageModel storage;
  Rng rng(2027);

  Series ratios;           // DES / analytic per-GPU load time
  Series makespan_ratios;  // node level
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    // Random demand mix: per-GPU bytes per tier, random thread counts.
    std::vector<sim::GpuWork> work(gpus);
    std::vector<core::GpuDemand> demands(gpus);
    std::vector<double> threads(gpus);
    storage::Contention contention;
    contention.local_readers_node = contention.ssd_readers_node = 0;
    contention.remote_readers_node = contention.pfs_readers_node = 0;

    for (std::uint32_t g = 0; g < gpus; ++g) {
      threads[g] = 1.0 + static_cast<double>(rng.bounded(8));
      work[g].threads = static_cast<std::uint32_t>(threads[g]);
      const std::uint32_t samples = 8 + static_cast<std::uint32_t>(rng.bounded(32));
      for (std::uint32_t i = 0; i < samples; ++i) {
        sim::Fetch fetch;
        fetch.bytes = 20'000 + rng.bounded(200'000);
        const auto draw = rng.bounded(100);
        if (draw < 45) {
          fetch.tier = sim::FetchTier::kLocal;
          demands[g].bytes.local += fetch.bytes;
        } else if (draw < 60) {
          fetch.tier = sim::FetchTier::kSsd;
          demands[g].bytes.ssd += fetch.bytes;
        } else if (draw < 80) {
          fetch.tier = sim::FetchTier::kRemote;
          demands[g].bytes.remote += fetch.bytes;
        } else {
          fetch.tier = sim::FetchTier::kPfs;
          demands[g].bytes.pfs += fetch.bytes;
        }
        work[g].fetches.push_back(fetch);
      }
      demands[g].samples = samples;
      if (demands[g].bytes.local > 0) ++contention.local_readers_node;
      if (demands[g].bytes.ssd > 0) ++contention.ssd_readers_node;
      if (demands[g].bytes.remote > 0) ++contention.remote_readers_node;
      if (demands[g].bytes.pfs > 0) ++contention.pfs_readers_node;
    }
    contention.pfs_readers_cluster = std::max<std::uint32_t>(contention.pfs_readers_node, 1);
    contention.local_readers_node = std::max<std::uint32_t>(contention.local_readers_node, 1);
    contention.ssd_readers_node = std::max<std::uint32_t>(contention.ssd_readers_node, 1);
    contention.remote_readers_node = std::max<std::uint32_t>(contention.remote_readers_node, 1);
    contention.pfs_readers_node = std::max<std::uint32_t>(contention.pfs_readers_node, 1);

    const auto replay = sim::replay_node_iteration(work, storage.params(), 1);
    Seconds analytic_max = 0.0;
    for (std::uint32_t g = 0; g < gpus; ++g) {
      const Seconds analytic = storage.load_time(
          demands[g].bytes, storage::ThreadAlloc::uniform(threads[g]), contention);
      analytic_max = std::max(analytic_max, analytic);
      if (analytic > 0.0 && replay.gpu_load_time[g] > 0.0) {
        ratios.add(replay.gpu_load_time[g] / analytic);
      }
    }
    if (analytic_max > 0.0) makespan_ratios.add(replay.node_makespan / analytic_max);
  }

  Table table({"quantity", "p10", "p50", "p90", "mean"});
  table.add_row({"per-GPU DES/analytic", Table::num(ratios.percentile(10), 3),
                 Table::num(ratios.percentile(50), 3), Table::num(ratios.percentile(90), 3),
                 Table::num(ratios.mean(), 3)});
  table.add_row({"node makespan DES/analytic", Table::num(makespan_ratios.percentile(10), 3),
                 Table::num(makespan_ratios.percentile(50), 3),
                 Table::num(makespan_ratios.percentile(90), 3),
                 Table::num(makespan_ratios.mean(), 3)});
  bench::emit(config, "val_des_vs_analytic", table);
  std::printf("Reading guide: Eq. 1 prices each tier with a static worst-case reader-count\n"
              "cap and serializes a GPU's per-tier components, while the DES lets transfers\n"
              "overlap across tiers and in time. The analytic model is therefore expected to\n"
              "be conservative (ratios below 1.0) but rank-order consistent; node makespans\n"
              "agree more closely because the slowest GPU sees the most genuine overlap.\n");
  return 0;
}
