// Heterogeneity-aware feedback load balancer (closed loop over §4.2).
//
// The planner's Eq. 2–3 split assumes homogeneous GPUs: thread counts and
// batch quotas are computed once and never revisited, so one thermally
// throttled or co-tenant-loaded node drags every iteration to its pace at
// the all-reduce barrier. This controller closes the loop the paper leaves
// open: each iteration it consumes the measured per-GPU delivery throughput
// (metrics::ThroughputWindow over executor delivery logs) and re-splits the
// global batch quota and the per-node loading-thread budget.
//
// Control law (the grain-trading pattern of gpgpu-loadbalancerx, adapted
// from grains to samples):
//  * per-device EWMA of measured samples/s is the performance history —
//    a device's share of the next batch is its share of the summed rates;
//  * hysteresis: when no device's weight moved more than `hysteresis`
//    relative to the last applied split, the previous quotas stand (noise
//    does not churn quotas);
//  * damping: a device's quota moves at most `max_quota_step` samples per
//    rebalance toward its target, so a one-iteration blip cannot swing the
//    split (oscillation damping); the residual is repaired so quotas always
//    partition the batch exactly — the executor's exactly-once accounting
//    rides on that invariant;
//  * down devices (node kill, composes with DESIGN.md §9 degraded routing)
//    are dropped to quota 0 immediately — damping never keeps samples on a
//    dead node — and their share is re-apportioned.
//
// Telemetry: balancer.rebalances / balancer.quota_moves /
// balancer.slow_node_detected counters, balancer.slow_nodes gauge,
// balancer.device/<d>/quota gauges, and an in-memory per-iteration quota
// trace harnesses dump next to the run's metrics.
//
// Thread-safety: fully thread-safe (one internal mutex); executor threads
// observe() concurrently while a harness reads the trace. The
// RebalanceBarrier below turns per-node executor threads into the
// "all nodes submit feedback, one plan comes back" exchange that mirrors
// the all-reduce barrier the quotas must hold across.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "core/load_balance_config.hpp"
#include "metrics/throughput_window.hpp"

namespace lobster::core {

/// One device's measurement for one iteration. `device` is the flat GPU
/// rank (node-major: node * gpus_per_node + gpu).
struct DeviceFeedback {
  std::uint32_t device = 0;
  std::uint64_t delivered = 0;  ///< samples delivered this iteration
  Seconds busy_s = 0.0;         ///< pipeline time spent delivering them
};

struct IterationFeedback {
  IterId iter = 0;
  std::vector<DeviceFeedback> devices;
};

/// The per-iteration rebalance decision handed through the executor's
/// iteration hook. Inactive plans (warmup, static runs) leave the static
/// strided split in force.
struct RebalancePlan {
  IterId iter = 0;
  bool active = false;
  std::vector<std::uint32_t> batch_quotas;  ///< per flat device; sums to batch_size
  std::vector<std::uint32_t> load_threads;  ///< per flat device loading threads
  std::vector<double> weights;              ///< normalized per-device performance
};

struct BalancerOptions {
  std::uint32_t gpus_per_node = 1;
  /// EWMA weight on the newest rate observation.
  double ewma_alpha = 0.3;
  std::size_t rate_window = 8;
  /// Observed iterations before the first active plan (rates must exist).
  std::uint32_t warmup_iters = 2;
  /// Max relative per-device weight drift that still counts as "unchanged".
  double hysteresis = 0.04;
  /// Per-device quota delta cap per rebalance (samples).
  std::uint32_t max_quota_step = 4;
  /// Quota floor for live devices (a GPU never starves to zero).
  std::uint32_t min_quota = 1;
  /// A node whose weight share falls below factor/N is flagged slow.
  double slow_node_factor = 0.75;
};

class FeedbackBalancer {
 public:
  /// Throws std::invalid_argument when `knobs.validate()` fails or
  /// world/batch sizes are unspecified (the balancer cannot split an
  /// unknown batch).
  FeedbackBalancer(LoadBalanceConfig knobs, BalancerOptions options);

  /// Feeds one iteration's measurements into the EWMA history.
  void observe(const IterationFeedback& feedback);

  /// Computes the split for iteration `iter` from the current history.
  /// Inactive until warmup_iters iterations have been observed.
  RebalancePlan plan(IterId iter);

  /// Marks a device dead (quota 0 from the next plan on) or revives it.
  void set_device_down(std::uint32_t device, bool down);
  /// Convenience: all devices of `node` at once (node kill / revive).
  void set_node_down(std::uint32_t node, bool down);

  const LoadBalanceConfig& knobs() const noexcept { return knobs_; }
  const BalancerOptions& options() const noexcept { return options_; }

  std::vector<double> weights() const;
  std::vector<std::uint32_t> current_quotas() const;
  /// Nodes currently flagged slow (weight share < slow_node_factor / N).
  std::vector<std::uint32_t> slow_nodes() const;

  struct QuotaTraceEntry {
    IterId iter = 0;
    bool rebalanced = false;            ///< quotas changed at this iteration
    std::uint32_t quota_moves = 0;      ///< samples moved between devices
    std::vector<std::uint32_t> quotas;  ///< split in force for `iter`
  };
  /// Per-iteration quota trace (one entry per plan() call).
  std::vector<QuotaTraceEntry> quota_trace() const;

  std::uint64_t rebalances() const;
  /// Total samples moved between devices across all rebalances — the
  /// oscillation metric the no-churn tests bound.
  std::uint64_t quota_moves() const;
  std::uint64_t slow_node_events() const;

  /// Checkpointable controller state (DESIGN.md §13): the per-device EWMA
  /// history plus the applied split. Restoring it lets a preempted job's
  /// balancer resume without re-running warmup — the learned heterogeneity
  /// picture survives the preemption.
  struct State {
    struct DeviceRate {
      double ewma = 0.0;
      std::uint64_t observations = 0;
      bool down = false;
    };
    std::vector<DeviceRate> devices;
    std::vector<std::uint32_t> quotas;
    std::vector<double> applied_weights;
    std::vector<std::uint32_t> applied_targets;
    std::uint64_t observed_iters = 0;
  };
  State export_state() const;
  /// Throws std::invalid_argument when the state's device count does not
  /// match this balancer's world size (a checkpoint from a different shape
  /// must go through the resize path, not a blind restore).
  void restore_state(const State& state);

 private:
  std::vector<double> weights_locked() const;
  void update_slow_nodes_locked(const std::vector<double>& weights);
  std::vector<std::uint32_t> thread_split_locked(const std::vector<std::uint32_t>& quotas) const;
  void publish_locked() const;

  LoadBalanceConfig knobs_;
  BalancerOptions options_;

  mutable std::mutex mutex_;
  std::vector<metrics::ThroughputWindow> rates_;  ///< per device
  std::vector<bool> down_;
  std::vector<std::uint32_t> quotas_;          ///< split currently in force
  std::vector<double> applied_weights_;        ///< weights behind quotas_
  std::vector<std::uint32_t> applied_targets_; ///< apportionment they implied
  std::vector<bool> node_slow_;
  std::vector<QuotaTraceEntry> trace_;
  std::uint64_t observed_iters_ = 0;
  std::uint64_t rebalances_ = 0;
  std::uint64_t quota_moves_ = 0;
  std::uint64_t slow_node_events_ = 0;
};

/// Turns per-node executor threads into one logical controller: every live
/// node calls exchange() once per iteration with its local feedback slice;
/// the last arrival feeds the merged feedback to the balancer, computes the
/// shared plan, and wakes the rest. Mirrors the all-reduce barrier, which
/// is exactly the consistency the quota partition needs — every executor
/// must slice iteration h's batch with the SAME plan.
class RebalanceBarrier {
 public:
  RebalanceBarrier(FeedbackBalancer& balancer, std::uint32_t nodes);

  /// Blocks until all live nodes have arrived for `iter`; returns the plan
  /// every node must apply to iteration `iter`.
  RebalancePlan exchange(IterId iter, std::uint32_t node, const IterationFeedback& feedback);

  /// Removes `node` from the exchange (killed mid-run): pending rounds stop
  /// waiting for it and its devices drop to quota 0.
  void set_node_down(std::uint32_t node);

 private:
  struct Round {
    IterationFeedback merged;
    std::vector<bool> arrived;
    bool done = false;
    std::uint32_t pending_pickups = 0;
    RebalancePlan plan;
  };

  bool round_complete_locked(const Round& round) const;
  void finish_round_locked(IterId iter, Round& round);

  FeedbackBalancer& balancer_;
  const std::uint32_t nodes_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<bool> down_;
  std::map<IterId, Round> rounds_;
};

}  // namespace lobster::core
