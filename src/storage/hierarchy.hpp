// Storage hierarchy model — the substrate behind Eq. 1.
//
// Resolves a per-GPU batch, already classified by tier (local cache hit /
// remote node cache hit / PFS miss), to a data-loading duration given the
// GPU's thread allocation. On top of the per-GPU thread-count curves, two
// levels of *sharing* are modeled, because a GPU never has a tier to
// itself:
//
//   - intra-node: the co-located GPUs reading the same tier in the same
//     iteration split that tier's node-level peak (memory controller, NIC,
//     node→PFS link);
//   - cluster-wide (PFS only): all nodes share the file system's aggregate
//     bandwidth, so a GPU's PFS rate is also capped by
//     cluster_bps / concurrent PFS-reading GPUs.
//
// The paper assumes T_PFS "globally stable on the average across the
// compute nodes"; we keep the average stable but let concurrent demand
// depress the instantaneous rate — that is what produces the bursty loading
// of Observation 2.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "storage/curves.hpp"

namespace lobster::storage {

/// Bytes a GPU must read in one iteration, split by the serving tier
/// (B_HL / B_HR / B_M of §4.3).
struct TierBytes {
  Bytes local = 0;   ///< node-local DRAM cache hits
  Bytes ssd = 0;     ///< node-local SSD tier hits (0 unless the tier is on)
  Bytes remote = 0;  ///< peer-node cache hits
  Bytes pfs = 0;     ///< parallel-file-system misses

  Bytes total() const noexcept { return local + ssd + remote + pfs; }
};

/// Number of loading threads a GPU applies to each tier (α, β, γ). Lobster's
/// Algorithm 1 searches a single per-GPU thread count; use `uniform()`.
/// Fractional values model equal shares of a small shared pool.
struct ThreadAlloc {
  double alpha = 1.0;
  double beta = 1.0;
  double gamma = 1.0;

  static ThreadAlloc uniform(double threads) noexcept {
    return ThreadAlloc{threads, threads, threads};
  }
};

/// Concurrent readers competing for each tier during the iteration.
struct Contention {
  std::uint32_t local_readers_node = 1;   ///< co-located GPUs reading locally
  std::uint32_t ssd_readers_node = 1;     ///< co-located GPUs reading the SSD
  std::uint32_t remote_readers_node = 1;  ///< co-located GPUs reading peers
  std::uint32_t pfs_readers_node = 1;     ///< co-located GPUs reading the PFS
  std::uint32_t pfs_readers_cluster = 1;  ///< GPUs cluster-wide reading the PFS
};

class StorageModel {
 public:
  struct Params {
    ThroughputCurve local = ThroughputCurve::local_memory();
    ThroughputCurve ssd = ThroughputCurve::local_ssd();
    ThroughputCurve remote = ThroughputCurve::remote_cache();
    ThroughputCurve pfs = ThroughputCurve::pfs();
    /// Cluster-wide PFS aggregate bandwidth. Scaled (like the tier curves)
    /// so that one node alone is bound by its own node-level cap while an
    /// 8-node cluster sees real server-side contention.
    double pfs_cluster_bps = 6.0e9;
    /// Fixed per-batch overhead (metadata RPC, request setup) per tier.
    Seconds ssd_latency = 60e-6;
    Seconds remote_latency = 120e-6;
    Seconds pfs_latency = 1.5e-3;
  };

  StorageModel() : StorageModel(Params{}) {}
  explicit StorageModel(Params params) : params_(std::move(params)) {}

  /// Eq. 1: duration for one GPU to load its batch split across tiers with
  /// `alloc` threads under `contention`.
  Seconds load_time(const TierBytes& bytes, const ThreadAlloc& alloc,
                    const Contention& contention = {}) const;

  /// Per-tier components of load_time (for breakdown figures).
  struct LoadTimeBreakdown {
    Seconds local = 0.0;
    Seconds ssd = 0.0;
    Seconds remote = 0.0;
    Seconds pfs = 0.0;
    Seconds total() const noexcept { return local + ssd + remote + pfs; }
  };
  LoadTimeBreakdown load_time_breakdown(const TierBytes& bytes, const ThreadAlloc& alloc,
                                        const Contention& contention = {}) const;

  /// Effective per-GPU rate on each tier under contention.
  double local_bps(double alpha, const Contention& contention) const noexcept;
  double ssd_bps(double alpha, const Contention& contention) const noexcept;
  double remote_bps(double beta, const Contention& contention) const noexcept;
  double pfs_bps(double gamma, const Contention& contention) const noexcept;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace lobster::storage
