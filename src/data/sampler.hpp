// Deterministic distributed epoch sampler.
//
// Mirrors PyTorch's DistributedSampler: each epoch gets one global
// permutation (seed = f(global_seed, epoch)); GPU rank r takes the strided
// shard perm[r], perm[r+W], perm[r+2W], … (W = world size) and consumes it
// in order, |B| samples per iteration. Because the seed chain is fixed, the
// full access pattern of every GPU for the rest of training is known in
// advance — the property the paper's deterministic prefetching and
// reuse-distance eviction rely on (§2, §4.4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lobster::data {

struct SamplerConfig {
  std::uint32_t num_samples = 0;   ///< |D|
  std::uint16_t nodes = 1;         ///< N
  std::uint16_t gpus_per_node = 1; ///< M
  std::uint32_t batch_size = 32;   ///< |B|
  std::uint64_t seed = 42;
};

class EpochSampler {
 public:
  explicit EpochSampler(SamplerConfig config);

  /// Iterations per epoch: floor(|D| / (|B| * N * M)) — the trailing partial
  /// iteration is dropped, as the paper's Section 4.3 allows.
  std::uint32_t iterations_per_epoch() const noexcept { return iterations_; }

  std::uint32_t world_size() const noexcept;
  const SamplerConfig& config() const noexcept { return config_; }

  /// The mini-batch B^{h,i,j} for iteration h of `epoch` on GPU (node, gpu).
  std::vector<SampleId> minibatch(std::uint32_t epoch, std::uint32_t iteration,
                                  NodeId node, GpuId gpu) const;

  /// All samples touched by every GPU of `node` in iteration h (the set B^h
  /// restricted to the node) — what the node's cache must deliver.
  std::vector<SampleId> node_batch(std::uint32_t epoch, std::uint32_t iteration,
                                   NodeId node) const;

  /// `count` samples starting at `offset` within iteration h's global block
  /// perm[h·B·W, (h+1)·B·W) — the quota mode of the feedback balancer:
  /// contiguous slices by per-device quota prefix sums re-partition the same
  /// block the static strided shards cover, so any quota set summing to B·W
  /// preserves exactly-once delivery cluster-wide.
  std::vector<SampleId> quota_slice(std::uint32_t epoch, std::uint32_t iteration,
                                    std::uint64_t offset, std::uint32_t count) const;

  /// The full permutation of one epoch (cached; two most recent epochs kept).
  const std::vector<SampleId>& epoch_permutation(std::uint32_t epoch) const;

  /// Converts (epoch, iteration) to a global iteration index.
  IterId global_iter(std::uint32_t epoch, std::uint32_t iteration) const noexcept {
    return static_cast<IterId>(epoch) * iterations_ + iteration;
  }

 private:
  SamplerConfig config_;
  std::uint32_t iterations_;

  struct CachedEpoch {
    std::uint32_t epoch = ~0U;
    std::vector<SampleId> perm;
  };
  mutable CachedEpoch cache_[2];
  mutable std::size_t cache_next_ = 0;
};

}  // namespace lobster::data
