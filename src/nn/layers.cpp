#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

namespace lobster::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : weights_(in_features, out_features),
      bias_(1, out_features),
      grad_weights_(in_features, out_features),
      grad_bias_(1, out_features),
      vel_weights_(in_features, out_features),
      vel_bias_(1, out_features) {
  // He initialization (ReLU-friendly), deterministic in the provided rng.
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_features));
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
}

Matrix Dense::forward(const Matrix& input) {
  last_input_ = input;
  Matrix out = Matrix::matmul(input, weights_);
  out.add_row_vector(bias_);
  return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
  grad_weights_.add_scaled(Matrix::matmul_at_b(last_input_, grad_output), 1.0F);
  grad_bias_.add_scaled(grad_output.column_sums(), 1.0F);
  return Matrix::matmul_a_bt(grad_output, weights_);
}

void Dense::apply_gradients(float learning_rate, float momentum, std::size_t batch_size) {
  const float scale = 1.0F / static_cast<float>(batch_size == 0 ? 1 : batch_size);
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    float& v = vel_weights_.data()[i];
    v = momentum * v - learning_rate * grad_weights_.data()[i] * scale;
    weights_.data()[i] += v;
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    float& v = vel_bias_.data()[i];
    v = momentum * v - learning_rate * grad_bias_.data()[i] * scale;
    bias_.data()[i] += v;
  }
  grad_weights_.fill(0.0F);
  grad_bias_.fill(0.0F);
}

Matrix Relu::forward(const Matrix& input) {
  mask_ = Matrix(input.rows(), input.cols());
  Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] > 0.0F) {
      mask_.data()[i] = 1.0F;
    } else {
      out.data()[i] = 0.0F;
    }
  }
  return out;
}

Matrix Relu::backward(const Matrix& grad_output) const {
  if (!grad_output.same_shape(mask_)) throw std::invalid_argument("Relu: shape mismatch");
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) grad.data()[i] *= mask_.data()[i];
  return grad;
}

float SoftmaxCrossEntropy::loss_and_grad(const Matrix& logits,
                                         const std::vector<std::uint32_t>& labels, Matrix& grad) {
  if (labels.size() != logits.rows()) {
    throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");
  }
  grad = Matrix(logits.rows(), logits.cols());
  double total_loss = 0.0;
  const float inv_batch = 1.0F / static_cast<float>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.row(r);
    float* out = grad.row(r);
    float max_logit = in[0];
    for (std::size_t c = 1; c < logits.cols(); ++c) max_logit = std::max(max_logit, in[c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) denom += std::exp(in[c] - max_logit);
    const auto label = labels[r];
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const double p = std::exp(in[c] - max_logit) / denom;
      out[c] = static_cast<float>(p) * inv_batch;
      if (c == label) {
        out[c] -= inv_batch;
        total_loss -= std::log(std::max(p, 1e-12));
      }
    }
  }
  return static_cast<float>(total_loss / static_cast<double>(logits.rows()));
}

double SoftmaxCrossEntropy::accuracy(const Matrix& logits,
                                     const std::vector<std::uint32_t>& labels) {
  if (labels.size() != logits.rows() || logits.rows() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.row(r);
    std::size_t best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (in[c] > in[best]) best = c;
    }
    if (best == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(logits.rows());
}

}  // namespace lobster::nn
