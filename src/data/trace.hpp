// Access-trace recording and summarization.
//
// The motivation study of §3 is built from exactly this kind of trace:
// per-access records of which GPU touched which sample and which tier
// served it. The simulator can record one (SimulationConfig::record_trace),
// and this module summarizes it (per-tier counts over time, per-GPU skew)
// and exports CSV for external analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lobster::data {

enum class ServedBy : std::uint8_t { kMemory, kSsd, kRemote, kPfs };

struct TraceRecord {
  IterId iter = 0;
  NodeId node = 0;
  GpuId gpu = 0;
  SampleId sample = 0;
  ServedBy served_by = ServedBy::kPfs;
};

class AccessTrace {
 public:
  void append(TraceRecord record) { records_.push_back(record); }
  void reserve(std::size_t n) { records_.reserve(n); }

  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  const std::vector<TraceRecord>& records() const noexcept { return records_; }

  /// Per-tier access counts.
  struct TierCounts {
    std::uint64_t memory = 0;
    std::uint64_t ssd = 0;
    std::uint64_t remote = 0;
    std::uint64_t pfs = 0;
    std::uint64_t total() const noexcept { return memory + ssd + remote + pfs; }
  };
  TierCounts tier_counts() const;

  /// Per-GPU PFS-miss counts (the §3 skew signal): index = node * M + gpu.
  std::vector<std::uint64_t> pfs_misses_per_gpu(std::uint16_t nodes,
                                                std::uint16_t gpus_per_node) const;

  /// Max/mean ratio of per-GPU PFS misses — 1.0 means perfectly even load.
  double pfs_skew(std::uint16_t nodes, std::uint16_t gpus_per_node) const;

  /// CSV with header: iter,node,gpu,sample,served_by.
  std::string to_csv() const;
  void save_csv(const std::string& path) const;

 private:
  std::vector<TraceRecord> records_;
};

const char* served_by_name(ServedBy tier) noexcept;

}  // namespace lobster::data
