// Processor-sharing bandwidth resource for the discrete-event engine.
//
// Models a shared channel (PFS aggregate bandwidth, a node's NIC, a memory
// controller): all active transfer jobs share `capacity` bytes/s equally,
// with an optional per-stream throughput ceiling (a single Lustre stream or
// TCP flow cannot use the whole aggregate even when alone). This yields
// emergent contention — exactly the effect behind the paper's Observation 2
// (bursty remote I/O when many nodes hit the PFS at once).
//
// Implementation: classic PS bookkeeping. Whenever the active set changes,
// every job's remaining bytes are advanced by elapsed_time * current_rate,
// then the next completion event is (re)scheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>

#include "common/types.hpp"
#include "sim/capacity_profile.hpp"
#include "sim/engine.hpp"

namespace lobster::sim {

using JobId = std::uint64_t;
using JobCompletion = std::function<void(JobId, Seconds /*finish_time*/)>;

class Resource {
 public:
  /// `capacity_bps`: aggregate bytes/s shared by all active jobs.
  /// `per_stream_bps`: ceiling for a single job's rate (default: unlimited).
  Resource(Engine& engine, std::string name, double capacity_bps,
           double per_stream_bps = std::numeric_limits<double>::infinity());

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Starts a transfer of `bytes`; `on_done` fires (via the engine) when it
  /// completes. Zero-byte jobs complete at the current time via an event.
  JobId submit(Bytes bytes, JobCompletion on_done);

  /// Aborts a job; its completion never fires. False if unknown/finished.
  bool abort(JobId id);

  std::size_t active_jobs() const noexcept { return jobs_.size(); }
  const std::string& name() const noexcept { return name_; }
  double capacity_bps() const noexcept { return capacity_bps_; }
  double per_stream_bps() const noexcept { return per_stream_bps_; }

  /// Degrades (and restores) the channel per a time-indexed schedule: the
  /// step at (or before) now() applies immediately, every future step is
  /// scheduled as an engine event, so `capacity_bps * profile.scale_at(t)`
  /// holds for the rest of the run — 0.5 is a half-speed link, 0.0 stalls
  /// every in-flight job until a later step raises the scale. In-flight
  /// progress is settled at the old rate before each step applies, so
  /// changes take effect exactly at their virtual time. Replaces any
  /// previously set profile's *future* steps (already-applied ones stand).
  void set_capacity_profile(CapacityProfile profile);

  /// Compatibility overload: an immediate one-step profile at now().
  void set_capacity_scale(double scale) { set_capacity_profile(CapacityProfile::constant(scale)); }
  double capacity_scale() const noexcept { return scale_; }

  /// Instantaneous per-job rate with `n` active jobs.
  double rate_for(std::size_t n) const noexcept;

  /// Total bytes fully transferred through this resource so far.
  Bytes bytes_completed() const noexcept { return bytes_completed_; }

  /// Busy time integral (seconds during which >= 1 job was active), for
  /// utilisation reporting.
  Seconds busy_time() const noexcept;

 private:
  struct Job {
    double remaining_bytes;
    Bytes total_bytes;
    JobCompletion on_done;
  };

  /// Advances all jobs to engine.now() and reschedules the completion event.
  void settle();
  void reschedule();
  void complete_due_jobs();
  /// Settles in-flight progress, then switches to `scale` at now().
  void apply_scale(double scale);

  Engine& engine_;
  std::string name_;
  double capacity_bps_;
  double per_stream_bps_;
  double scale_ = 1.0;
  std::uint64_t profile_generation_ = 0;  ///< invalidates superseded profile steps

  std::unordered_map<JobId, Job> jobs_;
  JobId next_id_ = 1;
  Seconds last_update_ = 0.0;
  EventId pending_event_ = kInvalidEvent;
  Bytes bytes_completed_ = 0;
  Seconds busy_accum_ = 0.0;
};

}  // namespace lobster::sim
