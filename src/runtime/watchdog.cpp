#include "runtime/watchdog.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/events.hpp"
#include "telemetry/registry.hpp"

namespace lobster::runtime {

IterationWatchdog::IterationWatchdog(WatchdogConfig config) : config_(config) {
  if (config_.window == 0) config_.window = 1;
  window_.reserve(config_.window);
}

IterationWatchdog::~IterationWatchdog() { stop(); }

void IterationWatchdog::start() {
  const std::scoped_lock lock(mutex_);
  if (running_) return;
  running_ = true;
  thread_ = std::jthread([this](const std::stop_token& token) { watch_loop(token); });
}

void IterationWatchdog::stop() {
  {
    const std::scoped_lock lock(mutex_);
    if (!running_) return;
    running_ = false;
    armed_ = false;
  }
  thread_.request_stop();
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Seconds IterationWatchdog::trailing_median_locked() const {
  if (window_.empty()) return 0.0;
  std::vector<Seconds> sorted(window_);
  const auto mid = sorted.begin() + static_cast<std::ptrdiff_t>(sorted.size() / 2);
  std::nth_element(sorted.begin(), mid, sorted.end());
  return *mid;
}

Seconds IterationWatchdog::deadline_locked() const {
  return std::max(config_.min_deadline, config_.multiplier * trailing_median_locked());
}

Seconds IterationWatchdog::next_deadline() const {
  const std::scoped_lock lock(mutex_);
  return deadline_locked();
}

void IterationWatchdog::begin_iteration(IterId iter) {
  const std::scoped_lock lock(mutex_);
  iter_ = iter;
  if (pause_depth_ > 0) return;  // paused: the stretch is not an iteration
  started_ = Clock::now();
  deadline_s_ = deadline_locked();
  flagged_ = false;
  armed_ = true;
  cv_.notify_all();
}

void IterationWatchdog::end_iteration() {
  const std::scoped_lock lock(mutex_);
  if (!armed_) return;
  armed_ = false;
  const Seconds elapsed =
      std::chrono::duration<double>(Clock::now() - started_).count();
  if (window_.size() < config_.window) {
    window_.push_back(elapsed);
  } else {
    window_[window_next_] = elapsed;
    window_next_ = (window_next_ + 1) % config_.window;
  }
  cv_.notify_all();
}

void IterationWatchdog::pause() {
  const std::scoped_lock lock(mutex_);
  ++pause_depth_;
  // Disarm WITHOUT recording: the partially-run iteration's wall time (and
  // the pause itself) must not enter the trailing median, and the deadline
  // thread must not fire while the job is checkpointing.
  armed_ = false;
  cv_.notify_all();
}

void IterationWatchdog::resume() {
  const std::scoped_lock lock(mutex_);
  if (pause_depth_ > 0) --pause_depth_;
  cv_.notify_all();
}

bool IterationWatchdog::paused() const {
  const std::scoped_lock lock(mutex_);
  return pause_depth_ > 0;
}

void IterationWatchdog::watch_loop(const std::stop_token& token) {
  std::unique_lock lock(mutex_);
  while (!token.stop_requested()) {
    if (!armed_ || flagged_) {
      // Nothing to time: sleep until an arm / disarm / stop pokes us.
      cv_.wait(lock, token, [this] { return armed_ && !flagged_; });
      continue;
    }
    const IterId watching = iter_;
    const auto wake_at =
        started_ + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(deadline_s_));
    // Woken early by end_iteration() (disarm) or a new begin_iteration().
    cv_.wait_until(lock, token, wake_at,
                   [this, watching] { return !armed_ || iter_ != watching; });
    if (token.stop_requested()) break;
    if (armed_ && iter_ == watching && !flagged_ && Clock::now() >= wake_at) {
      flagged_ = true;
      stalls_.fetch_add(1, std::memory_order_relaxed);
      const Seconds deadline = deadline_s_;
      LOBSTER_METRIC_COUNT("executor.iteration_stalls", 1);
      telemetry::EventLog::instance().emit(telemetry::EventKind::kWatchdogStall, 0,
                                           watching, telemetry::to_micros(deadline));
      log::warn("watchdog: iteration %llu exceeded deadline %.3fs",
                static_cast<unsigned long long>(watching), deadline);
      if (on_stall_) {
        // Drop the lock for the callback: it may dump an incident bundle
        // (file I/O), and holding the watchdog lock that long would block
        // the executor's begin/end calls.
        lock.unlock();
        on_stall_(watching, deadline);
        lock.lock();
      }
    }
  }
}

}  // namespace lobster::runtime
