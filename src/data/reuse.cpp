#include "data/reuse.hpp"

#include <unordered_map>

namespace lobster::data {

ReuseAnalysis analyze_reuse(const EpochSampler& sampler, std::uint32_t epochs, NodeId node) {
  ReuseAnalysis analysis;
  const std::uint32_t I = sampler.iterations_per_epoch();
  std::unordered_map<SampleId, IterId> last_access;
  last_access.reserve(sampler.config().num_samples / sampler.config().nodes + 1);

  double sum = 0.0;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    for (std::uint32_t h = 0; h < I; ++h) {
      const IterId now = sampler.global_iter(e, h);
      for (const SampleId s : sampler.node_batch(e, h, node)) {
        const auto it = last_access.find(s);
        if (it != last_access.end()) {
          const std::uint64_t distance = now - it->second;
          analysis.histogram.add(distance);
          sum += static_cast<double>(distance);
          ++analysis.pairs;
          it->second = now;
        } else {
          last_access.emplace(s, now);
        }
      }
    }
  }
  if (analysis.pairs > 0) {
    analysis.mean_distance = sum / static_cast<double>(analysis.pairs);
    analysis.fraction_above_1000 = analysis.histogram.fraction_above(1000);
    analysis.fraction_beyond_epoch = analysis.histogram.fraction_above(I - 1);
  }
  return analysis;
}

}  // namespace lobster::data
