// Streaming statistics, percentile summaries and histograms.
//
// Used throughout the pipeline simulator to accumulate per-iteration timings
// (Fig. 8c batch-time distribution, GPU utilisation, etc.) and by the data
// module for the reuse-distance histogram (Fig. 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lobster {

/// Welford's online mean/variance with min/max tracking. O(1) memory.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains all samples; provides exact percentiles. Use for bounded series
/// (per-iteration times across a run).
class Series {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept;

  /// Exact percentile via linear interpolation between order statistics;
  /// q in [0, 100]. Returns 0 on an empty series.
  double percentile(double q) const;

  const std::vector<double>& values() const noexcept { return values_; }

 private:
  std::vector<double> values_;
  // Sorted copy cache; rebuilt lazily on percentile queries.
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width linear histogram over [lo, hi); values outside are clamped
/// into the first/last bin. Also tracks exact count and sum.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  /// Center of bin i.
  double bin_center(std::size_t i) const;
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t total() const noexcept { return total_; }

  /// Fraction of samples with value > threshold (bin-resolution estimate on
  /// interior thresholds, exact when threshold aligns with a bin edge).
  double fraction_above(double threshold) const;

  /// Renders an ASCII bar chart, one line per bin.
  std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Log2-bucketed histogram for long-tailed quantities (reuse distances).
class Log2Histogram {
 public:
  explicit Log2Histogram(std::size_t max_bits = 40) : counts_(max_bits + 1, 0) {}

  void add(std::uint64_t value) noexcept;

  std::size_t buckets() const noexcept { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  /// Lower bound of bucket i (0, 1, 2, 4, 8, ...).
  std::uint64_t bucket_lo(std::size_t i) const noexcept;
  std::uint64_t total() const noexcept { return total_; }
  double fraction_above(std::uint64_t threshold) const;

  std::string render(std::size_t max_bar_width = 50) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> raw_;  // exact values, for fraction_above
  std::uint64_t total_ = 0;
};

}  // namespace lobster
