#include "pipeline/multi_job.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "cache/prefetcher.hpp"
#include "cache/tiered_cache.hpp"
#include "common/rng.hpp"
#include "core/perf_model.hpp"
#include "core/preproc_model.hpp"
#include "core/thread_allocator.hpp"
#include "pipeline/trainer_model.hpp"

namespace lobster::pipeline {

namespace {

using baselines::ThreadPolicy;

double multi_io_noise(std::uint64_t seed, std::uint64_t slot, NodeId node, GpuId gpu,
                      double sigma) {
  if (sigma <= 0.0) return 1.0;
  Rng rng(derive_seed(seed, slot, (static_cast<std::uint64_t>(node) << 20) | gpu, 0x3027ULL));
  return std::exp(rng.normal(0.0, sigma) - sigma * sigma / 2.0);
}

bool multi_burst(std::uint64_t seed, std::uint64_t slot, NodeId node, double probability) {
  if (probability <= 0.0) return false;
  Rng rng(derive_seed(seed, slot, node, 0xB0057ULL));
  return rng.uniform() < probability;
}

/// Per-job state: its own deterministic sample stream and compute model.
struct Job {
  std::unique_ptr<data::EpochSampler> sampler;
  std::unique_ptr<data::FutureAccessOracle> oracle;
  std::unique_ptr<cache::Prefetcher> prefetcher;
  TrainerModel trainer;
  std::unique_ptr<RunMetrics> metrics;
};

}  // namespace

MultiJobResult simulate_multi_job(const MultiJobConfig& config) {
  const auto& preset = config.preset;
  const auto& strategy = config.strategy;
  if (config.jobs.empty()) throw std::invalid_argument("simulate_multi_job: no jobs");
  if (preset.epochs == 0) throw std::invalid_argument("simulate_multi_job: epochs == 0");

  const data::SampleCatalog catalog(preset.dataset, preset.seed);
  const std::uint16_t gpus = preset.cluster.gpus_per_node;
  const std::uint32_t total_gpus = preset.cluster.total_gpus();

  // ---- per-job streams over the shared dataset
  std::vector<Job> jobs;
  jobs.reserve(config.jobs.size());
  for (std::size_t j = 0; j < config.jobs.size(); ++j) {
    Job job;
    data::SamplerConfig sampler_config;
    sampler_config.num_samples = catalog.size();
    sampler_config.nodes = preset.cluster.nodes;
    sampler_config.gpus_per_node = gpus;
    sampler_config.batch_size = preset.batch_size;
    sampler_config.seed = derive_seed(preset.seed, 0x10BB5ULL, config.jobs[j].sampler_stream + j);
    job.sampler = std::make_unique<data::EpochSampler>(sampler_config);
    job.oracle =
        std::make_unique<data::FutureAccessOracle>(*job.sampler, config.oracle_window_epochs);
    if (strategy.prefetching) {
      job.prefetcher = std::make_unique<cache::Prefetcher>(*job.sampler, catalog,
                                                           strategy.prefetch_lookahead);
    }
    job.trainer = TrainerModel::by_name(config.jobs[j].model);
    jobs.push_back(std::move(job));
  }
  const std::uint32_t I = jobs.front().sampler->iterations_per_epoch();
  for (auto& job : jobs) {
    job.metrics = std::make_unique<RunMetrics>(preset.epochs, I, total_gpus);
  }

  // ---- shared substrate: merged oracle, directory, tiered caches
  std::vector<const data::AccessOracle*> members;
  for (const auto& job : jobs) members.push_back(job.oracle.get());
  const data::MergedAccessOracle merged(members);

  std::unique_ptr<cache::CacheDirectory> directory;
  if (strategy.distributed_cache || strategy.eviction_policy == "lobster") {
    directory = std::make_unique<cache::CacheDirectory>(preset.cluster.nodes);
  }
  std::vector<std::unique_ptr<cache::TieredNodeCache>> caches;
  for (NodeId n = 0; n < preset.cluster.nodes; ++n) {
    caches.push_back(std::make_unique<cache::TieredNodeCache>(
        n, preset.cluster.cache_bytes, preset.cluster.ssd_cache_bytes, strategy.eviction_policy,
        strategy.eviction_policy, catalog, directory.get(), &merged, I));
  }

  // ---- decision models (shared across jobs; T_train varies per job)
  const storage::StorageModel storage(preset.storage);
  const core::PreprocGroundTruth preproc_truth(preset.preproc);
  const auto mean_bytes = static_cast<Bytes>(catalog.mean_bytes());
  const core::PreprocModelPortfolio portfolio(
      preproc_truth, {std::max<Bytes>(mean_bytes / 2, 1), mean_bytes, mean_bytes * 2},
      std::max<std::uint32_t>(2, preset.cluster.cpu_threads / gpus), 3, preset.seed);
  const std::uint32_t knee = portfolio.optimal_threads(mean_bytes);

  MultiJobResult result;
  result.iterations_per_epoch = I;

  // ---- round-robin slots: slot s runs job (s % J) at iteration (s / J)
  const std::uint64_t slots =
      static_cast<std::uint64_t>(preset.epochs) * I * jobs.size();
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    const std::size_t j = slot % jobs.size();
    Job& job = jobs[j];
    const auto flat_iter = static_cast<std::uint32_t>(slot / jobs.size());
    const std::uint32_t epoch = flat_iter / I;
    const std::uint32_t h = flat_iter % I;
    const IterId now = job.sampler->global_iter(epoch, h);

    if (h == 0 && j == 0) {
      for (auto& inner : jobs) inner.oracle->rebase(epoch);
      for (auto& node_cache : caches) node_cache->on_epoch(now);
    }

    IterationRecord record;
    record.iter = now;
    record.epoch = epoch;
    record.gpus.resize(total_gpus);

    // ---- classification + cache fill (per node, this job's batches)
    std::vector<std::vector<core::GpuDemand>> demands(caches.size());
    storage::Contention contention;
    contention.pfs_readers_cluster = 0;
    for (NodeId n = 0; n < preset.cluster.nodes; ++n) {
      demands[n].resize(gpus);
      auto& node_cache = *caches[n];
      std::vector<std::vector<SampleId>> batches(gpus);
      for (GpuId g = 0; g < gpus; ++g) {
        batches[g] = job.sampler->minibatch(epoch, h, n, g);
        for (const SampleId s : batches[g]) node_cache.pin(s);
      }
      for (GpuId g = 0; g < gpus; ++g) {
        auto& demand = demands[n][g];
        auto& gpu_record = record.gpus[flat_gpu_rank({n, g}, gpus)];
        demand.samples = static_cast<std::uint32_t>(batches[g].size());
        for (const SampleId s : batches[g]) {
          const Bytes size = catalog.sample_bytes(s);
          const auto hit = node_cache.access(s, now);
          if (hit == cache::TierHit::kMemory) {
            demand.bytes.local += size;
            ++gpu_record.local_hits;
            continue;
          }
          if (hit == cache::TierHit::kSsd) {
            demand.bytes.ssd += size;
            ++gpu_record.ssd_hits;
            continue;
          }
          const bool remote = strategy.distributed_cache && directory != nullptr &&
                              directory->held_elsewhere(s, n);
          if (remote) {
            demand.bytes.remote += size;
            ++gpu_record.remote_hits;
          } else {
            demand.bytes.pfs += size;
            ++gpu_record.pfs_misses;
          }
          node_cache.insert(s, now, merged.reuse_distance_on_node(s, n, now));
        }
        demand.pending_requests = demand.bytes.remote + demand.bytes.pfs;
        gpu_record.bytes = demand.bytes;
        if (demand.bytes.pfs > 0) ++contention.pfs_readers_cluster;
      }
    }
    contention.pfs_readers_cluster =
        std::max<std::uint32_t>(contention.pfs_readers_cluster, 1);

    // ---- per-node thread decision + stage times for this job's iteration
    const core::PerfModel perf(storage, portfolio, job.trainer.t_train);
    Seconds t_max = 0.0;
    Seconds t_min = std::numeric_limits<Seconds>::infinity();
    bool loading_bottleneck = false;

    for (NodeId n = 0; n < preset.cluster.nodes; ++n) {
      storage::Contention node_contention = contention;
      node_contention.local_readers_node = node_contention.ssd_readers_node = 0;
      node_contention.remote_readers_node = node_contention.pfs_readers_node = 0;
      for (const auto& d : demands[n]) {
        if (d.bytes.local > 0) ++node_contention.local_readers_node;
        if (d.bytes.ssd > 0) ++node_contention.ssd_readers_node;
        if (d.bytes.remote > 0) ++node_contention.remote_readers_node;
        if (d.bytes.pfs > 0) ++node_contention.pfs_readers_node;
      }
      node_contention.local_readers_node =
          std::max<std::uint32_t>(node_contention.local_readers_node, 1);
      node_contention.ssd_readers_node =
          std::max<std::uint32_t>(node_contention.ssd_readers_node, 1);
      node_contention.remote_readers_node =
          std::max<std::uint32_t>(node_contention.remote_readers_node, 1);
      node_contention.pfs_readers_node =
          std::max<std::uint32_t>(node_contention.pfs_readers_node, 1);

      // Thread split: fixed strategies keep their constant split; Lobster
      // runs Algorithm 1 against this job's T_train.
      std::vector<double> load_threads(gpus, 1.0);
      double preproc_per_gpu = 1.0;
      if (strategy.thread_policy == ThreadPolicy::kFixed) {
        const double load_total = strategy.fixed_load_threads;
        std::fill(load_threads.begin(), load_threads.end(),
                  load_total / static_cast<double>(gpus));
        preproc_per_gpu =
            std::max(1.0, (static_cast<double>(preset.cluster.cpu_threads) - load_total)) /
            static_cast<double>(gpus);
      } else {
        const std::uint32_t budget =
            preset.cluster.cpu_threads > knee * gpus + gpus
                ? preset.cluster.cpu_threads - knee * gpus
                : gpus;
        core::AllocatorConfig alloc_config;
        alloc_config.balance.total_load_threads = budget;
        const core::ThreadAllocator allocator(perf, alloc_config);
        const auto alloc = strategy.thread_policy == ThreadPolicy::kProportional
                               ? core::AllocationResult{
                                     allocator.proportional_allocation(demands[n]),
                                     {}, 0.0, false, 0}
                               : allocator.allocate(demands[n], knee, node_contention);
        for (GpuId g = 0; g < gpus; ++g) load_threads[g] = alloc.threads[g];
        preproc_per_gpu = knee;
      }

      const bool burst =
          multi_burst(preset.seed, slot, n, preset.noise.burst_probability);
      Seconds node_pipeline_max = 0.0;
      for (GpuId g = 0; g < gpus; ++g) {
        auto& gpu_record = record.gpus[flat_gpu_rank({n, g}, gpus)];
        const auto breakdown = storage.load_time_breakdown(
            demands[n][g].bytes, storage::ThreadAlloc::uniform(load_threads[g]),
            node_contention);
        const double noise =
            multi_io_noise(preset.seed, slot, n, g, preset.noise.io_sigma);
        Seconds load = breakdown.local + breakdown.ssd +
                       (breakdown.remote + breakdown.pfs) * noise;
        if (burst) {
          load = breakdown.local + breakdown.ssd +
                 (breakdown.remote + breakdown.pfs) * noise * preset.noise.burst_multiplier;
        }
        const Seconds preproc = preproc_truth.batch_time(
            preproc_per_gpu, demands[n][g].bytes.total(), demands[n][g].samples);
        const Seconds train = job.trainer.iteration_time(preset.seed, now, n, g);
        gpu_record.load = load;
        gpu_record.preproc = preproc;
        gpu_record.train = train;
        gpu_record.load_threads = load_threads[g];
        gpu_record.preproc_threads = preproc_per_gpu;
        const Seconds pipeline = load + preproc;
        if (pipeline > train) loading_bottleneck = true;
        const Seconds gpu_time = std::max(pipeline, train);
        t_max = std::max(t_max, gpu_time);
        t_min = std::min(t_min, gpu_time);
        node_pipeline_max = std::max(node_pipeline_max, pipeline);
      }

      // ---- post-iteration cache maintenance for this node
      caches[n]->unpin_all();
      if (strategy.reuse_sweep) {
        for (const SampleId s : job.sampler->node_batch(epoch, h, n)) {
          if (!caches[n]->peek(s)) continue;
          // Reuse-count across ALL jobs (merged view).
          if (merged.remaining_uses_on_node(s, n, now) == 0 &&
              !(directory != nullptr && directory->sole_holder(s, n) &&
                merged.needed_by_other_node(s, n, now))) {
            caches[n]->evict(s);
            continue;
          }
          const IterId distance = merged.reuse_distance_on_node(s, n, now);
          if (distance != kNeverIter && distance > static_cast<IterId>(2 * I - h)) {
            caches[n]->evict(s);
          }
        }
      }
      if (job.prefetcher != nullptr) {
        const auto& params = storage.params();
        const double derate =
            config.prefetch_bandwidth_fraction * strategy.staging_efficiency;
        const double cluster_share =
            params.pfs_cluster_bps / static_cast<double>(preset.cluster.nodes);
        double load_total = 0.0;
        for (const double t : load_threads) load_total += t;
        const double staging_threads =
            std::min(load_total, static_cast<double>(params.pfs.knee_threads()));
        const double pfs_bw =
            std::min(params.pfs.aggregate_bps(staging_threads), cluster_share) * derate;
        Bytes fetched_pfs = 0;
        Bytes fetched_remote = 0;
        for (const auto& d : demands[n]) {
          fetched_pfs += d.bytes.pfs;
          fetched_remote += d.bytes.remote;
        }
        const double pfs_capacity =
            std::max(0.0, t_max * pfs_bw - static_cast<double>(fetched_pfs));
        double remote_capacity = 0.0;
        if (strategy.distributed_cache && preset.cluster.nodes > 1) {
          remote_capacity = std::max(0.0, t_max * 0.5 * params.remote.peak_bps() * derate -
                                              static_cast<double>(fetched_remote));
        }
        const auto plan = job.prefetcher->plan(n, epoch, h, *caches[n], directory.get(),
                                               static_cast<Bytes>(remote_capacity),
                                               static_cast<Bytes>(pfs_capacity), preset.epochs);
        for (const auto& candidate : plan.fetches) {
          const IterId reuse = candidate.first_use > now ? candidate.first_use - now : 0;
          caches[n]->insert(candidate.sample, now, reuse);
        }
      }
    }

    record.duration = t_max;
    record.t_max = t_max;
    record.t_min = t_min;
    record.imbalanced = (t_max - t_min) > preset.imbalance_threshold * t_max;
    record.loading_bottleneck = loading_bottleneck;
    for (auto& gpu_record : record.gpus) gpu_record.idle = record.duration - gpu_record.train;
    result.total_time += record.duration;
    job.metrics->add(std::move(record));
  }

  for (auto& job : jobs) {
    result.per_job.push_back(std::move(*job.metrics));
  }
  result.combined_cache = {};
  for (const auto& node_cache : caches) {
    const auto& stats = node_cache->memory_stats();
    result.combined_cache.hits += stats.hits;
    result.combined_cache.misses += stats.misses;
    result.combined_cache.insertions += stats.insertions;
    result.combined_cache.evictions += stats.evictions;
    result.combined_cache.rejected_insertions += stats.rejected_insertions;
  }
  return result;
}

}  // namespace lobster::pipeline
