#include "sim/engine.hpp"

#include <stdexcept>

#include "common/strfmt.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace lobster::sim {

EventId Engine::schedule_at(Seconds at, EventFn fn) {
  if (at < now_) {
    throw std::invalid_argument(strf("Engine: schedule_at(%g) is before now (%g)", at, now_));
  }
  return queue_.schedule(at, std::move(fn));
}

EventId Engine::schedule_in(Seconds delay, EventFn fn) {
  if (delay < 0.0) throw std::invalid_argument("Engine: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::step() {
  if (!queue_.next_time().has_value()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  ++fired_;
#if !defined(LOBSTER_TELEMETRY_DISABLED)
  auto& tracer = telemetry::Tracer::instance();
  if (tracer.enabled()) {
    if (trace_track_ == 0) tracer_register_track();
    tracer.instant_at(telemetry::Category::kSim, LOBSTER_TRACE_NAME_ID("dispatch"),
                      trace_track_, now_, fired.id);
    LOBSTER_METRIC_COUNT("sim.events_fired", 1);
    // Callbacks run "at" the engine's virtual now: auto-domain events they
    // emit (cache touches, resource grants) land on this engine's timeline.
    const telemetry::VirtualTimeScope scope(trace_track_, now_);
    fired.fn();
    return true;
  }
#endif
  fired.fn();
  return true;
}

void Engine::tracer_register_track() {
#if !defined(LOBSTER_TELEMETRY_DISABLED)
  trace_track_ = telemetry::Tracer::instance().new_track(
      strf("sim.engine@%p", static_cast<const void*>(this)));
#endif
}

std::uint64_t Engine::run(Seconds until) {
  std::uint64_t count = 0;
  for (;;) {
    const auto next = queue_.next_time();
    if (!next.has_value() || *next > until) break;
    step();
    ++count;
  }
  return count;
}

}  // namespace lobster::sim
