// Plan serialization: the artifact Lobster's offline component hands to the
// online runtime (§4.5). A compact little-endian binary format with a magic
// header and version, so plans survive process (and machine) boundaries:
//
//   [magic u32][version u32][nodes u16][gpus u16]
//   [epochs u32][iters_per_epoch u32][batch u32][seed u64][iteration count u64]
//   then per iteration:
//     [iter u64]
//     per node: [preproc u32][#load u32][load...u32]
//               [#prefetch u32][prefetch...u32][#evict u32][evict...u32]
//
// Readers validate the header, every length field against the remaining
// buffer, and structural invariants (node count, per-GPU arrays), so a
// truncated or corrupted file fails loudly instead of yielding a bogus plan.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/plan.hpp"

namespace lobster::runtime {

inline constexpr std::uint32_t kPlanMagic = 0x4C425354;  // "LBST"
inline constexpr std::uint32_t kPlanVersion = 1;

/// Serializes a plan to bytes.
std::vector<std::byte> serialize_plan(const Plan& plan);

/// Parses a serialized plan. Throws std::runtime_error with a specific
/// message on any structural problem (bad magic, version, truncation,
/// inconsistent dimensions).
Plan deserialize_plan(const std::vector<std::byte>& bytes);

/// File convenience wrappers. Throw std::runtime_error on I/O failure.
void save_plan(const Plan& plan, const std::string& path);
Plan load_plan(const std::string& path);

}  // namespace lobster::runtime
