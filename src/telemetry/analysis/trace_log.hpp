// Normalized trace representation for offline analysis.
//
// A TraceLog is the analyzer-facing view of one recording session,
// obtainable two ways that yield identical results:
//  * round-tripping a Chrome-trace JSON artifact written by
//    telemetry/chrome_trace (the `--trace out.json` path), or
//  * consuming an in-memory TraceSnapshot straight from the Tracer
//    (tests, in-process diagnostics — no serialization detour).
//
// Events keep their exporter-assigned (pid, tid) coordinates; track names
// come from the "thread_name" metadata records. Drop accounting survives
// the round trip, so consumers can refuse to present a truncated timeline
// as a complete one.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace lobster::telemetry::analysis {

/// One normalized event. Phases mirror the exporter: 'X' complete span,
/// 'i' instant, 'C' counter (metadata records are folded into track names
/// and never appear here).
struct TraceLogEvent {
  std::string name;
  std::string category;
  char phase = 'i';
  int pid = 0;             ///< kWallPid or kVirtualPid
  std::uint32_t tid = 0;   ///< track id within the pid
  double ts_us = 0.0;      ///< begin timestamp, microseconds
  double dur_us = 0.0;     ///< 'X' only
  double value = 0.0;      ///< 'C' only
  std::uint64_t arg = 0;   ///< free payload
};

struct TraceLog {
  std::vector<TraceLogEvent> events;  ///< sorted by (pid, tid, ts_us)
  /// (pid, tid) -> human-readable track name ("sim0/node1/pipeline", ...).
  std::map<std::pair<int, std::uint32_t>, std::string> track_names;
  std::uint64_t emitted = 0;  ///< records ever written by the producers
  std::uint64_t dropped = 0;  ///< records lost to ring overwrite

  bool complete() const noexcept { return dropped == 0; }
  bool empty() const noexcept { return events.empty(); }

  const std::string& track_name(int pid, std::uint32_t tid) const;
};

/// Parses exporter JSON text into a TraceLog. Throws std::runtime_error on
/// malformed JSON or a document without a traceEvents array.
TraceLog load_trace_text(std::string_view text);

/// Reads and parses a `--trace` artifact. Throws std::runtime_error when
/// the file is unreadable or malformed.
TraceLog load_trace_file(const std::string& path);

/// Builds the same view directly from a live snapshot (no JSON detour).
TraceLog from_snapshot(const TraceSnapshot& snapshot);

}  // namespace lobster::telemetry::analysis
