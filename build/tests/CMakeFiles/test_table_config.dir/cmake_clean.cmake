file(REMOVE_RECURSE
  "CMakeFiles/test_table_config.dir/test_table_config.cpp.o"
  "CMakeFiles/test_table_config.dir/test_table_config.cpp.o.d"
  "test_table_config"
  "test_table_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
