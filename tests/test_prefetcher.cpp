// Deterministic prefetch planning: nearest-first order, per-source budgets,
// resident skipping, GPU interleaving, end-of-training bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "cache/directory.hpp"
#include "cache/node_cache.hpp"
#include "cache/policies.hpp"
#include "cache/prefetcher.hpp"
#include "data/dataset.hpp"
#include "data/sampler.hpp"

namespace lobster::cache {
namespace {

struct PrefetcherFixture : public ::testing::Test {
  PrefetcherFixture()
      : catalog(data::DatasetSpec::uniform(512, 1000), 1),
        sampler(make_config()),
        cache(0, 500'000, make_policy("lru"), catalog, nullptr, nullptr,
              sampler.iterations_per_epoch()) {}

  static data::SamplerConfig make_config() {
    data::SamplerConfig config;
    config.num_samples = 512;
    config.nodes = 2;
    config.gpus_per_node = 2;
    config.batch_size = 8;
    config.seed = 5;
    return config;
  }

  data::SampleCatalog catalog;
  data::EpochSampler sampler;
  NodeCache cache;
};

TEST_F(PrefetcherFixture, RejectsZeroLookahead) {
  EXPECT_THROW(Prefetcher(sampler, catalog, 0), std::invalid_argument);
}

TEST_F(PrefetcherFixture, PlansNearestIterationsFirst) {
  const Prefetcher prefetcher(sampler, catalog, 4);
  const auto plan = prefetcher.plan(0, 0, 0, cache, nullptr, 0, 1'000'000, 10);
  ASSERT_FALSE(plan.fetches.empty());
  IterId prev = 0;
  for (const auto& fetch : plan.fetches) {
    EXPECT_GE(fetch.first_use, prev);
    prev = fetch.first_use;
  }
  // First planned samples belong to iteration 1 (the very next one).
  EXPECT_EQ(plan.fetches.front().first_use, 1U);
}

TEST_F(PrefetcherFixture, BudgetTruncatesPlan) {
  const Prefetcher prefetcher(sampler, catalog, 4);
  // Each sample is 1000 bytes; budget for exactly 5 samples.
  const auto plan = prefetcher.plan(0, 0, 0, cache, nullptr, 0, 5000, 10);
  EXPECT_EQ(plan.fetches.size(), 5U);
  EXPECT_EQ(plan.total_bytes, 5000U);
  EXPECT_EQ(plan.pfs_bytes, 5000U);
  EXPECT_EQ(plan.remote_bytes, 0U);
}

TEST_F(PrefetcherFixture, ZeroBudgetsPlanNothing) {
  const Prefetcher prefetcher(sampler, catalog, 4);
  const auto plan = prefetcher.plan(0, 0, 0, cache, nullptr, 0, 0, 10);
  EXPECT_TRUE(plan.fetches.empty());
}

TEST_F(PrefetcherFixture, SkipsResidentSamples) {
  const Prefetcher prefetcher(sampler, catalog, 2);
  // Make everything the node needs next iteration resident.
  for (const SampleId s : sampler.node_batch(0, 1, 0)) cache.insert(s, 0);
  const auto plan = prefetcher.plan(0, 0, 0, cache, nullptr, 0, 1'000'000, 10);
  for (const auto& fetch : plan.fetches) {
    EXPECT_FALSE(cache.peek(fetch.sample));
    EXPECT_EQ(fetch.first_use, 2U);  // iteration 1 fully resident
  }
}

TEST_F(PrefetcherFixture, NoDuplicateSamplesInPlan) {
  const Prefetcher prefetcher(sampler, catalog, 8);
  const auto plan = prefetcher.plan(0, 0, 0, cache, nullptr, 0, 1'000'000, 10);
  std::set<SampleId> unique;
  for (const auto& fetch : plan.fetches) {
    EXPECT_TRUE(unique.insert(fetch.sample).second);
  }
}

TEST_F(PrefetcherFixture, StopsAtEndOfTraining) {
  const Prefetcher prefetcher(sampler, catalog, 100);
  const std::uint32_t I = sampler.iterations_per_epoch();
  // Plan from the second-to-last iteration of the final epoch.
  const auto plan =
      prefetcher.plan(0, /*epoch=*/1, /*iteration=*/I - 2, cache, nullptr, 0, 1'000'000,
                      /*total_epochs=*/2);
  for (const auto& fetch : plan.fetches) {
    EXPECT_LT(fetch.first_use, static_cast<IterId>(2) * I);
  }
  // Only the final iteration remains plannable.
  for (const auto& fetch : plan.fetches) EXPECT_EQ(fetch.first_use, 2ULL * I - 1);
}

TEST_F(PrefetcherFixture, InterleavesAcrossGpus) {
  const Prefetcher prefetcher(sampler, catalog, 1);
  // Budget for 4 samples; with interleaving the plan must cover both GPUs
  // rather than exhausting GPU 0's batch first.
  const auto plan = prefetcher.plan(0, 0, 0, cache, nullptr, 0, 4000, 10);
  ASSERT_EQ(plan.fetches.size(), 4U);
  const auto g0 = sampler.minibatch(0, 1, 0, 0);
  const auto g1 = sampler.minibatch(0, 1, 0, 1);
  int from_g0 = 0;
  int from_g1 = 0;
  for (const auto& fetch : plan.fetches) {
    if (std::find(g0.begin(), g0.end(), fetch.sample) != g0.end()) ++from_g0;
    if (std::find(g1.begin(), g1.end(), fetch.sample) != g1.end()) ++from_g1;
  }
  EXPECT_EQ(from_g0, 2);
  EXPECT_EQ(from_g1, 2);
}

TEST_F(PrefetcherFixture, DirectoryRoutesToRemoteWithSeparateBudget) {
  const Prefetcher prefetcher(sampler, catalog, 1);
  CacheDirectory directory(2);
  const auto next_batch = sampler.node_batch(0, 1, 0);
  // First two next-iteration samples live on node 1.
  directory.add(next_batch[0], 1);
  directory.add(next_batch[1], 1);

  const auto plan =
      prefetcher.plan(0, 0, 0, cache, &directory, /*remote_budget=*/1000, /*pfs_budget=*/2000, 10);
  // Remote budget fits one sample; PFS budget two.
  EXPECT_EQ(plan.remote_bytes, 1000U);
  EXPECT_EQ(plan.pfs_bytes, 2000U);
  int remote = 0;
  for (const auto& fetch : plan.fetches) {
    if (fetch.source == FetchSource::kRemoteCache) ++remote;
  }
  EXPECT_EQ(remote, 1);
}

}  // namespace
}  // namespace lobster::cache
