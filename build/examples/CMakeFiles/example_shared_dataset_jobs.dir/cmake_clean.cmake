file(REMOVE_RECURSE
  "CMakeFiles/example_shared_dataset_jobs.dir/shared_dataset_jobs.cpp.o"
  "CMakeFiles/example_shared_dataset_jobs.dir/shared_dataset_jobs.cpp.o.d"
  "shared_dataset_jobs"
  "shared_dataset_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_shared_dataset_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
