#include "runtime/executor.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "cache/namespace.hpp"
#include "common/logging.hpp"
#include "common/strfmt.hpp"
#include "runtime/watchdog.hpp"
#include "telemetry/events.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

namespace lobster::runtime {

namespace {
/// Requests popped per queue-lock acquisition in the drain loop. Amortizes
/// the queue mutex without starving sibling workers of the same queue.
constexpr std::size_t kDrainBatch = 32;
}  // namespace

PlanExecutor::PlanExecutor(ExecutorConfig config, const data::SampleCatalog& catalog,
                           const data::EpochSampler& sampler, const Plan& plan,
                           DistributionManager* manager)
    : config_(config), catalog_(catalog), sampler_(sampler), plan_(plan), manager_(manager) {
  if (plan_.empty()) throw std::invalid_argument("PlanExecutor: empty plan");
  if (config_.node >= plan_.cluster_nodes) {
    throw std::invalid_argument("PlanExecutor: node not covered by plan");
  }
  if (const Status status = config_.balance.validate(); !status.ok()) {
    throw std::invalid_argument("PlanExecutor: " + status.to_string());
  }
}

bool PlanExecutor::has_sample(SampleId sample) const { return store_.contains(sample); }

std::unordered_set<SampleId> PlanExecutor::resident_samples() const { return store_.snapshot(); }

void PlanExecutor::execute_request(const LoadRequest& request, GpuAccounting& accounting) {
  const Bytes size = request.bytes;
  if (request.tier == FetchTier::kLocal) {
    accounting.local_bytes += size;
    ++accounting.local_hits;
    LOBSTER_TRACE_INSTANT(kExecutor, "fetch_local", size);
    LOBSTER_METRIC_COUNT("executor.local_bytes", size);
    return;
  }

  // Root of this request's causal trace (DESIGN.md §11): every attempt,
  // backoff, detour, serve (on the holder's rank) and PFS fallback below
  // becomes a child span. arg = sample, arg2 = iteration, so the analyzer
  // can group degraded fetches per iteration. Only the non-local tiers are
  // traced — the warm local path above (and its inlined drain-loop twin)
  // never reaches this point.
  telemetry::Span fetch(telemetry::SpanKind::kFetch, config_.node, request.sample);
  fetch.set_arg2(request.iter);

  // Multi-tenant runs address the shared KV tier and directory with keys
  // namespaced to the job's dataset (namespace 0 leaves the key untouched,
  // so single-job runs are byte-identical). The manager's peer fetches stay
  // in raw sample space: peers serve their own job's samples.
  const SampleId key = job_.ns == 0 ? request.sample
                                    : cache::make_namespaced_key(job_.ns, request.sample);
  cache::KvStore::PayloadPtr payload;
  if (request.tier == FetchTier::kRemote && kv_store_ != nullptr) {
    auto kv = kv_store_->get(key);  // zero-copy: shared reference
    if (kv.ok()) {
      payload = kv.take();
      if (config_.verify_payloads && !verify_sample_payload(request.sample, *payload)) {
        // Corruption quarantine (DESIGN.md §9): evict the bad entry so no
        // other worker is served it, then fall through to a fresh fetch.
        (void)kv_store_->erase(key);
        payload.reset();
        quarantined_.fetch_add(1, std::memory_order_relaxed);
        LOBSTER_METRIC_COUNT("executor.quarantined_payloads", 1);
        telemetry::EventLog::instance().emit(telemetry::EventKind::kQuarantine,
                                             config_.node, request.sample, 0, "kv_tier");
      }
    }
  }
  const bool kv_hit = payload != nullptr;
  bool remote_served = kv_hit;
  // Degraded routing (DESIGN.md §9): a holder that times out or trips its
  // circuit breaker is marked down in the directory — taking it out of
  // *every* subsequent routing decision, not just this request — and the
  // fetch detours to the next surviving holder, else falls to the PFS. A
  // holder that answers with a *corrupt* payload is only excluded from this
  // request's routing (the manager's strike counter handles repeat
  // offenders) and the retry goes to the next holder.
  bool failure_detour = false;
  if (!remote_served && request.tier == FetchTier::kRemote && manager_ != nullptr &&
      directory_ != nullptr) {
    // O(1) routing: ask the directory-recorded holder, nobody else. (The
    // old directory-less fallback — polling every peer in rank order — is
    // gone: without a residency map a "remote" request goes straight to the
    // KV tier above and then the PFS below.)
    std::uint64_t exclude_mask = 0;
    NodeId holder = directory_->peer_holder(key, config_.node, exclude_mask);
    while (holder != cache::CacheDirectory::kInvalidNode) {
      auto fetched = manager_->fetch_remote(request.sample, holder);
      if (fetched.ok()) {
        payload = std::make_shared<const std::vector<std::byte>>(fetched.take());
        remote_served = true;
        break;
      }
      const StatusCode cause = fetched.status().code();
      if (cause == StatusCode::kTimeout || cause == StatusCode::kPeerDown) {
        directory_->mark_node_down(holder);
        failure_detour = true;
        LOBSTER_METRIC_COUNT("executor.peer_down_reroutes", 1);
        telemetry::EventLog::instance().emit(telemetry::EventKind::kNodeDown, holder,
                                             request.sample, request.iter);
        holder = directory_->peer_holder(key, config_.node, exclude_mask);
        telemetry::Span::instant(telemetry::SpanKind::kDetour, config_.node,
                                 request.sample, holder);
        continue;  // next surviving holder (or kInvalidNode -> PFS)
      }
      if (cause == StatusCode::kCorrupt) {
        quarantined_.fetch_add(1, std::memory_order_relaxed);
        LOBSTER_METRIC_COUNT("executor.quarantined_payloads", 1);
        LOBSTER_METRIC_COUNT("executor.corrupt_reroutes", 1);
        telemetry::EventLog::instance().emit(telemetry::EventKind::kQuarantine,
                                             holder, request.sample, request.iter,
                                             "corrupt_reply");
        failure_detour = true;
        exclude_mask |= 1ULL << holder;
        holder = directory_->peer_holder(key, config_.node, exclude_mask);
        telemetry::Span::instant(telemetry::SpanKind::kDetour, config_.node,
                                 request.sample, holder);
        continue;  // next holder with a (hopefully) clean copy
      }
      break;  // authoritative miss / shutdown: PFS fallback
    }
  }
  // Last-line verification: every remote tier above already verified, so a
  // failure here means a bad payload slipped past tier-level quarantine.
  // Never deliver, insert, or publish it — drop it and re-materialize from
  // the PFS below.
  if (remote_served && config_.verify_payloads &&
      !verify_sample_payload(request.sample, *payload)) {
    payload.reset();
    remote_served = false;
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    LOBSTER_METRIC_COUNT("executor.quarantined_payloads", 1);
  }
  if (failure_detour) {
    ++accounting.degraded_fetches;
    LOBSTER_METRIC_COUNT("executor.degraded_fetches", 1);
  }
  if (remote_served) {
    accounting.remote_bytes += size;
    ++accounting.remote_fetches;
    LOBSTER_TRACE_INSTANT(kExecutor, "fetch_remote", size);
    LOBSTER_METRIC_COUNT("executor.remote_bytes", size);
  } else {
    // PFS path: materialize the sample content locally (by construction
    // this payload verifies — it is the same generator the check uses).
    // Arena-backed: the hot materialize path recycles buffers instead of
    // touching the global heap (common/payload_arena.hpp).
    telemetry::Span pfs(telemetry::SpanKind::kPfsFallback, config_.node, request.sample);
    pfs.set_arg2(request.iter);
    payload = make_sample_payload_shared(request.sample, size);
    accounting.pfs_bytes += size;
    ++accounting.pfs_fetches;
    LOBSTER_TRACE_INSTANT(kExecutor, "fetch_pfs", size);
    LOBSTER_METRIC_COUNT("executor.pfs_bytes", size);
  }

  store_.insert(request.sample);
  if (kv_store_ != nullptr && !remote_served) {
    // Best-effort publication: a capacity-bounded store may refuse (the
    // sample is still delivered locally either way). Only verified payloads
    // reach this point, so the KV tier never redistributes garbage.
    (void)kv_store_->put(key, std::move(payload));
  }
}

void PlanExecutor::execute_batch(const std::vector<LoadRequest>& requests,
                                 GpuAccounting& accounting) {
  // Partition the drained batch: KV hits are served inline; remote misses
  // group per directory-recorded holder for ONE multi-get envelope each;
  // cold misses batch-materialize from the PFS. Anything that needs the
  // full degraded-routing state machine goes through execute_request.
  std::vector<const LoadRequest*> pfs_batch;
  std::vector<const LoadRequest*> fallback;
  std::unordered_map<NodeId, std::vector<const LoadRequest*>> groups;

  for (const auto& request : requests) {
    if (request.tier != FetchTier::kRemote) {
      pfs_batch.push_back(&request);
      continue;
    }
    const SampleId key = job_.ns == 0 ? request.sample
                                      : cache::make_namespaced_key(job_.ns, request.sample);
    if (kv_store_ != nullptr) {
      auto kv = kv_store_->get(key);
      if (kv.ok()) {
        auto payload = kv.take();
        if (!config_.verify_payloads || verify_sample_payload(request.sample, *payload)) {
          accounting.remote_bytes += request.bytes;
          ++accounting.remote_fetches;
          LOBSTER_TRACE_INSTANT(kExecutor, "fetch_remote", request.bytes);
          LOBSTER_METRIC_COUNT("executor.remote_bytes", request.bytes);
          store_.insert(request.sample);
          continue;
        }
        // Corruption quarantine, same as the single path: evict the bad
        // entry and fall through to a fresh remote/PFS fetch.
        (void)kv_store_->erase(key);
        quarantined_.fetch_add(1, std::memory_order_relaxed);
        LOBSTER_METRIC_COUNT("executor.quarantined_payloads", 1);
        telemetry::EventLog::instance().emit(telemetry::EventKind::kQuarantine,
                                             config_.node, request.sample, 0, "kv_tier");
      }
    }
    if (manager_ == nullptr || directory_ == nullptr) {
      // No peer routing wired: a remote miss goes straight to the PFS,
      // exactly as in execute_request.
      pfs_batch.push_back(&request);
      continue;
    }
    const NodeId holder = directory_->peer_holder(key, config_.node, 0);
    if (holder == cache::CacheDirectory::kInvalidNode) {
      pfs_batch.push_back(&request);
      continue;
    }
    if (manager_->breaker_open(holder)) {
      // Known-down holder: the single path's fast-fail -> detour machinery
      // handles it (and counts the degradation).
      fallback.push_back(&request);
      continue;
    }
    groups[holder].push_back(&request);
  }

  // One multi-get envelope per holder. Per-sample failures keep the full
  // single-fetch vocabulary and drop to execute_request, which roots its
  // own kFetch trace (the batch's kMultiGet span is already closed by then).
  std::vector<SampleId> ids;
  for (auto& [holder, group] : groups) {
    if (group.size() < 2) {
      // A singleton batch gains nothing over the single-fetch path (and
      // that path keeps its richer per-sample trace tree).
      for (const LoadRequest* request : group) fallback.push_back(request);
      continue;
    }
    ids.clear();
    ids.reserve(group.size());
    for (const LoadRequest* request : group) ids.push_back(request->sample);
    const IterId iter = group.front()->iter;
    const auto results = manager_->fetch_remote_many(holder, ids, iter);
    for (std::size_t i = 0; i < group.size(); ++i) {
      const LoadRequest& request = *group[i];
      const auto& result = results[i];
      if (result.ok()) {
        // fetch_remote_many verified every payload in place; last-line
        // verify again only under the belt-and-braces flag, mirroring
        // execute_request.
        if (config_.verify_payloads &&
            !verify_sample_payload(request.sample, **result)) {
          quarantined_.fetch_add(1, std::memory_order_relaxed);
          LOBSTER_METRIC_COUNT("executor.quarantined_payloads", 1);
          fallback.push_back(&request);
          continue;
        }
        accounting.remote_bytes += request.bytes;
        ++accounting.remote_fetches;
        LOBSTER_TRACE_INSTANT(kExecutor, "fetch_remote", request.bytes);
        LOBSTER_METRIC_COUNT("executor.remote_bytes", request.bytes);
        store_.insert(request.sample);
        continue;
      }
      if (result.status().code() == StatusCode::kCorrupt) {
        // The batched reply carried garbage for this sample: quarantine it
        // (never delivered) and re-route via the single path, whose routing
        // excludes repeat offenders through the manager's strike counter.
        quarantined_.fetch_add(1, std::memory_order_relaxed);
        LOBSTER_METRIC_COUNT("executor.quarantined_payloads", 1);
        LOBSTER_METRIC_COUNT("executor.corrupt_reroutes", 1);
        telemetry::EventLog::instance().emit(telemetry::EventKind::kQuarantine, holder,
                                             request.sample, request.iter,
                                             "corrupt_reply");
      }
      // Timeout / peer-down / not-found / shutdown: the single path applies
      // mark-node-down, detours, and the PFS fallback per sample.
      fallback.push_back(&request);
    }
  }

  for (const LoadRequest* request : fallback) execute_request(*request, accounting);

  if (pfs_batch.empty()) return;
  if (telemetry::SpanLog::instance().enabled()) {
    // Spans armed: keep the per-sample kFetch/kPfsFallback trace shape the
    // span-analysis gates are written against.
    for (const LoadRequest* request : pfs_batch) execute_request(*request, accounting);
    return;
  }
  // Batched cold path: materialize straight into arena-backed buffers and
  // publish — no span bookkeeping, no per-sample heap traffic.
  for (const LoadRequest* request : pfs_batch) {
    auto payload = make_sample_payload_shared(request->sample, request->bytes);
    accounting.pfs_bytes += request->bytes;
    ++accounting.pfs_fetches;
    LOBSTER_TRACE_INSTANT(kExecutor, "fetch_pfs", request->bytes);
    LOBSTER_METRIC_COUNT("executor.pfs_bytes", request->bytes);
    store_.insert(request->sample);
    if (kv_store_ != nullptr) {
      const SampleId key = job_.ns == 0
                               ? request->sample
                               : cache::make_namespaced_key(job_.ns, request->sample);
      (void)kv_store_->put(key, std::move(payload));
    }
  }
}

ExecutionReport PlanExecutor::run() {
  LOBSTER_TRACE_SPAN_ARG(kExecutor, "executor.run", config_.node);
  ExecutionReport report;
  const std::uint16_t gpus = plan_.gpus_per_node;
  const std::uint32_t I = plan_.iterations_per_epoch;

  const std::uint32_t hw_threads =
      config_.balance.max_pool_threads > 0
          ? config_.balance.max_pool_threads
          : std::max(1U, std::thread::hardware_concurrency());
  ThreadPool loading_pool(1);
  ThreadPool preproc_pool(1);
  const std::uint32_t world =
      static_cast<std::uint32_t>(plan_.cluster_nodes) * gpus;
  const std::uint32_t flat_base = static_cast<std::uint32_t>(config_.node) * gpus;
  throughput_.assign(gpus, metrics::ThroughputWindow());
  feedback_ = core::IterationFeedback{};

  // Hoisted across iterations: the queues are fully drained every iteration,
  // so one construction serves the whole run; vectors below are reused to
  // avoid per-iteration allocation churn.
  GpuRequestQueues queues(gpus, config_.balance.queue_capacity);
  std::vector<GpuAccounting> accounting(gpus);
  std::vector<std::future<void>> futures;
  std::vector<std::future<void>> preproc_futures;
  std::vector<std::future<void>> prefetch_futures;
  std::vector<LoadRequest> enqueue_buffer;
  // Queue-overflow spill: filled single-threaded at enqueue, claimed by the
  // drain workers via a per-GPU atomic cursor (contention-free when empty).
  std::vector<std::vector<LoadRequest>> spill(gpus);
  const std::unique_ptr<std::atomic<std::size_t>[]> spill_next(
      new std::atomic<std::size_t>[gpus]);
  // Worker-local delivery logs, merged per GPU and dedup-checked once per
  // drain (the old global delivered-set mutex was taken per request).
  std::mutex merge_mutex;
  std::vector<std::vector<SampleId>> delivered(gpus);
  std::vector<std::uint64_t> delivered_count(gpus, 0);

  for (const auto& iteration : plan_.iterations) {
    LOBSTER_TRACE_SPAN_ARG(kExecutor, "iteration", iteration.iter);
    const auto iter_started = std::chrono::steady_clock::now();
    // The hook sees last iteration's measurements and may answer with an
    // active rebalance decision for THIS iteration (balancer harnesses run
    // the FeedbackBalancer / RebalanceBarrier exchange inside it).
    core::RebalancePlan rebalance;
    if (config_.iteration_hook) config_.iteration_hook(iteration.iter, feedback_, rebalance);
    // Iteration boundary = the checkpoint consistency point (DESIGN.md §13):
    // the previous iteration's delivery fully landed, this one has not
    // touched the tier. Watchdog paused across the cut so checkpoint I/O
    // can neither fire a spurious stall nor enter the deadline median.
    if (config_.checkpoint_hook) {
      WatchdogPause pause_guard(watchdog_);
      if (config_.checkpoint_hook(iteration.iter)) ++report.checkpoints;
    }
    if (watchdog_ != nullptr) watchdog_->begin_iteration(iteration.iter);
    const auto& node_plan = iteration.nodes.at(config_.node);
    const auto epoch = static_cast<std::uint32_t>(iteration.iter / I);
    const auto h = static_cast<std::uint32_t>(iteration.iter % I);

    // Quota mode: an active plan whose quotas cover the cluster re-splits
    // this iteration's global sample block by contiguous prefix-sum slices
    // (sampler quota_slice); quotas always partition the block, so
    // exactly-once delivery is preserved cluster-wide.
    const bool quota_mode = rebalance.active && rebalance.batch_quotas.size() == world;
    std::uint64_t quota_offset = 0;
    if (quota_mode) {
      for (std::uint32_t d = 0; d < flat_base; ++d) quota_offset += rebalance.batch_quotas[d];
    }

    // Effective per-queue thread counts: the plan's static assignment unless
    // the rebalance decision overrides it.
    std::vector<std::uint32_t> queue_threads(gpus, 1);
    for (GpuId g = 0; g < gpus; ++g) {
      if (g < node_plan.load_threads.size()) {
        queue_threads[g] = std::max<std::uint32_t>(node_plan.load_threads[g], 1);
      }
    }
    if (rebalance.active && rebalance.load_threads.size() >= flat_base + gpus) {
      for (GpuId g = 0; g < gpus; ++g) {
        queue_threads[g] = std::max<std::uint32_t>(rebalance.load_threads[flat_base + g], 1);
      }
    }

    // Capacity schedule for this node (thermal throttle / co-tenant /
    // degraded NIC): scales every virtual-time rate below.
    const double capacity_scale =
        std::max(config_.capacity.scale_at(static_cast<double>(iteration.iter)), 1e-3);

    IterationExecution stats;
    stats.iter = iteration.iter;
    stats.capacity_scale = capacity_scale;
    stats.rebalanced = quota_mode;

    // ---- enforce the plan's thread assignment (resize is a no-op when the
    // planned size is unchanged — no thundering-herd wakeups). Planned
    // threads are enforced as per-queue drain-task shares and in the
    // virtual-time model; the OS-thread count is additionally capped at the
    // core budget so oversubscription never turns planned bandwidth into
    // context-switch overhead.
    const std::uint32_t load_threads_total = std::max<std::uint32_t>(
        1, std::accumulate(queue_threads.begin(), queue_threads.end(), 0U));
    const std::uint32_t preproc_threads = std::max<std::uint32_t>(1, node_plan.preproc_threads);
    {
      LOBSTER_TRACE_SPAN_ARG(kExecutor, "resize_pools", load_threads_total);
      loading_pool.resize(std::min(load_threads_total, hw_threads));
      preproc_pool.resize(std::min(preproc_threads, hw_threads));
      LOBSTER_TRACE_COUNTER(kPool, "load_pool_size", load_threads_total);
      LOBSTER_TRACE_COUNTER(kPool, "preproc_pool_size", preproc_threads);
    }
    stats.load_pool_size = load_threads_total;
    stats.preproc_pool_size = preproc_threads;

    // ---- enqueue demand requests per GPU queue (bulk push; overflow spills
    // loudly instead of blocking or dropping)
    {
      LOBSTER_TRACE_SPAN(kExecutor, "enqueue");
      for (GpuId g = 0; g < gpus; ++g) {
        enqueue_buffer.clear();
        std::vector<SampleId> batch_samples;
        if (quota_mode) {
          const std::uint32_t quota = rebalance.batch_quotas[flat_base + g];
          batch_samples = sampler_.quota_slice(epoch, h, quota_offset, quota);
          quota_offset += quota;
        } else {
          batch_samples = sampler_.minibatch(epoch, h, config_.node, g);
        }
        for (const SampleId s : batch_samples) {
          LoadRequest request;
          request.sample = s;
          request.bytes = catalog_.sample_bytes(s);
          request.iter = iteration.iter;
          request.gpu = g;
          request.tier = store_.contains(s) ? FetchTier::kLocal
                         : (manager_ != nullptr || kv_store_ != nullptr ? FetchTier::kRemote
                                                                        : FetchTier::kPfs);
          enqueue_buffer.push_back(request);
        }
        stats.demand_requests += static_cast<std::uint32_t>(enqueue_buffer.size());
        const std::size_t accepted = queues.try_push_batch(g, enqueue_buffer);
        if (accepted < enqueue_buffer.size()) {
          spill[g].assign(enqueue_buffer.begin() + static_cast<std::ptrdiff_t>(accepted),
                          enqueue_buffer.end());
          stats.spilled_requests +=
              static_cast<std::uint32_t>(enqueue_buffer.size() - accepted);
          LOBSTER_METRIC_COUNT("executor.spilled_requests", enqueue_buffer.size() - accepted);
        }
        spill_next[g].store(0, std::memory_order_relaxed);
      }
    }
#if !defined(LOBSTER_TELEMETRY_DISABLED)
    // Sample the per-GPU queue depths at their peak (the §4.2 load signal).
    if (telemetry::active()) {
      auto& tracer = telemetry::Tracer::instance();
      const auto depths = queues.depths();
      for (GpuId g = 0; g < gpus; ++g) {
        tracer.counter_wall(telemetry::Category::kQueue,
                            tracer.intern(strf("queue_depth/gpu%u", g)),
                            static_cast<double>(depths[g]));
      }
    }
#endif

    // The previous iteration's prefetches ran on the loading pool overlapped
    // with the enqueue above; join them before draining so plan residency
    // ordering (prefetches land before the next eviction sweep) holds.
    for (auto& f : prefetch_futures) f.get();
    prefetch_futures.clear();

    // ---- drain queues with the planned per-queue thread counts. Workers
    // pop in batches, accumulate accounting and delivery logs privately,
    // and merge once per task — no shared state is touched per request.
    {
      LOBSTER_TRACE_SPAN_ARG(kExecutor, "drain", stats.demand_requests);
      futures.clear();
      // Surplus drain tasks beyond the pool's OS threads never run
      // concurrently — they'd only wake a worker to find the queue already
      // empty — so cap the per-queue task count at the real pool size. The
      // planned share still drives the virtual-time model and stats.
      const std::uint32_t pool_threads = std::min(load_threads_total, hw_threads);
      for (GpuId g = 0; g < gpus; ++g) {
        const std::uint32_t per_queue = std::min(pool_threads, queue_threads[g]);
        for (std::uint32_t t = 0; t < per_queue; ++t) {
          futures.push_back(loading_pool.submit(
              [this, g, &queues, &spill, &spill_next, &accounting, &merge_mutex, &delivered] {
                GpuAccounting local;
                std::vector<SampleId> my_delivered;
                std::vector<LoadRequest> batch;
                std::vector<LoadRequest> slow;
                batch.reserve(kDrainBatch);
                while (queues.try_pop_batch(g, batch, kDrainBatch) > 0) {
                  Bytes batch_local_bytes = 0;
                  slow.clear();
                  for (const auto& request : batch) {
                    my_delivered.push_back(request.sample);
                    // Local-tier fast path inlined: pure accounting, with
                    // telemetry batched below so the warm drain pays one
                    // metric-gate check per batch instead of per sample.
                    if (request.tier == FetchTier::kLocal) {
                      local.local_bytes += request.bytes;
                      ++local.local_hits;
                      batch_local_bytes += request.bytes;
                    } else {
                      slow.push_back(request);
                    }
                  }
                  if (batch_local_bytes > 0) {
                    LOBSTER_TRACE_INSTANT(kExecutor, "fetch_local", batch_local_bytes);
                    LOBSTER_METRIC_COUNT("executor.local_bytes", batch_local_bytes);
                  }
                  // Misses coalesce: one multi-get envelope per holder and
                  // batched PFS materialization instead of a round-trip (and
                  // a heap payload) per sample.
                  if (!slow.empty()) execute_batch(slow, local);
                  batch.clear();
                }
                // Claim spilled requests (if any) via the atomic cursor.
                const auto& overflow = spill[g];
                while (true) {
                  const std::size_t idx =
                      spill_next[g].fetch_add(1, std::memory_order_relaxed);
                  if (idx >= overflow.size()) break;
                  my_delivered.push_back(overflow[idx].sample);
                  execute_request(overflow[idx], local);
                }
                const std::scoped_lock lock(merge_mutex);
                accounting[g].merge(local);
                delivered[g].insert(delivered[g].end(), my_delivered.begin(),
                                    my_delivered.end());
              }));
        }
      }
      for (auto& f : futures) f.get();

      // Dedup check per GPU (the same sample legitimately goes to two GPUs;
      // within one queue it must be delivered exactly once).
      std::uint64_t delivered_total = 0;
      for (GpuId g = 0; g < gpus; ++g) {
        auto& log = delivered[g];
        std::sort(log.begin(), log.end());
        for (std::size_t i = 1; i < log.size(); ++i) {
          if (log[i] == log[i - 1]) ++report.duplicate_deliveries;
        }
        delivered_count[g] = log.size();
        delivered_total += log.size();
        log.clear();
        spill[g].clear();
      }
      report.samples_delivered += delivered_total;
      if (delivered_total < stats.demand_requests) {
        report.lost_deliveries += stats.demand_requests - delivered_total;
        log::warn("executor: iteration %llu lost %llu deliveries",
                  static_cast<unsigned long long>(iteration.iter),
                  static_cast<unsigned long long>(stats.demand_requests - delivered_total));
      }
    }

    // ---- preprocessing: one batch task per GPU on the preprocessing pool
    {
      LOBSTER_TRACE_SPAN(kExecutor, "preproc");
      preproc_futures.clear();
      std::atomic<std::uint64_t> preproc_checksum{0};
      for (GpuId g = 0; g < gpus; ++g) {
        preproc_futures.push_back(preproc_pool.submit([g, &preproc_checksum] {
          // Token CPU work standing in for decode+augment.
          std::uint64_t acc = g;
          for (int i = 0; i < 256; ++i) acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
          preproc_checksum.fetch_add(acc, std::memory_order_relaxed);
        }));
      }
      for (auto& f : preproc_futures) f.get();
    }

    // ---- virtual-time accounting (all rates scaled by the node's capacity
    // schedule, so a throttled node is slower in exactly the modeled way)
    Seconds load_max = 0.0;
    Seconds preproc_max = 0.0;
    Bytes node_bytes = 0;
    feedback_.iter = iteration.iter;
    feedback_.devices.clear();
    auto& registry = telemetry::MetricRegistry::instance();
    for (GpuId g = 0; g < gpus; ++g) {
      const auto& acct = accounting[g];
      const double threads = queue_threads[g];
      const Seconds load = (static_cast<double>(acct.local_bytes) / config_.rates.local_bps +
                            static_cast<double>(acct.remote_bytes) / config_.rates.remote_bps +
                            static_cast<double>(acct.pfs_bytes) / config_.rates.pfs_bps) /
                           (threads * capacity_scale);
      load_max = std::max(load_max, load);
      const Bytes gpu_bytes = acct.local_bytes + acct.remote_bytes + acct.pfs_bytes;
      node_bytes += gpu_bytes;
      const Seconds preproc = static_cast<double>(gpu_bytes) /
                              (config_.rates.preproc_bps * preproc_threads * capacity_scale);
      preproc_max = std::max(preproc_max, preproc);
      stats.local_hits += acct.local_hits;
      stats.remote_fetches += acct.remote_fetches;
      stats.pfs_fetches += acct.pfs_fetches;
      stats.degraded_fetches += acct.degraded_fetches;
      accounting[g] = GpuAccounting{};  // reset for the next iteration

      // Per-GPU feedback for the balancer: pipeline time (NOT clamped by
      // t_train), so the derived samples/s is the device's delivery
      // capability and stays quota-independent — shrink a slow GPU's quota
      // and its measured rate holds steady instead of chasing the quota.
      const Seconds busy = load + preproc;
      const std::uint32_t flat = flat_base + g;
      feedback_.devices.push_back(core::DeviceFeedback{flat, delivered_count[g], busy});
      throughput_[g].record(delivered_count[g], busy);
      registry.gauge("executor.gpu/" + std::to_string(flat) + "/throughput")
          .set(throughput_[g].windowed_rate());
      delivered_count[g] = 0;
    }
    stats.virtual_load = load_max;
    stats.virtual_preproc = preproc_max;
    stats.virtual_duration = std::max(config_.t_train, load_max + preproc_max);

    report.spilled_requests += stats.spilled_requests;
    report.degraded_fetches += stats.degraded_fetches;
    report.virtual_total += stats.virtual_duration;

    // ---- plan-driven cache maintenance
    LOBSTER_TRACE_SPAN_ARG(kExecutor, "cache_maintenance",
                           node_plan.evictions.size() + node_plan.prefetches.size());
    for (const SampleId s : node_plan.evictions) store_.erase(s);
    LOBSTER_METRIC_COUNT("executor.plan_evictions", node_plan.evictions.size());

    // Prefetches go to the loading pool and overlap the next iteration's
    // enqueue (joined there); their tier accounting is background work and
    // deliberately not part of the demand-path virtual time.
    for (const SampleId s : node_plan.prefetches) {
      LoadRequest request;
      request.sample = s;
      request.bytes = catalog_.sample_bytes(s);
      request.iter = iteration.iter;
      request.prefetch = true;
      request.tier = manager_ != nullptr || kv_store_ != nullptr ? FetchTier::kRemote
                                                                 : FetchTier::kPfs;
      ++stats.prefetch_requests;
      prefetch_futures.push_back(loading_pool.submit([this, request] {
        GpuAccounting prefetch_acct;
        execute_request(request, prefetch_acct);
      }));
    }

    if (watchdog_ != nullptr) watchdog_->end_iteration();
    stats.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 iter_started)
                       .count();
    report.iterations.push_back(stats);
  }
  for (auto& f : prefetch_futures) f.get();

  report.payload_failures = payload_failures_.load(std::memory_order_relaxed);
  report.quarantined_payloads = quarantined_.load(std::memory_order_relaxed);
  LOBSTER_METRIC_COUNT("executor.samples_delivered", report.samples_delivered);
  if (!job_.metric_prefix.empty()) {
    // Per-tenant slice of the same aggregates (dynamic names can't use the
    // per-literal metric macros).
    auto& registry = telemetry::MetricRegistry::instance();
    registry.counter(job_.metric_prefix + "samples_delivered").add(report.samples_delivered);
    registry.counter(job_.metric_prefix + "degraded_fetches").add(report.degraded_fetches);
    registry.counter(job_.metric_prefix + "quarantined_payloads")
        .add(report.quarantined_payloads);
  }
  return report;
}

}  // namespace lobster::runtime
