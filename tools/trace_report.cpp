// trace_report: offline analysis of `--trace` Chrome-trace artifacts and
// `lobster.spans.v1` causal span logs.
//
// Chrome-trace mode reads a trace written by any bench/example run with
// tracing enabled, reconstructs the per-run pipeline statistics
// (telemetry/analysis), and renders them as aligned text, CSV, or Markdown:
//
//   trace_report --trace fig07_trace.json
//   trace_report --trace out.json --format md --section breakdown
//   trace_report --trace out.json --section counters --warmup 2
//
// Cross-node span mode stitches `lobster.spans.v1` JSONL (written with
// `spans=<path>` or inside a flight-recorder incident bundle) into per-fetch
// span trees, reporting fetch latency distributions, degraded-slowdown
// attribution (timeout vs detour vs PFS, union-merged per iteration), and
// the slowest cross-rank critical paths (DESIGN.md §11):
//
//   trace_report --spans chaos_spans.jsonl
//   trace_report --incident incidents/incident-001 --section events
//
// Exit codes: 0 success, 1 usage error, 2 unreadable/malformed input,
// 3 input parsed but holds nothing analyzable.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/strfmt.hpp"
#include "metrics/report.hpp"
#include "telemetry/analysis/json.hpp"
#include "telemetry/analysis/report.hpp"
#include "telemetry/analysis/span_analysis.hpp"
#include "telemetry/analysis/trace_log.hpp"
#include "telemetry/chrome_trace.hpp"

namespace {

using lobster::Table;
using lobster::strf;
namespace analysis = lobster::telemetry::analysis;

struct Options {
  std::string trace_path;
  std::string spans_path;
  std::string incident_dir;
  analysis::Format format = analysis::Format::kText;
  std::string section = "all";
  analysis::AnalyzeOptions analyze;
  bool have_run_filter = false;
  std::uint32_t run_filter = 0;
  std::size_t top_n = 10;
};

constexpr const char* kSections[] = {"all",   "summary",     "breakdown", "gaps",
                                     "tiers", "attribution", "counters",  "fetches",
                                     "slowest", "events"};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --trace <out.json> [--format table|csv|md]\n"
               "          [--section all|summary|breakdown|gaps|tiers|attribution|counters]\n"
               "          [--warmup <epochs>] [--windows <n>] [--run <id>]\n"
               "       %s --spans <spans.jsonl> | --incident <bundle-dir>\n"
               "          [--format table|csv|md]\n"
               "          [--section all|fetches|attribution|slowest|events]\n"
               "          [--top <n>]\n",
               argv0, argv0);
  return 1;
}

bool parse_options(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--trace") {
      const char* v = value();
      if (v == nullptr) return false;
      options.trace_path = v;
    } else if (arg == "--spans") {
      const char* v = value();
      if (v == nullptr) return false;
      options.spans_path = v;
    } else if (arg == "--incident") {
      const char* v = value();
      if (v == nullptr) return false;
      options.incident_dir = v;
    } else if (arg == "--top") {
      const char* v = value();
      if (v == nullptr) return false;
      options.top_n = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--format") {
      const char* v = value();
      if (v == nullptr || !analysis::parse_format(v, options.format)) return false;
    } else if (arg == "--section") {
      const char* v = value();
      if (v == nullptr) return false;
      options.section = v;
      bool known = false;
      for (const char* s : kSections) known = known || options.section == s;
      if (!known) return false;
    } else if (arg == "--warmup") {
      const char* v = value();
      if (v == nullptr) return false;
      options.analyze.warmup_epochs = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--windows") {
      const char* v = value();
      if (v == nullptr) return false;
      options.analyze.tier_windows = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--run") {
      const char* v = value();
      if (v == nullptr) return false;
      options.have_run_filter = true;
      options.run_filter = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else {
      return false;
    }
  }
  const int modes = (!options.trace_path.empty() ? 1 : 0) +
                    (!options.spans_path.empty() ? 1 : 0) +
                    (!options.incident_dir.empty() ? 1 : 0);
  return modes == 1;
}

bool wants(const Options& options, const char* section) {
  return options.section == "all" || options.section == section;
}

void print_heading(const Options& options, const char* title) {
  switch (options.format) {
    case analysis::Format::kText: std::printf("== %s ==\n", title); break;
    case analysis::Format::kCsv: std::printf("# section: %s\n", title); break;
    case analysis::Format::kMarkdown: std::printf("## %s\n\n", title); break;
  }
}

void print_table(const Options& options, const char* title, const Table& table) {
  print_heading(options, title);
  std::fputs(analysis::render_table(table, options.format).c_str(), stdout);
  std::printf("\n");
}

Table counters_table(const analysis::TraceLog& log) {
  // Distinct wall-clock counters (queue depths, pool sizes, cache bytes):
  // sample count plus min/max/last of each series.
  std::vector<std::string> names;
  for (const auto& event : log.events) {
    if (event.pid != lobster::telemetry::kWallPid || event.phase != 'C') continue;
    bool seen = false;
    for (const auto& name : names) seen = seen || name == event.name;
    if (!seen) names.push_back(event.name);
  }
  Table table({"counter", "samples", "min", "max", "last"});
  for (const auto& name : names) {
    const auto series = analysis::wall_counter_series(log, name);
    double lo = series.front().second, hi = lo;
    for (const auto& [ts, v] : series) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    table.add_row({name, strf("%zu", series.size()), Table::num(lo), Table::num(hi),
                   Table::num(series.back().second)});
  }
  return table;
}

/// Per-kind digest of a `lobster.events.v1` JSONL file: count, time span,
/// and the detail of the most recent occurrence.
Table events_table(const std::string& path, bool& ok) {
  Table table({"event", "count", "first_ms", "last_ms", "last_detail"});
  std::ifstream in(path);
  ok = in.is_open();
  if (!ok) return table;
  struct KindStats {
    std::uint64_t count = 0;
    double first_us = 0.0, last_us = 0.0;
    std::string last_detail;
  };
  std::map<std::string, KindStats> kinds;  // ordered for stable output
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    analysis::JsonValue value;
    try {
      value = analysis::parse_json(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace_report: %s:%zu: %s\n", path.c_str(), line_no, e.what());
      ok = false;
      return table;
    }
    if (value.get_string("schema") != "lobster.events.v1") {
      std::fprintf(stderr, "trace_report: %s:%zu: not a lobster.events.v1 record\n",
                   path.c_str(), line_no);
      ok = false;
      return table;
    }
    auto& stats = kinds[value.get_string("kind", "?")];
    const double ts = value.get_number("ts_us");
    if (stats.count == 0) stats.first_us = ts;
    stats.last_us = ts;
    stats.last_detail = value.get_string("detail");
    ++stats.count;
  }
  for (const auto& [kind, stats] : kinds) {
    table.add_row({kind, strf("%llu", static_cast<unsigned long long>(stats.count)),
                   Table::num(stats.first_us / 1e3, 1), Table::num(stats.last_us / 1e3, 1),
                   stats.last_detail});
  }
  return table;
}

int run_span_mode(const Options& options) {
  std::string spans_path = options.spans_path;
  std::string events_path;
  if (!options.incident_dir.empty()) {
    spans_path = options.incident_dir + "/spans.jsonl";
    events_path = options.incident_dir + "/events.jsonl";
    std::ifstream manifest(options.incident_dir + "/manifest.json");
    if (manifest.is_open()) {
      std::stringstream buffer;
      buffer << manifest.rdbuf();
      try {
        const auto value = analysis::parse_json(buffer.str());
        std::printf("incident #%.0f: reason=%s at %.1f ms (%0.f spans, %0.f events, "
                    "%0.f heartbeats)\n\n",
                    value.get_number("seq"), value.get_string("reason", "?").c_str(),
                    value.get_number("ts_us") / 1e3, value.get_number("spans"),
                    value.get_number("events"), value.get_number("heartbeats"));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "trace_report: %s/manifest.json: %s\n",
                     options.incident_dir.c_str(), e.what());
        return 2;
      }
    } else {
      std::fprintf(stderr, "trace_report: cannot read %s/manifest.json\n",
                   options.incident_dir.c_str());
      return 2;
    }
  }

  std::vector<analysis::LoadedSpan> spans;
  try {
    spans = analysis::load_spans_file(spans_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_report: %s\n", e.what());
    return 2;
  }
  if (spans.empty()) {
    std::fprintf(stderr, "trace_report: %s holds no spans\n", spans_path.c_str());
    return 3;
  }
  const auto result = analysis::analyze_spans(spans);
  if (options.section == "all") {
    std::printf("%zu spans in %zu traces (%zu fetches: %zu degraded, %zu cross-rank, "
                "%zu malformed)\n\n",
                result.total_spans, result.traces.size(), result.fetch_traces,
                result.degraded_fetches, result.cross_rank_fetches,
                result.malformed_traces);
  }
  if (wants(options, "fetches")) {
    print_table(options, "fetch latency", analysis::fetch_latency_table(result));
  }
  if (wants(options, "attribution")) {
    print_table(options, "degraded-slowdown attribution",
                analysis::span_attribution_table(result));
  }
  if (wants(options, "slowest")) {
    print_table(options, "slowest fetch traces",
                analysis::slowest_traces_table(result, spans, options.top_n));
  }
  if (!events_path.empty() && wants(options, "events")) {
    bool ok = true;
    Table table = events_table(events_path, ok);
    if (!ok) return 2;
    if (table.rows() > 0) print_table(options, "events", table);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_options(argc, argv, options)) return usage(argv[0]);
  if (!options.spans_path.empty() || !options.incident_dir.empty()) {
    return run_span_mode(options);
  }

  analysis::TraceLog log;
  try {
    log = analysis::load_trace_file(options.trace_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_report: %s\n", e.what());
    return 2;
  }
  if (log.empty()) {
    std::fprintf(stderr, "trace_report: %s holds no events\n", options.trace_path.c_str());
    return 3;
  }
  if (!log.complete()) {
    std::fprintf(stderr,
                 "trace_report: warning: %llu of %llu events were dropped (ring "
                 "overflow) — the timeline is truncated; rerun with a larger "
                 "trace_buffer\n",
                 static_cast<unsigned long long>(log.dropped),
                 static_cast<unsigned long long>(log.emitted));
  }

  auto runs = analysis::analyze_runs(log, options.analyze);
  if (options.have_run_filter) {
    std::erase_if(runs, [&](const analysis::RunAnalysis& run) {
      return run.run_id != options.run_filter;
    });
  }
  if (runs.empty() && options.section != "counters") {
    std::fprintf(stderr, "trace_report: no analyzable simulator runs in %s\n",
                 options.trace_path.c_str());
    return 3;
  }

  if (wants(options, "summary")) {
    print_table(options, "summary", analysis::summary_table(runs));
  }
  for (const auto& run : runs) {
    const std::string tag = strf("run %u", run.run_id);
    if (wants(options, "breakdown")) {
      print_table(options, strf("%s: warm-epoch stage breakdown (per iteration)",
                                tag.c_str()).c_str(),
                  analysis::breakdown_table(run));
    }
    if (wants(options, "gaps")) {
      print_table(options, strf("%s: iteration gap (Eq. 2-3)", tag.c_str()).c_str(),
                  analysis::gap_table(run));
      if (options.format == analysis::Format::kText && !run.gap_frac_series.empty()) {
        std::printf("gap_frac  %s\n", lobster::metrics::render_series(run.gap_frac_series).c_str());
        std::printf("cache_use %s\n\n",
                    lobster::metrics::render_series(run.cache_used_series).c_str());
      }
    }
    if (wants(options, "attribution")) {
      print_table(options, strf("%s: critical-stage attribution", tag.c_str()).c_str(),
                  analysis::attribution_table(run));
    }
    if (wants(options, "tiers")) {
      print_table(options, strf("%s: windowed tier hits", tag.c_str()).c_str(),
                  analysis::tier_table(run));
    }
  }
  if (wants(options, "counters")) {
    Table table = counters_table(log);
    if (table.rows() > 0) print_table(options, "wall-clock counters", table);
  }
  return 0;
}
