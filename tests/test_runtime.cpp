// Online runtime: payloads, per-GPU queues, distribution manager over the
// bus, plan execution end-to-end (planner -> executor).
#include <gtest/gtest.h>

#include <thread>

#include "baselines/strategies.hpp"
#include "core/planner.hpp"
#include "runtime/distribution_manager.hpp"
#include "runtime/executor.hpp"
#include "runtime/request_queue.hpp"

namespace lobster::runtime {
namespace {

TEST(SamplePayload, RoundTripsAndDetectsCorruption) {
  auto payload = make_sample_payload(1234, 4096);
  EXPECT_EQ(payload.size(), 4096U);
  EXPECT_TRUE(verify_sample_payload(1234, payload));
  EXPECT_FALSE(verify_sample_payload(1235, payload));
  payload[100] ^= std::byte{0xFF};
  EXPECT_FALSE(verify_sample_payload(1234, payload));
}

TEST(SamplePayload, DifferentSamplesDiffer) {
  EXPECT_NE(make_sample_payload(1, 256), make_sample_payload(2, 256));
}

TEST(SamplePayload, TinyPayloads) {
  EXPECT_TRUE(verify_sample_payload(9, make_sample_payload(9, 0)));
  EXPECT_TRUE(verify_sample_payload(9, make_sample_payload(9, 2)));
}

TEST(GpuRequestQueues, PerQueueIsolationAndDepths) {
  GpuRequestQueues queues(3, 16);
  EXPECT_EQ(queues.gpus(), 3);
  LoadRequest request;
  request.sample = 7;
  queues.push(1, request);
  queues.push(1, request);
  queues.push(2, request);
  EXPECT_EQ(queues.depth(0), 0U);
  EXPECT_EQ(queues.depth(1), 2U);
  EXPECT_EQ(queues.depth(2), 1U);
  EXPECT_EQ(queues.depths(), (std::vector<std::size_t>{0, 2, 1}));
  EXPECT_FALSE(queues.try_pop(0).has_value());
  EXPECT_TRUE(queues.try_pop(1).has_value());
}

TEST(GpuRequestQueues, CloseAllUnblocks) {
  GpuRequestQueues queues(2, 4);
  std::thread consumer([&] {
    EXPECT_FALSE(queues.pop(0).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queues.close_all();
  consumer.join();
}

TEST(GpuRequestQueues, RangeChecks) {
  GpuRequestQueues queues(2, 4);
  EXPECT_THROW(queues.depth(2), std::out_of_range);
  EXPECT_THROW(GpuRequestQueues(0, 4), std::invalid_argument);
}

TEST(DistributionManager, ServesHeldSamples) {
  comm::MessageBus bus(2);
  DistributionManager server(bus.endpoint(1), [](SampleId s) { return s == 42; },
                             [](SampleId) { return Bytes{512}; });
  server.start();
  DistributionManager client(bus.endpoint(0), nullptr, nullptr);

  const auto payload = client.fetch_remote(42, 1);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(payload->size(), 512U);
  EXPECT_TRUE(verify_sample_payload(42, *payload));
  EXPECT_EQ(server.served_requests(), 1U);

  const auto missing = client.fetch_remote(7, 1);
  EXPECT_FALSE(missing.has_value());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);  // authoritative miss, not a timeout
  EXPECT_EQ(server.failed_requests(), 1U);
  server.stop();
}

TEST(DistributionManager, BidirectionalServing) {
  comm::MessageBus bus(2);
  DistributionManager node0(bus.endpoint(0), [](SampleId s) { return s % 2 == 0; },
                            [](SampleId) { return Bytes{128}; });
  DistributionManager node1(bus.endpoint(1), [](SampleId s) { return s % 2 == 1; },
                            [](SampleId) { return Bytes{128}; });
  node0.start();
  node1.start();
  EXPECT_TRUE(node0.fetch_remote(3, 1).has_value());   // odd held by node 1
  EXPECT_TRUE(node1.fetch_remote(4, 0).has_value());   // even held by node 0
  EXPECT_FALSE(node0.fetch_remote(4, 1).has_value());  // node 1 lacks evens
  node0.stop();
  node1.stop();
}

TEST(DistributionManager, StopIsIdempotent) {
  comm::MessageBus bus(1);
  DistributionManager manager(bus.endpoint(0), nullptr, nullptr);
  manager.start();
  manager.stop();
  manager.stop();
}

// ---- end-to-end: plan a small Lobster run, execute it with real threads.

struct ExecutorFixture : public ::testing::Test {
  static pipeline::ExperimentPreset small_preset() {
    auto preset = pipeline::preset_imagenet1k_single_node(4000.0);
    preset.epochs = 2;
    preset.cluster.gpus_per_node = 2;
    preset.cluster.cpu_threads = 16;
    preset.batch_size = 4;
    return preset;
  }
};

TEST_F(ExecutorFixture, PlannerProducesCompletePlan) {
  const auto preset = small_preset();
  const auto planned = core::plan_training(preset, baselines::LoaderStrategy::lobster());
  const auto& plan = planned.plan;
  EXPECT_EQ(plan.cluster_nodes, 1);
  EXPECT_EQ(plan.gpus_per_node, 2);
  EXPECT_EQ(plan.epochs, 2U);
  ASSERT_EQ(plan.total_iterations(),
            static_cast<std::size_t>(plan.epochs) * plan.iterations_per_epoch);
  for (const auto& iteration : plan.iterations) {
    ASSERT_EQ(iteration.nodes.size(), 1U);
    EXPECT_EQ(iteration.nodes[0].load_threads.size(), 2U);
    EXPECT_GE(iteration.nodes[0].preproc_threads, 1U);
  }
  EXPECT_GT(plan.total_prefetches(), 0U);
}

TEST_F(ExecutorFixture, ExecutesPlanCleanly) {
  const auto preset = small_preset();
  const auto planned = core::plan_training(preset, baselines::LoaderStrategy::lobster());

  const data::SampleCatalog catalog(preset.dataset, preset.seed);
  data::SamplerConfig sampler_config;
  sampler_config.num_samples = catalog.size();
  sampler_config.nodes = preset.cluster.nodes;
  sampler_config.gpus_per_node = preset.cluster.gpus_per_node;
  sampler_config.batch_size = preset.batch_size;
  sampler_config.seed = preset.seed;
  const data::EpochSampler sampler(sampler_config);

  ExecutorConfig config;
  config.node = 0;
  PlanExecutor executor(config, catalog, sampler, planned.plan);
  const auto report = executor.run();

  EXPECT_TRUE(report.clean());
  const std::uint64_t expected_demand = static_cast<std::uint64_t>(planned.plan.epochs) *
                                        planned.plan.iterations_per_epoch * 2 *
                                        preset.batch_size;
  EXPECT_EQ(report.samples_delivered, expected_demand);
  EXPECT_EQ(report.iterations.size(), planned.plan.total_iterations());
  EXPECT_GT(report.virtual_total, 0.0);

  // After the cold first iterations, prefetching should produce local hits.
  std::uint64_t hits = 0;
  for (const auto& iteration : report.iterations) hits += iteration.local_hits;
  EXPECT_GT(hits, 0U);
}

TEST_F(ExecutorFixture, ExecutorValidatesArguments) {
  const auto preset = small_preset();
  const data::SampleCatalog catalog(preset.dataset, preset.seed);
  data::SamplerConfig sampler_config;
  sampler_config.num_samples = catalog.size();
  sampler_config.nodes = 1;
  sampler_config.gpus_per_node = 2;
  sampler_config.batch_size = 4;
  const data::EpochSampler sampler(sampler_config);
  const Plan empty;
  ExecutorConfig config;
  EXPECT_THROW(PlanExecutor(config, catalog, sampler, empty), std::invalid_argument);
}

}  // namespace
}  // namespace lobster::runtime

// ---- plan serialization (appended coverage).

#include "runtime/plan_io.hpp"

namespace lobster::runtime {
namespace {

Plan small_plan() {
  Plan plan;
  plan.cluster_nodes = 2;
  plan.gpus_per_node = 2;
  plan.epochs = 1;
  plan.iterations_per_epoch = 2;
  plan.batch_size = 4;
  plan.seed = 99;
  for (IterId i = 0; i < 2; ++i) {
    IterationPlan iteration;
    iteration.iter = i;
    iteration.nodes.resize(2);
    for (auto& node : iteration.nodes) {
      node.preproc_threads = 6;
      node.load_threads = {3, 5};
      node.prefetches = {10, 20, 30};
      node.evictions = {7};
    }
    plan.iterations.push_back(iteration);
  }
  return plan;
}

TEST(PlanIo, RoundTripsExactly) {
  const Plan original = small_plan();
  const auto bytes = serialize_plan(original);
  const Plan loaded = deserialize_plan(bytes);
  EXPECT_EQ(loaded.cluster_nodes, original.cluster_nodes);
  EXPECT_EQ(loaded.gpus_per_node, original.gpus_per_node);
  EXPECT_EQ(loaded.epochs, original.epochs);
  EXPECT_EQ(loaded.iterations_per_epoch, original.iterations_per_epoch);
  EXPECT_EQ(loaded.batch_size, original.batch_size);
  EXPECT_EQ(loaded.seed, original.seed);
  ASSERT_EQ(loaded.iterations.size(), original.iterations.size());
  for (std::size_t i = 0; i < loaded.iterations.size(); ++i) {
    EXPECT_EQ(loaded.iterations[i].iter, original.iterations[i].iter);
    ASSERT_EQ(loaded.iterations[i].nodes.size(), 2U);
    for (std::size_t n = 0; n < 2; ++n) {
      EXPECT_EQ(loaded.iterations[i].nodes[n].preproc_threads, 6U);
      EXPECT_EQ(loaded.iterations[i].nodes[n].load_threads,
                original.iterations[i].nodes[n].load_threads);
      EXPECT_EQ(loaded.iterations[i].nodes[n].prefetches,
                original.iterations[i].nodes[n].prefetches);
      EXPECT_EQ(loaded.iterations[i].nodes[n].evictions,
                original.iterations[i].nodes[n].evictions);
    }
  }
}

TEST(PlanIo, FileRoundTrip) {
  const Plan original = small_plan();
  const std::string path = ::testing::TempDir() + "/lobster_plan.bin";
  save_plan(original, path);
  const Plan loaded = load_plan(path);
  EXPECT_EQ(loaded.total_prefetches(), original.total_prefetches());
}

TEST(PlanIo, RejectsBadMagicAndVersion) {
  auto bytes = serialize_plan(small_plan());
  auto corrupted = bytes;
  corrupted[0] = std::byte{0x00};
  EXPECT_THROW(deserialize_plan(corrupted), std::runtime_error);
  corrupted = bytes;
  corrupted[4] = std::byte{0xFF};  // version
  EXPECT_THROW(deserialize_plan(corrupted), std::runtime_error);
}

TEST(PlanIo, RejectsTruncation) {
  const auto bytes = serialize_plan(small_plan());
  for (const std::size_t keep : {std::size_t{3}, std::size_t{16}, bytes.size() - 1}) {
    std::vector<std::byte> truncated(bytes.begin(), bytes.begin() + keep);
    EXPECT_THROW(deserialize_plan(truncated), std::runtime_error) << "keep=" << keep;
  }
}

TEST(PlanIo, RejectsTrailingGarbage) {
  auto bytes = serialize_plan(small_plan());
  bytes.push_back(std::byte{0x42});
  EXPECT_THROW(deserialize_plan(bytes), std::runtime_error);
}

TEST(PlanIo, RejectsMissingFile) {
  EXPECT_THROW(load_plan("/nonexistent/path/plan.bin"), std::runtime_error);
}

TEST(PlanIo, PlannedRealPlanSurvivesRoundTripAndExecutes) {
  auto preset = pipeline::preset_imagenet1k_single_node(4000.0);
  preset.epochs = 1;
  preset.cluster.gpus_per_node = 2;
  preset.cluster.cpu_threads = 8;
  preset.batch_size = 4;
  const auto planned = core::plan_training(preset, baselines::LoaderStrategy::lobster());
  const std::string path = ::testing::TempDir() + "/real_plan.bin";
  save_plan(planned.plan, path);
  const Plan loaded = load_plan(path);

  const data::SampleCatalog catalog(preset.dataset, preset.seed);
  data::SamplerConfig sampler_config;
  sampler_config.num_samples = catalog.size();
  sampler_config.nodes = 1;
  sampler_config.gpus_per_node = 2;
  sampler_config.batch_size = 4;
  sampler_config.seed = preset.seed;
  const data::EpochSampler sampler(sampler_config);
  ExecutorConfig executor_config;
  PlanExecutor executor(executor_config, catalog, sampler, loaded);
  const auto report = executor.run();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.iterations.size(), loaded.total_iterations());
}

}  // namespace
}  // namespace lobster::runtime

// ---- robustness fuzzing: corrupted plans and payloads must fail loudly,
// never crash or silently succeed (appended coverage).

#include "common/rng.hpp"

namespace lobster::runtime {
namespace {

TEST(PlanIoFuzz, RandomByteFlipsNeverCrash) {
  const auto clean = serialize_plan(small_plan());
  Rng rng(31337);
  int accepted = 0;
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupted = clean;
    const auto flips = 1 + rng.bounded(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng.bounded(corrupted.size()));
      corrupted[pos] ^= static_cast<std::byte>(1 + rng.bounded(255));
    }
    try {
      const Plan plan = deserialize_plan(corrupted);
      // A flip in a payload field (thread count, sample id) can legitimately
      // decode; structure must still be coherent.
      ++accepted;
      for (const auto& iteration : plan.iterations) {
        ASSERT_EQ(iteration.nodes.size(), plan.cluster_nodes);
      }
    } catch (const std::runtime_error&) {
      // expected for structural corruption
    }
  }
  // Most random flips hit structure or lengths; a silent-accept-everything
  // parser would make accepted == 500.
  EXPECT_LT(accepted, 500);
}

TEST(PlanIoFuzz, RandomTruncationsNeverCrash) {
  const auto clean = serialize_plan(small_plan());
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const auto keep = static_cast<std::size_t>(rng.bounded(clean.size()));
    std::vector<std::byte> truncated(clean.begin(), clean.begin() + keep);
    EXPECT_THROW(deserialize_plan(truncated), std::runtime_error) << "keep=" << keep;
  }
}

TEST(PlanIoFuzz, RandomGarbageNeverCrash) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::byte> garbage(rng.bounded(256));
    for (auto& b : garbage) b = static_cast<std::byte>(rng.bounded(256));
    EXPECT_THROW(deserialize_plan(garbage), std::runtime_error);
  }
}

TEST(PayloadFuzz, AnySingleCorruptionIsDetected) {
  const SampleId sample = 777;
  const auto clean = make_sample_payload(sample, 2048);
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupted = clean;
    const auto pos = static_cast<std::size_t>(rng.bounded(corrupted.size()));
    const auto flip = static_cast<std::byte>(1 + rng.bounded(255));
    corrupted[pos] ^= flip;
    EXPECT_FALSE(verify_sample_payload(sample, corrupted)) << "pos=" << pos;
  }
}

TEST(PayloadFuzz, WrongLengthIsDetected) {
  const auto clean = make_sample_payload(5, 512);
  auto shorter = clean;
  shorter.pop_back();
  EXPECT_FALSE(verify_sample_payload(5, shorter));
  auto longer = clean;
  longer.push_back(std::byte{0});
  EXPECT_FALSE(verify_sample_payload(5, longer));
}

}  // namespace
}  // namespace lobster::runtime

// ---- plan-enforced pool sizing (appended coverage).

namespace lobster::runtime {
namespace {

TEST(PlanExecutor, EnforcesPlannedPoolSizesPerIteration) {
  Plan plan = small_plan();
  // Vary the thread plan across the two iterations.
  plan.iterations[0].nodes[0].load_threads = {2, 2};
  plan.iterations[0].nodes[0].preproc_threads = 3;
  plan.iterations[1].nodes[0].load_threads = {5, 1};
  plan.iterations[1].nodes[0].preproc_threads = 6;

  const data::SampleCatalog catalog(data::DatasetSpec::uniform(64, 256), plan.seed);
  data::SamplerConfig sampler_config;
  sampler_config.num_samples = 64;
  sampler_config.nodes = plan.cluster_nodes;
  sampler_config.gpus_per_node = plan.gpus_per_node;
  sampler_config.batch_size = plan.batch_size;
  sampler_config.seed = plan.seed;
  const data::EpochSampler sampler(sampler_config);

  ExecutorConfig config;
  config.node = 0;
  PlanExecutor executor(config, catalog, sampler, plan);
  const auto report = executor.run();
  ASSERT_EQ(report.iterations.size(), 2U);
  EXPECT_EQ(report.iterations[0].load_pool_size, 4U);
  EXPECT_EQ(report.iterations[0].preproc_pool_size, 3U);
  EXPECT_EQ(report.iterations[1].load_pool_size, 6U);
  EXPECT_EQ(report.iterations[1].preproc_pool_size, 6U);
  EXPECT_TRUE(report.clean());
}

}  // namespace
}  // namespace lobster::runtime

// ---- KV-store remote backend (appended coverage).

#include "cache/kv_store.hpp"

namespace lobster::runtime {
namespace {

TEST(KvStore, PutGetEraseRoundTrip) {
  cache::KvStore store(4);
  const auto miss = store.get(7);
  EXPECT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.put(7, make_sample_payload(7, 128)).ok());
  ASSERT_TRUE(store.contains(7));
  const auto payload = store.get(7);
  ASSERT_TRUE(payload.ok());
  ASSERT_NE(*payload, nullptr);
  EXPECT_TRUE(verify_sample_payload(7, **payload));
  EXPECT_EQ(store.size(), 1U);
  EXPECT_EQ(store.bytes(), 128U);
  EXPECT_TRUE(store.erase(7));
  EXPECT_FALSE(store.erase(7));
  EXPECT_EQ(store.bytes(), 0U);
  const auto stats = store.stats();
  EXPECT_EQ(stats.puts, 1U);
  EXPECT_EQ(stats.get_hits, 1U);
  EXPECT_EQ(stats.get_misses, 1U);
  EXPECT_EQ(stats.erases, 1U);
}

TEST(KvStore, OverwriteAdjustsBytes) {
  cache::KvStore store(2);
  store.put(1, std::vector<std::byte>(100));
  store.put(1, std::vector<std::byte>(40));
  EXPECT_EQ(store.size(), 1U);
  EXPECT_EQ(store.bytes(), 40U);
}

TEST(KvStore, RejectsNonPowerOfTwoShards) {
  EXPECT_THROW(cache::KvStore(3), std::invalid_argument);
  EXPECT_THROW(cache::KvStore(0), std::invalid_argument);
}

TEST(KvStore, ConcurrentPutsAndGetsAreConsistent) {
  cache::KvStore store(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (SampleId s = 0; s < 200; ++s) {
        store.put(static_cast<SampleId>(t * 1000 + s), make_sample_payload(s, 64));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(store.size(), 800U);
}

TEST(KvStore, ServesAsExecutorRemoteTier) {
  auto preset = pipeline::preset_imagenet1k_single_node(4000.0);
  preset.epochs = 1;
  preset.cluster.nodes = 2;
  preset.cluster.gpus_per_node = 2;
  preset.cluster.cpu_threads = 8;
  preset.batch_size = 4;
  const auto planned = core::plan_training(preset, baselines::LoaderStrategy::lobster());

  const data::SampleCatalog catalog(preset.dataset, preset.seed);
  data::SamplerConfig sampler_config;
  sampler_config.num_samples = catalog.size();
  sampler_config.nodes = 2;
  sampler_config.gpus_per_node = 2;
  sampler_config.batch_size = 4;
  sampler_config.seed = preset.seed;
  const data::EpochSampler sampler(sampler_config);

  cache::KvStore kv(8);
  // Pre-publish half the dataset, as another node's earlier run would.
  for (SampleId s = 0; s < catalog.size(); s += 2) {
    kv.put(s, make_sample_payload(s, catalog.sample_bytes(s)));
  }

  ExecutorConfig config;
  config.node = 0;
  PlanExecutor executor(config, catalog, sampler, planned.plan);
  // Remote-eligible requests: KV hits are served from the store; KV misses
  // go straight to the PFS (no directory is wired in, and peer routing is
  // directory-or-nothing — no manager needed at all for a pure KV tier).
  executor.set_kv_store(&kv);
  const auto report = executor.run();
  EXPECT_TRUE(report.clean());
  std::uint64_t remote = 0;
  for (const auto& iteration : report.iterations) remote += iteration.remote_fetches;
  EXPECT_GT(remote, 0U);  // KV-store hits count as remote-tier service
  EXPECT_GT(kv.stats().get_hits, 0U);
  EXPECT_GT(kv.stats().puts, catalog.size() / 2);  // fetched samples published
}

}  // namespace
}  // namespace lobster::runtime
