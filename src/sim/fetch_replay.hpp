// Discrete-event replay of one iteration's data-loading phase.
//
// The pipeline simulator prices a GPU's batch with the closed-form Eq. 1
// (per-tier bytes over contended rates). This module computes the same
// quantity *emergently*: each fetch becomes a job on a processor-sharing
// Resource (one per tier per node, plus one cluster-wide PFS resource), and
// each GPU runs `threads_j` concurrent workers that pull fetches from its
// queue. Contention then arises from the actual overlap of transfers rather
// than from an analytic cap — an independent cross-check of the analytic
// model (see bench/val_des_vs_analytic).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "storage/hierarchy.hpp"

namespace lobster::sim {

enum class FetchTier : std::uint8_t { kLocal, kSsd, kRemote, kPfs };

struct Fetch {
  Bytes bytes = 0;
  FetchTier tier = FetchTier::kLocal;
};

/// One GPU's work list and worker parallelism for the replay.
struct GpuWork {
  std::vector<Fetch> fetches;
  std::uint32_t threads = 1;
};

struct ReplayResult {
  /// Completion time of each GPU's last fetch (0 for an empty list).
  std::vector<Seconds> gpu_load_time;
  /// Max over GPUs — the node's loading makespan.
  Seconds node_makespan = 0.0;
  /// Total DES events fired (diagnostics).
  std::uint64_t events = 0;
};

/// Replays one node's iteration. Tier resources are sized from
/// `storage_params`: local/ssd/remote resources get their curve's peak as
/// aggregate capacity and single-stream rate as the per-job cap; the PFS
/// resource is capped by min(node view peak, cluster share for
/// `pfs_reader_nodes` concurrently-reading nodes).
ReplayResult replay_node_iteration(const std::vector<GpuWork>& gpus,
                                   const storage::StorageModel::Params& storage_params,
                                   std::uint32_t pfs_reader_nodes = 1);

}  // namespace lobster::sim
