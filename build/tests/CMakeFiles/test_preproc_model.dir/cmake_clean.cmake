file(REMOVE_RECURSE
  "CMakeFiles/test_preproc_model.dir/test_preproc_model.cpp.o"
  "CMakeFiles/test_preproc_model.dir/test_preproc_model.cpp.o.d"
  "test_preproc_model"
  "test_preproc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preproc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
