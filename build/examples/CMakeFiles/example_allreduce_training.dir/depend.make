# Empty dependencies file for example_allreduce_training.
# This may be replaced when dependencies are built.
