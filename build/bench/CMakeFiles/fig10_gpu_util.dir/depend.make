# Empty dependencies file for fig10_gpu_util.
# This may be replaced when dependencies are built.
