// Fault-injection harness: a 4-node online run that survives one node death.
//
// DESIGN.md §9: when a peer dies mid-epoch the executor must notice (fetch
// timeout → circuit breaker), mark the node down in the cache directory,
// and detour every affected fetch to a surviving replica or the PFS — with
// zero lost or duplicated deliveries and a bounded slowdown. This harness
// runs the same cluster twice, fault-free and with `victim` killed at
// iteration `kill_at`, and reports both runs side by side. It exits
// non-zero when any invariant breaks, so CI can gate on it directly.
//
// Results are emitted as a `lobster.bench_metrics.v1` JSON so CI can
// schema-check and archive them (`BENCH_fault.json`); see EXPERIMENTS.md
// "Fault-injection harness".
//
//   $ ./fault_injection [nodes=4] [gpus=2] [iters=8] [batch=16] [bytes=2048]
//       [victim=2] [kill_at=4] --metrics-json BENCH_fault.json
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "cache/directory.hpp"
#include "comm/bus.hpp"
#include "comm/fault.hpp"
#include "common/table.hpp"
#include "data/dataset.hpp"
#include "data/sampler.hpp"
#include "runtime/distribution_manager.hpp"
#include "runtime/executor.hpp"

using namespace lobster;

namespace {

using Clock = std::chrono::steady_clock;

struct ClusterShape {
  std::uint16_t nodes = 4;
  std::uint16_t gpus = 2;
  std::uint32_t iters = 8;
  std::uint32_t batch = 16;
  Bytes bytes = 2048;
  comm::Rank victim = 2;
  IterId kill_at = 4;
};

runtime::Plan make_plan(const ClusterShape& shape) {
  runtime::Plan plan;
  plan.cluster_nodes = shape.nodes;
  plan.gpus_per_node = shape.gpus;
  plan.epochs = 1;
  plan.iterations_per_epoch = shape.iters;
  plan.batch_size = shape.batch;
  plan.seed = 7;
  for (IterId i = 0; i < shape.iters; ++i) {
    runtime::IterationPlan iteration;
    iteration.iter = i;
    iteration.nodes.resize(shape.nodes);
    for (auto& node : iteration.nodes) {
      node.preproc_threads = 1;
      node.load_threads.assign(shape.gpus, 2);
    }
    plan.iterations.push_back(std::move(iteration));
  }
  return plan;
}

struct RunOutcome {
  runtime::ExecutionReport report;
  double wall_s = 0.0;
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t messages_dropped = 0;
};

/// Runs node 0's plan against `nodes - 1` serving peers. Samples are owned
/// by rank (s % nodes); the victim's set is replicated on the highest rank
/// so degraded routing has a surviving holder to detour to. When `inject`
/// is set, the victim stops answering from iteration `kill_at` on.
RunOutcome run_cluster(const ClusterShape& shape, bool inject) {
  const runtime::Plan plan = make_plan(shape);
  const std::uint32_t num_samples = shape.nodes * shape.iters * shape.gpus * shape.batch;
  const data::SampleCatalog catalog(data::DatasetSpec::uniform(num_samples, shape.bytes),
                                    plan.seed);
  data::SamplerConfig sampler_config;
  sampler_config.num_samples = num_samples;
  sampler_config.nodes = shape.nodes;
  sampler_config.gpus_per_node = shape.gpus;
  sampler_config.batch_size = shape.batch;
  sampler_config.seed = 7;
  const data::EpochSampler sampler(sampler_config);
  const auto backup = static_cast<std::uint16_t>(shape.nodes - 1);

  cache::CacheDirectory directory(shape.nodes);
  for (SampleId s = 0; s < catalog.size(); ++s) {
    const auto owner = static_cast<std::uint16_t>(s % shape.nodes);
    directory.add(s, owner);
    if (owner == shape.victim) directory.add(s, backup);
  }

  comm::MessageBus bus(shape.nodes);
  comm::FaultPlan fault(shape.nodes);
  bus.set_fault_plan(&fault);
  if (inject) fault.spec(shape.victim).kill_at_iter = shape.kill_at;

  const auto sizes = [&catalog](SampleId s) { return catalog.sample_bytes(s); };
  runtime::FetchPolicy policy;
  policy.timeout = 0.05;
  policy.max_retries = 1;
  policy.backoff_base = 0.005;
  policy.backoff_cap = 0.02;
  policy.breaker_threshold = 1;    // first timeout declares the peer dead
  policy.breaker_cooldown = 600.0; // no half-open probes during the run
  std::vector<std::unique_ptr<runtime::DistributionManager>> peers;
  for (std::uint16_t r = 1; r < shape.nodes; ++r) {
    auto has = [r, &shape, backup](SampleId s) {
      const auto owner = static_cast<std::uint16_t>(s % shape.nodes);
      if (owner == r) return true;
      return r == backup && owner == shape.victim;  // replica of the victim's set
    };
    peers.push_back(std::make_unique<runtime::DistributionManager>(bus.endpoint(r), has,
                                                                   sizes, policy));
    peers.back()->start();
  }
  runtime::DistributionManager client(bus.endpoint(0), nullptr, nullptr, policy);

  runtime::ExecutorConfig config;
  config.node = 0;
  config.balance.max_pool_threads = 4;
  config.verify_payloads = true;
  config.iteration_hook = [&fault](IterId iter, const core::IterationFeedback&,
                                   core::RebalancePlan&) { fault.on_iteration(iter); };
  runtime::PlanExecutor executor(config, catalog, sampler, plan);
  executor.set_manager(&client);
  executor.set_directory(&directory);

  RunOutcome outcome;
  const auto start = Clock::now();
  outcome.report = executor.run();
  outcome.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  for (auto& peer : peers) peer->stop();
  outcome.timeouts = client.timeouts();
  outcome.retries = client.retries();
  outcome.breaker_opens = client.breaker_opens();
  outcome.messages_dropped = fault.dropped_messages();
  return outcome;
}

template <typename Field>
std::uint64_t tier_sum(const runtime::ExecutionReport& report,
                       Field runtime::IterationExecution::* field) {
  std::uint64_t total = 0;
  for (const auto& iteration : report.iterations) total += iteration.*field;
  return total;
}

bench::MetricsRecord record_for(const std::string& workload, const char* strategy,
                                const RunOutcome& outcome) {
  bench::MetricsRecord record;
  record.panel = "fault_injection";
  record.workload = workload;
  record.strategy = strategy;
  record.warm_epoch_time_s = outcome.report.virtual_total;
  record.samples_per_s =
      outcome.wall_s > 0.0
          ? static_cast<double>(outcome.report.samples_delivered) / outcome.wall_s
          : 0.0;
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::parse_args(argc, argv);
  const bench::TraceSession trace_session(config);
  bench::MetricsJson metrics(config, "fault_injection");
  ClusterShape shape;
  shape.nodes = static_cast<std::uint16_t>(config.get_int("nodes", 4));
  shape.gpus = static_cast<std::uint16_t>(config.get_int("gpus", 2));
  shape.iters = static_cast<std::uint32_t>(config.get_int("iters", 8));
  shape.batch = static_cast<std::uint32_t>(config.get_int("batch", 16));
  shape.bytes = static_cast<Bytes>(config.get_int("bytes", 2048));
  shape.victim = static_cast<comm::Rank>(config.get_int("victim", 2));
  shape.kill_at = static_cast<IterId>(config.get_int("kill_at", shape.iters / 2));
  bench::warn_unconsumed(config);

  if (shape.nodes < 3 || shape.victim == 0 || shape.victim >= shape.nodes ||
      shape.victim == shape.nodes - 1U) {
    std::fprintf(stderr,
                 "error: need nodes>=3 and 0 < victim < nodes-1 (rank 0 runs the "
                 "plan, the highest rank is the replica holder)\n");
    return 2;
  }

  bench::print_header(
      "fault_injection: node death mid-epoch, degraded routing keeps delivering",
      "DESIGN.md §9 — breaker + directory down-mask bound the damage of a dead peer");
  std::printf("cluster: %u nodes x %u gpus, %u iters x batch %u, %llu B samples; "
              "kill node %u at iteration %llu\n\n",
              shape.nodes, shape.gpus, shape.iters, shape.batch,
              static_cast<unsigned long long>(shape.bytes), shape.victim,
              static_cast<unsigned long long>(shape.kill_at));

  const auto baseline = run_cluster(shape, /*inject=*/false);
  const auto faulted = run_cluster(shape, /*inject=*/true);

  const std::string workload =
      strf("nodes=%u gpus=%u iters=%u batch=%u bytes=%llu victim=%u kill_at=%llu",
           shape.nodes, shape.gpus, shape.iters, shape.batch,
           static_cast<unsigned long long>(shape.bytes), shape.victim,
           static_cast<unsigned long long>(shape.kill_at));

  Table table({"run", "delivered", "remote", "pfs", "degraded", "timeouts", "retries",
               "virtual_s", "wall_ms", "clean"});
  const auto add_row = [&table](const char* name, const RunOutcome& outcome) {
    const auto& report = outcome.report;
    table.add_row({name, std::to_string(report.samples_delivered),
                   std::to_string(tier_sum(report, &runtime::IterationExecution::remote_fetches)),
                   std::to_string(tier_sum(report, &runtime::IterationExecution::pfs_fetches)),
                   std::to_string(report.degraded_fetches), std::to_string(outcome.timeouts),
                   std::to_string(outcome.retries), Table::num(report.virtual_total, 4),
                   Table::num(outcome.wall_s * 1e3, 1), report.clean() ? "yes" : "NO"});
  };
  add_row("fault-free", baseline);
  add_row("node-death", faulted);
  bench::emit(config, "fault_injection", table);

  const double slowdown = baseline.report.virtual_total > 0.0
                              ? faulted.report.virtual_total / baseline.report.virtual_total
                              : 0.0;
  std::printf("modeled slowdown under one node death: %.2fx "
              "(breaker opened %llu time(s), fabric dropped %llu message(s))\n\n",
              slowdown, static_cast<unsigned long long>(faulted.breaker_opens),
              static_cast<unsigned long long>(faulted.messages_dropped));

  metrics.add(record_for(workload, "fault_free", baseline));
  metrics.add(record_for(workload, "node_death", faulted));
  metrics.set_scalar("slowdown_vs_fault_free", slowdown);
  metrics.set_scalar("degraded_fetches", static_cast<double>(faulted.report.degraded_fetches));
  metrics.set_scalar("payload_failures", static_cast<double>(faulted.report.payload_failures));
  metrics.set_scalar("lost_deliveries", static_cast<double>(faulted.report.lost_deliveries));
  metrics.set_scalar("duplicate_deliveries",
                     static_cast<double>(faulted.report.duplicate_deliveries));
  metrics.set_scalar("fetch_timeouts", static_cast<double>(faulted.timeouts));
  metrics.set_scalar("fetch_retries", static_cast<double>(faulted.retries));
  metrics.set_scalar("breaker_opens", static_cast<double>(faulted.breaker_opens));
  metrics.set_scalar("messages_dropped", static_cast<double>(faulted.messages_dropped));

  // ---- invariants (the CI gate).
  bool ok = true;
  const auto require = [&ok](bool condition, const char* what) {
    if (!condition) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    }
  };
  require(baseline.report.clean(), "fault-free run must be clean");
  require(baseline.report.degraded_fetches == 0, "fault-free run must not degrade");
  require(faulted.report.payload_failures == 0, "no payload may fail verification");
  require(faulted.report.lost_deliveries == 0, "no delivery may be lost");
  require(faulted.report.duplicate_deliveries == 0, "no delivery may duplicate");
  require(faulted.report.samples_delivered == baseline.report.samples_delivered,
          "every planned sample must still be delivered");
  require(faulted.report.degraded_fetches > 0,
          "the death must be noticed and routed around, not absorbed silently");
  require(faulted.report.virtual_total <= 2.0 * baseline.report.virtual_total,
          "modeled slowdown must stay within 2x of the fault-free run");
  if (ok) std::printf("all fault-injection invariants hold\n");
  return ok ? 0 : 1;
}
