#include "sim/capacity_profile.hpp"

#include <algorithm>
#include <stdexcept>

namespace lobster::sim {

CapacityProfile& CapacityProfile::at(double t, double scale) {
  if (scale < 0.0 || scale > 1.0) {
    throw std::invalid_argument("CapacityProfile: scale must be in [0, 1]");
  }
  // Insert after every step with t' <= t so a later at(t, s) overrides an
  // earlier one at the same time.
  const auto pos = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](double value, const Step& step) { return value < step.t; });
  steps_.insert(pos, Step{t, scale});
  return *this;
}

double CapacityProfile::scale_at(double t) const noexcept {
  double scale = 1.0;
  for (const Step& step : steps_) {
    if (step.t > t) break;
    scale = step.scale;
  }
  return scale;
}

double CapacityProfile::min_scale() const noexcept {
  double lowest = 1.0;
  for (const Step& step : steps_) lowest = std::min(lowest, step.scale);
  return lowest;
}

CapacityProfile CapacityProfile::constant(double scale) {
  CapacityProfile profile;
  profile.at(0.0, scale);
  return profile;
}

CapacityProfile CapacityProfile::thermal_throttle(double start, double ramp, double floor_scale) {
  if (ramp <= 0.0) throw std::invalid_argument("thermal_throttle: ramp must be positive");
  CapacityProfile profile;
  profile.at(start, 0.85).at(start + ramp, 0.65).at(start + 2.0 * ramp, floor_scale);
  return profile;
}

CapacityProfile CapacityProfile::co_tenant(double start, double end, double scale) {
  if (end <= start) throw std::invalid_argument("co_tenant: window must be non-empty");
  CapacityProfile profile;
  profile.at(start, scale).at(end, 1.0);
  return profile;
}

CapacityProfile CapacityProfile::degraded_nic(double start, double scale) {
  CapacityProfile profile;
  profile.at(start, scale);
  return profile;
}

}  // namespace lobster::sim
