// Discrete-event engine and processor-sharing resources: deterministic
// ordering, cancellation, exact PS completion times, per-stream caps.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace lobster::sim {
namespace {

TEST(EventQueue, OrdersByTimeThenSequence) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(2.0, [&] { fired.push_back(2); });
  queue.schedule(1.0, [&] { fired.push_back(1); });
  queue.schedule(1.0, [&] { fired.push_back(11); });  // same time, later seq
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 11, 2}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue queue;
  int fired = 0;
  const auto id = queue.schedule(1.0, [&] { ++fired; });
  queue.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));  // double cancel
  EXPECT_EQ(queue.live_count(), 1U);
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue queue;
  EXPECT_FALSE(queue.cancel(12345));
  EXPECT_FALSE(queue.cancel(kInvalidEvent));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue queue;
  const auto early = queue.schedule(1.0, [] {});
  queue.schedule(5.0, [] {});
  queue.cancel(early);
  ASSERT_TRUE(queue.next_time().has_value());
  EXPECT_DOUBLE_EQ(*queue.next_time(), 5.0);
}

TEST(Engine, ClockAdvancesToEventTimes) {
  Engine engine;
  std::vector<Seconds> times;
  engine.schedule_at(1.5, [&] { times.push_back(engine.now()); });
  engine.schedule_in(0.5, [&] { times.push_back(engine.now()); });
  engine.run();
  EXPECT_EQ(times, (std::vector<Seconds>{0.5, 1.5}));
  EXPECT_DOUBLE_EQ(engine.now(), 1.5);
}

TEST(Engine, RejectsPastScheduling) {
  Engine engine;
  engine.schedule_at(1.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(0.5, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  int chain = 0;
  engine.schedule_in(1.0, [&] {
    ++chain;
    engine.schedule_in(1.0, [&] {
      ++chain;
      engine.schedule_in(1.0, [&] { ++chain; });
    });
  });
  const auto fired = engine.run();
  EXPECT_EQ(fired, 3U);
  EXPECT_EQ(chain, 3);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, RunUntilStopsAtBound) {
  Engine engine;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) engine.schedule_at(i, [&] { ++fired; });
  engine.run(5.0);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(engine.pending_events(), 5U);
  engine.run();
  EXPECT_EQ(fired, 10);
}

TEST(Resource, SingleJobTakesBytesOverRate) {
  Engine engine;
  Resource resource(engine, "disk", 100.0);  // 100 B/s
  Seconds done_at = -1.0;
  resource.submit(500, [&](JobId, Seconds t) { done_at = t; });
  engine.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
  EXPECT_EQ(resource.bytes_completed(), 500U);
}

TEST(Resource, TwoEqualJobsShareBandwidth) {
  Engine engine;
  Resource resource(engine, "disk", 100.0);
  std::vector<Seconds> completions;
  resource.submit(500, [&](JobId, Seconds t) { completions.push_back(t); });
  resource.submit(500, [&](JobId, Seconds t) { completions.push_back(t); });
  engine.run();
  ASSERT_EQ(completions.size(), 2U);
  // Both progress at 50 B/s -> both finish at 10 s.
  EXPECT_NEAR(completions[0], 10.0, 1e-9);
  EXPECT_NEAR(completions[1], 10.0, 1e-9);
}

TEST(Resource, LateArrivalSlowsFirstJob) {
  Engine engine;
  Resource resource(engine, "disk", 100.0);
  Seconds first_done = -1.0;
  Seconds second_done = -1.0;
  resource.submit(500, [&](JobId, Seconds t) { first_done = t; });
  // At t=2 the first job has 300 B left; a second job arrives.
  engine.schedule_at(2.0, [&] {
    resource.submit(500, [&](JobId, Seconds t) { second_done = t; });
  });
  engine.run();
  // From t=2: both at 50 B/s. First finishes 300/50 = 6 s later (t=8);
  // second then runs alone: at t=8 it has 500-300=200 left at 100 B/s -> t=10.
  EXPECT_NEAR(first_done, 8.0, 1e-6);
  EXPECT_NEAR(second_done, 10.0, 1e-6);
}

TEST(Resource, PerStreamCapLimitsLoneJob) {
  Engine engine;
  Resource resource(engine, "pfs", 1000.0, /*per_stream_bps=*/100.0);
  Seconds done_at = -1.0;
  resource.submit(500, [&](JobId, Seconds t) { done_at = t; });
  engine.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);  // capped at 100 B/s despite 1000 capacity
}

TEST(Resource, ManyJobsRespectAggregateCapacity) {
  Engine engine;
  Resource resource(engine, "pfs", 1000.0, 100.0);
  std::vector<Seconds> completions;
  for (int i = 0; i < 20; ++i) {
    resource.submit(100, [&](JobId, Seconds t) { completions.push_back(t); });
  }
  engine.run();
  ASSERT_EQ(completions.size(), 20U);
  // 20 jobs share 1000 B/s -> 50 B/s each -> 2 s.
  for (const Seconds t : completions) EXPECT_NEAR(t, 2.0, 1e-6);
}

TEST(Resource, AbortCancelsCompletion) {
  Engine engine;
  Resource resource(engine, "disk", 100.0);
  bool fired = false;
  const auto id = resource.submit(500, [&](JobId, Seconds) { fired = true; });
  Seconds other_done = -1.0;
  resource.submit(500, [&](JobId, Seconds t) { other_done = t; });
  engine.schedule_at(1.0, [&] { EXPECT_TRUE(resource.abort(id)); });
  engine.run();
  EXPECT_FALSE(fired);
  // Other job: 1 s shared (50 B), then alone: 450/100 = 4.5 s -> t = 5.5.
  EXPECT_NEAR(other_done, 5.5, 1e-6);
  EXPECT_FALSE(resource.abort(id));  // already gone
}

TEST(Resource, ZeroByteJobCompletesImmediatelyViaEvent) {
  Engine engine;
  Resource resource(engine, "disk", 100.0);
  Seconds done_at = -1.0;
  resource.submit(0, [&](JobId, Seconds t) { done_at = t; });
  EXPECT_LT(done_at, 0.0);  // not yet: completion is event-driven
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(Resource, BusyTimeTracksActivePeriods) {
  Engine engine;
  Resource resource(engine, "disk", 100.0);
  resource.submit(200, [](JobId, Seconds) {});
  engine.run();  // busy 0..2
  EXPECT_NEAR(resource.busy_time(), 2.0, 1e-9);
  engine.schedule_at(5.0, [&] { resource.submit(100, [](JobId, Seconds) {}); });
  engine.run();  // idle 2..5, busy 5..6
  EXPECT_NEAR(resource.busy_time(), 3.0, 1e-9);
}

TEST(Resource, CompletionCanResubmit) {
  Engine engine;
  Resource resource(engine, "disk", 100.0);
  int completions = 0;
  std::function<void(JobId, Seconds)> again = [&](JobId, Seconds) {
    if (++completions < 3) resource.submit(100, again);
  };
  resource.submit(100, again);
  engine.run();
  EXPECT_EQ(completions, 3);
  EXPECT_NEAR(engine.now(), 3.0, 1e-6);
}

TEST(Resource, RejectsBadParameters) {
  Engine engine;
  EXPECT_THROW(Resource(engine, "x", 0.0), std::invalid_argument);
  EXPECT_THROW(Resource(engine, "x", 100.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace lobster::sim

// ---- randomized conservation property (appended coverage).

#include "common/rng.hpp"

namespace lobster::sim {
namespace {

class ResourceConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResourceConservation, AllBytesEventuallyComplete) {
  Engine engine;
  Resource resource(engine, "r", 1000.0, 250.0);
  Rng rng(GetParam());
  Bytes submitted = 0;
  std::uint64_t completions = 0;
  // Jobs arrive over a schedule; sizes and times random but deterministic.
  for (int i = 0; i < 50; ++i) {
    const Seconds at = rng.uniform(0.0, 10.0);
    const Bytes size = 1 + rng.bounded(5000);
    submitted += size;
    engine.schedule_at(at, [&, size] {
      resource.submit(size, [&](JobId, Seconds) { ++completions; });
    });
  }
  engine.run();
  EXPECT_EQ(completions, 50U);
  EXPECT_EQ(resource.bytes_completed(), submitted);
  EXPECT_EQ(resource.active_jobs(), 0U);
  // Throughput sanity: busy time is at least total bytes / capacity.
  EXPECT_GE(resource.busy_time() + 1e-9, static_cast<double>(submitted) / 1000.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResourceConservation, ::testing::Values(1ULL, 7ULL, 42ULL, 99ULL));

}  // namespace
}  // namespace lobster::sim

// ---- fetch replay (appended coverage).

#include "sim/fetch_replay.hpp"

namespace lobster::sim {
namespace {

storage::StorageModel::Params replay_params() {
  storage::StorageModel::Params params;
  params.local = storage::ThroughputCurve("local", 100.0, 800.0);
  params.ssd = storage::ThroughputCurve("ssd", 50.0, 400.0);
  params.remote = storage::ThroughputCurve("remote", 50.0, 200.0);
  params.pfs = storage::ThroughputCurve("pfs", 10.0, 40.0);
  params.pfs_cluster_bps = 100.0;
  params.ssd_latency = 0.0;
  params.remote_latency = 0.0;
  params.pfs_latency = 0.0;
  return params;
}

TEST(FetchReplay, SingleFetchMatchesSingleStreamRate) {
  std::vector<GpuWork> gpus(1);
  gpus[0].threads = 1;
  gpus[0].fetches = {{500, FetchTier::kLocal}};
  const auto result = replay_node_iteration(gpus, replay_params());
  // Lone local fetch: per-stream cap 100 B/s -> 5 s.
  EXPECT_NEAR(result.gpu_load_time[0], 5.0, 1e-9);
  EXPECT_NEAR(result.node_makespan, 5.0, 1e-9);
}

TEST(FetchReplay, ParallelWorkersOverlapFetches) {
  std::vector<GpuWork> gpus(1);
  gpus[0].fetches = {{100, FetchTier::kLocal}, {100, FetchTier::kLocal},
                     {100, FetchTier::kLocal}, {100, FetchTier::kLocal}};
  gpus[0].threads = 1;
  const Seconds serial = replay_node_iteration(gpus, replay_params()).node_makespan;
  gpus[0].threads = 4;
  const Seconds parallel = replay_node_iteration(gpus, replay_params()).node_makespan;
  EXPECT_NEAR(serial, 4.0, 1e-6);    // 4 x 1 s back-to-back
  EXPECT_NEAR(parallel, 1.0, 1e-6);  // 4 workers, each 100 B at 100 B/s
  EXPECT_LT(parallel, serial);
}

TEST(FetchReplay, SharedPfsCreatesCrossGpuContention) {
  std::vector<GpuWork> gpus(2);
  for (auto& gpu : gpus) {
    gpu.threads = 4;
    for (int i = 0; i < 4; ++i) gpu.fetches.push_back({40, FetchTier::kPfs});
  }
  // 8 concurrent PFS jobs share min(40, 100) = 40 B/s -> 5 B/s each -> 8 s.
  const auto result = replay_node_iteration(gpus, replay_params(), 1);
  EXPECT_NEAR(result.gpu_load_time[0], 8.0, 1e-6);
  EXPECT_NEAR(result.gpu_load_time[1], 8.0, 1e-6);
}

TEST(FetchReplay, ClusterShareCapsPfs) {
  std::vector<GpuWork> gpus(1);
  gpus[0].threads = 1;
  gpus[0].fetches = {{10, FetchTier::kPfs}};
  // 10 reader nodes -> cluster share 100/10 = 10 B/s -> 1 s.
  const auto shared = replay_node_iteration(gpus, replay_params(), 10);
  EXPECT_NEAR(shared.node_makespan, 1.0, 1e-9);
}

TEST(FetchReplay, LatencyDelaysSubmission) {
  auto params = replay_params();
  params.pfs_latency = 2.0;
  std::vector<GpuWork> gpus(1);
  gpus[0].threads = 1;
  gpus[0].fetches = {{10, FetchTier::kPfs}};
  const auto result = replay_node_iteration(gpus, params);
  EXPECT_NEAR(result.node_makespan, 3.0, 1e-9);  // 2 s latency + 1 s transfer
}

TEST(FetchReplay, EmptyWorkCompletesAtZero) {
  std::vector<GpuWork> gpus(3);
  const auto result = replay_node_iteration(gpus, replay_params());
  EXPECT_EQ(result.node_makespan, 0.0);
  for (const auto t : result.gpu_load_time) EXPECT_EQ(t, 0.0);
}

TEST(FetchReplay, AgreesWithAnalyticModelOnSimpleMix) {
  // One GPU, one tier, enough threads that the per-stream cap binds in both
  // models: DES and Eq. 1 must agree exactly.
  const auto params = replay_params();
  const storage::StorageModel model(params);
  std::vector<GpuWork> gpus(1);
  gpus[0].threads = 2;
  for (int i = 0; i < 8; ++i) gpus[0].fetches.push_back({100, FetchTier::kLocal});
  const auto replay = replay_node_iteration(gpus, params);
  storage::TierBytes bytes;
  bytes.local = 800;
  const Seconds analytic = model.load_time(bytes, storage::ThreadAlloc::uniform(2.0));
  EXPECT_NEAR(replay.node_makespan, analytic, analytic * 0.05);
}

}  // namespace
}  // namespace lobster::sim
