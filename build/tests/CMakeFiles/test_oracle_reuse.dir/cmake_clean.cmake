file(REMOVE_RECURSE
  "CMakeFiles/test_oracle_reuse.dir/test_oracle_reuse.cpp.o"
  "CMakeFiles/test_oracle_reuse.dir/test_oracle_reuse.cpp.o.d"
  "test_oracle_reuse"
  "test_oracle_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracle_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
