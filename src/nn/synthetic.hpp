// Synthetic classification data keyed by SampleId.
//
// The Fig. 9 experiment needs a dataset where a *sample id coming out of
// the data-loading pipeline* maps deterministically to (features, label),
// so the exact same training curve is reproducible under any loader. We
// use a Gaussian-mixture classification task: each class has a random unit
// centroid; a sample's features are its class centroid plus noise seeded by
// the sample id.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "nn/tensor.hpp"

namespace lobster::nn {

class SyntheticTask {
 public:
  SyntheticTask(std::uint32_t classes, std::uint32_t features, double noise_sigma,
                std::uint64_t seed);

  std::uint32_t classes() const noexcept { return classes_; }
  std::uint32_t features() const noexcept { return features_; }

  /// Label of a sample (uniform over classes, deterministic in the id).
  std::uint32_t label_of(SampleId sample) const;

  /// Writes the sample's feature vector into `out` (length >= features).
  void features_of(SampleId sample, float* out) const;

  /// Assembles a batch (rows = samples) plus its labels.
  Matrix batch_features(const std::vector<SampleId>& samples) const;
  std::vector<std::uint32_t> batch_labels(const std::vector<SampleId>& samples) const;

 private:
  std::uint32_t classes_;
  std::uint32_t features_;
  double noise_sigma_;
  std::uint64_t seed_;
  std::vector<float> centroids_;  // classes x features
};

}  // namespace lobster::nn
