// Cross-job KV eviction arbiter: one global memory budget over the shared
// cluster KV tier (DESIGN.md §10).
//
// Every published sample passes through the arbiter, which enforces a
// cluster-wide byte budget across all dataset namespaces. When a publish
// (or a mid-run budget shrink) needs room, victims are chosen by
// *imminence*: how many scheduler rounds until the sample's next access by
// ANY job using its namespace — the cluster analogue of the paper's §4.4
// clairvoyant eviction, answered by per-namespace merged oracles
// (data::MergedAccessOracle over every job sharing the dataset). The
// farthest-future entry goes first, and an entry some job needs *this
// round* (imminence 0) is never evicted:
//   * a publish that would require evicting an imminent entry is refused
//     (kOverflow) — the sample is still delivered, it just isn't cached;
//   * a shrink that cannot reach the new budget without evicting imminent
//     entries stops early and reports the deficit; the next publishes keep
//     shaving as accesses pass.
//
// Thread-safe; the cluster driver and executor workers may publish
// concurrently. Imminence callbacks run under the arbiter lock, so they
// must not call back into the arbiter.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "cache/directory.hpp"
#include "cache/kv_store.hpp"
#include "cache/namespace.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace lobster::cluster {

/// Rounds until the next access of `key` by any job of its namespace;
/// kNeverIter when no job needs it within its oracle window (or its jobs
/// are all queued/finished).
using ImminenceFn = std::function<IterId(SampleId key)>;

class KvBudgetArbiter {
 public:
  struct Stats {
    std::uint64_t publishes = 0;
    std::uint64_t evictions = 0;          ///< victims evicted to make room
    std::uint64_t rejected_publishes = 0; ///< refused: room needed an imminent victim
    std::uint64_t shrinks = 0;            ///< set_budget calls that lowered it
    std::uint64_t protected_entries = 0;  ///< imminent entries a sweep skipped
    Bytes deficit_bytes = 0;              ///< over-budget remainder after the last shrink
  };

  /// `budget` = 0 means unbounded (the arbiter still tracks usage).
  KvBudgetArbiter(cache::KvStore& store, Bytes budget, ImminenceFn imminence);

  KvBudgetArbiter(const KvBudgetArbiter&) = delete;
  KvBudgetArbiter& operator=(const KvBudgetArbiter&) = delete;

  /// Publishes `key` through the budget: evicts least-imminent entries from
  /// the store (and `directory`, when given) until the payload fits, then
  /// forwards to KvStore::put. Fails with kOverflow when room cannot be
  /// made without evicting an entry needed this round.
  Status publish(SampleId key, cache::KvStore::PayloadPtr payload, NodeId holder,
                 cache::CacheDirectory* directory);

  /// Re-targets the global budget mid-run. Lowering it evicts
  /// least-imminent entries down to the new budget immediately — but never
  /// entries with imminence 0 (a sample another job needs this round must
  /// survive a shrink; see Stats::deficit_bytes when that leaves the store
  /// over budget).
  void set_budget(Bytes budget, cache::CacheDirectory* directory = nullptr);

  Bytes budget() const;
  Bytes bytes_tracked() const;
  Bytes namespace_bytes(cache::NamespaceId ns) const;

  /// Forgets (and erases from the store/directory) every entry of a
  /// namespace — the dataset's last job released it. Returns bytes freed.
  Bytes drop_namespace(cache::NamespaceId ns, cache::CacheDirectory* directory);

  /// One live entry of a namespace, as seen by the arbiter's books — the
  /// checkpoint residency manifest's source (DESIGN.md §13).
  struct ManifestEntry {
    SampleId key = 0;  ///< full namespaced key
    NodeId holder = 0;
    Bytes bytes = 0;
  };
  /// Every tracked entry of `ns`, sorted by key (deterministic manifests).
  std::vector<ManifestEntry> namespace_manifest(cache::NamespaceId ns) const;

  /// Moves an entry's recorded holder (checkpoint restore onto a different
  /// node block). Returns false for an untracked key. The caller keeps the
  /// CacheDirectory in sync (remove old / add new) — the arbiter only owns
  /// the accounting.
  bool rehome(SampleId key, NodeId holder);

  Stats stats() const;

 private:
  struct Entry {
    Bytes bytes = 0;
    NodeId holder = 0;
  };

  /// Evicts until at least `needed` bytes fit under `target`; returns false
  /// if impossible without touching imminent entries. Caller holds mutex_.
  bool make_room_locked(Bytes needed, Bytes target, cache::CacheDirectory* directory);

  cache::KvStore& store_;
  ImminenceFn imminence_;
  mutable std::mutex mutex_;
  Bytes budget_;
  Bytes tracked_bytes_ = 0;
  std::unordered_map<SampleId, Entry> entries_;
  std::unordered_map<cache::NamespaceId, Bytes> per_namespace_;
  Stats stats_;
};

}  // namespace lobster::cluster
