// Deterministic random number generation.
//
// Everything random in Lobster flows from a single global seed through
// `derive_seed`, mirroring the paper's requirement (§4.4) that "the
// determinism of the prefetching pattern of one node is a global property:
// it is known to all other nodes (e.g. by fixing the pseudorandom number
// generator seed of each node such that it is a function of a fixed seed
// and the node id)".
//
// The generator is xoshiro256** seeded via splitmix64 — fast, high quality,
// and fully reproducible across platforms (unlike std::mt19937 +
// std::uniform_int_distribution, whose mapping is implementation-defined).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lobster {

/// splitmix64 step; used for seed derivation and generator initialization.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Combines a base seed with stream identifiers (node id, epoch, purpose tag)
/// into an independent seed. Associative-free: derive_seed(s, a, b) differs
/// from derive_seed(s, b, a).
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) noexcept;
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t s1, std::uint64_t s2) noexcept;
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t s1, std::uint64_t s2,
                          std::uint64_t s3) noexcept;

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  result_type operator()() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (one value per call; no caching so the
  /// stream stays position-independent).
  double normal() noexcept;

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) noexcept;

  /// Log-normal with the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma) noexcept;

 private:
  std::uint64_t s_[4] = {};
};

/// Deterministic Fisher-Yates shuffle (uses Rng::bounded, so reproducible
/// across platforms).
template <typename T>
void shuffle(std::span<T> values, Rng& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.bounded(i));
    using std::swap;
    swap(values[i - 1], values[j]);
  }
}

/// Returns the identity permutation [0, n) shuffled with `rng`.
std::vector<std::uint32_t> random_permutation(std::uint32_t n, Rng& rng);

}  // namespace lobster
