#include "metrics/report.hpp"

#include <algorithm>

namespace lobster::metrics {

Table comparison_table(const std::vector<StrategyResult>& results, std::uint32_t warmup_epochs) {
  Table table({"strategy", "warm_time_s", "speedup_vs_first", "hit_ratio", "imbalanced_frac",
               "gpu_util", "samples_per_s"});
  const double base_time =
      results.empty() ? 0.0 : results.front().result.metrics.time_after_epoch(warmup_epochs);
  for (const auto& entry : results) {
    const auto& m = entry.result.metrics;
    const double warm = m.time_after_epoch(warmup_epochs);
    table.add_row({entry.strategy, Table::num(warm, 3),
                   Table::num(warm > 0.0 ? base_time / warm : 0.0, 2), Table::num(m.hit_ratio(), 3),
                   Table::num(m.imbalanced_fraction(), 3), Table::num(m.gpu_utilization(), 3),
                   Table::num(entry.result.samples_per_second, 0)});
  }
  return table;
}

double warm_speedup(const pipeline::SimulationResult& baseline,
                    const pipeline::SimulationResult& target, std::uint32_t warmup_epochs) {
  const double target_time = target.metrics.time_after_epoch(warmup_epochs);
  if (target_time <= 0.0) return 0.0;
  return baseline.metrics.time_after_epoch(warmup_epochs) / target_time;
}

std::string render_series(const std::vector<double>& values, std::size_t width) {
  if (values.empty()) return "(empty)";
  static constexpr char kLevels[] = " .:-=+*#%@";
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *lo_it;
  const double span = *hi_it - lo;
  std::string out;
  const std::size_t n = std::min(width, values.size());
  const double stride = static_cast<double>(values.size()) / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(static_cast<double>(i) * stride);
    // Scale against the min..max span and clamp to [0, 1] before the size_t
    // conversion: casting a negative double is undefined behaviour.
    const double v =
        span > 0.0 ? std::clamp((values[idx] - lo) / span, 0.0, 1.0) : 0.0;
    const auto level = static_cast<std::size_t>(v * 9.0);
    out += kLevels[std::min<std::size_t>(level, 9)];
  }
  return out;
}

}  // namespace lobster::metrics
