#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace lobster::data {

namespace {
std::uint32_t scaled_count(double base, double scale) {
  if (scale <= 0.0) throw std::invalid_argument("DatasetSpec: scale must be positive");
  const double scaled = base / scale;
  return static_cast<std::uint32_t>(std::max(1.0, scaled));
}
}  // namespace

DatasetSpec DatasetSpec::imagenet1k(double scale) {
  DatasetSpec spec;
  spec.name = "imagenet1k";
  spec.num_samples = scaled_count(1'281'167.0, scale);
  // Median ~100 KB, sigma 0.35 -> mean ~106 KB, total ~135 GB at full scale.
  spec.lognormal_mu = std::log(100.0 * 1024.0);
  spec.lognormal_sigma = 0.35;
  spec.min_bytes = 8 * 1024;
  spec.max_bytes = 1024 * 1024;
  return spec;
}

DatasetSpec DatasetSpec::imagenet22k(double scale) {
  DatasetSpec spec;
  spec.name = "imagenet22k";
  spec.num_samples = scaled_count(14'197'103.0, scale);
  // "most with an image size of between 10 KB and 50 KB" but 1.3 TB total
  // (mean ~92 KB): median ~28 KB with a heavy right tail.
  spec.lognormal_mu = std::log(28.0 * 1024.0);
  spec.lognormal_sigma = 1.05;
  spec.min_bytes = 4 * 1024;
  spec.max_bytes = 4 * 1024 * 1024;
  return spec;
}

DatasetSpec DatasetSpec::uniform(std::uint32_t samples, Bytes sample_bytes, std::string name) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.num_samples = samples;
  spec.lognormal_mu = std::log(static_cast<double>(sample_bytes));
  spec.lognormal_sigma = 0.0;
  spec.min_bytes = sample_bytes;
  spec.max_bytes = sample_bytes;
  return spec;
}

SampleCatalog::SampleCatalog(const DatasetSpec& spec, std::uint64_t seed) : name_(spec.name) {
  if (spec.num_samples == 0) throw std::invalid_argument("SampleCatalog: empty dataset");
  Rng rng(derive_seed(seed, 0x0DA7A5E7ULL));
  sizes_.reserve(spec.num_samples);
  for (std::uint32_t i = 0; i < spec.num_samples; ++i) {
    double size = spec.lognormal_sigma == 0.0
                      ? std::exp(spec.lognormal_mu)
                      : rng.lognormal(spec.lognormal_mu, spec.lognormal_sigma);
    size = std::max(size, static_cast<double>(spec.min_bytes));
    if (spec.max_bytes > 0) size = std::min(size, static_cast<double>(spec.max_bytes));
    const auto bytes = static_cast<Bytes>(size);
    sizes_.push_back(bytes);
    total_ += bytes;
  }
}

double SampleCatalog::mean_bytes() const noexcept {
  return sizes_.empty() ? 0.0 : static_cast<double>(total_) / static_cast<double>(sizes_.size());
}

}  // namespace lobster::data
