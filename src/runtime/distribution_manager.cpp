#include "runtime/distribution_manager.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/payload_arena.hpp"
#include "common/rng.hpp"
#include "telemetry/events.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace_context.hpp"

namespace lobster::runtime {

namespace {

constexpr comm::Tag kFetchRequestTag = 0x0F00;

/// Sentinel sample id: a FetchRequest carrying it is an inventory request
/// (same tag and server loop as demand fetches, so one serve thread handles
/// both and a killed node's poison pill still works unchanged).
constexpr SampleId kInventorySample = kInvalidSample - 1;

/// Sentinel sample id: a FetchRequest carrying it is a batched multi-get.
/// The request body continues with a count and that many sample ids; the
/// reply interleaves per-sample headers and payload bytes (DESIGN.md §8).
constexpr SampleId kMultiGetSample = kInvalidSample - 2;

struct FetchRequest {
  std::uint64_t request_id;
  SampleId sample;
};

struct ResponseHeader {
  SampleId sample;
  std::uint8_t found;
};

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Counter-mode pattern word: chunk `k` of a payload is derived directly
/// from (seed, k) with the splitmix64 finalizer, so consecutive chunks have
/// no data dependency and the CPU pipelines them. (The earlier chained
/// `state = splitmix64(state)` form serialized one mix latency per 8 bytes,
/// which dominated cold-miss materialization at 4KB payloads.)
std::uint64_t pattern_word(std::uint64_t seed, std::uint64_t chunk) noexcept {
  std::uint64_t z = seed + (chunk + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Keyed-pattern fill, one independent pattern_word per 8-byte chunk.
/// `begin` is always chunk-aligned (0, 8, or 16); the byte-tail derivation
/// matches the word path (byte i == (word >> ((i % 8) * 8)) & 0xFF) so
/// endianness never changes what verification accepts.
void fill_pattern(std::byte* data, std::size_t begin, std::size_t size,
                  std::uint64_t seed) {
  std::size_t i = begin;
  std::uint64_t chunk = 0;
  if constexpr (std::endian::native == std::endian::little) {
    for (; i + sizeof(std::uint64_t) <= size; i += sizeof(std::uint64_t), ++chunk) {
      const std::uint64_t word = pattern_word(seed, chunk);
      std::memcpy(data + i, &word, sizeof(word));
    }
  }
  for (; i < size; ++i) {
    const std::uint64_t word = pattern_word(seed, (i - begin) / 8);
    data[i] = static_cast<std::byte>((word >> ((i % 8) * 8)) & 0xFF);
  }
}

/// Word-wise verification twin of fill_pattern; no allocation.
bool check_pattern(const std::byte* data, std::size_t begin, std::size_t size,
                   std::uint64_t seed) {
  std::size_t i = begin;
  std::uint64_t chunk = 0;
  if constexpr (std::endian::native == std::endian::little) {
    for (; i + sizeof(std::uint64_t) <= size; i += sizeof(std::uint64_t), ++chunk) {
      const std::uint64_t want = pattern_word(seed, chunk);
      std::uint64_t got = 0;
      std::memcpy(&got, data + i, sizeof(got));
      if (got != want) return false;
    }
  }
  for (; i < size; ++i) {
    const std::uint64_t word = pattern_word(seed, (i - begin) / 8);
    if (data[i] != static_cast<std::byte>((word >> ((i % 8) * 8)) & 0xFF)) return false;
  }
  return true;
}

/// Header layout shared by generation and verification: id, then length,
/// each included only when the payload is long enough to carry it.
std::size_t pattern_offset(std::size_t size) {
  if (size >= sizeof(SampleId) + sizeof(std::uint64_t)) {
    return sizeof(SampleId) + sizeof(std::uint64_t);
  }
  return size >= sizeof(SampleId) ? sizeof(SampleId) : 0;
}

}  // namespace

std::uint64_t inventory_checksum(const std::vector<SampleId>& samples) noexcept {
  std::uint64_t hash = 0x1AB5'7E12'D00D'F00DULL ^ samples.size();
  for (const SampleId s : samples) {
    std::uint64_t state = s;
    hash ^= splitmix64(state);
  }
  return hash;
}

void make_sample_payload_into(SampleId sample, Bytes size, std::byte* dst) {
  const auto n = static_cast<std::size_t>(size);
  // Header authenticates both the id and the length, so truncated or padded
  // payloads fail verification (not just corrupted ones).
  if (n >= sizeof(SampleId)) {
    std::memcpy(dst, &sample, sizeof(SampleId));
  }
  if (n >= sizeof(SampleId) + sizeof(std::uint64_t)) {
    const std::uint64_t length = size;
    std::memcpy(dst + sizeof(SampleId), &length, sizeof(length));
  }
  fill_pattern(dst, pattern_offset(n), n, derive_seed(0xC0FFEEULL, sample));
}

std::vector<std::byte> make_sample_payload(SampleId sample, Bytes size) {
  std::vector<std::byte> payload(static_cast<std::size_t>(size));
  make_sample_payload_into(sample, size, payload.data());
  return payload;
}

comm::PayloadPtr make_sample_payload_shared(SampleId sample, Bytes size) {
  auto buffer = PayloadArena::acquire(static_cast<std::size_t>(size));
  make_sample_payload_into(sample, size, buffer->data());
  return buffer;
}

bool verify_sample_payload(SampleId sample, const std::byte* data, std::size_t size) {
  if (size >= sizeof(SampleId)) {
    SampleId got = kInvalidSample;
    std::memcpy(&got, data, sizeof(got));
    if (got != sample) return false;
  }
  if (size >= sizeof(SampleId) + sizeof(std::uint64_t)) {
    std::uint64_t length = 0;
    std::memcpy(&length, data + sizeof(SampleId), sizeof(length));
    if (length != size) return false;
  }
  return check_pattern(data, pattern_offset(size), size, derive_seed(0xC0FFEEULL, sample));
}

bool verify_sample_payload(SampleId sample, const std::vector<std::byte>& payload) {
  return verify_sample_payload(sample, payload.data(), payload.size());
}

DistributionManager::DistributionManager(comm::Endpoint& endpoint,
                                         std::function<bool(SampleId)> has_sample,
                                         std::function<Bytes(SampleId)> sample_size,
                                         FetchPolicy policy)
    : endpoint_(endpoint),
      has_sample_(std::move(has_sample)),
      sample_size_(std::move(sample_size)),
      policy_(policy),
      breakers_(endpoint.world_size()) {}

DistributionManager::~DistributionManager() { stop(); }

void DistributionManager::start() {
  if (running_.exchange(true)) return;
  server_ = std::jthread([this] { serve_loop(); });
}

void DistributionManager::stop() {
  if (!running_.exchange(false)) return;
  // Poison request to our own server loop so it observes running_ == false.
  // A self-send never crosses the (possibly faulty) fabric, so this works
  // even when this node has been killed by a FaultPlan.
  FetchRequest poison{0, kInvalidSample};
  std::vector<std::byte> bytes(sizeof(poison));
  std::memcpy(bytes.data(), &poison, sizeof(poison));
  (void)endpoint_.send(endpoint_.rank(), kFetchRequestTag, std::move(bytes));
  if (server_.joinable()) server_.join();
}

void DistributionManager::serve_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    auto message = endpoint_.recv(kFetchRequestTag);
    if (!message.has_value()) return;  // bus shutdown
    const auto request = comm::Endpoint::value_of<FetchRequest>(*message);
    if (request.sample == kInvalidSample) continue;  // poison; loop re-checks running_
    if (request.sample == kInventorySample) {
      serve_inventory(*message, request.request_id);
      continue;
    }
    if (request.sample == kMultiGetSample) {
      serve_multi_get(*message, request.request_id);
      continue;
    }

    // Handler span parented under the REQUESTER's attempt span (the bus
    // stamped its context into the request), so the serve time shows up
    // inside the cross-rank fetch tree. The reply send happens inside the
    // span's lifetime, stamping the serve context back onto the wire.
    telemetry::Span serve(telemetry::SpanKind::kServe, endpoint_.rank(),
                          telemetry::TraceContext{message->trace_id, message->span_id, 0},
                          request.sample);
    ResponseHeader header{request.sample, 0};
    std::size_t total = sizeof(header);
    Bytes size = 0;
    if (has_sample_ && has_sample_(request.sample)) {
      header.found = 1;
      size = sample_size_ ? sample_size_(request.sample) : 64;
      total += static_cast<std::size_t>(size);
      ++served_;
    } else {
      ++failed_;
      serve.set_status(StatusCode::kNotFound);
    }
    // One arena buffer, materialized in place, shared zero-copy onto the
    // wire — the serve path never touches the global heap.
    auto response = PayloadArena::acquire(total);
    std::memcpy(response->data(), &header, sizeof(header));
    if (header.found != 0) {
      make_sample_payload_into(request.sample, size, response->data() + sizeof(header));
    }
    const Status sent = endpoint_.send(message->source, response_tag(request.request_id),
                                       comm::PayloadPtr(std::move(response)));
    count_serve_send_failure(sent, message->source, request.request_id);
  }
}

void DistributionManager::serve_multi_get(const comm::Message& request_message,
                                          std::uint64_t request_id) {
  telemetry::Span serve(
      telemetry::SpanKind::kServe, endpoint_.rank(),
      telemetry::TraceContext{request_message.trace_id, request_message.span_id, 0},
      kMultiGetSample);
  const auto& bytes = request_message.bytes();
  std::uint64_t count = 0;
  std::size_t offset = sizeof(FetchRequest);
  if (bytes.size() >= offset + sizeof(count)) {
    std::memcpy(&count, bytes.data() + offset, sizeof(count));
    offset += sizeof(count);
  }
  // A truncated or garbled request yields fewer ids than claimed; serve
  // what is actually present — the requester detects the shortfall from
  // the reply framing and treats the remainder as corrupt.
  count = std::min<std::uint64_t>(count, (bytes.size() - offset) / sizeof(SampleId));
  std::vector<SampleId> ids(static_cast<std::size_t>(count));
  if (count > 0) {
    std::memcpy(ids.data(), bytes.data() + offset,
                static_cast<std::size_t>(count) * sizeof(SampleId));
  }

  // Pass 1 sizes the reply exactly; pass 2 materializes every payload
  // directly into one arena buffer (no per-sample allocation, one send).
  std::vector<Bytes> sizes(ids.size(), 0);
  std::size_t total = sizeof(ResponseHeader) + sizeof(std::uint64_t);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    total += sizeof(SampleId) + sizeof(std::uint64_t);
    if (has_sample_ && has_sample_(ids[i])) {
      sizes[i] = sample_size_ ? sample_size_(ids[i]) : 64;
      total += static_cast<std::size_t>(sizes[i]);
      ++served_;
    } else {
      ++failed_;
    }
  }
  auto reply = PayloadArena::acquire(total);
  std::byte* out = reply->data();
  const ResponseHeader header{kMultiGetSample, 1};
  std::memcpy(out, &header, sizeof(header));
  std::size_t off = sizeof(header);
  std::memcpy(out + off, &count, sizeof(count));
  off += sizeof(count);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::memcpy(out + off, &ids[i], sizeof(SampleId));
    off += sizeof(SampleId);
    const std::uint64_t found_size = sizes[i];
    std::memcpy(out + off, &found_size, sizeof(found_size));
    off += sizeof(found_size);
    if (found_size > 0) {
      make_sample_payload_into(ids[i], sizes[i], out + off);
      off += static_cast<std::size_t>(found_size);
    }
  }
  const Status sent = endpoint_.send(request_message.source, response_tag(request_id),
                                     comm::PayloadPtr(std::move(reply)));
  count_serve_send_failure(sent, request_message.source, request_id);
}

void DistributionManager::serve_inventory(const comm::Message& request_message,
                                          std::uint64_t request_id) {
  telemetry::Span serve(
      telemetry::SpanKind::kServe, endpoint_.rank(),
      telemetry::TraceContext{request_message.trace_id, request_message.span_id, 0},
      kInventorySample);
  const std::vector<SampleId> samples =
      inventory_source_ ? inventory_source_() : std::vector<SampleId>{};
  const ResponseHeader header{kInventorySample, 1};
  const std::uint64_t count = samples.size();
  const std::uint64_t checksum = inventory_checksum(samples);
  std::vector<std::byte> response(sizeof(header) + sizeof(count) +
                                  samples.size() * sizeof(SampleId) + sizeof(checksum));
  std::size_t offset = 0;
  std::memcpy(response.data(), &header, sizeof(header));
  offset += sizeof(header);
  std::memcpy(response.data() + offset, &count, sizeof(count));
  offset += sizeof(count);
  if (!samples.empty()) {
    std::memcpy(response.data() + offset, samples.data(), samples.size() * sizeof(SampleId));
    offset += samples.size() * sizeof(SampleId);
  }
  std::memcpy(response.data() + offset, &checksum, sizeof(checksum));
  ++served_;
  const Status sent = endpoint_.send(request_message.source, response_tag(request_id),
                                     std::move(response));
  count_serve_send_failure(sent, request_message.source, request_id);
}

void DistributionManager::count_serve_send_failure(const Status& sent, comm::Rank requester,
                                                   std::uint64_t request_id) {
  if (sent.ok()) return;
  ++serve_send_failures_;
  LOBSTER_METRIC_COUNT("dm.serve_send_failures", 1);
  telemetry::EventLog::instance().emit(telemetry::EventKind::kServeSendFailure,
                                       endpoint_.rank(), request_id, requester,
                                       sent.code_name());
}

bool DistributionManager::breaker_open(comm::Rank holder) const {
  if (holder >= breakers_.size()) return false;
  const std::int64_t until = breakers_[holder].open_until_ns.load(std::memory_order_acquire);
  return until != 0 && steady_now_ns() < until;
}

void DistributionManager::record_success(comm::Rank holder) {
  Breaker& breaker = breakers_[holder];
  breaker.consecutive_timeouts.store(0, std::memory_order_relaxed);
  breaker.consecutive_corrupts.store(0, std::memory_order_relaxed);
  // Half-open probe succeeded (or the peer was healthy all along): close,
  // and tell the recovery layer the peer is answering again.
  if (breaker.open_until_ns.exchange(0, std::memory_order_acq_rel) != 0) {
    ++breaker_closes_;
    LOBSTER_METRIC_COUNT("dm.breaker_closes", 1);
    telemetry::EventLog::instance().emit(telemetry::EventKind::kBreakerClose, holder, 0,
                                         endpoint_.rank());
    if (on_breaker_close_) on_breaker_close_(holder);
  }
}

void DistributionManager::open_breaker(comm::Rank holder) {
  Breaker& breaker = breakers_[holder];
  const std::int64_t until =
      steady_now_ns() + static_cast<std::int64_t>(policy_.breaker_cooldown * 1e9);
  if (breaker.open_until_ns.exchange(until, std::memory_order_acq_rel) == 0) {
    ++breaker_opens_;
    LOBSTER_METRIC_COUNT("dm.breaker_opens", 1);
    telemetry::EventLog::instance().emit(
        telemetry::EventKind::kBreakerOpen, holder,
        breaker.consecutive_timeouts.load(std::memory_order_relaxed),
        breaker.consecutive_corrupts.load(std::memory_order_relaxed));
  }
}

void DistributionManager::record_timeout(comm::Rank holder) {
  ++timeouts_;
  LOBSTER_METRIC_COUNT("comm.timeouts", 1);
  Breaker& breaker = breakers_[holder];
  const std::uint32_t run = breaker.consecutive_timeouts.fetch_add(1) + 1;
  if (policy_.breaker_threshold > 0 && run >= policy_.breaker_threshold) {
    open_breaker(holder);
  }
}

void DistributionManager::record_corrupt(comm::Rank holder) {
  ++corrupt_replies_;
  LOBSTER_METRIC_COUNT("comm.corrupt_replies", 1);
  ++corrupt_strikes_;
  LOBSTER_METRIC_COUNT("dm.corrupt_strikes", 1);
  Breaker& breaker = breakers_[holder];
  const std::uint32_t run = breaker.consecutive_corrupts.fetch_add(1) + 1;
  if (policy_.corrupt_strike_threshold > 0 && run >= policy_.corrupt_strike_threshold) {
    open_breaker(holder);
  }
}

Result<std::vector<std::byte>> DistributionManager::fetch_once(SampleId sample,
                                                               comm::Rank holder) {
  // One attempt = one span; the request send inside its lifetime carries
  // the attempt's context to the serving rank. arg = sample, arg2 = holder.
  telemetry::Span attempt(telemetry::SpanKind::kAttempt, endpoint_.rank(), sample);
  attempt.set_arg2(holder);
  const auto report = [&attempt](Status status) {
    attempt.set_status(status.code());
    return status;
  };

  const std::uint64_t request_id = next_request_id_.fetch_add(1);
  FetchRequest request{request_id, sample};
  std::vector<std::byte> bytes(sizeof(request));
  std::memcpy(bytes.data(), &request, sizeof(request));
  if (Status sent = endpoint_.send(holder, kFetchRequestTag, std::move(bytes)); !sent.ok()) {
    return report(sent);
  }

  auto response = endpoint_.recv_for(response_tag(request_id), policy_.timeout);
  if (!response.ok()) return report(response.status());
  const auto& reply = response->bytes();
  ResponseHeader header{};
  std::memcpy(&header, reply.data(), std::min(sizeof(header), reply.size()));
  if (header.found == 0) return report(Status::not_found("peer no longer holds sample"));
  if (reply.size() < sizeof(header)) {
    return report(Status::corrupt("reply truncated"));
  }
  // Verify in place (no allocation), then copy the slice out once.
  const std::byte* body = reply.data() + sizeof(header);
  const std::size_t body_size = reply.size() - sizeof(header);
  if (!verify_sample_payload(sample, body, body_size)) {
    return report(Status::corrupt("payload failed verification"));
  }
  return std::vector<std::byte>(body, body + body_size);
}

Result<std::vector<std::byte>> DistributionManager::fetch_remote(SampleId sample,
                                                                 comm::Rank holder) {
  if (breaker_open(holder)) {
    LOBSTER_METRIC_COUNT("comm.peer_down", 1);
    telemetry::Span::instant(telemetry::SpanKind::kBreakerFastFail, endpoint_.rank(),
                             sample, holder);
    return Status::peer_down("circuit breaker open for peer " + std::to_string(holder));
  }

  Seconds backoff = policy_.backoff_base;
  const std::uint32_t attempts = 1 + policy_.max_retries;
  Status last = Status::timeout("no attempt made");
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      LOBSTER_METRIC_COUNT("comm.retries", 1);
      telemetry::Span sleep(telemetry::SpanKind::kBackoff, endpoint_.rank(), sample);
      sleep.set_arg2(attempt);
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2.0, policy_.backoff_cap);
    }
    auto result = fetch_once(sample, holder);
    if (result.ok()) {
      record_success(holder);
      return result;
    }
    last = result.status();
    switch (last.code()) {
      case StatusCode::kTimeout:
        record_timeout(holder);
        // The timeout that trips the breaker still reports kTimeout — only
        // later fetches that find it already open get the instant kPeerDown.
        // But once open there is no point burning the rest of the budget.
        if (breaker_open(holder)) return last;
        break;  // retry
      case StatusCode::kNotFound:
        // Authoritative answer from a live peer: reset its failure run.
        record_success(holder);
        return last;
      case StatusCode::kCorrupt:
        // The peer answered with garbage: strike it and report immediately.
        // Retrying the same peer would re-fetch the same bad copy — the
        // caller must route to the next holder (or the PFS) instead.
        record_corrupt(holder);
        return last;
      case StatusCode::kShutdown:
        return last;
      default:
        return last;  // peer_down / unexpected — not retryable here
    }
  }
  return last;
}

std::vector<Result<comm::PayloadPtr>> DistributionManager::fetch_remote_many(
    comm::Rank holder, const std::vector<SampleId>& samples, IterId iter) {
  std::vector<Result<comm::PayloadPtr>> results;
  if (samples.empty()) return results;
  results.reserve(samples.size());

  if (breaker_open(holder)) {
    LOBSTER_METRIC_COUNT("comm.peer_down", 1);
    telemetry::Span::instant(telemetry::SpanKind::kBreakerFastFail, endpoint_.rank(),
                             samples.front(), holder);
    const Status down =
        Status::peer_down("circuit breaker open for peer " + std::to_string(holder));
    for (std::size_t i = 0; i < samples.size(); ++i) results.emplace_back(down);
    return results;
  }

  Status last = Status::timeout("no attempt made");
  bool answered = false;
  {
    // One root span per batch round (arg = holder, arg2 = iter). It closes
    // with this scope, BEFORE any caller-side per-sample fallback runs, so
    // fallback fetches root their own kFetch trees — the span-analysis
    // gates that count fetch-rooted traces are unaffected by batching.
    telemetry::Span multi(telemetry::SpanKind::kMultiGet, endpoint_.rank(), holder);
    multi.set_arg2(iter);

    Seconds backoff = policy_.backoff_base;
    const std::uint32_t attempts = 1 + policy_.max_retries;
    for (std::uint32_t round = 0; round < attempts && !answered; ++round) {
      if (round > 0) {
        ++retries_;
        LOBSTER_METRIC_COUNT("comm.retries", 1);
        telemetry::Span sleep(telemetry::SpanKind::kBackoff, endpoint_.rank(),
                              samples.front());
        sleep.set_arg2(round);
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff = std::min(backoff * 2.0, policy_.backoff_cap);
      }
      // One envelope per attempt, whatever the batch size. arg = batch
      // size, arg2 = holder.
      telemetry::Span attempt(telemetry::SpanKind::kAttempt, endpoint_.rank(),
                              samples.size());
      attempt.set_arg2(holder);
      const std::uint64_t request_id = next_request_id_.fetch_add(1);
      const FetchRequest request{request_id, kMultiGetSample};
      const std::uint64_t count = samples.size();
      auto wire = PayloadArena::acquire(sizeof(request) + sizeof(count) +
                                        samples.size() * sizeof(SampleId));
      std::memcpy(wire->data(), &request, sizeof(request));
      std::memcpy(wire->data() + sizeof(request), &count, sizeof(count));
      std::memcpy(wire->data() + sizeof(request) + sizeof(count), samples.data(),
                  samples.size() * sizeof(SampleId));
      if (Status sent = endpoint_.send(holder, kFetchRequestTag,
                                       comm::PayloadPtr(std::move(wire)));
          !sent.ok()) {
        attempt.set_status(sent.code());
        last = sent;
        break;
      }
      auto response = endpoint_.recv_for(response_tag(request_id), policy_.timeout);
      if (!response.ok()) {
        attempt.set_status(response.status().code());
        last = response.status();
        if (last.code() != StatusCode::kTimeout) break;  // shutdown etc.
        // One breaker strike per failed *envelope*, not per sample.
        record_timeout(holder);
        if (breaker_open(holder)) break;
        continue;  // retry the whole batch
      }

      answered = true;
      const auto& reply = response->bytes();
      std::size_t off = 0;
      ResponseHeader header{};
      std::uint64_t reply_count = 0;
      bool framing_ok = reply.size() >= sizeof(header) + sizeof(reply_count);
      if (framing_ok) {
        std::memcpy(&header, reply.data(), sizeof(header));
        off += sizeof(header);
        std::memcpy(&reply_count, reply.data() + off, sizeof(reply_count));
        off += sizeof(reply_count);
        framing_ok = header.sample == kMultiGetSample && header.found == 1 &&
                     reply_count == samples.size();
      }
      bool any_corrupt = false;
      for (std::size_t i = 0; i < samples.size(); ++i) {
        if (framing_ok && off + sizeof(SampleId) + sizeof(std::uint64_t) <= reply.size()) {
          SampleId id = kInvalidSample;
          std::uint64_t found_size = 0;
          std::memcpy(&id, reply.data() + off, sizeof(id));
          off += sizeof(id);
          std::memcpy(&found_size, reply.data() + off, sizeof(found_size));
          off += sizeof(found_size);
          if (id != samples[i] || off + found_size > reply.size()) {
            framing_ok = false;  // framing lost; the rest is unreadable
          } else if (found_size == 0) {
            results.emplace_back(Status::not_found("peer no longer holds sample"));
            continue;
          } else if (verify_sample_payload(samples[i], reply.data() + off,
                                           static_cast<std::size_t>(found_size))) {
            auto buffer = PayloadArena::acquire(static_cast<std::size_t>(found_size));
            std::memcpy(buffer->data(), reply.data() + off,
                        static_cast<std::size_t>(found_size));
            off += static_cast<std::size_t>(found_size);
            results.emplace_back(comm::PayloadPtr(std::move(buffer)));
            continue;
          } else {
            off += static_cast<std::size_t>(found_size);
            results.emplace_back(Status::corrupt("payload failed verification"));
            any_corrupt = true;
            continue;
          }
        } else {
          framing_ok = false;
        }
        results.emplace_back(Status::corrupt("multi-get reply malformed"));
        any_corrupt = true;
      }
      attempt.set_status(any_corrupt ? StatusCode::kCorrupt : StatusCode::kOk);
      // Whole-reply accounting mirrors the single-fetch contract: a reply
      // with any corrupt bytes charges ONE strike; a clean reply (found or
      // authoritative not-found alike) resets the peer's failure run.
      if (any_corrupt) {
        record_corrupt(holder);
      } else {
        record_success(holder);
      }
    }
  }

  if (!answered) {
    for (std::size_t i = 0; i < samples.size(); ++i) results.emplace_back(last);
  }
  return results;
}

Result<std::vector<SampleId>> DistributionManager::fetch_inventory(comm::Rank holder) {
  // No breaker_open fast-fail: this call IS the half-open probe a down
  // peer's recovery depends on. It still records the outcome, so success
  // re-closes the breaker and failure keeps it open.
  telemetry::Span probe(telemetry::SpanKind::kInventoryProbe, endpoint_.rank(), holder);
  const auto report = [&probe](Status status) {
    probe.set_status(status.code());
    return status;
  };
  const std::uint64_t request_id = next_request_id_.fetch_add(1);
  const FetchRequest request{request_id, kInventorySample};
  std::vector<std::byte> bytes(sizeof(request));
  std::memcpy(bytes.data(), &request, sizeof(request));
  if (Status sent = endpoint_.send(holder, kFetchRequestTag, std::move(bytes)); !sent.ok()) {
    return report(sent);
  }

  auto response = endpoint_.recv_for(response_tag(request_id), policy_.timeout);
  if (!response.ok()) {
    if (response.status().code() == StatusCode::kTimeout) record_timeout(holder);
    return report(response.status());
  }
  const auto& payload = response->bytes();
  ResponseHeader header{};
  std::uint64_t count = 0;
  if (payload.size() < sizeof(header) + sizeof(count) + sizeof(std::uint64_t)) {
    record_corrupt(holder);
    return report(Status::corrupt("inventory reply truncated"));
  }
  std::memcpy(&header, payload.data(), sizeof(header));
  std::memcpy(&count, payload.data() + sizeof(header), sizeof(count));
  const std::size_t ids_offset = sizeof(header) + sizeof(count);
  const std::size_t expected =
      ids_offset + count * sizeof(SampleId) + sizeof(std::uint64_t);
  if (header.sample != kInventorySample || header.found != 1 ||
      payload.size() != expected) {
    record_corrupt(holder);
    return report(Status::corrupt("inventory reply malformed"));
  }
  std::vector<SampleId> samples(static_cast<std::size_t>(count));
  if (count > 0) {
    std::memcpy(samples.data(), payload.data() + ids_offset, count * sizeof(SampleId));
  }
  std::uint64_t checksum = 0;
  std::memcpy(&checksum, payload.data() + ids_offset + count * sizeof(SampleId),
              sizeof(checksum));
  if (checksum != inventory_checksum(samples)) {
    record_corrupt(holder);
    return report(Status::corrupt("inventory checksum mismatch"));
  }
  record_success(holder);
  return samples;
}

}  // namespace lobster::runtime
