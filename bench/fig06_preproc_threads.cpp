// Fig. 6 — preprocessing throughput vs thread count. Paper: throughput
// peaks at 6 threads, then flattens and slightly degrades (memory
// bandwidth contention). Prints the measured curve, the portfolio model's
// predictions, and the knee the model selects (the thread count Lobster
// allocates to preprocessing, §4.1).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/preproc_model.hpp"
#include "metrics/report.hpp"

using namespace lobster;

int main(int argc, char** argv) {
  const auto config = bench::parse_args(argc, argv);
  const bench::TraceSession trace_session(config);
  const auto max_threads = static_cast<std::uint32_t>(config.get_int("max_threads", 16));
  const auto sample_bytes = static_cast<Bytes>(config.get_int("sample_bytes", 105 * 1024));
  bench::warn_unconsumed(config);

  bench::print_header("Fig. 6: preprocessing throughput vs threads",
                      "throughput peaks at 6 threads, then flattens / slightly degrades");

  const core::PreprocGroundTruth truth;
  const core::PreprocModelPortfolio portfolio(truth, {sample_bytes / 2, sample_bytes,
                                                      sample_bytes * 2},
                                              max_threads, /*repeats=*/3, /*seed=*/42);

  Table table({"threads", "measured_samples_per_s", "predicted_samples_per_s", "model_error_%"});
  std::vector<double> series;
  for (std::uint32_t t = 1; t <= max_threads; ++t) {
    const double measured = 1.0 / truth.time_per_sample(t, sample_bytes);
    const double predicted = 1.0 / portfolio.predict_time_per_sample(t, sample_bytes);
    series.push_back(measured);
    table.add_row({std::to_string(t), Table::num(measured, 1), Table::num(predicted, 1),
                   Table::num(100.0 * std::abs(predicted - measured) / measured, 2)});
  }
  bench::emit(config, "fig06", table);
  std::printf("throughput curve: |%s|\n", metrics::render_series(series, max_threads).c_str());
  std::printf("true knee: %u threads   model-selected optimum: %u threads   [paper: 6]\n",
              truth.params().knee_threads, portfolio.optimal_threads(sample_bytes));
  std::printf("portfolio fit R^2 at %llu bytes: %.4f\n",
              static_cast<unsigned long long>(sample_bytes),
              portfolio.fit_r_squared(sample_bytes));
  return 0;
}
