#include "cluster/cluster_runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/distribution_manager.hpp"
#include "telemetry/registry.hpp"

namespace lobster::cluster {

namespace {

/// Relative compute cost per iteration of the models the paper evaluates;
/// scales ClusterConfig::t_train_s so mixed-model tenants desynchronize.
double model_train_scale(const std::string& model) {
  if (model == "alexnet") return 0.55;
  if (model == "resnet18") return 0.75;
  if (model == "vgg16") return 1.6;
  return 1.0;  // resnet50 and unknown models
}

data::SamplerConfig sampler_config_for(const JobSpec& spec, std::uint64_t dataset_size) {
  data::SamplerConfig config;
  config.num_samples = static_cast<std::uint32_t>(dataset_size);
  config.nodes = spec.nodes;
  config.gpus_per_node = spec.gpus_per_node;
  config.batch_size = spec.batch_size;
  config.seed = spec.sampler_seed;
  return config;
}

struct IsolatedRun {
  double run_s = 0.0;
  std::uint64_t pfs_reads = 0;
  Bytes pfs_bytes = 0;
  std::uint64_t digest = 0;
};

/// The job alone on its block: private KV tier, full PFS bandwidth, same
/// cursor delivery model and per-iteration cost model as the shared run —
/// slowdown isolates the effect of co-tenancy, and the digest is the
/// reference stream every checkpointed/preempted/resized run must
/// reproduce exactly.
IsolatedRun run_isolated(const JobSpec& spec, const data::SampleCatalog& catalog,
                         const TierRates& rates, double t_train) {
  const data::EpochSampler sampler(sampler_config_for(spec, catalog.size()));
  const std::uint32_t world = sampler.world_size();
  const std::uint32_t gpus = spec.gpus_per_node;

  cache::KvStore kv(4);
  cache::CacheDirectory directory(spec.nodes);
  KvBudgetArbiter arbiter(kv, 0, [](SampleId) { return kNeverIter; });

  struct Demand {
    Bytes local = 0, remote = 0, pfs = 0;
  };
  std::vector<Demand> demands(spec.nodes);

  IsolatedRun result;
  for (std::uint32_t epoch = 0; epoch < spec.epochs; ++epoch) {
    const auto& perm = sampler.epoch_permutation(epoch);
    std::uint64_t cursor = 0;
    while (cursor < perm.size()) {
      const std::uint64_t n = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(spec.batch_size) * world, perm.size() - cursor);
      for (auto& demand : demands) demand = {};
      for (std::uint64_t k = 0; k < n; ++k) {
        const std::uint64_t q = cursor + k;
        const SampleId sample = perm[q];
        const auto node = static_cast<NodeId>((q % world) / gpus);
        const Bytes size = catalog.sample_bytes(sample);
        auto& demand = demands[node];
        if (directory.holds(sample, node)) {
          demand.local += size;
        } else if (kv.get(sample).ok()) {
          demand.remote += size;
        } else {
          demand.pfs += size;
          ++result.pfs_reads;
          result.pfs_bytes += size;
          auto payload = std::make_shared<std::vector<std::byte>>(size);
          (void)arbiter.publish(sample, std::move(payload), node, &directory);
        }
        result.digest = delivery_digest_advance(result.digest, sample);
      }
      double slowest = 0.0;
      for (const auto& demand : demands) {
        const Bytes total = demand.local + demand.remote + demand.pfs;
        const double io = static_cast<double>(demand.local) / rates.local_bps +
                          static_cast<double>(demand.remote) / rates.remote_bps +
                          static_cast<double>(demand.pfs) / rates.pfs_bps +
                          static_cast<double>(total) / rates.preproc_bps;
        slowest = std::max(slowest, std::max(t_train, io));
      }
      result.run_s += slowest;
      cursor += n;
    }
  }
  return result;
}

}  // namespace

// ---- JobWindowOracle ------------------------------------------------------

std::optional<data::Access> JobWindowOracle::next_access(SampleId sample,
                                                         IterId after) const {
  for (const data::Access& a : inner_.accesses(sample)) {
    if (a.iter == kNeverIter) continue;  // dropped by a partial final iteration
    const IterId at = offset_ + a.iter;
    if (at > after) {
      return data::Access{at, static_cast<NodeId>(block_.first + a.node), a.gpu};
    }
  }
  return std::nullopt;
}

std::optional<data::Access> JobWindowOracle::next_access_on_node(SampleId sample, NodeId node,
                                                                 IterId after) const {
  if (!block_.contains(node)) return std::nullopt;
  const NodeId local = static_cast<NodeId>(node - block_.first);
  for (const data::Access& a : inner_.accesses(sample)) {
    if (a.iter == kNeverIter || a.node != local) continue;
    const IterId at = offset_ + a.iter;
    if (at > after) return data::Access{at, node, a.gpu};
  }
  return std::nullopt;
}

IterId JobWindowOracle::reuse_distance_on_node(SampleId sample, NodeId node,
                                               IterId now) const {
  const auto a = next_access_on_node(sample, node, now);
  return a.has_value() ? a->iter - now : kNeverIter;
}

std::uint32_t JobWindowOracle::remaining_uses_on_node(SampleId sample, NodeId node,
                                                      IterId after) const {
  if (!block_.contains(node)) return 0;
  const NodeId local = static_cast<NodeId>(node - block_.first);
  std::uint32_t uses = 0;
  for (const data::Access& a : inner_.accesses(sample)) {
    if (a.iter == kNeverIter || a.node != local) continue;
    if (offset_ + a.iter > after) ++uses;
  }
  return uses;
}

bool JobWindowOracle::needed_by_other_node(SampleId sample, NodeId node,
                                           IterId after) const {
  for (const data::Access& a : inner_.accesses(sample)) {
    if (a.iter == kNeverIter) continue;
    const NodeId global = static_cast<NodeId>(block_.first + a.node);
    if (global != node && offset_ + a.iter > after) return true;
  }
  return false;
}

// ---- ClusterRuntime -------------------------------------------------------

struct ClusterRuntime::RunningJob {
  JobId id = kInvalidJob;
  cache::NamespaceId ns = 0;
  std::uint64_t fingerprint = 0;
  NodeBlock block;
  std::shared_ptr<const data::SampleCatalog> catalog;
  /// Built at the SPEC width: the epoch permutation is width-independent,
  /// and the oracle's access pattern only feeds eviction heuristics.
  std::unique_ptr<data::EpochSampler> sampler;
  std::unique_ptr<data::FutureAccessOracle> oracle;
  std::unique_ptr<JobWindowOracle> window;

  std::uint32_t epochs = 0;
  std::uint64_t dataset_size = 0;  ///< |D|
  std::uint32_t gpus = 1;
  std::uint32_t batch = 1;
  double t_train = 0.0;

  // Progress cursor (width-invariant; see header): perm[0, cursor) of
  // `epoch` fully delivered, digest folded over every sample so far.
  std::uint32_t epoch = 0;
  std::uint64_t cursor = 0;
  std::uint64_t digest = 0;
  std::uint64_t last_n = 0;  ///< window collect_demands priced this round

  struct Demand {
    Bytes local = 0, remote = 0, pfs = 0;
  };
  std::vector<Demand> demands;  ///< per local node, refilled every round
  std::uint64_t round_delivered = 0;  ///< samples delivered this round

  bool done() const noexcept { return epoch >= epochs; }
};

ClusterRuntime::ClusterRuntime(ClusterConfig config)
    : config_(config),
      kv_(16),
      directory_(config.nodes),
      arbiter_(kv_, config.kv_budget, [this](SampleId key) { return imminence(key); }),
      manager_(config.nodes, config.policy),
      fairness_(config.starvation_rounds) {
  manager_.set_preemption_policy(config_.preemption);
  // The crash-consistency point: the manager fires this before releasing a
  // victim's block, while the RunningJob and its residency are still live.
  manager_.set_preempt_hook(
      [this](JobId id, std::uint64_t round) { checkpoint_job(id, round); });
}

ClusterRuntime::~ClusterRuntime() = default;

JobId ClusterRuntime::submit(JobSpec spec) {
  if (ran_) throw std::logic_error("ClusterRuntime::submit: run() already started");
  const std::uint64_t arrival = spec.arrival_round;
  const JobId id = manager_.submit(std::move(spec), arrival);
  JobOutcome outcome;
  outcome.id = id;
  outcome.name = manager_.record(id).spec.name;
  outcome.state = manager_.record(id).state;
  outcome.submit_round = arrival;
  outcomes_.push_back(std::move(outcome));
  return id;
}

std::shared_ptr<const data::SampleCatalog> ClusterRuntime::catalog_for(
    const JobSpec& spec, std::uint64_t fingerprint) {
  auto& slot = catalogs_[fingerprint];
  if (slot == nullptr) {
    slot = std::make_shared<const data::SampleCatalog>(spec.dataset, spec.dataset_seed);
  }
  return slot;
}

bool ClusterRuntime::budget_gate(const JobSpec& spec) {
  if (config_.kv_budget == 0) return true;
  const std::uint64_t fingerprint = dataset_fingerprint(spec);
  // A live namespace means the dataset is already (being) staged; admitting
  // another job over it adds no KV footprint.
  for (const auto& [id, job] : active_) {
    if (job->fingerprint == fingerprint) return true;
  }
  // A preempted job's namespace stays acquired (warm residency waiting for
  // the resume) — its dataset is staged even though no RunningJob exists.
  for (const JobId id : manager_.preempted()) {
    if (dataset_fingerprint(manager_.record(id).spec) == fingerprint) return true;
  }
  const Bytes need = catalog_for(spec, fingerprint)->total_bytes();
  // A dataset the budget can never hold won't fit better later: admit it
  // and let the arbiter spill — queueing forever would be starvation.
  if (need >= config_.kv_budget) return true;
  return arbiter_.bytes_tracked() + need <= config_.kv_budget;
}

void ClusterRuntime::rebuild_merged(cache::NamespaceId ns) {
  NamespaceOracles oracles;
  for (const auto& [id, job] : active_) {
    if (job->ns == ns && job->window != nullptr) oracles.members.push_back(job->window.get());
  }
  if (oracles.members.empty()) {
    merged_.erase(ns);
    return;
  }
  oracles.merged = std::make_unique<data::MergedAccessOracle>(oracles.members);
  merged_[ns] = std::move(oracles);
}

IterId ClusterRuntime::imminence(SampleId key) const {
  const auto it = merged_.find(cache::namespace_of(key));
  if (it == merged_.end() || it->second.merged == nullptr) return kNeverIter;
  // JobWindowOracle reports job iteration i at cluster time admit+i+1, so
  // strictly-after round_ includes the current round's accesses at distance
  // (reported - round_ - 1) == 0.
  const auto access = it->second.merged->next_access(cache::sample_of(key), round_);
  return access.has_value() ? access->iter - round_ - 1 : kNeverIter;
}

void ClusterRuntime::start_job(JobId id, std::uint64_t round) {
  const auto parked = checkpoints_.find(id);
  if (parked != checkpoints_.end()) {
    // Resume: rebuild from the checkpoint cut at preemption, through the
    // real wire path.
    const std::vector<std::byte> bytes = std::move(parked->second);
    checkpoints_.erase(parked);
    restore_job(id, round, bytes);
    return;
  }

  JobRecord& record = manager_.record_mutable(id);
  auto job = std::make_unique<RunningJob>();
  job->id = id;
  job->fingerprint = dataset_fingerprint(record.spec);
  job->catalog = catalog_for(record.spec, job->fingerprint);
  job->ns = registry_.acquire(job->fingerprint);
  record.ns = job->ns;
  job->block = record.block;

  job->sampler =
      std::make_unique<data::EpochSampler>(sampler_config_for(record.spec, job->catalog->size()));
  job->oracle = std::make_unique<data::FutureAccessOracle>(
      *job->sampler, std::max<std::uint32_t>(1, record.spec.oracle_window_epochs));
  job->window = std::make_unique<JobWindowOracle>(*job->oracle, round, job->block);
  job->epochs = record.spec.epochs;
  job->dataset_size = job->catalog->size();
  job->gpus = record.spec.gpus_per_node;
  job->batch = record.spec.batch_size;
  job->t_train = config_.t_train_s * model_train_scale(record.spec.model);
  job->demands.resize(record.block.count);

  JobOutcome& outcome = outcomes_[id];
  outcome.ns = job->ns;
  // Width-independent: every epoch delivers the full permutation (the
  // trailing partial round carries the remainder).
  outcome.samples_expected = static_cast<std::uint64_t>(job->epochs) * job->dataset_size;
  if (registry_.refcount(job->ns) > 1) {
    outcome.shared_namespace = true;
    for (const auto& [other_id, other] : active_) {
      if (other->ns == job->ns) outcomes_[other_id].shared_namespace = true;
    }
  }

  const cache::NamespaceId ns = job->ns;
  active_.emplace(id, std::move(job));
  rebuild_merged(ns);
}

std::vector<std::byte> ClusterRuntime::cut_checkpoint(RunningJob& job) {
  const JobRecord& record = manager_.record(job.id);
  const JobOutcome& outcome = outcomes_[job.id];

  JobCheckpoint checkpoint;
  checkpoint.job_id = job.id;
  checkpoint.name = record.spec.name;
  checkpoint.dataset_fingerprint = job.fingerprint;
  checkpoint.sampler_seed = record.spec.sampler_seed;
  checkpoint.epoch = job.epoch;
  checkpoint.cursor = job.cursor;
  checkpoint.delivered_total = outcome.samples_delivered;
  checkpoint.delivery_digest = job.digest;
  checkpoint.width = job.block.count;
  checkpoint.gpus_per_node = record.spec.gpus_per_node;
  checkpoint.batch_size = record.spec.batch_size;
  // The cluster sim runs the static split; a live executor would export its
  // FeedbackBalancer state here (test_checkpoint round-trips that path).
  checkpoint.quotas.assign(
      static_cast<std::size_t>(job.block.count) * record.spec.gpus_per_node,
      record.spec.batch_size);

  std::vector<SampleId> samples;
  for (const KvBudgetArbiter::ManifestEntry& entry : arbiter_.namespace_manifest(job.ns)) {
    if (!job.block.contains(entry.holder)) continue;  // held by a co-tenant's block
    checkpoint.residency.push_back(
        {cache::sample_of(entry.key),
         static_cast<std::uint16_t>(entry.holder - job.block.first), entry.bytes});
    samples.push_back(cache::sample_of(entry.key));
    // The block is being vacated: its directory residency goes with it. The
    // KV entry itself survives (warm working set, evictable under budget
    // pressure) until restore re-homes it.
    directory_.remove(entry.key, entry.holder);
  }
  checkpoint.residency_checksum = runtime::inventory_checksum(samples);

  std::vector<std::byte> bytes = serialize(checkpoint);
  ++stat_checkpoints_;
  stat_checkpoint_bytes_ += bytes.size();
  return bytes;
}

void ClusterRuntime::checkpoint_job(JobId id, std::uint64_t /*round*/) {
  const auto it = active_.find(id);
  if (it == active_.end()) {
    throw std::logic_error("ClusterRuntime: preempt hook fired for a job with no RunningJob");
  }
  RunningJob& job = *it->second;
  const cache::NamespaceId ns = job.ns;
  checkpoints_[id] = cut_checkpoint(job);
  // The namespace stays acquired: the preempted job still claims its
  // dataset, so the registry must not recycle the id (and budget_gate must
  // keep treating the dataset as staged).
  active_.erase(it);
  rebuild_merged(ns);
}

void ClusterRuntime::restore_job(JobId id, std::uint64_t round,
                                 const std::vector<std::byte>& bytes) {
  auto parsed = deserialize(bytes);
  if (!parsed.ok()) {
    // In-memory checkpoints cannot rot; a parse failure here is a format bug.
    throw std::runtime_error("ClusterRuntime::restore_job: " + parsed.status().to_string());
  }
  const JobCheckpoint& checkpoint = parsed.value();

  JobRecord& record = manager_.record_mutable(id);
  auto job = std::make_unique<RunningJob>();
  job->id = id;
  job->fingerprint = checkpoint.dataset_fingerprint;
  job->catalog = catalog_for(record.spec, job->fingerprint);
  job->ns = record.ns;  // namespace stayed acquired across the preemption
  job->block = record.block;

  job->sampler =
      std::make_unique<data::EpochSampler>(sampler_config_for(record.spec, job->catalog->size()));
  job->oracle = std::make_unique<data::FutureAccessOracle>(
      *job->sampler, std::max<std::uint32_t>(1, record.spec.oracle_window_epochs));
  // Lift the oracle back onto the cluster clock: the job has ~est_iter
  // spec-width iterations behind it, so its next access should be reported
  // around `round + 1` — i.e. an effective admit round of round - est_iter.
  const std::uint32_t ipe = job->sampler->iterations_per_epoch();
  const std::uint64_t per_iter =
      static_cast<std::uint64_t>(record.spec.batch_size) * job->sampler->world_size();
  const std::uint64_t est_iter =
      static_cast<std::uint64_t>(checkpoint.epoch) * ipe +
      std::min<std::uint64_t>(per_iter != 0 ? checkpoint.cursor / per_iter : 0, ipe);
  const std::uint64_t effective_admit = round > est_iter ? round - est_iter : 0;
  job->window = std::make_unique<JobWindowOracle>(*job->oracle, effective_admit, job->block);
  if (checkpoint.epoch < record.spec.epochs &&
      checkpoint.epoch != job->oracle->first_epoch()) {
    job->oracle->rebase(checkpoint.epoch);
  }

  job->epochs = record.spec.epochs;
  job->dataset_size = job->catalog->size();
  job->gpus = record.spec.gpus_per_node;
  job->batch = record.spec.batch_size;
  job->t_train = config_.t_train_s * model_train_scale(record.spec.model);
  job->demands.resize(record.block.count);
  job->epoch = checkpoint.epoch;
  job->cursor = checkpoint.cursor;
  job->digest = checkpoint.delivery_digest;

  // Replay the residency manifest onto the (possibly different) block:
  // entries the arbiter kept warm are re-homed, entries evicted while the
  // job was preempted are lost (they will re-fetch from the PFS).
  for (const ResidencyEntry& entry : checkpoint.residency) {
    const SampleId key = cache::make_namespaced_key(job->ns, entry.sample);
    const auto holder = static_cast<NodeId>(
        job->block.first + entry.local_holder % job->block.count);
    if (kv_.contains(key) && arbiter_.rehome(key, holder)) {
      directory_.add(key, holder);
      ++stat_restored_;
    } else {
      ++stat_lost_;
    }
  }

  const cache::NamespaceId ns = job->ns;
  active_.emplace(id, std::move(job));
  rebuild_merged(ns);
}

void ClusterRuntime::try_elastic_resize(std::uint64_t round) {
  if (!config_.elastic_resize) return;
  for (JobOutcome& outcome : outcomes_) {
    const auto it = active_.find(outcome.id);
    if (it == active_.end()) continue;
    RunningJob& job = *it->second;
    const JobSpec& spec = manager_.record(job.id).spec;
    if (!spec.elastic()) continue;
    // Resize only at an epoch boundary of a job with work left — the same
    // consistency point checkpoints use, so the cursor cut is exact.
    if (job.done() || job.cursor != 0 || job.epoch == 0) continue;

    const std::uint16_t current = job.block.count;
    bool pressure = !manager_.preempted().empty();
    if (!pressure) {
      for (const JobId queued : manager_.queued()) {
        if (manager_.record(queued).submit_round <= round) {
          pressure = true;
          break;
        }
      }
    }
    std::uint16_t target = current;
    if (pressure && current > spec.width_min()) {
      // Someone is waiting: give back everything above the floor.
      target = spec.width_min();
    } else if (!pressure && current < spec.width_max() && manager_.free_nodes() > 0) {
      // Idle capacity and an empty queue: spread out.
      target = std::min<std::uint16_t>(
          spec.width_max(), static_cast<std::uint16_t>(current + manager_.free_nodes()));
    }
    if (target == current) continue;

    // Checkpoint-resize-restore: the same cut/restore path a preemption
    // takes, so the delivery stream is provably unaffected by the resize.
    const std::vector<std::byte> bytes = cut_checkpoint(job);
    const cache::NamespaceId ns = job.ns;
    active_.erase(it);
    rebuild_merged(ns);
    const auto placed = manager_.resize(outcome.id, round, target);
    restore_job(outcome.id, round, bytes);  // record.block is new (or old on failure)
    if (placed.has_value()) {
      if (target > current) {
        ++outcome.grows;
      } else {
        ++outcome.shrinks;
      }
    }
  }
}

void ClusterRuntime::finish_job(RunningJob& job, std::uint64_t round) {
  manager_.finish(job.id, round);
  const JobRecord& record = manager_.record(job.id);
  JobOutcome& outcome = outcomes_[job.id];
  outcome.delivery_digest = job.digest;
  outcome.final_width = job.block.count;

  auto& registry = telemetry::MetricRegistry::instance();
  const std::string prefix = job_metric_prefix(record.spec.name);
  registry.counter(prefix + "pfs_reads").add(outcome.pfs_reads);
  registry.counter(prefix + "kv_hits").add(outcome.kv_hits);
  registry.counter(prefix + "samples_delivered").add(outcome.samples_delivered);
  LOBSTER_METRIC_COUNT("cluster.pfs_reads", outcome.pfs_reads);
  LOBSTER_METRIC_COUNT("cluster.kv_hits", outcome.kv_hits);
}

void ClusterRuntime::collect_demands(RunningJob& job) {
  JobOutcome& outcome = outcomes_[job.id];
  for (auto& demand : job.demands) demand = {};
  job.round_delivered = 0;

  const auto& perm = job.sampler->epoch_permutation(job.epoch);
  const std::uint32_t world = static_cast<std::uint32_t>(job.block.count) * job.gpus;
  const std::uint64_t n =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(job.batch) * world,
                              perm.size() - job.cursor);
  job.last_n = n;

  for (std::uint64_t k = 0; k < n; ++k) {
    const std::uint64_t q = job.cursor + k;
    const SampleId sample = perm[q];
    // Strided shard ownership at the CURRENT width: perm index q belongs to
    // flat rank q mod W, i.e. local node (q mod W) / gpus — identical to the
    // static sampler's node_batch partition when width == spec width.
    const auto local_node = static_cast<std::uint16_t>((q % world) / job.gpus);
    const NodeId global = static_cast<NodeId>(job.block.first + local_node);
    auto& demand = job.demands[local_node];
    const SampleId key = cache::make_namespaced_key(job.ns, sample);
    const Bytes size = job.catalog->sample_bytes(sample);
    if (directory_.holds(key, global)) {
      demand.local += size;
      ++outcome.local_hits;
    } else if (kv_.get(key).ok()) {
      // Cluster-tier hit: published earlier by this job's peers or by
      // another job over the same dataset (the dedup win).
      demand.remote += size;
      ++outcome.kv_hits;
    } else {
      demand.pfs += size;
      ++outcome.pfs_reads;
      outcome.pfs_bytes += size;
      auto payload = std::make_shared<std::vector<std::byte>>(size);
      // Best-effort: a rejected publish (kOverflow: room would need an
      // imminent victim) still delivers the sample, just uncached.
      (void)arbiter_.publish(key, std::move(payload), global, &directory_);
    }
    // Exactly-once delivery log: folded in permutation order, which is the
    // same order at every width — the digest a resumed run must extend
    // seamlessly.
    job.digest = delivery_digest_advance(job.digest, sample);
  }
  outcome.samples_delivered += n;
  job.round_delivered = n;
}

double ClusterRuntime::iteration_time(const RunningJob& job,
                                      double pfs_bps_effective) const {
  const TierRates& rates = config_.rates;
  double slowest = 0.0;
  for (const auto& demand : job.demands) {
    const Bytes total = demand.local + demand.remote + demand.pfs;
    const double io = static_cast<double>(demand.local) / rates.local_bps +
                      static_cast<double>(demand.remote) / rates.remote_bps +
                      static_cast<double>(demand.pfs) / pfs_bps_effective +
                      static_cast<double>(total) / rates.preproc_bps;
    slowest = std::max(slowest, std::max(job.t_train, io));
  }
  return slowest;
}

ClusterResult ClusterRuntime::run() {
  if (ran_) throw std::logic_error("ClusterRuntime::run: already ran");
  ran_ = true;

  std::vector<double> submit_clock(outcomes_.size(), 0.0);
  std::vector<double> admit_clock(outcomes_.size(), 0.0);

  ClusterResult result;
  std::size_t open = 0;
  for (JobOutcome& outcome : outcomes_) {
    if (outcome.state == JobState::kRejected) continue;
    ++open;
    if (config_.run_isolated_baselines) {
      const JobSpec& spec = manager_.record(outcome.id).spec;
      const auto catalog = catalog_for(spec, dataset_fingerprint(spec));
      const IsolatedRun isolated = run_isolated(
          spec, *catalog, config_.rates, config_.t_train_s * model_train_scale(spec.model));
      outcome.isolated_s = isolated.run_s;
      outcome.isolated_pfs_reads = isolated.pfs_reads;
      outcome.isolated_digest = isolated.digest;
      result.isolated_pfs_reads_sum += isolated.pfs_reads;
      fairness_.set_isolated_baseline(outcome.id, outcome.name, isolated.run_s);
    }
  }

  while (open > 0) {
    if (round_ > config_.max_rounds) {
      throw std::runtime_error("ClusterRuntime::run: exceeded max_rounds — scheduling livelock?");
    }
    for (JobOutcome& outcome : outcomes_) {
      if (outcome.submit_round == round_ && outcome.state != JobState::kRejected) {
        submit_clock[outcome.id] = clock_s_;
      }
    }
    // Elastic pass first: shrinking at the epoch boundary frees nodes the
    // admission pass below can hand to waiters in the SAME round.
    try_elastic_resize(round_);
    const auto admitted =
        manager_.admit(round_, [this](const JobSpec& spec) { return budget_gate(spec); });
    for (const JobId id : admitted) {
      // queue_wait_s prices the FIRST admission only; a resume (parked
      // checkpoint present) keeps the original admit clock.
      if (checkpoints_.find(id) == checkpoints_.end()) admit_clock[id] = clock_s_;
      start_job(id, round_);
    }
    fairness_.observe_round(manager_, round_);
    result.peak_live_namespaces =
        std::max(result.peak_live_namespaces, registry_.live_namespaces());

    // One lockstep delivery round per running job. Pass 1 walks the shared
    // tier (publishes included) and classifies demand; the PFS split needs
    // every job's demand before any job's time can be priced.
    std::vector<RunningJob*> executing;
    std::vector<RunningJob*> finished;
    for (JobOutcome& outcome : outcomes_) {
      const auto it = active_.find(outcome.id);
      if (it == active_.end()) continue;
      RunningJob& job = *it->second;
      if (job.done()) {
        finished.push_back(&job);  // zero-epoch job: finishes untouched
        continue;
      }
      if (job.cursor == 0 && job.epoch != job.oracle->first_epoch()) {
        job.oracle->rebase(job.epoch);
      }
      collect_demands(job);
      executing.push_back(&job);
    }
    std::uint32_t pfs_jobs = 0;
    for (const RunningJob* job : executing) {
      for (const auto& demand : job->demands) {
        if (demand.pfs > 0) {
          ++pfs_jobs;
          break;
        }
      }
    }
    const double pfs_bps_effective =
        config_.rates.pfs_bps / std::max<std::uint32_t>(pfs_jobs, 1);

    double round_time = 0.0;
    for (RunningJob* job : executing) {
      round_time = std::max(round_time, iteration_time(*job, pfs_bps_effective));
    }
    clock_s_ += round_time;

    for (RunningJob* job : executing) {
      job->cursor += job->last_n;
      if (job->cursor >= job->dataset_size) {
        job->cursor = 0;
        ++job->epoch;
      }
      JobRecord& record = manager_.record_mutable(job->id);
      ++record.iterations_done;
      ++outcomes_[job->id].iterations;
      fairness_.observe_delivery(job->id, record.spec.name, job->round_delivered,
                                 iteration_time(*job, pfs_bps_effective));
      if (job->done()) finished.push_back(job);
    }
    for (RunningJob* job : finished) {
      finish_job(*job, round_);
      fairness_.on_finish(manager_.record(job->id), submit_clock[job->id],
                          admit_clock[job->id], clock_s_);
      const cache::NamespaceId ns = job->ns;
      const JobId id = job->id;
      active_.erase(id);
      rebuild_merged(ns);
      if (registry_.release(ns)) {
        // Last job over this dataset: drop its cached payloads so the
        // namespace id can be recycled without aliasing stale entries.
        arbiter_.drop_namespace(ns, &directory_);
      }
      --open;
    }
    ++round_;
  }

  for (JobOutcome& outcome : outcomes_) {
    const JobRecord& record = manager_.record(outcome.id);
    outcome.state = record.state;
    outcome.admit_round = record.admit_round;
    outcome.finish_round = record.finish_round;
    outcome.queue_wait_rounds = record.queue_wait_rounds();
    outcome.total_wait_rounds = record.total_wait_rounds;
    outcome.preemptions = record.preempt_count;
    outcome.resizes = record.resize_count;
    if (fairness_.known(outcome.id)) {
      const auto& fair = fairness_.job(outcome.id);
      outcome.queue_wait_s = fair.queue_wait_s;
      outcome.turnaround_s = fair.turnaround_s;
      outcome.slowdown = fair.slowdown;
      outcome.starved = fair.starved;
    }
    if (config_.run_isolated_baselines && outcome.state == JobState::kFinished) {
      outcome.digest_match = outcome.delivery_digest == outcome.isolated_digest;
      if (outcome.digest_match) {
        ++result.digest_matches;
      } else {
        ++result.digest_mismatches;
      }
    }
    result.total_pfs_reads += outcome.pfs_reads;
    result.total_pfs_bytes += outcome.pfs_bytes;
    result.total_kv_hits += outcome.kv_hits;
  }
  result.jobs = outcomes_;
  result.rounds = round_;
  result.makespan_s = clock_s_;
  result.starvation_events = fairness_.starvation_events();
  result.max_slowdown = fairness_.max_slowdown();
  result.preemptions = manager_.preemptions();
  result.resumes = manager_.resumes();
  result.resizes = manager_.resizes();
  result.checkpoints_cut = stat_checkpoints_;
  result.checkpoint_bytes = stat_checkpoint_bytes_;
  result.residency_restored = stat_restored_;
  result.residency_lost = stat_lost_;
  result.arbiter = arbiter_.stats();
  result.kv = kv_.stats();
  return result;
}

}  // namespace lobster::cluster
