#include "cache/node_cache.hpp"

#include <stdexcept>

#include "common/logging.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace lobster::cache {

NodeCache::NodeCache(NodeId node, Bytes capacity, std::unique_ptr<EvictionPolicy> policy,
                     const data::SampleCatalog& catalog, CacheDirectory* directory,
                     const data::AccessOracle* oracle, std::uint32_t iterations_per_epoch)
    : node_(node),
      capacity_(capacity),
      policy_(std::move(policy)),
      catalog_(catalog),
      directory_(directory),
      oracle_(oracle),
      iterations_per_epoch_(iterations_per_epoch) {
  if (!policy_) throw std::invalid_argument("NodeCache: null policy");
  if (capacity_ == 0) throw std::invalid_argument("NodeCache: zero capacity");
}

NodeCache::~NodeCache() = default;

EvictionContext NodeCache::make_context(IterId now, IterId incoming_reuse) const {
  EvictionContext context;
  context.node = node_;
  context.now = now;
  context.iterations_per_epoch = iterations_per_epoch_;
  context.oracle = oracle_;
  context.directory = directory_;
  context.can_evict = [this](SampleId s) { return !pinned_.contains(s); };
  context.incoming_reuse_distance = incoming_reuse;
  return context;
}

// The access/insert/evict hot paths only bump plain counters in stats_;
// publish_metrics() forwards deltas to the (atomic) metric registry in
// batch, so per-sample work stays free of atomic RMWs.
bool NodeCache::access(SampleId sample, IterId now) {
  if (resident_.contains(sample)) {
    ++stats_.hits;
    policy_->on_access(sample, now);
    return true;
  }
  ++stats_.misses;
  return false;
}

NodeCache::InsertResult NodeCache::insert(SampleId sample, IterId now, IterId reuse_distance) {
  InsertResult result;
  if (resident_.contains(sample)) {
    result.inserted = true;  // already resident; nothing to do
    return result;
  }
  const Bytes size = catalog_.sample_bytes(sample);
  if (size > capacity_) {
    ++stats_.rejected_insertions;
    return result;
  }
  const auto context = make_context(now, reuse_distance);
  while (used_ + size > capacity_) {
    const SampleId victim = policy_->pick_victim(context);
    if (victim == kInvalidSample) {
      ++stats_.rejected_insertions;
      return result;
    }
    if (!resident_.contains(victim)) {
      log::error("NodeCache: policy chose non-resident victim %u", victim);
      ++stats_.rejected_insertions;
      return result;
    }
    evict(victim);
    result.evicted.push_back(victim);
  }
  resident_.insert(sample);
  used_ += size;
  ++stats_.insertions;
  stats_.bytes_inserted += size;
  LOBSTER_TRACE_INSTANT(kCache, "insert", sample);
  policy_->on_insert(sample, now);
  if (directory_ != nullptr) directory_->add(sample, node_);
  result.inserted = true;
  return result;
}

bool NodeCache::evict(SampleId sample) {
  if (resident_.erase(sample) == 0) return false;
  used_ -= catalog_.sample_bytes(sample);
  ++stats_.evictions;
  LOBSTER_TRACE_INSTANT(kCache, "evict", sample);
  policy_->on_evict(sample);
  if (directory_ != nullptr) directory_->remove(sample, node_);
  return true;
}

void NodeCache::on_epoch(IterId now) {
  policy_->on_epoch(make_context(now, kNeverIter));
}

void NodeCache::publish_metrics() {
#if !defined(LOBSTER_TELEMETRY_DISABLED)
  if (!telemetry::metrics_active()) return;
  // The registry never deletes entries, so references stay valid forever.
  static auto& hits = telemetry::MetricRegistry::instance().counter("cache.hits");
  static auto& misses = telemetry::MetricRegistry::instance().counter("cache.misses");
  static auto& insertions = telemetry::MetricRegistry::instance().counter("cache.insertions");
  static auto& evictions = telemetry::MetricRegistry::instance().counter("cache.evictions");
  static auto& bytes_inserted =
      telemetry::MetricRegistry::instance().counter("cache.bytes_inserted");
  if (stats_.hits != published_.hits) hits.add(stats_.hits - published_.hits);
  if (stats_.misses != published_.misses) misses.add(stats_.misses - published_.misses);
  if (stats_.insertions != published_.insertions)
    insertions.add(stats_.insertions - published_.insertions);
  if (stats_.evictions != published_.evictions)
    evictions.add(stats_.evictions - published_.evictions);
  if (stats_.bytes_inserted != published_.bytes_inserted)
    bytes_inserted.add(stats_.bytes_inserted - published_.bytes_inserted);
  published_ = stats_;
#endif
}

}  // namespace lobster::cache
