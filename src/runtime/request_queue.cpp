#include "runtime/request_queue.hpp"

#include <stdexcept>

#include "telemetry/registry.hpp"

namespace lobster::runtime {

GpuRequestQueues::GpuRequestQueues(std::uint16_t gpus, std::size_t capacity_per_queue) {
  if (gpus == 0) throw std::invalid_argument("GpuRequestQueues: need >= 1 GPU");
  queues_.reserve(gpus);
  for (std::uint16_t g = 0; g < gpus; ++g) {
    queues_.push_back(std::make_unique<MpmcQueue<LoadRequest>>(capacity_per_queue));
  }
}

MpmcQueue<LoadRequest>& GpuRequestQueues::queue(GpuId gpu) {
  if (gpu >= queues_.size()) throw std::out_of_range("GpuRequestQueues: gpu out of range");
  return *queues_[gpu];
}

const MpmcQueue<LoadRequest>& GpuRequestQueues::queue(GpuId gpu) const {
  if (gpu >= queues_.size()) throw std::out_of_range("GpuRequestQueues: gpu out of range");
  return *queues_[gpu];
}

bool GpuRequestQueues::push(GpuId gpu, LoadRequest request) {
  const bool accepted = queue(gpu).push(request);
  if (accepted) LOBSTER_METRIC_COUNT("queue.pushes", 1);
  return accepted;
}

bool GpuRequestQueues::try_push(GpuId gpu, LoadRequest request) {
  const bool accepted = queue(gpu).try_push(request);
  if (accepted) LOBSTER_METRIC_COUNT("queue.pushes", 1);
  return accepted;
}

std::size_t GpuRequestQueues::try_push_batch(GpuId gpu, std::vector<LoadRequest>& requests) {
  const std::size_t accepted = queue(gpu).try_push_batch(requests.data(), requests.size());
  if (accepted > 0) LOBSTER_METRIC_COUNT("queue.pushes", accepted);
  return accepted;
}

std::optional<LoadRequest> GpuRequestQueues::pop(GpuId gpu) {
  auto request = queue(gpu).pop();
  if (request.has_value()) LOBSTER_METRIC_COUNT("queue.pops", 1);
  return request;
}

std::optional<LoadRequest> GpuRequestQueues::try_pop(GpuId gpu) {
  auto request = queue(gpu).try_pop();
  if (request.has_value()) LOBSTER_METRIC_COUNT("queue.pops", 1);
  return request;
}

std::size_t GpuRequestQueues::try_pop_batch(GpuId gpu, std::vector<LoadRequest>& out,
                                            std::size_t max_count) {
  const std::size_t taken = queue(gpu).try_pop_batch(out, max_count);
  if (taken > 0) LOBSTER_METRIC_COUNT("queue.pops", taken);
  return taken;
}

std::size_t GpuRequestQueues::depth(GpuId gpu) const { return queue(gpu).size(); }

std::vector<std::size_t> GpuRequestQueues::depths() const {
  std::vector<std::size_t> out;
  out.reserve(queues_.size());
  for (const auto& q : queues_) out.push_back(q->size());
  return out;
}

void GpuRequestQueues::close_all() {
  for (auto& q : queues_) q->close();
}

}  // namespace lobster::runtime
