// Distribution manager (§4.5).
//
// "A key part of the online runtime is the distribution manager,
// responsible to handle the distributed operations across the compute nodes
// using MPI. These operations provide locally cached training samples to
// and request training samples from the remote compute nodes."
//
// One DistributionManager runs per node over the comm bus: a server thread
// answers peers' fetch requests from the node's local store; fetch_remote()
// performs a blocking request/response round-trip. Sample payloads are
// synthesized deterministically from the sample id, so receivers can verify
// integrity end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "comm/bus.hpp"
#include "common/types.hpp"

namespace lobster::runtime {

/// Deterministic synthetic payload for a sample (first bytes carry the id
/// and a checksum; the rest is a keyed byte pattern).
std::vector<std::byte> make_sample_payload(SampleId sample, Bytes size);

/// Validates a payload produced by make_sample_payload.
bool verify_sample_payload(SampleId sample, const std::vector<std::byte>& payload);

class DistributionManager {
 public:
  /// `has_sample` answers whether this node currently caches a sample;
  /// `sample_size` gives its payload size. Both must be thread-safe.
  DistributionManager(comm::Endpoint& endpoint,
                      std::function<bool(SampleId)> has_sample,
                      std::function<Bytes(SampleId)> sample_size);
  ~DistributionManager();

  DistributionManager(const DistributionManager&) = delete;
  DistributionManager& operator=(const DistributionManager&) = delete;

  /// Starts the server thread answering peers' requests.
  void start();

  /// Stops serving (idempotent). The comm bus must still be alive.
  void stop();

  /// Blocking fetch of `sample` from `holder`'s cache. Returns the verified
  /// payload, or nullopt if the peer no longer holds the sample (raced with
  /// an eviction) or the bus shut down.
  std::optional<std::vector<std::byte>> fetch_remote(SampleId sample, comm::Rank holder);

  std::uint64_t served_requests() const noexcept { return served_.load(); }
  std::uint64_t failed_requests() const noexcept { return failed_.load(); }

 private:
  void serve_loop();

  comm::Endpoint& endpoint_;
  std::function<bool(SampleId)> has_sample_;
  std::function<Bytes(SampleId)> sample_size_;
  std::jthread server_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint32_t> next_request_id_{1};
};

}  // namespace lobster::runtime
