file(REMOVE_RECURSE
  "CMakeFiles/example_allreduce_training.dir/allreduce_training.cpp.o"
  "CMakeFiles/example_allreduce_training.dir/allreduce_training.cpp.o.d"
  "allreduce_training"
  "allreduce_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_allreduce_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
