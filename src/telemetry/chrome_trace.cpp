#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/strfmt.hpp"
#include "telemetry/registry.hpp"

namespace lobster::telemetry {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_string(const std::string& s) {
  std::string out;
  append_json_string(out, s);
  return out;
}

int pid_of(Domain domain) noexcept {
  return domain == Domain::kWall ? kWallPid : kVirtualPid;
}

const std::string& name_of(const std::vector<std::string>& table, std::uint32_t id) {
  static const std::string unknown = "<unknown>";
  return id < table.size() ? table[id] : unknown;
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceSnapshot& snapshot) {
  out << "{\n\"displayTimeUnit\": \"ms\",\n";
  // `trace_complete: false` marks a truncated timeline (ring overwrite):
  // consumers (tools/trace_report, CI checks) must not treat per-stage sums
  // from an incomplete trace as whole-run totals.
  out << strf("\"otherData\": {\"emitted_events\": %llu, \"dropped_events\": %llu, "
              "\"buffers\": %u, \"trace_complete\": %s},\n",
              static_cast<unsigned long long>(snapshot.emitted),
              static_cast<unsigned long long>(snapshot.dropped), snapshot.buffers,
              snapshot.complete() ? "true" : "false");
  out << "\"traceEvents\": [\n";

  bool first = true;
  auto comma = [&]() {
    if (!first) out << ",\n";
    first = false;
  };

  // Metadata: name the two processes and every track that carries events.
  comma();
  out << strf("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": 0, "
              "\"args\": {\"name\": \"wall clock\"}}",
              kWallPid);
  comma();
  out << strf("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": 0, "
              "\"args\": {\"name\": \"virtual time\"}}",
              kVirtualPid);

  std::set<std::pair<int, std::uint32_t>> used_tracks;
  for (const auto& event : snapshot.events) {
    used_tracks.emplace(pid_of(event.domain), event.track);
  }
  for (const auto& [pid, track] : used_tracks) {
    comma();
    out << strf("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": %u, "
                "\"args\": {\"name\": %s}}",
                pid, track, json_string(name_of(snapshot.tracks, track)).c_str());
  }

  // Events, sorted by (pid, track, ts) for stable output.
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(snapshot.events.size());
  for (const auto& event : snapshot.events) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(), [](const TraceEvent* a, const TraceEvent* b) {
    if (a->domain != b->domain) return a->domain < b->domain;
    if (a->track != b->track) return a->track < b->track;
    return a->ts_us < b->ts_us;
  });

  for (const TraceEvent* event : ordered) {
    comma();
    const std::string name = json_string(name_of(snapshot.names, event->name_id));
    const char* cat = category_name(event->category);
    const int pid = pid_of(event->domain);
    switch (event->phase) {
      case Phase::kComplete:
        out << strf("{\"name\": %s, \"cat\": \"%s\", \"ph\": \"X\", \"pid\": %d, \"tid\": %u, "
                    "\"ts\": %llu, \"dur\": %llu, \"args\": {\"arg\": %llu}}",
                    name.c_str(), cat, pid, event->track,
                    static_cast<unsigned long long>(event->ts_us),
                    static_cast<unsigned long long>(event->dur_us),
                    static_cast<unsigned long long>(event->arg));
        break;
      case Phase::kInstant:
        out << strf("{\"name\": %s, \"cat\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \"pid\": %d, "
                    "\"tid\": %u, \"ts\": %llu, \"args\": {\"arg\": %llu}}",
                    name.c_str(), cat, pid, event->track,
                    static_cast<unsigned long long>(event->ts_us),
                    static_cast<unsigned long long>(event->arg));
        break;
      case Phase::kCounter:
        out << strf("{\"name\": %s, \"cat\": \"%s\", \"ph\": \"C\", \"pid\": %d, \"tid\": %u, "
                    "\"ts\": %llu, \"args\": {\"value\": %.17g}}",
                    name.c_str(), cat, pid, event->track,
                    static_cast<unsigned long long>(event->ts_us), event->value);
        break;
    }
  }

  out << "\n]\n}\n";
}

std::string chrome_trace_json(const TraceSnapshot& snapshot) {
  std::ostringstream out;
  write_chrome_trace(out, snapshot);
  return out.str();
}

bool write_chrome_trace_file(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream out(path);
  if (!out) return false;
  const auto snapshot = Tracer::instance().snapshot();
  // Mirror the drop accounting into the metric registry so truncation shows
  // up in the counters CSV and the live monitor, not just the JSON header.
  MetricRegistry::instance().gauge("telemetry.dropped_events")
      .set(static_cast<double>(snapshot.dropped));
  MetricRegistry::instance().gauge("telemetry.emitted_events")
      .set(static_cast<double>(snapshot.emitted));
  write_chrome_trace(out, snapshot);
  return static_cast<bool>(out);
}

}  // namespace lobster::telemetry
