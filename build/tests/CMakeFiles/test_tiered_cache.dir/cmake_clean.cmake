file(REMOVE_RECURSE
  "CMakeFiles/test_tiered_cache.dir/test_tiered_cache.cpp.o"
  "CMakeFiles/test_tiered_cache.dir/test_tiered_cache.cpp.o.d"
  "test_tiered_cache"
  "test_tiered_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiered_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
