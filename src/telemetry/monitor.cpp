#include "telemetry/monitor.hpp"

#include <string>

#include "common/logging.hpp"
#include "common/strfmt.hpp"
#include "telemetry/analysis/json.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace lobster::telemetry {

namespace {

std::uint64_t saturating_sub(std::uint64_t a, std::uint64_t b) noexcept {
  return a > b ? a - b : 0;
}

void append_kv(std::string& out, const char* key, std::uint64_t value) {
  analysis::append_json_quoted(out, key);
  out += strf(":%llu", static_cast<unsigned long long>(value));
}

void append_kv(std::string& out, const char* key, double value) {
  analysis::append_json_quoted(out, key);
  out += strf(":%.6f", value);
}

void append_kv(std::string& out, const char* key, bool value) {
  analysis::append_json_quoted(out, key);
  out += value ? ":true" : ":false";
}

/// Incident reason string: the first raised flag, in declaration order.
const char* first_flag_name(const MonitorSample& sample) noexcept {
  if (sample.straggler_gap) return "straggler_gap";
  if (sample.prefetch_outrun) return "prefetch_outrun";
  if (sample.queue_starved) return "queue_starved";
  if (sample.trace_ring_overflow) return "trace_ring_overflow";
  if (sample.peer_down) return "peer_down";
  if (sample.retry_storm) return "retry_storm";
  if (sample.iteration_stalled) return "iteration_stalled";
  if (sample.corruption_detected) return "corruption_detected";
  if (sample.job_starved) return "job_starved";
  if (sample.slow_node_detected) return "slow_node_detected";
  if (sample.job_preempt_storm) return "job_preempt_storm";
  return "anomaly";
}

}  // namespace

Monitor::Monitor(MonitorConfig config)
    : config_(std::move(config)), started_at_(std::chrono::steady_clock::now()) {
  if (!config_.jsonl_path.empty()) {
    out_.open(config_.jsonl_path, std::ios::out | std::ios::trunc);
    out_open_ = out_.is_open();
    if (!out_open_) {
      log::warn("monitor: cannot open heartbeat sink %s", config_.jsonl_path.c_str());
    }
  }
}

Monitor::~Monitor() { stop(); }

void Monitor::start() {
  if (running_) return;
  running_ = true;
  thread_ = std::jthread([this](std::stop_token stop) {
    std::mutex wait_mutex;
    std::unique_lock lock(wait_mutex);
    while (!stop.stop_requested()) {
      // Wake early on stop_requested; otherwise tick on the interval.
      if (cv_.wait_for(lock, stop, config_.interval,
                       [&stop] { return stop.stop_requested(); })) {
        break;
      }
      sample_once();
    }
  });
}

void Monitor::stop() {
  if (!running_) return;
  thread_.request_stop();
  cv_.notify_all();
  thread_.join();
  running_ = false;
  // Final heartbeat so short runs always leave at least one record.
  sample_once();
  const std::scoped_lock lock(mutex_);
  if (out_open_) out_.flush();
}

MonitorSample Monitor::sample_once() {
  auto& registry = MetricRegistry::instance();
  auto& tracer = Tracer::instance();

  MonitorSample sample;
  sample.uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at_).count();
  sample.iterations = registry.counter("pipeline.iterations").value();
  sample.imbalanced_iterations = registry.counter("pipeline.imbalanced_iterations").value();
  sample.gap_frac = registry.gauge("pipeline.gap_frac").value();
  sample.bytes_consumed = registry.counter("pipeline.bytes_consumed").value();
  sample.prefetch_bytes = registry.counter("prefetch.bytes").value();
  sample.queue_pushes = registry.counter("queue.pushes").value();
  sample.queue_pops = registry.counter("queue.pops").value();
  sample.cache_hits = registry.counter("cache.hits").value();
  sample.cache_misses = registry.counter("cache.misses").value();
  sample.trace_emitted = tracer.emitted_events();
  sample.trace_dropped = tracer.dropped_events();
  sample.peer_down_events = registry.counter("comm.peer_down").value();
  sample.retries = registry.counter("comm.retries").value();
  sample.iteration_stalls = registry.counter("executor.iteration_stalls").value();
  sample.corrupt_replies = registry.counter("comm.corrupt_replies").value();
  sample.job_starvations = registry.counter("cluster.job_starvations").value();
  sample.job_preemptions = registry.counter("cluster.job_preemptions").value();
  sample.slow_node_events = registry.counter("balancer.slow_node_detected").value();
  sample.jobs_running = registry.gauge("cluster.jobs_running").value();
  sample.jobs_queued = registry.gauge("cluster.jobs_queued").value();

  {
    const std::scoped_lock lock(mutex_);
    sample.seq = ++seq_;  // 1-based: seq_ doubles as the emitted count
    if (has_prev_) {
      sample.d_iterations = saturating_sub(sample.iterations, prev_.iterations);
      sample.d_bytes_consumed = saturating_sub(sample.bytes_consumed, prev_.bytes_consumed);
      sample.d_prefetch_bytes = saturating_sub(sample.prefetch_bytes, prev_.prefetch_bytes);
      sample.d_queue_pops = saturating_sub(sample.queue_pops, prev_.queue_pops);
      sample.d_peer_down_events = saturating_sub(sample.peer_down_events, prev_.peer_down_events);
      sample.d_retries = saturating_sub(sample.retries, prev_.retries);
      sample.d_iteration_stalls = saturating_sub(sample.iteration_stalls, prev_.iteration_stalls);
      sample.d_corrupt_replies = saturating_sub(sample.corrupt_replies, prev_.corrupt_replies);
      sample.d_job_starvations = saturating_sub(sample.job_starvations, prev_.job_starvations);
      sample.d_job_preemptions = saturating_sub(sample.job_preemptions, prev_.job_preemptions);
      sample.d_slow_node_events = saturating_sub(sample.slow_node_events, prev_.slow_node_events);
    } else {
      sample.d_iterations = sample.iterations;
      sample.d_bytes_consumed = sample.bytes_consumed;
      sample.d_prefetch_bytes = sample.prefetch_bytes;
      sample.d_queue_pops = sample.queue_pops;
      sample.d_peer_down_events = sample.peer_down_events;
      sample.d_retries = sample.retries;
      sample.d_iteration_stalls = sample.iteration_stalls;
      sample.d_corrupt_replies = sample.corrupt_replies;
      sample.d_job_starvations = sample.job_starvations;
      sample.d_job_preemptions = sample.job_preemptions;
      sample.d_slow_node_events = sample.slow_node_events;
    }

    sample.straggler_gap = sample.gap_frac > config_.straggler_gap_threshold;
    // §4.4: the prefetcher pulling in more bytes than training consumed over
    // the same window means it is outrunning consumption.
    sample.prefetch_outrun = sample.d_prefetch_bytes > 0 &&
                             sample.d_prefetch_bytes > sample.d_bytes_consumed;
    sample.queue_starved = sample.d_queue_pops > 0 &&
                           saturating_sub(sample.queue_pushes, sample.queue_pops) == 0;
    sample.trace_ring_overflow = sample.trace_dropped > 0;
    // Delta-based: the flags clear on the first healthy interval after the
    // fault, instead of latching for the rest of the run.
    sample.peer_down = sample.d_peer_down_events > 0;
    sample.retry_storm = sample.d_retries > config_.retry_storm_threshold;
    sample.iteration_stalled = sample.d_iteration_stalls > 0;
    sample.corruption_detected = sample.d_corrupt_replies > 0;
    sample.job_starved = sample.d_job_starvations > 0;
    sample.slow_node_detected = sample.d_slow_node_events > 0;
    sample.job_preempt_storm = sample.d_job_preemptions > config_.preempt_storm_threshold;

    prev_ = sample;
    has_prev_ = true;
    emit(sample);
  }

  // Mirror drop accounting into the registry so the CSV dump records it
  // even when nobody exports a trace.
  registry.gauge("telemetry.dropped_events").set(static_cast<double>(sample.trace_dropped));

  // Trigger outside mutex_: the dump is file I/O, and the recorder snapshots
  // its own state under its own lock. The recorder's cooldown/cap keeps a
  // persistently-flagged run from flooding the disk with bundles.
  if (config_.recorder != nullptr && sample.any_flag()) {
    config_.recorder->trigger(first_flag_name(sample));
  }
  return sample;
}

void Monitor::emit(const MonitorSample& sample) {
  if (config_.log_text) {
    std::string flags;
    if (sample.straggler_gap) flags += " straggler_gap";
    if (sample.prefetch_outrun) flags += " prefetch_outrun";
    if (sample.queue_starved) flags += " queue_starved";
    if (sample.trace_ring_overflow) flags += " trace_ring_overflow";
    if (sample.peer_down) flags += " peer_down";
    if (sample.retry_storm) flags += " retry_storm";
    if (sample.iteration_stalled) flags += " iteration_stalled";
    if (sample.corruption_detected) flags += " corruption_detected";
    if (sample.job_starved) flags += " job_starved";
    if (sample.slow_node_detected) flags += " slow_node_detected";
    if (sample.job_preempt_storm) flags += " job_preempt_storm";
    log::info("heartbeat #%llu t=%.1fs iters=%llu(+%llu) gap=%.3f hit=%.3f "
              "consumed=%.1fMB prefetch=%.1fMB flags=[%s]",
              static_cast<unsigned long long>(sample.seq), sample.uptime_s,
              static_cast<unsigned long long>(sample.iterations),
              static_cast<unsigned long long>(sample.d_iterations), sample.gap_frac,
              sample.cache_hit_ratio(),
              static_cast<double>(sample.bytes_consumed) / 1e6,
              static_cast<double>(sample.prefetch_bytes) / 1e6,
              flags.empty() ? " none" : flags.c_str());
  }
  if (!out_open_ && config_.recorder == nullptr) return;

  std::string line;
  line.reserve(512);
  line += '{';
  analysis::append_json_quoted(line, "schema");
  line += ':';
  analysis::append_json_quoted(line, "lobster.heartbeat.v1");
  line += ',';
  append_kv(line, "seq", sample.seq); line += ',';
  append_kv(line, "uptime_s", sample.uptime_s); line += ',';
  append_kv(line, "iterations", sample.iterations); line += ',';
  append_kv(line, "d_iterations", sample.d_iterations); line += ',';
  append_kv(line, "imbalanced_iterations", sample.imbalanced_iterations); line += ',';
  append_kv(line, "gap_frac", sample.gap_frac); line += ',';
  append_kv(line, "cache_hits", sample.cache_hits); line += ',';
  append_kv(line, "cache_misses", sample.cache_misses); line += ',';
  append_kv(line, "cache_hit_ratio", sample.cache_hit_ratio()); line += ',';
  append_kv(line, "bytes_consumed", sample.bytes_consumed); line += ',';
  append_kv(line, "prefetch_bytes", sample.prefetch_bytes); line += ',';
  append_kv(line, "queue_pushes", sample.queue_pushes); line += ',';
  append_kv(line, "queue_pops", sample.queue_pops); line += ',';
  append_kv(line, "trace_emitted", sample.trace_emitted); line += ',';
  append_kv(line, "trace_dropped", sample.trace_dropped); line += ',';
  append_kv(line, "peer_down_events", sample.peer_down_events); line += ',';
  append_kv(line, "retries", sample.retries); line += ',';
  append_kv(line, "iteration_stalls", sample.iteration_stalls); line += ',';
  append_kv(line, "corrupt_replies", sample.corrupt_replies); line += ',';
  append_kv(line, "job_starvations", sample.job_starvations); line += ',';
  append_kv(line, "job_preemptions", sample.job_preemptions); line += ',';
  append_kv(line, "slow_node_events", sample.slow_node_events); line += ',';
  append_kv(line, "jobs_running", sample.jobs_running); line += ',';
  append_kv(line, "jobs_queued", sample.jobs_queued); line += ',';
  analysis::append_json_quoted(line, "flags");
  line += ":{";
  append_kv(line, "straggler_gap", sample.straggler_gap); line += ',';
  append_kv(line, "prefetch_outrun", sample.prefetch_outrun); line += ',';
  append_kv(line, "queue_starved", sample.queue_starved); line += ',';
  append_kv(line, "trace_ring_overflow", sample.trace_ring_overflow); line += ',';
  append_kv(line, "peer_down", sample.peer_down); line += ',';
  append_kv(line, "retry_storm", sample.retry_storm); line += ',';
  append_kv(line, "iteration_stalled", sample.iteration_stalled); line += ',';
  append_kv(line, "corruption_detected", sample.corruption_detected); line += ',';
  append_kv(line, "job_starved", sample.job_starved); line += ',';
  append_kv(line, "slow_node_detected", sample.slow_node_detected); line += ',';
  append_kv(line, "job_preempt_storm", sample.job_preempt_storm);
  line += "}}";
  if (config_.recorder != nullptr) config_.recorder->record_heartbeat(line);
  if (out_open_) {
    line += '\n';
    out_ << line;
  }
}

}  // namespace lobster::telemetry
