// Self-healing runtime: node rejoin and background re-replication
// (DESIGN.md §9 "Recovery model").
//
// Degraded routing (executor + circuit breaker) makes a dead peer cheap to
// route around, but nothing brings it *back*: demand fetches never target a
// directory-down node, so the half-open probe that would discover recovery
// never fires organically, and every sample the dead node solely held
// detours to the PFS forever. The RecoveryManager closes both gaps with a
// background poll thread:
//
//   1. Rejoin: for every node the directory marks down, it issues a
//      DistributionManager::fetch_inventory() probe (which deliberately
//      bypasses the open-breaker fast-fail — it IS the half-open probe).
//      A successful, checksummed inventory round-trip re-closes the
//      breaker, revives the node in the directory, and replays the node's
//      inventory into the residency map — so the very next remote miss
//      routes to the rejoined peer again.
//
//   2. Re-replication: samples orphaned by drop_node() (note_orphans) and
//      samples whose only holder is still down are re-materialized and
//      re-published into the cluster KV store — restoring cache locality
//      for them while (and after) the holder is gone. Runs as a bounded
//      low-priority batch per poll, optionally on a caller-provided pool.
//
// poll_once() exposes one synchronous round for deterministic tests; the
// chaos soak runs the thread. Wire DistributionManager::set_on_breaker_close
// to notify_peer() so an organic breaker close (a probe racing a revive)
// nudges the poll thread immediately instead of waiting out the interval.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cache/directory.hpp"
#include "cache/kv_store.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "runtime/distribution_manager.hpp"

namespace lobster::runtime {

struct RecoveryPolicy {
  /// Pause between poll rounds (a notify_peer() cuts it short).
  Seconds poll_interval = 0.02;
  /// Re-replication batch ceiling per poll round (keeps the background
  /// pass from monopolizing the KV store or the pool).
  std::size_t max_replications_per_poll = 64;
};

struct RecoveryStats {
  std::uint64_t probes = 0;              ///< inventory probes issued to down nodes
  std::uint64_t rejoins = 0;             ///< nodes revived after a successful probe
  std::uint64_t inventory_samples_restored = 0;  ///< residency entries replayed
  std::uint64_t replicated_samples = 0;  ///< orphans/sole-holder samples re-published
};

class RecoveryManager {
 public:
  /// `sample_size` must be thread-safe (payload re-materialization needs
  /// each sample's byte size). The directory and manager must outlive this.
  RecoveryManager(cache::CacheDirectory& directory, DistributionManager& manager,
                  std::function<Bytes(SampleId)> sample_size, RecoveryPolicy policy = {});
  ~RecoveryManager();

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Target for re-replication (unset => re-replication is a no-op and
  /// only rejoin runs). Set before start().
  void set_kv_store(cache::KvStore* store) noexcept { kv_store_ = store; }

  /// Pool for the re-replication batches (unset => they run inline on the
  /// poll thread). Must outlive stop(). Set before start().
  void set_replication_pool(ThreadPool* pool) noexcept { pool_ = pool; }

  /// Starts the background poll thread (idempotent).
  void start();

  /// Stops polling and drains any in-flight replication batch (idempotent).
  void stop();

  /// Records samples drop_node() orphaned so the re-replication pass can
  /// re-home them. Thread-safe; duplicates are coalesced.
  void note_orphans(const std::vector<SampleId>& orphans);

  /// Nudges the poll thread to run a round now (e.g. from
  /// DistributionManager::set_on_breaker_close). Cheap and thread-safe.
  void notify_peer(comm::Rank rank);

  /// One synchronous recovery round: probe every down node, then schedule
  /// one re-replication batch. Returns true if a node rejoined. For tests;
  /// do not mix with a running poll thread.
  bool poll_once();

  RecoveryStats stats() const;

 private:
  bool try_rejoin(NodeId node);
  void schedule_replication();
  void replicate_batch(const std::vector<SampleId>& batch);

  cache::CacheDirectory& directory_;
  DistributionManager& manager_;
  std::function<Bytes(SampleId)> sample_size_;
  RecoveryPolicy policy_;
  cache::KvStore* kv_store_ = nullptr;
  ThreadPool* pool_ = nullptr;

  std::mutex mutex_;  // guards orphans_, nudged_, running_
  std::condition_variable_any cv_;
  std::unordered_set<SampleId> orphans_;
  bool nudged_ = false;
  bool running_ = false;
  std::future<void> replication_future_;

  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> rejoins_{0};
  std::atomic<std::uint64_t> restored_{0};
  std::atomic<std::uint64_t> replicated_{0};

  std::jthread thread_;
};

}  // namespace lobster::runtime
