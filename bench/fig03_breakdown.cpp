// Fig. 3 — execution-time breakdown of the training pipeline under DALI
// for three GPUs (two co-located, one on another node), sampled at the
// beginning / middle / end of epoch 1 (epoch 0 is cache warm-up, as the
// paper discards it). Also reports the Observation 1/2 statistics: the
// fraction of iterations with load imbalance (paper: 65.3 %) and the worst
// loading/training ratio during bursts (paper: up to 3x).
#include <algorithm>
#include <cstdio>

#include "baselines/strategies.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "pipeline/simulator.hpp"

using namespace lobster;

int main(int argc, char** argv) {
  const auto config = bench::parse_args(argc, argv);
  const bench::TraceSession trace_session(config);
  bench::MetricsJson metrics_json(config, "fig03_breakdown");
  const double scale = config.get_double("scale", 16.0);
  const auto nodes = static_cast<std::uint16_t>(config.get_int("nodes", 8));
  bench::warn_unconsumed(config);

  bench::print_header(
      "Fig. 3: pipeline breakdown per iteration (DALI, ImageNet-1K, 8x8 GPUs)",
      "imbalance in 65.3% of iterations; loading up to 3x training during bursts");

  auto preset = pipeline::preset_imagenet1k_multi_node(scale, nodes);
  preset.epochs = 2;

  pipeline::SimulationConfig sim_config;
  sim_config.preset = preset;
  sim_config.strategy = baselines::LoaderStrategy::dali();
  sim_config.detail_epoch_lo = 1;
  sim_config.detail_epoch_hi = 2;
  pipeline::TrainingSimulator simulator(std::move(sim_config));
  const auto result = simulator.run();

  const auto& details = result.metrics.details();
  const std::uint32_t I = result.iterations_per_epoch;
  const std::uint16_t gpus = preset.cluster.gpus_per_node;

  // The paper's three GPUs: Node1/GPU0, Node1/GPU1, Node2/GPU1.
  struct Pick {
    const char* label;
    std::uint32_t flat;
  };
  const Pick picks[] = {
      {"node1.gpu0", flat_gpu_rank({1, 0}, gpus)},
      {"node1.gpu1", flat_gpu_rank({1, 1}, gpus)},
      {"node2.gpu1", flat_gpu_rank({2, 1}, gpus)},
  };

  // 8 iterations each from the beginning, middle and end of the epoch.
  std::vector<std::uint32_t> sampled;
  for (std::uint32_t k = 0; k < 8 && k < I; ++k) sampled.push_back(k);
  for (std::uint32_t k = 0; k < 8 && I / 2 + k < I; ++k) sampled.push_back(I / 2 + k);
  for (std::uint32_t k = 8; k >= 1 && I >= k; --k) sampled.push_back(I - k);

  Table table({"iter", "gpu", "load_ms", "preproc_ms", "train_ms", "idle_ms", "bottleneck"});
  for (const std::uint32_t h : sampled) {
    if (h >= details.size()) continue;
    const auto& record = details[h];
    for (const auto& pick : picks) {
      const auto& gpu = record.gpus.at(pick.flat);
      const bool loading_bound = gpu.load + gpu.preproc > gpu.train;
      table.add_row({std::to_string(h), pick.label, Table::num(gpu.load * 1e3, 2),
                     Table::num(gpu.preproc * 1e3, 2), Table::num(gpu.train * 1e3, 2),
                     Table::num(gpu.idle * 1e3, 2), loading_bound ? "loading" : "training"});
    }
  }
  bench::emit(config, "fig03", table);

  // Observation 1/2 statistics over the measured epoch.
  std::uint64_t imbalanced = 0;
  std::uint64_t loading_bottleneck = 0;
  double worst_ratio = 0.0;
  for (const auto& record : details) {
    if (record.imbalanced) ++imbalanced;
    if (record.loading_bottleneck) ++loading_bottleneck;
    for (const auto& gpu : record.gpus) {
      if (gpu.train > 0.0) worst_ratio = std::max(worst_ratio, (gpu.load + gpu.preproc) / gpu.train);
    }
  }
  std::printf("Observation 1: imbalanced iterations (epoch 1): %llu / %zu (%.1f%%)  [paper: 65.3%%]\n",
              static_cast<unsigned long long>(imbalanced), details.size(),
              100.0 * static_cast<double>(imbalanced) / static_cast<double>(details.size()));
  std::printf("Observation 2: iterations where loading+preproc bottlenecks a GPU: %llu / %zu\n",
              static_cast<unsigned long long>(loading_bottleneck), details.size());
  std::printf("Observation 2: worst (load+preproc)/train ratio: %.2fx  [paper: up to 3x]\n",
              worst_ratio);

  metrics_json.add(bench::make_record("fig03", strf("imagenet1k/%unodes", nodes), "dali",
                                      result, result.metrics.time_after_epoch(1)));
  metrics_json.set_scalar(
      "imbalanced_pct_epoch1",
      100.0 * static_cast<double>(imbalanced) / static_cast<double>(details.size()));
  metrics_json.set_scalar("worst_load_train_ratio", worst_ratio);
  return 0;
}
