#include "cluster/budget_arbiter.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "telemetry/registry.hpp"

namespace lobster::cluster {

KvBudgetArbiter::KvBudgetArbiter(cache::KvStore& store, Bytes budget, ImminenceFn imminence)
    : store_(store), imminence_(std::move(imminence)), budget_(budget) {
  if (!imminence_) throw std::invalid_argument("KvBudgetArbiter: imminence fn required");
}

bool KvBudgetArbiter::make_room_locked(Bytes needed, Bytes target,
                                       cache::CacheDirectory* directory) {
  if (tracked_bytes_ + needed <= target) return true;
  // One sweep builds the victim list farthest-first; evicting from the back
  // keeps the sort ascending-by-imminence so we pop the most distant entry.
  struct Victim {
    SampleId key;
    Bytes bytes;
    IterId distance;
  };
  std::vector<Victim> victims;
  victims.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    const IterId distance = imminence_(key);
    if (distance == 0) {
      ++stats_.protected_entries;
      continue;  // needed this round by some job: never a victim
    }
    victims.push_back({key, entry.bytes, distance});
  }
  std::sort(victims.begin(), victims.end(), [](const Victim& a, const Victim& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.key < b.key;
  });
  while (tracked_bytes_ + needed > target && !victims.empty()) {
    const Victim victim = victims.back();
    victims.pop_back();
    const auto it = entries_.find(victim.key);
    tracked_bytes_ -= it->second.bytes;
    per_namespace_[cache::namespace_of(victim.key)] -= it->second.bytes;
    if (directory != nullptr) directory->remove(victim.key, it->second.holder);
    entries_.erase(it);
    (void)store_.erase(victim.key);
    ++stats_.evictions;
    LOBSTER_METRIC_COUNT("cluster.arbiter.evictions", 1);
  }
  return tracked_bytes_ + needed <= target;
}

Status KvBudgetArbiter::publish(SampleId key, cache::KvStore::PayloadPtr payload,
                                NodeId holder, cache::CacheDirectory* directory) {
  if (payload == nullptr) throw std::invalid_argument("KvBudgetArbiter::publish: null payload");
  const Bytes size = payload->size();
  const std::scoped_lock lock(mutex_);
  ++stats_.publishes;
  if (const auto it = entries_.find(key); it != entries_.end()) {
    // Already cached (another node of the same namespace published first, or
    // a re-publish after rejoin): keep the existing holder, count nothing.
    return Status{};
  }
  if (budget_ != 0 && !make_room_locked(size, budget_, directory)) {
    ++stats_.rejected_publishes;
    LOBSTER_METRIC_COUNT("cluster.arbiter.rejected_publishes", 1);
    return Status::overflow("cluster KV budget: room would need an imminent victim");
  }
  const Status put = store_.put(key, std::move(payload));
  if (!put.ok()) return put;
  entries_.emplace(key, Entry{size, holder});
  tracked_bytes_ += size;
  per_namespace_[cache::namespace_of(key)] += size;
  if (directory != nullptr) directory->add(key, holder);
  return Status{};
}

void KvBudgetArbiter::set_budget(Bytes budget, cache::CacheDirectory* directory) {
  const std::scoped_lock lock(mutex_);
  const bool shrinking = budget != 0 && (budget_ == 0 || budget < budget_);
  budget_ = budget;
  if (!shrinking) return;
  ++stats_.shrinks;
  (void)make_room_locked(0, budget_, directory);
  stats_.deficit_bytes = tracked_bytes_ > budget_ ? tracked_bytes_ - budget_ : 0;
  LOBSTER_METRIC_GAUGE("cluster.arbiter.deficit_bytes", stats_.deficit_bytes);
}

Bytes KvBudgetArbiter::budget() const {
  const std::scoped_lock lock(mutex_);
  return budget_;
}

Bytes KvBudgetArbiter::bytes_tracked() const {
  const std::scoped_lock lock(mutex_);
  return tracked_bytes_;
}

Bytes KvBudgetArbiter::namespace_bytes(cache::NamespaceId ns) const {
  const std::scoped_lock lock(mutex_);
  const auto it = per_namespace_.find(ns);
  return it == per_namespace_.end() ? 0 : it->second;
}

Bytes KvBudgetArbiter::drop_namespace(cache::NamespaceId ns,
                                      cache::CacheDirectory* directory) {
  const std::scoped_lock lock(mutex_);
  Bytes freed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (cache::namespace_of(it->first) != ns) {
      ++it;
      continue;
    }
    freed += it->second.bytes;
    if (directory != nullptr) directory->remove(it->first, it->second.holder);
    it = entries_.erase(it);
  }
  tracked_bytes_ -= freed;
  per_namespace_.erase(ns);
  (void)store_.erase_namespace(ns);
  return freed;
}

std::vector<KvBudgetArbiter::ManifestEntry> KvBudgetArbiter::namespace_manifest(
    cache::NamespaceId ns) const {
  const std::scoped_lock lock(mutex_);
  std::vector<ManifestEntry> manifest;
  for (const auto& [key, entry] : entries_) {
    if (cache::namespace_of(key) == ns) manifest.push_back({key, entry.holder, entry.bytes});
  }
  std::sort(manifest.begin(), manifest.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) { return a.key < b.key; });
  return manifest;
}

bool KvBudgetArbiter::rehome(SampleId key, NodeId holder) {
  const std::scoped_lock lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  it->second.holder = holder;
  return true;
}

KvBudgetArbiter::Stats KvBudgetArbiter::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace lobster::cluster
