// Byte/time unit helpers and human-readable formatting.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace lobster {

inline constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ULL; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ULL * 1024ULL; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return v * 1024ULL * 1024ULL * 1024ULL; }

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/// Formats a byte count as e.g. "1.25 GiB".
std::string format_bytes(Bytes b);

/// Formats a duration as e.g. "12.3 ms" / "4.56 s".
std::string format_seconds(Seconds s);

/// Formats a throughput as e.g. "850 MiB/s".
std::string format_throughput(double bytes_per_second);

}  // namespace lobster
