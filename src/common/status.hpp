// Typed operation status for the fault-tolerant remote tier.
//
// The online runtime's remote paths used to report failure as `bool` or
// `std::nullopt`, which cannot distinguish "the peer answered: not here"
// from "the peer never answered" from "we are shutting down" — and the
// degraded-routing logic (DESIGN.md §9) branches on exactly that
// distinction. `Status` carries a machine-checkable cause plus an optional
// human detail string; `Result<T>` couples it with a value so callers write
//
//   auto fetched = manager.fetch_remote(sample, holder);
//   if (!fetched.ok()) {
//     if (fetched.status().code() == StatusCode::kPeerDown) ...reroute...
//   }
//
// Conventions:
//  - A default-constructed Status is success; factories exist only for the
//    failure causes, so `return Status{};` / `return payload;` is the happy
//    path and every error names its cause.
//  - `Result<T>` is [[nodiscard]]: dropping a fetch result on the floor is
//    always a bug. Plain Status returns may be discarded (e.g. best-effort
//    telemetry sends).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace lobster {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kTimeout,   ///< deadline expired before the operation completed
  kPeerDown,  ///< remote endpoint is believed dead (killed / circuit open)
  kShutdown,  ///< subsystem is shutting down; retrying is pointless
  kOverflow,  ///< a bounded resource (queue, store capacity) rejected the op
  kNotFound,  ///< authoritative miss: the peer/store answered "don't have it"
  kCorrupt,   ///< a payload arrived but failed integrity verification
  kInvalid,   ///< caller-supplied configuration/argument failed validation
};

constexpr const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kPeerDown: return "peer_down";
    case StatusCode::kShutdown: return "shutdown";
    case StatusCode::kOverflow: return "overflow";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kCorrupt: return "corrupt";
    case StatusCode::kInvalid: return "invalid";
  }
  return "unknown";
}

class Status {
 public:
  /// Success. The only way to build an ok Status — failure states go
  /// through the named factories below.
  Status() = default;

  static Status timeout(std::string detail = {}) {
    return Status(StatusCode::kTimeout, std::move(detail));
  }
  static Status peer_down(std::string detail = {}) {
    return Status(StatusCode::kPeerDown, std::move(detail));
  }
  static Status shutdown(std::string detail = {}) {
    return Status(StatusCode::kShutdown, std::move(detail));
  }
  static Status overflow(std::string detail = {}) {
    return Status(StatusCode::kOverflow, std::move(detail));
  }
  static Status not_found(std::string detail = {}) {
    return Status(StatusCode::kNotFound, std::move(detail));
  }
  static Status corrupt(std::string detail = {}) {
    return Status(StatusCode::kCorrupt, std::move(detail));
  }
  static Status invalid(std::string detail = {}) {
    return Status(StatusCode::kInvalid, std::move(detail));
  }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return ok(); }

  StatusCode code() const noexcept { return code_; }
  const std::string& detail() const noexcept { return detail_; }
  const char* code_name() const noexcept { return status_code_name(code_); }

  /// "timeout: recv deadline expired" / "ok".
  std::string to_string() const {
    if (detail_.empty()) return code_name();
    return std::string(code_name()) + ": " + detail_;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;  // detail is advisory, not identity
  }

 private:
  Status(StatusCode code, std::string detail) : code_(code), detail_(std::move(detail)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string detail_;
};

/// A value or a typed failure cause. Mirrors std::optional's access surface
/// (has_value / operator* / operator->) so migrated call sites keep their
/// shape, and adds `status()` for branching on the cause.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Success. Implicit so `return payload;` works.
  Result(T value) : value_(std::move(value)) {}

  /// Failure. Implicit so `return Status::timeout(...);` works. Passing an
  /// ok Status without a value is a logic error, caught loudly.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) throw std::logic_error("Result: ok status requires a value");
  }

  bool ok() const noexcept { return value_.has_value(); }
  bool has_value() const noexcept { return ok(); }
  explicit operator bool() const noexcept { return ok(); }

  /// kOk when a value is present.
  const Status& status() const noexcept { return status_; }

  const T& value() const& { return checked(); }
  T& value() & { return checked(); }
  /// Moves the value out (for single-consumer call sites).
  T&& take() { return std::move(checked()); }

  const T& operator*() const& { return checked(); }
  T& operator*() & { return checked(); }
  const T* operator->() const { return &checked(); }
  T* operator->() { return &checked(); }

  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  const T& checked() const {
    if (!ok()) throw std::logic_error("Result: access without value (" + status_.to_string() + ")");
    return *value_;
  }
  T& checked() {
    if (!ok()) throw std::logic_error("Result: access without value (" + status_.to_string() + ")");
    return *value_;
  }

  std::optional<T> value_;
  Status status_;  // kOk iff value_ holds
};

}  // namespace lobster
