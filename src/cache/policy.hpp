// Eviction policy interface for the node-local sample cache.
//
// Policies see insert/access/evict notifications and, when the cache is
// full, are asked to pick a victim. Clairvoyant policies (Lobster, and the
// oracle-assisted comparisons) receive the future-access oracle and the
// distributed-cache directory through the EvictionContext.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace lobster::data {
class AccessOracle;
}

namespace lobster::cache {

class CacheDirectory;

struct EvictionContext {
  NodeId node = 0;
  IterId now = 0;  ///< current global iteration
  std::uint32_t iterations_per_epoch = 1;
  const data::AccessOracle* oracle = nullptr;
  const CacheDirectory* directory = nullptr;
  /// Returns false for samples that must not be evicted right now (pinned:
  /// in flight or needed by the current iteration).
  std::function<bool(SampleId)> can_evict;
  /// Next-use distance of the sample about to be inserted (kNeverIter when
  /// unknown); lets the policy refuse evictions that would sacrifice a
  /// sooner-needed resident for a later-needed newcomer (§4.4, coordination
  /// with prefetching).
  IterId incoming_reuse_distance = kNeverIter;
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  virtual const char* name() const noexcept = 0;

  /// A sample became resident.
  virtual void on_insert(SampleId sample, IterId now) = 0;
  /// A resident sample was read by a GPU of this node.
  virtual void on_access(SampleId sample, IterId now) = 0;
  /// A sample left the cache (eviction or external invalidation).
  virtual void on_evict(SampleId sample) = 0;

  /// Chooses a victim among residents, or kInvalidSample to refuse (the
  /// caller then rejects the insertion instead of evicting).
  virtual SampleId pick_victim(const EvictionContext& context) = 0;

  /// Epoch boundary hook — clairvoyant policies refresh oracle-derived keys
  /// here (the oracle window slid). Default: no-op.
  virtual void on_epoch(const EvictionContext& /*context*/) {}
};

}  // namespace lobster::cache
