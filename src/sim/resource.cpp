#include "sim/resource.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace lobster::sim {

namespace {
// Completion tolerance: treat jobs within half a byte of done as done, so
// floating-point residue never schedules zero-length events forever.
constexpr double kDoneEpsilonBytes = 0.5;
}  // namespace

Resource::Resource(Engine& engine, std::string name, double capacity_bps, double per_stream_bps)
    : engine_(engine),
      name_(std::move(name)),
      capacity_bps_(capacity_bps),
      per_stream_bps_(per_stream_bps),
      last_update_(engine.now()) {
  if (capacity_bps <= 0.0) throw std::invalid_argument("Resource: capacity must be positive");
  if (per_stream_bps <= 0.0) throw std::invalid_argument("Resource: per-stream cap must be positive");
}

double Resource::rate_for(std::size_t n) const noexcept {
  if (n == 0) return 0.0;
  return std::min(capacity_bps_ * scale_ / static_cast<double>(n), per_stream_bps_);
}

void Resource::apply_scale(double scale) {
  if (scale < 0.0 || scale > 1.0) {
    throw std::invalid_argument("Resource: capacity scale must be in [0, 1]");
  }
  settle();  // in-flight bytes advance at the old rate up to now()
  scale_ = scale;
  reschedule();
}

void Resource::set_capacity_profile(CapacityProfile profile) {
  // A newer profile supersedes the old one's future steps; the generation
  // stamp lets already-queued step events recognise they are stale (the
  // engine has no bulk cancel, and individual cancels would need us to
  // track every EventId).
  const std::uint64_t generation = ++profile_generation_;
  const Seconds now = engine_.now();
  apply_scale(profile.scale_at(now));
  for (const CapacityProfile::Step& step : profile.steps()) {
    if (step.t <= now) continue;
    const double scale = step.scale;
    engine_.schedule_at(step.t, [this, generation, scale] {
      if (generation != profile_generation_) return;  // superseded
      apply_scale(scale);
    });
  }
}

JobId Resource::submit(Bytes bytes, JobCompletion on_done) {
  settle();
  const JobId id = next_id_++;
  jobs_.emplace(id, Job{static_cast<double>(bytes), bytes, std::move(on_done)});
  reschedule();
  return id;
}

bool Resource::abort(JobId id) {
  settle();
  const bool erased = jobs_.erase(id) > 0;
  if (erased) reschedule();
  return erased;
}

void Resource::settle() {
  const Seconds now = engine_.now();
  const Seconds elapsed = now - last_update_;
  if (elapsed > 0.0 && !jobs_.empty()) {
    const double rate = rate_for(jobs_.size());
    const double progressed = rate * elapsed;
    for (auto& [id, job] : jobs_) {
      job.remaining_bytes = std::max(0.0, job.remaining_bytes - progressed);
    }
    busy_accum_ += elapsed;
  }
  last_update_ = now;
  complete_due_jobs();
}

void Resource::complete_due_jobs() {
  // Collect first (completions may re-enter submit()).
  struct Done {
    JobId id;
    Bytes bytes;
    JobCompletion cb;
  };
  std::vector<Done> done;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining_bytes <= kDoneEpsilonBytes) {
      done.push_back({it->first, it->second.total_bytes, std::move(it->second.on_done)});
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  // Deterministic order: completions sorted by job id.
  std::sort(done.begin(), done.end(), [](const Done& a, const Done& b) { return a.id < b.id; });
  const Seconds now = engine_.now();
  for (auto& d : done) {
    bytes_completed_ += d.bytes;
    if (d.cb) d.cb(d.id, now);
  }
}

void Resource::reschedule() {
  if (pending_event_ != kInvalidEvent) {
    engine_.cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
  if (jobs_.empty()) return;
  const double rate = rate_for(jobs_.size());
  if (rate <= 0.0) return;  // stalled (capacity scaled to 0): no completion event
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, job] : jobs_) min_remaining = std::min(min_remaining, job.remaining_bytes);
  const Seconds eta = std::max(0.0, min_remaining) / rate;
  pending_event_ = engine_.schedule_in(eta, [this] {
    pending_event_ = kInvalidEvent;
    settle();
    reschedule();
  });
}

Seconds Resource::busy_time() const noexcept {
  Seconds total = busy_accum_;
  if (!jobs_.empty()) total += engine_.now() - last_update_;
  return total;
}

}  // namespace lobster::sim
