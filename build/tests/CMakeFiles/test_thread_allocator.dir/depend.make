# Empty dependencies file for test_thread_allocator.
# This may be replaced when dependencies are built.
