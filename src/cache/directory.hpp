// Distributed cache directory: which nodes hold which samples.
//
// The paper's distributed cache lets a node fetch a sample from a peer's
// cache instead of the PFS (§2). The directory is the global residency map
// every node can consult (deterministic prefetching makes residency a
// global property, §4.4). The reuse-count eviction policy also needs it:
// a node must not evict the *last* cached copy in the group if the sample
// is still needed by anyone (§4.4).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace lobster::cache {

class CacheDirectory {
 public:
  explicit CacheDirectory(std::uint16_t nodes);

  void add(SampleId sample, NodeId node);
  void remove(SampleId sample, NodeId node);

  /// Number of nodes currently caching the sample.
  std::uint32_t holder_count(SampleId sample) const;

  /// True if `node` holds the sample.
  bool holds(SampleId sample, NodeId node) const;

  /// True if some node *other than* `node` holds the sample.
  bool held_elsewhere(SampleId sample, NodeId node) const;

  /// True if `node` is the only holder.
  bool sole_holder(SampleId sample, NodeId node) const;

  /// Any holder other than `node` (for remote fetch routing); returns the
  /// lowest-ranked holder for determinism. kInvalidNode if none.
  static constexpr NodeId kInvalidNode = static_cast<NodeId>(~0U);
  NodeId peer_holder(SampleId sample, NodeId node) const;

  std::uint16_t nodes() const noexcept { return nodes_; }
  std::size_t tracked_samples() const noexcept { return holders_.size(); }

 private:
  std::uint16_t nodes_;
  // Bitmask of holder nodes per sample (nodes <= 64 in every experiment;
  // checked in the constructor).
  std::unordered_map<SampleId, std::uint64_t> holders_;
};

}  // namespace lobster::cache
