// Anomaly-triggered flight recorder (DESIGN.md §11).
//
// Post-hoc analysis has a blind spot: by the time a soak finishes, the
// interesting window — the 400ms where a node died, a breaker opened and
// four fetches detoured — has been overwritten in the bounded rings or
// diluted across a million healthy samples. The flight recorder closes it
// the way an aircraft FDR does: it continuously observes the bounded
// recent-history rings (SpanLog, EventLog, plus its own heartbeat ring fed
// by the Monitor) and, when an anomaly fires, freezes them into a
// self-contained **incident bundle** on disk:
//
//   <out_dir>/incident-NNN/
//     manifest.json    lobster.incident.v1: reason, trigger time, counts,
//                      config echo, file list
//     spans.jsonl      lobster.spans.v1 snapshot (causal fetch trees)
//     events.jsonl     lobster.events.v1 snapshot (state transitions)
//     heartbeats.jsonl lobster.heartbeat.v1 (last-N monitor samples)
//     metrics.csv      full metric registry dump at trigger time
//
// Triggers: any Monitor anomaly flag (wired via MonitorConfig.recorder),
// the iteration watchdog's stall callback, or an explicit trigger() (CI
// forces one bundle per smoke run so the capture path itself is tested).
// A cooldown plus a bundle cap keep a flapping anomaly from filling the
// disk; suppressed triggers are still counted.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace lobster::telemetry {

struct FlightRecorderConfig {
  std::string out_dir;            ///< bundles land in <out_dir>/incident-NNN
  std::size_t max_heartbeats = 64;
  std::size_t max_bundles = 8;    ///< further triggers are counted, not dumped
  double cooldown_s = 1.0;        ///< min spacing between bundles
  /// Echoed verbatim into every manifest ("config" object, pre-serialized
  /// JSON). Lets a bundle carry the exact run configuration that produced
  /// it without the recorder knowing any config schema.
  std::string config_echo_json = "{}";
};

/// Outcome of one trigger() call.
struct IncidentResult {
  bool dumped = false;       ///< a bundle was written
  std::uint64_t seq = 0;     ///< bundle number (when dumped)
  std::string dir;           ///< bundle directory (when dumped)
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Feeds one monitor heartbeat JSONL line into the bounded ring.
  void record_heartbeat(std::string line);

  /// Freezes the rings into a bundle. `reason` names the anomaly (e.g.
  /// "retry_storm", "watchdog_stall", "forced"). Returns dumped=false when
  /// suppressed by cooldown / bundle cap or when the dump failed.
  IncidentResult trigger(const std::string& reason);

  std::uint64_t bundles_written() const;
  std::uint64_t triggers_suppressed() const;
  const FlightRecorderConfig& config() const noexcept { return config_; }

 private:
  FlightRecorderConfig config_;
  mutable std::mutex mutex_;
  std::deque<std::string> heartbeats_;
  std::uint64_t bundles_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t last_dump_us_ = 0;  ///< Tracer wall epoch; 0 = never
};

}  // namespace lobster::telemetry
