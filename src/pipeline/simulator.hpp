// The training-pipeline simulator.
//
// Replays data-parallel DNN training over the simulated cluster at
// iteration granularity, with the full storage hierarchy, distributed
// cache, prefetching and thread-management machinery in the loop:
//
//   for every iteration h and node i:
//     1. classify each GPU's mini-batch against the node cache and the
//        cluster directory (local / remote / PFS) and fetch the misses
//        into the cache (evicting via the strategy's policy);
//     2. allocate loading + preprocessing threads per the strategy —
//        fixed splits for the baselines; the knee-seeking preprocessing
//        allocation, Algorithm 1 loading allocation, and preprocessing→
//        loading thread stealing (§4.1 step 2) for Lobster;
//     3. obtain ground-truth stage durations from the storage and
//        preprocessing models *with* stochastic I/O noise and node-level
//        PFS bursts (Lobster planned on noise-free predictions, so residual
//        imbalance survives, as in the paper's §5.3);
//     4. synchronize all N×M GPUs on the all-reduce barrier; record
//        per-GPU idle time, imbalance, bottleneck attribution;
//     5. run the strategy's post-iteration cache maintenance: Lobster's
//        reuse-count / reuse-distance eviction sweep, then deterministic
//        prefetching into the spare capacity and spare loading time.
//
// Everything is deterministic in (preset.seed, strategy): noise streams are
// keyed by (iteration, node, gpu).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/strategies.hpp"
#include "cache/directory.hpp"
#include "cache/node_cache.hpp"
#include "cache/prefetcher.hpp"
#include "core/perf_model.hpp"
#include "core/preproc_model.hpp"
#include "core/thread_allocator.hpp"
#include "data/dataset.hpp"
#include "data/oracle.hpp"
#include "data/trace.hpp"
#include "sim/fetch_replay.hpp"
#include "data/sampler.hpp"
#include "pipeline/calibration.hpp"
#include "pipeline/metrics.hpp"
#include "pipeline/trainer_model.hpp"
#include "runtime/plan.hpp"
#include "storage/hierarchy.hpp"

namespace lobster::pipeline {

struct SimulationConfig {
  ExperimentPreset preset;
  baselines::LoaderStrategy strategy;
  /// Epoch window [lo, hi) for which detailed per-GPU records are retained.
  std::uint32_t detail_epoch_lo = 0;
  std::uint32_t detail_epoch_hi = 0;
  /// Algorithm 1 parameters, including every load-balance knob
  /// (allocator.balance.total_load_threads is set per iteration by the
  /// simulator; tau, max_preproc_steals and the rest apply as given).
  core::AllocatorConfig allocator;
  /// Oracle lookahead in epochs (>= 3 covers the reuse-distance policy's
  /// 2·I horizon).
  std::uint32_t oracle_window_epochs = 3;
  /// Fraction of the node's PFS/remote capacity usable for background
  /// prefetching during spare pipeline time.
  double prefetch_bandwidth_fraction = 0.8;
  /// When non-null, the run records every thread/prefetch/eviction decision
  /// here — the offline planning mode of §4.5.
  runtime::Plan* record_plan = nullptr;
  /// When non-null, every sample access is appended with the tier that
  /// served it (the §3 motivation-study instrumentation).
  data::AccessTrace* record_trace = nullptr;
  /// Ground-truth loading times from the discrete-event fetch replay instead
  /// of the closed-form Eq. 1. Lobster's *decisions* still use the analytic
  /// model either way — this separates the planner's model from the
  /// simulated reality (slower; ~per-sample event costs).
  bool des_loading = false;
};

struct SimulationResult {
  RunMetrics metrics;
  std::vector<cache::CacheStats> node_cache_stats;  ///< DRAM tier
  std::vector<cache::CacheStats> node_ssd_stats;    ///< SSD tier (zeros when off)
  std::uint32_t iterations_per_epoch = 0;
  double samples_per_second = 0.0;
  /// Mean loading threads per node actually used (diagnostics).
  double mean_load_threads = 0.0;
  double mean_preproc_threads = 0.0;
};

class TrainingSimulator {
 public:
  explicit TrainingSimulator(SimulationConfig config);
  ~TrainingSimulator();

  TrainingSimulator(const TrainingSimulator&) = delete;
  TrainingSimulator& operator=(const TrainingSimulator&) = delete;

  /// Runs the configured number of epochs and returns all metrics.
  SimulationResult run();

  const data::SampleCatalog& catalog() const noexcept { return *catalog_; }
  const data::EpochSampler& sampler() const noexcept { return *sampler_; }

 private:
  struct NodeState;

  /// Per-GPU tier classification + cache fill for one node-iteration.
  /// When `fetch_lists` is non-null (DES loading mode), the per-sample
  /// (bytes, tier) fetch list of each GPU is recorded there.
  std::vector<core::GpuDemand> classify_and_fetch(NodeState& node, std::uint32_t epoch,
                                                  std::uint32_t h,
                                                  std::vector<GpuIterRecord>& records,
                                                  std::vector<std::vector<sim::Fetch>>* fetch_lists);

  /// Thread allocation for one node under the configured strategy.
  struct ThreadDecision {
    std::vector<double> load_threads;  ///< per GPU
    double preproc_threads_per_gpu = 1.0;
  };
  ThreadDecision decide_threads(NodeState& node, const std::vector<core::GpuDemand>& demands,
                                const storage::Contention& contention);

  /// Lobster's post-iteration reuse-count / reuse-distance sweep.
  void reuse_sweep(NodeState& node, std::uint32_t epoch, std::uint32_t h);

  /// Slowdown multiplier for local reads / preprocessing when the strategy
  /// is not NUMA-aware (§5.2(b)).
  double numa_factor() const noexcept;

  /// Deterministic prefetching: background staging with the node I/O
  /// capacity left over after this iteration's demand fetches, using the
  /// strategy's own loading threads.
  void prefetch(NodeState& node, std::uint32_t epoch, std::uint32_t h,
                Seconds iteration_duration, const storage::TierBytes& demand,
                double total_load_threads);

  SimulationConfig config_;
  std::unique_ptr<data::SampleCatalog> catalog_;
  std::unique_ptr<data::EpochSampler> sampler_;
  std::unique_ptr<data::FutureAccessOracle> oracle_;
  std::unique_ptr<cache::CacheDirectory> directory_;
  std::unique_ptr<storage::StorageModel> storage_;
  std::unique_ptr<core::PreprocGroundTruth> preproc_truth_;
  std::unique_ptr<core::PreprocModelPortfolio> preproc_portfolio_;
  std::unique_ptr<core::PerfModel> perf_model_;
  std::unique_ptr<cache::Prefetcher> prefetcher_;
  TrainerModel trainer_;
  std::vector<std::unique_ptr<NodeState>> nodes_;

  std::uint32_t knee_preproc_threads_ = 1;
  runtime::IterationPlan* plan_iter_ = nullptr;  ///< recording hook (may be null)
  double thread_usage_load_ = 0.0;
  double thread_usage_preproc_ = 0.0;
  std::uint64_t thread_usage_samples_ = 0;
};

/// Convenience: run one (preset, strategy) pair with default simulator
/// settings and return the result.
SimulationResult simulate(const ExperimentPreset& preset,
                          const baselines::LoaderStrategy& strategy,
                          std::uint32_t detail_epoch_lo = 0, std::uint32_t detail_epoch_hi = 0);

}  // namespace lobster::pipeline
