#include "cache/directory.hpp"

#include <bit>
#include <mutex>
#include <stdexcept>

namespace lobster::cache {

CacheDirectory::CacheDirectory(std::uint16_t nodes) : nodes_(nodes) {
  if (nodes == 0 || nodes > 64) {
    throw std::invalid_argument("CacheDirectory: supports 1..64 nodes");
  }
}

void CacheDirectory::add(SampleId sample, NodeId node) {
  const std::unique_lock lock(map_mutex_);
  holders_[sample] |= (1ULL << node);
}

void CacheDirectory::remove(SampleId sample, NodeId node) {
  const std::unique_lock lock(map_mutex_);
  const auto it = holders_.find(sample);
  if (it == holders_.end()) return;
  it->second &= ~(1ULL << node);
  if (it->second == 0) holders_.erase(it);
}

std::uint32_t CacheDirectory::holder_count(SampleId sample) const {
  const std::shared_lock lock(map_mutex_);
  const auto it = holders_.find(sample);
  return it == holders_.end() ? 0U : static_cast<std::uint32_t>(std::popcount(it->second));
}

bool CacheDirectory::holds(SampleId sample, NodeId node) const {
  const std::shared_lock lock(map_mutex_);
  const auto it = holders_.find(sample);
  return it != holders_.end() && (it->second & (1ULL << node)) != 0;
}

bool CacheDirectory::held_elsewhere(SampleId sample, NodeId node) const {
  const std::shared_lock lock(map_mutex_);
  const auto it = holders_.find(sample);
  return it != holders_.end() && (it->second & ~(1ULL << node) & up_mask()) != 0;
}

bool CacheDirectory::sole_holder(SampleId sample, NodeId node) const {
  const std::shared_lock lock(map_mutex_);
  const auto it = holders_.find(sample);
  return it != holders_.end() && (it->second & up_mask()) == (1ULL << node);
}

NodeId CacheDirectory::peer_holder(SampleId sample, NodeId node) const {
  return peer_holder(sample, node, 0);
}

NodeId CacheDirectory::peer_holder(SampleId sample, NodeId node,
                                   std::uint64_t exclude_mask) const {
  const std::shared_lock lock(map_mutex_);
  const auto it = holders_.find(sample);
  if (it == holders_.end()) return kInvalidNode;
  const std::uint64_t others = it->second & ~(1ULL << node) & up_mask() & ~exclude_mask;
  if (others == 0) return kInvalidNode;
  return static_cast<NodeId>(std::countr_zero(others));
}

void CacheDirectory::mark_node_down(NodeId node) {
  if (node >= nodes_) return;
  down_mask_.fetch_or(1ULL << node, std::memory_order_acq_rel);
}

void CacheDirectory::revive_node(NodeId node) {
  if (node >= nodes_) return;
  down_mask_.fetch_and(~(1ULL << node), std::memory_order_acq_rel);
}

bool CacheDirectory::node_down(NodeId node) const {
  if (node >= nodes_) return false;
  return (down_mask_.load(std::memory_order_acquire) & (1ULL << node)) != 0;
}

std::uint32_t CacheDirectory::down_count() const {
  return static_cast<std::uint32_t>(
      std::popcount(down_mask_.load(std::memory_order_acquire)));
}

std::vector<SampleId> CacheDirectory::drop_node(NodeId node) {
  std::vector<SampleId> orphaned;
  if (node >= nodes_) return orphaned;
  mark_node_down(node);
  const std::unique_lock lock(map_mutex_);
  const std::uint64_t bit = 1ULL << node;
  for (auto it = holders_.begin(); it != holders_.end();) {
    if ((it->second & bit) == 0) {
      ++it;
      continue;
    }
    it->second &= ~bit;
    if (it->second == 0) {
      orphaned.push_back(it->first);
      it = holders_.erase(it);
    } else {
      ++it;
    }
  }
  return orphaned;
}

std::vector<SampleId> CacheDirectory::sole_holder_samples(NodeId node) const {
  std::vector<SampleId> samples;
  if (node >= nodes_) return samples;
  const std::shared_lock lock(map_mutex_);
  const std::uint64_t bit = 1ULL << node;
  for (const auto& [sample, mask] : holders_) {
    if (mask == bit) samples.push_back(sample);
  }
  return samples;
}

std::size_t CacheDirectory::tracked_samples() const {
  const std::shared_lock lock(map_mutex_);
  return holders_.size();
}

}  // namespace lobster::cache
