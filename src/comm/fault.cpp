#include "comm/fault.hpp"

#include <stdexcept>

#include "common/logging.hpp"
#include "telemetry/registry.hpp"

namespace lobster::comm {

FaultPlan::FaultPlan(std::uint16_t world_size, std::uint64_t seed)
    : world_size_(world_size),
      specs_(world_size),
      down_(world_size, false),
      rng_(derive_seed(seed, 0xFA07ULL)) {
  if (world_size == 0) throw std::invalid_argument("FaultPlan: world_size must be >= 1");
}

FaultSpec& FaultPlan::spec(Rank rank) {
  if (rank >= world_size_) throw std::out_of_range("FaultPlan: rank out of range");
  return specs_[rank];
}

void FaultPlan::kill(Rank rank) {
  if (rank >= world_size_) throw std::out_of_range("FaultPlan: rank out of range");
  const std::scoped_lock lock(mutex_);
  if (down_[rank]) return;
  down_[rank] = true;
  ++killed_;
  LOBSTER_METRIC_COUNT("fault.nodes_killed", 1);
  log::warn("fault: node %u killed", static_cast<unsigned>(rank));
}

void FaultPlan::revive(Rank rank) {
  if (rank >= world_size_) throw std::out_of_range("FaultPlan: rank out of range");
  const std::scoped_lock lock(mutex_);
  if (!down_[rank]) return;
  down_[rank] = false;
  ++revived_;
  LOBSTER_METRIC_COUNT("fault.nodes_revived", 1);
  log::info("fault: node %u revived", static_cast<unsigned>(rank));
}

bool FaultPlan::is_down(Rank rank) const {
  if (rank >= world_size_) throw std::out_of_range("FaultPlan: rank out of range");
  const std::scoped_lock lock(mutex_);
  return down_[rank];
}

void FaultPlan::on_iteration(IterId iter) {
  {
    const std::scoped_lock lock(mutex_);
    clock_ = iter;
  }
  for (Rank rank = 0; rank < world_size_; ++rank) {
    bool fire_kill = false;
    bool fire_revive = false;
    {
      const std::scoped_lock lock(mutex_);
      const FaultSpec& spec = specs_[rank];
      // A spec with both events is a kill window: revive wins once the
      // clock passes revive_at_iter, so "kill at 4, revive at 8" composes.
      fire_revive = spec.revive_at_iter != kNeverIter && iter >= spec.revive_at_iter &&
                    down_[rank];
      fire_kill = !fire_revive && spec.kill_at_iter != kNeverIter &&
                  iter >= spec.kill_at_iter &&
                  (spec.revive_at_iter == kNeverIter || iter < spec.revive_at_iter) &&
                  !down_[rank];
    }
    if (fire_kill) kill(rank);
    if (fire_revive) revive(rank);
  }
}

double FaultPlan::capacity_scale(Rank rank) const {
  if (rank >= world_size_) throw std::out_of_range("FaultPlan: rank out of range");
  const std::scoped_lock lock(mutex_);
  if (down_[rank]) return 0.0;
  return specs_[rank].capacity.scale_at(static_cast<double>(clock_));
}

FaultPlan::Verdict FaultPlan::on_message(Rank from, Rank to) {
  Verdict verdict;
  if (from == to) return verdict;  // local delivery never crosses the fabric
  const std::scoped_lock lock(mutex_);
  if (down_[from] || down_[to]) {
    verdict.drop = true;
    ++dropped_;
    LOBSTER_METRIC_COUNT("fault.dropped_messages", 1);
    return verdict;
  }
  const FaultSpec& spec = specs_[from];
  if (spec.drop_fraction > 0.0 && rng_.uniform() < spec.drop_fraction) {
    verdict.drop = true;
    ++dropped_;
    LOBSTER_METRIC_COUNT("fault.dropped_messages", 1);
    return verdict;
  }
  if (spec.corrupt_fraction > 0.0 && rng_.uniform() < spec.corrupt_fraction) {
    verdict.corrupt = true;
    ++corrupted_;
    LOBSTER_METRIC_COUNT("fault.corrupted_messages", 1);
  }
  if (spec.delay_s > 0.0 || spec.delay_jitter_s > 0.0) {
    verdict.delay_s = spec.delay_s;
    if (spec.delay_jitter_s > 0.0) verdict.delay_s += rng_.uniform(0.0, spec.delay_jitter_s);
    ++delayed_;
    LOBSTER_METRIC_COUNT("fault.delayed_messages", 1);
  }
  return verdict;
}

std::uint64_t FaultPlan::dropped_messages() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

std::uint64_t FaultPlan::delayed_messages() const {
  const std::scoped_lock lock(mutex_);
  return delayed_;
}

std::uint64_t FaultPlan::corrupted_messages() const {
  const std::scoped_lock lock(mutex_);
  return corrupted_;
}

std::uint64_t FaultPlan::nodes_killed() const {
  const std::scoped_lock lock(mutex_);
  return killed_;
}

std::uint64_t FaultPlan::nodes_revived() const {
  const std::scoped_lock lock(mutex_);
  return revived_;
}

}  // namespace lobster::comm
