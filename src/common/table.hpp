// Text table / CSV rendering for bench output.
//
// Every figure bench prints its series through this, so the rows the paper
// reports are reproducible as plain text and machine-readable CSV.
#pragma once

#include <string>
#include <vector>

namespace lobster {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Adds a row; must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  /// Aligned monospace rendering with a header rule.
  std::string render_text() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string render_csv() const;

  /// GitHub-flavoured Markdown pipe table (escapes '|' in cells).
  std::string render_markdown() const;

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return columns_.size(); }
  const std::vector<std::string>& column_names() const noexcept { return columns_; }
  const std::vector<std::vector<std::string>>& row_data() const noexcept { return rows_; }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lobster
