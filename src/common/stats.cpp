#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/strfmt.hpp"

namespace lobster {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double Series::mean() const noexcept {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double Series::sum() const noexcept {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Series::stddev() const noexcept {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Series::min() const noexcept {
  return values_.empty() ? 0.0 : *std::min_element(values_.begin(), values_.end());
}

double Series::max() const noexcept {
  return values_.empty() ? 0.0 : *std::max_element(values_.begin(), values_.end());
}

double Series::percentile(double q) const {
  if (values_.empty()) return 0.0;
  if (!sorted_valid_ || sorted_.size() != values_.size()) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const { return bin_lo(i) + width_ / 2.0; }
double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::fraction_above(double threshold) const {
  if (total_ == 0) return 0.0;
  std::uint64_t above = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bin_lo(i) >= threshold) above += counts_[i];
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto width = peak == 0 ? std::size_t{0}
                                 : static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                                            static_cast<double>(peak) *
                                                            static_cast<double>(max_bar_width));
    out += strf("[%12.1f, %12.1f) %10llu %s\n", bin_lo(i), bin_hi(i),
                static_cast<unsigned long long>(counts_[i]), std::string(width, '#').c_str());
  }
  return out;
}

void Log2Histogram::add(std::uint64_t value) noexcept {
  const std::size_t bucket = value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  const std::size_t idx = std::min(bucket, counts_.size() - 1);
  ++counts_[idx];
  ++total_;
  raw_.push_back(value);
}

std::uint64_t Log2Histogram::bucket_lo(std::size_t i) const noexcept {
  return i == 0 ? 0 : (1ULL << (i - 1));
}

double Log2Histogram::fraction_above(std::uint64_t threshold) const {
  if (raw_.empty()) return 0.0;
  std::uint64_t above = 0;
  for (auto v : raw_) {
    if (v > threshold) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(raw_.size());
}

std::string Log2Histogram::render(std::size_t max_bar_width) const {
  std::uint64_t peak = 0;
  std::size_t last_nonzero = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    peak = std::max(peak, counts_[i]);
    if (counts_[i] > 0) last_nonzero = i;
  }
  std::string out;
  for (std::size_t i = 0; i <= last_nonzero; ++i) {
    const auto width = peak == 0 ? std::size_t{0}
                                 : static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                                            static_cast<double>(peak) *
                                                            static_cast<double>(max_bar_width));
    out += strf("[%12llu, ...) %10llu %s\n", static_cast<unsigned long long>(bucket_lo(i)),
                static_cast<unsigned long long>(counts_[i]), std::string(width, '#').c_str());
  }
  return out;
}

}  // namespace lobster
