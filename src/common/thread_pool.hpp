// Resizable worker thread pool.
//
// The online runtime needs to *move threads between pipeline stages* (§4.1:
// "take away one thread from the preprocessing stage and make it available
// for data loading"). This pool therefore supports live resizing: shrink
// retires workers as they finish their current task; grow spawns new ones.
//
// Core Guidelines: workers are std::jthread (CP.25), tasks are moved values
// (CP.31), all shared state behind one mutex (CP.2/CP.20).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lobster {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (may be 0; tasks then wait until
  /// the pool is grown).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  template <typename F>
  std::future<void> submit(F&& task) {
    auto wrapped = std::make_shared<std::packaged_task<void()>>(std::forward<F>(task));
    auto future = wrapped->get_future();
    {
      const std::scoped_lock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.emplace_back([wrapped]() mutable { (*wrapped)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Changes the target worker count. Growing is immediate; shrinking takes
  /// effect as surplus workers finish their current task.
  void resize(std::size_t threads);

  /// Current target size.
  std::size_t size() const;

  /// Number of tasks waiting (not including running ones).
  std::size_t pending() const;

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

 private:
  void worker_loop(std::size_t worker_id);
  void spawn_locked(std::size_t count);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;
  std::size_t target_size_ = 0;
  std::size_t live_workers_ = 0;
  std::size_t busy_workers_ = 0;
  bool stopping_ = false;
};

}  // namespace lobster
