#include "telemetry/flight_recorder.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.hpp"
#include "telemetry/analysis/json.hpp"
#include "telemetry/events.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_context.hpp"

namespace lobster::telemetry {
namespace fs = std::filesystem;

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)) {
  if (config_.max_heartbeats == 0) config_.max_heartbeats = 1;
}

void FlightRecorder::record_heartbeat(std::string line) {
  std::lock_guard lock(mutex_);
  heartbeats_.push_back(std::move(line));
  while (heartbeats_.size() > config_.max_heartbeats) heartbeats_.pop_front();
}

IncidentResult FlightRecorder::trigger(const std::string& reason) {
  const auto now_us = Tracer::instance().wall_now_us();
  std::vector<std::string> heartbeats;
  std::uint64_t seq = 0;
  {
    std::lock_guard lock(mutex_);
    const auto cooldown_us = static_cast<std::uint64_t>(config_.cooldown_s * 1e6);
    const bool in_cooldown =
        bundles_ > 0 && now_us >= last_dump_us_ && now_us - last_dump_us_ < cooldown_us;
    if (bundles_ >= config_.max_bundles || in_cooldown || config_.out_dir.empty()) {
      ++suppressed_;
      return {};
    }
    seq = ++bundles_;
    last_dump_us_ = now_us;
    heartbeats.assign(heartbeats_.begin(), heartbeats_.end());
  }

  // Freeze the shared rings OUTSIDE our own lock: SpanLog/EventLog have
  // their own mutexes and producers keep running during the dump.
  const auto spans = SpanLog::instance().snapshot();
  const auto events = EventLog::instance().snapshot();

  char name[32];
  std::snprintf(name, sizeof(name), "incident-%03llu",
                static_cast<unsigned long long>(seq));
  const fs::path dir = fs::path(config_.out_dir) / name;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    log::warn("flight_recorder: cannot create %s: %s", dir.string().c_str(),
              ec.message().c_str());
    std::lock_guard lock(mutex_);
    --bundles_;
    ++suppressed_;
    return {};
  }

  {
    std::ofstream out(dir / "spans.jsonl");
    std::string line;
    for (const auto& span : spans) {
      line.clear();
      SpanLog::append_json(line, span);
      line.push_back('\n');
      out << line;
    }
  }
  {
    std::ofstream out(dir / "events.jsonl");
    std::string line;
    for (const auto& event : events) {
      line.clear();
      EventLog::append_json(line, event);
      line.push_back('\n');
      out << line;
    }
  }
  {
    std::ofstream out(dir / "heartbeats.jsonl");
    for (const auto& beat : heartbeats) out << beat << '\n';
  }
  MetricRegistry::instance().write_csv_file((dir / "metrics.csv").string());

  std::string manifest = "{\"schema\":\"lobster.incident.v1\",\"reason\":";
  analysis::append_json_quoted(manifest, reason);
  manifest += ",\"seq\":" + std::to_string(seq);
  manifest += ",\"ts_us\":" + std::to_string(now_us);
  manifest += ",\"spans\":" + std::to_string(spans.size());
  manifest += ",\"events\":" + std::to_string(events.size());
  manifest += ",\"heartbeats\":" + std::to_string(heartbeats.size());
  manifest += ",\"spans_dropped\":" + std::to_string(SpanLog::instance().dropped());
  manifest += ",\"config\":" +
              (config_.config_echo_json.empty() ? std::string("{}")
                                                : config_.config_echo_json);
  manifest +=
      ",\"files\":[\"spans.jsonl\",\"events.jsonl\",\"heartbeats.jsonl\","
      "\"metrics.csv\"]}";
  {
    std::ofstream out(dir / "manifest.json");
    out << manifest << '\n';
  }

  // The incident event lands in the ring AFTER the snapshot — the bundle
  // describes the world up to the trigger, and the next bundle (or the
  // end-of-run export) shows this one fired.
  EventLog::instance().emit(EventKind::kIncident, 0, seq, 0, reason);
  log::warn("flight_recorder: incident bundle %llu (%s) -> %s",
            static_cast<unsigned long long>(seq), reason.c_str(),
            dir.string().c_str());
  return {true, seq, dir.string()};
}

std::uint64_t FlightRecorder::bundles_written() const {
  std::lock_guard lock(mutex_);
  return bundles_;
}

std::uint64_t FlightRecorder::triggers_suppressed() const {
  std::lock_guard lock(mutex_);
  return suppressed_;
}

}  // namespace lobster::telemetry
