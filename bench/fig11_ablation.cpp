// Fig. 11 — ablation: Lobster_th (thread management only) and
// Lobster_evict (reuse-distance eviction only) vs DALI, per model
// (1 node, ImageNet-1K). Paper: thread management contributes more (up to
// 1.4x, avg 1.3x vs DALI); eviction gives ~1.15x and matters most for the
// small/fast models (ShuffleNet, SqueezeNet) whose training stage is too
// short to hide loading behind.
#include <cstdio>

#include "baselines/strategies.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "metrics/report.hpp"
#include "pipeline/simulator.hpp"
#include "pipeline/trainer_model.hpp"

using namespace lobster;
using baselines::LoaderStrategy;

int main(int argc, char** argv) {
  const auto config = bench::parse_args(argc, argv);
  const bench::TraceSession trace_session(config);
  const double scale = config.get_double("scale", 256.0);
  const auto epochs = static_cast<std::uint32_t>(config.get_int("epochs", 4));
  bench::warn_unconsumed(config);

  bench::print_header("Fig. 11: ablation — speedup vs DALI (1 node, ImageNet-1K)",
                      "Lobster_th up to 1.4x (avg 1.3x); Lobster_evict ~1.15x, best on small models");

  Table table({"model", "lobster_th", "lobster_evict", "lobster_full"});
  double sum_th = 0.0;
  double sum_evict = 0.0;
  double sum_full = 0.0;
  const auto& models = pipeline::TrainerModel::benchmark_names();
  for (const auto& model : models) {
    auto preset = pipeline::preset_imagenet1k_single_node(scale, model);
    preset.epochs = epochs;
    const auto dali = pipeline::simulate(preset, LoaderStrategy::dali());
    const auto th = pipeline::simulate(preset, LoaderStrategy::lobster_th());
    const auto evict = pipeline::simulate(preset, LoaderStrategy::lobster_evict());
    const auto full = pipeline::simulate(preset, LoaderStrategy::lobster());
    const double s_th = metrics::warm_speedup(dali, th);
    const double s_evict = metrics::warm_speedup(dali, evict);
    const double s_full = metrics::warm_speedup(dali, full);
    sum_th += s_th;
    sum_evict += s_evict;
    sum_full += s_full;
    table.add_row({model, Table::num(s_th, 2), Table::num(s_evict, 2), Table::num(s_full, 2)});
  }
  bench::emit(config, "fig11", table);
  std::printf("averages vs DALI: lobster_th %.2fx, lobster_evict %.2fx, full %.2fx\n",
              sum_th / models.size(), sum_evict / models.size(), sum_full / models.size());
  std::printf("[paper: thread management avg 1.3x (max 1.4x); eviction ~1.15x]\n");
  return 0;
}
