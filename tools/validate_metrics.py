#!/usr/bin/env python3
"""Shared validator for the benches' machine-readable artifacts.

Every bench emits a schema-versioned JSON document (see
bench/bench_common.hpp: lobster.bench_metrics.v1 for the figure/perf/fault
harnesses, lobster.cluster_metrics.v1 for cluster_soak) and the monitor
emits lobster.heartbeat.v1 JSONL. CI jobs used to each carry their own
inline copy of the schema checks; this script is the single source of
truth, so a schema bump is a one-file change.

Usage:
  validate_metrics.py FILE --schema lobster.bench_metrics.v1 \
      [--require-records] [--record-positive FIELD ...] \
      [--panels a,b] [--strategies a,b] [--scalar NAME ...] \
      [--min K=V ...] [--max K=V ...] [--eq K=V ...] [--lt-field A=B ...] \
      [--gate-ratio "A/B>=V" ...]
  validate_metrics.py FILE --heartbeat     # JSONL heartbeat stream
  validate_metrics.py FILE --events        # lobster.events.v1 JSONL stream
  validate_metrics.py FILE --spans         # lobster.spans.v1 JSONL stream
  validate_metrics.py DIR --incident       # flight-recorder bundle directory

Structural record-field checks are keyed on the schema; numeric gates are
passed per-job from CI so each harness keeps its own thresholds.
"""
import argparse
import json
import os
import sys

RECORD_FIELDS = {
    "lobster.bench_metrics.v1": {
        "key": "records",
        "fields": {
            "panel", "workload", "strategy", "warm_epoch_time_s",
            "speedup_vs_baseline", "hit_ratio", "imbalanced_fraction",
            "gpu_utilization", "samples_per_s",
        },
    },
    "lobster.cluster_metrics.v1": {
        "key": "jobs",
        "fields": {
            "name", "model", "state", "nodes", "shared_namespace", "starved",
            "submit_round", "admit_round", "finish_round", "queue_wait_s",
            "turnaround_s", "isolated_s", "slowdown", "iterations",
            "samples_expected", "samples_delivered", "local_hits", "kv_hits",
            "pfs_reads", "isolated_pfs_reads",
        },
    },
}
HEARTBEAT_SCHEMA = "lobster.heartbeat.v1"
HEARTBEAT_FLAGS = {
    "straggler_gap", "prefetch_outrun", "queue_starved", "trace_ring_overflow",
    "peer_down", "retry_storm", "iteration_stalled", "corruption_detected",
    "job_starved", "slow_node_detected", "job_preempt_storm",
}
EVENTS_SCHEMA = "lobster.events.v1"
EVENT_KINDS = {
    "job_admitted", "job_finished", "node_down", "node_rejoin", "breaker_open",
    "breaker_close", "quarantine", "watchdog_stall", "serve_send_failure",
    "incident", "job_preempted", "job_resumed", "job_resized",
}
SPANS_SCHEMA = "lobster.spans.v1"
SPAN_KINDS = {
    "fetch", "attempt", "backoff", "serve", "detour", "pfs_fallback",
    "breaker_fast_fail", "inventory_probe", "multi_get",
}
SPAN_FIELDS = {
    "schema", "trace", "span", "parent", "kind", "status", "rank",
    "begin_us", "end_us", "arg", "arg2",
}
INCIDENT_SCHEMA = "lobster.incident.v1"


def fail(message):
    print(f"validate_metrics: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def parse_kv(pairs):
    out = {}
    for pair in pairs or []:
        key, _, value = pair.partition("=")
        if not key or not value:
            fail(f"malformed K=V argument: {pair!r}")
        out[key] = value
    return out


def validate_heartbeat(path, quiet=False, allow_empty=False):
    lines = [l for l in open(path) if l.strip()]
    if not lines and not allow_empty:
        fail(f"{path}: no heartbeat lines")
    for i, line in enumerate(lines):
        beat = json.loads(line)
        if beat.get("schema") != HEARTBEAT_SCHEMA:
            fail(f"{path}:{i + 1}: schema {beat.get('schema')!r} != {HEARTBEAT_SCHEMA!r}")
        flags = beat.get("flags")
        if not isinstance(flags, dict):
            fail(f"{path}:{i + 1}: missing flags object")
        missing = HEARTBEAT_FLAGS - flags.keys()
        if missing:
            fail(f"{path}:{i + 1}: flags missing {sorted(missing)}")
    if not quiet:
        print(f"validate_metrics: OK: {path} ({len(lines)} heartbeats)")
    return len(lines)


def validate_events(path, quiet=False, allow_empty=False):
    lines = [l for l in open(path) if l.strip()]
    if not lines and not allow_empty:
        fail(f"{path}: no event lines")
    for i, line in enumerate(lines):
        event = json.loads(line)
        if event.get("schema") != EVENTS_SCHEMA:
            fail(f"{path}:{i + 1}: schema {event.get('schema')!r} != {EVENTS_SCHEMA!r}")
        if event.get("kind") not in EVENT_KINDS:
            fail(f"{path}:{i + 1}: unknown event kind {event.get('kind')!r}")
        for field in ("seq", "ts_us", "node", "a", "b"):
            if not isinstance(event.get(field), (int, float)):
                fail(f"{path}:{i + 1}: missing numeric field {field!r}")
        # Trace ids are exact 64-bit values serialized as hex strings ("0"
        # when the event fired outside any span).
        trace = event.get("trace")
        if not isinstance(trace, str) or not trace:
            fail(f"{path}:{i + 1}: trace id must be a hex string")
        int(trace, 16)
    if not quiet:
        print(f"validate_metrics: OK: {path} ({len(lines)} events)")
    return len(lines)


def validate_spans(path, quiet=False, allow_empty=False):
    lines = [l for l in open(path) if l.strip()]
    if not lines and not allow_empty:
        fail(f"{path}: no span lines")
    for i, line in enumerate(lines):
        span = json.loads(line)
        if span.get("schema") != SPANS_SCHEMA:
            fail(f"{path}:{i + 1}: schema {span.get('schema')!r} != {SPANS_SCHEMA!r}")
        missing = SPAN_FIELDS - span.keys()
        if missing:
            fail(f"{path}:{i + 1}: span missing {sorted(missing)}")
        if span["kind"] not in SPAN_KINDS:
            fail(f"{path}:{i + 1}: unknown span kind {span['kind']!r}")
        for field in ("trace", "span", "parent"):
            value = span[field]
            if not isinstance(value, str) or not value:
                fail(f"{path}:{i + 1}: {field} id must be a hex string")
            int(value, 16)
        if span["trace"] == "0" or span["span"] == "0":
            fail(f"{path}:{i + 1}: recorded span has a zero trace/span id")
        if span["end_us"] < span["begin_us"]:
            fail(f"{path}:{i + 1}: end_us before begin_us")
    if not quiet:
        print(f"validate_metrics: OK: {path} ({len(lines)} spans)")
    return len(lines)


def validate_incident(bundle_dir):
    manifest_path = os.path.join(bundle_dir, "manifest.json")
    if not os.path.isfile(manifest_path):
        fail(f"{bundle_dir}: no manifest.json")
    manifest = json.load(open(manifest_path))
    if manifest.get("schema") != INCIDENT_SCHEMA:
        fail(f"{manifest_path}: schema {manifest.get('schema')!r} != {INCIDENT_SCHEMA!r}")
    for field in ("reason", "seq", "ts_us", "spans", "events", "heartbeats", "files"):
        if field not in manifest:
            fail(f"{manifest_path}: missing field {field!r}")
    for name in manifest["files"]:
        if not os.path.isfile(os.path.join(bundle_dir, name)):
            fail(f"{bundle_dir}: manifest references missing file {name!r}")
    # A bundle can legitimately capture an empty ring (incident before any
    # span/event fired), so emptiness gates on the manifest counts instead.
    counts = {
        "spans": validate_spans(os.path.join(bundle_dir, "spans.jsonl"),
                                quiet=True, allow_empty=True),
        "events": validate_events(os.path.join(bundle_dir, "events.jsonl"),
                                  quiet=True, allow_empty=True),
        "heartbeats": validate_heartbeat(os.path.join(bundle_dir, "heartbeats.jsonl"),
                                         quiet=True, allow_empty=True),
    }
    for key, count in counts.items():
        if manifest[key] != count:
            fail(f"{bundle_dir}: manifest says {manifest[key]} {key}, "
                 f"file holds {count}")
    if not os.path.isfile(os.path.join(bundle_dir, "metrics.csv")):
        fail(f"{bundle_dir}: missing metrics.csv")
    print(f"validate_metrics: OK: {bundle_dir} (reason={manifest['reason']!r}, "
          f"{counts['spans']} spans, {counts['events']} events, "
          f"{counts['heartbeats']} heartbeats)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--schema", help="expected schema string")
    parser.add_argument("--heartbeat", action="store_true",
                        help="validate a heartbeat JSONL stream instead")
    parser.add_argument("--events", action="store_true",
                        help="validate a lobster.events.v1 JSONL stream instead")
    parser.add_argument("--spans", action="store_true",
                        help="validate a lobster.spans.v1 JSONL stream instead")
    parser.add_argument("--incident", action="store_true",
                        help="validate a flight-recorder incident bundle directory")
    parser.add_argument("--require-records", action="store_true",
                        help="the record array must be non-empty")
    parser.add_argument("--record-positive", action="append", default=[],
                        metavar="FIELD", help="every record's FIELD must be > 0")
    parser.add_argument("--panels", help="comma-set that record panels must cover")
    parser.add_argument("--strategies", help="comma-set that record strategies must cover")
    parser.add_argument("--scalar", action="append", default=[], metavar="NAME",
                        help="top-level scalar that must be present")
    parser.add_argument("--min", action="append", default=[], metavar="K=V",
                        help="top-level scalar K must be >= V")
    parser.add_argument("--max", action="append", default=[], metavar="K=V",
                        help="top-level scalar K must be <= V")
    parser.add_argument("--eq", action="append", default=[], metavar="K=V",
                        help="top-level scalar K must equal V")
    parser.add_argument("--lt-field", action="append", default=[], metavar="A=B",
                        help="top-level scalar A must be strictly below scalar B")
    parser.add_argument("--gate-ratio", action="append", default=[],
                        metavar="A/B>=V",
                        help="ratio of top-level scalars A/B must be >= V "
                             "(perf-smoke scaling gates)")
    args = parser.parse_args()

    if args.heartbeat:
        validate_heartbeat(args.file)
        return
    if args.events:
        validate_events(args.file)
        return
    if args.spans:
        validate_spans(args.file)
        return
    if args.incident:
        validate_incident(args.file)
        return
    if not args.schema:
        fail("--schema is required unless --heartbeat/--events/--spans/--incident")

    metrics = json.load(open(args.file))
    if metrics.get("schema") != args.schema:
        fail(f"{args.file}: schema {metrics.get('schema')!r} != {args.schema!r}")

    layout = RECORD_FIELDS.get(args.schema)
    if layout is None:
        fail(f"unknown schema {args.schema!r} (known: {sorted(RECORD_FIELDS)})")
    records = metrics.get(layout["key"], [])
    if args.require_records and not records:
        fail(f"{args.file}: no {layout['key']}")
    for record in records:
        missing = layout["fields"] - record.keys()
        if missing:
            fail(f"record missing {sorted(missing)}: {record}")
        for field in args.record_positive:
            if not record.get(field, 0) > 0:
                fail(f"record {field} not positive: {record}")

    if args.schema == "lobster.cluster_metrics.v1":
        # Structural fairness invariants every committed artifact must hold;
        # numeric thresholds (slowdown, dedup) come from the CLI gates.
        for job in records:
            if job["state"] != "finished":
                fail(f"job {job['name']} state {job['state']!r} != 'finished'")
            if job["starved"]:
                fail(f"job {job['name']} starved")
            if job["samples_delivered"] != job["samples_expected"]:
                fail(f"job {job['name']} delivered {job['samples_delivered']} "
                     f"!= expected {job['samples_expected']}")

    for want, field in ((args.panels, "panel"), (args.strategies, "strategy")):
        if want:
            have = {r.get(field) for r in records}
            needed = set(want.split(","))
            if not needed <= have:
                fail(f"{field}s {sorted(needed - have)} absent (have {sorted(have)})")

    for name in args.scalar:
        if name not in metrics:
            fail(f"{args.file}: missing scalar {name!r}")
    for key, value in parse_kv(args.min).items():
        if not float(metrics.get(key, float("-inf"))) >= float(value):
            fail(f"{key} = {metrics.get(key)} < {value}")
    for key, value in parse_kv(args.max).items():
        if not float(metrics.get(key, float("inf"))) <= float(value):
            fail(f"{key} = {metrics.get(key)} > {value}")
    for key, value in parse_kv(args.eq).items():
        if float(metrics.get(key, float("nan"))) != float(value):
            fail(f"{key} = {metrics.get(key)} != {value}")
    for a, b in parse_kv(args.lt_field).items():
        if not float(metrics.get(a, float("inf"))) < float(metrics.get(b, float("-inf"))):
            fail(f"{a} = {metrics.get(a)} not strictly below {b} = {metrics.get(b)}")
    for gate in args.gate_ratio:
        expr, _, threshold = gate.partition(">=")
        numer, slash, denom = expr.partition("/")
        numer, denom, threshold = numer.strip(), denom.strip(), threshold.strip()
        if not (numer and slash and denom and threshold):
            fail(f"malformed --gate-ratio (want 'A/B>=V'): {gate!r}")
        for name in (numer, denom):
            if name not in metrics:
                fail(f"{args.file}: missing scalar {name!r} for --gate-ratio")
        denom_value = float(metrics[denom])
        if denom_value <= 0:
            fail(f"{denom} = {denom_value} not positive (--gate-ratio {gate!r})")
        ratio = float(metrics[numer]) / denom_value
        if not ratio >= float(threshold):
            fail(f"{numer}/{denom} = {ratio:.3f} < {threshold}")

    print(f"validate_metrics: OK: {args.file} ({len(records)} records)")


if __name__ == "__main__":
    main()
