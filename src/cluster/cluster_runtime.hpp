// Multi-tenant cluster driver (DESIGN.md §10): many jobs, one shared I/O
// substrate.
//
// Runs a round-based lockstep simulation over the real runtime pieces:
// every scheduler round, (1) newly arrived jobs are submitted, (2) the
// JobManager admits what fits (node block + KV budget), (3) every running
// job executes ONE iteration of its own deterministic sampler against the
// SHARED cluster KV tier — namespaced keys, one CacheDirectory, every
// publish through the KvBudgetArbiter — and (4) the cluster's virtual clock
// advances by the slowest job's iteration time (jobs are synchronized by
// the shared tier, so the round barrier is the honest model). PFS bandwidth
// is a cluster-wide resource: jobs reading the PFS in the same round divide
// it evenly, which is where inter-job interference (and slowdown) comes
// from.
//
// Cross-job sharing: namespaces are minted per dataset fingerprint, so two
// jobs over the same dataset hit each other's published samples (aggregate
// PFS traffic strictly below the sum of isolated runs — the bench gates on
// it). Eviction consults a per-namespace data::MergedAccessOracle over
// every running job of that dataset, each job's FutureAccessOracle lifted
// onto the cluster timeline by JobWindowOracle.
//
// Optionally runs each spec in isolation first (full PFS bandwidth, private
// KV) to establish the per-job fairness baseline: slowdown = shared-cluster
// turnaround / isolated run time.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/directory.hpp"
#include "cache/kv_store.hpp"
#include "cache/namespace.hpp"
#include "cluster/budget_arbiter.hpp"
#include "cluster/fairness.hpp"
#include "cluster/job.hpp"
#include "cluster/namespace_registry.hpp"
#include "cluster/scheduler.hpp"
#include "common/tier_rates.hpp"
#include "common/types.hpp"
#include "data/dataset.hpp"
#include "data/oracle.hpp"
#include "data/sampler.hpp"

namespace lobster::cluster {

/// Lifts one running job's FutureAccessOracle onto the cluster timeline so
/// per-namespace MergedAccessOracles can merge jobs admitted at different
/// rounds: the access of job-local iteration i is reported at cluster time
/// `admit_round + i + 1` on global node rank `block.first + local_node`.
/// The +1 keeps "accessed in the current round" representable: querying
/// strictly-after `current_round` returns this round's accesses at distance
/// 1, so imminence = reported_time - current_round - 1 (0 = needed now).
class JobWindowOracle final : public data::AccessOracle {
 public:
  JobWindowOracle(const data::FutureAccessOracle& inner, std::uint64_t admit_round,
                  NodeBlock block)
      : inner_(inner), offset_(admit_round + 1), block_(block) {}

  std::optional<data::Access> next_access(SampleId sample, IterId after) const override;
  std::optional<data::Access> next_access_on_node(SampleId sample, NodeId node,
                                                  IterId after) const override;
  IterId reuse_distance_on_node(SampleId sample, NodeId node, IterId now) const override;
  std::uint32_t remaining_uses_on_node(SampleId sample, NodeId node,
                                       IterId after) const override;
  bool needed_by_other_node(SampleId sample, NodeId node, IterId after) const override;

 private:
  const data::FutureAccessOracle& inner_;
  std::uint64_t offset_;
  NodeBlock block_;
};

struct ClusterConfig {
  std::uint16_t nodes = 64;              ///< simulated cluster size (<= 64)
  SchedulerPolicy policy = SchedulerPolicy::kFairShare;
  Bytes kv_budget = 0;                   ///< global KV byte budget; 0 = unbounded
  TierRates rates = TierRates::defaults();
  double t_train_s = 4e-3;               ///< base per-iteration compute time
  std::uint64_t starvation_rounds = 64;  ///< queue wait that flags starvation
  std::uint64_t max_rounds = 1u << 20;   ///< safety valve for the round loop
  bool run_isolated_baselines = true;    ///< compute per-job slowdown baselines
};

/// Everything the fairness gates need about one job after the run.
struct JobOutcome {
  JobId id = kInvalidJob;
  std::string name;
  JobState state = JobState::kQueued;
  cache::NamespaceId ns = 0;
  bool shared_namespace = false;   ///< another job used the same dataset
  std::uint64_t submit_round = 0;
  std::uint64_t admit_round = 0;
  std::uint64_t finish_round = 0;
  std::uint64_t queue_wait_rounds = 0;
  double queue_wait_s = 0.0;
  double turnaround_s = 0.0;       ///< submit -> finish on the cluster clock
  double isolated_s = 0.0;         ///< run time alone (0 when baselines off)
  double slowdown = 0.0;           ///< turnaround_s / isolated_s
  bool starved = false;
  std::uint64_t iterations = 0;
  std::uint64_t samples_expected = 0;   ///< epochs x iters x world x batch
  std::uint64_t samples_delivered = 0;  ///< exactly-once gate: must match
  std::uint64_t local_hits = 0;
  std::uint64_t kv_hits = 0;
  std::uint64_t pfs_reads = 0;
  Bytes pfs_bytes = 0;
  std::uint64_t isolated_pfs_reads = 0;
};

struct ClusterResult {
  std::vector<JobOutcome> jobs;
  std::uint64_t rounds = 0;
  double makespan_s = 0.0;
  std::uint64_t total_pfs_reads = 0;
  Bytes total_pfs_bytes = 0;
  std::uint64_t total_kv_hits = 0;
  std::uint64_t isolated_pfs_reads_sum = 0;
  std::uint64_t starvation_events = 0;
  double max_slowdown = 0.0;
  std::size_t peak_live_namespaces = 0;
  KvBudgetArbiter::Stats arbiter;
  cache::KvStore::Stats kv;
};

class ClusterRuntime {
 public:
  explicit ClusterRuntime(ClusterConfig config);
  ~ClusterRuntime();

  ClusterRuntime(const ClusterRuntime&) = delete;
  ClusterRuntime& operator=(const ClusterRuntime&) = delete;

  /// Registers a job; it arrives at spec.arrival_round. Call before run().
  JobId submit(JobSpec spec);

  /// Drives rounds until every submitted job is finished (or rejected).
  ClusterResult run();

  const FairnessTracker& fairness() const noexcept { return fairness_; }
  const NamespaceRegistry& namespaces() const noexcept { return registry_; }

 private:
  struct RunningJob;

  std::shared_ptr<const data::SampleCatalog> catalog_for(const JobSpec& spec,
                                                         std::uint64_t fingerprint);
  bool budget_gate(const JobSpec& spec);
  void start_job(JobId id, std::uint64_t round);
  void finish_job(RunningJob& job, std::uint64_t round);
  void rebuild_merged(cache::NamespaceId ns);
  IterId imminence(SampleId key) const;

  /// One job, one iteration: walks every node's batch against the shared
  /// tier, publishing PFS fetches through the arbiter. Returns whether the
  /// job read the PFS (for the contention split); fills per-node byte
  /// demands into `job.node_local/remote/pfs`.
  void collect_demands(RunningJob& job, std::uint32_t epoch, std::uint32_t iter);
  double iteration_time(const RunningJob& job, double pfs_bps_effective) const;

  ClusterConfig config_;
  cache::KvStore kv_;
  cache::CacheDirectory directory_;
  NamespaceRegistry registry_;
  KvBudgetArbiter arbiter_;
  JobManager manager_;
  FairnessTracker fairness_;

  struct PendingSubmit {
    JobSpec spec;
    JobId id = kInvalidJob;
  };
  std::vector<PendingSubmit> pending_;
  bool ran_ = false;

  std::unordered_map<std::uint64_t, std::shared_ptr<const data::SampleCatalog>> catalogs_;
  std::unordered_map<JobId, std::unique_ptr<RunningJob>> active_;
  /// Per-namespace merged view of every running job's future accesses.
  struct NamespaceOracles {
    std::vector<const data::AccessOracle*> members;
    std::unique_ptr<data::MergedAccessOracle> merged;
  };
  std::unordered_map<cache::NamespaceId, NamespaceOracles> merged_;

  std::vector<JobOutcome> outcomes_;
  std::uint64_t round_ = 0;
  double clock_s_ = 0.0;
};

}  // namespace lobster::cluster
