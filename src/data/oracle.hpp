// Future-access oracle built on the deterministic sampler.
//
// "we maintain a list of future accesses for each training sample. Each
// entry in the list records the GPU and iteration number during which the
// training sample needs to be accessed for the remainder of the training"
// (§4.4). With data-parallel sampling each sample is accessed exactly once
// per epoch (by one GPU somewhere in the cluster), so a *window* of the next
// few epochs bounds the oracle's memory while answering every query the
// eviction policies make:
//   - reuse-distance policy: is the next use on this node farther than
//     2·I − h iterations away? (needs ≤ 2 epochs of lookahead)
//   - reuse-count policy: how many more times will this node use the sample
//     within the window?
//   - prefetch ordering: which pending samples are needed soonest?
// Accesses beyond the window are reported as kNeverIter ("far future").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "data/sampler.hpp"

namespace lobster::data {

struct Access {
  IterId iter = kNeverIter;  ///< global iteration (epoch * I + h)
  NodeId node = 0;
  GpuId gpu = 0;
};

/// Interface the eviction policies consult. FutureAccessOracle is the
/// single-job implementation; MergedAccessOracle combines several jobs'
/// oracles for shared-dataset training (§2: "different DNN models sharing
/// the same training data").
class AccessOracle {
 public:
  virtual ~AccessOracle() = default;

  virtual std::optional<Access> next_access(SampleId sample, IterId after) const = 0;
  virtual std::optional<Access> next_access_on_node(SampleId sample, NodeId node,
                                                    IterId after) const = 0;
  virtual IterId reuse_distance_on_node(SampleId sample, NodeId node, IterId now) const = 0;
  virtual std::uint32_t remaining_uses_on_node(SampleId sample, NodeId node,
                                               IterId after) const = 0;
  virtual bool needed_by_other_node(SampleId sample, NodeId node, IterId after) const = 0;
};

class FutureAccessOracle final : public AccessOracle {
 public:
  /// Builds the oracle for epochs [0, window_epochs).
  FutureAccessOracle(const EpochSampler& sampler, std::uint32_t window_epochs = 2);

  /// Slides the window to cover [first_epoch, first_epoch + window).
  /// Amortized over an epoch of queries; call once per epoch.
  void rebase(std::uint32_t first_epoch);

  std::uint32_t window_epochs() const noexcept { return window_; }
  std::uint32_t first_epoch() const noexcept { return first_epoch_; }

  /// Next access of `sample` anywhere in the cluster strictly after `after`.
  std::optional<Access> next_access(SampleId sample, IterId after) const override;

  /// Next access of `sample` by any GPU of `node` strictly after `after`.
  std::optional<Access> next_access_on_node(SampleId sample, NodeId node,
                                            IterId after) const override;

  /// Iterations until the next use on `node` (kNeverIter if none in window).
  IterId reuse_distance_on_node(SampleId sample, NodeId node, IterId now) const override;

  /// Number of accesses by `node` within the window strictly after `after`.
  std::uint32_t remaining_uses_on_node(SampleId sample, NodeId node,
                                       IterId after) const override;

  /// True if some node *other than* `node` accesses the sample within the
  /// window strictly after `after` — the condition under which evicting the
  /// group's last cached copy would force peers into PFS re-fetches (§4.4).
  bool needed_by_other_node(SampleId sample, NodeId node, IterId after) const override;

  /// All in-window accesses of a sample, ordered by iteration.
  std::vector<Access> accesses(SampleId sample) const;

 private:
  void build();
  void index_epoch(std::uint32_t epoch, std::size_t slot);

  const EpochSampler& sampler_;
  std::uint32_t window_;
  std::uint32_t first_epoch_ = 0;

  // accesses_[sample * window_ + k] = access in epoch (first_epoch_ + k).
  // Exactly one access per sample per epoch when the sampler covers the
  // whole dataset; samples dropped by a partial final iteration have
  // iter == kNeverIter for that epoch.
  std::vector<Access> slots_;
};

/// Combines several jobs' oracles over one shared dataset: a sample's next
/// use is the earliest across jobs, remaining uses sum, and "needed by
/// another node" is true if any job needs it elsewhere. All member oracles
/// must report in a common iteration timeline (jobs advancing in lockstep,
/// as the multi-job simulator schedules them).
class MergedAccessOracle final : public AccessOracle {
 public:
  explicit MergedAccessOracle(std::vector<const AccessOracle*> members);

  std::optional<Access> next_access(SampleId sample, IterId after) const override;
  std::optional<Access> next_access_on_node(SampleId sample, NodeId node,
                                            IterId after) const override;
  IterId reuse_distance_on_node(SampleId sample, NodeId node, IterId now) const override;
  std::uint32_t remaining_uses_on_node(SampleId sample, NodeId node,
                                       IterId after) const override;
  bool needed_by_other_node(SampleId sample, NodeId node, IterId after) const override;

 private:
  std::vector<const AccessOracle*> members_;
};

}  // namespace lobster::data
