file(REMOVE_RECURSE
  "CMakeFiles/test_thread_allocator.dir/test_thread_allocator.cpp.o"
  "CMakeFiles/test_thread_allocator.dir/test_thread_allocator.cpp.o.d"
  "test_thread_allocator"
  "test_thread_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
