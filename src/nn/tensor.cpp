#include "nn/tensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace lobster::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: inner dims differ");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a.at(i, k);
      if (aik == 0.0F) continue;
      const float* brow = b.row(k);
      float* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix Matrix::matmul_at_b(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_at_b: outer dims differ");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0F) continue;
      float* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix Matrix::matmul_a_bt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("matmul_a_bt: inner dims differ");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j);
      float acc = 0.0F;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      c.at(i, j) = acc;
    }
  }
  return c;
}

void Matrix::add_scaled(const Matrix& other, float scale) {
  if (!same_shape(other)) throw std::invalid_argument("add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i] * scale;
}

void Matrix::add_row_vector(const Matrix& bias) {
  if (bias.rows() != 1 || bias.cols() != cols_) {
    throw std::invalid_argument("add_row_vector: bias must be 1 x cols");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    float* out = row(r);
    for (std::size_t c = 0; c < cols_; ++c) out[c] += bias.at(0, c);
  }
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const float* in = row(r);
    for (std::size_t c = 0; c < cols_; ++c) out.at(0, c) += in[c];
  }
  return out;
}

void Matrix::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

}  // namespace lobster::nn
