// Preprocessing-stage performance modeling (§4.1, Fig. 6).
//
// Two pieces:
//
//  1. PreprocGroundTruth — the simulated "hardware": decode + augmentation
//     throughput as a function of thread count. Shaped like the paper's
//     Fig. 6 measurement: throughput ramps with threads, peaks at a knee
//     (6 threads in the paper — memory bandwidth saturates), then flattens
//     and slightly degrades. Both the calibration measurements and the
//     pipeline simulator's preprocessing costs come from this one source,
//     so the model-vs-reality error in the simulator is the same kind
//     Lobster faces in production.
//
//  2. PreprocModelPortfolio — Lobster's *learned* model: "for a specific
//     training sample size, we build a piece-wise linear regression model
//     that takes the number of threads as input and predicts the execution
//     time of processing one training sample. We build a portfolio of
//     models, each of which corresponds to a training sample size." At
//     lookup, the closest-size model is chosen.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/piecewise_linear.hpp"
#include "common/types.hpp"

namespace lobster::core {

class PreprocGroundTruth {
 public:
  struct Params {
    /// Peak preprocessing throughput (bytes/s of encoded input).
    double peak_bps = 0.9e9;
    /// Threads needed to reach the peak (paper: 6).
    std::uint32_t knee_threads = 6;
    /// Fractional throughput loss per thread beyond the knee (memory
    /// bandwidth contention), floored.
    double decline_per_thread = 0.015;
    double floor_fraction = 0.7;
    /// Fixed per-sample overhead (task dispatch, small-image fixed costs).
    Seconds per_sample_overhead = 25e-6;
    /// GPU-side decode/augment throughput (nvJPEG-class), for strategies
    /// that preprocess on the GPU instead of the CPU.
    double gpu_bps = 3.2e9;
  };

  PreprocGroundTruth() : PreprocGroundTruth(Params{}) {}
  explicit PreprocGroundTruth(Params params);

  /// Aggregate preprocessing throughput with `threads` workers.
  double throughput_bps(double threads) const noexcept;

  /// Time to preprocess one sample of `bytes` with `threads` workers
  /// (noise-free).
  Seconds time_per_sample(double threads, Bytes bytes) const noexcept;

  /// Noisy "measurement" of time_per_sample — what an offline profiling run
  /// observes; `seed` makes it reproducible.
  Seconds measure_time_per_sample(std::uint32_t threads, Bytes bytes,
                                  std::uint64_t seed) const;

  /// Time to preprocess a batch totalling `batch_bytes` over `samples`
  /// samples.
  Seconds batch_time(double threads, Bytes batch_bytes, std::uint32_t samples) const noexcept;

  /// GPU-side preprocessing time for a batch (serialized with training on
  /// the same device).
  Seconds gpu_batch_time(Bytes batch_bytes, std::uint32_t samples) const noexcept;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

class PreprocModelPortfolio {
 public:
  /// Profiles the ground truth offline across thread counts
  /// [1, max_threads] for each reference size, fitting one piecewise model
  /// per size. `repeats` measurements are averaged per point.
  PreprocModelPortfolio(const PreprocGroundTruth& truth,
                        std::vector<Bytes> reference_sizes, std::uint32_t max_threads,
                        std::uint32_t repeats, std::uint64_t seed);

  /// Predicted time to preprocess one sample of `bytes` with `threads`
  /// workers: the closest-size model, linearly rescaled by the byte ratio.
  Seconds predict_time_per_sample(double threads, Bytes bytes) const;

  /// Predicted batch preprocessing time.
  Seconds predict_batch_time(double threads, Bytes batch_bytes,
                             std::uint32_t samples) const;

  /// Smallest thread count within [1, max_threads] reaching >= (1 - tolerance)
  /// of the best predicted throughput for this sample size — the paper's
  /// "minimum number of threads needed to reach the peak preprocessing
  /// throughput" (§3, Implications).
  std::uint32_t optimal_threads(Bytes bytes, double tolerance = 0.02) const;

  std::uint32_t max_threads() const noexcept { return max_threads_; }
  std::size_t models() const noexcept { return portfolio_.size(); }

  /// Fit quality (R^2) of the model for the reference size nearest `bytes`.
  double fit_r_squared(Bytes bytes) const;

 private:
  struct Entry {
    Bytes reference_bytes;
    PiecewiseLinearModel model;  ///< threads -> time per sample (seconds)
    double r2 = 0.0;
  };
  const Entry& nearest(Bytes bytes) const;

  std::uint32_t max_threads_;
  std::vector<Entry> portfolio_;  ///< sorted by reference_bytes
};

}  // namespace lobster::core
