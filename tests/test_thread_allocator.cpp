// Algorithm 1: proportional apportionment, binary search improvement,
// budget repair, Eq. 3 rebalancing, IsConsistent window.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/perf_model.hpp"
#include "core/preproc_model.hpp"
#include "core/thread_allocator.hpp"

namespace lobster::core {
namespace {

struct AllocatorFixture : public ::testing::Test {
  AllocatorFixture()
      : storage(make_storage()),
        portfolio(PreprocGroundTruth(), {100'000}, 16, 3, 1),
        model(storage, portfolio, /*t_train=*/13e-3) {}

  static storage::StorageModel make_storage() {
    storage::StorageModel::Params params;
    params.remote_latency = 0.0;
    params.pfs_latency = 0.0;
    return storage::StorageModel(params);
  }

  static GpuDemand demand_of(Bytes local, Bytes pfs, std::uint64_t pending = 0) {
    GpuDemand demand;
    demand.bytes.local = local;
    demand.bytes.pfs = pfs;
    demand.samples = 32;
    demand.pending_requests = pending != 0 ? pending : pfs;
    return demand;
  }

  AllocatorConfig config_with(std::uint32_t budget, Seconds tau = 0.5e-3) {
    AllocatorConfig config;
    config.balance.total_load_threads = budget;
    config.balance.tau = tau;
    return config;
  }

  storage::StorageModel storage;
  PreprocModelPortfolio portfolio;
  PerfModel model;
};

TEST_F(AllocatorFixture, RejectsBadConfig) {
  EXPECT_THROW(ThreadAllocator(model, config_with(0)), std::invalid_argument);
  AllocatorConfig bad = config_with(8);
  bad.balance.tau = 0.0;
  EXPECT_THROW(ThreadAllocator(model, bad), std::invalid_argument);
}

TEST_F(AllocatorFixture, ProportionalSumsToBudgetAndFollowsWeights) {
  const ThreadAllocator allocator(model, config_with(16));
  const std::vector<GpuDemand> demands = {demand_of(0, 0, 100), demand_of(0, 0, 300),
                                          demand_of(0, 0, 100), demand_of(0, 0, 300)};
  const auto alloc = allocator.proportional_allocation(demands);
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0U), 16U);
  // Largest-remainder ties break deterministically by index, so equal
  // weights may differ by one thread — never more.
  EXPECT_LE(std::abs(static_cast<int>(alloc[1]) - static_cast<int>(alloc[3])), 1);
  EXPECT_LE(std::abs(static_cast<int>(alloc[0]) - static_cast<int>(alloc[2])), 1);
  EXPECT_GT(alloc[1], alloc[0]);  // 3x the pending requests
  EXPECT_GT(alloc[3], alloc[2]);
}

TEST_F(AllocatorFixture, ProportionalGuaranteesFloor) {
  const ThreadAllocator allocator(model, config_with(8));
  const std::vector<GpuDemand> demands = {demand_of(0, 0, 1'000'000), demand_of(0, 0, 1),
                                          demand_of(0, 0, 1), demand_of(0, 0, 1)};
  const auto alloc = allocator.proportional_allocation(demands);
  for (const auto threads : alloc) EXPECT_GE(threads, 1U);
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0U), 8U);
}

TEST_F(AllocatorFixture, ProportionalHandlesNoInformation) {
  const ThreadAllocator allocator(model, config_with(6));
  const std::vector<GpuDemand> demands(4);  // all-zero weights
  const auto alloc = allocator.proportional_allocation(demands);
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0U), 6U);
}

TEST_F(AllocatorFixture, ProportionalRejectsEmpty) {
  const ThreadAllocator allocator(model, config_with(4));
  EXPECT_THROW(allocator.proportional_allocation({}), std::invalid_argument);
}

TEST_F(AllocatorFixture, AllocateRespectsBudget) {
  const ThreadAllocator allocator(model, config_with(12));
  const std::vector<GpuDemand> demands = {demand_of(0, 5'000'000), demand_of(0, 500'000),
                                          demand_of(2'000'000, 0), demand_of(0, 2'000'000)};
  const auto result = allocator.allocate(demands, 6.0);
  EXPECT_LE(std::accumulate(result.threads.begin(), result.threads.end(), 0U), 12U);
  for (const auto threads : result.threads) EXPECT_GE(threads, 1U);
}

TEST_F(AllocatorFixture, AllocateImprovesOnProportionalImbalance) {
  AllocatorConfig config = config_with(16, /*tau=*/0.2e-3);
  const ThreadAllocator allocator(model, config);
  // One GPU with a heavy PFS batch, three light ones.
  const std::vector<GpuDemand> demands = {demand_of(0, 6'000'000), demand_of(800'000, 0),
                                          demand_of(800'000, 0), demand_of(800'000, 0)};
  const auto proportional = allocator.proportional_allocation(demands);
  const std::vector<double> prop_d(proportional.begin(), proportional.end());
  const Seconds before = model.node_imbalance(demands, prop_d, 6.0);

  const auto result = allocator.allocate(demands, 6.0);
  EXPECT_TRUE(result.straggler_predicted);
  EXPECT_LE(result.imbalance, before + 1e-9);
  // The straggler got at least its proportional share.
  EXPECT_GE(result.threads[0], proportional[0]);
}

TEST_F(AllocatorFixture, NoStragglerKeepsProportional) {
  // Tiny demands: everything hides under training; |T_dif| < tau is
  // unreachable (t_dif ~ -t_train), so use a huge tau to mark "balanced".
  AllocatorConfig config = config_with(8, /*tau=*/1.0);
  const ThreadAllocator allocator(model, config);
  const std::vector<GpuDemand> demands = {demand_of(10'000, 0), demand_of(10'000, 0)};
  const auto result = allocator.allocate(demands, 6.0);
  EXPECT_FALSE(result.straggler_predicted);
  const auto proportional = allocator.proportional_allocation(demands);
  EXPECT_EQ(result.threads, proportional);
}

TEST_F(AllocatorFixture, ReportsResidualsAndEvaluationCost) {
  const ThreadAllocator allocator(model, config_with(8));
  const std::vector<GpuDemand> demands = {demand_of(0, 4'000'000), demand_of(500'000, 0)};
  const auto result = allocator.allocate(demands, 6.0);
  ASSERT_EQ(result.t_dif.size(), 2U);
  EXPECT_GT(result.model_evaluations, 2U);
  // Residuals are consistent with the returned allocation.
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(result.t_dif[j], model.t_dif(demands[j], result.threads[j], 6.0), 1e-12);
  }
}

TEST_F(AllocatorFixture, DeterministicAcrossCalls) {
  const ThreadAllocator allocator(model, config_with(16));
  const std::vector<GpuDemand> demands = {demand_of(0, 3'000'000), demand_of(0, 1'000'000),
                                          demand_of(1'000'000, 0), demand_of(0, 500'000)};
  const auto a = allocator.allocate(demands, 6.0);
  const auto b = allocator.allocate(demands, 6.0);
  EXPECT_EQ(a.threads, b.threads);
}

TEST(IsConsistentWindow, DetectsCyclesOnly) {
  // Too short.
  EXPECT_FALSE(is_consistent_window({1.0, 1.0}));
  // Improving trajectory: last is strictly best.
  EXPECT_FALSE(is_consistent_window({5.0, 3.0, 1.0}));
  // Revisit without improvement.
  EXPECT_TRUE(is_consistent_window({5.0, 3.0, 5.0}));
  // Non-improving but new value: not a proven cycle.
  EXPECT_FALSE(is_consistent_window({5.0, 3.0, 4.0}));
}

}  // namespace
}  // namespace lobster::core

// ---- per-tier split optimizer (appended coverage).

#include "common/rng.hpp"
#include "core/tier_split.hpp"

namespace lobster::core {
namespace {

TEST(TierSplit, RejectsZeroThreads) {
  const storage::StorageModel model;
  storage::TierBytes bytes;
  bytes.local = 1000;
  EXPECT_THROW(optimize_tier_split(model, bytes, 0), std::invalid_argument);
}

TEST(TierSplit, SingleTierKeepsUniform) {
  const storage::StorageModel model;
  storage::TierBytes bytes;
  bytes.pfs = 1'000'000;
  const auto result = optimize_tier_split(model, bytes, 8);
  EXPECT_DOUBLE_EQ(result.load_time, result.uniform_time);
  EXPECT_NEAR(result.improvement(), 1.0, 1e-12);
}

TEST(TierSplit, NeverWorseThanUniform) {
  const storage::StorageModel model;
  lobster::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    storage::TierBytes bytes;
    bytes.local = rng.bounded(5'000'000);
    bytes.remote = rng.bounded(3'000'000);
    bytes.pfs = rng.bounded(3'000'000);
    if (bytes.total() == 0) continue;
    const auto result = optimize_tier_split(model, bytes, 8);
    // The even feasible split is in the search space, so the optimum can
    // never be worse.
    EXPECT_LE(result.load_time, result.uniform_time + 1e-12);
    const double total = result.alloc.alpha + result.alloc.beta + result.alloc.gamma;
    EXPECT_LE(total, 8.0 + 1e-9);
    EXPECT_GT(result.evaluations, 0U);
    EXPECT_TRUE(std::isfinite(result.load_time));
  }
}

TEST(TierSplit, AllocatesOnlyToDemandedTiers) {
  const storage::StorageModel model;
  storage::TierBytes bytes;
  bytes.local = 2'000'000;
  bytes.pfs = 500'000;
  const auto result = optimize_tier_split(model, bytes, 6);
  EXPECT_GE(result.alloc.alpha, 1.0);
  EXPECT_DOUBLE_EQ(result.alloc.beta, 0.0);
  EXPECT_GE(result.alloc.gamma, 1.0);
  EXPECT_DOUBLE_EQ(result.alloc.alpha + result.alloc.gamma, 6.0);
}

TEST(TierSplit, FavorsTheSlowTier) {
  // Heavy PFS + tiny local: gamma should get the bulk of the grant.
  const storage::StorageModel model;
  storage::TierBytes bytes;
  bytes.local = 100'000;
  bytes.pfs = 8'000'000;
  const auto result = optimize_tier_split(model, bytes, 8);
  EXPECT_GE(result.alloc.gamma, result.alloc.alpha);  // ties allowed past the PFS knee
}

}  // namespace
}  // namespace lobster::core
