// Time-indexed capacity schedule for heterogeneity / degradation scenarios.
//
// A CapacityProfile is a step function t → scale in [0, 1]: the effective
// capacity of a channel (or a whole node's I/O + preprocessing pipeline) is
// `nominal * scale_at(t)`. It replaces the old one-shot
// sim::Resource::set_capacity_scale(double) choreography — harnesses used to
// re-call that at hand-picked moments; now they declare the whole scenario
// up front and hand it to the consumer:
//
//   * sim::Resource::set_capacity_profile schedules the steps as engine
//     events on the virtual clock (t = virtual seconds);
//   * comm::FaultSpec carries an iteration-indexed profile the FaultPlan
//     applies on its iteration clock (t = global iteration id);
//   * runtime::ExecutorConfig carries an iteration-indexed profile scaling
//     the node's virtual-time tier rates (the straggler-soak slow node).
//
// The header is engine-free on purpose: the same type serves the
// discrete-event simulator, the comm fault model and the online executor.
#pragma once

#include <vector>

namespace lobster::sim {

class CapacityProfile {
 public:
  struct Step {
    double t = 0.0;      ///< time (virtual seconds or iteration index)
    double scale = 1.0;  ///< effective capacity fraction in [0, 1]
  };

  CapacityProfile() = default;

  /// Adds a step: from time `t` on, capacity is `nominal * scale`. Chainable
  /// (`profile.at(0, 1.0).at(8, 0.5)`); steps may be added out of order.
  /// Throws std::invalid_argument when scale is outside [0, 1].
  CapacityProfile& at(double t, double scale);

  /// Scale in effect at time `t`: the latest step with step.t <= t, or 1.0
  /// before the first step (and for an empty profile).
  double scale_at(double t) const noexcept;

  bool empty() const noexcept { return steps_.empty(); }
  const std::vector<Step>& steps() const noexcept { return steps_; }

  /// Lowest scale anywhere in the schedule (1.0 when empty) — the "how bad
  /// does it get" summary harnesses gate on.
  double min_scale() const noexcept;

  // --- Named presets (t units follow the consumer's clock) ---

  /// Single-step profile: `scale` from t = 0 on. The compatibility shape the
  /// old set_capacity_scale(double) calls map onto.
  static CapacityProfile constant(double scale);

  /// Thermal throttling: a three-step ramp starting at `start`, stepping
  /// down every `ramp` time units to `floor_scale` (0.85 → 0.65 → floor),
  /// then holding — the sustained-load DVFS staircase.
  static CapacityProfile thermal_throttle(double start, double ramp, double floor_scale = 0.45);

  /// Co-tenant interference: capacity drops to `scale` for the window
  /// [start, end), then recovers to full.
  static CapacityProfile co_tenant(double start, double end, double scale = 0.6);

  /// Degraded NIC: a hard drop to `scale` at `start` that never recovers
  /// (link renegotiated down / half-duplex fallback).
  static CapacityProfile degraded_nic(double start, double scale = 0.25);

 private:
  std::vector<Step> steps_;  ///< kept sorted by t (stable for equal t: last wins)
};

}  // namespace lobster::sim
