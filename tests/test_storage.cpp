// Throughput curves and the Eq. 1 storage model with contention.
#include <gtest/gtest.h>

#include <cmath>

#include "storage/curves.hpp"
#include "storage/hierarchy.hpp"

namespace lobster::storage {
namespace {

TEST(ThroughputCurve, RampsLinearlyBelowKnee) {
  const ThroughputCurve curve("t", 100.0, 400.0);
  EXPECT_DOUBLE_EQ(curve.aggregate_bps(1), 100.0);
  EXPECT_DOUBLE_EQ(curve.aggregate_bps(2), 200.0);
  EXPECT_DOUBLE_EQ(curve.aggregate_bps(4), 400.0);
  EXPECT_EQ(curve.knee_threads(), 4U);
}

TEST(ThroughputCurve, PlateausWithoutDecline) {
  const ThroughputCurve curve("t", 100.0, 400.0, 0.0);
  EXPECT_DOUBLE_EQ(curve.aggregate_bps(10), 400.0);
  EXPECT_DOUBLE_EQ(curve.aggregate_bps(100), 400.0);
}

TEST(ThroughputCurve, DeclinesWithFloor) {
  const ThroughputCurve curve("t", 100.0, 400.0, /*decline=*/0.1, /*floor=*/0.5);
  // knee = 4; at 6 threads: 400 * (1 - 0.1*2) = 320.
  EXPECT_DOUBLE_EQ(curve.aggregate_bps(6), 320.0);
  // Far past the knee the floor holds: 0.5 * 400.
  EXPECT_DOUBLE_EQ(curve.aggregate_bps(100), 200.0);
}

TEST(ThroughputCurve, FractionalThreads) {
  const ThroughputCurve curve("t", 100.0, 400.0);
  EXPECT_DOUBLE_EQ(curve.aggregate_bps(0.5), 50.0);
  EXPECT_DOUBLE_EQ(curve.aggregate_bps(0.0), 0.0);
  EXPECT_DOUBLE_EQ(curve.per_thread_bps(0.5), 100.0);
}

TEST(ThroughputCurve, PerThreadDecreasesAtSaturation) {
  const ThroughputCurve curve("t", 100.0, 300.0);
  EXPECT_DOUBLE_EQ(curve.per_thread_bps(1), 100.0);
  EXPECT_DOUBLE_EQ(curve.per_thread_bps(6), 50.0);
}

TEST(ThroughputCurve, RejectsBadParams) {
  EXPECT_THROW(ThroughputCurve("x", 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(ThroughputCurve("x", 200.0, 100.0), std::invalid_argument);
  EXPECT_THROW(ThroughputCurve("x", 1.0, 2.0, -0.1), std::invalid_argument);
  EXPECT_THROW(ThroughputCurve("x", 1.0, 2.0, 0.0, 0.0), std::invalid_argument);
}

TEST(ThroughputCurve, PresetsAreOrderedByLocality) {
  const auto local = ThroughputCurve::local_memory();
  const auto remote = ThroughputCurve::remote_cache();
  const auto pfs = ThroughputCurve::pfs();
  EXPECT_GT(local.peak_bps(), remote.peak_bps());
  EXPECT_GT(remote.peak_bps(), pfs.peak_bps());
  EXPECT_GT(local.single_stream_bps(), pfs.single_stream_bps());
}

StorageModel::Params simple_params() {
  StorageModel::Params params;
  params.local = ThroughputCurve("local", 100.0, 800.0);
  params.remote = ThroughputCurve("remote", 50.0, 200.0);
  params.pfs = ThroughputCurve("pfs", 10.0, 40.0);
  params.pfs_cluster_bps = 100.0;
  params.remote_latency = 0.0;
  params.pfs_latency = 0.0;
  return params;
}

TEST(StorageModel, Eq1SingleTierExact) {
  const StorageModel model(simple_params());
  TierBytes bytes;
  bytes.local = 800;
  // 800 bytes at aggregate(2 threads) = 200 B/s -> 4 s.
  EXPECT_NEAR(model.load_time(bytes, ThreadAlloc::uniform(2.0)), 4.0, 1e-9);
}

TEST(StorageModel, Eq1SumsAcrossTiers) {
  const StorageModel model(simple_params());
  TierBytes bytes;
  bytes.local = 100;   // at 100 B/s (1 thread) -> 1 s
  bytes.remote = 100;  // at 50 B/s -> 2 s
  bytes.pfs = 10;      // at 10 B/s -> 1 s
  const auto breakdown = model.load_time_breakdown(bytes, ThreadAlloc::uniform(1.0));
  EXPECT_NEAR(breakdown.local, 1.0, 1e-9);
  EXPECT_NEAR(breakdown.remote, 2.0, 1e-9);
  EXPECT_NEAR(breakdown.pfs, 1.0, 1e-9);
  EXPECT_NEAR(breakdown.total(), 4.0, 1e-9);
}

TEST(StorageModel, LatenciesAddOncePerTier) {
  auto params = simple_params();
  params.remote_latency = 0.5;
  params.pfs_latency = 1.5;
  const StorageModel model(params);
  TierBytes bytes;
  bytes.remote = 50;  // 1 s transfer + 0.5 latency
  bytes.pfs = 10;     // 1 s transfer + 1.5 latency
  EXPECT_NEAR(model.load_time(bytes, ThreadAlloc::uniform(1.0)), 4.0, 1e-9);
}

TEST(StorageModel, EmptyTiersPayNoLatency) {
  auto params = simple_params();
  params.pfs_latency = 99.0;
  const StorageModel model(params);
  TierBytes bytes;
  bytes.local = 100;
  EXPECT_NEAR(model.load_time(bytes, ThreadAlloc::uniform(1.0)), 1.0, 1e-9);
}

TEST(StorageModel, IntraNodeContentionCapsTierRate) {
  const StorageModel model(simple_params());
  Contention contention;
  contention.local_readers_node = 8;  // local peak 800 / 8 = 100 B/s cap
  // 4 threads would give 400 B/s alone; contention caps at 100.
  EXPECT_NEAR(model.local_bps(4.0, contention), 100.0, 1e-9);
}

TEST(StorageModel, ClusterPfsShareCaps) {
  const StorageModel model(simple_params());
  Contention contention;
  contention.pfs_readers_cluster = 10;  // 100 / 10 = 10 B/s
  contention.pfs_readers_node = 1;
  EXPECT_NEAR(model.pfs_bps(4.0, contention), 10.0, 1e-9);
}

TEST(StorageModel, TightestCapWins) {
  const StorageModel model(simple_params());
  Contention contention;
  contention.pfs_readers_node = 2;      // node view 40/2 = 20
  contention.pfs_readers_cluster = 2;   // cluster 100/2 = 50
  // Own threads: aggregate(1) = 10 — the tightest.
  EXPECT_NEAR(model.pfs_bps(1.0, contention), 10.0, 1e-9);
  // With 8 threads own aggregate = 40; node cap 20 binds.
  EXPECT_NEAR(model.pfs_bps(8.0, contention), 20.0, 1e-9);
}

TEST(StorageModel, MoreThreadsNeverSlower) {
  const StorageModel model(simple_params());
  TierBytes bytes;
  bytes.local = 1000;
  bytes.remote = 500;
  bytes.pfs = 100;
  double prev = 1e18;
  for (double threads = 0.5; threads <= 16.0; threads += 0.5) {
    const double t = model.load_time(bytes, ThreadAlloc::uniform(threads));
    EXPECT_LE(t, prev + 1e-12) << "threads=" << threads;
    prev = t;
  }
}

TEST(StorageModel, ZeroThreadShareStillProgresses) {
  const StorageModel model(simple_params());
  TierBytes bytes;
  bytes.pfs = 10;
  const double t = model.load_time(bytes, ThreadAlloc::uniform(0.0));
  EXPECT_TRUE(std::isfinite(t));
  EXPECT_GT(t, 0.0);
}

}  // namespace
}  // namespace lobster::storage
