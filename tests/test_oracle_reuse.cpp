// Future-access oracle vs brute force, window sliding, and the reuse
// distance analysis behind Fig. 4.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <vector>

#include "data/oracle.hpp"
#include "data/reuse.hpp"
#include "data/sampler.hpp"

namespace lobster::data {
namespace {

SamplerConfig small_config() {
  SamplerConfig config;
  config.num_samples = 512;
  config.nodes = 2;
  config.gpus_per_node = 2;
  config.batch_size = 8;
  config.seed = 7;
  return config;
}

/// Brute-force future access list built directly from the sampler.
std::map<SampleId, std::vector<Access>> brute_force_accesses(const EpochSampler& sampler,
                                                             std::uint32_t epochs) {
  std::map<SampleId, std::vector<Access>> accesses;
  const auto& config = sampler.config();
  for (std::uint32_t e = 0; e < epochs; ++e) {
    for (std::uint32_t h = 0; h < sampler.iterations_per_epoch(); ++h) {
      for (NodeId n = 0; n < config.nodes; ++n) {
        for (GpuId g = 0; g < config.gpus_per_node; ++g) {
          for (const SampleId s : sampler.minibatch(e, h, n, g)) {
            accesses[s].push_back({sampler.global_iter(e, h), n, g});
          }
        }
      }
    }
  }
  return accesses;
}

TEST(FutureAccessOracle, MatchesBruteForceNextAccess) {
  const EpochSampler sampler(small_config());
  const FutureAccessOracle oracle(sampler, 2);
  const auto truth = brute_force_accesses(sampler, 2);

  for (SampleId s = 0; s < sampler.config().num_samples; s += 7) {
    const auto it = truth.find(s);
    // Query from several vantage iterations.
    for (const IterId after : {IterId{0}, IterId{5}, IterId{20}}) {
      std::optional<Access> expected;
      if (it != truth.end()) {
        for (const auto& access : it->second) {
          if (access.iter > after) {
            expected = access;
            break;
          }
        }
      }
      const auto actual = oracle.next_access(s, after);
      ASSERT_EQ(actual.has_value(), expected.has_value()) << "sample " << s << " after " << after;
      if (actual) {
        EXPECT_EQ(actual->iter, expected->iter);
        EXPECT_EQ(actual->node, expected->node);
        EXPECT_EQ(actual->gpu, expected->gpu);
      }
    }
  }
}

TEST(FutureAccessOracle, NodeFilteredQueriesMatchBruteForce) {
  const EpochSampler sampler(small_config());
  const FutureAccessOracle oracle(sampler, 3);
  const auto truth = brute_force_accesses(sampler, 3);

  for (SampleId s = 0; s < sampler.config().num_samples; s += 13) {
    for (NodeId n = 0; n < 2; ++n) {
      const IterId after = 3;
      std::optional<Access> expected;
      std::uint32_t expected_uses = 0;
      bool other_node = false;
      const auto it = truth.find(s);
      if (it != truth.end()) {
        for (const auto& access : it->second) {
          if (access.iter <= after) continue;
          if (access.node == n) {
            ++expected_uses;
            if (!expected) expected = access;
          } else {
            other_node = true;
          }
        }
      }
      const auto actual = oracle.next_access_on_node(s, n, after);
      ASSERT_EQ(actual.has_value(), expected.has_value());
      if (actual) {
        EXPECT_EQ(actual->iter, expected->iter);
      }
      EXPECT_EQ(oracle.remaining_uses_on_node(s, n, after), expected_uses);
      EXPECT_EQ(oracle.needed_by_other_node(s, n, after), other_node);
      const IterId distance = oracle.reuse_distance_on_node(s, n, after);
      if (expected) {
        EXPECT_EQ(distance, expected->iter - after);
      } else {
        EXPECT_EQ(distance, kNeverIter);
      }
    }
  }
}

TEST(FutureAccessOracle, EverySampleAccessedOncePerEpoch) {
  SamplerConfig config = small_config();
  config.num_samples = 256;  // exactly 8 iterations * 32 samples/iter
  const EpochSampler sampler(config);
  ASSERT_EQ(sampler.iterations_per_epoch() * sampler.world_size() * config.batch_size, 256U);
  const FutureAccessOracle oracle(sampler, 1);
  for (SampleId s = 0; s < 256; ++s) {
    EXPECT_EQ(oracle.accesses(s).size(), 1U) << "sample " << s;
  }
}

TEST(FutureAccessOracle, RebaseSlidesWindow) {
  const EpochSampler sampler(small_config());
  FutureAccessOracle oracle(sampler, 2);
  const std::uint32_t I = sampler.iterations_per_epoch();

  // Before rebase: epoch-2 accesses are invisible.
  const IterId epoch2_start = static_cast<IterId>(2) * I;
  std::uint32_t visible_before = 0;
  for (SampleId s = 0; s < 64; ++s) {
    if (oracle.next_access(s, epoch2_start - 1)) ++visible_before;
  }
  EXPECT_EQ(visible_before, 0U);

  oracle.rebase(1);  // window now [1, 3)
  EXPECT_EQ(oracle.first_epoch(), 1U);
  std::uint32_t visible_after = 0;
  for (SampleId s = 0; s < 64; ++s) {
    if (oracle.next_access(s, epoch2_start - 1)) ++visible_after;
  }
  EXPECT_GT(visible_after, 0U);

  // Slide-by-one must equal a fresh rebuild.
  FutureAccessOracle fresh(sampler, 2);
  fresh.rebase(1);
  for (SampleId s = 0; s < sampler.config().num_samples; s += 17) {
    const auto a = oracle.next_access(s, 0);
    const auto b = fresh.next_access(s, 0);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->iter, b->iter);
    }
  }
}

TEST(FutureAccessOracle, RebaseJumpRebuilds) {
  const EpochSampler sampler(small_config());
  FutureAccessOracle oracle(sampler, 2);
  oracle.rebase(5);
  EXPECT_EQ(oracle.first_epoch(), 5U);
  const std::uint32_t I = sampler.iterations_per_epoch();
  // All next accesses now land in epochs [5, 7).
  for (SampleId s = 0; s < 64; ++s) {
    const auto access = oracle.next_access(s, 0);
    if (access) {
      EXPECT_GE(access->iter, static_cast<IterId>(5) * I);
      EXPECT_LT(access->iter, static_cast<IterId>(7) * I);
    }
  }
}

TEST(FutureAccessOracle, RejectsZeroWindow) {
  const EpochSampler sampler(small_config());
  EXPECT_THROW(FutureAccessOracle(sampler, 0), std::invalid_argument);
}

// Two jobs over one dataset with UNEQUAL epoch budgets (cluster tenants
// rarely line up): the merged view must take the earliest next access
// while both are live and keep answering from the longer job alone after
// the short one's window ends.
TEST(MergedAccessOracle, UnequalEpochCountsMergeAndOutliveEachOther) {
  const EpochSampler sampler(small_config());
  const FutureAccessOracle shorter(sampler, 1);  // 1-epoch window
  const FutureAccessOracle longer(sampler, 3);   // 3-epoch window
  const MergedAccessOracle merged({&shorter, &longer});
  const std::uint32_t I = sampler.iterations_per_epoch();

  for (SampleId s = 0; s < sampler.config().num_samples; s += 13) {
    // Inside epoch 0 both members report; the merged next access is the
    // earliest of the two (here: identical, both see epoch 0).
    const auto a = shorter.next_access(s, 0);
    const auto b = longer.next_access(s, 0);
    const auto m = merged.next_access(s, 0);
    ASSERT_EQ(m.has_value(), a.has_value() || b.has_value());
    if (a && b) {
      EXPECT_EQ(m->iter, std::min(a->iter, b->iter));
    }

    // Past the short job's horizon only the longer member answers — the
    // merge must not go blind when one tenant's window ends.
    const IterId past_short = static_cast<IterId>(1) * I;
    const auto tail = merged.next_access(s, past_short);
    const auto long_tail = longer.next_access(s, past_short);
    ASSERT_EQ(tail.has_value(), long_tail.has_value());
    if (tail) {
      EXPECT_EQ(tail->iter, long_tail->iter);
      EXPECT_FALSE(shorter.next_access(s, past_short).has_value());
    }

    // Remaining uses sum across members (the short job contributes only
    // its single-epoch uses).
    EXPECT_EQ(merged.remaining_uses_on_node(s, 0, 0),
              shorter.remaining_uses_on_node(s, 0, 0) +
                  longer.remaining_uses_on_node(s, 0, 0));
  }
}

TEST(MergedAccessOracle, NeededByOtherNodeIsAnyMemberUnion) {
  const EpochSampler sampler(small_config());
  const FutureAccessOracle shorter(sampler, 1);
  const FutureAccessOracle longer(sampler, 3);
  const MergedAccessOracle merged({&shorter, &longer});
  const std::uint32_t I = sampler.iterations_per_epoch();

  // After the short window, "needed elsewhere" must follow the long member.
  std::uint32_t checked = 0;
  for (SampleId s = 0; s < sampler.config().num_samples && checked < 16; s += 7, ++checked) {
    EXPECT_EQ(merged.needed_by_other_node(s, 0, static_cast<IterId>(1) * I),
              longer.needed_by_other_node(s, 0, static_cast<IterId>(1) * I));
    // Reuse distance is the minimum across members.
    const auto d_short = shorter.reuse_distance_on_node(s, 1, 0);
    const auto d_long = longer.reuse_distance_on_node(s, 1, 0);
    EXPECT_EQ(merged.reuse_distance_on_node(s, 1, 0), std::min(d_short, d_long));
  }
}

TEST(ReuseAnalysis, SingleNodeDistanceIsOnePermutationApart) {
  SamplerConfig config;
  config.num_samples = 256;
  config.nodes = 1;
  config.gpus_per_node = 2;
  config.batch_size = 8;
  config.seed = 3;
  const EpochSampler sampler(config);
  const auto analysis = analyze_reuse(sampler, 4, 0);
  // One node sees every sample once per epoch: 3 reuse pairs per sample.
  EXPECT_EQ(analysis.pairs, 3U * 256U);
  // Distances average about I (one epoch apart).
  const double I = sampler.iterations_per_epoch();
  EXPECT_NEAR(analysis.mean_distance, I, I * 0.2);
}

TEST(ReuseAnalysis, MultiNodeDistancesAreLong) {
  SamplerConfig config;
  config.num_samples = 4096;
  config.nodes = 8;
  config.gpus_per_node = 2;
  config.batch_size = 8;
  config.seed = 3;
  const EpochSampler sampler(config);
  const auto analysis = analyze_reuse(sampler, 6, 1);
  ASSERT_GT(analysis.pairs, 0U);
  // With 8 nodes a sample returns to the *same* node rarely; most node-level
  // reuse distances exceed one epoch (the paper's Observation 4).
  EXPECT_GT(analysis.fraction_beyond_epoch, 0.5);
  EXPECT_GT(analysis.mean_distance, static_cast<double>(sampler.iterations_per_epoch()));
}

TEST(ReuseAnalysis, HistogramTotalsMatchPairs) {
  SamplerConfig config;
  config.num_samples = 512;
  config.nodes = 2;
  config.gpus_per_node = 2;
  config.batch_size = 8;
  config.seed = 11;
  const EpochSampler sampler(config);
  const auto analysis = analyze_reuse(sampler, 3, 0);
  EXPECT_EQ(analysis.histogram.total(), analysis.pairs);
}

}  // namespace
}  // namespace lobster::data

// ---- access-trace recording and analysis (appended coverage).

#include "baselines/strategies.hpp"
#include "data/trace.hpp"
#include "pipeline/simulator.hpp"

namespace lobster::data {
namespace {

TEST(AccessTrace, TierCountsAndCsv) {
  AccessTrace trace;
  trace.append({0, 0, 0, 1, ServedBy::kMemory});
  trace.append({0, 0, 1, 2, ServedBy::kPfs});
  trace.append({1, 1, 0, 3, ServedBy::kRemote});
  trace.append({1, 0, 0, 4, ServedBy::kSsd});
  const auto counts = trace.tier_counts();
  EXPECT_EQ(counts.memory, 1U);
  EXPECT_EQ(counts.ssd, 1U);
  EXPECT_EQ(counts.remote, 1U);
  EXPECT_EQ(counts.pfs, 1U);
  EXPECT_EQ(counts.total(), 4U);
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("iter,node,gpu,sample,served_by"), std::string::npos);
  EXPECT_NE(csv.find("0,0,1,2,pfs"), std::string::npos);
}

TEST(AccessTrace, PfsSkewMeasuresImbalance) {
  AccessTrace trace;
  // GPU 0 takes 3 misses, GPU 1 takes 1: skew = 3 / 2 = 1.5.
  for (int i = 0; i < 3; ++i) trace.append({0, 0, 0, SampleId(i), ServedBy::kPfs});
  trace.append({0, 0, 1, 9, ServedBy::kPfs});
  EXPECT_NEAR(trace.pfs_skew(1, 2), 1.5, 1e-9);
  // All-memory trace: neutral skew.
  AccessTrace warm;
  warm.append({0, 0, 0, 1, ServedBy::kMemory});
  EXPECT_EQ(warm.pfs_skew(1, 2), 1.0);
}

TEST(AccessTrace, SimulatorRecordsEveryAccess) {
  auto preset = pipeline::preset_imagenet1k_single_node(2000.0);
  preset.epochs = 2;
  AccessTrace trace;
  pipeline::SimulationConfig config;
  config.preset = preset;
  config.strategy = baselines::LoaderStrategy::nopfs();
  config.record_trace = &trace;
  pipeline::TrainingSimulator simulator(std::move(config));
  const auto result = simulator.run();

  const std::uint64_t expected = static_cast<std::uint64_t>(preset.epochs) *
                                 result.iterations_per_epoch *
                                 preset.cluster.total_gpus() * preset.batch_size;
  EXPECT_EQ(trace.size(), expected);
  // Trace tier counts must agree with the cache statistics.
  const auto counts = trace.tier_counts();
  const auto& stats = result.metrics.cache_stats();
  EXPECT_EQ(counts.memory, stats.hits);
  EXPECT_EQ(counts.remote + counts.pfs + counts.ssd, stats.misses);
}

TEST(AccessTrace, SaveCsvWritesFile) {
  AccessTrace trace;
  trace.append({0, 0, 0, 1, ServedBy::kMemory});
  const std::string path = ::testing::TempDir() + "/trace.csv";
  trace.save_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "iter,node,gpu,sample,served_by");
}

}  // namespace
}  // namespace lobster::data
