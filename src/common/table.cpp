#include "common/table.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/strfmt.hpp"

namespace lobster {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument(strf("Table: row has %zu cells, expected %zu", cells.size(),
                                     columns_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  return strf("%.*f", precision, v);
}

std::string Table::render_text() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      if (c + 1 < cells.size()) line += std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    line += '\n';
    return line;
  };
  std::string out = render_cells(columns_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out += std::string(rule, '-') + '\n';
  for (const auto& row : rows_) out += render_cells(row);
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::render_csv() const {
  std::string out;
  auto render_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += csv_escape(cells[c]);
      if (c + 1 < cells.size()) out += ',';
    }
    out += '\n';
  };
  render_cells(columns_);
  for (const auto& row : rows_) render_cells(row);
  return out;
}

namespace {
std::string md_escape(const std::string& cell) {
  std::string out;
  for (char ch : cell) {
    if (ch == '|') out += "\\|";
    else if (ch == '\n') out += ' ';
    else out += ch;
  }
  return out;
}
}  // namespace

std::string Table::render_markdown() const {
  std::string out;
  auto render_cells = [&](const std::vector<std::string>& cells) {
    out += '|';
    for (const auto& cell : cells) {
      out += ' ';
      out += md_escape(cell);
      out += " |";
    }
    out += '\n';
  };
  render_cells(columns_);
  out += '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) out += "---|";
  out += '\n';
  for (const auto& row : rows_) render_cells(row);
  return out;
}

}  // namespace lobster
