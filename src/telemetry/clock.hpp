// Time domains for the tracing subsystem.
//
// Lobster runs in two worlds at once: the online runtime (`src/runtime`,
// `src/comm`, thread pools) lives on the wall clock, while the simulator
// (`src/sim`, `src/pipeline`) advances a virtual clock that has no relation
// to elapsed real time. Every trace event therefore carries a Domain tag;
// the Chrome-trace exporter keeps the two domains on separate "processes"
// so their timelines never interleave.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/types.hpp"

namespace lobster::telemetry {

enum class Domain : std::uint8_t {
  kWall = 0,     ///< real elapsed time (std::chrono::steady_clock)
  kVirtual = 1,  ///< simulated Seconds (sim::Engine / pipeline iteration time)
};

/// Converts virtual Seconds to the microsecond ticks stored in trace records.
inline std::uint64_t to_micros(Seconds s) noexcept {
  return s <= 0.0 ? 0 : static_cast<std::uint64_t>(s * 1e6 + 0.5);
}

/// Monotonic wall clock used for the kWall domain.
using WallClock = std::chrono::steady_clock;

}  // namespace lobster::telemetry
