// telemetry::Monitor: anomaly flags from registry deltas, JSONL heartbeat
// sink, background-thread lifecycle, and trace-ring overflow detection.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/analysis/json.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace lobster::telemetry {
namespace {

// Small rings so the overflow test can fill one cheaply. Must run before
// any buffer is created in this process.
const bool kCapacitySet = [] {
  Tracer::instance().set_buffer_capacity(1u << 10);
  return true;
}();

void reset_all() {
  Tracer::instance().set_enabled(false);
  Tracer::instance().reset();
  MetricRegistry::instance().reset();
}

MonitorConfig quiet_config() {
  MonitorConfig config;
  config.log_text = false;
  return config;
}

TEST(Monitor, FirstSampleTreatsAbsolutesAsDeltas) {
  reset_all();
  auto& registry = MetricRegistry::instance();
  registry.counter("pipeline.iterations").add(4);
  registry.counter("pipeline.bytes_consumed").add(1000);
  registry.counter("prefetch.bytes").add(500);
  registry.counter("queue.pushes").add(10);
  registry.counter("queue.pops").add(7);
  registry.counter("cache.hits").add(3);
  registry.counter("cache.misses").add(1);

  Monitor monitor(quiet_config());
  const MonitorSample sample = monitor.sample_once();
  EXPECT_EQ(sample.seq, 1u);
  EXPECT_EQ(sample.iterations, 4u);
  EXPECT_EQ(sample.d_iterations, 4u);
  EXPECT_EQ(sample.d_bytes_consumed, 1000u);
  EXPECT_EQ(sample.d_prefetch_bytes, 500u);
  EXPECT_EQ(sample.d_queue_pops, 7u);
  EXPECT_DOUBLE_EQ(sample.cache_hit_ratio(), 0.75);
  // Consumption outpaced prefetch; queue holds 3 items; no gap, no drops.
  EXPECT_FALSE(sample.any_flag());

  // Nothing moved: second sample has zero deltas and still no flags.
  const MonitorSample idle = monitor.sample_once();
  EXPECT_EQ(idle.seq, 2u);
  EXPECT_EQ(idle.iterations, 4u);
  EXPECT_EQ(idle.d_iterations, 0u);
  EXPECT_EQ(idle.d_bytes_consumed, 0u);
  EXPECT_EQ(idle.d_queue_pops, 0u);
  EXPECT_FALSE(idle.any_flag());
  EXPECT_EQ(monitor.samples_emitted(), 2u);
}

TEST(Monitor, StragglerFlagFollowsGapGauge) {
  reset_all();
  auto& registry = MetricRegistry::instance();
  MonitorConfig config = quiet_config();
  config.straggler_gap_threshold = 0.10;
  Monitor monitor(config);

  registry.gauge("pipeline.gap_frac").set(0.05);
  EXPECT_FALSE(monitor.sample_once().straggler_gap);
  registry.gauge("pipeline.gap_frac").set(0.5);
  const MonitorSample flagged = monitor.sample_once();
  EXPECT_TRUE(flagged.straggler_gap);
  EXPECT_DOUBLE_EQ(flagged.gap_frac, 0.5);
  registry.gauge("pipeline.gap_frac").set(0.02);
  EXPECT_FALSE(monitor.sample_once().straggler_gap);
}

TEST(Monitor, PrefetchOutrunComparesIntervalRates) {
  reset_all();
  auto& registry = MetricRegistry::instance();
  Monitor monitor(quiet_config());
  monitor.sample_once();  // baseline

  // Prefetcher fetched 10x what training consumed over the interval (§4.4).
  registry.counter("prefetch.bytes").add(1000);
  registry.counter("pipeline.bytes_consumed").add(100);
  EXPECT_TRUE(monitor.sample_once().prefetch_outrun);

  // Next interval consumption catches up: flag clears.
  registry.counter("pipeline.bytes_consumed").add(900);
  EXPECT_FALSE(monitor.sample_once().prefetch_outrun);
}

TEST(Monitor, QueueStarvationNeedsPopsWithEmptyBalance) {
  reset_all();
  auto& registry = MetricRegistry::instance();
  Monitor monitor(quiet_config());
  monitor.sample_once();  // baseline

  // Consumers drained everything the producers pushed and the balance is
  // zero while pops advanced: starving.
  registry.counter("queue.pushes").add(5);
  registry.counter("queue.pops").add(5);
  EXPECT_TRUE(monitor.sample_once().queue_starved);

  // Producers got ahead again: not starved even though pops advanced.
  registry.counter("queue.pushes").add(10);
  registry.counter("queue.pops").add(2);
  EXPECT_FALSE(monitor.sample_once().queue_starved);

  // No pops at all: an empty-but-idle queue is not starvation.
  const MonitorSample idle = monitor.sample_once();
  EXPECT_EQ(idle.d_queue_pops, 0u);
  EXPECT_FALSE(idle.queue_starved);
}

#if !defined(LOBSTER_TELEMETRY_DISABLED)
TEST(Monitor, OverflowFlagTracksDroppedTraceEvents) {
  reset_all();
  Tracer::instance().set_enabled(true);
  Monitor monitor(quiet_config());
  EXPECT_FALSE(monitor.sample_once().trace_ring_overflow);

  // Blow past the 1<<10 ring sized at process start.
  for (int i = 0; i < (1 << 11); ++i) LOBSTER_TRACE_INSTANT(kTest, "overflow_filler", 0);
  const MonitorSample sample = monitor.sample_once();
  EXPECT_GT(sample.trace_dropped, 0u);
  EXPECT_TRUE(sample.trace_ring_overflow);
  // The monitor mirrors the drop count into the registry for exporters.
  EXPECT_GT(MetricRegistry::instance().gauge("telemetry.dropped_events").value(), 0.0);
  Tracer::instance().set_enabled(false);
}
#endif  // !LOBSTER_TELEMETRY_DISABLED

TEST(Monitor, JobStarvationFlagTracksClusterCounter) {
  reset_all();
  auto& registry = MetricRegistry::instance();
  Monitor monitor(quiet_config());

  registry.gauge("cluster.jobs_running").set(3.0);
  registry.gauge("cluster.jobs_queued").set(2.0);
  const MonitorSample healthy = monitor.sample_once();
  EXPECT_FALSE(healthy.job_starved);
  EXPECT_DOUBLE_EQ(healthy.jobs_running, 3.0);
  EXPECT_DOUBLE_EQ(healthy.jobs_queued, 2.0);

  // The fairness tracker declares a starvation: the flag raises once.
  registry.counter("cluster.job_starvations").add(1);
  const MonitorSample starving = monitor.sample_once();
  EXPECT_TRUE(starving.job_starved);
  EXPECT_EQ(starving.d_job_starvations, 1u);
  EXPECT_EQ(starving.job_starvations, 1u);
  EXPECT_TRUE(starving.any_flag());

  // Delta-based like peer_down: it clears on the next healthy interval.
  EXPECT_FALSE(monitor.sample_once().job_starved);
}

TEST(Monitor, JsonlSinkWritesParseableHeartbeats) {
  reset_all();
  auto& registry = MetricRegistry::instance();
  registry.counter("pipeline.iterations").add(2);
  registry.gauge("pipeline.gap_frac").set(0.42);
  registry.gauge("cluster.jobs_running").set(4.0);

  const std::string path =
      (std::filesystem::temp_directory_path() / "lobster_test_monitor.jsonl").string();
  {
    MonitorConfig config = quiet_config();
    config.jsonl_path = path;
    Monitor monitor(config);
    monitor.sample_once();
    registry.counter("pipeline.iterations").add(3);
    monitor.sample_once();
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);

  const auto first = analysis::parse_json(lines[0]);
  ASSERT_TRUE(first.is_object());
  EXPECT_EQ(first.get_string("schema"), "lobster.heartbeat.v1");
  EXPECT_DOUBLE_EQ(first.get_number("seq"), 1.0);
  EXPECT_DOUBLE_EQ(first.get_number("iterations"), 2.0);
  EXPECT_DOUBLE_EQ(first.get_number("gap_frac"), 0.42);
  EXPECT_DOUBLE_EQ(first.get_number("jobs_running"), 4.0);
  EXPECT_DOUBLE_EQ(first.get_number("job_starvations"), 0.0);
  ASSERT_TRUE(first.has("flags"));
  EXPECT_TRUE(first.at("flags").get_bool("straggler_gap"));
  EXPECT_FALSE(first.at("flags").get_bool("queue_starved"));
  EXPECT_FALSE(first.at("flags").get_bool("job_starved"));

  const auto second = analysis::parse_json(lines[1]);
  EXPECT_DOUBLE_EQ(second.get_number("seq"), 2.0);
  EXPECT_DOUBLE_EQ(second.get_number("iterations"), 5.0);
  EXPECT_DOUBLE_EQ(second.get_number("d_iterations"), 3.0);
  std::filesystem::remove(path);
}

TEST(Monitor, BackgroundThreadSamplesAndStopsCleanly) {
  reset_all();
  MonitorConfig config = quiet_config();
  config.interval = std::chrono::milliseconds(5);
  Monitor monitor(config);
  EXPECT_FALSE(monitor.running());

  monitor.start();
  EXPECT_TRUE(monitor.running());
  monitor.start();  // idempotent
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  monitor.stop();
  EXPECT_FALSE(monitor.running());
  // stop() emits a final sample even if the interval never elapsed.
  const std::uint64_t emitted = monitor.samples_emitted();
  EXPECT_GE(emitted, 1u);
  monitor.stop();  // idempotent
  EXPECT_EQ(monitor.samples_emitted(), emitted);
}

TEST(Monitor, DestructorStopsRunningThread) {
  reset_all();
  MonitorConfig config = quiet_config();
  config.interval = std::chrono::milliseconds(5);
  auto monitor = std::make_unique<Monitor>(config);
  monitor->start();
  monitor.reset();  // must join without hanging or crashing
  SUCCEED();
}

}  // namespace
}  // namespace lobster::telemetry
