// Crash-consistent job checkpointing (DESIGN.md §13): wire-format round
// trips, every corruption rejection path, atomic file save/load, balancer
// EWMA state restore, watchdog pause bracketing, preemptive fair-share
// eviction, and end-to-end determinism — a preempted/resumed (and resized)
// cluster run must deliver the exact sample stream, in order, that an
// uninterrupted isolated run delivers.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/checkpoint.hpp"
#include "cluster/cluster_runtime.hpp"
#include "cluster/job.hpp"
#include "cluster/scheduler.hpp"
#include "common/status.hpp"
#include "core/feedback_balancer.hpp"
#include "core/load_balance_config.hpp"
#include "data/dataset.hpp"
#include "runtime/distribution_manager.hpp"
#include "runtime/watchdog.hpp"
#include "telemetry/registry.hpp"

namespace lobster::cluster {
namespace {

JobSpec spec_for(std::string name, std::uint16_t nodes, std::uint32_t epochs = 2,
                 double weight = 1.0, std::uint64_t arrival = 0) {
  JobSpec spec;
  spec.name = std::move(name);
  spec.nodes = nodes;
  spec.gpus_per_node = 2;
  spec.batch_size = 4;
  spec.epochs = epochs;
  spec.weight = weight;
  spec.arrival_round = arrival;
  spec.dataset = data::DatasetSpec::uniform(256, 4096, "ckpt-test");
  return spec;
}

/// A checkpoint exercising every field: quotas, balancer history, and a
/// residency manifest whose checksum is the real inventory checksum.
JobCheckpoint full_checkpoint() {
  JobCheckpoint cp;
  cp.job_id = 7;
  cp.name = "trainer-7";
  cp.dataset_fingerprint = 0xFEEDFACE12345678ULL;
  cp.sampler_seed = 99;
  cp.epoch = 3;
  cp.cursor = 1234;
  cp.delivered_total = 99'999;
  cp.delivery_digest = delivery_digest_advance(0, 42);
  cp.width = 4;
  cp.gpus_per_node = 2;
  cp.batch_size = 32;
  cp.quotas = {9, 8, 8, 7, 9, 8, 8, 7};
  cp.has_balancer = true;
  cp.balancer.devices = {{123.5, 6, false}, {88.25, 6, true}};
  cp.balancer.quotas = {17, 15};
  cp.balancer.applied_weights = {0.53, 0.47};
  cp.balancer.applied_targets = {17, 15};
  cp.balancer.observed_iters = 6;
  cp.residency = {{11, 0, 4096}, {57, 3, 4096}, {200, 1, 4096}};
  std::vector<SampleId> samples;
  for (const auto& entry : cp.residency) samples.push_back(entry.sample);
  cp.residency_checksum = runtime::inventory_checksum(samples);
  return cp;
}

// ---------------------------------------------------------------------------
// Delivery digest
// ---------------------------------------------------------------------------

TEST(DeliveryDigest, OrderSensitiveAndDeterministic) {
  std::uint64_t a = 0, b = 0, swapped = 0;
  for (SampleId s : {3UL, 1UL, 4UL, 1UL, 5UL}) a = delivery_digest_advance(a, s);
  for (SampleId s : {3UL, 1UL, 4UL, 1UL, 5UL}) b = delivery_digest_advance(b, s);
  for (SampleId s : {1UL, 3UL, 4UL, 1UL, 5UL}) swapped = delivery_digest_advance(swapped, s);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, swapped);  // same multiset, different order
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

TEST(CheckpointWire, RoundTripPreservesEveryField) {
  const JobCheckpoint cp = full_checkpoint();
  const auto bytes = serialize(cp);
  auto parsed = deserialize(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const JobCheckpoint& out = parsed.value();

  EXPECT_EQ(out.job_id, cp.job_id);
  EXPECT_EQ(out.name, cp.name);
  EXPECT_EQ(out.dataset_fingerprint, cp.dataset_fingerprint);
  EXPECT_EQ(out.sampler_seed, cp.sampler_seed);
  EXPECT_EQ(out.epoch, cp.epoch);
  EXPECT_EQ(out.cursor, cp.cursor);
  EXPECT_EQ(out.delivered_total, cp.delivered_total);
  EXPECT_EQ(out.delivery_digest, cp.delivery_digest);
  EXPECT_EQ(out.width, cp.width);
  EXPECT_EQ(out.gpus_per_node, cp.gpus_per_node);
  EXPECT_EQ(out.batch_size, cp.batch_size);
  EXPECT_EQ(out.quotas, cp.quotas);
  ASSERT_TRUE(out.has_balancer);
  ASSERT_EQ(out.balancer.devices.size(), cp.balancer.devices.size());
  for (std::size_t d = 0; d < cp.balancer.devices.size(); ++d) {
    EXPECT_DOUBLE_EQ(out.balancer.devices[d].ewma, cp.balancer.devices[d].ewma);
    EXPECT_EQ(out.balancer.devices[d].observations, cp.balancer.devices[d].observations);
    EXPECT_EQ(out.balancer.devices[d].down, cp.balancer.devices[d].down);
  }
  EXPECT_EQ(out.balancer.quotas, cp.balancer.quotas);
  EXPECT_EQ(out.balancer.applied_targets, cp.balancer.applied_targets);
  EXPECT_EQ(out.balancer.observed_iters, cp.balancer.observed_iters);
  ASSERT_EQ(out.residency.size(), cp.residency.size());
  for (std::size_t e = 0; e < cp.residency.size(); ++e) {
    EXPECT_EQ(out.residency[e].sample, cp.residency[e].sample);
    EXPECT_EQ(out.residency[e].local_holder, cp.residency[e].local_holder);
    EXPECT_EQ(out.residency[e].bytes, cp.residency[e].bytes);
  }
  EXPECT_EQ(out.residency_checksum, cp.residency_checksum);
}

TEST(CheckpointWire, RoundTripWithoutBalancerOrResidency) {
  JobCheckpoint cp;
  cp.job_id = 1;
  cp.name = "bare";
  cp.width = 2;
  cp.gpus_per_node = 1;
  cp.batch_size = 8;
  cp.residency_checksum = runtime::inventory_checksum({});
  auto parsed = deserialize(serialize(cp));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().has_balancer);
  EXPECT_TRUE(parsed.value().residency.empty());
}

TEST(CheckpointWire, EveryCorruptionIsRejectedAsCorrupt) {
  const auto bytes = serialize(full_checkpoint());

  // Flip one byte anywhere in the body: CRC must catch it.
  auto flipped = bytes;
  flipped[bytes.size() / 2] ^= std::byte{0x01};
  EXPECT_EQ(deserialize(flipped).status().code(), StatusCode::kCorrupt);

  // Truncation at several cut points, including mid-header and mid-trailer.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    auto cut = bytes;
    cut.resize(keep);
    EXPECT_EQ(deserialize(cut).status().code(), StatusCode::kCorrupt) << "keep=" << keep;
  }

  // Bad magic.
  auto magic = bytes;
  magic[0] ^= std::byte{0xFF};
  EXPECT_EQ(deserialize(magic).status().code(), StatusCode::kCorrupt);

  // Appended garbage breaks the CRC trailer.
  auto longer = bytes;
  longer.push_back(std::byte{0xAB});
  EXPECT_EQ(deserialize(longer).status().code(), StatusCode::kCorrupt);
}

TEST(CheckpointWire, ResidencyChecksumMismatchIsCorrupt) {
  JobCheckpoint cp = full_checkpoint();
  cp.residency_checksum ^= 1;  // manifest disagrees with its own checksum
  const auto parsed = deserialize(serialize(cp));
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorrupt);
}

// ---------------------------------------------------------------------------
// File save/load
// ---------------------------------------------------------------------------

TEST(CheckpointFile, SaveLoadRoundTripAndFailureModes) {
  const auto dir = std::filesystem::temp_directory_path() / "lobster_ckpt_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "job7.ckpt").string();

  const JobCheckpoint cp = full_checkpoint();
  ASSERT_TRUE(save_file(cp, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // atomic rename

  auto loaded = load_file(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().delivery_digest, cp.delivery_digest);
  EXPECT_EQ(loaded.value().cursor, cp.cursor);

  EXPECT_EQ(load_file((dir / "missing.ckpt").string()).status().code(),
            StatusCode::kNotFound);

  // Truncate the file on disk: integrity failure, not not-found.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 5);
  EXPECT_EQ(load_file(path).status().code(), StatusCode::kCorrupt);

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// FeedbackBalancer state restore (warm EWMA history across preemption)
// ---------------------------------------------------------------------------

core::IterationFeedback balancer_feedback(IterId iter, const std::vector<std::uint32_t>& quotas,
                                          const std::vector<double>& rates) {
  core::IterationFeedback feedback;
  feedback.iter = iter;
  for (std::uint32_t d = 0; d < quotas.size(); ++d) {
    core::DeviceFeedback device;
    device.device = d;
    device.delivered = quotas[d];
    device.busy_s = quotas[d] / rates[d];
    feedback.devices.push_back(device);
  }
  return feedback;
}

TEST(BalancerState, RestoreResumesWithoutWarmupFromScratch) {
  core::LoadBalanceConfig knobs;
  knobs.world_size = 4;
  knobs.batch_size = 64;
  core::BalancerOptions options;
  options.gpus_per_node = 2;

  core::FeedbackBalancer original(knobs, options);
  const std::vector<double> rates = {10.0, 10.0, 10.0, 5.0};  // device 3 is slow
  for (IterId i = 0; i < 6; ++i) {
    original.observe(balancer_feedback(i, original.current_quotas(), rates));
    original.plan(i + 1);
  }
  const auto state = original.export_state();
  EXPECT_EQ(state.observed_iters, 6u);

  core::FeedbackBalancer restored(knobs, options);
  restored.restore_state(state);
  EXPECT_EQ(restored.current_quotas(), original.current_quotas());

  // Both continue identically from the restored history.
  const auto next = balancer_feedback(6, original.current_quotas(), rates);
  original.observe(next);
  restored.observe(next);
  original.plan(7);
  restored.plan(7);
  EXPECT_EQ(restored.current_quotas(), original.current_quotas());

  // A checkpoint from a different world shape must be refused.
  core::LoadBalanceConfig narrow = knobs;
  narrow.world_size = 2;
  narrow.batch_size = 64;
  core::FeedbackBalancer wrong_shape(narrow, core::BalancerOptions{});
  EXPECT_THROW(wrong_shape.restore_state(state), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Watchdog pause bracket
// ---------------------------------------------------------------------------

TEST(WatchdogPause, CheckpointStretchNeverCountsAsStall) {
  runtime::WatchdogConfig config;
  config.multiplier = 1.0;
  config.min_deadline = 0.01;  // 10ms: the pause below would blow through it
  config.window = 4;
  runtime::IterationWatchdog watchdog(config);
  watchdog.start();

  watchdog.begin_iteration(0);
  {
    runtime::WatchdogPause guard(&watchdog);
    EXPECT_TRUE(watchdog.paused());
    // begin_iteration is a no-op while paused: a restore is not an iteration.
    watchdog.begin_iteration(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  EXPECT_FALSE(watchdog.paused());
  watchdog.stop();
  EXPECT_EQ(watchdog.stalls(), 0u);

  runtime::WatchdogPause null_guard(nullptr);  // null watchdog is a no-op
}

// ---------------------------------------------------------------------------
// JobManager: preemptive fair share
// ---------------------------------------------------------------------------

PreemptionPolicy eager_policy() {
  PreemptionPolicy policy;
  policy.min_deficit = 1.0;
  policy.min_deficit_gap = 0.5;
  policy.cooldown_rounds = 0;
  policy.max_preemptions_per_job = 2;
  policy.max_victims = 1;
  return policy;
}

TEST(JobManagerPreemptive, HighDeficitWaiterEvictsLowestDeficitRunner) {
  JobManager manager(8, SchedulerPolicy::kFairSharePreemptive);
  manager.set_preemption_policy(eager_policy());
  std::vector<JobId> hook_calls;
  manager.set_preempt_hook(
      [&hook_calls](JobId id, std::uint64_t) { hook_calls.push_back(id); });

  const JobId a = manager.submit(spec_for("a", 4), 0);
  const JobId b = manager.submit(spec_for("b", 4), 0);
  ASSERT_EQ(manager.admit(0).size(), 2u);

  const JobId heavy = manager.submit(spec_for("heavy", 4, 2, 4.0), 1);
  const auto admitted = manager.admit(2);  // heavy's deficit = 1 round x 4.0
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted.front(), heavy);
  EXPECT_EQ(manager.preemptions(), 1u);
  ASSERT_EQ(hook_calls.size(), 1u);  // checkpoint hook fired for the victim
  const JobId victim = hook_calls.front();
  EXPECT_TRUE(victim == a || victim == b);
  EXPECT_EQ(manager.record(victim).state, JobState::kPreempted);
  EXPECT_EQ(manager.record(victim).preempt_count, 1u);

  // The victim re-enters the admission pool and resumes once capacity frees.
  manager.finish(heavy, 5);
  const auto resumed = manager.admit(6);
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_EQ(resumed.front(), victim);
  EXPECT_EQ(manager.resumes(), 1u);
  EXPECT_EQ(manager.record(victim).state, JobState::kRunning);
  // The preempted stretch is banked into total wait, not dropped.
  EXPECT_EQ(manager.record(victim).total_wait_rounds, 4u);
}

TEST(JobManagerPreemptive, CooldownShieldsFreshlyStartedJobs) {
  JobManager manager(8, SchedulerPolicy::kFairSharePreemptive);
  auto policy = eager_policy();
  policy.cooldown_rounds = 100;
  manager.set_preemption_policy(policy);

  manager.submit(spec_for("a", 4), 0);
  manager.submit(spec_for("b", 4), 0);
  manager.admit(0);
  manager.submit(spec_for("heavy", 4, 2, 4.0), 1);
  EXPECT_TRUE(manager.admit(3).empty());  // nobody has run past the cooldown
  EXPECT_EQ(manager.preemptions(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end determinism through preemption and elastic resizing
// ---------------------------------------------------------------------------

TEST(ClusterCheckpointE2E, PreemptedJobsResumeExactlyOnceAndDigestIdentical) {
  telemetry::MetricRegistry::instance().reset();
  ClusterConfig config;
  config.nodes = 8;
  config.policy = SchedulerPolicy::kFairSharePreemptive;
  config.preemption.min_deficit = 1.0;
  config.preemption.min_deficit_gap = 0.5;
  config.preemption.cooldown_rounds = 2;
  config.preemption.max_victims = 1;
  config.elastic_resize = false;  // isolate the preemption path

  ClusterRuntime runtime(config);
  runtime.submit(spec_for("steady-a", 4, 3));
  runtime.submit(spec_for("steady-b", 4, 3));
  runtime.submit(spec_for("burst", 4, 1, 4.0, 2));
  const ClusterResult result = runtime.run();

  EXPECT_GE(result.preemptions, 1u);
  EXPECT_GE(result.resumes, 1u);
  EXPECT_GE(result.checkpoints_cut, 1u);
  EXPECT_GT(result.checkpoint_bytes, 0u);
  ASSERT_EQ(result.jobs.size(), 3u);
  for (const JobOutcome& job : result.jobs) {
    EXPECT_EQ(job.state, JobState::kFinished) << job.name;
    // Exactly-once: the full permutation of every epoch, nothing dropped or
    // replayed across the preempt/resume cycle.
    EXPECT_EQ(job.samples_delivered, job.samples_expected) << job.name;
    // Byte-identity: the delivered stream folds to the isolated run's digest.
    EXPECT_TRUE(job.digest_match) << job.name;
    EXPECT_EQ(job.delivery_digest, job.isolated_digest) << job.name;
  }
  EXPECT_EQ(result.digest_matches, 3u);
  EXPECT_EQ(result.digest_mismatches, 0u);
  const auto preempted_jobs = [&result] {
    std::uint32_t count = 0;
    for (const JobOutcome& job : result.jobs) count += job.preemptions > 0 ? 1 : 0;
    return count;
  }();
  EXPECT_GE(preempted_jobs, 1u);
}

TEST(ClusterCheckpointE2E, ElasticJobShrinksGrowsAndStaysDeterministic) {
  telemetry::MetricRegistry::instance().reset();
  ClusterConfig config;
  config.nodes = 6;
  config.policy = SchedulerPolicy::kFairShare;
  config.elastic_resize = true;

  ClusterRuntime runtime(config);
  JobSpec elastic = spec_for("elastic", 4, 5);
  elastic.min_nodes = 2;
  elastic.max_nodes = 8;
  const JobId elastic_id = runtime.submit(elastic);
  runtime.submit(spec_for("rigid", 4, 1, 1.0, 2));  // cannot fit beside width-4
  const ClusterResult result = runtime.run();

  EXPECT_GE(result.resizes, 2u);
  ASSERT_EQ(result.jobs.size(), 2u);
  for (const JobOutcome& job : result.jobs) {
    EXPECT_EQ(job.state, JobState::kFinished) << job.name;
    EXPECT_EQ(job.samples_delivered, job.samples_expected) << job.name;
    EXPECT_TRUE(job.digest_match) << job.name;
  }
  const JobOutcome& out = result.jobs[elastic_id];
  ASSERT_EQ(out.id, elastic_id);
  // Shrank under queue pressure, grew back into the freed capacity — and the
  // digest still matches the isolated spec-width run: the delivery stream is
  // width-invariant across the whole resize history.
  EXPECT_GE(out.shrinks, 1u);
  EXPECT_GE(out.grows, 1u);
  EXPECT_EQ(out.final_width, 6u);
  EXPECT_EQ(out.delivery_digest, out.isolated_digest);
}

}  // namespace
}  // namespace lobster::cluster
