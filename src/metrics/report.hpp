// Rendering helpers shared by the figure benches: comparison tables,
// speedup rows, simple ASCII series.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "pipeline/simulator.hpp"

namespace lobster::metrics {

/// One strategy's results for a comparison row.
struct StrategyResult {
  std::string strategy;
  pipeline::SimulationResult result;
};

/// Builds the canonical comparison table: strategy, warm epoch time,
/// speedup vs the first row, hit ratio, imbalance fraction, GPU
/// utilisation, samples/s. `warmup_epochs` are excluded from timing.
Table comparison_table(const std::vector<StrategyResult>& results,
                       std::uint32_t warmup_epochs = 1);

/// Speedup of `baseline` over `target` on warm epochs (>1 means target is
/// faster).
double warm_speedup(const pipeline::SimulationResult& baseline,
                    const pipeline::SimulationResult& target, std::uint32_t warmup_epochs = 1);

/// ASCII sparkline-style series renderer (one line). Values are scaled
/// against the series' min..max span; any input range (including negative
/// values) is safe.
std::string render_series(const std::vector<double>& values, std::size_t width = 60);

}  // namespace lobster::metrics
