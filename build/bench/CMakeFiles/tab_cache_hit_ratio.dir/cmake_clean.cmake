file(REMOVE_RECURSE
  "CMakeFiles/tab_cache_hit_ratio.dir/tab_cache_hit_ratio.cpp.o"
  "CMakeFiles/tab_cache_hit_ratio.dir/tab_cache_hit_ratio.cpp.o.d"
  "tab_cache_hit_ratio"
  "tab_cache_hit_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_cache_hit_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
