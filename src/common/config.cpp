#include "common/config.hpp"

#include <algorithm>
#include <stdexcept>

namespace lobster {

Config Config::from_args(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return from_tokens(tokens);
}

Config Config::from_tokens(const std::vector<std::string>& tokens) {
  Config config;
  for (const auto& raw : tokens) {
    std::string token = raw;
    while (token.starts_with('-')) token.erase(token.begin());
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("Config: expected key=value, got '" + raw + "'");
    }
    config.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return config;
}

void Config::set(const std::string& key, std::string value) { values_[key] = std::move(value); }

bool Config::contains(const std::string& key) const { return values_.contains(key); }

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double Config::get_double(const std::string& key, double fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) { return std::tolower(c); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Config: not a boolean: " + key + "=" + it->second);
}

std::vector<std::string> Config::unconsumed() const {
  std::vector<std::string> keys;
  for (const auto& [key, value] : values_) {
    if (!consumed_.contains(key)) keys.push_back(key);
  }
  return keys;
}

}  // namespace lobster
