#include "storage/hierarchy.hpp"

#include <algorithm>

namespace lobster::storage {

namespace {
// Floor applied to thread shares: even a starved queue eventually gets
// serviced, so a share below this still makes progress at the minimum rate.
constexpr double kMinThreadShare = 0.05;

double share(double total, std::uint32_t readers) noexcept {
  return total / static_cast<double>(std::max<std::uint32_t>(readers, 1));
}
}  // namespace

double StorageModel::local_bps(double alpha, const Contention& contention) const noexcept {
  const double own = params_.local.aggregate_bps(std::max(alpha, kMinThreadShare));
  return std::min(own, share(params_.local.peak_bps(), contention.local_readers_node));
}

double StorageModel::ssd_bps(double alpha, const Contention& contention) const noexcept {
  const double own = params_.ssd.aggregate_bps(std::max(alpha, kMinThreadShare));
  return std::min(own, share(params_.ssd.peak_bps(), contention.ssd_readers_node));
}

double StorageModel::remote_bps(double beta, const Contention& contention) const noexcept {
  const double own = params_.remote.aggregate_bps(std::max(beta, kMinThreadShare));
  return std::min(own, share(params_.remote.peak_bps(), contention.remote_readers_node));
}

double StorageModel::pfs_bps(double gamma, const Contention& contention) const noexcept {
  const double own = params_.pfs.aggregate_bps(std::max(gamma, kMinThreadShare));
  const double node_cap = share(params_.pfs.peak_bps(), contention.pfs_readers_node);
  const double cluster_cap = share(params_.pfs_cluster_bps, contention.pfs_readers_cluster);
  return std::min({own, node_cap, cluster_cap});
}

StorageModel::LoadTimeBreakdown StorageModel::load_time_breakdown(
    const TierBytes& bytes, const ThreadAlloc& alloc, const Contention& contention) const {
  LoadTimeBreakdown breakdown;
  if (bytes.local > 0) {
    breakdown.local = static_cast<double>(bytes.local) / local_bps(alloc.alpha, contention);
  }
  if (bytes.ssd > 0) {
    breakdown.ssd =
        params_.ssd_latency + static_cast<double>(bytes.ssd) / ssd_bps(alloc.alpha, contention);
  }
  if (bytes.remote > 0) {
    breakdown.remote =
        params_.remote_latency + static_cast<double>(bytes.remote) / remote_bps(alloc.beta, contention);
  }
  if (bytes.pfs > 0) {
    breakdown.pfs =
        params_.pfs_latency + static_cast<double>(bytes.pfs) / pfs_bps(alloc.gamma, contention);
  }
  return breakdown;
}

Seconds StorageModel::load_time(const TierBytes& bytes, const ThreadAlloc& alloc,
                                const Contention& contention) const {
  return load_time_breakdown(bytes, alloc, contention).total();
}

}  // namespace lobster::storage
