// Bounded lock-free MPMC ring (Vyukov's per-cell-sequence design).
//
// This is the comm-lane primitive behind MessageBus's sharded data plane
// (DESIGN.md §8): one ring per (sender, receiver) pair, so a hot sender
// never contends with any other pair. Each lane is nominally SPSC — one
// sending rank, one receiving rank — but both ends may be driven by more
// than one OS thread (the executor's pool workers all send through rank
// 0's endpoint, and a serve thread shares it), so the cells carry full
// MPMC sequence numbers rather than relying on single-thread ends.
//
// try_push/try_pop never block and never allocate after construction.
// A full ring fails the push (the bus then falls back to its mutex
// mailbox, preserving order by flushing the lane first). empty() is an
// approximation used for the doorbell sleep protocol; its load and the
// final sequence store in try_push are seq_cst so a consumer that
// registers as a waiter and then re-checks emptiness cannot miss a
// concurrent push (Dekker-style store/load ordering against the waiter
// counter).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>

namespace lobster {

template <typename T>
class MpmcRing {
 public:
  /// `capacity` must be a power of two >= 2.
  explicit MpmcRing(std::size_t capacity)
      : capacity_mask_(capacity - 1), cells_(new Cell[capacity]) {
    if (capacity < 2 || (capacity & (capacity - 1)) != 0) {
      throw std::invalid_argument("MpmcRing: capacity must be a power of two >= 2");
    }
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  std::size_t capacity() const noexcept { return capacity_mask_ + 1; }

  /// Non-blocking; false when the ring is full.
  bool try_push(T&& value) {
    Cell* cell = nullptr;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & capacity_mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    // seq_cst (not just release): orders against a waiter-counter load in
    // the bus's doorbell protocol — see the header comment.
    cell->sequence.store(pos + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Non-blocking; false when the ring is empty.
  bool try_pop(T& out) {
    Cell* cell = nullptr;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & capacity_mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + capacity_mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Approximate: true when a try_pop issued now would fail. seq_cst load so
  /// the doorbell sleep protocol cannot miss a completed push.
  bool empty() const {
    const std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    const Cell& cell = cells_[pos & capacity_mask_];
    const std::size_t seq = cell.sequence.load(std::memory_order_seq_cst);
    return static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos + 1) < 0;
  }

 private:
  // Fixed 64: the interference-size constant trips -Winterference-size
  // under -Werror, and 64 is right for every target this builds on.
  static constexpr std::size_t kCacheLine = 64;

  struct alignas(kCacheLine) Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  const std::size_t capacity_mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLine) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(kCacheLine) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace lobster
