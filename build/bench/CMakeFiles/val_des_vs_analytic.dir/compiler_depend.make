# Empty compiler generated dependencies file for val_des_vs_analytic.
# This may be replaced when dependencies are built.
