#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lobster::log {

namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info ";
    case Level::kWarn: return "warn ";
    case Level::kError: return "error";
    case Level::kOff: return "off  ";
  }
  return "?";
}

void vlog(Level msg_level, const char* fmt, std::va_list args) {
  if (msg_level < level()) return;
  emit(msg_level, vstrf(fmt, args));
}

}  // namespace

void set_level(Level new_level) noexcept { g_level.store(new_level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void emit(Level msg_level, std::string_view message) {
  if (msg_level < level()) return;
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_tag(msg_level),
               static_cast<int>(message.size()), message.data());
}

void debug(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(Level::kDebug, fmt, args);
  va_end(args);
}

void info(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(Level::kInfo, fmt, args);
  va_end(args);
}

void warn(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(Level::kWarn, fmt, args);
  va_end(args);
}

void error(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(Level::kError, fmt, args);
  va_end(args);
}

}  // namespace lobster::log
