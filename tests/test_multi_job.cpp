// Shared-dataset multi-job training: the merged oracle and the multi-job
// simulator (the §2 generality scenario).
#include <gtest/gtest.h>

#include "data/oracle.hpp"
#include "data/sampler.hpp"
#include "pipeline/multi_job.hpp"

namespace lobster::data {
namespace {

SamplerConfig oracle_config(std::uint64_t seed) {
  SamplerConfig config;
  config.num_samples = 256;
  config.nodes = 2;
  config.gpus_per_node = 2;
  config.batch_size = 8;
  config.seed = seed;
  return config;
}

struct MergedOracleFixture : public ::testing::Test {
  MergedOracleFixture()
      : sampler_a(oracle_config(1)),
        sampler_b(oracle_config(2)),
        oracle_a(sampler_a, 2),
        oracle_b(sampler_b, 2),
        merged({&oracle_a, &oracle_b}) {}

  EpochSampler sampler_a;
  EpochSampler sampler_b;
  FutureAccessOracle oracle_a;
  FutureAccessOracle oracle_b;
  MergedAccessOracle merged;
};

TEST_F(MergedOracleFixture, RejectsEmptyAndNullMembers) {
  EXPECT_THROW(MergedAccessOracle({}), std::invalid_argument);
  EXPECT_THROW(MergedAccessOracle({&oracle_a, nullptr}), std::invalid_argument);
}

TEST_F(MergedOracleFixture, NextAccessIsEarliestAcrossJobs) {
  for (SampleId s = 0; s < 256; s += 5) {
    const auto a = oracle_a.next_access(s, 0);
    const auto b = oracle_b.next_access(s, 0);
    const auto m = merged.next_access(s, 0);
    if (!a && !b) {
      EXPECT_FALSE(m.has_value());
      continue;
    }
    ASSERT_TRUE(m.has_value());
    IterId expected = kNeverIter;
    if (a) expected = std::min(expected, a->iter);
    if (b) expected = std::min(expected, b->iter);
    EXPECT_EQ(m->iter, expected);
  }
}

TEST_F(MergedOracleFixture, RemainingUsesSumAcrossJobs) {
  for (SampleId s = 0; s < 256; s += 9) {
    for (NodeId n = 0; n < 2; ++n) {
      EXPECT_EQ(merged.remaining_uses_on_node(s, n, 0),
                oracle_a.remaining_uses_on_node(s, n, 0) +
                    oracle_b.remaining_uses_on_node(s, n, 0));
    }
  }
}

TEST_F(MergedOracleFixture, NeededByOtherNodeIsAnyJob) {
  for (SampleId s = 0; s < 256; s += 7) {
    EXPECT_EQ(merged.needed_by_other_node(s, 0, 0),
              oracle_a.needed_by_other_node(s, 0, 0) || oracle_b.needed_by_other_node(s, 0, 0));
  }
}

TEST_F(MergedOracleFixture, ReuseDistanceIsMinAcrossJobs) {
  for (SampleId s = 0; s < 256; s += 11) {
    const IterId a = oracle_a.reuse_distance_on_node(s, 1, 2);
    const IterId b = oracle_b.reuse_distance_on_node(s, 1, 2);
    EXPECT_EQ(merged.reuse_distance_on_node(s, 1, 2), std::min(a, b));
  }
}

TEST_F(MergedOracleFixture, SingleMemberIsTransparent) {
  const MergedAccessOracle solo({&oracle_a});
  for (SampleId s = 0; s < 64; ++s) {
    EXPECT_EQ(solo.reuse_distance_on_node(s, 0, 0), oracle_a.reuse_distance_on_node(s, 0, 0));
  }
}

}  // namespace
}  // namespace lobster::data

namespace lobster::pipeline {
namespace {

MultiJobConfig small_config(std::size_t job_count) {
  MultiJobConfig config;
  config.preset = preset_imagenet1k_single_node(512.0);
  config.preset.epochs = 2;
  config.strategy = baselines::LoaderStrategy::lobster();
  for (std::size_t j = 0; j < job_count; ++j) {
    config.jobs.push_back({j % 2 == 0 ? "resnet50" : "shufflenet", j});
  }
  return config;
}

TEST(MultiJob, RejectsEmptyJobList) {
  MultiJobConfig config = small_config(1);
  config.jobs.clear();
  EXPECT_THROW(simulate_multi_job(config), std::invalid_argument);
}

TEST(MultiJob, EveryJobCompletesEveryIteration) {
  const auto config = small_config(2);
  const auto result = simulate_multi_job(config);
  ASSERT_EQ(result.per_job.size(), 2U);
  for (const auto& metrics : result.per_job) {
    EXPECT_EQ(metrics.iterations(),
              static_cast<std::uint64_t>(config.preset.epochs) * result.iterations_per_epoch);
  }
  // Combined accesses: jobs * epochs * I * gpus * batch.
  const std::uint64_t expected = 2ULL * config.preset.epochs * result.iterations_per_epoch *
                                 config.preset.cluster.total_gpus() *
                                 config.preset.batch_size;
  EXPECT_EQ(result.combined_cache.hits + result.combined_cache.misses, expected);
}

TEST(MultiJob, Deterministic) {
  const auto config = small_config(2);
  const auto a = simulate_multi_job(config);
  const auto b = simulate_multi_job(config);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.combined_cache.hits, b.combined_cache.hits);
}

TEST(MultiJob, SingleJobMatchesSharedCacheExpectations) {
  // One job through the multi-job path must behave like a normal training
  // run: nonzero hits after warm-up, every access accounted.
  const auto config = small_config(1);
  const auto result = simulate_multi_job(config);
  EXPECT_GT(result.combined_cache.hit_ratio(), 0.1);
}

TEST(MultiJob, SharedCacheBeatsPrivateHalves) {
  // Two jobs sharing the full cache should see a better combined hit ratio
  // than one job confined to half the cache (the sharing benefit the
  // DIESEL/Quiver line of work reports).
  const auto shared = simulate_multi_job(small_config(2));

  auto half = small_config(1);
  half.preset.cluster.cache_bytes /= 2;
  const auto private_half = simulate_multi_job(half);
  EXPECT_GT(shared.combined_cache.hit_ratio() + 0.05, private_half.combined_cache.hit_ratio());
}

TEST(MultiJob, LobsterSharedCacheBeatsLru) {
  auto lobster_config = small_config(2);
  auto lru_config = lobster_config;
  lru_config.strategy.eviction_policy = "lru";
  lru_config.strategy.reuse_sweep = false;
  const auto lobster = simulate_multi_job(lobster_config);
  const auto lru = simulate_multi_job(lru_config);
  EXPECT_GT(lobster.combined_cache.hit_ratio(), lru.combined_cache.hit_ratio());
}

}  // namespace
}  // namespace lobster::pipeline
