#include "cache/policies.hpp"

#include "common/rng.hpp"

#include <stdexcept>
#include <string>

#include "cache/directory.hpp"
#include "data/oracle.hpp"

namespace lobster::cache {

// ---------------------------------------------------------------- LruPolicy

void LruPolicy::on_insert(SampleId sample, IterId /*now*/) { touch(sample); }

void LruPolicy::on_access(SampleId sample, IterId /*now*/) { touch(sample); }

void LruPolicy::touch(SampleId sample) {
  const auto it = where_.find(sample);
  if (it != where_.end()) order_.erase(it->second);
  order_.push_front(sample);
  where_[sample] = order_.begin();
}

void LruPolicy::on_evict(SampleId sample) {
  const auto it = where_.find(sample);
  if (it == where_.end()) return;
  order_.erase(it->second);
  where_.erase(it);
}

SampleId LruPolicy::pick_victim(const EvictionContext& context) {
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    if (!context.can_evict || context.can_evict(*it)) return *it;
  }
  return kInvalidSample;
}

// --------------------------------------------------------------- FifoPolicy

void FifoPolicy::on_insert(SampleId sample, IterId /*now*/) {
  order_.push_back(sample);
  where_[sample] = std::prev(order_.end());
}

void FifoPolicy::on_evict(SampleId sample) {
  const auto it = where_.find(sample);
  if (it == where_.end()) return;
  order_.erase(it->second);
  where_.erase(it);
}

SampleId FifoPolicy::pick_victim(const EvictionContext& context) {
  for (const SampleId sample : order_) {
    if (!context.can_evict || context.can_evict(sample)) return sample;
  }
  return kInvalidSample;
}

// ------------------------------------------------------- LobsterReusePolicy

void LobsterReusePolicy::bind(const data::AccessOracle* oracle, NodeId node) {
  oracle_ = oracle;
  node_ = node;
}

IterId LobsterReusePolicy::next_use_key(SampleId sample, IterId now) const {
  if (oracle_ == nullptr) return kNeverIter;
  const auto next = oracle_->next_access_on_node(sample, node_, now);
  return next ? next->iter : kNeverIter;
}

void LobsterReusePolicy::rekey(SampleId sample, IterId key) {
  erase_key(sample);
  buckets_[key].insert(sample);
  key_of_[sample] = key;
}

void LobsterReusePolicy::erase_key(SampleId sample) {
  const auto it = key_of_.find(sample);
  if (it == key_of_.end()) return;
  const auto bucket = buckets_.find(it->second);
  if (bucket != buckets_.end()) {
    bucket->second.erase(sample);
    if (bucket->second.empty()) buckets_.erase(bucket);
  }
  key_of_.erase(it);
}

void LobsterReusePolicy::on_insert(SampleId sample, IterId now) {
  rekey(sample, next_use_key(sample, now));
}

void LobsterReusePolicy::on_access(SampleId sample, IterId now) {
  // The access we keyed on just happened; rekey to the following one.
  rekey(sample, next_use_key(sample, now));
}

void LobsterReusePolicy::on_evict(SampleId sample) { erase_key(sample); }

void LobsterReusePolicy::on_epoch(const EvictionContext& context) {
  // The oracle window slid: previously "never in window" samples may now
  // have a known next use, and vice versa. Rebuild every key.
  if (oracle_ == nullptr && context.oracle != nullptr) {
    oracle_ = context.oracle;
    node_ = context.node;
  }
  std::vector<SampleId> samples;
  samples.reserve(key_of_.size());
  for (const auto& [sample, key] : key_of_) samples.push_back(sample);
  for (const SampleId sample : samples) rekey(sample, next_use_key(sample, context.now));
}

SampleId LobsterReusePolicy::pick_victim(const EvictionContext& context) {
  if (oracle_ == nullptr && context.oracle != nullptr) {
    oracle_ = context.oracle;
    node_ = context.node;
  }
  // Walk buckets furthest-next-use first (kNeverIter bucket, if present, is
  // last in the map, i.e. scanned first). Within a bucket, the smallest
  // sample id — fully deterministic.
  //
  // The reuse-count guard ("never evict the group's last copy of a sample
  // some *other* node still needs" §4.4) is applied as a bounded preference:
  // when the cache is small relative to the dataset, nearly every resident
  // can be a guarded sole copy, and a hard refusal would deadlock the cache
  // (something must be evicted for training to proceed). We skip guarded
  // candidates for the first kGuardScanLimit examinations, then fall back to
  // the best unguarded ordering.
  constexpr std::size_t kGuardScanLimit = 64;
  const bool guard_available =
      options_.sole_copy_guard && context.directory != nullptr && oracle_ != nullptr;

  for (const bool honor_guard : {true, false}) {
    if (honor_guard && !guard_available) continue;
    std::size_t examined = 0;
    for (auto bucket = buckets_.rbegin(); bucket != buckets_.rend(); ++bucket) {
      for (const SampleId sample : bucket->second) {
        if (context.can_evict && !context.can_evict(sample)) continue;
        if (honor_guard) {
          if (++examined > kGuardScanLimit) break;
          if (context.directory->sole_holder(sample, context.node) &&
              oracle_->needed_by_other_node(sample, context.node, context.now)) {
            continue;
          }
        }
        // Coordination with prefetching: do not sacrifice a resident needed
        // sooner than the incoming sample.
        if (options_.coordinate_with_incoming && bucket->first != kNeverIter &&
            context.incoming_reuse_distance != kNeverIter) {
          const IterId resident_distance = bucket->first - context.now;
          if (resident_distance <= context.incoming_reuse_distance) return kInvalidSample;
        }
        return sample;
      }
      if (honor_guard && examined > kGuardScanLimit) break;
    }
  }
  return kInvalidSample;
}

// ------------------------------------------------------------- RandomPolicy

RandomPolicy::RandomPolicy(std::uint64_t seed) : rng_state_(seed) {}

void RandomPolicy::on_insert(SampleId sample, IterId /*now*/) {
  index_of_[sample] = residents_.size();
  residents_.push_back(sample);
}

void RandomPolicy::on_evict(SampleId sample) {
  const auto it = index_of_.find(sample);
  if (it == index_of_.end()) return;
  const std::size_t pos = it->second;
  const SampleId last = residents_.back();
  residents_[pos] = last;
  index_of_[last] = pos;
  residents_.pop_back();
  index_of_.erase(it);
}

SampleId RandomPolicy::pick_victim(const EvictionContext& context) {
  if (residents_.empty()) return kInvalidSample;
  // Bounded number of random probes before giving up on pinned residents.
  for (int probe = 0; probe < 64; ++probe) {
    const std::uint64_t draw = splitmix64(rng_state_);
    const SampleId candidate = residents_[draw % residents_.size()];
    if (!context.can_evict || context.can_evict(candidate)) return candidate;
  }
  // Fall back to a linear scan (everything random hit was pinned).
  for (const SampleId candidate : residents_) {
    if (!context.can_evict || context.can_evict(candidate)) return candidate;
  }
  return kInvalidSample;
}

// ---------------------------------------------------------------- factories

std::unique_ptr<EvictionPolicy> make_policy(const std::string& name) {
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "random") return std::make_unique<RandomPolicy>();
  if (name == "lobster") return std::make_unique<LobsterReusePolicy>();
  if (name == "lobster-nocoord") {
    // Ablation: Lobster's ordering and guard, but no prefetch coordination.
    ReusePolicyOptions options;
    options.coordinate_with_incoming = false;
    return std::make_unique<LobsterReusePolicy>(options);
  }
  if (name == "belady") {
    // Clairvoyant furthest-next-use without Lobster's cooperative rules: the
    // single-node optimality bound.
    ReusePolicyOptions options;
    options.sole_copy_guard = false;
    options.coordinate_with_incoming = false;
    return std::make_unique<LobsterReusePolicy>(options);
  }
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

}  // namespace lobster::cache
