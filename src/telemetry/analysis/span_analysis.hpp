// Cross-node span stitching and degraded-fetch attribution (DESIGN.md §11).
//
// Input: `lobster.spans.v1` JSONL (or in-memory SpanRecords). Output: one
// TraceSummary per trace_id — well-formedness (exactly one root, every
// parent resolves inside the trace), cross-rank reach, degradation
// classification, and a per-trace attribution of where the wasted time
// went: timed-out attempts + retry backoff ("timeout"), post-detour
// attempts on substitute holders ("detour"), and PFS re-materialization
// ("pfs"). Degraded roots are grouped by iteration (root arg2) and their
// wasted intervals are merged as a UNION per iteration — concurrent worker
// timeouts overlap in wall time, so summing durations would overcount the
// slowdown actually visible at the barrier.
//
// Ids stay exact: the JSON parser holds numbers as doubles, so spans are
// keyed by their hex-string ids end to end.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "telemetry/analysis/report.hpp"
#include "telemetry/trace_context.hpp"

namespace lobster::telemetry::analysis {

/// One span as loaded from JSONL — ids as exact hex strings.
struct LoadedSpan {
  std::string trace;
  std::string span;
  std::string parent;  ///< "0" for roots
  std::string kind;
  std::string status;
  std::uint16_t rank = 0;
  std::uint64_t begin_us = 0;
  std::uint64_t end_us = 0;
  std::uint64_t arg = 0;
  std::uint64_t arg2 = 0;

  double duration_us() const noexcept {
    return end_us >= begin_us ? static_cast<double>(end_us - begin_us) : 0.0;
  }
};

/// Parses `lobster.spans.v1` JSONL text. Throws std::runtime_error on a
/// malformed line or schema mismatch (line number in the message).
std::vector<LoadedSpan> load_spans(const std::string& jsonl_text);
std::vector<LoadedSpan> load_spans_file(const std::string& path);
/// Converts in-memory records (same hex-string id encoding as the JSONL).
std::vector<LoadedSpan> spans_from_records(const std::vector<SpanRecord>& records);

/// Per-trace verdict and attribution.
struct TraceSummary {
  std::string trace_id;
  std::string root_kind;     ///< "" when the trace has no root (malformed)
  std::uint16_t root_rank = 0;
  std::uint64_t sample = 0;  ///< root arg
  std::uint64_t iter = 0;    ///< root arg2
  std::size_t spans = 0;
  std::size_t ranks = 0;     ///< distinct ranks touched
  bool well_formed = false;  ///< one root, all parents resolve in-trace
  bool degraded = false;     ///< any failed attempt / detour / fallback / fast-fail
  double duration_us = 0.0;  ///< root span duration
  double timeout_us = 0.0;   ///< failed attempts + backoff sleeps
  double detour_us = 0.0;    ///< attempts issued after the first detour
  double pfs_us = 0.0;       ///< PFS fallback spans
  std::uint64_t attempts = 0;
  std::uint64_t detours = 0;
  std::uint64_t fast_fails = 0;
};

struct SpanAnalysis {
  std::vector<TraceSummary> traces;  ///< all traces, oldest root first
  std::size_t total_spans = 0;
  std::size_t fetch_traces = 0;      ///< traces rooted in a "fetch" span
  std::size_t degraded_fetches = 0;
  std::size_t cross_rank_fetches = 0;
  std::size_t malformed_traces = 0;
  /// Attribution totals over degraded fetch traces (sums of per-trace
  /// buckets — overlap-blind; use iteration_overhead_us for wall impact).
  double timeout_us = 0.0;
  double detour_us = 0.0;
  double pfs_us = 0.0;
  /// iter -> union of degraded-fetch wasted intervals in that iteration.
  std::map<std::uint64_t, double> iteration_overhead_us;
  double union_overhead_us = 0.0;  ///< sum over iteration_overhead_us
};

SpanAnalysis analyze_spans(const std::vector<LoadedSpan>& spans);

/// Fetch-latency distribution: all / healthy / degraded rows with count,
/// mean, p50, p95, max (milliseconds).
Table fetch_latency_table(const SpanAnalysis& analysis);

/// Degraded-slowdown attribution: per-bucket totals plus the union-interval
/// per-iteration overhead they explain.
Table span_attribution_table(const SpanAnalysis& analysis);

/// Top-N slowest fetch traces with their critical-path chain.
Table slowest_traces_table(const SpanAnalysis& analysis,
                           const std::vector<LoadedSpan>& spans, std::size_t top_n);

}  // namespace lobster::telemetry::analysis
