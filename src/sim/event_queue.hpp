// Priority event queue for the discrete-event engine.
//
// Events are ordered by (time, sequence) so same-time events fire in
// scheduling order — this keeps every simulation fully deterministic.
// Cancellation is lazy: cancelled ids are skipped at pop time.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace lobster::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`; returns a handle for cancel().
  EventId schedule(Seconds at, EventFn fn);

  /// Cancels a pending event. Returns false if it already fired / was
  /// cancelled / never existed.
  bool cancel(EventId id);

  /// True when no live events remain.
  bool empty() const noexcept { return pending_.empty(); }

  /// Time of the earliest live event; nullopt when empty.
  std::optional<Seconds> next_time();

  /// Pops and returns the earliest live event. Precondition: !empty().
  struct Fired {
    Seconds time = 0.0;
    EventId id = kInvalidEvent;
    EventFn fn;
  };
  Fired pop();

  std::size_t live_count() const noexcept { return pending_.size(); }

 private:
  struct Entry {
    Seconds time;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  /// Drops cancelled entries from the heap top.
  void skip_dead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;    // scheduled, not fired, not cancelled
  std::unordered_set<EventId> cancelled_;  // tombstones still in the heap
  EventId next_id_ = 1;
};

}  // namespace lobster::sim
