// Fig. 10 — GPU utilisation across the six benchmark DNNs on one node
// (ImageNet-1K). Paper averages: Lobster 76.1% vs 52.3% (PyTorch),
// 57.5% (DALI), 72.4% (NoPFS).
#include <cstdio>

#include "baselines/strategies.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "pipeline/simulator.hpp"
#include "pipeline/trainer_model.hpp"

using namespace lobster;
using baselines::LoaderStrategy;

int main(int argc, char** argv) {
  const auto config = bench::parse_args(argc, argv);
  const bench::TraceSession trace_session(config);
  const double scale = config.get_double("scale", 256.0);
  const auto epochs = static_cast<std::uint32_t>(config.get_int("epochs", 4));
  bench::warn_unconsumed(config);

  bench::print_header("Fig. 10: GPU utilisation per DNN (1 node, ImageNet-1K)",
                      "averages: PyTorch 52.3%, DALI 57.5%, NoPFS 72.4%, Lobster 76.1%");

  const char* strategies[] = {"pytorch", "dali", "nopfs", "lobster"};
  Table table({"model", "pytorch", "dali", "nopfs", "lobster"});
  double sums[4] = {0, 0, 0, 0};
  const auto& models = pipeline::TrainerModel::benchmark_names();
  for (const auto& model : models) {
    auto preset = pipeline::preset_imagenet1k_single_node(scale, model);
    preset.epochs = epochs;
    std::vector<std::string> row = {model};
    for (int i = 0; i < 4; ++i) {
      const auto result = pipeline::simulate(preset, LoaderStrategy::by_name(strategies[i]));
      const double util = result.metrics.gpu_utilization();
      sums[i] += util;
      row.push_back(Table::num(util * 100.0, 1));
    }
    table.add_row(row);
  }
  bench::emit(config, "fig10", table);
  std::printf("averages: pytorch %.1f%%, dali %.1f%%, nopfs %.1f%%, lobster %.1f%%\n",
              100.0 * sums[0] / models.size(), 100.0 * sums[1] / models.size(),
              100.0 * sums[2] / models.size(), 100.0 * sums[3] / models.size());
  std::printf("[paper: 52.3%%, 57.5%%, 72.4%%, 76.1%%]\n");
  return 0;
}
