// MPI-like message bus: tagged delivery order, collectives, shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "comm/bus.hpp"
#include "comm/fault.hpp"

namespace lobster::comm {
namespace {

TEST(MessageBus, RejectsZeroWorld) {
  EXPECT_THROW(MessageBus(0), std::invalid_argument);
}

TEST(MessageBus, EndpointRangeChecked) {
  MessageBus bus(2);
  EXPECT_THROW(bus.endpoint(2), std::out_of_range);
  EXPECT_EQ(bus.endpoint(1).rank(), 1);
  EXPECT_EQ(bus.endpoint(0).world_size(), 2);
}

TEST(MessageBus, SendRecvValueRoundTrip) {
  MessageBus bus(2);
  bus.endpoint(0).send_value<int>(1, /*tag=*/7, 42);
  const auto message = bus.endpoint(1).recv(7);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->source, 0);
  EXPECT_EQ(message->tag, 7U);
  EXPECT_EQ(Endpoint::value_of<int>(*message), 42);
}

TEST(MessageBus, SameTagFifoOrder) {
  MessageBus bus(2);
  for (int i = 0; i < 10; ++i) bus.endpoint(0).send_value<int>(1, 1, i);
  for (int i = 0; i < 10; ++i) {
    const auto message = bus.endpoint(1).recv(1);
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(Endpoint::value_of<int>(*message), i);
  }
}

TEST(MessageBus, TagFilteringSkipsNonMatching) {
  MessageBus bus(2);
  bus.endpoint(0).send_value<int>(1, /*tag=*/5, 55);
  bus.endpoint(0).send_value<int>(1, /*tag=*/9, 99);
  const auto nine = bus.endpoint(1).recv(9);
  ASSERT_TRUE(nine.has_value());
  EXPECT_EQ(Endpoint::value_of<int>(*nine), 99);
  const auto five = bus.endpoint(1).recv(5);
  ASSERT_TRUE(five.has_value());
  EXPECT_EQ(Endpoint::value_of<int>(*five), 55);
}

TEST(MessageBus, AnyTagMatchesEverything) {
  MessageBus bus(2);
  bus.endpoint(0).send_value<int>(1, 123, 1);
  const auto message = bus.endpoint(1).recv(kAnyTag);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->tag, 123U);
}

TEST(MessageBus, TryRecvNonBlocking) {
  MessageBus bus(2);
  EXPECT_FALSE(bus.endpoint(1).try_recv().has_value());
  bus.endpoint(0).send_value<int>(1, 1, 5);
  EXPECT_TRUE(bus.endpoint(1).try_recv(1).has_value());
}

TEST(MessageBus, SelfSendWorks) {
  MessageBus bus(1);
  bus.endpoint(0).send_value<int>(0, 3, 33);
  const auto message = bus.endpoint(0).recv(3);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(Endpoint::value_of<int>(*message), 33);
}

TEST(MessageBus, BlockingRecvWakesOnSend) {
  MessageBus bus(2);
  std::atomic<int> got{0};
  std::thread receiver([&] {
    const auto message = bus.endpoint(1).recv(1);
    if (message) got.store(Endpoint::value_of<int>(*message));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  bus.endpoint(0).send_value<int>(1, 1, 77);
  receiver.join();
  EXPECT_EQ(got.load(), 77);
}

TEST(MessageBus, ShutdownUnblocksReceivers) {
  MessageBus bus(2);
  std::atomic<bool> unblocked{false};
  std::thread receiver([&] {
    const auto message = bus.endpoint(1).recv(1);
    unblocked.store(!message.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  bus.shutdown();
  receiver.join();
  EXPECT_TRUE(unblocked.load());
  const Status rejected = bus.endpoint(0).send(1, 1, std::vector<std::byte>{});
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kShutdown);
}

TEST(MessageBus, BarrierSynchronizesAllRanks) {
  constexpr std::uint16_t kWorld = 4;
  MessageBus bus(kWorld);
  std::atomic<int> before_barrier{0};
  std::atomic<int> after_barrier{0};
  std::atomic<bool> order_violated{false};
  std::vector<std::thread> ranks;
  for (std::uint16_t r = 0; r < kWorld; ++r) {
    ranks.emplace_back([&, r] {
      before_barrier.fetch_add(1);
      bus.endpoint(r).barrier();
      if (before_barrier.load() != kWorld) order_violated.store(true);
      after_barrier.fetch_add(1);
    });
  }
  for (auto& t : ranks) t.join();
  EXPECT_FALSE(order_violated.load());
  EXPECT_EQ(after_barrier.load(), kWorld);
}

TEST(MessageBus, RepeatedBarriers) {
  constexpr std::uint16_t kWorld = 3;
  MessageBus bus(kWorld);
  std::vector<std::thread> ranks;
  std::atomic<int> rounds_done{0};
  for (std::uint16_t r = 0; r < kWorld; ++r) {
    ranks.emplace_back([&, r] {
      for (int round = 0; round < 20; ++round) bus.endpoint(r).barrier();
      rounds_done.fetch_add(1);
    });
  }
  for (auto& t : ranks) t.join();
  EXPECT_EQ(rounds_done.load(), kWorld);
}

TEST(MessageBus, AllReduceSumsAcrossRanks) {
  constexpr std::uint16_t kWorld = 4;
  MessageBus bus(kWorld);
  std::vector<std::vector<double>> results(kWorld);
  std::vector<std::thread> ranks;
  for (std::uint16_t r = 0; r < kWorld; ++r) {
    ranks.emplace_back([&, r] {
      results[r] = bus.endpoint(r).allreduce_sum({static_cast<double>(r), 1.0});
    });
  }
  for (auto& t : ranks) t.join();
  for (std::uint16_t r = 0; r < kWorld; ++r) {
    ASSERT_EQ(results[r].size(), 2U);
    EXPECT_DOUBLE_EQ(results[r][0], 0.0 + 1.0 + 2.0 + 3.0);
    EXPECT_DOUBLE_EQ(results[r][1], 4.0);
  }
}

TEST(MessageBus, RepeatedAllReduces) {
  constexpr std::uint16_t kWorld = 2;
  MessageBus bus(kWorld);
  std::vector<std::thread> ranks;
  std::atomic<bool> mismatch{false};
  for (std::uint16_t r = 0; r < kWorld; ++r) {
    ranks.emplace_back([&, r] {
      for (int round = 1; round <= 50; ++round) {
        const auto result = bus.endpoint(r).allreduce_sum({static_cast<double>(round)});
        if (result.size() != 1 || result[0] != 2.0 * round) mismatch.store(true);
      }
    });
  }
  for (auto& t : ranks) t.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(MessageBus, FastPathSendsSkipTheSlowPathCounter) {
  // No fault plan attached and no lane overflow: every send rides its
  // (sender, receiver) lane and the mutex mailbox is never touched.
  MessageBus bus(2);
  for (int i = 0; i < 32; ++i) {
    bus.endpoint(0).send_value<int>(1, 7, i);
    const auto message = bus.endpoint(1).recv(7);
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(Endpoint::value_of<int>(*message), i);
  }
  EXPECT_EQ(bus.slow_path_sends(), 0U);
}

TEST(MessageBus, FaultPlanForcesEverySendThroughTheSlowPath) {
  // A fault plan (even a benign one) is the control plane: all sends must
  // route through the mutex mailbox so drop/corrupt/delay verdicts and
  // kill/revive state see every message.
  MessageBus bus(2);
  FaultPlan plan(2);
  bus.set_fault_plan(&plan);
  for (int i = 0; i < 8; ++i) bus.endpoint(0).send_value<int>(1, 7, i);
  for (int i = 0; i < 8; ++i) {
    const auto message = bus.endpoint(1).recv(7);
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(Endpoint::value_of<int>(*message), i);
  }
  EXPECT_EQ(bus.slow_path_sends(), 8U);
  // Detaching the plan restores the lane fast path.
  bus.set_fault_plan(nullptr);
  bus.endpoint(0).send_value<int>(1, 7, 99);
  const auto fast = bus.endpoint(1).recv(7);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(Endpoint::value_of<int>(*fast), 99);
  EXPECT_EQ(bus.slow_path_sends(), 8U);
}

TEST(MessageBus, LaneOverflowSpillsToMailboxPreservingFifo) {
  // Push more unreceived messages than one lane holds: the overflow takes
  // the slow path, and the receiver must still see a strict FIFO sequence
  // across the lane -> mailbox boundary.
  MessageBus bus(2);
  constexpr int kMessages = 1000;  // well past kLaneCapacity
  for (int i = 0; i < kMessages; ++i) bus.endpoint(0).send_value<int>(1, 7, i);
  EXPECT_GT(bus.slow_path_sends(), 0U);
  for (int i = 0; i < kMessages; ++i) {
    const auto message = bus.endpoint(1).recv(7);
    ASSERT_TRUE(message.has_value());
    ASSERT_EQ(Endpoint::value_of<int>(*message), i);
  }
  EXPECT_FALSE(bus.endpoint(1).try_recv(kAnyTag).has_value());
}

TEST(MessageBus, ZeroCopyPayloadSharesOneBuffer) {
  // A PayloadPtr send must deliver the *same* buffer, not a copy.
  MessageBus bus(2);
  auto payload = make_payload(std::vector<std::byte>(128, std::byte{0x5A}));
  const std::byte* data = payload->data();
  ASSERT_TRUE(bus.endpoint(0).send(1, 3, payload).ok());
  const auto received = bus.endpoint(1).recv(3);
  ASSERT_TRUE(received.has_value());
  ASSERT_TRUE(received->payload != nullptr);
  EXPECT_EQ(received->payload->data(), data);
  EXPECT_EQ(received->bytes().size(), 128U);
}

TEST(MessageBus, ManySendersOneReceiverOverLanesDeliverAll) {
  // Every sender rank hammers rank 0 through its own lane; the receiver's
  // drain must merge the lanes without losing or duplicating a message.
  constexpr std::uint16_t kWorld = 4;
  constexpr int kPerSender = 500;
  MessageBus bus(kWorld);
  std::vector<std::thread> senders;
  for (std::uint16_t r = 1; r < kWorld; ++r) {
    senders.emplace_back([&bus, r] {
      for (int i = 0; i < kPerSender; ++i) {
        bus.endpoint(r).send_value<int>(0, 7, static_cast<int>(r) * kPerSender + i);
      }
    });
  }
  std::vector<int> next(kWorld, 0);  // per-sender FIFO check
  long long sum = 0;
  for (int n = 0; n < kPerSender * (kWorld - 1); ++n) {
    const auto message = bus.endpoint(0).recv(7);
    ASSERT_TRUE(message.has_value());
    const int value = Endpoint::value_of<int>(*message);
    const auto from = message->source;
    ASSERT_EQ(value, static_cast<int>(from) * kPerSender + next[from]);
    ++next[from];
    sum += value;
  }
  for (auto& t : senders) t.join();
  long long expected = 0;
  for (std::uint16_t r = 1; r < kWorld; ++r) {
    for (int i = 0; i < kPerSender; ++i) expected += static_cast<int>(r) * kPerSender + i;
  }
  EXPECT_EQ(sum, expected);
  EXPECT_FALSE(bus.endpoint(0).try_recv(kAnyTag).has_value());
}

}  // namespace
}  // namespace lobster::comm
