// Table rendering / CSV escaping and key=value config parsing.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace lobster {
namespace {

TEST(Table, RejectsEmptyColumnsAndBadRows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, TextRenderingAlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string text = table.render_text();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table table({"a", "b"});
  table.add_row({"plain", "with,comma"});
  table.add_row({"quote\"inside", "line\nbreak"});
  const std::string csv = table.render_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Units, ByteFormatting) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024ULL), "3.00 MiB");
  EXPECT_EQ(format_bytes(5ULL << 30), "5.00 GiB");
}

TEST(Units, TimeFormatting) {
  EXPECT_EQ(format_seconds(2.5), "2.50 s");
  EXPECT_EQ(format_seconds(0.0035), "3.50 ms");
  EXPECT_EQ(format_seconds(42e-6), "42.00 us");
}

TEST(Units, Literals) {
  EXPECT_EQ(4_KiB, 4096ULL);
  EXPECT_EQ(1_MiB, 1048576ULL);
  EXPECT_EQ(2_GiB, 2147483648ULL);
}

TEST(Config, ParsesArgvStyleTokens) {
  const char* argv[] = {"prog", "--nodes=8", "scale=64", "--strategy=lobster"};
  const auto config = Config::from_args(4, argv);
  EXPECT_EQ(config.get_int("nodes", 0), 8);
  EXPECT_EQ(config.get_int("scale", 0), 64);
  EXPECT_EQ(config.get_string("strategy", ""), "lobster");
}

TEST(Config, FallbacksWhenAbsent) {
  const Config config;
  EXPECT_EQ(config.get_int("missing", 7), 7);
  EXPECT_EQ(config.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(config.get_string("missing", "x"), "x");
  EXPECT_TRUE(config.get_bool("missing", true));
}

TEST(Config, BooleanSpellings) {
  auto config = Config::from_tokens({"a=true", "b=0", "c=YES", "d=off"});
  EXPECT_TRUE(config.get_bool("a", false));
  EXPECT_FALSE(config.get_bool("b", true));
  EXPECT_TRUE(config.get_bool("c", false));
  EXPECT_FALSE(config.get_bool("d", true));
}

TEST(Config, BadBooleanThrows) {
  auto config = Config::from_tokens({"a=maybe"});
  EXPECT_THROW(config.get_bool("a", false), std::invalid_argument);
}

TEST(Config, MissingEqualsThrows) {
  EXPECT_THROW(Config::from_tokens({"--flag"}), std::invalid_argument);
}

TEST(Config, TracksUnconsumedKeys) {
  auto config = Config::from_tokens({"used=1", "typo_key=2"});
  (void)config.get_int("used", 0);
  const auto leftover = config.unconsumed();
  ASSERT_EQ(leftover.size(), 1U);
  EXPECT_EQ(leftover[0], "typo_key");
}

TEST(Config, DoubleParsing) {
  auto config = Config::from_tokens({"x=2.5e-3"});
  EXPECT_DOUBLE_EQ(config.get_double("x", 0.0), 2.5e-3);
}

}  // namespace
}  // namespace lobster
