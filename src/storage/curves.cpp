#include "storage/curves.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lobster::storage {

ThroughputCurve::ThroughputCurve(std::string name, double single_stream_bps, double peak_bps,
                                 double decline_per_thread, double floor_fraction)
    : name_(std::move(name)),
      single_bps_(single_stream_bps),
      peak_bps_(peak_bps),
      decline_per_thread_(decline_per_thread),
      floor_fraction_(floor_fraction) {
  if (single_stream_bps <= 0.0 || peak_bps < single_stream_bps) {
    throw std::invalid_argument("ThroughputCurve: need 0 < single_stream <= peak");
  }
  if (decline_per_thread < 0.0 || floor_fraction <= 0.0 || floor_fraction > 1.0) {
    throw std::invalid_argument("ThroughputCurve: bad decline/floor");
  }
  knee_ = static_cast<std::uint32_t>(std::ceil(peak_bps_ / single_bps_));
}

double ThroughputCurve::aggregate_bps(double threads) const noexcept {
  if (threads <= 0.0) return 0.0;
  const double ramp = threads * single_bps_;
  if (ramp <= peak_bps_) return ramp;
  // Past the knee: plateau with optional decline, floored.
  const double over = threads - static_cast<double>(knee_);
  const double declined = peak_bps_ * (1.0 - decline_per_thread_ * std::max(over, 0.0));
  return std::max(declined, peak_bps_ * floor_fraction_);
}

double ThroughputCurve::per_thread_bps(double threads) const noexcept {
  if (threads <= 0.0) return 0.0;
  return aggregate_bps(threads) / threads;
}

ThroughputCurve ThroughputCurve::local_memory() {
  // DDR4 node-local cache: ~2.2 GB/s per reader thread (copy + touch),
  // saturating around 13 GB/s; mild decline under oversubscription.
  return ThroughputCurve("local_memory", 2.2e9, 13.2e9, 0.01, 0.7);
}

ThroughputCurve ThroughputCurve::remote_cache() {
  // Peer node cache over the fabric: ~1.1 GB/s per stream, one node's
  // effective share ~2.8 GB/s (protocol + copy overheads), flat plateau.
  return ThroughputCurve("remote_cache", 1.1e9, 2.8e9, 0.0, 1.0);
}

ThroughputCurve ThroughputCurve::local_ssd() {
  // NVMe staging: ~1.1 GB/s per reader, ~3.6 GB/s node aggregate, modest
  // decline under deep queues.
  return ThroughputCurve("local_ssd", 1.1e9, 3.6e9, 0.01, 0.7);
}

ThroughputCurve ThroughputCurve::pfs() {
  // Lustre small random reads: ~350 MB/s per read stream (client-side
  // readahead); a single node saturates ~0.9 GB/s and declines as
  // server-side contention grows.
  return ThroughputCurve("pfs", 0.35e9, 1.25e9, 0.02, 0.5);
}

}  // namespace lobster::storage
