// Mutex-striped hash set for hot-path membership tracking.
//
// The online executor probes and mutates its resident-sample set from every
// loading thread on every request; a single mutex there serializes the whole
// drain (§4.2's scarce loading threads burned on lock handoffs). This set
// stripes the key space over independently-locked shards — the same scheme
// as cache::KvStore — so concurrent probes of different samples never
// contend. Operations on a single key are linearizable; cross-shard
// aggregates (size, snapshot) are only weakly consistent under concurrent
// writers, which is all the executor's diagnostics need.
#pragma once

#include <bit>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"

namespace lobster {

template <typename Key>
class StripedSet {
 public:
  /// `stripes` must be a power of two (mask-based shard selection).
  explicit StripedSet(std::size_t stripes = 16) : shards_(stripes), mask_(stripes - 1) {
    if (stripes == 0 || !std::has_single_bit(stripes)) {
      throw std::invalid_argument("StripedSet: stripe count must be a power of two");
    }
  }

  StripedSet(const StripedSet&) = delete;
  StripedSet& operator=(const StripedSet&) = delete;

  /// Returns true if the key was newly inserted.
  bool insert(Key key) {
    Shard& shard = shard_for(key);
    const std::scoped_lock lock(shard.mutex);
    return shard.keys.insert(key).second;
  }

  bool contains(Key key) const {
    const Shard& shard = shard_for(key);
    const std::scoped_lock lock(shard.mutex);
    return shard.keys.contains(key);
  }

  /// Returns true if the key was present.
  bool erase(Key key) {
    Shard& shard = shard_for(key);
    const std::scoped_lock lock(shard.mutex);
    return shard.keys.erase(key) > 0;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      const std::scoped_lock lock(shard.mutex);
      total += shard.keys.size();
    }
    return total;
  }

  void clear() {
    for (auto& shard : shards_) {
      const std::scoped_lock lock(shard.mutex);
      shard.keys.clear();
    }
  }

  /// Union of all shards (shards are locked one at a time).
  std::unordered_set<Key> snapshot() const {
    std::unordered_set<Key> out;
    for (const auto& shard : shards_) {
      const std::scoped_lock lock(shard.mutex);
      out.insert(shard.keys.begin(), shard.keys.end());
    }
    return out;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_set<Key> keys;
  };

  Shard& shard_for(Key key) { return shards_[index_of(key)]; }
  const Shard& shard_for(Key key) const { return shards_[index_of(key)]; }

  std::size_t index_of(Key key) const {
    // Mix so sequential ids spread across stripes (same as KvStore).
    std::uint64_t state = static_cast<std::uint64_t>(key);
    return static_cast<std::size_t>(splitmix64(state)) & mask_;
  }

  std::vector<Shard> shards_;
  std::size_t mask_;
};

}  // namespace lobster
