// Core identifier and quantity types shared by every Lobster module.
//
// Conventions (used consistently across src/):
//  - Time is virtual simulation time in seconds, carried as `Seconds` (double).
//  - Data volumes are bytes, carried as `Bytes` (std::uint64_t).
//  - Identifiers are strong-ish aliases: plain integer types with distinct
//    names; the simulator is the only place that mints them.
#pragma once

#include <cstdint>
#include <limits>

namespace lobster {

/// Index of a training sample within a dataset catalog, [0, |D|).
using SampleId = std::uint32_t;

/// Compute-node rank within the cluster, [0, N).
using NodeId = std::uint16_t;

/// GPU index within one node, [0, M).
using GpuId = std::uint16_t;

/// Global iteration counter across the whole training run (epoch * I + h).
using IterId = std::uint64_t;

/// Data volume in bytes.
using Bytes = std::uint64_t;

/// Virtual time in seconds.
using Seconds = double;

/// Sentinel for "no such iteration" (e.g. a sample never reused again).
inline constexpr IterId kNeverIter = std::numeric_limits<IterId>::max();

/// Sentinel sample id.
inline constexpr SampleId kInvalidSample = std::numeric_limits<SampleId>::max();

/// Identifies one GPU globally: node rank plus local GPU index.
struct GpuRef {
  NodeId node = 0;
  GpuId gpu = 0;

  friend constexpr bool operator==(GpuRef a, GpuRef b) noexcept {
    return a.node == b.node && a.gpu == b.gpu;
  }
  friend constexpr auto operator<=>(GpuRef a, GpuRef b) noexcept = default;
};

/// Flattens a GpuRef to a dense rank in [0, N*M) given M GPUs per node.
constexpr std::uint32_t flat_gpu_rank(GpuRef g, std::uint32_t gpus_per_node) noexcept {
  return static_cast<std::uint32_t>(g.node) * gpus_per_node + g.gpu;
}

}  // namespace lobster
