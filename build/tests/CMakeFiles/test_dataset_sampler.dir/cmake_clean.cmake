file(REMOVE_RECURSE
  "CMakeFiles/test_dataset_sampler.dir/test_dataset_sampler.cpp.o"
  "CMakeFiles/test_dataset_sampler.dir/test_dataset_sampler.cpp.o.d"
  "test_dataset_sampler"
  "test_dataset_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataset_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
