// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "common/strfmt.hpp"
#include "common/table.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace lobster::bench {

/// Parses key=value CLI arguments. Every bench accepts `csv_dir=<path>` to
/// additionally dump each printed table as CSV, and `--trace <out.json>`
/// (or `trace=out.json`) to record a Chrome trace of the run (see
/// TraceSession).
inline Config parse_args(int argc, char** argv) {
  // `--trace out.json` is the one space-separated flag benches accept; fold
  // it into key=value form before the strict '='-only parser sees it.
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--trace" && i + 1 < argc &&
        std::string_view(argv[i + 1]).find('=') == std::string_view::npos) {
      tokens.push_back(std::string("trace=") + argv[++i]);
      continue;
    }
    tokens.emplace_back(arg);
  }
  return Config::from_tokens(tokens);
}

/// Turns tracing on for the bench's lifetime when `--trace <out.json>` was
/// given; on destruction exports the Chrome trace plus a
/// `<out.json>.counters.csv` metric dump. `trace_buffer=<records>`
/// optionally sizes the per-thread ring buffers (default 1<<14).
class TraceSession {
 public:
  explicit TraceSession(const Config& config) : path_(config.get_string("trace", "")) {
    const auto capacity = config.get_int("trace_buffer", 0);
    if (path_.empty()) return;
    auto& tracer = telemetry::Tracer::instance();
    if (capacity > 0) tracer.set_buffer_capacity(static_cast<std::size_t>(capacity));
    tracer.set_enabled(true);
#if defined(LOBSTER_TELEMETRY_DISABLED)
    std::fprintf(stderr,
                 "warning: --trace given but built with LOBSTER_TELEMETRY=OFF; "
                 "only directly-instrumented events will be recorded\n");
#endif
  }

  ~TraceSession() {
    if (path_.empty()) return;
    auto& tracer = telemetry::Tracer::instance();
    tracer.set_enabled(false);
    if (telemetry::write_chrome_trace_file(path_)) {
      std::printf("(trace written to %s — load in chrome://tracing or ui.perfetto.dev)\n",
                  path_.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write trace %s\n", path_.c_str());
    }
    const std::string counters_path = path_ + ".counters.csv";
    if (telemetry::MetricRegistry::instance().write_csv_file(counters_path)) {
      std::printf("(counters written to %s)\n", counters_path.c_str());
    }
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string path_;
};

inline void print_header(const std::string& title, const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

/// Prints the table and, when `csv_dir` is configured, also writes
/// `<csv_dir>/<name>.csv`.
inline void emit(const Config& config, const std::string& name, const Table& table) {
  std::printf("%s\n", table.render_text().c_str());
  const std::string csv_dir = config.get_string("csv_dir", "");
  if (csv_dir.empty()) return;
  std::filesystem::create_directories(csv_dir);
  const std::string path = csv_dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << table.render_csv();
  std::printf("(csv written to %s)\n\n", path.c_str());
}

inline void warn_unconsumed(const Config& config) {
  (void)config.get_string("csv_dir", "");  // always legal
  for (const auto& key : config.unconsumed()) {
    std::fprintf(stderr, "warning: unknown option '%s'\n", key.c_str());
  }
}

}  // namespace lobster::bench
