// trace_report: offline analysis of `--trace` Chrome-trace artifacts.
//
// Reads a trace written by any bench/example run with tracing enabled,
// reconstructs the per-run pipeline statistics (telemetry/analysis), and
// renders them as aligned text, CSV, or Markdown:
//
//   trace_report --trace fig07_trace.json
//   trace_report --trace out.json --format md --section breakdown
//   trace_report --trace out.json --section counters --warmup 2
//
// Exit codes: 0 success, 1 usage error, 2 unreadable/malformed trace,
// 3 trace parsed but holds no analyzable simulator run.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "common/strfmt.hpp"
#include "metrics/report.hpp"
#include "telemetry/analysis/report.hpp"
#include "telemetry/analysis/trace_log.hpp"
#include "telemetry/chrome_trace.hpp"

namespace {

using lobster::Table;
using lobster::strf;
namespace analysis = lobster::telemetry::analysis;

struct Options {
  std::string trace_path;
  analysis::Format format = analysis::Format::kText;
  std::string section = "all";
  analysis::AnalyzeOptions analyze;
  bool have_run_filter = false;
  std::uint32_t run_filter = 0;
};

constexpr const char* kSections[] = {"all",   "summary",     "breakdown", "gaps",
                                     "tiers", "attribution", "counters"};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --trace <out.json> [--format table|csv|md]\n"
               "          [--section all|summary|breakdown|gaps|tiers|attribution|counters]\n"
               "          [--warmup <epochs>] [--windows <n>] [--run <id>]\n",
               argv0);
  return 1;
}

bool parse_options(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--trace") {
      const char* v = value();
      if (v == nullptr) return false;
      options.trace_path = v;
    } else if (arg == "--format") {
      const char* v = value();
      if (v == nullptr || !analysis::parse_format(v, options.format)) return false;
    } else if (arg == "--section") {
      const char* v = value();
      if (v == nullptr) return false;
      options.section = v;
      bool known = false;
      for (const char* s : kSections) known = known || options.section == s;
      if (!known) return false;
    } else if (arg == "--warmup") {
      const char* v = value();
      if (v == nullptr) return false;
      options.analyze.warmup_epochs = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--windows") {
      const char* v = value();
      if (v == nullptr) return false;
      options.analyze.tier_windows = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--run") {
      const char* v = value();
      if (v == nullptr) return false;
      options.have_run_filter = true;
      options.run_filter = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else {
      return false;
    }
  }
  return !options.trace_path.empty();
}

bool wants(const Options& options, const char* section) {
  return options.section == "all" || options.section == section;
}

void print_heading(const Options& options, const char* title) {
  switch (options.format) {
    case analysis::Format::kText: std::printf("== %s ==\n", title); break;
    case analysis::Format::kCsv: std::printf("# section: %s\n", title); break;
    case analysis::Format::kMarkdown: std::printf("## %s\n\n", title); break;
  }
}

void print_table(const Options& options, const char* title, const Table& table) {
  print_heading(options, title);
  std::fputs(analysis::render_table(table, options.format).c_str(), stdout);
  std::printf("\n");
}

Table counters_table(const analysis::TraceLog& log) {
  // Distinct wall-clock counters (queue depths, pool sizes, cache bytes):
  // sample count plus min/max/last of each series.
  std::vector<std::string> names;
  for (const auto& event : log.events) {
    if (event.pid != lobster::telemetry::kWallPid || event.phase != 'C') continue;
    bool seen = false;
    for (const auto& name : names) seen = seen || name == event.name;
    if (!seen) names.push_back(event.name);
  }
  Table table({"counter", "samples", "min", "max", "last"});
  for (const auto& name : names) {
    const auto series = analysis::wall_counter_series(log, name);
    double lo = series.front().second, hi = lo;
    for (const auto& [ts, v] : series) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    table.add_row({name, strf("%zu", series.size()), Table::num(lo), Table::num(hi),
                   Table::num(series.back().second)});
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_options(argc, argv, options)) return usage(argv[0]);

  analysis::TraceLog log;
  try {
    log = analysis::load_trace_file(options.trace_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_report: %s\n", e.what());
    return 2;
  }
  if (log.empty()) {
    std::fprintf(stderr, "trace_report: %s holds no events\n", options.trace_path.c_str());
    return 3;
  }
  if (!log.complete()) {
    std::fprintf(stderr,
                 "trace_report: warning: %llu of %llu events were dropped (ring "
                 "overflow) — the timeline is truncated; rerun with a larger "
                 "trace_buffer\n",
                 static_cast<unsigned long long>(log.dropped),
                 static_cast<unsigned long long>(log.emitted));
  }

  auto runs = analysis::analyze_runs(log, options.analyze);
  if (options.have_run_filter) {
    std::erase_if(runs, [&](const analysis::RunAnalysis& run) {
      return run.run_id != options.run_filter;
    });
  }
  if (runs.empty() && options.section != "counters") {
    std::fprintf(stderr, "trace_report: no analyzable simulator runs in %s\n",
                 options.trace_path.c_str());
    return 3;
  }

  if (wants(options, "summary")) {
    print_table(options, "summary", analysis::summary_table(runs));
  }
  for (const auto& run : runs) {
    const std::string tag = strf("run %u", run.run_id);
    if (wants(options, "breakdown")) {
      print_table(options, strf("%s: warm-epoch stage breakdown (per iteration)",
                                tag.c_str()).c_str(),
                  analysis::breakdown_table(run));
    }
    if (wants(options, "gaps")) {
      print_table(options, strf("%s: iteration gap (Eq. 2-3)", tag.c_str()).c_str(),
                  analysis::gap_table(run));
      if (options.format == analysis::Format::kText && !run.gap_frac_series.empty()) {
        std::printf("gap_frac  %s\n", lobster::metrics::render_series(run.gap_frac_series).c_str());
        std::printf("cache_use %s\n\n",
                    lobster::metrics::render_series(run.cache_used_series).c_str());
      }
    }
    if (wants(options, "attribution")) {
      print_table(options, strf("%s: critical-stage attribution", tag.c_str()).c_str(),
                  analysis::attribution_table(run));
    }
    if (wants(options, "tiers")) {
      print_table(options, strf("%s: windowed tier hits", tag.c_str()).c_str(),
                  analysis::tier_table(run));
    }
  }
  if (wants(options, "counters")) {
    Table table = counters_table(log);
    if (table.rows() > 0) print_table(options, "wall-clock counters", table);
  }
  return 0;
}
