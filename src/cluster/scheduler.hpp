// Job admission and node-block scheduling over the shared cluster
// (DESIGN.md §10).
//
// The JobManager owns the job table and the node free-list. Submission
// queues a job; each scheduler round, admit() walks the queue under the
// configured policy and starts every job for which BOTH resources are
// available: a contiguous node block of the requested size (LBANN-style
// rank-block assignment) and KV-budget headroom (an admission callback the
// cluster driver binds to the arbiter). Finishing a job releases its block
// and re-runs nothing — the next admit() round picks up the freed capacity.
//
// Policies:
//  * kFifo       — strict arrival order with head-of-line blocking: if the
//                  oldest queued job does not fit, nothing behind it runs.
//                  Predictable, but a wide job can idle the cluster.
//  * kFairShare  — weighted-deficit order with backfill: queued jobs are
//                  ranked by wait_rounds x weight (descending) and every
//                  one that fits is admitted. No head-of-line blocking, and
//                  a job's claim grows the longer it waits, so nothing
//                  starves behind a stream of later arrivals.
//  * kFairSharePreemptive — fair share plus checkpoint-based preemption
//                  (DESIGN.md §13): when a high-deficit waiter cannot be
//                  backfilled, the lowest-deficit running jobs are evicted
//                  (through the preempt hook, which checkpoints them) until
//                  the waiter's block fits. An anti-thrash cooldown and a
//                  per-job preemption budget bound how often any one job
//                  can be bounced, and a preempted job re-enters the same
//                  deficit ranking — its accumulated wait keeps growing —
//                  so eviction can never become starvation.
//
// Placement is gang-scheduled best-fit: a job's block is the smallest free
// run that holds it, so freed blocks stop fragmenting the pool (first-fit
// stranded narrow holes at the low ranks). Elastic jobs (JobSpec::
// min_nodes/max_nodes) may be placed at any width in range when their
// requested width does not fit, and resized between epochs.
//
// Single-threaded by design: the cluster driver calls it between rounds
// (jobs' iterations run inside a round; scheduling happens at the barrier).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cluster/job.hpp"

namespace lobster::cluster {

enum class SchedulerPolicy : std::uint8_t { kFifo = 0, kFairShare, kFairSharePreemptive };

const char* scheduler_policy_name(SchedulerPolicy policy) noexcept;

/// Anti-thrash knobs for kFairSharePreemptive (DESIGN.md §13).
struct PreemptionPolicy {
  /// A waiter below this weighted deficit never triggers a preemption —
  /// eviction is for genuinely starved arrivals, not every queue blip.
  double min_deficit = 4.0;
  /// A victim must trail the waiter by at least this much deficit; equal
  /// claims never bounce each other.
  double min_deficit_gap = 2.0;
  /// Rounds a job must run after (re)starting before it can be evicted —
  /// the cooldown that prevents preemption ping-pong.
  std::uint64_t cooldown_rounds = 8;
  /// Lifetime eviction budget per job; past it the job is preempt-immune.
  std::uint32_t max_preemptions_per_job = 2;
  /// Most victims one admission may evict (a single huge waiter cannot
  /// clear the whole cluster in one round).
  std::uint32_t max_victims = 3;
};

class JobManager {
 public:
  /// Admission gate beyond node capacity: the driver binds this to the KV
  /// budget arbiter ("is there headroom to admit this job's working set?").
  using BudgetGate = std::function<bool(const JobSpec&)>;

  /// Invoked just BEFORE a running job's block is released on preemption,
  /// while its record still points at the live block — the cluster driver
  /// checkpoints the job's progress here (DESIGN.md §13 crash-consistency
  /// point). The hook must not call back into the JobManager.
  using PreemptHook = std::function<void(JobId, std::uint64_t round)>;

  JobManager(std::uint16_t total_nodes, SchedulerPolicy policy);

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Queues a job (state kQueued). A spec that can never run on this
  /// cluster (nodes == 0 or > total) is recorded as kRejected instead.
  /// `round` may be in the future: the job is registered now but invisible
  /// to admit() (and to queue-wait accounting) until that round arrives —
  /// how the cluster driver pre-loads an arrival schedule.
  JobId submit(JobSpec spec, std::uint64_t round);

  /// Runs one admission round: admits queued AND preempted jobs per the
  /// policy while a node block and budget headroom are available; under
  /// kFairSharePreemptive, a waiter that cannot be backfilled may evict
  /// lower-deficit running jobs (through the preempt hook). Returns
  /// admitted ids in admission order — resumed jobs included; the caller
  /// tells them apart by their preempt_count. `gate` may be null.
  std::vector<JobId> admit(std::uint64_t round, const BudgetGate& gate = nullptr);

  /// kRunning -> kFinished; releases the node block.
  void finish(JobId id, std::uint64_t round);

  /// kRunning -> kPreempted: fires the preempt hook (checkpoint), then
  /// releases the block and returns the job to the admission pool.
  void preempt(JobId id, std::uint64_t round);

  /// Re-places a RUNNING elastic job at `new_width` (grow or shrink),
  /// best-fit over the holes plus its own freed block. Returns the new
  /// block, or nullopt (job left untouched on its old block) when no run
  /// of `new_width` exists. The caller drives the checkpoint-resize-restore
  /// cycle around this.
  std::optional<NodeBlock> resize(JobId id, std::uint64_t round, std::uint16_t new_width);

  void set_preemption_policy(PreemptionPolicy policy) noexcept { preemption_ = policy; }
  const PreemptionPolicy& preemption_policy() const noexcept { return preemption_; }
  void set_preempt_hook(PreemptHook hook) { preempt_hook_ = std::move(hook); }

  const JobRecord& record(JobId id) const;
  JobRecord& record_mutable(JobId id);

  std::vector<JobId> running() const;
  std::vector<JobId> queued() const;     ///< in arrival order
  std::vector<JobId> preempted() const;  ///< in arrival order
  std::size_t jobs() const noexcept { return jobs_.size(); }
  std::uint16_t total_nodes() const noexcept { return total_nodes_; }
  std::uint16_t free_nodes() const;
  SchedulerPolicy policy() const noexcept { return policy_; }
  std::uint64_t preemptions() const noexcept { return preemptions_; }
  std::uint64_t resumes() const noexcept { return resumes_; }
  std::uint64_t resizes() const noexcept { return resizes_; }

  /// Longest current wait in rounds across queued AND preempted jobs (0
  /// when none wait) — the starvation signal the fairness tracker samples.
  std::uint64_t oldest_queued_wait(std::uint64_t round) const;

 private:
  std::optional<NodeBlock> find_block(std::uint16_t count) const;
  void occupy(NodeBlock block, bool value);
  bool try_admit(JobRecord& job, std::uint64_t round, const BudgetGate& gate);
  bool try_preempt_for(JobRecord& job, std::uint64_t round, const BudgetGate& gate);
  bool waiting_now(const JobRecord& job, std::uint64_t round) const;

  std::uint16_t total_nodes_;
  SchedulerPolicy policy_;
  PreemptionPolicy preemption_;
  PreemptHook preempt_hook_;
  std::vector<bool> node_busy_;
  std::vector<JobRecord> jobs_;  ///< indexed by JobId
  std::uint64_t preemptions_ = 0;
  std::uint64_t resumes_ = 0;
  std::uint64_t resizes_ = 0;
};

}  // namespace lobster::cluster
