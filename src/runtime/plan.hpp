// Execution plans: the contract between Lobster's two components (§4.5).
//
// The offline component (core/planner.hpp, built on the pipeline simulator)
// produces a Plan: per iteration and node, the loading-thread assignment for
// each GPU queue, the preprocessing thread count, the samples to prefetch
// and the samples the reuse policies chose to evict. The online runtime
// (runtime/executor.hpp) interprets the plan and enforces it with real
// thread pools and request queues.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lobster::runtime {

/// One node's decisions for one iteration.
struct NodeIterationPlan {
  std::vector<std::uint32_t> load_threads;  ///< per GPU queue
  std::uint32_t preproc_threads = 1;        ///< per GPU pipeline
  std::vector<SampleId> prefetches;         ///< staged after this iteration
  std::vector<SampleId> evictions;          ///< reuse-sweep victims
};

struct IterationPlan {
  IterId iter = 0;
  std::vector<NodeIterationPlan> nodes;
};

struct Plan {
  std::uint16_t cluster_nodes = 0;
  std::uint16_t gpus_per_node = 0;
  std::uint32_t epochs = 0;
  std::uint32_t iterations_per_epoch = 0;
  std::uint32_t batch_size = 0;
  std::uint64_t seed = 0;
  std::vector<IterationPlan> iterations;  ///< epochs * iterations_per_epoch

  bool empty() const noexcept { return iterations.empty(); }
  std::size_t total_iterations() const noexcept { return iterations.size(); }

  /// Total planned prefetch volume (diagnostics).
  std::uint64_t total_prefetches() const noexcept {
    std::uint64_t count = 0;
    for (const auto& it : iterations) {
      for (const auto& node : it.nodes) count += node.prefetches.size();
    }
    return count;
  }
};

}  // namespace lobster::runtime
