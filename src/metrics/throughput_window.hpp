// One throughput derivation for every consumer.
//
// Per-GPU and per-job throughput used to be at risk of diverging: the
// cluster FairnessTracker and the feedback balancer both need "samples per
// second from delivery logs", and two hand-rolled EWMAs with different
// alphas or different zero-elapsed handling would disagree about which
// device is slow. This helper is that derivation, once: feed it
// (samples, elapsed) observations, read back an EWMA rate (the balancer's
// control input) and a trailing-window mean rate (the smoother number the
// dashboards publish).
//
// Published gauges by convention:
//   executor.gpu/<flat rank>/throughput   — per-GPU, from the executor
//   cluster.job/<name>/throughput         — per-job, from the FairnessTracker
//
// Not thread-safe; each consumer owns its windows and serialises access
// (the balancer under its own mutex, the executor on its run() thread).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/types.hpp"

namespace lobster::metrics {

class ThroughputWindow {
 public:
  /// `alpha`: EWMA smoothing weight on the newest observation, (0, 1].
  /// `window`: number of trailing observations in the windowed mean.
  explicit ThroughputWindow(double alpha = 0.3, std::size_t window = 8);

  /// One observation: `samples` delivered over `elapsed` seconds.
  /// Zero/negative elapsed is ignored (a rate cannot be derived from it).
  void record(std::uint64_t samples, Seconds elapsed);

  /// EWMA samples/s; 0 before the first observation.
  double ewma_rate() const noexcept { return ewma_; }

  /// Mean samples/s over the last `window` observations; 0 before the first.
  double windowed_rate() const noexcept;

  std::uint64_t total_samples() const noexcept { return total_samples_; }
  Seconds total_seconds() const noexcept { return total_seconds_; }
  std::size_t observations() const noexcept { return observations_; }

  void reset();

  /// Rehydrates the window from checkpointed state: seeds the EWMA at
  /// `rate` and restores the observation count, with one synthetic
  /// one-second entry so windowed_rate() reports `rate` until real
  /// observations displace it. A zero-observation restore is a reset.
  void restore_rate(double rate, std::size_t observations);

 private:
  struct Entry {
    std::uint64_t samples;
    Seconds elapsed;
  };

  double alpha_;
  std::size_t window_;
  double ewma_ = 0.0;
  std::deque<Entry> entries_;
  std::uint64_t total_samples_ = 0;
  Seconds total_seconds_ = 0.0;
  std::size_t observations_ = 0;
};

}  // namespace lobster::metrics
