// Dataset catalogs and the deterministic distributed sampler.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "data/dataset.hpp"
#include "data/sampler.hpp"

namespace lobster::data {
namespace {

TEST(DatasetSpec, ImageNet1kShape) {
  const auto spec = DatasetSpec::imagenet1k(1000.0);
  EXPECT_EQ(spec.name, "imagenet1k");
  EXPECT_EQ(spec.num_samples, 1281U);  // 1.28M / 1000
}

TEST(DatasetSpec, ScaleOneKeepsFullCount) {
  EXPECT_EQ(DatasetSpec::imagenet1k(1.0).num_samples, 1'281'167U);
  EXPECT_EQ(DatasetSpec::imagenet22k(1.0).num_samples, 14'197'103U);
}

TEST(DatasetSpec, RejectsNonPositiveScale) {
  EXPECT_THROW(DatasetSpec::imagenet1k(0.0), std::invalid_argument);
  EXPECT_THROW(DatasetSpec::imagenet22k(-2.0), std::invalid_argument);
}

TEST(SampleCatalog, DeterministicInSeed) {
  const auto spec = DatasetSpec::imagenet1k(500.0);
  const SampleCatalog a(spec, 42);
  const SampleCatalog b(spec, 42);
  const SampleCatalog c(spec, 43);
  EXPECT_EQ(a.sizes(), b.sizes());
  EXPECT_NE(a.sizes(), c.sizes());
}

TEST(SampleCatalog, SizesWithinClamps) {
  const auto spec = DatasetSpec::imagenet22k(2000.0);
  const SampleCatalog catalog(spec, 7);
  for (SampleId s = 0; s < catalog.size(); ++s) {
    EXPECT_GE(catalog.sample_bytes(s), spec.min_bytes);
    EXPECT_LE(catalog.sample_bytes(s), spec.max_bytes);
  }
}

TEST(SampleCatalog, MeanMatchesTargetBand) {
  // ImageNet-1K full-scale total is ~135 GB over 1.28 M images (~105 KB each).
  const SampleCatalog catalog(DatasetSpec::imagenet1k(100.0), 42);
  EXPECT_GT(catalog.mean_bytes(), 85.0 * 1024);
  EXPECT_LT(catalog.mean_bytes(), 125.0 * 1024);
}

TEST(SampleCatalog, UniformSpecIsExact) {
  const SampleCatalog catalog(DatasetSpec::uniform(100, 4096), 1);
  EXPECT_EQ(catalog.size(), 100U);
  for (SampleId s = 0; s < 100; ++s) EXPECT_EQ(catalog.sample_bytes(s), 4096U);
  EXPECT_EQ(catalog.total_bytes(), 409600U);
}

TEST(SampleCatalog, EmptyDatasetThrows) {
  DatasetSpec spec = DatasetSpec::uniform(1, 10);
  spec.num_samples = 0;
  EXPECT_THROW(SampleCatalog(spec, 1), std::invalid_argument);
}

SamplerConfig make_config(std::uint32_t samples, std::uint16_t nodes, std::uint16_t gpus,
                          std::uint32_t batch) {
  SamplerConfig config;
  config.num_samples = samples;
  config.nodes = nodes;
  config.gpus_per_node = gpus;
  config.batch_size = batch;
  config.seed = 42;
  return config;
}

TEST(EpochSampler, IterationCountDropsPartial) {
  const EpochSampler sampler(make_config(1000, 2, 4, 16));
  // 1000 / (16 * 8) = 7.8 -> 7
  EXPECT_EQ(sampler.iterations_per_epoch(), 7U);
  EXPECT_EQ(sampler.world_size(), 8U);
}

TEST(EpochSampler, ThrowsWhenSmallerThanGlobalBatch) {
  EXPECT_THROW(EpochSampler(make_config(10, 2, 4, 16)), std::invalid_argument);
}

TEST(EpochSampler, GlobalIterIndexing) {
  const EpochSampler sampler(make_config(1000, 2, 4, 16));
  EXPECT_EQ(sampler.global_iter(0, 0), 0U);
  EXPECT_EQ(sampler.global_iter(1, 0), 7U);
  EXPECT_EQ(sampler.global_iter(3, 2), 23U);
}

class SamplerPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint16_t, std::uint16_t, std::uint32_t>> {};

TEST_P(SamplerPropertyTest, BatchesAreDisjointAndCoverPrefixOfPermutation) {
  const auto [nodes, gpus, batch] = GetParam();
  const EpochSampler sampler(make_config(4096, nodes, gpus, batch));
  const std::uint32_t I = sampler.iterations_per_epoch();

  std::set<SampleId> seen;
  for (std::uint32_t h = 0; h < I; ++h) {
    for (std::uint16_t n = 0; n < nodes; ++n) {
      for (std::uint16_t g = 0; g < gpus; ++g) {
        const auto batch_ids = sampler.minibatch(0, h, n, g);
        EXPECT_EQ(batch_ids.size(), batch);
        for (const SampleId s : batch_ids) {
          EXPECT_TRUE(seen.insert(s).second) << "duplicate sample " << s;
        }
      }
    }
  }
  // Exactly I * world * batch distinct samples drawn from [0, 4096).
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(I) * sampler.world_size() * batch);
  for (const SampleId s : seen) EXPECT_LT(s, 4096U);
}

TEST_P(SamplerPropertyTest, EpochsReshuffle) {
  const auto [nodes, gpus, batch] = GetParam();
  const EpochSampler sampler(make_config(4096, nodes, gpus, batch));
  EXPECT_NE(sampler.epoch_permutation(0), sampler.epoch_permutation(1));
}

using SamplerShape = std::tuple<std::uint16_t, std::uint16_t, std::uint32_t>;
INSTANTIATE_TEST_SUITE_P(Shapes, SamplerPropertyTest,
                         ::testing::Values(SamplerShape{1, 1, 32}, SamplerShape{1, 8, 32},
                                           SamplerShape{2, 4, 16}, SamplerShape{8, 8, 8}));

TEST(EpochSampler, DeterministicAcrossInstances) {
  const EpochSampler a(make_config(2048, 2, 2, 8));
  const EpochSampler b(make_config(2048, 2, 2, 8));
  for (std::uint32_t h = 0; h < a.iterations_per_epoch(); ++h) {
    EXPECT_EQ(a.minibatch(3, h, 1, 0), b.minibatch(3, h, 1, 0));
  }
}

TEST(EpochSampler, SeedChangesOrder) {
  auto config = make_config(2048, 1, 2, 8);
  const EpochSampler a(config);
  config.seed = 43;
  const EpochSampler b(config);
  EXPECT_NE(a.minibatch(0, 0, 0, 0), b.minibatch(0, 0, 0, 0));
}

TEST(EpochSampler, MatchesStridedShardDefinition) {
  // Rank r's batch at iteration h must be perm[(h*B + p) * W + r].
  const EpochSampler sampler(make_config(512, 2, 2, 4));
  const auto& perm = sampler.epoch_permutation(0);
  const std::uint32_t W = sampler.world_size();
  for (std::uint16_t n = 0; n < 2; ++n) {
    for (std::uint16_t g = 0; g < 2; ++g) {
      const std::uint32_t rank = flat_gpu_rank({n, g}, 2);
      const auto batch = sampler.minibatch(0, 1, n, g);
      for (std::uint32_t p = 0; p < 4; ++p) {
        EXPECT_EQ(batch[p], perm[(1 * 4 + p) * W + rank]);
      }
    }
  }
}

TEST(EpochSampler, NodeBatchConcatenatesGpuBatches) {
  const EpochSampler sampler(make_config(512, 2, 2, 4));
  const auto node_batch = sampler.node_batch(0, 0, 1);
  const auto g0 = sampler.minibatch(0, 0, 1, 0);
  const auto g1 = sampler.minibatch(0, 0, 1, 1);
  ASSERT_EQ(node_batch.size(), g0.size() + g1.size());
  EXPECT_TRUE(std::equal(g0.begin(), g0.end(), node_batch.begin()));
  EXPECT_TRUE(std::equal(g1.begin(), g1.end(), node_batch.begin() + g0.size()));
}

TEST(EpochSampler, OutOfRangeArgumentsThrow) {
  const EpochSampler sampler(make_config(512, 2, 2, 4));
  EXPECT_THROW(sampler.minibatch(0, sampler.iterations_per_epoch(), 0, 0), std::out_of_range);
  EXPECT_THROW(sampler.minibatch(0, 0, 2, 0), std::out_of_range);
  EXPECT_THROW(sampler.minibatch(0, 0, 0, 2), std::out_of_range);
}

}  // namespace
}  // namespace lobster::data
