// Synthetic dataset catalogs.
//
// The cache / prefetch / load-balance behaviour Lobster optimizes depends on
// the *catalog* of a dataset — sample count and per-sample sizes — and on the
// deterministic access order, never on pixel contents. This module generates
// catalogs with the paper's datasets' statistics (ImageNet-1K: 1.28 M
// samples, 135 GB total; ImageNet-22K: 14.2 M samples, 1.3 TB, sizes mostly
// 10–50 KB), scaled down by a configurable factor so experiments run in
// seconds while preserving the ratios that drive the results
// (cache-size/dataset-size, samples per iteration).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lobster::data {

/// Parameters of a synthetic dataset. Sizes are drawn from a clamped
/// log-normal (natural for image file sizes).
struct DatasetSpec {
  std::string name;
  std::uint32_t num_samples = 0;
  /// Log-normal parameters of the per-sample size in bytes.
  double lognormal_mu = 0.0;
  double lognormal_sigma = 0.0;
  Bytes min_bytes = 1;
  Bytes max_bytes = 0;  // 0 = unclamped

  /// ImageNet-1K-like catalog: mean sample ~105 KB, total ~135 GB at full
  /// scale. `scale` divides the sample count (sizes keep their distribution).
  static DatasetSpec imagenet1k(double scale = 1.0);

  /// ImageNet-22K-like catalog: 14.2 M samples, most 10–50 KB.
  static DatasetSpec imagenet22k(double scale = 1.0);

  /// Uniform-size toy dataset for tests.
  static DatasetSpec uniform(std::uint32_t samples, Bytes sample_bytes,
                             std::string name = "uniform");
};

/// Materialized catalog: per-sample sizes, deterministic in (spec, seed).
class SampleCatalog {
 public:
  SampleCatalog(const DatasetSpec& spec, std::uint64_t seed);

  const std::string& name() const noexcept { return name_; }
  std::uint32_t size() const noexcept { return static_cast<std::uint32_t>(sizes_.size()); }
  Bytes sample_bytes(SampleId id) const { return sizes_.at(id); }
  Bytes total_bytes() const noexcept { return total_; }
  double mean_bytes() const noexcept;

  const std::vector<Bytes>& sizes() const noexcept { return sizes_; }

 private:
  std::string name_;
  std::vector<Bytes> sizes_;
  Bytes total_ = 0;
};

}  // namespace lobster::data
