#include "nn/synthetic.hpp"

#include <cmath>
#include <stdexcept>

namespace lobster::nn {

SyntheticTask::SyntheticTask(std::uint32_t classes, std::uint32_t features, double noise_sigma,
                             std::uint64_t seed)
    : classes_(classes), features_(features), noise_sigma_(noise_sigma), seed_(seed) {
  if (classes == 0 || features == 0) throw std::invalid_argument("SyntheticTask: bad dims");
  centroids_.resize(static_cast<std::size_t>(classes) * features);
  Rng rng(derive_seed(seed, 0xCE27801D5ULL));
  for (std::uint32_t c = 0; c < classes; ++c) {
    double norm = 0.0;
    float* row = &centroids_[static_cast<std::size_t>(c) * features];
    for (std::uint32_t f = 0; f < features; ++f) {
      row[f] = static_cast<float>(rng.normal());
      norm += static_cast<double>(row[f]) * row[f];
    }
    const auto inv = static_cast<float>(1.0 / std::sqrt(std::max(norm, 1e-9)));
    for (std::uint32_t f = 0; f < features; ++f) row[f] *= inv;
  }
}

std::uint32_t SyntheticTask::label_of(SampleId sample) const {
  return static_cast<std::uint32_t>(derive_seed(seed_, sample, 0x1ABE1ULL) % classes_);
}

void SyntheticTask::features_of(SampleId sample, float* out) const {
  const std::uint32_t label = label_of(sample);
  const float* centroid = &centroids_[static_cast<std::size_t>(label) * features_];
  Rng rng(derive_seed(seed_, sample, 0xFEA7ULL));
  for (std::uint32_t f = 0; f < features_; ++f) {
    out[f] = centroid[f] + static_cast<float>(rng.normal(0.0, noise_sigma_));
  }
}

Matrix SyntheticTask::batch_features(const std::vector<SampleId>& samples) const {
  Matrix batch(samples.size(), features_);
  for (std::size_t r = 0; r < samples.size(); ++r) features_of(samples[r], batch.row(r));
  return batch;
}

std::vector<std::uint32_t> SyntheticTask::batch_labels(
    const std::vector<SampleId>& samples) const {
  std::vector<std::uint32_t> labels;
  labels.reserve(samples.size());
  for (const SampleId s : samples) labels.push_back(label_of(s));
  return labels;
}

}  // namespace lobster::nn
