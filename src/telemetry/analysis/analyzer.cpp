#include "telemetry/analysis/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "telemetry/chrome_trace.hpp"

namespace lobster::telemetry::analysis {

namespace {

// Matching events to iterations compares integer-microsecond timestamps that
// the exporter rounded identically, so a half-microsecond slack is enough.
constexpr double kTsSlackUs = 0.5;

enum class TrackKind { kNodePipeline, kNodeTrain, kCluster };

struct TrackId {
  std::uint32_t run = 0;
  std::uint32_t node = 0;
  TrackKind kind = TrackKind::kCluster;
};

bool parse_uint(std::string_view& s, std::uint32_t& out) {
  if (s.empty() || s[0] < '0' || s[0] > '9') return false;
  std::uint64_t value = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(s[i] - '0');
    ++i;
  }
  s.remove_prefix(i);
  out = static_cast<std::uint32_t>(value);
  return true;
}

bool eat(std::string_view& s, std::string_view prefix) {
  if (s.substr(0, prefix.size()) != prefix) return false;
  s.remove_prefix(prefix.size());
  return true;
}

/// Recognizes "sim<run>/cluster" and "sim<run>/node<n>/(pipeline|train)".
bool parse_track_name(std::string_view name, TrackId& out) {
  if (!eat(name, "sim") || !parse_uint(name, out.run) || !eat(name, "/")) return false;
  if (name == "cluster") {
    out.kind = TrackKind::kCluster;
    return true;
  }
  if (!eat(name, "node") || !parse_uint(name, out.node) || !eat(name, "/")) return false;
  if (name == "pipeline") {
    out.kind = TrackKind::kNodePipeline;
    return true;
  }
  if (name == "train") {
    out.kind = TrackKind::kNodeTrain;
    return true;
  }
  return false;
}

struct NodeSeries {
  // All vectors are indexed by iteration; filled with zeros up front.
  std::vector<double> load_s, preproc_s, train_s, iter_dur_s;
  std::vector<double> fetch_local_s, fetch_ssd_s, fetch_remote_s, fetch_pfs_s;
  std::vector<double> cache_used;
  std::vector<std::uint64_t> hits_local, hits_ssd, hits_remote, miss_pfs;

  void resize(std::size_t n) {
    load_s.assign(n, 0.0);
    preproc_s.assign(n, 0.0);
    train_s.assign(n, 0.0);
    iter_dur_s.assign(n, 0.0);
    fetch_local_s.assign(n, 0.0);
    fetch_ssd_s.assign(n, 0.0);
    fetch_remote_s.assign(n, 0.0);
    fetch_pfs_s.assign(n, 0.0);
    cache_used.assign(n, 0.0);
    hits_local.assign(n, 0);
    hits_ssd.assign(n, 0);
    hits_remote.assign(n, 0);
    miss_pfs.assign(n, 0);
  }
};

struct RunEvents {
  std::map<std::uint32_t, std::vector<const TraceLogEvent*>> node_pipeline;
  std::map<std::uint32_t, std::vector<const TraceLogEvent*>> node_train;
  std::vector<const TraceLogEvent*> cluster;
};

/// Index of the iteration whose [start, next-start) window contains `ts_us`,
/// or npos when `ts_us` precedes the first iteration.
std::size_t iteration_index(const std::vector<double>& starts_us, double ts_us) {
  const auto it =
      std::upper_bound(starts_us.begin(), starts_us.end(), ts_us + kTsSlackUs);
  if (it == starts_us.begin()) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - starts_us.begin()) - 1;
}

}  // namespace

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kLoad: return "load";
    case Stage::kPreproc: return "preproc";
    case Stage::kTrain: return "train";
  }
  return "?";
}

std::vector<RunAnalysis> analyze_runs(const TraceLog& log, const AnalyzeOptions& options) {
  // ---- 1. map virtual tracks to (run, node, kind) and bucket events
  std::map<std::uint32_t, TrackId> tracks;  // tid -> identity (virtual pid only)
  for (const auto& [key, name] : log.track_names) {
    if (key.first != kVirtualPid) continue;
    TrackId id;
    if (parse_track_name(name, id)) tracks.emplace(key.second, id);
  }

  std::map<std::uint32_t, RunEvents> runs;
  for (const auto& event : log.events) {
    if (event.pid != kVirtualPid) continue;
    const auto it = tracks.find(event.tid);
    if (it == tracks.end()) continue;
    const TrackId& id = it->second;
    auto& run = runs[id.run];
    switch (id.kind) {
      case TrackKind::kNodePipeline: run.node_pipeline[id.node].push_back(&event); break;
      case TrackKind::kNodeTrain: run.node_train[id.node].push_back(&event); break;
      case TrackKind::kCluster: run.cluster.push_back(&event); break;
    }
  }

  std::vector<RunAnalysis> analyses;
  for (const auto& [run_id, run] : runs) {
    if (run.node_pipeline.empty()) continue;

    // ---- 2. canonical iteration timeline from the lowest node's track
    // (the barrier keeps every node's iteration spans identical).
    std::vector<double> starts_us;
    std::vector<double> span_dur_us;
    std::vector<std::uint64_t> global_iters;
    for (const auto* event : run.node_pipeline.begin()->second) {
      if (event->phase == 'X' && event->name == "iteration") {
        starts_us.push_back(event->ts_us);
        span_dur_us.push_back(event->dur_us);
        global_iters.push_back(event->arg);
      }
    }
    const std::size_t n = starts_us.size();
    if (n == 0) continue;

    RunAnalysis out;
    out.run_id = run_id;
    out.nodes = static_cast<std::uint32_t>(run.node_pipeline.size());
    out.warmup_epochs = options.warmup_epochs;
    out.iterations = n;

    // ---- 3. cluster signals: epoch markers, exact t_max/t_min, imbalance
    std::vector<std::pair<double, std::uint32_t>> epoch_begins;  // (ts, epoch)
    std::vector<std::pair<double, double>> t_max_points;
    std::vector<std::pair<double, double>> t_min_points;
    std::vector<double> imbalanced_ts;
    for (const auto* event : run.cluster) {
      if (event->phase == 'i' && event->name == "epoch_begin") {
        epoch_begins.emplace_back(event->ts_us, static_cast<std::uint32_t>(event->arg));
      } else if (event->phase == 'C' && event->name == "t_max") {
        t_max_points.emplace_back(event->ts_us, event->value);
      } else if (event->phase == 'C' && event->name == "t_min") {
        t_min_points.emplace_back(event->ts_us, event->value);
      } else if (event->phase == 'i' && event->name == "imbalanced") {
        imbalanced_ts.push_back(event->ts_us);
      }
    }

    auto counter_for = [&](const std::vector<std::pair<double, double>>& points,
                           std::size_t idx, double fallback) {
      // Index-matched when the series is complete; ts-matched otherwise
      // (a truncated ring can lose a prefix of the cluster counters).
      if (points.size() == n) return points[idx].second;
      const auto it = std::lower_bound(
          points.begin(), points.end(), starts_us[idx] - kTsSlackUs,
          [](const std::pair<double, double>& p, double ts) { return p.first < ts; });
      if (it != points.end() && std::abs(it->first - starts_us[idx]) <= kTsSlackUs) {
        return it->second;
      }
      return fallback;
    };

    out.iteration_samples.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto& sample = out.iteration_samples[i];
      sample.start_s = starts_us[i] / 1e6;
      sample.global_iter = global_iters[i];
      // Prefer the exact barrier duration (full double precision) over the
      // micro-rounded span length.
      sample.t_max_s = counter_for(t_max_points, i, span_dur_us[i] / 1e6);
      sample.duration_s = sample.t_max_s;
      sample.t_min_s = counter_for(t_min_points, i, sample.t_max_s);
      const auto eb = std::upper_bound(
          epoch_begins.begin(), epoch_begins.end(),
          std::make_pair(starts_us[i] + kTsSlackUs, std::numeric_limits<std::uint32_t>::max()));
      sample.epoch = eb == epoch_begins.begin() ? 0 : std::prev(eb)->second;
    }
    for (const double ts : imbalanced_ts) {
      const std::size_t idx = iteration_index(starts_us, ts);
      if (idx < n) out.iteration_samples[idx].imbalanced = true;
    }
    out.epochs = epoch_begins.empty()
                     ? 1
                     : std::max_element(epoch_begins.begin(), epoch_begins.end(),
                                        [](const auto& a, const auto& b) {
                                          return a.second < b.second;
                                        })->second + 1;

    // ---- 4. per-node stage series, bucketed by iteration window
    std::map<std::uint32_t, NodeSeries> series;
    for (const auto& [node, events] : run.node_pipeline) {
      NodeSeries& s = series[node];
      s.resize(n);
      for (const auto* event : events) {
        const std::size_t idx = iteration_index(starts_us, event->ts_us);
        if (idx >= n) continue;
        if (event->phase == 'X') {
          if (event->name == "load") s.load_s[idx] += event->dur_us / 1e6;
          else if (event->name == "preproc") s.preproc_s[idx] += event->dur_us / 1e6;
          else if (event->name == "iteration") s.iter_dur_s[idx] = event->dur_us / 1e6;
        } else if (event->phase == 'C') {
          if (event->name == "fetch_local_s") s.fetch_local_s[idx] = event->value;
          else if (event->name == "fetch_ssd_s") s.fetch_ssd_s[idx] = event->value;
          else if (event->name == "fetch_remote_s") s.fetch_remote_s[idx] = event->value;
          else if (event->name == "fetch_pfs_s") s.fetch_pfs_s[idx] = event->value;
          else if (event->name == "cache_used_bytes") s.cache_used[idx] = event->value;
          else if (event->name == "hits_local")
            s.hits_local[idx] = static_cast<std::uint64_t>(event->value);
          else if (event->name == "hits_ssd")
            s.hits_ssd[idx] = static_cast<std::uint64_t>(event->value);
          else if (event->name == "hits_remote")
            s.hits_remote[idx] = static_cast<std::uint64_t>(event->value);
          else if (event->name == "miss_pfs")
            s.miss_pfs[idx] = static_cast<std::uint64_t>(event->value);
        }
      }
    }
    for (const auto& [node, events] : run.node_train) {
      auto it = series.find(node);
      if (it == series.end()) continue;
      for (const auto* event : events) {
        if (event->phase != 'X' || event->name != "train") continue;
        const std::size_t idx = iteration_index(starts_us, event->ts_us);
        if (idx < n) it->second.train_s[idx] += event->dur_us / 1e6;
      }
    }

    // ---- 5. per-iteration attribution, gaps, warm/all aggregation
    // (GPU-preproc runs emit no preproc spans; their cost rides inside the
    // train span, so attribution naturally lands on train.)
    std::map<std::uint32_t, std::uint64_t> slowest_counts;
    std::uint64_t imbalanced_all = 0, imbalanced_warm = 0;
    std::uint64_t hits_local_all = 0, samples_all = 0;
    out.gap_frac_series.resize(n, 0.0);
    out.cache_used_series.resize(n, 0.0);

    for (std::size_t i = 0; i < n; ++i) {
      auto& sample = out.iteration_samples[i];
      double slowest_time = -1.0;
      double slow_load = 0.0, slow_preproc = 0.0, slow_train = 0.0;
      for (const auto& [node, s] : series) {
        const double pipeline = s.load_s[i] + s.preproc_s[i];
        const double gpu_time = std::max(pipeline, s.train_s[i]);
        if (gpu_time > slowest_time) {
          slowest_time = gpu_time;
          sample.slowest_node = node;
          slow_load = s.load_s[i];
          slow_preproc = s.preproc_s[i];
          slow_train = s.train_s[i];
        }
        out.cache_used_series[i] += s.cache_used[i];
        hits_local_all += s.hits_local[i];
        samples_all += s.hits_local[i] + s.hits_ssd[i] + s.hits_remote[i] + s.miss_pfs[i];
      }
      if (slow_train >= slow_load + slow_preproc) {
        sample.bounded_by = Stage::kTrain;
      } else {
        sample.bounded_by = slow_load >= slow_preproc ? Stage::kLoad : Stage::kPreproc;
      }
      out.gap_frac_series[i] = sample.gap_frac();

      out.total_time_s += sample.duration_s;
      if (sample.imbalanced) ++imbalanced_all;

      const bool warm = sample.epoch >= options.warmup_epochs;
      if (!warm) continue;
      ++out.warm_iterations;
      out.warm_time_s += sample.duration_s;
      if (sample.imbalanced) ++imbalanced_warm;
      out.mean_gap_s += sample.gap_s();
      out.mean_gap_frac += sample.gap_frac();
      out.max_gap_s = std::max(out.max_gap_s, sample.gap_s());
      ++slowest_counts[sample.slowest_node];
      switch (sample.bounded_by) {
        case Stage::kLoad: ++out.bounded_by_load; break;
        case Stage::kPreproc: ++out.bounded_by_preproc; break;
        case Stage::kTrain: ++out.bounded_by_train; break;
      }

      for (const auto& [node, s] : series) {
        StageTotals& totals = out.per_node[node];
        totals.load_s += s.load_s[i];
        totals.preproc_s += s.preproc_s[i];
        totals.train_s += s.train_s[i];
        totals.idle_s += std::max(0.0, sample.duration_s - s.train_s[i]);
        totals.iteration_s += sample.duration_s;
        totals.fetch_local_s += s.fetch_local_s[i];
        totals.fetch_ssd_s += s.fetch_ssd_s[i];
        totals.fetch_remote_s += s.fetch_remote_s[i];
        totals.fetch_pfs_s += s.fetch_pfs_s[i];
        totals.hits_local += s.hits_local[i];
        totals.hits_ssd += s.hits_ssd[i];
        totals.hits_remote += s.hits_remote[i];
        totals.miss_pfs += s.miss_pfs[i];
        ++totals.iterations;
      }
    }

    out.imbalanced_fraction = static_cast<double>(imbalanced_all) / static_cast<double>(n);
    if (out.warm_iterations > 0) {
      const auto warm_n = static_cast<double>(out.warm_iterations);
      out.warm_imbalanced_fraction = static_cast<double>(imbalanced_warm) / warm_n;
      out.mean_gap_s /= warm_n;
      out.mean_gap_frac /= warm_n;
      const auto slowest = std::max_element(
          slowest_counts.begin(), slowest_counts.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      out.straggler_node = slowest->first;
      out.straggler_share = static_cast<double>(slowest->second) / warm_n;
      out.straggler_index = out.straggler_share * static_cast<double>(out.nodes);
    } else {
      out.mean_gap_s = out.mean_gap_frac = 0.0;
    }
    if (samples_all > 0) {
      out.local_hit_ratio =
          static_cast<double>(hits_local_all) / static_cast<double>(samples_all);
    }
    for (const auto& [node, totals] : out.per_node) {
      out.cluster.load_s += totals.load_s;
      out.cluster.preproc_s += totals.preproc_s;
      out.cluster.train_s += totals.train_s;
      out.cluster.idle_s += totals.idle_s;
      out.cluster.iteration_s += totals.iteration_s;
      out.cluster.fetch_local_s += totals.fetch_local_s;
      out.cluster.fetch_ssd_s += totals.fetch_ssd_s;
      out.cluster.fetch_remote_s += totals.fetch_remote_s;
      out.cluster.fetch_pfs_s += totals.fetch_pfs_s;
      out.cluster.hits_local += totals.hits_local;
      out.cluster.hits_ssd += totals.hits_ssd;
      out.cluster.hits_remote += totals.hits_remote;
      out.cluster.miss_pfs += totals.miss_pfs;
    }
    out.cluster.iterations = out.warm_iterations;

    // ---- 6. windowed tier hit ratios over the whole run
    const std::size_t window_count =
        std::min<std::size_t>(std::max<std::uint32_t>(options.tier_windows, 1), n);
    out.tier_windows.resize(window_count);
    for (std::size_t w = 0; w < window_count; ++w) {
      TierWindow& window = out.tier_windows[w];
      window.iter_lo = w * n / window_count;
      window.iter_hi = (w + 1) * n / window_count;
      for (std::size_t i = window.iter_lo; i < window.iter_hi; ++i) {
        for (const auto& [node, s] : series) {
          window.hits_local += s.hits_local[i];
          window.hits_ssd += s.hits_ssd[i];
          window.hits_remote += s.hits_remote[i];
          window.miss_pfs += s.miss_pfs[i];
        }
      }
    }

    analyses.push_back(std::move(out));
  }
  return analyses;
}

std::vector<std::pair<double, double>> wall_counter_series(const TraceLog& log,
                                                           const std::string& name) {
  std::vector<std::pair<double, double>> series;
  for (const auto& event : log.events) {
    if (event.pid == kWallPid && event.phase == 'C' && event.name == name) {
      series.emplace_back(event.ts_us, event.value);
    }
  }
  std::sort(series.begin(), series.end());
  return series;
}

std::vector<JobMetricsSummary> per_job_metrics(const MetricRegistry& registry) {
  constexpr std::string_view kPrefix = "cluster.job/";
  std::map<std::string, JobMetricsSummary> by_job;
  const auto slot = [&](std::string_view full) -> JobMetricsSummary* {
    const auto rest = full.substr(kPrefix.size());
    const auto slash = rest.find('/');
    if (slash == std::string_view::npos || slash == 0 || slash + 1 == rest.size()) return nullptr;
    auto& entry = by_job[std::string(rest.substr(0, slash))];
    if (entry.job.empty()) entry.job = std::string(rest.substr(0, slash));
    return &entry;
  };
  for (const auto& [name, value] : registry.counters_with_prefix(kPrefix)) {
    if (auto* entry = slot(name)) {
      entry->counters.emplace(name.substr(kPrefix.size() + entry->job.size() + 1), value);
    }
  }
  for (const auto& [name, value] : registry.gauges_with_prefix(kPrefix)) {
    if (auto* entry = slot(name)) {
      entry->gauges.emplace(name.substr(kPrefix.size() + entry->job.size() + 1), value);
    }
  }
  std::vector<JobMetricsSummary> out;
  out.reserve(by_job.size());
  for (auto& [job, summary] : by_job) out.push_back(std::move(summary));
  return out;
}

}  // namespace lobster::telemetry::analysis
