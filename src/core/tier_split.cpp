#include "core/tier_split.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lobster::core {

TierSplitResult optimize_tier_split(const storage::StorageModel& model,
                                    const storage::TierBytes& bytes,
                                    std::uint32_t total_threads,
                                    const storage::Contention& contention) {
  if (total_threads == 0) throw std::invalid_argument("optimize_tier_split: zero threads");

  TierSplitResult result;

  // Demanded tiers: local+SSD share the α bus; remote uses β; PFS uses γ.
  const bool needs_alpha = bytes.local > 0 || bytes.ssd > 0;
  const bool needs_beta = bytes.remote > 0;
  const bool needs_gamma = bytes.pfs > 0;
  const std::uint32_t demanded = (needs_alpha ? 1U : 0U) + (needs_beta ? 1U : 0U) +
                                 (needs_gamma ? 1U : 0U);

  // Feasible baseline: the grant divided as evenly as integer counts allow
  // across the demanded tiers (what a split-oblivious allocator with
  // dedicated per-tier workers would do). This split is inside the search
  // space below, so the optimum can never be worse than it.
  {
    storage::ThreadAlloc even{0.0, 0.0, 0.0};
    if (demanded > 0) {
      const std::uint32_t base = total_threads / demanded;
      std::uint32_t remainder = total_threads % demanded;
      auto grant = [&](bool needed) -> double {
        if (!needed) return 0.0;
        const std::uint32_t extra = remainder > 0 ? 1U : 0U;
        if (remainder > 0) --remainder;
        return static_cast<double>(base + extra);
      };
      even.alpha = grant(needs_alpha);
      even.beta = grant(needs_beta);
      even.gamma = grant(needs_gamma);
    } else {
      even.alpha = total_threads;
    }
    result.alloc = even;
    result.uniform_time = model.load_time(bytes, even, contention);
  }
  if (demanded <= 1 || total_threads < demanded) {
    // Nothing to split (or not enough threads to give each tier its own):
    // the uniform allocation is already optimal among feasible splits.
    result.load_time = result.uniform_time;
    ++result.evaluations;
    return result;
  }

  Seconds best = std::numeric_limits<Seconds>::infinity();
  storage::ThreadAlloc best_alloc = result.alloc;
  const std::uint32_t T = total_threads;
  for (std::uint32_t a = needs_alpha ? 1 : 0; a <= (needs_alpha ? T : 0); ++a) {
    const std::uint32_t rest = T - a;
    for (std::uint32_t b = needs_beta ? 1 : 0; b <= (needs_beta ? rest : 0); ++b) {
      const std::uint32_t g = rest - b;
      if (needs_gamma && g == 0) continue;
      if (!needs_gamma && g != 0) continue;
      storage::ThreadAlloc alloc;
      alloc.alpha = a;
      alloc.beta = b;
      alloc.gamma = g;
      const Seconds t = model.load_time(bytes, alloc, contention);
      ++result.evaluations;
      if (t < best) {
        best = t;
        best_alloc = alloc;
      }
      if (!needs_beta) break;  // b loop has a single feasible value (0)
    }
    if (!needs_alpha) break;
  }
  result.alloc = best_alloc;
  result.load_time = best;
  return result;
}

}  // namespace lobster::core
