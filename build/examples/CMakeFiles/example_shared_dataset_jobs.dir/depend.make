# Empty dependencies file for example_shared_dataset_jobs.
# This may be replaced when dependencies are built.
