#include "pipeline/trainer_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace lobster::pipeline {

namespace {
// Batch-32 per-iteration times on an A100-class GPU (mixed precision),
// calibrated from public MLPerf-style throughput numbers. Small models
// (ShuffleNet, SqueezeNet, ResNet32) train fast, which is exactly why the
// paper finds eviction matters more for them (Fig. 11): the loading stage
// has less training time to hide behind.
struct ModelEntry {
  const char* name;
  Seconds t_train;
};
constexpr ModelEntry kModels[] = {
    {"resnet50", 13.0e-3},  {"resnet32", 3.2e-3},  {"shufflenet", 4.6e-3},
    {"alexnet", 4.0e-3},    {"squeezenet", 5.2e-3}, {"vgg11", 24.0e-3},
};
}  // namespace

TrainerModel TrainerModel::by_name(const std::string& name) {
  for (const auto& entry : kModels) {
    if (name == entry.name) {
      TrainerModel model;
      model.name = entry.name;
      model.t_train = entry.t_train;
      return model;
    }
  }
  throw std::invalid_argument("TrainerModel: unknown model '" + name + "'");
}

const std::vector<std::string>& TrainerModel::benchmark_names() {
  static const std::vector<std::string> names = {"resnet50",  "resnet32",   "shufflenet",
                                                 "alexnet",   "squeezenet", "vgg11"};
  return names;
}

Seconds TrainerModel::iteration_time(std::uint64_t seed, IterId iter, NodeId node,
                                     GpuId gpu) const {
  Rng rng(derive_seed(seed, iter, static_cast<std::uint64_t>(node) << 16 | gpu, 0x7124A1ULL));
  const double jitter = std::clamp(rng.normal(1.0, jitter_sigma), 0.9, 1.1);
  return t_train * jitter;
}

}  // namespace lobster::pipeline
