#include "core/preproc_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"

namespace lobster::core {

PreprocGroundTruth::PreprocGroundTruth(Params params) : params_(params) {
  if (params_.peak_bps <= 0.0 || params_.knee_threads == 0) {
    throw std::invalid_argument("PreprocGroundTruth: bad params");
  }
}

double PreprocGroundTruth::throughput_bps(double threads) const noexcept {
  if (threads <= 0.0) return 0.0;
  if (threads <= static_cast<double>(params_.knee_threads)) {
    return params_.peak_bps * threads / static_cast<double>(params_.knee_threads);
  }
  const double over = threads - static_cast<double>(params_.knee_threads);
  const double declined = params_.peak_bps * (1.0 - params_.decline_per_thread * over);
  return std::max(declined, params_.peak_bps * params_.floor_fraction);
}

Seconds PreprocGroundTruth::time_per_sample(double threads, Bytes bytes) const noexcept {
  if (threads <= 0.0) return std::numeric_limits<Seconds>::infinity();
  return params_.per_sample_overhead + static_cast<double>(bytes) / throughput_bps(threads);
}

Seconds PreprocGroundTruth::measure_time_per_sample(std::uint32_t threads, Bytes bytes,
                                                    std::uint64_t seed) const {
  Rng rng(derive_seed(seed, threads, bytes));
  // Multiplicative measurement noise, ~3% sigma, clamped to stay positive.
  const double noise = std::clamp(rng.normal(1.0, 0.03), 0.85, 1.15);
  return time_per_sample(threads, bytes) * noise;
}

Seconds PreprocGroundTruth::batch_time(double threads, Bytes batch_bytes,
                                       std::uint32_t samples) const noexcept {
  if (threads <= 0.0) return std::numeric_limits<Seconds>::infinity();
  return static_cast<double>(samples) * params_.per_sample_overhead +
         static_cast<double>(batch_bytes) / throughput_bps(threads);
}

Seconds PreprocGroundTruth::gpu_batch_time(Bytes batch_bytes, std::uint32_t samples) const noexcept {
  // Kernel-launch overhead is far smaller than the CPU task overhead.
  return static_cast<double>(samples) * (params_.per_sample_overhead * 0.1) +
         static_cast<double>(batch_bytes) / params_.gpu_bps;
}

PreprocModelPortfolio::PreprocModelPortfolio(const PreprocGroundTruth& truth,
                                             std::vector<Bytes> reference_sizes,
                                             std::uint32_t max_threads, std::uint32_t repeats,
                                             std::uint64_t seed)
    : max_threads_(max_threads) {
  if (reference_sizes.empty() || max_threads_ == 0 || repeats == 0) {
    throw std::invalid_argument("PreprocModelPortfolio: bad args");
  }
  std::sort(reference_sizes.begin(), reference_sizes.end());
  for (const Bytes size : reference_sizes) {
    std::vector<double> xs;
    std::vector<double> ys;
    xs.reserve(max_threads_);
    ys.reserve(max_threads_);
    for (std::uint32_t t = 1; t <= max_threads_; ++t) {
      double sum = 0.0;
      for (std::uint32_t r = 0; r < repeats; ++r) {
        sum += truth.measure_time_per_sample(t, size, derive_seed(seed, size, t, r));
      }
      xs.push_back(static_cast<double>(t));
      ys.push_back(sum / static_cast<double>(repeats));
    }
    Entry entry;
    entry.reference_bytes = size;
    entry.model = fit_piecewise_linear(xs, ys, /*max_segments=*/4);
    entry.r2 = r_squared(entry.model, xs, ys);
    portfolio_.push_back(std::move(entry));
  }
}

const PreprocModelPortfolio::Entry& PreprocModelPortfolio::nearest(Bytes bytes) const {
  const Entry* best = &portfolio_.front();
  double best_gap = std::numeric_limits<double>::infinity();
  for (const auto& entry : portfolio_) {
    const double gap = std::abs(std::log(static_cast<double>(std::max<Bytes>(bytes, 1))) -
                                std::log(static_cast<double>(entry.reference_bytes)));
    if (gap < best_gap) {
      best_gap = gap;
      best = &entry;
    }
  }
  return *best;
}

Seconds PreprocModelPortfolio::predict_time_per_sample(double threads, Bytes bytes) const {
  const Entry& entry = nearest(bytes);
  const double base = entry.model.eval(std::max(threads, 0.25));
  // Rescale by the byte ratio: decode work is ~linear in encoded size.
  const double ratio = static_cast<double>(bytes) / static_cast<double>(entry.reference_bytes);
  return std::max(base * ratio, 0.0);
}

Seconds PreprocModelPortfolio::predict_batch_time(double threads, Bytes batch_bytes,
                                                  std::uint32_t samples) const {
  if (samples == 0) return 0.0;
  const Bytes mean = batch_bytes / samples;
  return predict_time_per_sample(threads, mean) * static_cast<double>(samples);
}

std::uint32_t PreprocModelPortfolio::optimal_threads(Bytes bytes, double tolerance) const {
  // Stage throughput (samples/s) with t threads is 1 / time-per-sample: the
  // model's time already reflects the aggregate (contended) bandwidth the t
  // workers achieve together.
  double best = 0.0;
  std::vector<double> throughput(max_threads_ + 1, 0.0);
  for (std::uint32_t t = 1; t <= max_threads_; ++t) {
    const Seconds per = predict_time_per_sample(t, bytes);
    throughput[t] = per > 0.0 ? 1.0 / per : 0.0;
    best = std::max(best, throughput[t]);
  }
  for (std::uint32_t t = 1; t <= max_threads_; ++t) {
    if (throughput[t] >= best * (1.0 - tolerance)) return t;
  }
  return max_threads_;
}

double PreprocModelPortfolio::fit_r_squared(Bytes bytes) const { return nearest(bytes).r2; }

}  // namespace lobster::core
