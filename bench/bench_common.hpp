// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/strfmt.hpp"
#include "common/table.hpp"

namespace lobster::bench {

/// Parses key=value CLI arguments. Every bench accepts `csv_dir=<path>` to
/// additionally dump each printed table as CSV.
inline Config parse_args(int argc, char** argv) {
  return Config::from_args(argc, argv);
}

inline void print_header(const std::string& title, const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

/// Prints the table and, when `csv_dir` is configured, also writes
/// `<csv_dir>/<name>.csv`.
inline void emit(const Config& config, const std::string& name, const Table& table) {
  std::printf("%s\n", table.render_text().c_str());
  const std::string csv_dir = config.get_string("csv_dir", "");
  if (csv_dir.empty()) return;
  std::filesystem::create_directories(csv_dir);
  const std::string path = csv_dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << table.render_csv();
  std::printf("(csv written to %s)\n\n", path.c_str());
}

inline void warn_unconsumed(const Config& config) {
  (void)config.get_string("csv_dir", "");  // always legal
  for (const auto& key : config.unconsumed()) {
    std::fprintf(stderr, "warning: unknown option '%s'\n", key.c_str());
  }
}

}  // namespace lobster::bench
