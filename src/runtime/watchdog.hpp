// Iteration watchdog (DESIGN.md §9 "Recovery model").
//
// A slow-but-not-dead failure (a peer stuck in retry storms, a saturated
// PFS detour, a livelocked drain) does not trip any breaker — every call
// eventually succeeds, the run just silently stops making progress. The
// watchdog turns that into a visible signal: the executor brackets every
// iteration with begin_iteration()/end_iteration(), and a deadline thread
// flags any iteration whose wall-clock duration exceeds
// multiplier × the trailing-median iteration time (floored at
// min_deadline so cold-start jitter never false-positives).
//
// A stall bumps the `executor.iteration_stalls` telemetry counter — which
// the Monitor heartbeat surfaces as the `iteration_stalled` anomaly flag —
// and is counted in stalls(). The watchdog never intervenes (no cancel, no
// kill): detection is its whole job, the operator or harness decides.
//
// Thread-safety: begin/end must come from one thread (the executor's run
// loop); stalls()/armed() are safe from anywhere.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace lobster::runtime {

struct WatchdogConfig {
  /// An iteration is stalled once it runs longer than
  /// multiplier × trailing-median duration.
  double multiplier = 4.0;
  /// Deadline floor: protects the first iterations (empty history) and
  /// micro-benchmarks whose median is so small that scheduler noise alone
  /// would cross the multiplier.
  Seconds min_deadline = 0.05;
  /// Trailing iterations the median is computed over.
  std::size_t window = 32;
};

class IterationWatchdog {
 public:
  explicit IterationWatchdog(WatchdogConfig config = {});
  ~IterationWatchdog();

  IterationWatchdog(const IterationWatchdog&) = delete;
  IterationWatchdog& operator=(const IterationWatchdog&) = delete;

  /// Starts the deadline thread (idempotent).
  void start();

  /// Stops the deadline thread (idempotent); pending arm is cleared.
  void stop();

  /// Arms the deadline for iteration `iter`, starting the clock now.
  /// No-op while paused (a checkpoint/restore stretch is not an iteration).
  void begin_iteration(IterId iter);

  /// Disarms and records the iteration's duration into the trailing window.
  void end_iteration();

  /// Suspends stall detection across a checkpoint/restore pause (DESIGN.md
  /// §13): the in-flight deadline is disarmed WITHOUT recording its
  /// duration — a preemption stretch must neither fire a spurious
  /// `executor.iteration_stalls` (and its flight-recorder bundle) nor
  /// pollute the trailing median the future deadlines derive from.
  /// Nestable: resume() must be called once per pause().
  void pause();
  void resume();
  bool paused() const;

  /// Iterations flagged as stalled so far (each flagged at most once).
  std::uint64_t stalls() const noexcept { return stalls_.load(std::memory_order_relaxed); }

  /// Invoked from the deadline thread each time an iteration is flagged,
  /// with the iteration id and the deadline it blew through. The flight
  /// recorder hangs its incident trigger here. Runs OUTSIDE the watchdog
  /// lock (the callback may be slow — it dumps files); set before start().
  void set_on_stall(std::function<void(IterId, Seconds)> callback) {
    on_stall_ = std::move(callback);
  }

  /// The deadline the *next* begin_iteration() would arm (for tests).
  Seconds next_deadline() const;

 private:
  using Clock = std::chrono::steady_clock;

  Seconds trailing_median_locked() const;
  Seconds deadline_locked() const;
  void watch_loop(const std::stop_token& token);

  WatchdogConfig config_;
  std::function<void(IterId, Seconds)> on_stall_;

  mutable std::mutex mutex_;
  std::condition_variable_any cv_;
  std::vector<Seconds> window_;   // ring buffer of recent durations
  std::size_t window_next_ = 0;
  bool armed_ = false;
  bool flagged_ = false;          // current iteration already counted
  std::uint32_t pause_depth_ = 0;
  IterId iter_ = 0;
  Clock::time_point started_{};
  Seconds deadline_s_ = 0.0;
  bool running_ = false;

  std::atomic<std::uint64_t> stalls_{0};
  std::jthread thread_;
};

/// RAII pause bracket: `WatchdogPause guard(watchdog);` around a
/// checkpoint/restore stretch. Null watchdog is a no-op, so call sites
/// need no wiring checks.
class WatchdogPause {
 public:
  explicit WatchdogPause(IterationWatchdog* watchdog) : watchdog_(watchdog) {
    if (watchdog_ != nullptr) watchdog_->pause();
  }
  ~WatchdogPause() {
    if (watchdog_ != nullptr) watchdog_->resume();
  }
  WatchdogPause(const WatchdogPause&) = delete;
  WatchdogPause& operator=(const WatchdogPause&) = delete;

 private:
  IterationWatchdog* watchdog_;
};

}  // namespace lobster::runtime
