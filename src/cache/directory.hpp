// Distributed cache directory: which nodes hold which samples.
//
// The paper's distributed cache lets a node fetch a sample from a peer's
// cache instead of the PFS (§2). The directory is the global residency map
// every node can consult (deterministic prefetching makes residency a
// global property, §4.4). The reuse-count eviction policy also needs it:
// a node must not evict the *last* cached copy in the group if the sample
// is still needed by anyone (§4.4).
//
// Failure handling (DESIGN.md §9): a node that stops answering can be taken
// out of routing two ways. mark_node_down() flips an atomic down-mask —
// lock-free, callable from any executor worker mid-iteration — after which
// every routing query (peer_holder / held_elsewhere / sole_holder) skips
// that node while the residency map itself stays untouched. drop_node()
// additionally removes the node's entries from the map and returns the
// samples it was the last holder of (now orphaned to the PFS).
//
// Multi-tenancy (DESIGN.md §10): the directory treats SampleId as opaque,
// so namespaced keys (cache/namespace.hpp — dataset namespace packed into
// the high bits) index it directly. One directory therefore serves every
// job of a shared cluster at once; two jobs over the same dataset share
// keys, and with them each other's recorded residency.
//
// Thread-safety: fully thread-safe. Routing queries take a shared lock on
// the residency map; mutations (add / remove / drop_node) take it
// exclusively, so the self-healing layer (RecoveryManager replaying a
// revived node's inventory, background re-replication re-adding entries)
// can run concurrently with executor workers routing remote misses. The
// down-mask stays a lock-free atomic on top.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace lobster::cache {

class CacheDirectory {
 public:
  explicit CacheDirectory(std::uint16_t nodes);

  void add(SampleId sample, NodeId node);
  void remove(SampleId sample, NodeId node);

  /// Number of nodes currently caching the sample (down nodes included —
  /// residency is what is physically cached, not what is reachable).
  std::uint32_t holder_count(SampleId sample) const;

  /// True if `node` holds the sample.
  bool holds(SampleId sample, NodeId node) const;

  /// True if some *reachable* node other than `node` holds the sample.
  bool held_elsewhere(SampleId sample, NodeId node) const;

  /// True if `node` is the only reachable holder.
  bool sole_holder(SampleId sample, NodeId node) const;

  /// Any reachable holder other than `node` (for remote fetch routing);
  /// returns the lowest-ranked holder for determinism. kInvalidNode if none.
  static constexpr NodeId kInvalidNode = static_cast<NodeId>(~0U);
  NodeId peer_holder(SampleId sample, NodeId node) const;

  /// As peer_holder, but additionally skips every node whose bit is set in
  /// `exclude_mask`. The corruption-quarantine path uses this to route a
  /// retry to the *next* holder after a peer served a bad payload, without
  /// declaring that peer dead for everyone.
  NodeId peer_holder(SampleId sample, NodeId node, std::uint64_t exclude_mask) const;

  /// Marks `node` unreachable for routing. Lock-free; safe to call from
  /// concurrent executor workers while others are querying. Idempotent.
  void mark_node_down(NodeId node);

  /// Clears a down mark (peer recovered / rejoined).
  void revive_node(NodeId node);

  bool node_down(NodeId node) const;

  /// Number of nodes currently marked down.
  std::uint32_t down_count() const;

  /// Removes every directory entry held by `node` and marks it down.
  /// Returns the samples for which `node` was the last holder — those now
  /// exist only on the PFS until the re-replication pass re-homes them.
  std::vector<SampleId> drop_node(NodeId node);

  /// Samples whose *only* holder (up or down) is `node`. While that node is
  /// down every fetch of these detours to the PFS — the re-replication pass
  /// walks this list to restore cache locality.
  std::vector<SampleId> sole_holder_samples(NodeId node) const;

  std::uint16_t nodes() const noexcept { return nodes_; }
  std::size_t tracked_samples() const;

 private:
  std::uint64_t up_mask() const noexcept {
    return ~down_mask_.load(std::memory_order_acquire);
  }

  std::uint16_t nodes_;
  // Guards holders_ (shared for queries, exclusive for mutation).
  mutable std::shared_mutex map_mutex_;
  // Bitmask of holder nodes per sample (nodes <= 64 in every experiment;
  // checked in the constructor).
  std::unordered_map<SampleId, std::uint64_t> holders_;
  // Bit i set => node i is down (excluded from routing queries).
  std::atomic<std::uint64_t> down_mask_{0};
};

}  // namespace lobster::cache
