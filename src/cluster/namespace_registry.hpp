// Dataset-namespace registry: which KV namespace a job's keys live in.
//
// Namespaces are minted per *dataset identity* (fingerprint of the spec +
// seed), refcounted by the jobs using them. Two jobs over the same dataset
// acquire the same namespace — so their keys collide on purpose and a
// sample staged by one is a KV hit for the other (CoorDL-style cross-job
// dedup). The last release of a namespace frees its id for reuse; the
// caller is expected to drop the namespace's KV entries at that point
// (KvStore::erase_namespace) so a later unrelated dataset can't alias
// stale payloads.
//
// Thread-safe: acquire/release take a mutex; the cluster driver calls them
// at admission/finish, never on a per-sample path.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cache/namespace.hpp"

namespace lobster::cluster {

class NamespaceRegistry {
 public:
  NamespaceRegistry() = default;

  NamespaceRegistry(const NamespaceRegistry&) = delete;
  NamespaceRegistry& operator=(const NamespaceRegistry&) = delete;

  /// Namespace for the dataset identified by `fingerprint`, minting a fresh
  /// id (>= 1; 0 stays the single-job default) on first use and bumping the
  /// refcount otherwise. Throws when all 255 namespace ids are live.
  cache::NamespaceId acquire(std::uint64_t fingerprint);

  /// Drops one reference. Returns true when this was the last reference —
  /// the namespace id is recycled and the caller should erase its KV
  /// entries. Throws on a namespace that is not live.
  bool release(cache::NamespaceId ns);

  /// True while at least two jobs hold the namespace (dedup is active).
  bool shared(cache::NamespaceId ns) const;

  std::uint32_t refcount(cache::NamespaceId ns) const;
  std::size_t live_namespaces() const;

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::uint32_t refs = 0;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, cache::NamespaceId> by_fingerprint_;
  std::unordered_map<cache::NamespaceId, Entry> live_;
  std::vector<cache::NamespaceId> free_ids_;
  cache::NamespaceId next_fresh_ = 1;
};

}  // namespace lobster::cluster
