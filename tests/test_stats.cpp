// Statistics: Welford accumulators vs direct formulas, merge correctness,
// exact percentiles, histogram binning and rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace lobster {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0U);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1U);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
  EXPECT_EQ(stats.sum(), 5.0);
}

class RunningStatsRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RunningStatsRandom, MatchesDirectComputation) {
  Rng rng(GetParam());
  std::vector<double> values;
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 7.0);
    values.push_back(v);
    stats.add(v);
  }
  const double mean = std::accumulate(values.begin(), values.end(), 0.0) / values.size();
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-6);
  EXPECT_EQ(stats.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(stats.max(), *std::max_element(values.begin(), values.end()));
}

TEST_P(RunningStatsRandom, MergeEqualsConcatenation) {
  Rng rng(derive_seed(GetParam(), 1));
  RunningStats left;
  RunningStats right;
  RunningStats whole;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-10.0, 10.0);
    left.add(v);
    whole.add(v);
  }
  for (int i = 0; i < 300; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    right.add(v);
    whole.add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunningStatsRandom, ::testing::Values(1ULL, 2ULL, 3ULL, 99ULL));

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2U);
  EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(Series, PercentileEdgeCases) {
  Series series;
  EXPECT_EQ(series.percentile(50), 0.0);
  series.add(10.0);
  EXPECT_EQ(series.percentile(0), 10.0);
  EXPECT_EQ(series.percentile(100), 10.0);
  EXPECT_EQ(series.percentile(50), 10.0);
}

TEST(Series, PercentilesOfKnownSequence) {
  Series series;
  for (int i = 1; i <= 100; ++i) series.add(i);
  EXPECT_DOUBLE_EQ(series.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(series.percentile(100), 100.0);
  EXPECT_NEAR(series.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(series.percentile(25), 25.75, 1e-9);
  EXPECT_NEAR(series.percentile(99), 99.01, 1e-9);
}

TEST(Series, PercentileCacheInvalidatedOnAdd) {
  Series series;
  series.add(1.0);
  series.add(2.0);
  EXPECT_NEAR(series.percentile(100), 2.0, 1e-12);
  series.add(10.0);
  EXPECT_NEAR(series.percentile(100), 10.0, 1e-12);
}

TEST(Series, MomentsAreConsistent) {
  Series series;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) series.add(v);
  EXPECT_DOUBLE_EQ(series.mean(), 5.0);
  EXPECT_NEAR(series.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_EQ(series.min(), 2.0);
  EXPECT_EQ(series.max(), 9.0);
  EXPECT_EQ(series.sum(), 40.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndClamps) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(-5.0);   // clamps to bin 0
  hist.add(0.5);    // bin 0
  hist.add(9.99);   // bin 9
  hist.add(100.0);  // clamps to bin 9
  hist.add(5.0);    // bin 5
  EXPECT_EQ(hist.total(), 5U);
  EXPECT_EQ(hist.bin_count(0), 2U);
  EXPECT_EQ(hist.bin_count(5), 1U);
  EXPECT_EQ(hist.bin_count(9), 2U);
}

TEST(Histogram, FractionAbove) {
  Histogram hist(0.0, 100.0, 10);
  for (int i = 0; i < 80; ++i) hist.add(5.0);
  for (int i = 0; i < 20; ++i) hist.add(95.0);
  EXPECT_NEAR(hist.fraction_above(90.0), 0.2, 1e-12);
  EXPECT_NEAR(hist.fraction_above(0.0), 1.0, 1e-12);
}

TEST(Histogram, RenderContainsEveryBin) {
  Histogram hist(0.0, 4.0, 4);
  hist.add(1.0);
  const std::string out = hist.render();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Log2Histogram, BucketBoundaries) {
  Log2Histogram hist;
  EXPECT_EQ(hist.bucket_lo(0), 0U);
  EXPECT_EQ(hist.bucket_lo(1), 1U);
  EXPECT_EQ(hist.bucket_lo(2), 2U);
  EXPECT_EQ(hist.bucket_lo(3), 4U);
  EXPECT_EQ(hist.bucket_lo(11), 1024U);
}

TEST(Log2Histogram, CountsAndFraction) {
  Log2Histogram hist;
  hist.add(0);
  hist.add(1);
  hist.add(2);
  hist.add(1500);
  hist.add(3000);
  EXPECT_EQ(hist.total(), 5U);
  EXPECT_NEAR(hist.fraction_above(1000), 0.4, 1e-12);
  EXPECT_NEAR(hist.fraction_above(0), 0.8, 1e-12);
}

}  // namespace
}  // namespace lobster
