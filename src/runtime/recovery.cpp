#include "runtime/recovery.hpp"

#include <chrono>
#include <utility>

#include "common/logging.hpp"
#include "telemetry/events.hpp"
#include "telemetry/registry.hpp"

namespace lobster::runtime {

RecoveryManager::RecoveryManager(cache::CacheDirectory& directory, DistributionManager& manager,
                                 std::function<Bytes(SampleId)> sample_size,
                                 RecoveryPolicy policy)
    : directory_(directory),
      manager_(manager),
      sample_size_(std::move(sample_size)),
      policy_(policy) {}

RecoveryManager::~RecoveryManager() { stop(); }

void RecoveryManager::start() {
  {
    const std::scoped_lock lock(mutex_);
    if (running_) return;
    running_ = true;
  }
  thread_ = std::jthread([this](const std::stop_token& token) {
    std::unique_lock lock(mutex_);
    while (!token.stop_requested()) {
      const auto interval = std::chrono::duration<double>(policy_.poll_interval);
      cv_.wait_for(lock, token, interval, [this] { return nudged_; });
      nudged_ = false;
      if (token.stop_requested()) break;
      lock.unlock();
      poll_once();
      lock.lock();
    }
  });
}

void RecoveryManager::stop() {
  {
    const std::scoped_lock lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  thread_.request_stop();
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (replication_future_.valid()) replication_future_.wait();
}

void RecoveryManager::note_orphans(const std::vector<SampleId>& orphans) {
  const std::scoped_lock lock(mutex_);
  orphans_.insert(orphans.begin(), orphans.end());
}

void RecoveryManager::notify_peer(comm::Rank /*rank*/) {
  {
    const std::scoped_lock lock(mutex_);
    nudged_ = true;
  }
  cv_.notify_all();
}

bool RecoveryManager::try_rejoin(NodeId node) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  LOBSTER_METRIC_COUNT("recovery.probes", 1);
  auto inventory = manager_.fetch_inventory(static_cast<comm::Rank>(node));
  if (!inventory.ok()) return false;  // still dead (or reply was corrupt)

  // The peer answered with a verified inventory: bring it back. Revive
  // before the replay so replayed entries are immediately routable.
  directory_.revive_node(node);
  const auto samples = inventory.take();
  for (const SampleId sample : samples) directory_.add(sample, node);
  rejoins_.fetch_add(1, std::memory_order_relaxed);
  restored_.fetch_add(samples.size(), std::memory_order_relaxed);
  LOBSTER_METRIC_COUNT("recovery.rejoins", 1);
  LOBSTER_METRIC_COUNT("recovery.inventory_samples_restored", samples.size());
  telemetry::EventLog::instance().emit(telemetry::EventKind::kNodeRejoin, node,
                                       samples.size());
  log::warn("recovery: node %u rejoined, %zu residency entries replayed",
            static_cast<unsigned>(node), samples.size());
  return true;
}

void RecoveryManager::schedule_replication() {
  if (kv_store_ == nullptr) return;
  // One batch in flight at a time: a slow KV store back-pressures the pass
  // instead of queueing unbounded work.
  if (replication_future_.valid() &&
      replication_future_.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    return;
  }

  std::vector<SampleId> batch;
  batch.reserve(policy_.max_replications_per_poll);
  {
    const std::scoped_lock lock(mutex_);
    for (auto it = orphans_.begin();
         it != orphans_.end() && batch.size() < policy_.max_replications_per_poll;) {
      batch.push_back(*it);
      it = orphans_.erase(it);
    }
  }
  // Samples whose only holder is still down detour to the PFS on every
  // fetch until re-homed; top the batch up with them. Already-published
  // ones are skipped inside replicate_batch, so this converges.
  for (NodeId node = 0; node < directory_.nodes(); ++node) {
    if (batch.size() >= policy_.max_replications_per_poll) break;
    if (!directory_.node_down(node)) continue;
    for (const SampleId sample : directory_.sole_holder_samples(node)) {
      if (batch.size() >= policy_.max_replications_per_poll) break;
      batch.push_back(sample);
    }
  }
  if (batch.empty()) return;

  if (pool_ != nullptr) {
    replication_future_ =
        pool_->submit([this, moved = std::move(batch)] { replicate_batch(moved); });
  } else {
    replicate_batch(batch);
  }
}

void RecoveryManager::replicate_batch(const std::vector<SampleId>& batch) {
  std::uint64_t published = 0;
  for (const SampleId sample : batch) {
    if (kv_store_->get(sample).ok()) continue;  // someone already re-homed it
    const Bytes size = sample_size_ ? sample_size_(sample) : 0;
    if (size == 0) continue;
    if (kv_store_->put(sample, make_sample_payload(sample, size)).ok()) ++published;
  }
  if (published > 0) {
    replicated_.fetch_add(published, std::memory_order_relaxed);
    LOBSTER_METRIC_COUNT("recovery.replicated_samples", published);
  }
}

bool RecoveryManager::poll_once() {
  bool any_rejoin = false;
  for (NodeId node = 0; node < directory_.nodes(); ++node) {
    if (directory_.node_down(node)) any_rejoin |= try_rejoin(node);
  }
  schedule_replication();
  return any_rejoin;
}

RecoveryStats RecoveryManager::stats() const {
  RecoveryStats stats;
  stats.probes = probes_.load(std::memory_order_relaxed);
  stats.rejoins = rejoins_.load(std::memory_order_relaxed);
  stats.inventory_samples_restored = restored_.load(std::memory_order_relaxed);
  stats.replicated_samples = replicated_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace lobster::runtime
