file(REMOVE_RECURSE
  "CMakeFiles/val_des_vs_analytic.dir/val_des_vs_analytic.cpp.o"
  "CMakeFiles/val_des_vs_analytic.dir/val_des_vs_analytic.cpp.o.d"
  "val_des_vs_analytic"
  "val_des_vs_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/val_des_vs_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
