#include "nn/model.hpp"

#include <numeric>
#include <stdexcept>

namespace lobster::nn {

Mlp::Mlp(std::size_t in_features, std::size_t hidden, std::size_t classes, std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0x313ACEULL));
  layer1_ = std::make_unique<Dense>(in_features, hidden, rng);
  layer2_ = std::make_unique<Dense>(hidden, classes, rng);
}

float Mlp::train_batch(const Matrix& features, const std::vector<std::uint32_t>& labels) {
  Matrix hidden = relu_.forward(layer1_->forward(features));
  Matrix logits = layer2_->forward(hidden);
  Matrix grad_logits;
  const float loss = SoftmaxCrossEntropy::loss_and_grad(logits, labels, grad_logits);
  Matrix grad_hidden = relu_.backward(layer2_->backward(grad_logits));
  layer1_->backward(grad_hidden);
  return loss;
}

Matrix Mlp::predict(const Matrix& features) {
  Matrix hidden = relu_.forward(layer1_->forward(features));
  return layer2_->forward(hidden);
}

void Mlp::apply_gradients(float learning_rate, float momentum, std::size_t batch_size) {
  layer1_->apply_gradients(learning_rate, momentum, batch_size);
  layer2_->apply_gradients(learning_rate, momentum, batch_size);
}

TrainingCurve train_data_parallel(const SyntheticTask& task, std::uint32_t dataset_samples,
                                  const DataParallelConfig& config) {
  if (config.replicas == 0) throw std::invalid_argument("train_data_parallel: no replicas");

  data::SamplerConfig sampler_config;
  sampler_config.num_samples = dataset_samples;
  sampler_config.nodes = 1;
  sampler_config.gpus_per_node = static_cast<std::uint16_t>(config.replicas);
  sampler_config.batch_size = config.batch_size;
  sampler_config.seed = config.sampler_seed;
  const data::EpochSampler sampler(sampler_config);

  // Data-parallel with synchronized updates: replicas share weights, so one
  // model + sequential per-replica gradient accumulation is numerically
  // identical to R replicas with an all-reduce. We keep a single model and
  // accumulate each replica's batch before stepping.
  Mlp model(task.features(), 64, task.classes(), config.model_seed);

  // Held-out evaluation ids beyond the training range.
  std::vector<SampleId> eval_ids(config.eval_samples);
  std::iota(eval_ids.begin(), eval_ids.end(), dataset_samples + 1000);
  const Matrix eval_features = task.batch_features(eval_ids);
  const auto eval_labels = task.batch_labels(eval_ids);

  TrainingCurve curve;
  const std::uint32_t I = sampler.iterations_per_epoch();
  for (std::uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    double loss_sum = 0.0;
    double train_correct = 0.0;
    std::uint64_t train_total = 0;
    for (std::uint32_t h = 0; h < I; ++h) {
      for (std::uint32_t r = 0; r < config.replicas; ++r) {
        const auto batch =
            sampler.minibatch(epoch, h, 0, static_cast<GpuId>(r));
        const Matrix features = task.batch_features(batch);
        const auto labels = task.batch_labels(batch);
        loss_sum += model.train_batch(features, labels);
        train_correct +=
            SoftmaxCrossEntropy::accuracy(model.predict(features), labels) *
            static_cast<double>(labels.size());
        train_total += labels.size();
      }
      model.apply_gradients(config.learning_rate, config.momentum,
                            static_cast<std::size_t>(config.batch_size) * config.replicas);
    }
    curve.loss.push_back(loss_sum / (static_cast<double>(I) * config.replicas));
    curve.train_accuracy.push_back(train_correct / static_cast<double>(train_total));
    curve.eval_accuracy.push_back(
        SoftmaxCrossEntropy::accuracy(model.predict(eval_features), eval_labels));
  }
  return curve;
}

}  // namespace lobster::nn
