#include "runtime/executor.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/strfmt.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace lobster::runtime {

PlanExecutor::PlanExecutor(ExecutorConfig config, const data::SampleCatalog& catalog,
                           const data::EpochSampler& sampler, const Plan& plan,
                           DistributionManager* manager)
    : config_(config), catalog_(catalog), sampler_(sampler), plan_(plan), manager_(manager) {
  if (plan_.empty()) throw std::invalid_argument("PlanExecutor: empty plan");
  if (config_.node >= plan_.cluster_nodes) {
    throw std::invalid_argument("PlanExecutor: node not covered by plan");
  }
}

bool PlanExecutor::has_sample(SampleId sample) const {
  const std::scoped_lock lock(store_mutex_);
  return store_.contains(sample);
}

std::unordered_set<SampleId> PlanExecutor::resident_samples() const {
  const std::scoped_lock lock(store_mutex_);
  return store_;
}

void PlanExecutor::execute_request(const LoadRequest& request, GpuAccounting& accounting,
                                   IterationExecution& stats) {
  (void)stats;
  const Bytes size = request.bytes;
  if (request.tier == FetchTier::kLocal) {
    accounting.local_bytes += size;
    ++accounting.local_hits;
    LOBSTER_TRACE_INSTANT(kExecutor, "fetch_local", size);
    LOBSTER_METRIC_COUNT("executor.local_bytes", size);
    return;
  }

  std::vector<std::byte> payload;
  bool remote_served = false;
  if (request.tier == FetchTier::kRemote && kv_store_ != nullptr) {
    if (auto fetched = kv_store_->get(request.sample)) {
      payload = std::move(*fetched);
      remote_served = true;
    }
  }
  if (!remote_served && request.tier == FetchTier::kRemote && manager_ != nullptr) {
    // Ask each peer in turn; the first holder answers.
    const auto world = plan_.cluster_nodes;
    for (comm::Rank peer = 0; peer < world && !remote_served; ++peer) {
      if (peer == config_.node) continue;
      if (auto fetched = manager_->fetch_remote(request.sample, peer)) {
        payload = std::move(*fetched);
        remote_served = true;
      }
    }
  }
  if (remote_served) {
    accounting.remote_bytes += size;
    ++accounting.remote_fetches;
    LOBSTER_TRACE_INSTANT(kExecutor, "fetch_remote", size);
    LOBSTER_METRIC_COUNT("executor.remote_bytes", size);
  } else {
    // PFS path: materialize the sample content locally.
    payload = make_sample_payload(request.sample, size);
    accounting.pfs_bytes += size;
    ++accounting.pfs_fetches;
    LOBSTER_TRACE_INSTANT(kExecutor, "fetch_pfs", size);
    LOBSTER_METRIC_COUNT("executor.pfs_bytes", size);
  }

  if (config_.verify_payloads && !verify_sample_payload(request.sample, payload)) {
    const std::scoped_lock lock(stats_mutex_);
    ++payload_failures_;
  }
  {
    const std::scoped_lock lock(store_mutex_);
    store_.insert(request.sample);
  }
  if (kv_store_ != nullptr && !remote_served) kv_store_->put(request.sample, std::move(payload));
}

ExecutionReport PlanExecutor::run() {
  LOBSTER_TRACE_SPAN_ARG(kExecutor, "executor.run", config_.node);
  ExecutionReport report;
  const std::uint16_t gpus = plan_.gpus_per_node;
  const std::uint32_t I = plan_.iterations_per_epoch;

  ThreadPool loading_pool(1);
  ThreadPool preproc_pool(1);

  for (const auto& iteration : plan_.iterations) {
    LOBSTER_TRACE_SPAN_ARG(kExecutor, "iteration", iteration.iter);
    const auto& node_plan = iteration.nodes.at(config_.node);
    const auto epoch = static_cast<std::uint32_t>(iteration.iter / I);
    const auto h = static_cast<std::uint32_t>(iteration.iter % I);

    IterationExecution stats;
    stats.iter = iteration.iter;

    // ---- enforce the plan's thread assignment
    const std::uint32_t load_threads_total = std::max<std::uint32_t>(
        1, std::accumulate(node_plan.load_threads.begin(), node_plan.load_threads.end(), 0U));
    {
      LOBSTER_TRACE_SPAN_ARG(kExecutor, "resize_pools", load_threads_total);
      loading_pool.resize(load_threads_total);
      preproc_pool.resize(std::max<std::uint32_t>(1, node_plan.preproc_threads));
      LOBSTER_TRACE_COUNTER(kPool, "load_pool_size", load_threads_total);
      LOBSTER_TRACE_COUNTER(kPool, "preproc_pool_size",
                            std::max<std::uint32_t>(1, node_plan.preproc_threads));
    }
    stats.load_pool_size = load_threads_total;
    stats.preproc_pool_size = std::max<std::uint32_t>(1, node_plan.preproc_threads);

    // ---- enqueue demand requests per GPU queue
    GpuRequestQueues queues(gpus, config_.queue_capacity);
    std::vector<GpuAccounting> accounting(gpus);
    std::unordered_set<SampleId> delivered;
    std::mutex delivered_mutex;

    {
      LOBSTER_TRACE_SPAN(kExecutor, "enqueue");
      for (GpuId g = 0; g < gpus; ++g) {
        for (const SampleId s : sampler_.minibatch(epoch, h, config_.node, g)) {
          LoadRequest request;
          request.sample = s;
          request.bytes = catalog_.sample_bytes(s);
          request.iter = iteration.iter;
          request.gpu = g;
          request.tier = has_sample(s) ? FetchTier::kLocal
                         : (manager_ != nullptr ? FetchTier::kRemote : FetchTier::kPfs);
          queues.push(g, request);
          ++stats.demand_requests;
        }
      }
    }
#if !defined(LOBSTER_TELEMETRY_DISABLED)
    // Sample the per-GPU queue depths at their peak (the §4.2 load signal).
    if (telemetry::active()) {
      auto& tracer = telemetry::Tracer::instance();
      const auto depths = queues.depths();
      for (GpuId g = 0; g < gpus; ++g) {
        tracer.counter_wall(telemetry::Category::kQueue,
                            tracer.intern(strf("queue_depth/gpu%u", g)),
                            static_cast<double>(depths[g]));
      }
    }
#endif

    // ---- drain queues with the planned per-queue thread counts. Each
    // worker accumulates privately and merges once, so workers sharing a
    // queue never race on the accounting.
    {
    LOBSTER_TRACE_SPAN_ARG(kExecutor, "drain", stats.demand_requests);
    std::mutex merge_mutex;
    std::uint64_t duplicates = 0;
    std::vector<std::future<void>> futures;
    for (GpuId g = 0; g < gpus; ++g) {
      const std::uint32_t per_queue =
          g < node_plan.load_threads.size() ? std::max<std::uint32_t>(node_plan.load_threads[g], 1)
                                            : 1;
      for (std::uint32_t t = 0; t < per_queue; ++t) {
        futures.push_back(loading_pool.submit([this, g, &queues, &accounting, &stats, &delivered,
                                               &delivered_mutex, &merge_mutex, &duplicates] {
          GpuAccounting local;
          std::uint64_t my_duplicates = 0;
          while (auto request = queues.try_pop(g)) {
            {
              const std::scoped_lock lock(delivered_mutex);
              if (!delivered.insert(request->sample).second) ++my_duplicates;
            }
            execute_request(*request, local, stats);
          }
          const std::scoped_lock lock(merge_mutex);
          duplicates += my_duplicates;
          accounting[g].local_bytes += local.local_bytes;
          accounting[g].remote_bytes += local.remote_bytes;
          accounting[g].pfs_bytes += local.pfs_bytes;
          accounting[g].local_hits += local.local_hits;
          accounting[g].remote_fetches += local.remote_fetches;
          accounting[g].pfs_fetches += local.pfs_fetches;
        }));
      }
    }
    for (auto& f : futures) f.get();
    report.duplicate_deliveries += duplicates;
    }

    // ---- preprocessing: one batch task per GPU on the preprocessing pool
    {
    LOBSTER_TRACE_SPAN(kExecutor, "preproc");
    std::vector<std::future<void>> preproc_futures;
    std::atomic<std::uint64_t> preproc_checksum{0};
    for (GpuId g = 0; g < gpus; ++g) {
      preproc_futures.push_back(preproc_pool.submit([g, &preproc_checksum] {
        // Token CPU work standing in for decode+augment.
        std::uint64_t acc = g;
        for (int i = 0; i < 256; ++i) acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
        preproc_checksum.fetch_add(acc, std::memory_order_relaxed);
      }));
    }
    for (auto& f : preproc_futures) f.get();
    }

    // ---- virtual-time accounting
    Seconds load_max = 0.0;
    Seconds preproc_max = 0.0;
    Bytes node_bytes = 0;
    for (GpuId g = 0; g < gpus; ++g) {
      const auto& acct = accounting[g];
      const double threads = g < node_plan.load_threads.size()
                                 ? std::max<std::uint32_t>(node_plan.load_threads[g], 1)
                                 : 1.0;
      const Seconds load = (static_cast<double>(acct.local_bytes) / config_.local_bps +
                            static_cast<double>(acct.remote_bytes) / config_.remote_bps +
                            static_cast<double>(acct.pfs_bytes) / config_.pfs_bps) /
                           threads;
      load_max = std::max(load_max, load);
      const Bytes gpu_bytes = acct.local_bytes + acct.remote_bytes + acct.pfs_bytes;
      node_bytes += gpu_bytes;
      const Seconds preproc =
          static_cast<double>(gpu_bytes) /
          (config_.preproc_bps * std::max<std::uint32_t>(node_plan.preproc_threads, 1));
      preproc_max = std::max(preproc_max, preproc);
      stats.local_hits += acct.local_hits;
      stats.remote_fetches += acct.remote_fetches;
      stats.pfs_fetches += acct.pfs_fetches;
    }
    stats.virtual_load = load_max;
    stats.virtual_preproc = preproc_max;
    stats.virtual_duration = std::max(config_.t_train, load_max + preproc_max);

    report.samples_delivered += stats.demand_requests;
    report.virtual_total += stats.virtual_duration;

    // ---- plan-driven cache maintenance
    LOBSTER_TRACE_SPAN_ARG(kExecutor, "cache_maintenance",
                           node_plan.evictions.size() + node_plan.prefetches.size());
    {
      const std::scoped_lock lock(store_mutex_);
      for (const SampleId s : node_plan.evictions) store_.erase(s);
      LOBSTER_METRIC_COUNT("executor.plan_evictions", node_plan.evictions.size());
    }
    for (const SampleId s : node_plan.prefetches) {
      LoadRequest request;
      request.sample = s;
      request.bytes = catalog_.sample_bytes(s);
      request.iter = iteration.iter;
      request.prefetch = true;
      request.tier = manager_ != nullptr ? FetchTier::kRemote : FetchTier::kPfs;
      GpuAccounting prefetch_acct;
      execute_request(request, prefetch_acct, stats);
      ++stats.prefetch_requests;
    }

    report.iterations.push_back(stats);
  }

  {
    const std::scoped_lock lock(stats_mutex_);
    report.payload_failures = payload_failures_;
  }
  LOBSTER_METRIC_COUNT("executor.samples_delivered", report.samples_delivered);
  return report;
}

}  // namespace lobster::runtime
