#include "data/oracle.hpp"

#include <algorithm>
#include <stdexcept>

namespace lobster::data {

FutureAccessOracle::FutureAccessOracle(const EpochSampler& sampler, std::uint32_t window_epochs)
    : sampler_(sampler), window_(window_epochs) {
  if (window_ == 0) throw std::invalid_argument("FutureAccessOracle: window must be >= 1");
  slots_.resize(static_cast<std::size_t>(sampler_.config().num_samples) * window_);
  build();
}

void FutureAccessOracle::build() {
  std::fill(slots_.begin(), slots_.end(), Access{});
  for (std::uint32_t k = 0; k < window_; ++k) index_epoch(first_epoch_ + k, k);
}

void FutureAccessOracle::index_epoch(std::uint32_t epoch, std::size_t slot) {
  const auto& config = sampler_.config();
  const std::uint32_t I = sampler_.iterations_per_epoch();
  const std::uint32_t world = sampler_.world_size();
  const auto& perm = sampler_.epoch_permutation(epoch);
  // Walk the permutation in shard order: position q of the permutation is
  // consumed by rank (q % world) at in-epoch iteration (q / world) / B.
  const std::uint64_t used = static_cast<std::uint64_t>(I) * config.batch_size * world;
  for (std::uint64_t q = 0; q < used; ++q) {
    const SampleId sample = perm[q];
    const auto rank = static_cast<std::uint32_t>(q % world);
    const auto shard_pos = static_cast<std::uint32_t>(q / world);
    const std::uint32_t h = shard_pos / config.batch_size;
    Access& entry = slots_[static_cast<std::size_t>(sample) * window_ + slot];
    entry.iter = sampler_.global_iter(epoch, h);
    entry.node = static_cast<NodeId>(rank / config.gpus_per_node);
    entry.gpu = static_cast<GpuId>(rank % config.gpus_per_node);
  }
}

void FutureAccessOracle::rebase(std::uint32_t first_epoch) {
  if (first_epoch == first_epoch_) return;
  if (first_epoch == first_epoch_ + 1 && window_ > 1) {
    // Common case: slide by one epoch — shift slots left, fill the last.
    const std::uint32_t samples = sampler_.config().num_samples;
    for (std::uint32_t s = 0; s < samples; ++s) {
      Access* row = &slots_[static_cast<std::size_t>(s) * window_];
      std::copy(row + 1, row + window_, row);
      row[window_ - 1] = Access{};
    }
    first_epoch_ = first_epoch;
    index_epoch(first_epoch_ + window_ - 1, window_ - 1);
    return;
  }
  first_epoch_ = first_epoch;
  build();
}

std::optional<Access> FutureAccessOracle::next_access(SampleId sample, IterId after) const {
  const Access* row = &slots_[static_cast<std::size_t>(sample) * window_];
  for (std::uint32_t k = 0; k < window_; ++k) {
    if (row[k].iter != kNeverIter && row[k].iter > after) return row[k];
  }
  return std::nullopt;
}

std::optional<Access> FutureAccessOracle::next_access_on_node(SampleId sample, NodeId node,
                                                              IterId after) const {
  const Access* row = &slots_[static_cast<std::size_t>(sample) * window_];
  for (std::uint32_t k = 0; k < window_; ++k) {
    if (row[k].iter != kNeverIter && row[k].iter > after && row[k].node == node) return row[k];
  }
  return std::nullopt;
}

IterId FutureAccessOracle::reuse_distance_on_node(SampleId sample, NodeId node, IterId now) const {
  const auto next = next_access_on_node(sample, node, now);
  return next ? next->iter - now : kNeverIter;
}

std::uint32_t FutureAccessOracle::remaining_uses_on_node(SampleId sample, NodeId node,
                                                         IterId after) const {
  const Access* row = &slots_[static_cast<std::size_t>(sample) * window_];
  std::uint32_t count = 0;
  for (std::uint32_t k = 0; k < window_; ++k) {
    if (row[k].iter != kNeverIter && row[k].iter > after && row[k].node == node) ++count;
  }
  return count;
}

bool FutureAccessOracle::needed_by_other_node(SampleId sample, NodeId node, IterId after) const {
  const Access* row = &slots_[static_cast<std::size_t>(sample) * window_];
  for (std::uint32_t k = 0; k < window_; ++k) {
    if (row[k].iter != kNeverIter && row[k].iter > after && row[k].node != node) return true;
  }
  return false;
}

std::vector<Access> FutureAccessOracle::accesses(SampleId sample) const {
  const Access* row = &slots_[static_cast<std::size_t>(sample) * window_];
  std::vector<Access> out;
  for (std::uint32_t k = 0; k < window_; ++k) {
    if (row[k].iter != kNeverIter) out.push_back(row[k]);
  }
  std::sort(out.begin(), out.end(), [](const Access& a, const Access& b) { return a.iter < b.iter; });
  return out;
}

MergedAccessOracle::MergedAccessOracle(std::vector<const AccessOracle*> members)
    : members_(std::move(members)) {
  if (members_.empty()) throw std::invalid_argument("MergedAccessOracle: no members");
  for (const auto* member : members_) {
    if (member == nullptr) throw std::invalid_argument("MergedAccessOracle: null member");
  }
}

std::optional<Access> MergedAccessOracle::next_access(SampleId sample, IterId after) const {
  std::optional<Access> best;
  for (const auto* member : members_) {
    const auto access = member->next_access(sample, after);
    if (access && (!best || access->iter < best->iter)) best = access;
  }
  return best;
}

std::optional<Access> MergedAccessOracle::next_access_on_node(SampleId sample, NodeId node,
                                                              IterId after) const {
  std::optional<Access> best;
  for (const auto* member : members_) {
    const auto access = member->next_access_on_node(sample, node, after);
    if (access && (!best || access->iter < best->iter)) best = access;
  }
  return best;
}

IterId MergedAccessOracle::reuse_distance_on_node(SampleId sample, NodeId node,
                                                  IterId now) const {
  const auto next = next_access_on_node(sample, node, now);
  return next ? next->iter - now : kNeverIter;
}

std::uint32_t MergedAccessOracle::remaining_uses_on_node(SampleId sample, NodeId node,
                                                         IterId after) const {
  std::uint32_t total = 0;
  for (const auto* member : members_) {
    total += member->remaining_uses_on_node(sample, node, after);
  }
  return total;
}

bool MergedAccessOracle::needed_by_other_node(SampleId sample, NodeId node, IterId after) const {
  for (const auto* member : members_) {
    if (member->needed_by_other_node(sample, node, after)) return true;
  }
  return false;
}

}  // namespace lobster::data
