#include "runtime/distribution_manager.hpp"

#include <cstring>

#include "common/rng.hpp"

namespace lobster::runtime {

namespace {

constexpr comm::Tag kFetchRequestTag = 0x0F00;
constexpr comm::Tag kResponseTagBase = 0x80000000;

struct FetchRequest {
  std::uint32_t request_id;
  SampleId sample;
};

struct ResponseHeader {
  SampleId sample;
  std::uint8_t found;
};

}  // namespace

std::vector<std::byte> make_sample_payload(SampleId sample, Bytes size) {
  std::vector<std::byte> payload(static_cast<std::size_t>(size));
  std::size_t pattern_start = 0;
  // Header authenticates both the id and the length, so truncated or padded
  // payloads fail verification (not just corrupted ones).
  if (payload.size() >= sizeof(SampleId)) {
    std::memcpy(payload.data(), &sample, sizeof(SampleId));
    pattern_start = sizeof(SampleId);
  }
  if (payload.size() >= sizeof(SampleId) + sizeof(std::uint64_t)) {
    const std::uint64_t length = size;
    std::memcpy(payload.data() + sizeof(SampleId), &length, sizeof(length));
    pattern_start = sizeof(SampleId) + sizeof(std::uint64_t);
  }
  // Keyed pattern: cheap to generate and to verify at any offset.
  std::uint64_t state = derive_seed(0xC0FFEEULL, sample);
  for (std::size_t i = pattern_start; i < payload.size(); ++i) {
    if (i % 8 == 0) state = splitmix64(state);
    payload[i] = static_cast<std::byte>((state >> ((i % 8) * 8)) & 0xFF);
  }
  return payload;
}

bool verify_sample_payload(SampleId sample, const std::vector<std::byte>& payload) {
  return payload == make_sample_payload(sample, payload.size());
}

DistributionManager::DistributionManager(comm::Endpoint& endpoint,
                                         std::function<bool(SampleId)> has_sample,
                                         std::function<Bytes(SampleId)> sample_size)
    : endpoint_(endpoint),
      has_sample_(std::move(has_sample)),
      sample_size_(std::move(sample_size)) {}

DistributionManager::~DistributionManager() { stop(); }

void DistributionManager::start() {
  if (running_.exchange(true)) return;
  server_ = std::jthread([this] { serve_loop(); });
}

void DistributionManager::stop() {
  if (!running_.exchange(false)) return;
  // Poison request to our own server loop so it observes running_ == false.
  FetchRequest poison{0, kInvalidSample};
  std::vector<std::byte> bytes(sizeof(poison));
  std::memcpy(bytes.data(), &poison, sizeof(poison));
  endpoint_.send(endpoint_.rank(), kFetchRequestTag, std::move(bytes));
  if (server_.joinable()) server_.join();
}

void DistributionManager::serve_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    auto message = endpoint_.recv(kFetchRequestTag);
    if (!message.has_value()) return;  // bus shutdown
    const auto request = comm::Endpoint::value_of<FetchRequest>(*message);
    if (request.sample == kInvalidSample) continue;  // poison; loop re-checks running_

    ResponseHeader header{request.sample, 0};
    std::vector<std::byte> response(sizeof(header));
    if (has_sample_ && has_sample_(request.sample)) {
      header.found = 1;
      const Bytes size = sample_size_ ? sample_size_(request.sample) : 64;
      auto payload = make_sample_payload(request.sample, size);
      response.resize(sizeof(header) + payload.size());
      std::memcpy(response.data() + sizeof(header), payload.data(), payload.size());
      ++served_;
    } else {
      ++failed_;
    }
    std::memcpy(response.data(), &header, sizeof(header));
    endpoint_.send(message->source, kResponseTagBase + request.request_id, std::move(response));
  }
}

std::optional<std::vector<std::byte>> DistributionManager::fetch_remote(SampleId sample,
                                                                        comm::Rank holder) {
  const std::uint32_t request_id = next_request_id_.fetch_add(1);
  FetchRequest request{request_id, sample};
  std::vector<std::byte> bytes(sizeof(request));
  std::memcpy(bytes.data(), &request, sizeof(request));
  if (!endpoint_.send(holder, kFetchRequestTag, std::move(bytes))) return std::nullopt;

  auto response = endpoint_.recv(kResponseTagBase + request_id);
  if (!response.has_value()) return std::nullopt;
  ResponseHeader header{};
  std::memcpy(&header, response->payload.data(),
              std::min(sizeof(header), response->payload.size()));
  if (header.found == 0) return std::nullopt;
  std::vector<std::byte> payload(response->payload.begin() + sizeof(header),
                                 response->payload.end());
  if (!verify_sample_payload(sample, payload)) return std::nullopt;
  return payload;
}

}  // namespace lobster::runtime
