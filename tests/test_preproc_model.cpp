// Preprocessing ground truth (Fig. 6 shape) and the piecewise regression
// portfolio (§4.1): fit quality, knee detection, size scaling.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/preproc_model.hpp"

namespace lobster::core {
namespace {

TEST(PreprocGroundTruth, ThroughputPeaksAtKnee) {
  PreprocGroundTruth truth;  // knee at 6 threads
  const double peak = truth.throughput_bps(6);
  EXPECT_DOUBLE_EQ(peak, truth.params().peak_bps);
  EXPECT_LT(truth.throughput_bps(3), peak);
  EXPECT_LE(truth.throughput_bps(12), peak);  // declines past the knee
  EXPECT_LT(truth.throughput_bps(20), truth.throughput_bps(7));
}

TEST(PreprocGroundTruth, ThroughputRampIsLinear) {
  PreprocGroundTruth truth;
  EXPECT_NEAR(truth.throughput_bps(3), truth.params().peak_bps * 0.5, 1e-6);
  EXPECT_NEAR(truth.throughput_bps(1.5), truth.params().peak_bps * 0.25, 1e-6);
}

TEST(PreprocGroundTruth, DeclineRespectsFloor) {
  PreprocGroundTruth::Params params;
  params.decline_per_thread = 0.1;
  params.floor_fraction = 0.7;
  const PreprocGroundTruth truth(params);
  EXPECT_NEAR(truth.throughput_bps(1000), params.peak_bps * 0.7, 1e-6);
}

TEST(PreprocGroundTruth, TimePerSampleHasFixedOverhead) {
  PreprocGroundTruth truth;
  const Seconds tiny = truth.time_per_sample(6, 1);
  EXPECT_GE(tiny, truth.params().per_sample_overhead);
}

TEST(PreprocGroundTruth, ZeroThreadsIsInfinite) {
  PreprocGroundTruth truth;
  EXPECT_TRUE(std::isinf(truth.time_per_sample(0, 1000)));
  EXPECT_TRUE(std::isinf(truth.batch_time(0, 1000, 10)));
}

TEST(PreprocGroundTruth, MeasurementNoiseIsDeterministicAndBounded) {
  PreprocGroundTruth truth;
  const Seconds a = truth.measure_time_per_sample(4, 100'000, 7);
  const Seconds b = truth.measure_time_per_sample(4, 100'000, 7);
  EXPECT_EQ(a, b);
  const Seconds ideal = truth.time_per_sample(4, 100'000);
  EXPECT_GT(a, ideal * 0.84);
  EXPECT_LT(a, ideal * 1.16);
}

TEST(PreprocGroundTruth, RejectsBadParams) {
  PreprocGroundTruth::Params bad_peak;
  bad_peak.peak_bps = 0.0;
  EXPECT_THROW(PreprocGroundTruth{bad_peak}, std::invalid_argument);
  PreprocGroundTruth::Params bad_knee;
  bad_knee.knee_threads = 0;
  EXPECT_THROW(PreprocGroundTruth{bad_knee}, std::invalid_argument);
}

PreprocModelPortfolio make_portfolio(std::uint32_t max_threads = 16) {
  const PreprocGroundTruth truth;
  return PreprocModelPortfolio(truth, {50'000, 100'000, 200'000}, max_threads, 3, 42);
}

TEST(PreprocModelPortfolio, FitsGroundTruthWell) {
  const auto portfolio = make_portfolio();
  EXPECT_EQ(portfolio.models(), 3U);
  for (const Bytes size : {50'000ULL, 100'000ULL, 200'000ULL}) {
    EXPECT_GT(portfolio.fit_r_squared(size), 0.95) << "size " << size;
  }
}

TEST(PreprocModelPortfolio, PredictionsTrackGroundTruth) {
  const PreprocGroundTruth truth;
  const auto portfolio = make_portfolio();
  for (std::uint32_t threads = 1; threads <= 16; ++threads) {
    const Seconds predicted = portfolio.predict_time_per_sample(threads, 100'000);
    const Seconds actual = truth.time_per_sample(threads, 100'000);
    EXPECT_NEAR(predicted, actual, actual * 0.15) << "threads " << threads;
  }
}

TEST(PreprocModelPortfolio, ClosestSizeModelChosenAndRescaled) {
  const PreprocGroundTruth truth;
  const auto portfolio = make_portfolio();
  // 90 KB is nearest the 100 KB reference; prediction rescales by 0.9.
  const Seconds p90 = portfolio.predict_time_per_sample(6, 90'000);
  const Seconds p100 = portfolio.predict_time_per_sample(6, 100'000);
  EXPECT_NEAR(p90 / p100, 0.9, 1e-9);
}

TEST(PreprocModelPortfolio, OptimalThreadsNearTrueKnee) {
  const auto portfolio = make_portfolio();
  const auto knee = portfolio.optimal_threads(100'000);
  EXPECT_GE(knee, 4U);
  EXPECT_LE(knee, 8U);  // true knee is 6; the fitted model may be off by ~2
}

TEST(PreprocModelPortfolio, OptimalThreadsIsMinimalWithinTolerance) {
  const auto portfolio = make_portfolio();
  // Huge tolerance -> fewest threads acceptable.
  EXPECT_EQ(portfolio.optimal_threads(100'000, 0.99), 1U);
}

TEST(PreprocModelPortfolio, BatchTimeScalesWithSamples) {
  const auto portfolio = make_portfolio();
  const Seconds one = portfolio.predict_batch_time(6, 100'000, 1);
  const Seconds ten = portfolio.predict_batch_time(6, 1'000'000, 10);
  EXPECT_NEAR(ten, one * 10.0, one * 0.5);
  EXPECT_EQ(portfolio.predict_batch_time(6, 0, 0), 0.0);
}

TEST(PreprocModelPortfolio, RejectsBadConstruction) {
  const PreprocGroundTruth truth;
  EXPECT_THROW(PreprocModelPortfolio(truth, {}, 8, 3, 1), std::invalid_argument);
  EXPECT_THROW(PreprocModelPortfolio(truth, {1000}, 0, 3, 1), std::invalid_argument);
  EXPECT_THROW(PreprocModelPortfolio(truth, {1000}, 8, 0, 1), std::invalid_argument);
}

TEST(PreprocModelPortfolio, DeterministicInSeed) {
  const PreprocGroundTruth truth;
  const PreprocModelPortfolio a(truth, {100'000}, 8, 3, 9);
  const PreprocModelPortfolio b(truth, {100'000}, 8, 3, 9);
  for (std::uint32_t t = 1; t <= 8; ++t) {
    EXPECT_EQ(a.predict_time_per_sample(t, 100'000), b.predict_time_per_sample(t, 100'000));
  }
}

}  // namespace
}  // namespace lobster::core
