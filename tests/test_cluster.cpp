// Multi-tenant cluster runtime (DESIGN.md §10): job scheduler lifecycle and
// policies, dataset-namespace dedup, the cross-job KV budget arbiter
// (imminence-protected eviction, shrinking budgets), fairness telemetry,
// the JobWindowOracle timeline lift, and a small end-to-end cluster run.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "cache/directory.hpp"
#include "cache/kv_store.hpp"
#include "cache/namespace.hpp"
#include "cluster/budget_arbiter.hpp"
#include "cluster/cluster_runtime.hpp"
#include "cluster/fairness.hpp"
#include "cluster/job.hpp"
#include "cluster/namespace_registry.hpp"
#include "cluster/scheduler.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace lobster::cluster {
namespace {

JobSpec small_spec(std::string name, std::uint16_t nodes, std::uint64_t dataset_seed = 42) {
  JobSpec spec;
  spec.name = std::move(name);
  spec.nodes = nodes;
  spec.gpus_per_node = 2;
  spec.batch_size = 4;
  spec.epochs = 2;
  spec.dataset = data::DatasetSpec::uniform(256, 4096, "cluster-test");
  spec.dataset_seed = dataset_seed;
  return spec;
}

cache::KvStore::PayloadPtr payload(Bytes bytes) {
  return std::make_shared<std::vector<std::byte>>(bytes);
}

// ---------------------------------------------------------------------------
// JobManager: lifecycle and policies
// ---------------------------------------------------------------------------

TEST(JobManager, LifecycleAssignsContiguousBlocksAndFreesThem) {
  JobManager manager(8, SchedulerPolicy::kFifo);
  const JobId a = manager.submit(small_spec("a", 5), 0);
  const JobId b = manager.submit(small_spec("b", 3), 0);

  const auto admitted = manager.admit(0);
  ASSERT_EQ(admitted.size(), 2u);
  EXPECT_EQ(manager.record(a).state, JobState::kRunning);
  EXPECT_EQ(manager.record(b).state, JobState::kRunning);
  EXPECT_EQ(manager.record(a).block.first, 0u);
  EXPECT_EQ(manager.record(a).block.count, 5u);
  EXPECT_EQ(manager.record(b).block.first, 5u);
  EXPECT_EQ(manager.free_nodes(), 0u);

  manager.finish(a, 4);
  EXPECT_EQ(manager.record(a).state, JobState::kFinished);
  EXPECT_EQ(manager.record(a).finish_round, 4u);
  EXPECT_EQ(manager.free_nodes(), 5u);
  // Double-finish (and finishing a queued job) is a contract violation.
  EXPECT_THROW(manager.finish(a, 5), std::logic_error);
}

TEST(JobManager, ImpossibleSpecIsRejectedNotQueued) {
  JobManager manager(4, SchedulerPolicy::kFairShare);
  const JobId wide = manager.submit(small_spec("wide", 5), 0);
  EXPECT_EQ(manager.record(wide).state, JobState::kRejected);
  EXPECT_TRUE(manager.admit(0).empty());
}

TEST(JobManager, FifoBlocksBehindHeadOfLine) {
  JobManager manager(8, SchedulerPolicy::kFifo);
  const JobId running = manager.submit(small_spec("running", 6), 0);
  manager.admit(0);
  const JobId wide = manager.submit(small_spec("wide", 6), 1);
  const JobId narrow = manager.submit(small_spec("narrow", 2), 1);

  // Two nodes are free and `narrow` fits, but FIFO refuses to jump `wide`.
  EXPECT_TRUE(manager.admit(1).empty());
  EXPECT_EQ(manager.record(wide).state, JobState::kQueued);
  EXPECT_EQ(manager.record(narrow).state, JobState::kQueued);

  manager.finish(running, 2);
  const auto admitted = manager.admit(2);
  ASSERT_EQ(admitted.size(), 2u);
  EXPECT_EQ(admitted[0], wide);
  EXPECT_EQ(admitted[1], narrow);
}

TEST(JobManager, FairShareBackfillsAroundWideJob) {
  JobManager manager(8, SchedulerPolicy::kFairShare);
  manager.submit(small_spec("running", 6), 0);
  manager.admit(0);
  const JobId wide = manager.submit(small_spec("wide", 6), 1);
  const JobId narrow = manager.submit(small_spec("narrow", 2), 1);

  const auto admitted = manager.admit(1);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], narrow);
  EXPECT_EQ(manager.record(wide).state, JobState::kQueued);
}

TEST(JobManager, FairShareWeightBreaksWaitTies) {
  JobManager manager(4, SchedulerPolicy::kFairShare);
  manager.submit(small_spec("hog", 4), 0);
  manager.admit(0);
  const JobId light = manager.submit(small_spec("light", 4), 1);
  JobSpec heavy_spec = small_spec("heavy", 4);
  heavy_spec.weight = 4.0;
  const JobId heavy = manager.submit(heavy_spec, 1);

  manager.finish(manager.running()[0], 3);
  // Equal wait, 4x weight: the heavier tenant's deficit wins the block.
  const auto admitted = manager.admit(3);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], heavy);
  EXPECT_EQ(manager.record(light).state, JobState::kQueued);
}

TEST(JobManager, FutureArrivalsStayInvisibleUntilTheirRound) {
  JobManager manager(8, SchedulerPolicy::kFairShare);
  const JobId later = manager.submit(small_spec("later", 2), 5);
  EXPECT_TRUE(manager.admit(0).empty());
  EXPECT_EQ(manager.oldest_queued_wait(4), 0u);

  const auto admitted = manager.admit(5);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], later);
  EXPECT_EQ(manager.record(later).admit_round, 5u);
}

TEST(JobManager, BudgetGateVetoesAdmission) {
  JobManager manager(8, SchedulerPolicy::kFairShare);
  const JobId id = manager.submit(small_spec("gated", 2), 0);
  bool allow = false;
  const auto gate = [&allow](const JobSpec&) { return allow; };
  EXPECT_TRUE(manager.admit(0, gate).empty());
  EXPECT_EQ(manager.record(id).state, JobState::kQueued);
  allow = true;
  EXPECT_EQ(manager.admit(1, gate).size(), 1u);
}

// ---------------------------------------------------------------------------
// Namespace registry: cross-job dedup identity
// ---------------------------------------------------------------------------

TEST(NamespaceRegistry, SameDatasetSharesOneNamespace) {
  NamespaceRegistry registry;
  const auto fp_a = dataset_fingerprint(small_spec("a", 2, 7));
  const auto fp_b = dataset_fingerprint(small_spec("b", 4, 7));
  const auto fp_other = dataset_fingerprint(small_spec("c", 2, 8));
  EXPECT_EQ(fp_a, fp_b);  // identity is (dataset, seed), not name/shape
  EXPECT_NE(fp_a, fp_other);

  const auto ns = registry.acquire(fp_a);
  EXPECT_EQ(registry.acquire(fp_b), ns);
  EXPECT_TRUE(registry.shared(ns));
  EXPECT_EQ(registry.refcount(ns), 2u);
  const auto other = registry.acquire(fp_other);
  EXPECT_NE(other, ns);
  EXPECT_GE(ns, 1u);  // 0 stays the single-job default

  EXPECT_FALSE(registry.release(ns));
  EXPECT_FALSE(registry.shared(ns));
  EXPECT_TRUE(registry.release(ns));  // last job out: caller drops KV entries
  EXPECT_EQ(registry.live_namespaces(), 1u);
}

TEST(NamespaceKeys, PackAndUnpackRoundTrip) {
  const SampleId key = cache::make_namespaced_key(3, 12345);
  EXPECT_EQ(cache::namespace_of(key), 3u);
  EXPECT_EQ(cache::sample_of(key), 12345u);
  // Namespace 0 keeps single-job keys unchanged.
  EXPECT_EQ(cache::make_namespaced_key(0, 777), 777u);
  EXPECT_THROW(cache::make_namespaced_key(0, cache::kNamespaceSampleMask + 1),
               std::invalid_argument);
  EXPECT_THROW(cache::make_namespaced_key(cache::kMaxNamespace + 1, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// KvBudgetArbiter: imminence-protected cross-job eviction
// ---------------------------------------------------------------------------

TEST(KvBudgetArbiter, EvictsFarthestFutureVictimFirst) {
  cache::KvStore kv(4);
  // key -> rounds until next use by any job of its namespace.
  std::unordered_map<SampleId, IterId> distance{{1, 2}, {2, 50}, {3, 5}};
  KvBudgetArbiter arbiter(kv, 3000, [&distance](SampleId key) {
    const auto it = distance.find(key);
    return it == distance.end() ? kNeverIter : it->second;
  });

  EXPECT_TRUE(arbiter.publish(1, payload(1000), 0, nullptr).ok());
  EXPECT_TRUE(arbiter.publish(2, payload(1000), 0, nullptr).ok());
  EXPECT_TRUE(arbiter.publish(3, payload(1000), 0, nullptr).ok());
  ASSERT_EQ(kv.size(), 3u);

  // A fourth publish must evict exactly the farthest-future entry (key 2).
  distance[4] = 1;
  EXPECT_TRUE(arbiter.publish(4, payload(1000), 0, nullptr).ok());
  EXPECT_FALSE(kv.contains(2));
  EXPECT_TRUE(kv.contains(1));
  EXPECT_TRUE(kv.contains(3));
  EXPECT_TRUE(kv.contains(4));
  EXPECT_EQ(arbiter.stats().evictions, 1u);
}

TEST(KvBudgetArbiter, PublishRefusedWhenOnlyVictimsAreImminent) {
  cache::KvStore kv(4);
  KvBudgetArbiter arbiter(kv, 2000, [](SampleId) { return IterId{0}; });
  EXPECT_TRUE(arbiter.publish(1, payload(1000), 0, nullptr).ok());
  EXPECT_TRUE(arbiter.publish(2, payload(1000), 0, nullptr).ok());

  // Every resident entry is needed this round: the publish is refused, the
  // cache is untouched, and the refusal is counted.
  const auto status = arbiter.publish(3, payload(1000), 0, nullptr);
  EXPECT_EQ(status.code(), StatusCode::kOverflow);
  EXPECT_TRUE(kv.contains(1));
  EXPECT_TRUE(kv.contains(2));
  EXPECT_FALSE(kv.contains(3));
  EXPECT_EQ(arbiter.stats().rejected_publishes, 1u);
  EXPECT_GT(arbiter.stats().protected_entries, 0u);
}

TEST(KvBudgetArbiter, ShrinkingBudgetNeverEvictsImminentSamples) {
  cache::KvStore kv(4);
  cache::CacheDirectory directory(4);
  // Key 10 is needed by some job THIS round; 11/12 are far future.
  std::unordered_map<SampleId, IterId> distance{{10, 0}, {11, 30}, {12, 40}};
  KvBudgetArbiter arbiter(kv, 0, [&distance](SampleId key) { return distance.at(key); });
  for (const SampleId key : {10u, 11u, 12u}) {
    ASSERT_TRUE(arbiter.publish(key, payload(1000), 1, &directory).ok());
    EXPECT_TRUE(directory.holds(key, 1));
  }

  // Mid-run lowering to less than one entry's footprint: the far-future
  // entries go, the imminent one survives, and the arbiter reports the
  // deficit instead of breaking another job's iteration.
  arbiter.set_budget(500, &directory);
  EXPECT_TRUE(kv.contains(10));
  EXPECT_FALSE(kv.contains(11));
  EXPECT_FALSE(kv.contains(12));
  EXPECT_TRUE(directory.holds(10, 1));
  EXPECT_FALSE(directory.holds(11, 1));
  const auto stats = arbiter.stats();
  EXPECT_EQ(stats.shrinks, 1u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.deficit_bytes, 500u);  // 1000 tracked vs 500 budget
  EXPECT_EQ(arbiter.bytes_tracked(), 1000u);
}

TEST(KvBudgetArbiter, DropNamespaceErasesStoreAndDirectory) {
  cache::KvStore kv(4);
  cache::CacheDirectory directory(4);
  KvBudgetArbiter arbiter(kv, 0, [](SampleId) { return kNeverIter; });
  const SampleId in_ns = cache::make_namespaced_key(2, 5);
  const SampleId other = cache::make_namespaced_key(3, 5);
  ASSERT_TRUE(arbiter.publish(in_ns, payload(600), 0, &directory).ok());
  ASSERT_TRUE(arbiter.publish(other, payload(700), 0, &directory).ok());
  EXPECT_EQ(arbiter.namespace_bytes(2), 600u);

  EXPECT_EQ(arbiter.drop_namespace(2, &directory), 600u);
  EXPECT_FALSE(kv.contains(in_ns));
  EXPECT_FALSE(directory.holds(in_ns, 0));
  EXPECT_TRUE(kv.contains(other));
  EXPECT_EQ(arbiter.bytes_tracked(), 700u);
  EXPECT_EQ(arbiter.namespace_bytes(2), 0u);
}

// ---------------------------------------------------------------------------
// FairnessTracker
// ---------------------------------------------------------------------------

TEST(FairnessTracker, SlowdownIsTurnaroundOverIsolated) {
  telemetry::MetricRegistry::instance().reset();
  FairnessTracker tracker(64);
  tracker.set_isolated_baseline(0, "job-a", 2.0);

  JobRecord record;
  record.id = 0;
  record.spec = small_spec("job-a", 2);
  record.state = JobState::kFinished;
  record.submit_round = 0;
  record.admit_round = 4;
  record.finish_round = 20;
  tracker.on_finish(record, 0.0, 1.0, 5.0);

  const auto& fairness = tracker.job(0);
  EXPECT_TRUE(fairness.finished);
  EXPECT_DOUBLE_EQ(fairness.queue_wait_s, 1.0);
  EXPECT_DOUBLE_EQ(fairness.turnaround_s, 5.0);
  EXPECT_DOUBLE_EQ(fairness.slowdown, 2.5);
  EXPECT_EQ(fairness.queue_wait_rounds, 4u);
  EXPECT_DOUBLE_EQ(tracker.max_slowdown(), 2.5);
  // Per-job aggregates land under the tenant prefix for the analyzer.
  EXPECT_EQ(job_metric_prefix("job-a"), "cluster.job/job-a/");
  EXPECT_DOUBLE_EQ(
      telemetry::MetricRegistry::instance().gauge("cluster.job/job-a/slowdown").value(), 2.5);
}

TEST(FairnessTracker, StarvationFlagsOncePastThreshold) {
  telemetry::MetricRegistry::instance().reset();
  // observe_round publishes via LOBSTER_METRIC_* which gate on
  // metrics_active(); arm metrics-only mode as the monitor would.
  telemetry::Tracer::instance().set_metrics_enabled(true);
  FairnessTracker tracker(3);
  JobManager manager(4, SchedulerPolicy::kFifo);
  manager.submit(small_spec("hog", 4), 0);
  manager.admit(0);
  const JobId starving = manager.submit(small_spec("starving", 4), 0);

  for (std::uint64_t round = 0; round < 6; ++round) tracker.observe_round(manager, round);
  telemetry::Tracer::instance().set_metrics_enabled(false);
  EXPECT_EQ(tracker.starvation_events(), 1u);  // flagged once, not per round
  EXPECT_TRUE(tracker.job(starving).starved);
  EXPECT_EQ(
      telemetry::MetricRegistry::instance().counter("cluster.job_starvations").value(), 1u);
  EXPECT_DOUBLE_EQ(
      telemetry::MetricRegistry::instance().gauge("cluster.jobs_queued").value(), 1.0);
}

// ---------------------------------------------------------------------------
// JobWindowOracle: lifting a job's accesses onto the cluster timeline
// ---------------------------------------------------------------------------

TEST(JobWindowOracle, TranslatesIterationsAndNodesOntoClusterTimeline) {
  data::SamplerConfig config;
  config.num_samples = 64;
  config.nodes = 2;
  config.gpus_per_node = 2;
  config.batch_size = 4;
  config.seed = 3;
  const data::EpochSampler sampler(config);
  const data::FutureAccessOracle inner(sampler, 2);

  const std::uint64_t admit_round = 10;
  const NodeBlock block{4, 2};
  const JobWindowOracle lifted(inner, admit_round, block);

  // This sample is, by construction, consumed at local iteration 0 on node 1.
  // The job's local iteration i lands at cluster time admit_round + i + 1 on
  // the global node rank, so a query at the admit round itself surfaces the
  // iter-0 access (distance 1 under strictly-after semantics: imminence 0).
  // Note inner.next_access(sample, 0) would SKIP that access — local queries
  // are strictly-after too — which is exactly why the lift offsets by one.
  const SampleId sample = sampler.minibatch(0, 0, 1, 0)[0];
  const auto cluster_view = lifted.next_access(sample, admit_round);
  ASSERT_TRUE(cluster_view.has_value());
  EXPECT_EQ(cluster_view->iter, admit_round + 1);
  EXPECT_EQ(cluster_view->node, block.first + 1);

  // Advancing the cluster clock past iter 0 must agree with the inner
  // oracle's strictly-after view of the same local timeline.
  const auto local_next = inner.next_access(sample, 0);
  ASSERT_TRUE(local_next.has_value());
  EXPECT_GT(local_next->iter, 0u);
  const auto cluster_next = lifted.next_access(sample, cluster_view->iter);
  ASSERT_TRUE(cluster_next.has_value());
  EXPECT_EQ(cluster_next->iter, admit_round + local_next->iter + 1);
  EXPECT_EQ(cluster_next->node, block.first + local_next->node);
}

// ---------------------------------------------------------------------------
// ClusterRuntime: small end-to-end acceptance run
// ---------------------------------------------------------------------------

TEST(ClusterRuntime, SharedDatasetJobsDedupAndFinishExactlyOnce) {
  telemetry::MetricRegistry::instance().reset();
  ClusterConfig config;
  config.nodes = 8;
  config.t_train_s = 2e-3;
  ClusterRuntime runtime(config);

  // Two tenants over ONE dataset (fingerprints match) plus a solo job that
  // arrives mid-run and has to queue. twin-b trains an extra epoch so it
  // outlives twin-a and overlaps the solo job's run: two distinct dataset
  // namespaces are live at once.
  runtime.submit(small_spec("twin-a", 4, 7));
  auto twin_b = small_spec("twin-b", 4, 7);
  twin_b.arrival_round = 1;
  twin_b.epochs = 3;
  runtime.submit(twin_b);
  auto solo = small_spec("solo", 4, 99);
  solo.arrival_round = 3;
  runtime.submit(solo);

  const auto result = runtime.run();
  ASSERT_EQ(result.jobs.size(), 3u);
  for (const auto& job : result.jobs) {
    EXPECT_EQ(job.state, JobState::kFinished) << job.name;
    EXPECT_EQ(job.samples_delivered, job.samples_expected) << job.name;
    EXPECT_FALSE(job.starved) << job.name;
    EXPECT_GT(job.iterations, 0u) << job.name;
  }
  EXPECT_TRUE(result.jobs[0].shared_namespace);
  EXPECT_TRUE(result.jobs[1].shared_namespace);
  EXPECT_FALSE(result.jobs[2].shared_namespace);

  // The twins stage the shared dataset once between them: aggregate PFS
  // reads stay strictly below the sum of the isolated runs.
  EXPECT_LT(result.total_pfs_reads, result.isolated_pfs_reads_sum);
  EXPECT_GT(result.total_kv_hits, 0u);
  EXPECT_EQ(result.starvation_events, 0u);
  EXPECT_GE(result.max_slowdown, 1.0);
  EXPECT_GT(result.makespan_s, 0.0);
  EXPECT_EQ(result.peak_live_namespaces, 2u);
  // The solo job queued behind the twins (4 nodes free only after twin-a
  // finishes), so its admit round is after its arrival.
  EXPECT_GT(result.jobs[2].admit_round, result.jobs[2].submit_round);

  // Submitting after run() is a contract violation.
  EXPECT_THROW(runtime.submit(small_spec("late", 1)), std::logic_error);
}

TEST(ClusterRuntime, GlobalBudgetBoundsKvFootprintWithoutBreakingDelivery) {
  telemetry::MetricRegistry::instance().reset();
  ClusterConfig config;
  config.nodes = 4;
  // Tight budget: a fraction of the dataset footprint (256 x 4 KB = 1 MB).
  config.kv_budget = 256 * 1024;
  config.run_isolated_baselines = false;
  ClusterRuntime runtime(config);
  runtime.submit(small_spec("bounded", 4, 5));

  const auto result = runtime.run();
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].state, JobState::kFinished);
  EXPECT_EQ(result.jobs[0].samples_delivered, result.jobs[0].samples_expected);
  // The arbiter had to evict (or refuse) under the tight budget, and the
  // store never ends above it.
  EXPECT_GT(result.arbiter.evictions + result.arbiter.rejected_publishes, 0u);
  EXPECT_GT(result.arbiter.publishes, 0u);  // every PFS fetch routed via the arbiter
}

}  // namespace
}  // namespace lobster::cluster
