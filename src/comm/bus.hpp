// In-process MPI-like message bus.
//
// Lobster's online runtime uses a "distribution manager responsible to
// handle the distributed operations across the compute nodes using MPI"
// (§4.5). On a single machine we provide the same primitives over real
// threads: ranked endpoints with tagged send/recv, barrier, and all-reduce.
// One Endpoint per simulated node; each node's distribution manager runs
// its endpoint from its own thread.
//
// Semantics:
//   - send() is asynchronous and never blocks (unbounded per-rank mailbox);
//     it returns Status::shutdown after shutdown and ok otherwise — a
//     dropped or delayed message (fault injection) still reports ok,
//     exactly as a real NIC gives no delivery receipt;
//   - recv() blocks until a message with a matching tag arrives (tag
//     kAnyTag matches everything); messages with the same (source, tag)
//     arrive in send order; recv_for() additionally gives up with
//     StatusCode::kTimeout once the deadline passes — the primitive the
//     fault-tolerant fetch path is built on;
//   - barrier() blocks until all ranks arrive (generation-counted, so
//     repeated barriers work); collectives are NOT fault-aware — do not
//     barrier against a killed rank;
//   - allreduce_sum() element-wise sums a vector across all ranks and
//     returns the result to every caller (barrier-style collective);
//   - shutdown() releases all blocked receivers with StatusCode::kShutdown.
//
// Fault injection: set_fault_plan() attaches a comm::FaultPlan that is
// consulted on every send — it may drop the message, delay its delivery
// (the message sits invisibly in the mailbox until its deliver-at time),
// or corrupt its payload in flight (bytes flipped; the receiver sees a
// well-formed message whose content fails end-to-end verification).
// Null plan (the default) costs nothing.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace lobster::comm {

using Rank = std::uint16_t;
using Tag = std::uint32_t;

inline constexpr Tag kAnyTag = ~0U;

struct Message {
  Rank source = 0;
  Tag tag = 0;
  std::vector<std::byte> payload;
  // Causal trace coordinates (telemetry::TraceContext), stamped by the bus
  // from the sending thread's current span when tracing is enabled — the
  // cross-rank propagation path for span trees (DESIGN.md §11). Zero means
  // "no active trace". Deliberately last: existing aggregate initializers
  // ({source, tag, payload}) stay valid.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

class MessageBus;
class FaultPlan;

/// A rank's handle onto the bus. Thread-compatible: one owning thread per
/// endpoint (matching MPI's single-threaded-rank model); the bus itself is
/// fully thread-safe.
class Endpoint {
 public:
  Rank rank() const noexcept { return rank_; }
  std::uint16_t world_size() const noexcept;

  /// Asynchronous tagged send. StatusCode::kShutdown after shutdown; ok
  /// otherwise (fire-and-forget: injected drops still report ok).
  Status send(Rank to, Tag tag, std::vector<std::byte> payload);

  /// Convenience: sends a trivially-copyable value.
  template <typename T>
  Status send_value(Rank to, Tag tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(sizeof(T));
    std::memcpy(bytes.data(), &value, sizeof(T));
    return send(to, tag, std::move(bytes));
  }

  /// Blocking tagged receive; StatusCode::kShutdown after shutdown (and
  /// drained mailbox).
  Result<Message> recv(Tag tag = kAnyTag);

  /// Blocking receive with a deadline: StatusCode::kTimeout if no matching
  /// message becomes deliverable within `timeout`, kShutdown on shutdown.
  Result<Message> recv_for(Tag tag, Seconds timeout);

  /// Non-blocking receive; StatusCode::kNotFound when nothing matches.
  Result<Message> try_recv(Tag tag = kAnyTag);

  template <typename T>
  static T value_of(const Message& message) {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    std::memcpy(&value, message.payload.data(), std::min(sizeof(T), message.payload.size()));
    return value;
  }

  /// Collective: blocks until every rank has called barrier().
  void barrier();

  /// Collective: element-wise sum across ranks; every rank gets the result.
  std::vector<double> allreduce_sum(std::vector<double> values);

 private:
  friend class MessageBus;
  Endpoint(MessageBus& bus, Rank rank) : bus_(&bus), rank_(rank) {}

  MessageBus* bus_;
  Rank rank_;
};

class MessageBus {
 public:
  explicit MessageBus(std::uint16_t world_size);
  ~MessageBus();

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  std::uint16_t world_size() const noexcept { return world_size_; }

  /// The endpoint for `rank`; valid for the bus's lifetime.
  Endpoint& endpoint(Rank rank);

  /// Attaches (or detaches, with nullptr) a fault injector consulted on
  /// every send. The plan must outlive the bus or be detached first.
  void set_fault_plan(FaultPlan* plan);

  /// Releases every blocked receiver / collective.
  void shutdown();
  bool is_shutdown() const;

 private:
  friend class Endpoint;

  using Clock = std::chrono::steady_clock;

  /// A mailbox entry; deliver_at in the future means the message is in
  /// flight (fault-injected delay) and invisible to receivers until then.
  struct Envelope {
    Message message;
    Clock::time_point deliver_at{};  // epoch == immediately deliverable
  };

  Status do_send(Rank to, Message message);
  Result<Message> do_recv(Rank me, Tag tag, bool blocking,
                          std::optional<Clock::time_point> deadline);
  void do_barrier();
  std::vector<double> do_allreduce(Rank me, std::vector<double> values);

  const std::uint16_t world_size_;
  std::vector<Endpoint> endpoints_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::deque<Envelope>> mailboxes_;
  FaultPlan* fault_plan_ = nullptr;
  bool shutdown_ = false;

  // Barrier state (generation counting).
  std::uint32_t barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // All-reduce state.
  std::vector<double> reduce_accum_;
  std::uint32_t reduce_waiting_ = 0;
  std::uint64_t reduce_generation_ = 0;
  std::vector<double> reduce_result_;
};

}  // namespace lobster::comm
