// Multi-tenant cluster driver (DESIGN.md §10, §13): many jobs, one shared
// I/O substrate.
//
// Runs a round-based lockstep simulation over the real runtime pieces:
// every scheduler round, (1) newly arrived jobs are submitted, (2) elastic
// jobs at an epoch boundary may grow or shrink their node block through a
// checkpoint-resize-restore cycle, (3) the JobManager admits what fits —
// under kFairSharePreemptive, evicting low-deficit running jobs (each cut
// into a crash-consistent checkpoint first) when a high-deficit waiter
// cannot backfill — (4) every running job executes ONE delivery round of
// its deterministic sampler stream against the SHARED cluster KV tier, and
// (5) the cluster's virtual clock advances by the slowest job's iteration
// time. PFS bandwidth is a cluster-wide resource: jobs reading the PFS in
// the same round divide it evenly, which is where inter-job interference
// (and slowdown) comes from.
//
// Delivery model (width-invariant cursor): each epoch delivers the FULL
// |D|-sample permutation; a job's progress is the pair (epoch, cursor),
// and one round delivers perm[cursor, cursor + B·W) where W is the job's
// CURRENT world size (block width × GPUs). Sample index q is served by
// local node (q mod W) / gpus — exactly the strided shard mapping of the
// static sampler when the width matches the spec — and the per-job
// delivery digest folds samples in permutation order, which is the same
// for every width. That is what makes preempt/resume/resize exact: a job
// restored at any width delivers the identical sample sequence an
// uninterrupted run would, and the digest proves it.
//
// Cross-job sharing: namespaces are minted per dataset fingerprint, so two
// jobs over the same dataset hit each other's published samples. Eviction
// consults a per-namespace data::MergedAccessOracle over every running job
// of that dataset, each job's FutureAccessOracle lifted onto the cluster
// timeline by JobWindowOracle. A preempted job's namespace stays acquired
// (its KV residency survives as a warm working set, evictable under
// pressure); its checkpoint carries the residency manifest so restore can
// re-home surviving entries onto the new block and count what was lost.
//
// Optionally runs each spec in isolation first (full PFS bandwidth, private
// KV) to establish the per-job fairness baseline — and the isolated
// delivery digest every checkpointed run must reproduce.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/directory.hpp"
#include "cache/kv_store.hpp"
#include "cache/namespace.hpp"
#include "cluster/budget_arbiter.hpp"
#include "cluster/checkpoint.hpp"
#include "cluster/fairness.hpp"
#include "cluster/job.hpp"
#include "cluster/namespace_registry.hpp"
#include "cluster/scheduler.hpp"
#include "common/tier_rates.hpp"
#include "common/types.hpp"
#include "data/dataset.hpp"
#include "data/oracle.hpp"
#include "data/sampler.hpp"

namespace lobster::cluster {

/// Lifts one running job's FutureAccessOracle onto the cluster timeline so
/// per-namespace MergedAccessOracles can merge jobs admitted at different
/// rounds: the access of job-local iteration i is reported at cluster time
/// `admit_round + i + 1` on global node rank `block.first + local_node`.
/// The +1 keeps "accessed in the current round" representable: querying
/// strictly-after `current_round` returns this round's accesses at distance
/// 1, so imminence = reported_time - current_round - 1 (0 = needed now).
/// For a resumed job, `admit_round` is the EFFECTIVE offset — resume round
/// minus estimated completed iterations — so reported times stay on the
/// cluster clock across preemptions (approximate after a resize; the
/// oracle is an eviction heuristic, not a correctness input).
class JobWindowOracle final : public data::AccessOracle {
 public:
  JobWindowOracle(const data::FutureAccessOracle& inner, std::uint64_t admit_round,
                  NodeBlock block)
      : inner_(inner), offset_(admit_round + 1), block_(block) {}

  std::optional<data::Access> next_access(SampleId sample, IterId after) const override;
  std::optional<data::Access> next_access_on_node(SampleId sample, NodeId node,
                                                  IterId after) const override;
  IterId reuse_distance_on_node(SampleId sample, NodeId node, IterId now) const override;
  std::uint32_t remaining_uses_on_node(SampleId sample, NodeId node,
                                       IterId after) const override;
  bool needed_by_other_node(SampleId sample, NodeId node, IterId after) const override;

 private:
  const data::FutureAccessOracle& inner_;
  std::uint64_t offset_;
  NodeBlock block_;
};

struct ClusterConfig {
  std::uint16_t nodes = 64;              ///< simulated cluster size (<= 64)
  SchedulerPolicy policy = SchedulerPolicy::kFairShare;
  PreemptionPolicy preemption;           ///< knobs for kFairSharePreemptive
  bool elastic_resize = true;            ///< epoch-boundary grow/shrink of elastic jobs
  Bytes kv_budget = 0;                   ///< global KV byte budget; 0 = unbounded
  TierRates rates = TierRates::defaults();
  double t_train_s = 4e-3;               ///< base per-iteration compute time
  std::uint64_t starvation_rounds = 64;  ///< queue/preempted wait that flags starvation
  std::uint64_t max_rounds = 1u << 20;   ///< safety valve for the round loop
  bool run_isolated_baselines = true;    ///< compute per-job slowdown baselines
};

/// Everything the fairness gates need about one job after the run.
struct JobOutcome {
  JobId id = kInvalidJob;
  std::string name;
  JobState state = JobState::kQueued;
  cache::NamespaceId ns = 0;
  bool shared_namespace = false;   ///< another job used the same dataset
  std::uint64_t submit_round = 0;
  std::uint64_t admit_round = 0;
  std::uint64_t finish_round = 0;
  std::uint64_t queue_wait_rounds = 0;
  std::uint64_t total_wait_rounds = 0;  ///< initial queue + preempted stretches
  double queue_wait_s = 0.0;
  double turnaround_s = 0.0;       ///< submit -> finish on the cluster clock
  double isolated_s = 0.0;         ///< run time alone (0 when baselines off)
  double slowdown = 0.0;           ///< turnaround_s / isolated_s
  bool starved = false;
  std::uint64_t iterations = 0;
  std::uint64_t samples_expected = 0;   ///< epochs x |D| (width-independent)
  std::uint64_t samples_delivered = 0;  ///< exactly-once gate: must match
  /// Order-sensitive digest of the delivered stream (permutation order);
  /// must equal the isolated run's digest across every preempt/resume/
  /// resize cycle — the byte-identity gate.
  std::uint64_t delivery_digest = 0;
  std::uint64_t isolated_digest = 0;    ///< 0 when baselines off
  bool digest_match = false;            ///< delivery_digest == isolated_digest
  std::uint32_t preemptions = 0;
  std::uint32_t resizes = 0;
  std::uint32_t grows = 0;
  std::uint32_t shrinks = 0;
  std::uint16_t final_width = 0;        ///< block width at finish
  std::uint64_t local_hits = 0;
  std::uint64_t kv_hits = 0;
  std::uint64_t pfs_reads = 0;
  Bytes pfs_bytes = 0;
  std::uint64_t isolated_pfs_reads = 0;
};

struct ClusterResult {
  std::vector<JobOutcome> jobs;
  std::uint64_t rounds = 0;
  double makespan_s = 0.0;
  std::uint64_t total_pfs_reads = 0;
  Bytes total_pfs_bytes = 0;
  std::uint64_t total_kv_hits = 0;
  std::uint64_t isolated_pfs_reads_sum = 0;
  std::uint64_t starvation_events = 0;
  double max_slowdown = 0.0;
  std::size_t peak_live_namespaces = 0;
  // Preemption & elasticity (DESIGN.md §13).
  std::uint64_t preemptions = 0;
  std::uint64_t resumes = 0;
  std::uint64_t resizes = 0;
  std::uint64_t checkpoints_cut = 0;
  Bytes checkpoint_bytes = 0;           ///< serialized bytes across all cuts
  std::uint64_t residency_restored = 0; ///< manifest entries re-homed on restore
  std::uint64_t residency_lost = 0;     ///< manifest entries evicted while preempted
  std::uint64_t digest_matches = 0;     ///< jobs whose digest equals isolated
  std::uint64_t digest_mismatches = 0;
  KvBudgetArbiter::Stats arbiter;
  cache::KvStore::Stats kv;
};

class ClusterRuntime {
 public:
  explicit ClusterRuntime(ClusterConfig config);
  ~ClusterRuntime();

  ClusterRuntime(const ClusterRuntime&) = delete;
  ClusterRuntime& operator=(const ClusterRuntime&) = delete;

  /// Registers a job; it arrives at spec.arrival_round. Call before run().
  JobId submit(JobSpec spec);

  /// Drives rounds until every submitted job is finished (or rejected).
  ClusterResult run();

  const FairnessTracker& fairness() const noexcept { return fairness_; }
  const NamespaceRegistry& namespaces() const noexcept { return registry_; }
  const JobManager& manager() const noexcept { return manager_; }

 private:
  struct RunningJob;

  std::shared_ptr<const data::SampleCatalog> catalog_for(const JobSpec& spec,
                                                         std::uint64_t fingerprint);
  bool budget_gate(const JobSpec& spec);
  void start_job(JobId id, std::uint64_t round);
  void finish_job(RunningJob& job, std::uint64_t round);
  void rebuild_merged(cache::NamespaceId ns);
  IterId imminence(SampleId key) const;

  /// Builds + serializes the crash-consistent checkpoint of a running job
  /// (the preempt hook and the resize cycle both go through here) and
  /// removes its block's residency entries from the directory — the block
  /// is about to be released or re-placed.
  std::vector<std::byte> cut_checkpoint(RunningJob& job);
  /// Preempt-hook body: cut_checkpoint + park the bytes for the resume.
  void checkpoint_job(JobId id, std::uint64_t round);
  /// Rebuilds a RunningJob from serialized checkpoint bytes on the block
  /// the manager just assigned, replaying surviving KV residency onto it.
  void restore_job(JobId id, std::uint64_t round, const std::vector<std::byte>& bytes);
  /// Epoch-boundary elastic pass: shrink under queue pressure, grow into
  /// idle capacity, via checkpoint-resize-restore.
  void try_elastic_resize(std::uint64_t round);

  /// One job, one round: walks the next cursor window of the epoch
  /// permutation against the shared tier, publishing PFS fetches through
  /// the arbiter and folding the delivery digest. Fills per-node byte
  /// demands; `job.last_n` is the window it will commit on advance.
  void collect_demands(RunningJob& job);
  double iteration_time(const RunningJob& job, double pfs_bps_effective) const;

  ClusterConfig config_;
  cache::KvStore kv_;
  cache::CacheDirectory directory_;
  NamespaceRegistry registry_;
  KvBudgetArbiter arbiter_;
  JobManager manager_;
  FairnessTracker fairness_;

  struct PendingSubmit {
    JobSpec spec;
    JobId id = kInvalidJob;
  };
  std::vector<PendingSubmit> pending_;
  bool ran_ = false;

  std::unordered_map<std::uint64_t, std::shared_ptr<const data::SampleCatalog>> catalogs_;
  std::unordered_map<JobId, std::unique_ptr<RunningJob>> active_;
  /// Serialized checkpoints of preempted jobs, consumed on resume. Kept as
  /// wire bytes on purpose: every resume goes through the real
  /// serialize/deserialize path, so the format is exercised end to end.
  std::unordered_map<JobId, std::vector<std::byte>> checkpoints_;
  /// Per-namespace merged view of every running job's future accesses.
  struct NamespaceOracles {
    std::vector<const data::AccessOracle*> members;
    std::unique_ptr<data::MergedAccessOracle> merged;
  };
  std::unordered_map<cache::NamespaceId, NamespaceOracles> merged_;

  std::vector<JobOutcome> outcomes_;
  std::uint64_t round_ = 0;
  double clock_s_ = 0.0;
  std::uint64_t stat_checkpoints_ = 0;
  Bytes stat_checkpoint_bytes_ = 0;
  std::uint64_t stat_restored_ = 0;
  std::uint64_t stat_lost_ = 0;
};

}  // namespace lobster::cluster
