// Virtual fetch/preprocess rates per storage tier.
//
// The executor's virtual-time model and the fault/perf benches all price a
// byte by where it came from (node-local cache, a peer's cache over the
// NIC, the PFS) plus the preprocessing rate. These four numbers used to be
// duplicated field-by-field across ExecutorConfig and every bench config,
// which let them drift; TierRates is the single shared struct, and the
// named presets below are the only sanctioned value sets, so an executor
// test and a fault bench claiming "default rates" provably mean the same
// numbers.
#pragma once

namespace lobster {

struct TierRates {
  double local_bps = 10e9;    ///< node-local cache (DRAM/NVMe) bytes/s
  double remote_bps = 2.0e9;  ///< peer cache over the interconnect bytes/s
  double pfs_bps = 0.8e9;     ///< parallel file system bytes/s
  double preproc_bps = 0.9e9; ///< decode+augment throughput bytes/s

  /// The historical executor defaults (10 GB/s local, 2 GB/s remote,
  /// 0.8 GB/s PFS, 0.9 GB/s preprocessing).
  static constexpr TierRates defaults() noexcept { return {}; }

  /// A congested interconnect: remote fetches barely beat the PFS. Used by
  /// fault benches to price degraded routing pessimistically.
  static constexpr TierRates congested_network() noexcept {
    return {10e9, 1.0e9, 0.8e9, 0.9e9};
  }

  /// PFS-starved cluster: falling back to the PFS is 4x worse than a peer
  /// fetch, so degraded routing visibly stretches virtual time.
  static constexpr TierRates pfs_starved() noexcept {
    return {10e9, 2.0e9, 0.5e9, 0.9e9};
  }

  friend constexpr bool operator==(const TierRates& a, const TierRates& b) noexcept {
    return a.local_bps == b.local_bps && a.remote_bps == b.remote_bps &&
           a.pfs_bps == b.pfs_bps && a.preproc_bps == b.preproc_bps;
  }
};

}  // namespace lobster
