// Integration tests of the full pipeline simulator: determinism, metric
// accounting, strategy orderings (the paper's qualitative claims), plan
// recording, and the calibration presets.
#include <gtest/gtest.h>

#include "baselines/strategies.hpp"
#include "metrics/report.hpp"
#include "pipeline/simulator.hpp"

namespace lobster::pipeline {
namespace {

using baselines::LoaderStrategy;

// Integration preset: scaled-down dataset but the paper's node shape
// (8 GPUs, batch 32) — shrinking the per-iteration demand would let staging
// trivially cover everything and erase the strategy differences.
ExperimentPreset tiny_preset(std::uint16_t nodes = 1) {
  auto preset = nodes == 1 ? preset_imagenet1k_single_node(256.0)
                           : preset_imagenet1k_multi_node(128.0, nodes);
  preset.epochs = 3;
  return preset;
}

TEST(Strategies, FactoryNamesRoundTrip) {
  for (const char* name :
       {"pytorch", "dali", "nopfs", "lobster", "lobster_th", "lobster_evict"}) {
    EXPECT_EQ(LoaderStrategy::by_name(name).name, name);
  }
  EXPECT_THROW(LoaderStrategy::by_name("unknown"), std::invalid_argument);
}

TEST(Strategies, PaperConfigurations) {
  const auto dali = LoaderStrategy::dali();
  EXPECT_EQ(dali.fixed_load_threads, 3U);  // "three threads ... by default"
  EXPECT_FALSE(dali.distributed_cache);
  const auto nopfs = LoaderStrategy::nopfs();
  EXPECT_TRUE(nopfs.distributed_cache);
  EXPECT_TRUE(nopfs.prefetching);
  EXPECT_EQ(nopfs.fixed_load_threads, LoaderStrategy::pytorch().fixed_load_threads);
  const auto lobster = LoaderStrategy::lobster();
  EXPECT_TRUE(lobster.per_gpu_queues);
  EXPECT_TRUE(lobster.reuse_sweep);
  EXPECT_EQ(lobster.eviction_policy, "lobster");
}

TEST(TrainerModel, KnownModelsAndJitter) {
  const auto resnet = TrainerModel::by_name("resnet50");
  EXPECT_GT(resnet.t_train, 0.0);
  EXPECT_THROW(TrainerModel::by_name("transformer"), std::invalid_argument);
  EXPECT_EQ(TrainerModel::benchmark_names().size(), 6U);
  // Jitter is deterministic and within clamp.
  const auto a = resnet.iteration_time(1, 5, 0, 0);
  const auto b = resnet.iteration_time(1, 5, 0, 0);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, resnet.t_train * 0.89);
  EXPECT_LT(a, resnet.t_train * 1.11);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto preset = tiny_preset();
  const auto a = simulate(preset, LoaderStrategy::lobster());
  const auto b = simulate(preset, LoaderStrategy::lobster());
  EXPECT_EQ(a.metrics.total_time(), b.metrics.total_time());
  EXPECT_EQ(a.metrics.hit_ratio(), b.metrics.hit_ratio());
  EXPECT_EQ(a.metrics.imbalanced_fraction(), b.metrics.imbalanced_fraction());
}

TEST(Simulator, SeedChangesOutcome) {
  auto preset = tiny_preset();
  const auto a = simulate(preset, LoaderStrategy::dali());
  preset.seed = 777;
  // Different seed -> different catalog/order; cache capacity derives from
  // the catalog, so rebuild it too.
  preset.cluster.cache_bytes =
      scaled_cache_bytes(preset.dataset, preset.seed, 40.0 / 135.0);
  const auto b = simulate(preset, LoaderStrategy::dali());
  EXPECT_NE(a.metrics.total_time(), b.metrics.total_time());
}

TEST(Simulator, AccessAccountingIsExact) {
  const auto preset = tiny_preset();
  const auto result = simulate(preset, LoaderStrategy::nopfs());
  const auto& stats = result.metrics.cache_stats();
  const std::uint64_t expected_accesses =
      static_cast<std::uint64_t>(preset.epochs) * result.iterations_per_epoch *
      preset.cluster.total_gpus() * preset.batch_size;
  EXPECT_EQ(stats.hits + stats.misses, expected_accesses);
  EXPECT_EQ(result.metrics.iterations(),
            static_cast<std::uint64_t>(preset.epochs) * result.iterations_per_epoch);
}

TEST(Simulator, DetailWindowRetainsRecords) {
  const auto preset = tiny_preset();
  SimulationConfig config;
  config.preset = preset;
  config.strategy = LoaderStrategy::dali();
  config.detail_epoch_lo = 1;
  config.detail_epoch_hi = 2;
  TrainingSimulator simulator(std::move(config));
  const auto result = simulator.run();
  EXPECT_EQ(result.metrics.details().size(), result.iterations_per_epoch);
  for (const auto& record : result.metrics.details()) {
    EXPECT_EQ(record.epoch, 1U);
    EXPECT_EQ(record.gpus.size(), preset.cluster.total_gpus());
    // Stage accounting is internally consistent.
    for (const auto& gpu : record.gpus) {
      EXPECT_GE(gpu.load, 0.0);
      EXPECT_GE(gpu.preproc, 0.0);
      EXPECT_GT(gpu.train, 0.0);
      EXPECT_GE(record.duration + 1e-12, gpu.train);
      EXPECT_NEAR(gpu.idle, record.duration - gpu.train, 1e-9);
      EXPECT_EQ(gpu.local_hits + gpu.remote_hits + gpu.pfs_misses, preset.batch_size);
    }
    EXPECT_GE(record.t_max, record.t_min);
    EXPECT_GE(record.duration, record.t_max - 1e-12);
  }
}

TEST(Simulator, LobsterBeatsBaselinesOnWarmEpochs) {
  const auto preset = tiny_preset();
  const auto lobster = simulate(preset, LoaderStrategy::lobster());
  const auto pytorch = simulate(preset, LoaderStrategy::pytorch());
  const auto nopfs = simulate(preset, LoaderStrategy::nopfs());
  // Qualitative Fig. 7 ordering.
  EXPECT_GT(metrics::warm_speedup(pytorch, lobster), 1.1);
  EXPECT_GT(metrics::warm_speedup(nopfs, lobster), 1.0);
  // Hit-ratio ordering of §5.5.
  EXPECT_GT(lobster.metrics.hit_ratio(), nopfs.metrics.hit_ratio());
  EXPECT_GT(nopfs.metrics.hit_ratio(), pytorch.metrics.hit_ratio());
  // GPU utilisation ordering of Fig. 10.
  EXPECT_GT(lobster.metrics.gpu_utilization(), pytorch.metrics.gpu_utilization());
  // Imbalance ordering of Fig. 8.
  EXPECT_LT(lobster.metrics.imbalanced_fraction(), pytorch.metrics.imbalanced_fraction());
}

TEST(Simulator, MultiNodeDistributedCacheHelps) {
  const auto preset = tiny_preset(2);
  const auto lobster = simulate(preset, LoaderStrategy::lobster());
  const auto pytorch = simulate(preset, LoaderStrategy::pytorch());
  EXPECT_GT(metrics::warm_speedup(pytorch, lobster), 1.1);
  // Distributed cache produces remote hits somewhere in the details-free
  // aggregate: at minimum the lobster run must beat pytorch's hit ratio.
  EXPECT_GT(lobster.metrics.hit_ratio(), pytorch.metrics.hit_ratio());
}

TEST(Simulator, AblationsLandBetweenDaliAndLobster) {
  const auto preset = tiny_preset();
  const auto dali = simulate(preset, LoaderStrategy::dali());
  const auto lobster = simulate(preset, LoaderStrategy::lobster());
  const auto th = simulate(preset, LoaderStrategy::lobster_th());
  const auto evict = simulate(preset, LoaderStrategy::lobster_evict());
  // Each ablation improves on DALI (Fig. 11)...
  EXPECT_GT(metrics::warm_speedup(dali, th), 1.0);
  EXPECT_GT(metrics::warm_speedup(dali, evict), 1.0);
  // ...but the full system is at least as good as either single mechanism.
  EXPECT_GE(metrics::warm_speedup(dali, lobster), metrics::warm_speedup(dali, evict) - 0.05);
}

TEST(Simulator, PlanRecordingMatchesRunShape) {
  const auto preset = tiny_preset();
  runtime::Plan plan;
  SimulationConfig config;
  config.preset = preset;
  config.strategy = LoaderStrategy::lobster();
  config.record_plan = &plan;
  TrainingSimulator simulator(std::move(config));
  const auto result = simulator.run();
  EXPECT_EQ(plan.total_iterations(), result.metrics.iterations());
  EXPECT_EQ(plan.iterations_per_epoch, result.iterations_per_epoch);
  for (const auto& iteration : plan.iterations) {
    ASSERT_EQ(iteration.nodes.size(), 1U);
    EXPECT_EQ(iteration.nodes[0].load_threads.size(), preset.cluster.gpus_per_node);
  }
}

TEST(Simulator, ThreadBudgetNeverExceeded) {
  const auto preset = tiny_preset();
  const auto result = simulate(preset, LoaderStrategy::lobster());
  EXPECT_LE(result.mean_load_threads + result.mean_preproc_threads,
            static_cast<double>(preset.cluster.cpu_threads) + 1e-6);
}

TEST(Calibration, PresetsScaleConsistently) {
  const auto small = preset_imagenet1k_single_node(2000.0);
  const auto large = preset_imagenet1k_single_node(1000.0);
  EXPECT_NEAR(static_cast<double>(large.dataset.num_samples) / small.dataset.num_samples, 2.0,
              0.01);
  // Cache keeps the paper's ~29.6% of dataset ratio at any scale.
  const data::SampleCatalog catalog(small.dataset, small.seed);
  const double ratio =
      static_cast<double>(small.cluster.cache_bytes) / static_cast<double>(catalog.total_bytes());
  EXPECT_NEAR(ratio, 40.0 / 135.0, 0.02);
}

TEST(Calibration, MultiNodePresetNames) {
  const auto preset = preset_imagenet22k_multi_node(1000.0, 4);
  EXPECT_EQ(preset.cluster.nodes, 4);
  EXPECT_NE(preset.id.find("imagenet22k"), std::string::npos);
}

TEST(Report, ComparisonTableShape) {
  const auto preset = tiny_preset();
  std::vector<metrics::StrategyResult> results;
  results.push_back({"pytorch", simulate(preset, LoaderStrategy::pytorch())});
  results.push_back({"lobster", simulate(preset, LoaderStrategy::lobster())});
  const auto table = metrics::comparison_table(results);
  EXPECT_EQ(table.rows(), 2U);
  EXPECT_EQ(table.columns(), 7U);
  const std::string text = table.render_text();
  EXPECT_NE(text.find("lobster"), std::string::npos);
}

TEST(Report, RenderSeries) {
  EXPECT_EQ(metrics::render_series({}), "(empty)");
  const auto line = metrics::render_series({0.0, 0.5, 1.0}, 3);
  EXPECT_EQ(line.size(), 3U);
}

}  // namespace
}  // namespace lobster::pipeline

// ---- parameterized cross-strategy properties (appended coverage).

namespace lobster::pipeline {
namespace {

class StrategyPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StrategyPropertyTest, ConservationAndBasicInvariants) {
  auto preset = preset_imagenet1k_single_node(512.0);
  preset.epochs = 2;
  const auto strategy = baselines::LoaderStrategy::by_name(GetParam());
  const auto result = simulate(preset, strategy);

  // Every sample access is either a hit or a miss, and every GPU consumed
  // exactly batch_size samples per iteration.
  const auto& stats = result.metrics.cache_stats();
  const std::uint64_t accesses = static_cast<std::uint64_t>(preset.epochs) *
                                 result.iterations_per_epoch *
                                 preset.cluster.total_gpus() * preset.batch_size;
  EXPECT_EQ(stats.hits + stats.misses, accesses);

  // Wall time is the sum of (positive) iteration durations.
  EXPECT_GT(result.metrics.total_time(), 0.0);
  EXPECT_GE(result.metrics.total_time(),
            result.metrics.time_after_epoch(1));

  // Batch-time series covers every iteration.
  EXPECT_EQ(result.metrics.batch_times().count(), result.metrics.iterations());

  // Utilisation and hit ratio are probabilities.
  EXPECT_GE(result.metrics.gpu_utilization(), 0.0);
  EXPECT_LE(result.metrics.gpu_utilization(), 1.0);
  EXPECT_GE(result.metrics.hit_ratio(), 0.0);
  EXPECT_LE(result.metrics.hit_ratio(), 1.0);
}

TEST_P(StrategyPropertyTest, DeterministicAcrossRepetition) {
  auto preset = preset_imagenet1k_single_node(1024.0);
  preset.epochs = 2;
  const auto strategy = baselines::LoaderStrategy::by_name(GetParam());
  const auto a = simulate(preset, strategy);
  const auto b = simulate(preset, strategy);
  EXPECT_EQ(a.metrics.total_time(), b.metrics.total_time());
  EXPECT_EQ(a.metrics.cache_stats().hits, b.metrics.cache_stats().hits);
  EXPECT_EQ(a.metrics.cache_stats().evictions, b.metrics.cache_stats().evictions);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyPropertyTest,
                         ::testing::Values("pytorch", "dali", "nopfs", "lobster", "lobster_th",
                                           "lobster_evict", "lobster_prop"));

TEST(SimulatorProperties, LobsterHitRatioMonotoneInCacheSize) {
  auto preset = preset_imagenet1k_single_node(512.0);
  preset.epochs = 3;
  double prev_hit = -1.0;
  for (const double fraction : {0.5, 1.0, 2.0}) {
    auto sized = preset;
    sized.cluster.cache_bytes =
        static_cast<Bytes>(static_cast<double>(preset.cluster.cache_bytes) * fraction);
    const auto result = simulate(sized, baselines::LoaderStrategy::lobster());
    EXPECT_GE(result.metrics.hit_ratio(), prev_hit - 0.02)
        << "cache fraction multiplier " << fraction;
    prev_hit = result.metrics.hit_ratio();
  }
}

TEST(SimulatorProperties, NoiseFreeRunHasNoSpuriousImbalance) {
  // With all stochastic terms off and Lobster balancing threads, imbalance
  // should be rare (only systematic per-GPU byte-mix differences remain).
  auto preset = preset_imagenet1k_single_node(512.0);
  preset.epochs = 3;
  preset.noise = NoiseSpec{0.0, 0.0, 0.0, 1.0};
  const auto lobster = simulate(preset, baselines::LoaderStrategy::lobster());
  const auto pytorch = simulate(preset, baselines::LoaderStrategy::pytorch());
  EXPECT_LT(lobster.metrics.imbalanced_fraction(), 0.25);
  EXPECT_LE(lobster.metrics.imbalanced_fraction(),
            pytorch.metrics.imbalanced_fraction() + 1e-12);
}

TEST(SimulatorProperties, BurstsOnlyHurt) {
  auto preset = preset_imagenet1k_single_node(512.0);
  preset.epochs = 2;
  preset.noise.burst_probability = 0.0;
  const auto calm = simulate(preset, baselines::LoaderStrategy::nopfs());
  preset.noise.burst_probability = 0.3;
  const auto bursty = simulate(preset, baselines::LoaderStrategy::nopfs());
  EXPECT_GE(bursty.metrics.total_time(), calm.metrics.total_time());
}

TEST(SimulatorProperties, BeladyPolicyBoundsLobsterHitRatio) {
  auto preset = preset_imagenet1k_single_node(512.0);
  preset.epochs = 3;
  auto belady_strategy = baselines::LoaderStrategy::lobster();
  belady_strategy.eviction_policy = "belady";
  belady_strategy.reuse_sweep = false;
  const auto belady = simulate(preset, belady_strategy);
  const auto lobster = simulate(preset, baselines::LoaderStrategy::lobster());
  // The clairvoyant bound may only be beaten within noise (Lobster's sweep
  // can slightly outdo pure furthest-first by freeing room for staging).
  EXPECT_GE(belady.metrics.hit_ratio(), lobster.metrics.hit_ratio() - 0.05);
}

}  // namespace
}  // namespace lobster::pipeline

// ---- GPU-side preprocessing option (appended coverage).

namespace lobster::pipeline {
namespace {

TEST(GpuPreprocessing, FreesCpuThreadsForLoading) {
  auto preset = preset_imagenet1k_single_node(512.0);
  preset.epochs = 2;
  auto strategy = baselines::LoaderStrategy::lobster();
  strategy.gpu_preprocessing = true;
  const auto gpu_side = simulate(preset, strategy);
  EXPECT_EQ(gpu_side.mean_preproc_threads, 0.0);
  EXPECT_GT(gpu_side.mean_load_threads,
            simulate(preset, baselines::LoaderStrategy::lobster()).mean_load_threads);
}

TEST(GpuPreprocessing, StillTrainsEveryBatch) {
  auto preset = preset_imagenet1k_single_node(1024.0);
  preset.epochs = 2;
  auto strategy = baselines::LoaderStrategy::dali();
  strategy.gpu_preprocessing = true;
  const auto result = simulate(preset, strategy);
  const auto& stats = result.metrics.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(preset.epochs) * result.iterations_per_epoch *
                preset.cluster.total_gpus() * preset.batch_size);
  // Training time per GPU now includes the on-device preprocessing.
  EXPECT_GT(result.metrics.total_time(), 0.0);
}

TEST(GpuPreprocessing, GroundTruthGpuTimeIsFasterThanOneCpuThread) {
  const core::PreprocGroundTruth truth;
  const Bytes batch = 32 * 105 * 1024;
  EXPECT_LT(truth.gpu_batch_time(batch, 32), truth.batch_time(1.0, batch, 32));
}

}  // namespace
}  // namespace lobster::pipeline

// ---- DES-backed loading mode (appended coverage).

namespace lobster::pipeline {
namespace {

TEST(DesLoading, RunsAndPreservesAccounting) {
  auto preset = preset_imagenet1k_single_node(1024.0);
  preset.epochs = 2;
  SimulationConfig config;
  config.preset = preset;
  config.strategy = baselines::LoaderStrategy::lobster();
  config.des_loading = true;
  TrainingSimulator simulator(std::move(config));
  const auto result = simulator.run();
  const auto& stats = result.metrics.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(preset.epochs) * result.iterations_per_epoch *
                preset.cluster.total_gpus() * preset.batch_size);
  EXPECT_GT(result.metrics.total_time(), 0.0);
}

TEST(DesLoading, DeterministicAndDistinctFromAnalytic) {
  auto preset = preset_imagenet1k_single_node(1024.0);
  preset.epochs = 2;
  auto make = [&](bool des) {
    SimulationConfig config;
    config.preset = preset;
    config.strategy = baselines::LoaderStrategy::nopfs();
    config.des_loading = des;
    TrainingSimulator simulator(std::move(config));
    return simulator.run();
  };
  const auto des_a = make(true);
  const auto des_b = make(true);
  EXPECT_EQ(des_a.metrics.total_time(), des_b.metrics.total_time());
  const auto analytic = make(false);
  EXPECT_NE(des_a.metrics.total_time(), analytic.metrics.total_time());
  // Iteration durations feed the staging budgets, so cache behaviour shifts
  // with the timing model: DES charges the PFS request latency per *fetch*
  // (Eq. 1 charges it once per batch), lengthening iterations and widening
  // the staging window. Same mechanisms, bounded divergence.
  const double des_hits = static_cast<double>(des_a.metrics.cache_stats().hits);
  const double analytic_hits = static_cast<double>(analytic.metrics.cache_stats().hits);
  EXPECT_GT(des_hits, analytic_hits * 0.4);
  EXPECT_LT(des_hits, analytic_hits * 4.0);
}

TEST(DesLoading, OrderingSurvivesEmergentTiming) {
  auto preset = preset_imagenet1k_single_node(512.0);
  preset.epochs = 3;
  auto run = [&](const char* name) {
    SimulationConfig config;
    config.preset = preset;
    config.strategy = baselines::LoaderStrategy::by_name(name);
    config.des_loading = true;
    TrainingSimulator simulator(std::move(config));
    return simulator.run();
  };
  const auto lobster = run("lobster");
  const auto pytorch = run("pytorch");
  EXPECT_LT(lobster.metrics.time_after_epoch(1), pytorch.metrics.time_after_epoch(1));
  EXPECT_GT(lobster.metrics.hit_ratio(), pytorch.metrics.hit_ratio());
}

}  // namespace
}  // namespace lobster::pipeline
