#include "core/load_balance_config.hpp"

#include <numeric>
#include <string>

namespace lobster::core {

Status LoadBalanceConfig::validate() const {
  if (total_load_threads == 0) {
    return Status::invalid("total_load_threads must be >= 1 (zero-thread split)");
  }
  if (min_threads_per_gpu == 0) {
    return Status::invalid("min_threads_per_gpu must be >= 1 (zero-thread split)");
  }
  if (!(tau > 0.0)) {
    return Status::invalid("tau must be positive");
  }
  if (queue_capacity == 0) {
    return Status::invalid("queue_capacity must be >= 1");
  }
  if (world_size > 0) {
    if (max_pool_threads != 0 && max_pool_threads < world_size) {
      return Status::invalid("max_pool_threads cap (" + std::to_string(max_pool_threads) +
                             ") below world size " + std::to_string(world_size));
    }
    if (queue_capacity < world_size) {
      return Status::invalid("queue_capacity (" + std::to_string(queue_capacity) +
                             ") below world size " + std::to_string(world_size));
    }
    if (!batch_quotas.empty() && batch_quotas.size() != world_size) {
      return Status::invalid("batch_quotas has " + std::to_string(batch_quotas.size()) +
                             " entries for world size " + std::to_string(world_size));
    }
  }
  if (!batch_quotas.empty()) {
    if (batch_size == 0) {
      return Status::invalid("batch_quotas set but batch_size unspecified");
    }
    const std::uint64_t sum =
        std::accumulate(batch_quotas.begin(), batch_quotas.end(), std::uint64_t{0});
    if (sum != batch_size) {
      return Status::invalid("batch_quotas sum " + std::to_string(sum) +
                             " != batch_size " + std::to_string(batch_size));
    }
  }
  return Status{};
}

}  // namespace lobster::core
