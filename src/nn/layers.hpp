// Dense layer, ReLU, and softmax cross-entropy for the mini NN.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace lobster::nn {

/// Fully connected layer y = x W + b with cached activations for backward.
class Dense {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  /// Forward for a batch (rows = samples).
  Matrix forward(const Matrix& input);

  /// Backward: consumes dL/dy, returns dL/dx; accumulates weight gradients.
  Matrix backward(const Matrix& grad_output);

  /// SGD step with momentum; clears accumulated gradients.
  void apply_gradients(float learning_rate, float momentum, std::size_t batch_size);

  /// Replaces accumulated gradients (for data-parallel averaging).
  Matrix& weight_grad() noexcept { return grad_weights_; }
  Matrix& bias_grad() noexcept { return grad_bias_; }
  const Matrix& weights() const noexcept { return weights_; }
  const Matrix& bias() const noexcept { return bias_; }

  std::size_t in_features() const noexcept { return weights_.rows(); }
  std::size_t out_features() const noexcept { return weights_.cols(); }

 private:
  Matrix weights_;       // in x out
  Matrix bias_;          // 1 x out
  Matrix grad_weights_;  // accumulated dL/dW
  Matrix grad_bias_;
  Matrix vel_weights_;   // momentum buffers
  Matrix vel_bias_;
  Matrix last_input_;
};

/// Elementwise ReLU with mask caching.
class Relu {
 public:
  Matrix forward(const Matrix& input);
  Matrix backward(const Matrix& grad_output) const;

 private:
  Matrix mask_;
};

/// Combined softmax + cross-entropy on integer labels.
struct SoftmaxCrossEntropy {
  /// Returns mean loss over the batch; fills `grad` with dL/dlogits
  /// (already divided by batch size).
  static float loss_and_grad(const Matrix& logits, const std::vector<std::uint32_t>& labels,
                             Matrix& grad);

  /// Fraction of rows whose argmax matches the label.
  static double accuracy(const Matrix& logits, const std::vector<std::uint32_t>& labels);
};

}  // namespace lobster::nn
