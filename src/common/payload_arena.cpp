#include "common/payload_arena.hpp"

#include <array>
#include <atomic>
#include <mutex>

namespace lobster {
namespace {

struct ArenaStats {
  std::atomic<std::uint64_t> tls_hits{0};
  std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> fresh_allocs{0};
  std::atomic<std::uint64_t> oversize_allocs{0};
};

ArenaStats& arena_stats() {
  static ArenaStats stats;
  return stats;
}

using Buffer = PayloadArena::Buffer;

// Leaked singleton: thread-local slabs flush here at thread exit, so the
// pool must outlive every thread (including ones destroyed during static
// teardown).
struct SharedPool {
  std::mutex mutex;
  std::array<std::vector<Buffer*>, PayloadArena::kNumClasses> free;
};

SharedPool& shared_pool() {
  static SharedPool* pool = new SharedPool;
  return *pool;
}

/// Smallest class whose buffers hold `n` bytes; kNumClasses when oversize.
std::size_t class_for_size(std::size_t n) {
  std::size_t bytes = PayloadArena::kMinClassBytes;
  std::size_t index = 0;
  while (bytes < n && index < PayloadArena::kNumClasses) {
    bytes <<= 1;
    ++index;
  }
  return index;
}

/// Largest class a buffer of `capacity` bytes can serve; kNumClasses when
/// the capacity is below the smallest class (not worth pooling).
std::size_t class_for_capacity(std::size_t capacity) {
  if (capacity < PayloadArena::kMinClassBytes) return PayloadArena::kNumClasses;
  std::size_t index = 0;
  while (index + 1 < PayloadArena::kNumClasses &&
         PayloadArena::class_bytes(index + 1) <= capacity) {
    ++index;
  }
  return index;
}

struct ThreadSlab {
  std::array<std::vector<Buffer*>, PayloadArena::kNumClasses> free;

  ~ThreadSlab() {
    // Thread exit: hand everything to the shared pool so another thread's
    // slab can reuse the warm buffers.
    auto& pool = shared_pool();
    const std::scoped_lock lock(pool.mutex);
    for (std::size_t c = 0; c < PayloadArena::kNumClasses; ++c) {
      for (Buffer* buffer : free[c]) {
        if (pool.free[c].size() < PayloadArena::kPoolCapPerClass) {
          pool.free[c].push_back(buffer);
        } else {
          delete buffer;
        }
      }
      free[c].clear();
    }
  }
};

ThreadSlab& thread_slab() {
  thread_local ThreadSlab slab;
  return slab;
}

}  // namespace

PayloadArena::BufferPtr PayloadArena::acquire(std::size_t n) {
  const std::size_t cls = class_for_size(n);
  if (cls >= kNumClasses) {
    arena_stats().oversize_allocs.fetch_add(1, std::memory_order_relaxed);
    return BufferPtr(new Buffer(n));  // plain heap; plain delete
  }

  Buffer* buffer = nullptr;
  auto& slab = thread_slab().free[cls];
  if (!slab.empty()) {
    buffer = slab.back();
    slab.pop_back();
    arena_stats().tls_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto& pool = shared_pool();
    const std::scoped_lock lock(pool.mutex);
    auto& shelf = pool.free[cls];
    if (!shelf.empty()) {
      buffer = shelf.back();
      shelf.pop_back();
      arena_stats().pool_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (buffer == nullptr) {
    arena_stats().fresh_allocs.fetch_add(1, std::memory_order_relaxed);
    buffer = new Buffer;
    buffer->reserve(class_bytes(cls));
  }
  // Same-size reuse (the uniform-payload hot path) makes this a no-op;
  // growing within the reserved class capacity never reallocates.
  buffer->resize(n);
  return BufferPtr(buffer, &PayloadArena::release);
}

void PayloadArena::release(Buffer* buffer) noexcept {
  const std::size_t cls = class_for_capacity(buffer->capacity());
  if (cls >= kNumClasses) {
    delete buffer;
    return;
  }
  auto& slab = thread_slab().free[cls];
  if (slab.size() < kSlabCapPerClass) {
    slab.push_back(buffer);
    return;
  }
  auto& pool = shared_pool();
  {
    const std::scoped_lock lock(pool.mutex);
    auto& shelf = pool.free[cls];
    if (shelf.size() < kPoolCapPerClass) {
      shelf.push_back(buffer);
      return;
    }
  }
  delete buffer;
}

PayloadArena::Stats PayloadArena::stats() {
  const auto& raw = arena_stats();
  Stats out;
  out.tls_hits = raw.tls_hits.load(std::memory_order_relaxed);
  out.pool_hits = raw.pool_hits.load(std::memory_order_relaxed);
  out.fresh_allocs = raw.fresh_allocs.load(std::memory_order_relaxed);
  out.oversize_allocs = raw.oversize_allocs.load(std::memory_order_relaxed);
  return out;
}

}  // namespace lobster
