// Shared-dataset multi-job training (§2 generality scenario).
//
// Several model-selection jobs train different DNNs over the same dataset,
// time-sharing the GPUs round-robin. The node caches are shared: a sample
// staged for one job is a hit for every job, and Lobster's eviction
// consults the merged future-access view of all jobs. This demo compares
// the shared-cache hit ratio and per-job times under LRU vs Lobster
// eviction as the job count grows.
//
//   $ ./shared_dataset_jobs [scale=512] [epochs=3]
#include <cstdio>

#include "common/config.hpp"
#include "common/table.hpp"
#include "pipeline/multi_job.hpp"

using namespace lobster;

int main(int argc, char** argv) {
  const auto config = Config::from_args(argc, argv);
  const double scale = config.get_double("scale", 512.0);
  const auto epochs = static_cast<std::uint32_t>(config.get_int("epochs", 3));

  const char* models[] = {"resnet50", "shufflenet", "vgg11", "alexnet"};

  std::printf("Shared-dataset model-selection: J jobs round-robin over one dataset\n\n");
  Table table({"jobs", "policy", "combined_hit_%", "total_time_s", "per_job_imbalanced_%"});
  for (const std::size_t job_count : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const char* policy : {"lru", "lobster"}) {
      pipeline::MultiJobConfig multi;
      multi.preset = pipeline::preset_imagenet1k_single_node(scale);
      multi.preset.epochs = epochs;
      multi.strategy = baselines::LoaderStrategy::lobster();
      multi.strategy.eviction_policy = policy;
      multi.strategy.reuse_sweep = std::string(policy) == "lobster";
      for (std::size_t j = 0; j < job_count; ++j) {
        multi.jobs.push_back({models[j % 4], j});
      }
      const auto result = pipeline::simulate_multi_job(multi);
      double imbalanced = 0.0;
      for (const auto& metrics : result.per_job) imbalanced += metrics.imbalanced_fraction();
      imbalanced /= static_cast<double>(result.per_job.size());
      table.add_row({std::to_string(job_count), policy,
                     Table::num(100.0 * result.combined_cache.hit_ratio(), 1),
                     Table::num(result.total_time, 3), Table::num(100.0 * imbalanced, 1)});
    }
  }
  std::printf("%s\n", table.render_text().c_str());
  std::printf("More jobs sharing the cache raise reuse pressure; the merged-oracle Lobster\n"
              "policy keeps the samples *some* job needs soonest, so its advantage over LRU\n"
              "persists (and the eviction decisions stay coherent across jobs).\n");
  return 0;
}
