#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace lobster::sim {

EventId EventQueue::schedule(Seconds at, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;  // fired, cancelled, or unknown
  cancelled_.insert(id);
  return true;
}

std::optional<Seconds> EventQueue::next_time() {
  skip_dead();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_dead();
  assert(!heap_.empty());
  // priority_queue::top() is const; move via const_cast is the standard
  // workaround (the entry is removed immediately after).
  auto& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, top.id, std::move(top.fn)};
  heap_.pop();
  pending_.erase(fired.id);
  return fired;
}

void EventQueue::skip_dead() {
  while (!heap_.empty() && cancelled_.contains(heap_.top().id)) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

}  // namespace lobster::sim
