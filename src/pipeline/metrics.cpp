#include "pipeline/metrics.hpp"

#include <stdexcept>

namespace lobster::pipeline {

RunMetrics::RunMetrics(std::uint32_t epochs, std::uint32_t iterations_per_epoch,
                       std::uint32_t total_gpus, std::uint32_t detail_epoch_lo,
                       std::uint32_t detail_epoch_hi)
    : epochs_(epochs),
      iterations_per_epoch_(iterations_per_epoch),
      total_gpus_(total_gpus),
      detail_lo_(detail_epoch_lo),
      detail_hi_(detail_epoch_hi) {
  if (epochs == 0 || iterations_per_epoch == 0 || total_gpus == 0) {
    throw std::invalid_argument("RunMetrics: bad dimensions");
  }
  imbalanced_per_epoch_.resize(epochs, 0);
  time_per_epoch_.resize(epochs, 0.0);
  batch_times_.reserve(static_cast<std::size_t>(epochs) * iterations_per_epoch);
}

void RunMetrics::add(IterationRecord record) {
  if (record.epoch >= epochs_) throw std::out_of_range("RunMetrics: epoch out of range");
  ++iterations_;
  total_time_ += record.duration;
  time_per_epoch_[record.epoch] += record.duration;
  batch_times_.add(record.duration);
  if (record.imbalanced) ++imbalanced_per_epoch_[record.epoch];
  if (record.loading_bottleneck) ++loading_bottleneck_;
  for (const auto& gpu : record.gpus) train_time_sum_ += gpu.train;
  if (record.epoch >= detail_lo_ && record.epoch < detail_hi_) {
    details_.push_back(std::move(record));
  }
}

void RunMetrics::set_cache_stats(const std::vector<cache::CacheStats>& per_node) {
  cache_stats_ = {};
  for (const auto& stats : per_node) {
    cache_stats_.hits += stats.hits;
    cache_stats_.misses += stats.misses;
    cache_stats_.insertions += stats.insertions;
    cache_stats_.evictions += stats.evictions;
    cache_stats_.rejected_insertions += stats.rejected_insertions;
  }
}

Seconds RunMetrics::time_after_epoch(std::uint32_t first_epoch) const {
  Seconds total = 0.0;
  for (std::uint32_t e = first_epoch; e < epochs_; ++e) total += time_per_epoch_[e];
  return total;
}

double RunMetrics::imbalanced_fraction() const noexcept {
  if (iterations_ == 0) return 0.0;
  std::uint64_t imbalanced = 0;
  for (const auto count : imbalanced_per_epoch_) imbalanced += count;
  return static_cast<double>(imbalanced) / static_cast<double>(iterations_);
}

double RunMetrics::gpu_utilization() const noexcept {
  if (total_time_ <= 0.0 || total_gpus_ == 0) return 0.0;
  const double per_gpu_wall = total_time_;
  const double per_gpu_train = train_time_sum_ / static_cast<double>(total_gpus_);
  return per_gpu_train / per_gpu_wall;
}

}  // namespace lobster::pipeline
