// Fault injection for the online runtime (DESIGN.md §9).
//
// A FaultPlan describes what goes wrong and when: kill a node at iteration
// k (all traffic to/from it is silently dropped, exactly as a crashed
// process looks to its peers) and optionally revive it at a later
// iteration (recovery scenarios), delay one rank's outgoing messages by a
// fixed latency plus uniform jitter (a stalling peer), drop a fraction
// of a rank's traffic (a flaky link), or corrupt a fraction of its
// outgoing payloads (bit rot on the wire; receivers must quarantine, not
// deliver). The plan plugs into comm::MessageBus (set_fault_plan) which
// consults it on every send. Capacity degradation (throttled node, slow
// NIC) is declared the same way everywhere: a FaultSpec carries an
// iteration-indexed sim::CapacityProfile, and the discrete-event side hands
// a virtual-time profile to sim::Resource::set_capacity_profile for the
// same scenarios on the virtual-time NIC.
//
// Self-sends always pass untouched: local delivery (including the
// DistributionManager's shutdown poison pill) does not cross the faulty
// fabric, so a "dead" node can still be stopped cleanly by the harness.
//
// Thread-safety: fully thread-safe. The bus queries verdicts under its own
// lock while harness threads kill/revive nodes and advance the iteration
// clock; a small internal mutex serializes the RNG and counters.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/capacity_profile.hpp"

namespace lobster::comm {

using Rank = std::uint16_t;

/// Per-rank fault specification. All fields compose: a rank can be slow and
/// lossy until it dies at `kill_at_iter`.
struct FaultSpec {
  /// Fraction of this rank's *outgoing* messages dropped, [0, 1].
  double drop_fraction = 0.0;
  /// Fraction of this rank's *outgoing* messages whose payload bytes are
  /// flipped in flight, [0, 1]. The message still arrives on time — only
  /// its content lies, which is exactly what end-to-end verification and
  /// the corruption-quarantine path must catch.
  double corrupt_fraction = 0.0;
  /// Added delivery latency on this rank's outgoing messages.
  Seconds delay_s = 0.0;
  /// Uniform extra latency in [0, delay_jitter_s) on top of delay_s.
  Seconds delay_jitter_s = 0.0;
  /// Kill this rank when the iteration clock reaches this value
  /// (FaultPlan::on_iteration); kNeverIter = never.
  IterId kill_at_iter = kNeverIter;
  /// Revive this rank when the iteration clock reaches this value
  /// (rejoin scenarios: the RecoveryManager's probe must then succeed and
  /// re-admit the node); kNeverIter = stays dead.
  IterId revive_at_iter = kNeverIter;
  /// Iteration-indexed capacity schedule for this rank (scale_at(iter)):
  /// thermal-throttle ramps, co-tenant windows, degraded-NIC presets.
  /// Harnesses read FaultPlan::capacity_scale(rank) on the iteration clock
  /// and apply it to the rank's executor — the online twin of handing a
  /// virtual-time profile to sim::Resource::set_capacity_profile. Empty =
  /// full speed.
  sim::CapacityProfile capacity;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint16_t world_size, std::uint64_t seed = 0x0FA17ULL);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  std::uint16_t world_size() const noexcept { return world_size_; }

  /// Mutable spec for `rank`; configure before (or during) the run.
  FaultSpec& spec(Rank rank);

  /// Immediately marks `rank` dead: every message to or from it (except
  /// self-sends) is dropped from now on. Idempotent.
  void kill(Rank rank);

  /// Brings a killed rank back (recovery scenarios: the circuit breaker
  /// must re-close once the peer answers again).
  void revive(Rank rank);

  bool is_down(Rank rank) const;

  /// Advances the iteration clock; applies every spec whose kill_at_iter
  /// or revive_at_iter has been reached. Harnesses call this from an
  /// executor iteration hook.
  void on_iteration(IterId iter);

  /// The rank's capacity scale at the current iteration clock (per its
  /// spec's CapacityProfile; 0.0 while the rank is down, 1.0 with no
  /// profile). The value the bench/test harness scales the rank's executor
  /// rates by.
  double capacity_scale(Rank rank) const;

  /// Verdict for one message, consumed by MessageBus::do_send.
  struct Verdict {
    bool drop = false;
    bool corrupt = false;
    Seconds delay_s = 0.0;
  };
  Verdict on_message(Rank from, Rank to);

  // Injection accounting (what the plan actually did, for reports/tests).
  std::uint64_t dropped_messages() const;
  std::uint64_t delayed_messages() const;
  std::uint64_t corrupted_messages() const;
  std::uint64_t nodes_killed() const;
  std::uint64_t nodes_revived() const;

 private:
  const std::uint16_t world_size_;
  mutable std::mutex mutex_;
  std::vector<FaultSpec> specs_;
  std::vector<bool> down_;
  IterId clock_ = 0;  ///< last on_iteration value (drives capacity_scale)
  Rng rng_;
  std::uint64_t dropped_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t killed_ = 0;
  std::uint64_t revived_ = 0;
};

}  // namespace lobster::comm
