# Empty compiler generated dependencies file for test_dataset_sampler.
# This may be replaced when dependencies are built.
